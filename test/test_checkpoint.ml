(* Checkpoint round-trip property tests (lib/hyper/checkpoint full
   checkpoints): capturing a warmed bare machine, running on, restoring
   and diffing must be lossless — and a single planted mutation in any
   checkpointed subsystem (cache LRU, TLB entry, predictor counter,
   architectural register, guest memory page) must be detected by
   [diff_full] with the owning subsystem named, then healed by
   [restore_full]. *)

module Machine = Ptl_arch.Machine
module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Insn = Ptl_isa.Insn
module Regs = Ptl_isa.Regs
module W64 = Ptl_util.W64
module Config = Ptl_ooo.Config
module Uarch = Ptl_ooo.Uarch
module Hierarchy = Ptl_mem.Hierarchy
module Cache = Ptl_mem.Cache
module Tlb = Ptl_mem.Tlb
module Predictor = Ptl_bpred.Predictor
module Domain = Ptl_hyper.Domain
module Checkpoint = Ptl_hyper.Checkpoint
module Sample = Ptl_sample.Sample
module G = Ptl_workloads.Gasm

(* A bare machine (no minios kernel) running the standard 4-insn
   arithmetic loop, ending in hlt; the only kind of domain full
   checkpoints support. *)
let bare_loop ?(core = "ooo") ~iters () =
  let g = G.create () in
  G.li g G.rbp Machine.heap_base;
  G.lii g G.rbx 0;
  G.lii g G.rcx iters;
  G.label g "top";
  G.ld g G.rax ~base:G.rbp ();
  G.addi g G.rax 1;
  G.st g ~base:G.rbp G.rax ();
  G.add g G.rbx G.rcx;
  G.addi g G.rbx 3;
  G.dec g G.rcx;
  G.jne g "top";
  G.ins g Insn.Hlt;
  let m = Machine.create (G.assemble g) in
  (Domain.create ~core ~config:Config.tiny m.Machine.env m.Machine.ctx, m)

(* Drive natively with functional warming for ~[insns] instructions so
   every checkpointed structure (cache tags/LRU, TLBs, predictor) holds
   real content before we snapshot it. *)
let warmed_machine ?(insns = 20_000) () =
  let d, m = bare_loop ~iters:200_000 () in
  let u = Uarch.create ~prefix:"ooo" Config.tiny d.Domain.env.Env.stats in
  Domain.set_uarch d u;
  let (_ : unit -> unit) = Sample.install_warming d u in
  Domain.enter_native d;
  let target = d.Domain.ctx.Context.insns_committed + insns in
  let alive = ref true in
  while !alive && d.Domain.ctx.Context.insns_committed < target do
    alive := Domain.drive_once d
  done;
  Sample.remove_warming d;
  (d, u, m)

let no_diff name diff =
  Alcotest.(check (list string)) name [] diff

let contains line needle =
  let nl = String.length needle and ll = String.length line in
  let rec go i = i + nl <= ll && (String.sub line i nl = needle || go (i + 1)) in
  go 0

(* capture -> run on -> restore -> diff must be empty; and the restored
   machine must re-run to the same architectural result *)
let test_round_trip () =
  let d, u, _ = warmed_machine () in
  let env = d.Domain.env and ctx = d.Domain.ctx in
  let ck = Checkpoint.capture_full ~uarch:u env ctx in
  no_diff "clean immediately after capture"
    (Checkpoint.diff_full ck ~uarch:u env ctx);
  (* run forward: the live state must drift away from the checkpoint *)
  let target = ctx.Context.insns_committed + 5_000 in
  let alive = ref true in
  while !alive && ctx.Context.insns_committed < target do
    alive := Domain.drive_once d
  done;
  Alcotest.(check bool) "drifted after running" true
    (Checkpoint.diff_full ck ~uarch:u env ctx <> []);
  let rbx_first =
    let budget = ref 2_000_000 in
    while Domain.drive_once d && !budget > 0 do decr budget done;
    Context.gpr ctx G.rbx
  in
  Checkpoint.restore_full ck ~uarch:u env ctx;
  no_diff "exact after restore" (Checkpoint.diff_full ck ~uarch:u env ctx);
  (* replay from the checkpoint: same architectural end state *)
  let budget = ref 2_000_000 in
  while Domain.drive_once d && !budget > 0 do decr budget done;
  Alcotest.(check int64) "replay reaches the same result" rbx_first
    (Context.gpr ctx G.rbx)

(* one planted mutation per checkpointed subsystem; each must be
   detected (with the subsystem named) and healed by restore_full *)
let test_planted_mutations () =
  let d, u, m = warmed_machine () in
  let env = d.Domain.env and ctx = d.Domain.ctx in
  let ck = Checkpoint.capture_full ~uarch:u env ctx in
  no_diff "clean baseline" (Checkpoint.diff_full ck ~uarch:u env ctx);
  let plant name mutate needle =
    mutate ();
    let diff = Checkpoint.diff_full ck ~uarch:u env ctx in
    Alcotest.(check bool) (name ^ ": detected") true (diff <> []);
    Alcotest.(check bool)
      (Printf.sprintf "%s: diff names %s (got: %s)" name needle
         (String.concat " | " diff))
      true
      (List.exists (fun line -> contains line needle) diff);
    Checkpoint.restore_full ck ~uarch:u env ctx;
    no_diff (name ^ ": healed by restore")
      (Checkpoint.diff_full ck ~uarch:u env ctx)
  in
  plant "cache LRU"
    (fun () ->
      Alcotest.(check bool) "a valid line to touch" true
        (Cache.debug_touch_lru u.Uarch.hierarchy.Hierarchy.l1d))
    "L1D";
  plant "TLB entry"
    (fun () ->
      Tlb.insert u.Uarch.dtlb 0x7bcd_e123L
        { Tlb.vpn = 0L; mfn = 0x999; writable = true; user = true; nx = false; huge = false })
    "dtlb";
  plant "predictor counter"
    (fun () ->
      Predictor.warm_cond u.Uarch.bpred ~rip:0x40_0040L ~taken:true;
      (* a saturated counter plus an unchanged history can absorb one
         update; the opposite direction is then guaranteed to move *)
      if Checkpoint.diff_full ck ~uarch:u env ctx = [] then
        Predictor.warm_cond u.Uarch.bpred ~rip:0x40_0040L ~taken:false)
    "bpred";
  plant "architectural register"
    (fun () ->
      Context.set_gpr ctx Regs.r8
        (Int64.logxor (Context.gpr ctx Regs.r8) 0xDEAD_BEEFL))
    "r8";
  plant "dirty page"
    (fun () ->
      let vaddr = Machine.heap_base in
      let old = Machine.read_mem m ~vaddr ~size:W64.B1 in
      Machine.write_mem m ~vaddr ~size:W64.B1
        ~value:(Int64.logxor old 0xFFL))
    "mem: frame"

(* drive the domain natively for ~[insns] more instructions *)
let drive d ~insns =
  let ctx = d.Domain.ctx in
  let target = ctx.Context.insns_committed + insns in
  let alive = ref true in
  while !alive && ctx.Context.insns_committed < target do
    alive := Domain.drive_once d
  done

(* delta checkpoints: base + delta must restore the capture moment
   exactly (verified against a full checkpoint taken at the same
   instant), with a footprint well under the full image *)
let test_delta_round_trip () =
  let d, u, _ = warmed_machine () in
  let env = d.Domain.env and ctx = d.Domain.ctx in
  let base = Checkpoint.capture_base ~uarch:u env in
  drive d ~insns:4_000;
  let dk = Checkpoint.capture_delta ~base ~uarch:u env ctx in
  let full = Checkpoint.capture_full ~uarch:u env ctx in
  Alcotest.(check bool) "delta has a footprint" true
    (Checkpoint.delta_pages dk > 0);
  Alcotest.(check bool) "delta smaller than the full image" true
    (Checkpoint.delta_page_bytes dk < Checkpoint.full_page_bytes env);
  drive d ~insns:4_000;
  Alcotest.(check bool) "drifted past the capture point" true
    (Checkpoint.diff_full full ~uarch:u env ctx <> []);
  Checkpoint.restore_delta ~base dk ~uarch:u env ctx;
  no_diff "base + delta restores exactly"
    (Checkpoint.diff_full full ~uarch:u env ctx)

(* the worker-side rebuild path (lib/sample replay_delta, lib/fleet):
   a copy-on-write clone of the base overlaid with the delta, plus
   fresh context/uarch, must equal the capture moment exactly *)
let test_delta_clone_worker_state () =
  let d, u, _ = warmed_machine () in
  let env = d.Domain.env and ctx = d.Domain.ctx in
  let base = Checkpoint.capture_base ~uarch:u env in
  drive d ~insns:4_000;
  let dk = Checkpoint.capture_delta ~base ~uarch:u env ctx in
  let full = Checkpoint.capture_full ~uarch:u env ctx in
  let stats = Ptl_stats.Statstree.create () in
  let mem = Checkpoint.clone_mem ~base dk in
  let wenv = Env.create ~stats ~mem () in
  let wctx = Context.create ~vcpu_id:0 in
  let wu = Uarch.create ~prefix:"ooo" Config.tiny stats in
  Checkpoint.restore_delta_into ~base dk ~uarch:wu wenv wctx;
  no_diff "fresh worker state equals the capture moment"
    (Checkpoint.diff_full full ~uarch:wu wenv wctx);
  (* and the worker's writes never leak into the shared base image *)
  let probe = Int64.to_int Machine.heap_base in
  let before = Ptl_mem.Phys_mem.read64 base.Checkpoint.bk_mem probe in
  Ptl_mem.Phys_mem.write64 wenv.Env.mem probe
    (Int64.logxor before 0xDEAD_BEEFL);
  Alcotest.(check int64) "base image untouched by worker writes" before
    (Ptl_mem.Phys_mem.read64 base.Checkpoint.bk_mem probe)

(* Page-walk-cache and hugepage-TLB state are part of the uarch
   checkpoint: a capture round-trips losslessly, a planted mutation in
   either structure is detected with the owner named, and restore heals
   it. *)
let test_pwc_hugepage_checkpoint () =
  let cfg =
    { Config.tiny with Config.pwc_entries = 8; Config.tlb_hugepages = true }
  in
  let g = G.create () in
  G.ins g Insn.Hlt;
  let m = Machine.create (G.assemble g) in
  let env = m.Machine.env and ctx = m.Machine.ctx in
  let u = Uarch.create ~prefix:"ooo" cfg env.Ptl_arch.Env.stats in
  let pwc = Option.get u.Uarch.pwc in
  let module Pwc = Ptl_mem.Pwc in
  (* warm the walk caches and a hugepage TLB entry *)
  Pwc.insert pwc 0x40000000L ~pte_addrs:[ 0x1000; 0x2000; 0x3000; 0x4000 ];
  Pwc.insert pwc 0x7_f800_0000L ~pte_addrs:[ 0x1000; 0x5000; 0x6000 ];
  let huge_entry mfn =
    { Tlb.vpn = 0L; mfn; writable = true; user = true; nx = false; huge = true }
  in
  Tlb.insert u.Uarch.dtlb 0x40057123L (huge_entry 0x200);
  let ck = Checkpoint.capture_full ~uarch:u env ctx in
  no_diff "clean after capture" (Checkpoint.diff_full ck ~uarch:u env ctx);
  let plant name mutate needle =
    mutate ();
    let diff = Checkpoint.diff_full ck ~uarch:u env ctx in
    Alcotest.(check bool) (name ^ ": detected") true (diff <> []);
    Alcotest.(check bool)
      (Printf.sprintf "%s: diff names %s (got: %s)" name needle
         (String.concat " | " diff))
      true
      (List.exists (fun line -> contains line needle) diff);
    Checkpoint.restore_full ck ~uarch:u env ctx;
    no_diff (name ^ ": healed by restore")
      (Checkpoint.diff_full ck ~uarch:u env ctx)
  in
  plant "PWC entry"
    (fun () ->
      Pwc.insert pwc 0x1_2340_0000L
        ~pte_addrs:[ 0x1000; 0x7000; 0x8000; 0x9000 ])
    "pwc";
  plant "hugepage TLB entry"
    (fun () -> Tlb.insert u.Uarch.dtlb 0x40257123L (huge_entry 0x400))
    "dtlb";
  (* the huge entry survived both round trips: one entry still covers
     its whole 2M region *)
  (match Tlb.lookup_quiet u.Uarch.dtlb 0x401FF458L with
  | Tlb.L1_hit e | Tlb.L2_hit e ->
    Alcotest.(check bool) "restored entry still huge" true e.Tlb.huge
  | Tlb.Tlb_miss -> Alcotest.fail "huge entry lost in the round trip");
  (* a PWC of different geometry refuses the snapshot (fit-tolerant
     callers then start it cold instead) *)
  let other = Pwc.create ~entries:16 () in
  match ck.Checkpoint.fk_uarch.Uarch.sn_pwc with
  | Some psnap ->
    Alcotest.(check bool) "geometry mismatch does not fit" false
      (Pwc.fits other psnap)
  | None -> Alcotest.fail "checkpoint lost the PWC snapshot"

let suite =
  [
    Alcotest.test_case "full round trip is lossless" `Quick test_round_trip;
    Alcotest.test_case "pwc + hugepage TLB checkpoint" `Quick
      test_pwc_hugepage_checkpoint;
    Alcotest.test_case "planted mutations are detected" `Quick
      test_planted_mutations;
    Alcotest.test_case "delta round trip is lossless" `Quick
      test_delta_round_trip;
    Alcotest.test_case "delta clone rebuilds worker state" `Quick
      test_delta_clone_worker_state;
  ]
