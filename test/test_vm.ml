(* Virtual-memory scenario layer tests (lib/vm): demand faults populate
   lazily from the right backing, protection and unmapped accesses are
   classified, watermark-driven CLOCK reclaim bounds the resident set
   with swap round-tripping contents, shootdown IPIs reach remote VCPUs
   sharing the address space, and 2M promotion/splitting preserve the
   memory image byte-for-byte. *)

module Pm = Ptl_mem.Phys_mem
module Pt = Ptl_mem.Pagetable
module Context = Ptl_arch.Context
module Stats = Ptl_stats.Statstree
module Vm = Ptl_vm.Vm

let vec_test = 34

let make_vm ?shootdown_vec ?(watermark = 0) ?(batch = 8) () =
  let mem = Pm.create () in
  let stats = Stats.create () in
  let vm = Vm.create ?shootdown_vec ~watermark ~batch ~mem stats in
  let ctx = Context.create ~vcpu_id:0 in
  ctx.Context.cr3 <- Pm.alloc_page mem;
  Vm.attach_ctx vm ctx;
  (vm, mem, ctx, stats)

let fault vm ctx ~vaddr ~write =
  Vm.handle_fault vm ctx ~cr3:ctx.Context.cr3 ~vaddr ~write

let result_name = function
  | Vm.Resolved -> "resolved"
  | Vm.Unmapped -> "unmapped"
  | Vm.Prot_violation -> "prot"

let check_result name expected got =
  Alcotest.(check string) name (result_name expected) (result_name got)

let read64_at mem ~cr3 ~vaddr =
  match Pt.walk mem ~cr3_mfn:cr3 ~vaddr ~write:false ~user:true ~exec:false () with
  | Ok tr -> Pm.read64 mem (Pt.to_paddr tr vaddr)
  | Error _ -> Alcotest.fail "walk failed on a supposedly-mapped page"

let write64_at mem ~cr3 ~vaddr v =
  match Pt.walk mem ~cr3_mfn:cr3 ~vaddr ~write:true ~user:true ~exec:false () with
  | Ok tr -> Pm.write64 mem (Pt.to_paddr tr vaddr) v
  | Error _ -> Alcotest.fail "write walk failed on a supposedly-mapped page"

(* ---- demand faults ---- *)

let test_demand_fault () =
  let vm, mem, ctx, _ = make_vm () in
  let cr3 = ctx.Context.cr3 in
  Vm.add_vma vm ~cr3 ~start:0x400000L ~pages:16 ~writable:true ~backing:Vm.Zero;
  Alcotest.(check int) "nothing resident before first touch" 0
    (Vm.resident_pages vm);
  Alcotest.(check bool) "page table empty before first touch" true
    (Pt.probe mem ~cr3_mfn:cr3 ~vaddr:0x400000L = None);
  check_result "first touch resolves" Vm.Resolved
    (fault vm ctx ~vaddr:0x400123L ~write:false);
  Alcotest.(check int) "one page resident" 1 (Vm.resident_pages vm);
  Alcotest.(check int64) "anonymous page reads zero" 0L
    (read64_at mem ~cr3 ~vaddr:0x400120L);
  (* second fault on the same page is a no-op retry *)
  check_result "retry resolves" Vm.Resolved
    (fault vm ctx ~vaddr:0x400456L ~write:true);
  Alcotest.(check int) "still one page" 1 (Vm.resident_pages vm);
  Alcotest.(check int) "exactly one hard fault" 1 (Vm.faults vm);
  (* classification *)
  check_result "outside every vma" Vm.Unmapped
    (fault vm ctx ~vaddr:0x9000000L ~write:false);
  Vm.add_vma vm ~cr3 ~start:0x500000L ~pages:4 ~writable:false
    ~backing:Vm.Zero;
  check_result "write to a read-only vma" Vm.Prot_violation
    (fault vm ctx ~vaddr:0x500000L ~write:true);
  check_result "read of a read-only vma" Vm.Resolved
    (fault vm ctx ~vaddr:0x500000L ~write:false)

let test_image_backing () =
  let vm, mem, ctx, _ = make_vm () in
  let cr3 = ctx.Context.cr3 in
  let img = String.init 6000 (fun i -> Char.chr (i mod 251)) in
  Vm.add_vma vm ~cr3 ~start:0x400000L ~pages:4 ~writable:false
    ~backing:(Vm.Image { bytes = img; base = 0x400000L });
  check_result "second image page faults in" Vm.Resolved
    (fault vm ctx ~vaddr:0x401800L ~write:false);
  (* bytes inside the image come from the blob; the tail past it is zero *)
  (match Pt.probe mem ~cr3_mfn:cr3 ~vaddr:0x401000L with
  | Some mfn ->
    let page = Pm.read_string mem (Pm.paddr_of_mfn mfn) Pm.page_size in
    Alcotest.(check int) "offset 0x1000 of the image" (0x1000 mod 251)
      (Char.code page.[0]);
    Alcotest.(check int) "last mapped image byte" (5999 mod 251)
      (Char.code page.[6000 - 0x1000 - 1]);
    Alcotest.(check int) "past the image reads zero" 0
      (Char.code page.[6000 - 0x1000])
  | None -> Alcotest.fail "image page not mapped")

(* ---- reclaim + swap ---- *)

let test_reclaim_and_swap () =
  (* budget of 8 resident pages (the floor), 24-page working set: the
     CLOCK must evict, and evicted contents must come back intact *)
  let vm, mem, ctx, _ = make_vm ~watermark:8 ~batch:2 () in
  let cr3 = ctx.Context.cr3 in
  Vm.add_vma vm ~cr3 ~start:0x400000L ~pages:24 ~writable:true
    ~backing:Vm.Zero;
  for i = 0 to 23 do
    let vaddr = Int64.add 0x400000L (Int64.of_int (i * Pm.page_size)) in
    check_result "touch resolves" Vm.Resolved (fault vm ctx ~vaddr ~write:true);
    write64_at mem ~cr3 ~vaddr (Int64.of_int (0xABC000 + i))
  done;
  Alcotest.(check bool) "evictions happened" true (Vm.evictions vm > 0);
  Alcotest.(check bool)
    (Printf.sprintf "resident set bounded (%d pages)" (Vm.resident_pages vm))
    true
    (Vm.resident_pages vm <= 10);
  (* every page — evicted or resident — still holds its stamp *)
  for i = 0 to 23 do
    let vaddr = Int64.add 0x400000L (Int64.of_int (i * Pm.page_size)) in
    check_result "re-touch resolves" Vm.Resolved
      (fault vm ctx ~vaddr ~write:false);
    Alcotest.(check int64)
      (Printf.sprintf "page %d contents survived eviction" i)
      (Int64.of_int (0xABC000 + i))
      (read64_at mem ~cr3 ~vaddr)
  done

let test_clock_second_chance () =
  (* a page whose A bit stays set must survive a reclaim pass that
     evicts an unreferenced one *)
  let vm, mem, ctx, _ = make_vm () in
  let cr3 = ctx.Context.cr3 in
  Vm.add_vma vm ~cr3 ~start:0x400000L ~pages:4 ~writable:true ~backing:Vm.Zero;
  ignore (fault vm ctx ~vaddr:0x400000L ~write:true);
  ignore (fault vm ctx ~vaddr:0x401000L ~write:true);
  (* reference only the first page (the walk sets its A bit) *)
  ignore (read64_at mem ~cr3 ~vaddr:0x400000L);
  Vm.reclaim vm ~keep:(-1, -1L) 1;
  Alcotest.(check bool) "referenced page survives" true
    (Pt.probe mem ~cr3_mfn:cr3 ~vaddr:0x400000L <> None);
  Alcotest.(check bool) "unreferenced page evicted" true
    (Pt.probe mem ~cr3_mfn:cr3 ~vaddr:0x401000L = None)

(* ---- shootdown IPIs ---- *)

let test_shootdown_two_vcpus () =
  let vm, _, ctx0, _ = make_vm ~shootdown_vec:vec_test () in
  let cr3 = ctx0.Context.cr3 in
  (* a second running VCPU on the same address space, and a third on a
     different one *)
  let ctx1 = Context.create ~vcpu_id:1 in
  ctx1.Context.cr3 <- cr3;
  let ctx2 = Context.create ~vcpu_id:2 in
  ctx2.Context.cr3 <- cr3 + 1;
  Vm.attach_ctx vm ctx1;
  Vm.attach_ctx vm ctx2;
  let gen0 = ctx0.Context.tlb_generation in
  let gen1 = ctx1.Context.tlb_generation in
  let gen2 = ctx2.Context.tlb_generation in
  Vm.shootdown vm ~cr3;
  Alcotest.(check bool) "local tlb flushed" true
    (ctx0.Context.tlb_generation > gen0);
  Alcotest.(check bool) "sharing vcpu flushed" true
    (ctx1.Context.tlb_generation > gen1);
  Alcotest.(check int) "other address space untouched" gen2
    ctx2.Context.tlb_generation;
  Alcotest.(check bool) "IPIs raised on the running sharers" true
    (Context.has_pending_irq ctx0 && Context.has_pending_irq ctx1);
  Alcotest.(check bool) "no IPI across address spaces" false
    (Context.has_pending_irq ctx2);
  Alcotest.(check bool) "shootdowns counted" true (Vm.shootdowns vm >= 2)

(* ---- 2M promotion / splitting ---- *)

let huge_base = 0x40000000L (* 2M-aligned *)

let test_promote_and_split () =
  let vm, mem, ctx, _ = make_vm () in
  let cr3 = ctx.Context.cr3 in
  Vm.add_vma vm ~cr3 ~start:huge_base ~pages:Pt.huge_pages ~writable:true
    ~backing:Vm.Zero;
  (* populate two 4K pages and stamp them *)
  ignore (fault vm ctx ~vaddr:huge_base ~write:true);
  let mid = Int64.add huge_base 0x57000L in
  ignore (fault vm ctx ~vaddr:mid ~write:true);
  write64_at mem ~cr3 ~vaddr:huge_base 0x1111L;
  write64_at mem ~cr3 ~vaddr:mid 0x2222L;
  (* promotion outside any vma is refused *)
  Alcotest.(check bool) "promote outside a vma refused" true
    (Vm.promote vm ~cr3 ~vaddr:0x80000000L = None);
  (match Vm.promote vm ~cr3 ~vaddr:mid with
  | None -> Alcotest.fail "promote refused inside a covering vma"
  | Some block ->
    Alcotest.(check int) "block is 2M-aligned" 0 (block mod Pt.huge_pages));
  (match
     Pt.walk mem ~cr3_mfn:cr3 ~vaddr:mid ~write:false ~user:true ~exec:false ()
   with
  | Ok tr ->
    Alcotest.(check bool) "translation is huge" true tr.Pt.huge;
    Alcotest.(check int) "huge walk takes 3 loads" 3
      (List.length tr.Pt.pte_addrs)
  | Error _ -> Alcotest.fail "post-promote walk failed");
  Alcotest.(check int64) "stamp 1 survived promotion" 0x1111L
    (read64_at mem ~cr3 ~vaddr:huge_base);
  Alcotest.(check int64) "stamp 2 survived promotion" 0x2222L
    (read64_at mem ~cr3 ~vaddr:mid);
  (* an unpopulated page inside the region is now readable zero *)
  Alcotest.(check int64) "unpopulated page is zero after promotion" 0L
    (read64_at mem ~cr3 ~vaddr:(Int64.add huge_base 0x100000L));
  (* split back to 4K over the same frames *)
  Alcotest.(check bool) "split succeeds on a huge mapping" true
    (Vm.split vm ~cr3 ~vaddr:mid);
  Alcotest.(check bool) "second split is a no-op" false
    (Vm.split vm ~cr3 ~vaddr:mid);
  (match
     Pt.walk mem ~cr3_mfn:cr3 ~vaddr:mid ~write:false ~user:true ~exec:false ()
   with
  | Ok tr ->
    Alcotest.(check bool) "translation is 4K again" false tr.Pt.huge;
    Alcotest.(check int) "4K walk takes 4 loads" 4
      (List.length tr.Pt.pte_addrs)
  | Error _ -> Alcotest.fail "post-split walk failed");
  Alcotest.(check int64) "stamp 1 survived the split" 0x1111L
    (read64_at mem ~cr3 ~vaddr:huge_base);
  Alcotest.(check int64) "stamp 2 survived the split" 0x2222L
    (read64_at mem ~cr3 ~vaddr:mid)

let suite =
  [
    Alcotest.test_case "demand fault classification" `Quick test_demand_fault;
    Alcotest.test_case "image-backed fill" `Quick test_image_backing;
    Alcotest.test_case "reclaim bounds residency, swap restores" `Quick
      test_reclaim_and_swap;
    Alcotest.test_case "CLOCK gives referenced pages a second chance" `Quick
      test_clock_second_chance;
    Alcotest.test_case "shootdown IPIs reach sharing VCPUs" `Quick
      test_shootdown_two_vcpus;
    Alcotest.test_case "2M promote and split preserve memory" `Quick
      test_promote_and_split;
  ]
