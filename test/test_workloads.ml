(* Guest-code library validation: the RC4 and LZ guest assembly routines
   must agree byte-for-byte with their OCaml oracles, on both the
   functional and the out-of-order cores; plus hypervisor-layer tests
   (ptlcall parsing, checkpoints, DMA trace replay, cosim validation). *)

open Ptl_util
module G = Ptl_workloads.Gasm
module Crypto = Ptl_workloads.Crypto
module Lz = Ptl_workloads.Lz
module Machine = Ptl_arch.Machine
module Seqcore = Ptl_arch.Seqcore
module Context = Ptl_arch.Context
module Ptlcall = Ptl_hyper.Ptlcall
module Checkpoint = Ptl_hyper.Checkpoint
module Dma_trace = Ptl_hyper.Dma_trace
module Cosim = Ptl_hyper.Cosim
module Ooo = Ptl_ooo.Ooo_core
module Config = Ptl_ooo.Config

let heap = Machine.heap_base

(* Build a bare-metal machine around a program, pre-writing [inputs]
   (vaddr, string) into guest memory, run to hlt, return the machine. *)
let run_guest ?(on = `Seq) g inputs =
  let img = G.assemble g in
  let m = Machine.create ~heap_pages:192 img in
  List.iter
    (fun (vaddr, s) ->
      String.iteri
        (fun i c ->
          Machine.write_mem m
            ~vaddr:(Int64.add vaddr (Int64.of_int i))
            ~size:W64.B1 ~value:(Int64.of_int (Char.code c)))
        s)
    inputs;
  (match on with
  | `Seq -> ignore (Machine.run_seq ~max_insns:20_000_000 m)
  | `Ooo ->
    let core = Ooo.create Config.tiny m.Machine.env [| m.Machine.ctx |] in
    ignore (Ooo.run core ~max_cycles:60_000_000));
  m

let read_guest m ~vaddr n =
  String.init n (fun i ->
      Char.chr
        (Int64.to_int
           (Machine.read_mem m ~vaddr:(Int64.add vaddr (Int64.of_int i)) ~size:W64.B1)))

let test_rc4_guest_matches_oracle () =
  let key = "c2s-tunnel-key" in
  let plain = String.init 300 (fun i -> Char.chr (i * 13 land 0xFF)) in
  let g = G.create () in
  G.jmp g "main";
  Crypto.emit_init_fn g;
  Crypto.emit_crypt_fn g;
  G.label g "main";
  (* state at heap, key at heap+0x1000, buf at heap+0x2000 *)
  G.li g G.rdi heap;
  G.li g G.rsi (Int64.add heap 0x1000L);
  G.lii g G.rdx (String.length key);
  G.call g "rc4_init";
  G.li g G.rdi heap;
  G.li g G.rsi (Int64.add heap 0x2000L);
  G.lii g G.rdx (String.length plain);
  G.call g "rc4_crypt";
  G.ins g Ptl_isa.Insn.Hlt;
  let check on =
    let m =
      run_guest ~on g
        [ (Int64.add heap 0x1000L, key); (Int64.add heap 0x2000L, plain) ]
    in
    let guest_cipher = read_guest m ~vaddr:(Int64.add heap 0x2000L) (String.length plain) in
    let oracle = Crypto.Oracle.init key in
    let expect = Crypto.Oracle.crypt_string oracle plain in
    Alcotest.(check string) "ciphertext" expect guest_cipher
  in
  check `Seq;
  check `Ooo

let test_rc4_roundtrip () =
  (* encrypting twice with the same key restores the plaintext *)
  let key = "k" in
  let plain = "the quick brown fox jumps over the lazy dog" in
  let o1 = Crypto.Oracle.init key in
  let c = Crypto.Oracle.crypt_string o1 plain in
  let o2 = Crypto.Oracle.init key in
  Alcotest.(check string) "roundtrip" plain (Crypto.Oracle.crypt_string o2 c)

let sample_text =
  "abcabcabcabc hello hello hello compression compression works works works \
   the quick brown fox the quick brown fox 0123456789 0123456789 xyz"

let test_lz_oracle_roundtrip () =
  List.iter
    (fun s ->
      let c = Lz.Oracle.compress s in
      Alcotest.(check string) "roundtrip" s (Lz.Oracle.decompress c))
    [ ""; "a"; "ab"; "abc"; sample_text; String.make 1000 'x';
      String.init 2000 (fun i -> Char.chr (i * 31 land 0xFF)) ];
  (* repetitive input must actually compress *)
  let c = Lz.Oracle.compress (String.make 1000 'x') in
  Alcotest.(check bool) "compresses" true (String.length c < 100)

let prop_lz_oracle =
  QCheck.Test.make ~name:"lz oracle roundtrips random strings" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 0 3000))
    (fun s -> Lz.Oracle.decompress (Lz.Oracle.compress s) = s)

let test_lz_guest_compress () =
  let src = sample_text ^ sample_text ^ sample_text in
  let g = G.create () in
  G.jmp g "main";
  Lz.emit_compress_fn g;
  G.label g "main";
  (* src at heap, dst at heap+0x4000, tbl at heap+0x10000 (zeroed pages) *)
  G.li g G.rdi heap;
  G.lii g G.rsi (String.length src);
  G.li g G.rdx (Int64.add heap 0x4000L);
  G.li g G.rcx (Int64.add heap 0x10000L);
  G.call g "lz_compress";
  (* store outlen at heap+0x3000 *)
  G.li g G.rbx (Int64.add heap 0x3000L);
  G.st g ~base:G.rbx G.rax ();
  G.ins g Ptl_isa.Insn.Hlt;
  let check on =
    let m = run_guest ~on g [ (heap, src) ] in
    let outlen =
      Int64.to_int (Machine.read_mem m ~vaddr:(Int64.add heap 0x3000L) ~size:W64.B8)
    in
    Alcotest.(check bool) "compressed smaller" true (outlen < String.length src);
    let compressed = read_guest m ~vaddr:(Int64.add heap 0x4000L) outlen in
    Alcotest.(check string) "decompresses to src" src (Lz.Oracle.decompress compressed)
  in
  check `Seq;
  check `Ooo

let test_lz_guest_decompress () =
  let src = sample_text ^ String.make 500 'q' ^ sample_text in
  let compressed = Lz.Oracle.compress src in
  let g = G.create () in
  G.jmp g "main";
  Lz.emit_decompress_fn g;
  G.label g "main";
  G.li g G.rdi heap;
  G.lii g G.rsi (String.length compressed);
  G.li g G.rdx (Int64.add heap 0x4000L);
  G.call g "lz_decompress";
  G.li g G.rbx (Int64.add heap 0x3000L);
  G.st g ~base:G.rbx G.rax ();
  G.ins g Ptl_isa.Insn.Hlt;
  let m = run_guest g [ (heap, compressed) ] in
  let outlen =
    Int64.to_int (Machine.read_mem m ~vaddr:(Int64.add heap 0x3000L) ~size:W64.B8)
  in
  Alcotest.(check int) "length" (String.length src) outlen;
  Alcotest.(check string) "content" src (read_guest m ~vaddr:(Int64.add heap 0x4000L) outlen)

let test_checksum_guest () =
  let data = String.init 200 (fun i -> Char.chr (i land 0xFF)) in
  let g = G.create () in
  G.jmp g "main";
  G.emit_checksum_fn g;
  G.label g "main";
  G.li g G.rdi heap;
  G.lii g G.rsi (String.length data);
  G.call g "checksum";
  G.mov g G.rbx G.rax;
  G.ins g Ptl_isa.Insn.Hlt;
  let m = run_guest g [ (heap, data) ] in
  (* oracle *)
  let a = ref 0 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) land 0xFFFF;
      b := (!b + !a) land 0xFFFF)
    data;
  let expect = Int64.of_int ((!b lsl 16) lor !a) in
  Alcotest.(check int64) "checksum" expect (Machine.gpr m G.rbx)

(* ---- hypervisor layer ---- *)

let test_ptlcall_parse () =
  let cmds = Ptlcall.parse "-core smt -run -stopinsns 10m : -native" in
  (match cmds with
  | [ Ptlcall.Set_core "smt"; Ptlcall.Run [ Ptlcall.Stop_insns 10_000_000 ]; Ptlcall.Native ] -> ()
  | _ ->
    Alcotest.fail
      (String.concat "; " (List.map Ptlcall.command_to_string cmds)));
  (match Ptlcall.parse "-run -stopcycles 500k -stopmarker 3 : -kill" with
  | [ Ptlcall.Run [ Ptlcall.Stop_cycles 500_000; Ptlcall.Stop_marker 3 ]; Ptlcall.Kill ] -> ()
  | _ -> Alcotest.fail "second parse");
  match Ptlcall.parse "-bogus" with
  | exception Ptlcall.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let counting_image () =
  let g = G.create () in
  G.lii g G.rax 0;
  G.lii g G.rcx 50;
  G.label g "top";
  G.add g G.rax G.rcx;
  G.dec g G.rcx;
  G.jne g "top";
  G.ins g Ptl_isa.Insn.Hlt;
  G.assemble g

let test_checkpoint_restore () =
  let img = counting_image () in
  let m = Machine.create img in
  let ck = Checkpoint.capture m.Machine.env m.Machine.ctx in
  ignore (Machine.run_seq m);
  let after = Machine.gpr m G.rax in
  Alcotest.(check int64) "ran" 1275L after;
  Checkpoint.restore ck m.Machine.env m.Machine.ctx;
  Alcotest.(check int64) "state restored" 0L (Machine.gpr m G.rax);
  Alcotest.(check bool) "running again" true m.Machine.ctx.Context.running;
  (* deterministic replay: same result again *)
  ignore (Machine.run_seq m);
  Alcotest.(check int64) "replay identical" 1275L (Machine.gpr m G.rax)

let test_dma_trace_replay () =
  (* record: two DMA writes + interrupts at chosen cycles; replay against
     a restored checkpoint and observe identical memory effects *)
  let img = counting_image () in
  let m = Machine.create img in
  let env = m.Machine.env and ctx = m.Machine.ctx in
  let ck = Checkpoint.capture env ctx in
  let trace = Dma_trace.create () in
  env.Ptl_arch.Env.cycle <- 1000;
  Dma_trace.record trace env ~vector:33 ~dma:[ (0x5000, "hello") ] ();
  env.Ptl_arch.Env.cycle <- 2500;
  Dma_trace.record trace env ~dma:[ (0x5008, "world") ] ();
  Alcotest.(check int) "two events" 2 (Dma_trace.length trace);
  (* restore and replay *)
  Checkpoint.restore ck env ctx;
  let inj = Dma_trace.injector trace in
  Alcotest.(check (option int)) "first due at 1000" (Some 1000) (Dma_trace.next_cycle inj);
  env.Ptl_arch.Env.cycle <- 999;
  Dma_trace.pump inj env ctx;
  Alcotest.(check int) "nothing yet" 2 (Dma_trace.pending inj);
  env.Ptl_arch.Env.cycle <- 1000;
  Dma_trace.pump inj env ctx;
  Alcotest.(check int) "first fired" 1 (Dma_trace.pending inj);
  Alcotest.(check bool) "irq queued" true (Context.has_pending_irq ctx);
  Alcotest.(check string) "dma bytes" "hello"
    (Ptl_mem.Phys_mem.read_string env.Ptl_arch.Env.mem 0x5000 5);
  env.Ptl_arch.Env.cycle <- 3000;
  Dma_trace.pump inj env ctx;
  Alcotest.(check int) "drained" 0 (Dma_trace.pending inj);
  Alcotest.(check string) "second dma" "world"
    (Ptl_mem.Phys_mem.read_string env.Ptl_arch.Env.mem 0x5008 5)

let test_cosim_validate_agrees () =
  let img = counting_image () in
  match Cosim.validate ~check_every:20 ~max_insns:500 img with
  | Cosim.Agree n -> Alcotest.(check bool) "compared some insns" true (n > 0)
  | Cosim.Diverged { after_insns; diffs; _ } ->
    Alcotest.fail
      (Printf.sprintf "diverged after %d: %s" after_insns (String.concat "; " diffs))

let suite =
  [
    Alcotest.test_case "rc4 guest = oracle (seq+ooo)" `Quick test_rc4_guest_matches_oracle;
    Alcotest.test_case "rc4 roundtrip" `Quick test_rc4_roundtrip;
    Alcotest.test_case "lz oracle roundtrip" `Quick test_lz_oracle_roundtrip;
    Test_seed.to_alcotest prop_lz_oracle;
    Alcotest.test_case "lz guest compress (seq+ooo)" `Quick test_lz_guest_compress;
    Alcotest.test_case "lz guest decompress" `Quick test_lz_guest_decompress;
    Alcotest.test_case "checksum guest" `Quick test_checksum_guest;
    Alcotest.test_case "ptlcall parse" `Quick test_ptlcall_parse;
    Alcotest.test_case "checkpoint capture/restore/replay" `Quick test_checkpoint_restore;
    Alcotest.test_case "dma trace record/replay" `Quick test_dma_trace_replay;
    Alcotest.test_case "cosim validate" `Quick test_cosim_validate_agrees;
  ]
