(** Tests for the differential fuzzing harness (lib/fuzz): generator
    encode/decode round-trips over its opcode space, delta-debugging
    shrinking, clean-sweep differential properties on the timed cores,
    CLI flag validation, and the paper's §2.3 self-test — a deliberately
    planted core bug must be caught, shrunk and reported with a trace
    window. *)

module W64 = Ptl_util.W64
module Insn = Ptl_isa.Insn
module Flags = Ptl_isa.Flags
module Encode = Ptl_isa.Encode
module Decode = Ptl_isa.Decode
module Disasm = Ptl_isa.Disasm
module Asm = Ptl_isa.Asm
module Fuzzgen = Ptl_fuzz.Fuzzgen
module Shrink = Ptl_fuzz.Shrink
module Fuzz = Ptl_fuzz.Harness

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let decode_bytes ?(rip = 0L) s =
  let base = rip in
  Decode.decode
    ~fetch:(fun va -> Char.code s.[Int64.to_int (Int64.sub va base)])
    ~rip

(* --- generator opcode space round-trips (every instruction in every
   assembled fuzz program decodes, re-encodes and decodes back to the
   same AST, and disassembles to non-empty text) --- *)

let test_generator_roundtrips () =
  let rng = Test_seed.rng ~salt:1 () in
  let insns = ref 0 in
  for _ = 1 to 60 do
    let prog = Fuzzgen.generate rng ~classes:Fuzzgen.all_classes ~len:30 in
    let img = Fuzzgen.build prog in
    let code = img.Asm.code in
    let base = img.Asm.img_base in
    let fetch va = Char.code code.[Int64.to_int (Int64.sub va base)] in
    let limit = Int64.add base (Int64.of_int (String.length code)) in
    let rip = ref base in
    while !rip < limit do
      let insn, len = Decode.decode ~fetch ~rip:!rip in
      incr insns;
      let text = Disasm.to_string insn in
      if String.length text = 0 then
        Alcotest.failf "empty disassembly at %#Lx" !rip;
      (* Re-encoding at the same rip must decode back to the same AST
         (byte equality can differ: the assembler may pin long branch
         forms during relaxation). *)
      let insn', len' = decode_bytes ~rip:!rip (Encode.encode ~rip:!rip insn) in
      if insn' <> insn then
        Alcotest.failf "re-encode changed %s into %s at %#Lx" text
          (Disasm.to_string insn') !rip;
      ignore len';
      rip := Int64.add !rip (Int64.of_int len)
    done
  done;
  Alcotest.(check bool) "walked a real corpus" true (!insns > 2000)

(* --- boundary encodings the generator can emit (regression set for the
   encoder/decoder limits found while building the fuzzer) --- *)

let test_boundary_encodings () =
  let cases =
    [
      (* most negative sign-extended imm32 at 64-bit operand size *)
      Insn.Alu (Insn.Add, W64.B8, Insn.Reg 0, Insn.Imm (-0x80000000L));
      (* byte immediates normalize to their sign-extended canonical form *)
      Insn.Mov (W64.B1, Insn.Reg 3, Insn.Imm 0xFFL);
      (* shift counts beyond the operand width still encode (masked at
         execution, as on x86) *)
      Insn.Shift (Insn.Rol, W64.B2, Insn.Reg 5, Insn.ImmC 66);
      Insn.Bittest (Insn.Btc, W64.B8, Insn.Reg 8, Insn.Bimm 63);
      (* LOCK'd byte-size RMW with a negative immediate *)
      Insn.Locked
        (Insn.Alu (Insn.Adc, W64.B1, Insn.Mem (Insn.mem_bd 15 5L), Insn.Imm (-1L)));
      (* REP prefix round-trips *)
      Insn.Movs (W64.B8, true);
      Insn.Lods (W64.B1, true);
      (* largest push immediate *)
      Insn.Push (Insn.Imm 0x7FFFFFFFL);
      Insn.Cmovcc (Flags.LE, W64.B2, 1, Insn.Reg 2);
      (* scaled-index unaligned memory operand *)
      Insn.Mov
        ( W64.B4,
          Insn.Reg 9,
          Insn.RM (Insn.Mem (Insn.mem ~base:15 ~index:3 ~scale:8 ~disp:0x1337L ())) );
    ]
  in
  List.iter
    (fun insn ->
      let insn', _ = decode_bytes (Encode.encode insn) in
      if insn' <> Encode.normalize insn then
        Alcotest.failf "boundary round trip failed for %s (got %s)"
          (Disasm.to_string insn) (Disasm.to_string insn'))
    cases

(* --- generator determinism: one seed, one program --- *)

let test_generator_deterministic () =
  let gen () =
    let rng = Ptl_util.Rng.create 1234 in
    Fuzzgen.build (Fuzzgen.generate rng ~classes:Fuzzgen.all_classes ~len:50)
  in
  let a = gen () and b = gen () in
  Alcotest.(check string) "identical images" a.Asm.code b.Asm.code

let test_parse_classes () =
  Alcotest.(check int) "empty = all"
    (List.length Fuzzgen.all_classes)
    (List.length (Fuzzgen.parse_classes ""));
  Alcotest.(check bool) "subset" true
    (Fuzzgen.parse_classes "alu, mem" = [ Fuzzgen.Alu; Fuzzgen.Mem ]);
  (match Fuzzgen.parse_classes "bogus" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the bad class" true (contains msg "bogus"))

(* --- ddmin shrinking --- *)

let test_shrink_single_culprit () =
  let test a = Array.exists (fun x -> x = 7) a in
  Alcotest.(check (array int)) "isolates the culprit" [| 7 |]
    (Shrink.minimize ~test [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |])

let test_shrink_interaction_pair () =
  let test a = Array.exists (fun x -> x = 3) a && Array.exists (fun x -> x = 9) a in
  let r = Shrink.minimize ~test [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |] in
  Array.sort compare r;
  Alcotest.(check (array int)) "keeps exactly the interacting pair" [| 3; 9 |] r

(* --- differential clean sweeps: the timed cores agree with the
   sequential reference on random programs over the full class mix --- *)

let clean_sweep core () =
  let s = Fuzz.run ~core ~seed:Test_seed.seed ~iters:20 () in
  List.iter (fun d -> print_string d.Fuzz.d_report) s.Fuzz.s_divergences;
  Alcotest.(check int)
    (Printf.sprintf "%s agrees with seq (seed %d)" core Test_seed.seed)
    0
    (List.length s.Fuzz.s_divergences)

(* --- the §2.3 self-test: a planted flags-write bug must be caught,
   shrunk to a handful of instructions, and reported with the shrunk
   listing, the flags diff and a trace window --- *)

let injected_run () =
  Fuzz.run ~core:"ooo"
    ~inject:(Fuzz.flags_bug ~after:2)
    ~check_every:1 ~seed:7 ~iters:2 ()

let test_injected_bug_caught () =
  let s = injected_run () in
  Alcotest.(check int) "every iteration diverges" 2
    (List.length s.Fuzz.s_divergences);
  let d = List.hd s.Fuzz.s_divergences in
  if d.Fuzz.d_insns > 5 then
    Alcotest.failf "shrunk program still has %d instructions:\n%s"
      d.Fuzz.d_insns d.Fuzz.d_report;
  Alcotest.(check bool) "first divergence located" true (d.Fuzz.d_after >= 1);
  Alcotest.(check bool) "flags diff reported" true
    (List.exists (fun l -> contains l "flags") d.Fuzz.d_diffs);
  Alcotest.(check bool) "trace window captured" true (d.Fuzz.d_trace <> []);
  (* the corrupted model is the timed core; oracle and seq still agree,
     so the majority verdict must blame ooo *)
  Alcotest.(check string) "diverging pair" "seq vs ooo" d.Fuzz.d_pair;
  Alcotest.(check bool) "verdict blames the timed core" true
    (contains d.Fuzz.d_verdict "ooo is the odd model out");
  Alcotest.(check bool) "report embeds listing" true
    (contains d.Fuzz.d_report "-- shrunk program --");
  Alcotest.(check bool) "report embeds trace window" true
    (contains d.Fuzz.d_report "-- trace window");
  Alcotest.(check bool) "report carries verdict line" true
    (contains d.Fuzz.d_report "verdict");
  Alcotest.(check bool) "report carries replay line" true
    (contains d.Fuzz.d_report "replay: optlsim fuzz --fuzz-seed 7")

(* --- the complementary self-test: plant the bug in the *spec table*
   instead — drop SUB's CF write (subtracting from the mostly-zero
   startup registers borrows constantly, so the mutation bites early);
   seq and the timed core still agree, so the three-way harness must
   localize the divergence to the oracle-seq pair and the majority
   verdict must blame the oracle --- *)

let test_planted_spec_bug_attributed () =
  let table =
    Ptl_spec.Spec.drop_flag_write ~key:"sub" ~mask:Flags.cf_mask
      Ptl_spec.Spec.table
  in
  let s =
    Fuzz.run ~core:"inorder" ~table ~classes:[ Fuzzgen.Alu ]
      ~seed:Test_seed.seed ~iters:30 ~len:10 ()
  in
  Alcotest.(check int) "every program was oracle-checked" 30
    s.Fuzz.s_oracle_checked;
  Alcotest.(check int) "no opcode escaped the spec table" 0
    s.Fuzz.s_oracle_unsupported;
  Alcotest.(check bool) "the planted spec bug produced divergences" true
    (s.Fuzz.s_divergences <> []);
  List.iter
    (fun d ->
      Alcotest.(check string) "localized to the oracle-seq pair"
        "oracle vs seq" d.Fuzz.d_pair;
      Alcotest.(check bool) "verdict blames the oracle" true
        (contains d.Fuzz.d_verdict "oracle is the odd model out");
      Alcotest.(check bool) "report names the pair" true
        (contains d.Fuzz.d_report "oracle vs seq"))
    s.Fuzz.s_divergences

let test_injected_bug_deterministic () =
  let reports s = List.map (fun d -> d.Fuzz.d_report) s.Fuzz.s_divergences in
  Alcotest.(check (list string)) "byte-identical reports across runs"
    (reports (injected_run ()))
    (reports (injected_run ()))

(* --- CLI flag validation (must reject contradictions before any
   simulation runs) --- *)

let check ?(iters = 10) ?(len = 5) ?(classes = "") ?(core = "ooo")
    ?inject ?(guard_degrade = false) ?trace_start ?trace_stop
    ?(trace_rip = "") ?(trace_trigger = "") ?(trace_out = [])
    ?(trace_timeline = 0) () =
  Fuzz.check_flags ~iters ~len ~classes ~core ~inject ~guard_degrade
    ~trace_start ~trace_stop ~trace_rip ~trace_trigger ~trace_out
    ~trace_timeline ()

let test_check_flags () =
  Alcotest.(check bool) "plain invocation ok" true (check () = Ok ());
  Alcotest.(check bool) "buf/filter-compatible trace flags ok" true
    (check ~trace_trigger:"immediate" () = Ok ());
  let rejected name r =
    match r with
    | Ok () -> Alcotest.failf "%s: expected rejection" name
    | Error msg ->
      Alcotest.(check bool) (name ^ " has a message") true
        (String.length msg > 10)
  in
  rejected "iters" (check ~iters:0 ());
  rejected "len" (check ~len:0 ());
  rejected "classes" (check ~classes:"alu,nope" ());
  rejected "seq core" (check ~core:"seq" ());
  rejected "unknown core" (check ~core:"turbo9000" ());
  rejected "inject" (check ~inject:0 ());
  rejected "guard-degrade" (check ~guard_degrade:true ());
  rejected "trace-start" (check ~trace_start:100 ());
  rejected "trace-stop" (check ~trace_stop:100 ());
  rejected "trace-rip" (check ~trace_rip:"0x400000" ());
  rejected "trace-trigger" (check ~trace_trigger:"mispredict" ());
  rejected "trace-out" (check ~trace_out:[ "t.json" ] ());
  rejected "trace-timeline" (check ~trace_timeline:40 ())

(* --- report files --- *)

let test_write_reports () =
  let s = injected_run () in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "optlsim-fuzz-test" in
  let files = Fuzz.write_reports ~dir s in
  Alcotest.(check int) "one file per divergence"
    (List.length s.Fuzz.s_divergences)
    (List.length files);
  List.iter
    (fun f ->
      let ic = open_in f in
      let n = in_channel_length ic in
      close_in ic;
      Alcotest.(check bool) (f ^ " non-empty") true (n > 0);
      Sys.remove f)
    files

let suite =
  [
    Alcotest.test_case "generator space round-trips" `Quick test_generator_roundtrips;
    Alcotest.test_case "boundary encodings" `Quick test_boundary_encodings;
    Alcotest.test_case "generator is deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "parse_classes" `Quick test_parse_classes;
    Alcotest.test_case "shrink isolates one culprit" `Quick test_shrink_single_culprit;
    Alcotest.test_case "shrink keeps interacting pair" `Quick test_shrink_interaction_pair;
    Alcotest.test_case "clean sweep: ooo vs seq" `Quick (clean_sweep "ooo");
    Alcotest.test_case "clean sweep: inorder vs seq" `Quick (clean_sweep "inorder");
    Alcotest.test_case "clean sweep: smt vs seq" `Quick (clean_sweep "smt");
    Alcotest.test_case "injected flags bug caught + shrunk" `Quick test_injected_bug_caught;
    Alcotest.test_case "injected-bug reports deterministic" `Quick test_injected_bug_deterministic;
    Alcotest.test_case "planted spec bug attributed to oracle" `Quick
      test_planted_spec_bug_attributed;
    Alcotest.test_case "flag validation" `Quick test_check_flags;
    Alcotest.test_case "report files" `Quick test_write_reports;
  ]
