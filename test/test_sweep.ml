(* Matched-pair sweep engine tests (lib/sweep): the spec parser
   round-trips its canonical text and rejects every malformed spec with
   the right typed error; paired-CI arithmetic matches hand-computed
   fixtures; contradictory CLI flag combinations are refused; and an
   end-to-end sweep over a phased capture resolves a planted
   memory-latency delta with paired statistics that independent-run
   statistics cannot see at the same interval budget. *)

module Sweep = Ptl_sweep.Sweep
module Paired = Ptl_stats.Paired
module Sample = Ptl_sample.Sample
module Store = Ptl_store.Store
module Config = Ptl_ooo.Config
module Machine = Ptl_arch.Machine
module Domain = Ptl_hyper.Domain
module Insn = Ptl_isa.Insn
module G = Ptl_workloads.Gasm

let err_name = function
  | Sweep.E_syntax _ -> "syntax"
  | Sweep.E_unknown_key _ -> "unknown_key"
  | Sweep.E_bad_value _ -> "bad_value"
  | Sweep.E_empty_values _ -> "empty_values"
  | Sweep.E_duplicate_axis _ -> "duplicate_axis"
  | Sweep.E_too_many_legs _ -> "too_many_legs"
  | Sweep.E_bad_geometry _ -> "bad_geometry"

let check_err name expected = function
  | Ok _ -> Alcotest.fail (name ^ ": accepted a bad spec")
  | Error e ->
    Alcotest.(check string) name expected (err_name e);
    (* every error renders a diagnostic *)
    Alcotest.(check bool) (name ^ ": message") true
      (String.length (Sweep.error_to_string e) > 0)

let parse_ok text =
  match Sweep.parse text with
  | Ok s -> s
  | Error e -> Alcotest.fail (Sweep.error_to_string e)

(* ---- spec parser ---- *)

let test_round_trip () =
  let text = "cache.l2.size=16k,32k,64k x bpred=gshare,hybrid x mem.latency=40,80" in
  let s = parse_ok text in
  Alcotest.(check string) "to_string is canonical" text (Sweep.to_string s);
  (match Sweep.parse (Sweep.to_string s) with
  | Ok s2 -> Alcotest.(check bool) "reparse equals" true (s = s2)
  | Error e -> Alcotest.fail (Sweep.error_to_string e));
  (* extra spaces and tabs normalise to the same spec *)
  let s3 =
    parse_ok
      "  cache.l2.size=16k,32k,64k   x\tbpred=gshare,hybrid x mem.latency=40,80 "
  in
  Alcotest.(check bool) "whitespace-insensitive" true (s = s3)

let test_cross_product () =
  let spec = parse_ok "cache.l2.size=16k,32k x bpred=gshare,bimodal" in
  match Sweep.legs ~base:Config.tiny spec with
  | Error e -> Alcotest.fail (Sweep.error_to_string e)
  | Ok legs ->
    Alcotest.(check int) "2x2 legs" 4 (List.length legs);
    (* odometer order: first axis varies slowest *)
    Alcotest.(check (list string)) "leg names"
      [
        "cache.l2.size=16k,bpred=gshare";
        "cache.l2.size=16k,bpred=bimodal";
        "cache.l2.size=32k,bpred=gshare";
        "cache.l2.size=32k,bpred=bimodal";
      ]
      (List.map (fun l -> l.Sweep.l_name) legs);
    (* every leg keys a distinct result-cache universe *)
    let digests = List.map (fun l -> l.Sweep.l_digest) legs in
    Alcotest.(check int) "digests distinct" 4
      (List.length (List.sort_uniq String.compare digests));
    Alcotest.(check bool) "base digest untouched" false
      (List.mem (Store.config_digest Config.tiny) digests)

let test_typed_errors () =
  check_err "unknown key" "unknown_key" (Sweep.parse "cache.l4.size=1m");
  check_err "empty value list" "empty_values" (Sweep.parse "mem.latency=");
  check_err "empty value in list" "empty_values" (Sweep.parse "mem.latency=40,");
  check_err "duplicate axis" "duplicate_axis"
    (Sweep.parse "bpred=gshare x bpred=hybrid");
  check_err "non-pow2 size" "bad_value" (Sweep.parse "cache.l2.size=7k");
  check_err "unknown enum value" "bad_value" (Sweep.parse "bpred=oracle");
  check_err "rename pool too small" "bad_value" (Sweep.parse "phys.regs=8");
  check_err "missing '='" "syntax" (Sweep.parse "bpred");
  check_err "trailing x" "syntax" (Sweep.parse "bpred=gshare x");
  check_err "leading x" "syntax" (Sweep.parse "x bpred=gshare");
  check_err "axes without separator" "syntax"
    (Sweep.parse "bpred=gshare mem.latency=40");
  check_err "empty spec" "syntax" (Sweep.parse "   ");
  check_err "cross product capped" "too_many_legs"
    (Sweep.parse
       ("rob.size="
       ^ String.concat "," (List.init 257 (fun i -> string_of_int (i + 16)))));
  (* geometry that Cache.create would reject is a typed error at spec
     expansion, not an exception mid-replay *)
  check_err "ways do not divide the lines" "bad_geometry"
    (Sweep.legs ~base:Config.tiny (parse_ok "cache.l1d.ways=3"))

(* ---- paired-CI arithmetic against hand-computed fixtures ---- *)

let feps = Alcotest.float 1e-6

let test_paired_fixtures () =
  (* constant shift: all delta variance cancels, so the paired CI is 0
     while the independent CI is dominated by the workload spread *)
  let baseline = [| 2.0; 4.0; 6.0; 8.0 |] in
  let candidate = [| 2.5; 4.5; 6.5; 8.5 |] in
  let t = Paired.compare ~baseline ~candidate in
  Alcotest.(check int) "pairs" 4 t.Paired.n;
  Alcotest.check feps "mean baseline" 5.0 t.Paired.mean_baseline;
  Alcotest.check feps "mean candidate" 5.5 t.Paired.mean_candidate;
  Alcotest.check feps "delta mean" 0.5 t.Paired.delta_mean;
  Alcotest.check feps "delta sd" 0.0 t.Paired.delta_sd;
  Alcotest.check feps "paired ci95" 0.0 t.Paired.delta_ci95;
  (* var = 20/3 each side; 1.96 * sqrt(2 * (20/3) / 4) *)
  Alcotest.check (Alcotest.float 1e-4) "independent ci95" 3.57845
    t.Paired.indep_ci95;
  Alcotest.(check bool) "paired resolves the shift" true
    (Paired.paired_excludes_zero t);
  Alcotest.(check bool) "independent cannot" false (Paired.indep_excludes_zero t);
  Alcotest.(check string) "candidate is a loss (higher CPI)" "loss"
    (Paired.verdict_to_string (Paired.verdict t));
  (* varying deltas: sd over n-1; ci = 1.96 * sd / sqrt n *)
  let t2 =
    Paired.compare ~baseline:[| 1.0; 2.0; 3.0 |]
      ~candidate:[| 0.9; 1.7; 2.8 |]
  in
  Alcotest.check feps "delta mean (win)" (-0.2) t2.Paired.delta_mean;
  Alcotest.check feps "delta sd (win)" 0.1 t2.Paired.delta_sd;
  Alcotest.check (Alcotest.float 1e-5) "paired ci95 (win)"
    (1.96 *. 0.1 /. sqrt 3.0) t2.Paired.delta_ci95;
  Alcotest.(check string) "candidate is a win" "win"
    (Paired.verdict_to_string (Paired.verdict t2));
  (* a single pair can never exclude zero *)
  let t3 = Paired.compare ~baseline:[| 1.0 |] ~candidate:[| 0.5 |] in
  Alcotest.(check string) "one pair is a tie" "tie"
    (Paired.verdict_to_string (Paired.verdict t3));
  Alcotest.(check bool) "one pair excludes nothing" false
    (Paired.paired_excludes_zero t3 || Paired.indep_excludes_zero t3);
  (* mismatched interval sets are a caller bug, not a silent truncation *)
  match Paired.compare ~baseline:[| 1.0; 2.0 |] ~candidate:[| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

(* ---- CLI flag validation ---- *)

let flags ?(store = "s") ?(spec = "mem.latency=40") ?(jobs = 1)
    ?(guard_degrade = false) ?(tracing = false) ?(sampling = false)
    ?(fuzz = false) () =
  Sweep.check_flags ~store ~spec ~jobs ~guard_degrade ~tracing ~sampling ~fuzz
    ()

let test_check_flags () =
  (match flags () with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("valid flags rejected: " ^ m));
  let reject name r =
    match r with
    | Ok () -> Alcotest.fail (name ^ ": contradictory flags accepted")
    | Error m ->
      Alcotest.(check bool) (name ^ ": explains itself") true
        (String.length m > 0)
  in
  reject "sweep + fuzz" (flags ~fuzz:true ());
  reject "sweep + guard degrade" (flags ~guard_degrade:true ());
  reject "sweep + tracing" (flags ~tracing:true ());
  reject "sweep + sampling flags" (flags ~sampling:true ());
  reject "missing store" (flags ~store:"" ());
  reject "missing spec" (flags ~spec:"" ());
  reject "negative jobs" (flags ~jobs:(-1) ())

(* ---- end to end over a phased capture ---- *)

let schedule =
  { Sample.ff_insns = 8_000; warmup_insns = 600; measure_insns = 1_200 }

(* Alternating phases: a friendly loop hammering one line, then a
   64-byte stride over 128 KB — double the tiny config's L2 — so
   intervals land in wildly different CPI regimes (huge
   interval-to-interval variance, the enemy of independent CIs) and the
   measured windows actually touch memory (sensitivity to the planted
   mem.latency delta). *)
let phased_domain () =
  let g = G.create () in
  G.li g G.rbp Machine.heap_base;
  G.lii g G.rdx 10;
  G.label g "phase";
  G.lii g G.rcx 1_200;
  G.label g "fr";
  G.ld g G.rax ~base:G.rbp ();
  G.addi g G.rax 1;
  G.st g ~base:G.rbp G.rax ();
  G.dec g G.rcx;
  G.jne g "fr";
  G.li g G.rsi Machine.heap_base;
  G.lii g G.rcx 2_048;
  G.label g "ho";
  G.ld g G.rax ~base:G.rsi ();
  G.addi g G.rsi 64;
  G.dec g G.rcx;
  G.jne g "ho";
  G.dec g G.rdx;
  G.jne g "phase";
  G.ins g Insn.Hlt;
  let m = Machine.create (G.assemble g) in
  Domain.create ~core:"ooo" ~config:Config.tiny m.Machine.env m.Machine.ctx

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "optlsim_sweep_test_%d_%d" (Unix.getpid ()) !n)

(* one phased capture, shared by the end-to-end tests (legs accumulate
   in its result cache, which is itself part of what we test) *)
let store =
  lazy
    (let placement = Sample.Rand_offset 7 in
     let cr = Sample.run_capture ~placement ~schedule (phased_domain ()) in
     match
       Store.create ~dir:(fresh_dir ()) ~workload:"sweep-test" ~core:"ooo"
         ~schedule
         ~placement:(Sample.placement_to_string placement)
         cr ~config:Config.tiny
     with
     | Ok s -> s
     | Error e -> Alcotest.fail (Store.error_to_string e))

let run_ok st spec =
  match Sweep.run ~jobs:1 st spec with
  | Ok r -> r
  | Error m -> Alcotest.fail m

(* the tentpole claim: a planted ~10% memory-latency delta is resolved
   by the paired CIs and invisible to independent-run CIs at the same
   interval budget *)
let test_planted_delta () =
  let st = Lazy.force store in
  let r = run_ok st (parse_ok "mem.latency=36,44") in
  Alcotest.(check int) "base + 2 legs ranked" 3 (List.length r.Sweep.rep_ranked);
  let best = List.hd r.Sweep.rep_ranked in
  Alcotest.(check string) "planted-better leg ranked first" "mem.latency=36"
    best.Sweep.rk.Sweep.lr_leg.Sweep.l_name;
  let base_row =
    List.find (fun rk -> rk.Sweep.rk_base) r.Sweep.rep_ranked
  in
  Alcotest.(check string) "base vs itself is a tie" "tie"
    (Paired.verdict_to_string base_row.Sweep.rk_verdict);
  List.iter
    (fun rk ->
      if not rk.Sweep.rk_base then begin
        let name = rk.Sweep.rk.Sweep.lr_leg.Sweep.l_name in
        let cmp = rk.Sweep.rk_vs_base in
        Alcotest.(check bool) (name ^ ": pairs matched") true
          (cmp.Paired.n >= 2);
        Alcotest.(check bool) (name ^ ": paired CI resolves the delta") true
          (Paired.paired_excludes_zero cmp);
        Alcotest.(check bool) (name ^ ": independent CI is blind to it") false
          (Paired.indep_excludes_zero cmp)
      end)
    r.Sweep.rep_ranked;
  let verdict_of name =
    let rk =
      List.find
        (fun rk -> rk.Sweep.rk.Sweep.lr_leg.Sweep.l_name = name)
        r.Sweep.rep_ranked
    in
    Paired.verdict_to_string rk.Sweep.rk_verdict
  in
  Alcotest.(check string) "faster memory wins" "win"
    (verdict_of "mem.latency=36");
  Alcotest.(check string) "slower memory loses" "loss"
    (verdict_of "mem.latency=44")

(* same store + same spec = byte-identical report, and the second run
   is answered entirely from the result cache *)
let test_determinism_and_cache () =
  let st = Lazy.force store in
  let spec = parse_ok "mem.latency=36,44" in
  let r1 = run_ok st spec in
  let r2 = run_ok st spec in
  Alcotest.(check string) "byte-identical report"
    (Sweep.render_string r1) (Sweep.render_string r2);
  List.iter
    (fun rk ->
      Alcotest.(check int)
        (rk.Sweep.rk.Sweep.lr_leg.Sweep.l_name ^ ": rerun fully cached") 0
        rk.Sweep.rk.Sweep.lr_replayed)
    r2.Sweep.rep_ranked;
  (* base + both legs left their results behind *)
  Alcotest.(check bool) "cache holds >= 3 config digests" true
    (List.length (Store.cached_digests st) >= 3)

(* a leg that changes cache and predictor geometry cannot reuse the
   captured uarch snapshots: those components start cold and re-warm,
   and the replay must complete rather than crash on the mismatch *)
let test_geometry_change_leg () =
  let st = Lazy.force store in
  let r = run_ok st (parse_ok "cache.l2.size=32k x bpred=bimodal") in
  let leg =
    List.find (fun rk -> not rk.Sweep.rk_base) r.Sweep.rep_ranked
  in
  let lr = leg.Sweep.rk in
  Alcotest.(check string) "leg name" "cache.l2.size=32k,bpred=bimodal"
    lr.Sweep.lr_leg.Sweep.l_name;
  Alcotest.(check bool) "every interval replayed" true
    (lr.Sweep.lr_result.Sample.measured_insns > 0);
  Alcotest.(check int) "same interval count as base"
    (List.length r.Sweep.rep_base.Sweep.lr_result.Sample.intervals)
    (List.length lr.Sweep.lr_result.Sample.intervals);
  Alcotest.(check bool) "timed CPI is sane" true
    (lr.Sweep.lr_result.Sample.cpi > 0.5
    && lr.Sweep.lr_result.Sample.cpi < 100.0)

(* a PWC leg over a capture taken with walk caches disabled: the stored
   uarch snapshots hold no PWC state, so the pwc.entries=16 leg's walk
   caches restore fit-tolerantly (start cold and warm up) and the paired
   report still comes out — the fleet-replay side of the VM scenario
   axes *)
let test_pwc_geometry_leg () =
  let st = Lazy.force store in
  let r = run_ok st (parse_ok "pwc.entries=0,16") in
  Alcotest.(check int) "base + 2 legs ranked" 3 (List.length r.Sweep.rep_ranked);
  List.iter
    (fun rk ->
      if not rk.Sweep.rk_base then begin
        let lr = rk.Sweep.rk in
        let name = lr.Sweep.lr_leg.Sweep.l_name in
        Alcotest.(check bool) (name ^ ": replay completed") true
          (lr.Sweep.lr_result.Sample.measured_insns > 0);
        Alcotest.(check int) (name ^ ": same interval count as base")
          (List.length r.Sweep.rep_base.Sweep.lr_result.Sample.intervals)
          (List.length lr.Sweep.lr_result.Sample.intervals);
        Alcotest.(check bool) (name ^ ": timed CPI is sane") true
          (lr.Sweep.lr_result.Sample.cpi > 0.5
          && lr.Sweep.lr_result.Sample.cpi < 100.0)
      end)
    r.Sweep.rep_ranked

let suite =
  [
    Alcotest.test_case "spec round-trips" `Quick test_round_trip;
    Alcotest.test_case "cross product in odometer order" `Quick
      test_cross_product;
    Alcotest.test_case "typed spec errors" `Quick test_typed_errors;
    Alcotest.test_case "paired-CI fixtures" `Quick test_paired_fixtures;
    Alcotest.test_case "contradictory flags rejected" `Quick test_check_flags;
    Alcotest.test_case "planted delta: paired sees, independent is blind"
      `Quick test_planted_delta;
    Alcotest.test_case "deterministic report, cached rerun" `Quick
      test_determinism_and_cache;
    Alcotest.test_case "geometry-changing leg replays cold" `Quick
      test_geometry_change_leg;
    Alcotest.test_case "pwc leg restores fit-tolerantly" `Quick
      test_pwc_geometry_leg;
  ]
