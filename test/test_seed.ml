(** Single source of randomness for every randomized test in the suite.

    The seed comes from [OPTLSIM_TEST_SEED] (default 42) and is threaded
    into every QCheck property via {!to_alcotest} and into simulator-side
    generators via {!rng} (lib/util/rng.ml's deterministic xoshiro), so a
    failing randomized run is reproducible by exporting the seed the
    runner printed. *)

let seed =
  match Sys.getenv "OPTLSIM_TEST_SEED" with
  | s ->
    (match int_of_string_opt s with
    | Some n -> n
    | None ->
      Printf.eprintf "OPTLSIM_TEST_SEED=%S is not an integer; using 42\n" s;
      42)
  | exception Not_found -> 42

(** A fresh deterministic simulator RNG seeded from {!seed}; [salt]
    decorrelates independent tests without losing reproducibility. *)
let rng ?(salt = 0) () = Ptl_util.Rng.create (seed + salt)

(** Wrap a QCheck property as an alcotest case with its generator state
    seeded from {!seed} (replaces [QCheck_alcotest.to_alcotest], which
    seeds from a global nondeterministic default). *)
let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test
