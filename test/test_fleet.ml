(* Fleet tests (lib/fleet): lease bookkeeping (timeouts, worker death,
   stragglers) as pure unit tests, flag validation, and an end-to-end
   serve/work run over a real unix socket — including a worker that
   dies mid-lease — whose merged result must be bit-identical to an
   in-process replay of the same capture. *)

module Sample = Ptl_sample.Sample
module Store = Ptl_store.Store
module Fleet = Ptl_fleet.Fleet
module Lq = Ptl_fleet.Lease_queue
module Config = Ptl_ooo.Config

(* ---- lease queue ---- *)

let test_lease_queue_basics () =
  let q = Lq.create ~count:4 ~cached:[ 2 ] in
  Alcotest.(check int) "cached pre-decided" 1 (Lq.decided_count q);
  Alcotest.(check int) "rest pending" 3 (Lq.pending q);
  let l1 = Lq.lease q ~owner:"a" ~now:0.0 ~timeout:10.0 in
  let l2 = Lq.lease q ~owner:"b" ~now:0.0 ~timeout:10.0 in
  Alcotest.(check (option int)) "first lease" (Some 0) l1;
  Alcotest.(check (option int)) "second lease skips cached later" (Some 1) l2;
  Alcotest.(check int) "two leased" 2 (Lq.leased q);
  Alcotest.(check bool) "complete decides" true (Lq.complete q 0);
  Alcotest.(check bool) "duplicate completion ignored" false (Lq.complete q 0);
  Alcotest.(check bool) "cached index never re-decided" false (Lq.complete q 2);
  Alcotest.(check (option int)) "third lease" (Some 3)
    (Lq.lease q ~owner:"a" ~now:1.0 ~timeout:10.0);
  Alcotest.(check (option int)) "drained" None
    (Lq.lease q ~owner:"a" ~now:1.0 ~timeout:10.0);
  Alcotest.(check bool) "not finished while leases open" false (Lq.finished q);
  ignore (Lq.complete q 1);
  ignore (Lq.complete q 3);
  Alcotest.(check bool) "finished" true (Lq.finished q)

let test_lease_queue_timeout () =
  let q = Lq.create ~count:2 ~cached:[] in
  ignore (Lq.lease q ~owner:"w" ~now:0.0 ~timeout:5.0);
  Alcotest.(check (list int)) "nothing stale yet" [] (Lq.expire q ~now:4.0);
  Alcotest.(check (list int)) "lease expires" [ 0 ] (Lq.expire q ~now:6.0);
  (* the expired index is handed out again *)
  Alcotest.(check (option int)) "re-leased after expiry" (Some 1)
    (Lq.lease q ~owner:"v" ~now:6.0 ~timeout:5.0);
  Alcotest.(check (option int)) "requeued index comes back" (Some 0)
    (Lq.lease q ~owner:"v" ~now:6.0 ~timeout:5.0)

let test_lease_queue_worker_death () =
  let q = Lq.create ~count:3 ~cached:[] in
  ignore (Lq.lease q ~owner:"victim" ~now:0.0 ~timeout:60.0);
  ignore (Lq.lease q ~owner:"victim" ~now:0.0 ~timeout:60.0);
  ignore (Lq.lease q ~owner:"survivor" ~now:0.0 ~timeout:60.0);
  Alcotest.(check (list int)) "victim's leases re-queue" [ 0; 1 ]
    (Lq.drop_owner q "victim");
  Alcotest.(check int) "survivor keeps its lease" 1 (Lq.leased q);
  (* straggler: the victim's result for a re-queued index still lands
     first — the later worker's duplicate must be ignored *)
  Alcotest.(check bool) "straggler completion wins" true (Lq.complete q 0);
  Alcotest.(check (option int)) "lease skips the decided index" (Some 1)
    (Lq.lease q ~owner:"survivor" ~now:1.0 ~timeout:60.0)

let test_lease_queue_release_touch () =
  let q = Lq.create ~count:2 ~cached:[] in
  ignore (Lq.lease q ~owner:"w" ~now:0.0 ~timeout:5.0);
  (* a heartbeat renews the deadline: not stale at t=6 after a touch
     at t=4, stale without a further one at t=10 *)
  Alcotest.(check bool) "touch renews" true
    (Lq.touch q 0 ~owner:"w" ~now:4.0 ~timeout:5.0);
  Alcotest.(check (list int)) "renewed lease not stale" []
    (Lq.expire q ~now:6.0);
  Alcotest.(check bool) "touch by non-owner ignored" false
    (Lq.touch q 0 ~owner:"thief" ~now:6.0 ~timeout:5.0);
  Alcotest.(check (list int)) "expires from the renewed deadline" [ 0 ]
    (Lq.expire q ~now:10.0);
  Alcotest.(check bool) "touch after expiry ignored" false
    (Lq.touch q 0 ~owner:"w" ~now:10.0 ~timeout:5.0);
  (* release: a typed failure returns the lease to the queue. After the
     expiry above the queue holds [1; 0]; take both, release 0 *)
  Alcotest.(check (option int)) "untouched index first" (Some 1)
    (Lq.lease q ~owner:"w" ~now:10.0 ~timeout:5.0);
  Alcotest.(check (option int)) "expired index re-leased" (Some 0)
    (Lq.lease q ~owner:"w" ~now:10.0 ~timeout:5.0);
  Alcotest.(check bool) "release requeues" true (Lq.release q 0 ~owner:"w");
  Alcotest.(check bool) "double release ignored" false
    (Lq.release q 0 ~owner:"w");
  Alcotest.(check int) "released index pending again" 1 (Lq.pending q);
  Alcotest.(check bool) "not decided" false (Lq.is_decided q 0);
  ignore (Lq.lease q ~owner:"v" ~now:10.0 ~timeout:5.0);
  ignore (Lq.complete q 0);
  Alcotest.(check bool) "decided after completion" true (Lq.is_decided q 0);
  Alcotest.(check bool) "out-of-range never decided" false (Lq.is_decided q 99)

(* ---- flag validation ---- *)

let check_err name = function
  | Error (_ : string) -> ()
  | Ok _ -> Alcotest.fail (name ^ ": accepted a contradictory flag combo")

let test_check_flags () =
  check_err "capture without store" (Fleet.check_capture ~store:"" ~jobs:None ());
  check_err "capture with --sample-jobs"
    (Fleet.check_capture ~store:"/tmp/s" ~jobs:(Some 4) ());
  Alcotest.(check bool) "capture ok" true
    (Fleet.check_capture ~store:"/tmp/s" ~jobs:None () = Ok ());
  check_err "serve without store"
    (Fleet.check_serve ~store:"" ~socket:"/tmp/s.sock" ~lease_timeout:30.0
       ~max_failures:3 ());
  check_err "serve without socket"
    (Fleet.check_serve ~store:"/tmp/s" ~socket:"" ~lease_timeout:30.0
       ~max_failures:3 ());
  check_err "serve with absurd socket path"
    (Fleet.check_serve ~store:"/tmp/s" ~socket:(String.make 200 'x')
       ~lease_timeout:30.0 ~max_failures:3 ());
  check_err "serve with nonpositive lease timeout"
    (Fleet.check_serve ~store:"/tmp/s" ~socket:"/tmp/s.sock"
       ~lease_timeout:0.0 ~max_failures:3 ());
  check_err "serve with zero retry budget"
    (Fleet.check_serve ~store:"/tmp/s" ~socket:"/tmp/s.sock"
       ~lease_timeout:30.0 ~max_failures:0 ());
  Alcotest.(check bool) "serve ok" true
    (Fleet.check_serve ~store:"/tmp/s" ~socket:"/tmp/s.sock"
       ~lease_timeout:30.0 ~max_failures:3 ()
    = Ok ());
  check_err "work without connect" (Fleet.check_work ~connect:"" ());
  check_err "replay without store" (Fleet.check_replay ~store:"" ~jobs:1 ());
  check_err "replay with negative jobs"
    (Fleet.check_replay ~store:"/tmp/s" ~jobs:(-1) ());
  Alcotest.(check bool) "replay jobs=0 means auto-detect" true
    (Fleet.check_replay ~store:"/tmp/s" ~jobs:0 () = Ok ())

(* ---- end to end over a real socket ---- *)

let schedule =
  { Sample.ff_insns = 6_000; warmup_insns = 800; measure_insns = 1_200 }

let fresh_paths name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "optlsim_%s_%d" name (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  (dir, dir ^ ".sock")

(* one shared capture for the end-to-end tests (the capture pass is the
   expensive part; stores built from it are cheap) *)
let captured =
  lazy
    (let d, _ = Test_checkpoint.bare_loop ~iters:20_000 () in
     let cr = Sample.run_capture ~schedule d in
     let ivs =
       Sample.replay_capture ~core_name:"ooo" ~config:Config.tiny ~schedule cr
     in
     let expected =
       Sample.aggregate ~total_insns:cr.Sample.cr_insns
         ~total_cycles:cr.Sample.cr_cycles
         (Array.to_list ivs |> List.filter_map Fun.id)
     in
     (cr, ivs, expected))

let make_store ~dir cr =
  match
    Store.create ~dir ~workload:"fleet-test" ~core:"ooo" ~schedule
      ~placement:"fixed" cr ~config:Config.tiny
  with
  | Ok s -> s
  | Error e -> Alcotest.fail (Store.error_to_string e)

let connect_when_up path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error (_, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if tries <= 0 then Alcotest.fail "server never came up"
      else begin
        Unix.sleepf 0.05;
        go (tries - 1)
      end
  in
  go 200

(* serve + one worker, with a second "worker" that leases an interval
   and dies without delivering: the lease must re-queue and the merged
   result must still be bit-identical to an in-process replay *)
let test_fleet_end_to_end () =
  let cr, _, expected = Lazy.force captured in
  let count = Array.length cr.Sample.cr_deltas in
  Alcotest.(check bool) "several intervals" true (count >= 5);
  let dir, sock = fresh_paths "fleet_e2e" in
  let store = make_store ~dir cr in
  let server =
    Stdlib.Domain.spawn (fun () ->
        Fleet.serve ~lease_timeout:60.0 ~socket:sock store)
  in
  (* the victim: lease interval 0, then vanish without delivering *)
  let fd = connect_when_up sock in
  Fleet.send fd (Fleet.Hello { worker = "victim" });
  (match (Fleet.recv fd : Fleet.reply) with
  | Fleet.Welcome { count = advertised; _ } ->
    Alcotest.(check int) "welcome advertises the store" count advertised
  | _ -> Alcotest.fail "expected Welcome");
  Fleet.send fd Fleet.Lease;
  (match (Fleet.recv fd : Fleet.reply) with
  | Fleet.Work _ -> ()
  | _ -> Alcotest.fail "expected a lease");
  Unix.close fd;
  (* a real worker drains the queue, including the re-queued interval *)
  let replayed =
    match Fleet.work ~retries:10 ~connect:sock () with
    | Ok n -> n
    | Error msg -> Alcotest.fail msg
  in
  let sv = Stdlib.Domain.join server in
  Alcotest.(check int) "worker replayed everything" count replayed;
  Alcotest.(check int) "server merged everything" count sv.Fleet.sv_replayed;
  Alcotest.(check bool) "victim's lease was re-queued" true
    (sv.Fleet.sv_requeued >= 1);
  Alcotest.(check bool) "merged result bit-identical to local replay" true
    (sv.Fleet.sv_result = expected);
  (* the run populated the (checkpoint, config) cache: a re-serve with
     no workers at all finishes instantly from cache, same answer *)
  let sv2 = Fleet.serve ~lease_timeout:60.0 ~socket:sock store in
  Alcotest.(check int) "everything from cache" count sv2.Fleet.sv_cached;
  Alcotest.(check int) "nothing replayed" 0 sv2.Fleet.sv_replayed;
  Alcotest.(check bool) "cached result identical" true
    (sv2.Fleet.sv_result = expected);
  (* and the in-process consumer agrees too *)
  match Fleet.replay ~jobs:1 store with
  | Ok rp ->
    Alcotest.(check bool) "replay result identical" true
      (rp.Fleet.rp_result = expected)
  | Error e -> Alcotest.fail (Store.error_to_string e)

(* a slow-but-alive worker: holds one lease well past the lease timeout
   while renewing it with heartbeats, then delivers — the lease must
   never be stolen (sv_requeued = 0) and the result stays identical *)
let test_heartbeat_keeps_lease () =
  let cr, _, expected = Lazy.force captured in
  let dir, sock = fresh_paths "fleet_hb" in
  let store = make_store ~dir cr in
  let lease_timeout = 1.0 in
  let server =
    Stdlib.Domain.spawn (fun () ->
        Fleet.serve ~lease_timeout ~max_failures:3 ~socket:sock store)
  in
  let fd = connect_when_up sock in
  Fleet.send fd (Fleet.Hello { worker = "slowpoke" });
  let hb =
    match (Fleet.recv fd : Fleet.reply) with
    | Fleet.Welcome { heartbeat; _ } -> heartbeat
    | _ -> Alcotest.fail "expected Welcome"
  in
  Alcotest.(check bool) "heartbeat interval beats the lease timeout" true
    (hb > 0.0 && hb < lease_timeout);
  Fleet.send fd Fleet.Lease;
  let index =
    match (Fleet.recv fd : Fleet.reply) with
    | Fleet.Work { index } -> index
    | _ -> Alcotest.fail "expected a lease"
  in
  (* outlive the lease timeout, renewing on the advertised cadence *)
  for _ = 1 to 6 do
    Unix.sleepf 0.3;
    Fleet.send fd (Fleet.Heartbeat { index });
    match (Fleet.recv fd : Fleet.reply) with
    | Fleet.Ack -> ()
    | _ -> Alcotest.fail "heartbeat expects Ack"
  done;
  let iv =
    Sample.replay_delta ~core_name:"ooo" ~config:Config.tiny ~schedule ~index
      ~base:cr.Sample.cr_base
      cr.Sample.cr_deltas.(index)
  in
  Fleet.send fd (Fleet.Done { index; outcome = Fleet.Replayed iv });
  (match (Fleet.recv fd : Fleet.reply) with
  | Fleet.Ack -> ()
  | _ -> Alcotest.fail "done expects Ack");
  Unix.close fd;
  let replayed =
    match Fleet.work ~retries:10 ~connect:sock () with
    | Ok n -> n
    | Error msg -> Alcotest.fail msg
  in
  let sv = Stdlib.Domain.join server in
  let count = Array.length cr.Sample.cr_deltas in
  Alcotest.(check int) "the drain worker got the rest" (count - 1) replayed;
  Alcotest.(check int) "slow lease never stolen" 0 sv.Fleet.sv_requeued;
  Alcotest.(check bool) "nothing quarantined" true (sv.Fleet.sv_quarantined = []);
  Alcotest.(check bool) "result identical" true (sv.Fleet.sv_result = expected)

(* mid-run server restart: a worker that has delivered nothing and gets
   Welcome'd then cut off must reconnect (with backoff) and drain the
   real server that replaces the dead one *)
let test_worker_reconnects_after_restart () =
  let cr, _, expected = Lazy.force captured in
  let dir, sock = fresh_paths "fleet_rc" in
  let store = make_store ~dir cr in
  let count = Array.length cr.Sample.cr_deltas in
  let server =
    Stdlib.Domain.spawn (fun () ->
        (* incarnation 1: greet the first worker, then die on it *)
        let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind listen_fd (Unix.ADDR_UNIX sock);
        Unix.listen listen_fd 4;
        let c, _ = Unix.accept listen_fd in
        (match (Fleet.recv c : Fleet.request) with
        | Fleet.Hello _ ->
          Fleet.send c
            (Fleet.Welcome
               {
                 dir;
                 core = "ooo";
                 config = Config.tiny;
                 schedule;
                 count;
                 heartbeat = 0.25;
               })
        | _ -> ());
        Unix.close c;
        Unix.close listen_fd;
        (try Sys.remove sock with Sys_error _ -> ());
        (* incarnation 2: the real server on the same socket *)
        Fleet.serve ~lease_timeout:60.0 ~max_failures:3 ~socket:sock store)
  in
  let replayed =
    match
      Fleet.work ~retries:50 ~reconnects:2 ~recv_timeout:5.0 ~connect:sock ()
    with
    | Ok n -> n
    | Error msg -> Alcotest.fail msg
  in
  let sv = Stdlib.Domain.join server in
  Alcotest.(check int) "worker drained everything after reconnecting" count
    replayed;
  Alcotest.(check bool) "result identical" true (sv.Fleet.sv_result = expected)

(* corrupt interval record 23 bytes in (the first Marshal payload byte,
   so the CRC check must trip): the fleet quarantines it after exactly
   max_failures attempts and terminates with a degraded result *)
let corrupt_interval store index =
  let path = Store.interval_path store index in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd 23 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 1 '\000') 0 1);
  Unix.close fd

let degraded_expected cr ivs ~poison =
  Sample.aggregate ~total_insns:cr.Sample.cr_insns
    ~total_cycles:cr.Sample.cr_cycles
    (Array.to_list ivs
    |> List.filteri (fun i _ -> i <> poison)
    |> List.filter_map Fun.id)

let test_poison_interval_quarantine () =
  let cr, ivs, expected = Lazy.force captured in
  let count = Array.length cr.Sample.cr_deltas in
  let poison = 1 in
  let survivors = degraded_expected cr ivs ~poison in
  Alcotest.(check bool) "poison actually contributes" true
    (survivors <> expected);
  (* in-process replay: one attempt, quarantined, run completes *)
  let dir, _ = fresh_paths "fleet_poison_rp" in
  let store = make_store ~dir cr in
  corrupt_interval store poison;
  (match Fleet.replay ~jobs:1 store with
  | Error e -> Alcotest.fail (Store.error_to_string e)
  | Ok rp ->
    Alcotest.(check (list int)) "replay quarantines the poison" [ poison ]
      (List.map fst rp.Fleet.rp_quarantined);
    Alcotest.(check int) "survivors replayed" (count - 1) rp.Fleet.rp_replayed;
    Alcotest.(check bool) "degraded result covers survivors" true
      (rp.Fleet.rp_result = survivors));
  (* fleet: bounded retries — exactly max_failures diagnostics, then
     the run terminates (no livelock) with the same degraded result *)
  let dir, sock = fresh_paths "fleet_poison_sv" in
  let store = make_store ~dir cr in
  corrupt_interval store poison;
  let max_failures = 2 in
  let server =
    Stdlib.Domain.spawn (fun () ->
        Fleet.serve ~lease_timeout:60.0 ~max_failures ~socket:sock store)
  in
  let replayed =
    match Fleet.work ~retries:10 ~connect:sock () with
    | Ok n -> n
    | Error msg -> Alcotest.fail msg
  in
  let sv = Stdlib.Domain.join server in
  Alcotest.(check int) "worker replayed the survivors" (count - 1) replayed;
  (match sv.Fleet.sv_quarantined with
  | [ (i, diags) ] ->
    Alcotest.(check int) "poison index quarantined" poison i;
    Alcotest.(check int) "retry budget fully spent, then stopped"
      max_failures (List.length diags)
  | q ->
    Alcotest.fail
      (Printf.sprintf "expected one quarantined interval, got %d"
         (List.length q)));
  Alcotest.(check bool) "degraded fleet result covers survivors" true
    (sv.Fleet.sv_result = survivors);
  (* the degraded report names the poison and the coverage loss *)
  let tmp = Filename.temp_file "optlsim_degraded" ".txt" in
  let oc = open_out tmp in
  Sample.report_degraded oc ~count ~quarantined:sv.Fleet.sv_quarantined
    sv.Fleet.sv_result;
  close_out oc;
  let ic = open_in tmp in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report is marked DEGRADED" true
    (contains text "DEGRADED");
  Alcotest.(check bool) "report names the quarantined interval" true
    (contains text "interval 1")

let suite =
  [
    Alcotest.test_case "lease queue basics" `Quick test_lease_queue_basics;
    Alcotest.test_case "lease queue release and touch" `Quick
      test_lease_queue_release_touch;
    Alcotest.test_case "lease queue timeout" `Quick test_lease_queue_timeout;
    Alcotest.test_case "lease queue worker death" `Quick
      test_lease_queue_worker_death;
    Alcotest.test_case "flag validation" `Quick test_check_flags;
    Alcotest.test_case "fleet end to end (with worker death)" `Quick
      test_fleet_end_to_end;
    Alcotest.test_case "heartbeats keep a slow lease alive" `Quick
      test_heartbeat_keeps_lease;
    Alcotest.test_case "worker reconnects after server restart" `Quick
      test_worker_reconnects_after_restart;
    Alcotest.test_case "poison interval quarantined in bounded retries"
      `Quick test_poison_interval_quarantine;
  ]
