(* Fleet tests (lib/fleet): lease bookkeeping (timeouts, worker death,
   stragglers) as pure unit tests, flag validation, and an end-to-end
   serve/work run over a real unix socket — including a worker that
   dies mid-lease — whose merged result must be bit-identical to an
   in-process replay of the same capture. *)

module Sample = Ptl_sample.Sample
module Store = Ptl_store.Store
module Fleet = Ptl_fleet.Fleet
module Lq = Ptl_fleet.Lease_queue
module Config = Ptl_ooo.Config

(* ---- lease queue ---- *)

let test_lease_queue_basics () =
  let q = Lq.create ~count:4 ~cached:[ 2 ] in
  Alcotest.(check int) "cached pre-decided" 1 (Lq.decided_count q);
  Alcotest.(check int) "rest pending" 3 (Lq.pending q);
  let l1 = Lq.lease q ~owner:"a" ~now:0.0 ~timeout:10.0 in
  let l2 = Lq.lease q ~owner:"b" ~now:0.0 ~timeout:10.0 in
  Alcotest.(check (option int)) "first lease" (Some 0) l1;
  Alcotest.(check (option int)) "second lease skips cached later" (Some 1) l2;
  Alcotest.(check int) "two leased" 2 (Lq.leased q);
  Alcotest.(check bool) "complete decides" true (Lq.complete q 0);
  Alcotest.(check bool) "duplicate completion ignored" false (Lq.complete q 0);
  Alcotest.(check bool) "cached index never re-decided" false (Lq.complete q 2);
  Alcotest.(check (option int)) "third lease" (Some 3)
    (Lq.lease q ~owner:"a" ~now:1.0 ~timeout:10.0);
  Alcotest.(check (option int)) "drained" None
    (Lq.lease q ~owner:"a" ~now:1.0 ~timeout:10.0);
  Alcotest.(check bool) "not finished while leases open" false (Lq.finished q);
  ignore (Lq.complete q 1);
  ignore (Lq.complete q 3);
  Alcotest.(check bool) "finished" true (Lq.finished q)

let test_lease_queue_timeout () =
  let q = Lq.create ~count:2 ~cached:[] in
  ignore (Lq.lease q ~owner:"w" ~now:0.0 ~timeout:5.0);
  Alcotest.(check (list int)) "nothing stale yet" [] (Lq.expire q ~now:4.0);
  Alcotest.(check (list int)) "lease expires" [ 0 ] (Lq.expire q ~now:6.0);
  (* the expired index is handed out again *)
  Alcotest.(check (option int)) "re-leased after expiry" (Some 1)
    (Lq.lease q ~owner:"v" ~now:6.0 ~timeout:5.0);
  Alcotest.(check (option int)) "requeued index comes back" (Some 0)
    (Lq.lease q ~owner:"v" ~now:6.0 ~timeout:5.0)

let test_lease_queue_worker_death () =
  let q = Lq.create ~count:3 ~cached:[] in
  ignore (Lq.lease q ~owner:"victim" ~now:0.0 ~timeout:60.0);
  ignore (Lq.lease q ~owner:"victim" ~now:0.0 ~timeout:60.0);
  ignore (Lq.lease q ~owner:"survivor" ~now:0.0 ~timeout:60.0);
  Alcotest.(check (list int)) "victim's leases re-queue" [ 0; 1 ]
    (Lq.drop_owner q "victim");
  Alcotest.(check int) "survivor keeps its lease" 1 (Lq.leased q);
  (* straggler: the victim's result for a re-queued index still lands
     first — the later worker's duplicate must be ignored *)
  Alcotest.(check bool) "straggler completion wins" true (Lq.complete q 0);
  Alcotest.(check (option int)) "lease skips the decided index" (Some 1)
    (Lq.lease q ~owner:"survivor" ~now:1.0 ~timeout:60.0)

(* ---- flag validation ---- *)

let check_err name = function
  | Error (_ : string) -> ()
  | Ok _ -> Alcotest.fail (name ^ ": accepted a contradictory flag combo")

let test_check_flags () =
  check_err "capture without store" (Fleet.check_capture ~store:"" ~jobs:None ());
  check_err "capture with --sample-jobs"
    (Fleet.check_capture ~store:"/tmp/s" ~jobs:(Some 4) ());
  Alcotest.(check bool) "capture ok" true
    (Fleet.check_capture ~store:"/tmp/s" ~jobs:None () = Ok ());
  check_err "serve without store"
    (Fleet.check_serve ~store:"" ~socket:"/tmp/s.sock" ~lease_timeout:30.0 ());
  check_err "serve without socket"
    (Fleet.check_serve ~store:"/tmp/s" ~socket:"" ~lease_timeout:30.0 ());
  check_err "serve with absurd socket path"
    (Fleet.check_serve ~store:"/tmp/s" ~socket:(String.make 200 'x')
       ~lease_timeout:30.0 ());
  check_err "serve with nonpositive lease timeout"
    (Fleet.check_serve ~store:"/tmp/s" ~socket:"/tmp/s.sock"
       ~lease_timeout:0.0 ());
  Alcotest.(check bool) "serve ok" true
    (Fleet.check_serve ~store:"/tmp/s" ~socket:"/tmp/s.sock"
       ~lease_timeout:30.0 ()
    = Ok ());
  check_err "work without connect" (Fleet.check_work ~connect:"" ());
  check_err "replay without store" (Fleet.check_replay ~store:"" ~jobs:1 ());
  check_err "replay with negative jobs"
    (Fleet.check_replay ~store:"/tmp/s" ~jobs:(-1) ());
  Alcotest.(check bool) "replay jobs=0 means auto-detect" true
    (Fleet.check_replay ~store:"/tmp/s" ~jobs:0 () = Ok ())

(* ---- end to end over a real socket ---- *)

let schedule =
  { Sample.ff_insns = 6_000; warmup_insns = 800; measure_insns = 1_200 }

let fresh_paths () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "optlsim_fleet_test_%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  (dir, dir ^ ".sock")

let connect_when_up path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error (_, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if tries <= 0 then Alcotest.fail "server never came up"
      else begin
        Unix.sleepf 0.05;
        go (tries - 1)
      end
  in
  go 200

(* serve + one worker, with a second "worker" that leases an interval
   and dies without delivering: the lease must re-queue and the merged
   result must still be bit-identical to an in-process replay *)
let test_fleet_end_to_end () =
  let d, _ = Test_checkpoint.bare_loop ~iters:20_000 () in
  let cr = Sample.run_capture ~schedule d in
  let count = Array.length cr.Sample.cr_deltas in
  Alcotest.(check bool) "several intervals" true (count >= 5);
  let expected =
    let ivs =
      Sample.replay_capture ~core_name:"ooo" ~config:Config.tiny ~schedule cr
    in
    Sample.aggregate ~total_insns:cr.Sample.cr_insns
      ~total_cycles:cr.Sample.cr_cycles
      (Array.to_list ivs |> List.filter_map Fun.id)
  in
  let dir, sock = fresh_paths () in
  let store =
    match
      Store.create ~dir ~workload:"fleet-test" ~core:"ooo" ~schedule
        ~placement:"fixed" cr ~config:Config.tiny
    with
    | Ok s -> s
    | Error e -> Alcotest.fail (Store.error_to_string e)
  in
  let server =
    Stdlib.Domain.spawn (fun () ->
        Fleet.serve ~lease_timeout:60.0 ~socket:sock store)
  in
  (* the victim: lease interval 0, then vanish without delivering *)
  let fd = connect_when_up sock in
  Fleet.send fd (Fleet.Hello { worker = "victim" });
  (match (Fleet.recv fd : Fleet.reply) with
  | Fleet.Welcome { count = advertised; _ } ->
    Alcotest.(check int) "welcome advertises the store" count advertised
  | _ -> Alcotest.fail "expected Welcome");
  Fleet.send fd Fleet.Lease;
  (match (Fleet.recv fd : Fleet.reply) with
  | Fleet.Work _ -> ()
  | _ -> Alcotest.fail "expected a lease");
  Unix.close fd;
  (* a real worker drains the queue, including the re-queued interval *)
  let replayed =
    match Fleet.work ~retries:10 ~connect:sock () with
    | Ok n -> n
    | Error msg -> Alcotest.fail msg
  in
  let sv = Stdlib.Domain.join server in
  Alcotest.(check int) "worker replayed everything" count replayed;
  Alcotest.(check int) "server merged everything" count sv.Fleet.sv_replayed;
  Alcotest.(check bool) "victim's lease was re-queued" true
    (sv.Fleet.sv_requeued >= 1);
  Alcotest.(check bool) "merged result bit-identical to local replay" true
    (sv.Fleet.sv_result = expected);
  (* the run populated the (checkpoint, config) cache: a re-serve with
     no workers at all finishes instantly from cache, same answer *)
  let sv2 = Fleet.serve ~lease_timeout:60.0 ~socket:sock store in
  Alcotest.(check int) "everything from cache" count sv2.Fleet.sv_cached;
  Alcotest.(check int) "nothing replayed" 0 sv2.Fleet.sv_replayed;
  Alcotest.(check bool) "cached result identical" true
    (sv2.Fleet.sv_result = expected);
  (* and the in-process consumer agrees too *)
  match Fleet.replay ~jobs:1 store with
  | Ok rp ->
    Alcotest.(check bool) "replay result identical" true
      (rp.Fleet.rp_result = expected)
  | Error e -> Alcotest.fail (Store.error_to_string e)

let suite =
  [
    Alcotest.test_case "lease queue basics" `Quick test_lease_queue_basics;
    Alcotest.test_case "lease queue timeout" `Quick test_lease_queue_timeout;
    Alcotest.test_case "lease queue worker death" `Quick
      test_lease_queue_worker_death;
    Alcotest.test_case "flag validation" `Quick test_check_flags;
    Alcotest.test_case "fleet end to end (with worker death)" `Quick
      test_fleet_end_to_end;
  ]
