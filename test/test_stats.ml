(* Tests for the PTLstats-style statistics tree, snapshots and time-lapse
   series (the machinery behind the paper's Figures 2 and 3). *)

module S = Ptl_stats.Statstree
module T = Ptl_stats.Timelapse

let test_counter_basics () =
  let t = S.create () in
  let c = S.counter t "ooo.commit.insns" in
  S.incr c;
  S.add c 9;
  Alcotest.(check int) "value" 10 (S.value c);
  Alcotest.(check int) "get by path" 10 (S.get t "ooo.commit.insns");
  Alcotest.(check int) "missing" 0 (S.get t "no.such.counter")

let test_counter_shared () =
  let t = S.create () in
  let a = S.counter t "shared" in
  let b = S.counter t "shared" in
  S.incr a;
  S.incr b;
  Alcotest.(check int) "one underlying counter" 2 (S.value a)

let test_counter_growth () =
  let t = S.create () in
  (* force the internal array to grow past its initial 64 slots *)
  for i = 0 to 199 do
    S.incr (S.counter t (Printf.sprintf "c%d" i))
  done;
  Alcotest.(check int) "all registered" 200 (List.length (S.paths t));
  Alcotest.(check int) "c150" 1 (S.get t "c150")

let test_snapshot_delta () =
  let t = S.create () in
  let c = S.counter t "x" in
  S.add c 5;
  let s1 = S.snapshot t ~cycle:100 in
  S.add c 7;
  let s2 = S.snapshot t ~cycle:200 in
  Alcotest.(check int) "delta" 7 (S.delta s1 s2 "x");
  Alcotest.(check int) "late counter counts from zero" 0 (S.delta s1 s2 "y")

let test_timelapse_series () =
  let t = S.create () in
  let cyc = S.counter t "cycles" in
  let ev = S.counter t "events" in
  let tl = T.create t ~interval:100 in
  for cycle = 1 to 1000 do
    S.incr cyc;
    if cycle mod 2 = 0 then S.incr ev;
    T.tick tl ~cycle
  done;
  Alcotest.(check int) "intervals" 10 (T.intervals tl);
  let series = T.series tl "events" in
  List.iter (fun d -> Alcotest.(check int) "50 per interval" 50 d) series;
  let ratios = T.ratio_series tl "events" "cycles" in
  List.iter (fun r -> Alcotest.(check (float 0.001)) "ratio" 0.5 r) ratios

let test_timelapse_finish () =
  let t = S.create () in
  let c = S.counter t "n" in
  let tl = T.create t ~interval:1000 in
  S.add c 3;
  T.finish tl ~cycle:500;
  Alcotest.(check (list int)) "partial interval captured" [ 3 ] (T.series tl "n")

(* The sampler ends runs on exact interval boundaries; finish must not
   append a duplicate zero-length interval there. *)
let test_timelapse_finish_boundary () =
  let t = S.create () in
  let c = S.counter t "n" in
  let tl = T.create t ~interval:100 in
  for cycle = 1 to 200 do
    S.incr c;
    T.tick tl ~cycle
  done;
  Alcotest.(check int) "two intervals" 2 (T.intervals tl);
  T.finish tl ~cycle:200;
  Alcotest.(check int) "finish at boundary is idempotent" 2 (T.intervals tl);
  T.finish tl ~cycle:200;
  Alcotest.(check int) "repeated finish still idempotent" 2 (T.intervals tl);
  S.add c 5;
  T.finish tl ~cycle:250;
  Alcotest.(check int) "later finish appends" 3 (T.intervals tl);
  Alcotest.(check (list int)) "deltas" [ 100; 100; 5 ] (T.series tl "n")

(* The snapshot bracketing the sampling supervisor performs around each
   measured interval: deltas across several paths, late registration,
   and snapshot_get. *)
let test_snapshot_bracketing () =
  let t = S.create () in
  let cyc = S.counter t "core.cycles" in
  let ins = S.counter t "core.commit.insns" in
  S.add cyc 1000;
  S.add ins 900;
  let s0 = S.snapshot t ~cycle:1000 in
  S.add cyc 640;
  S.add ins 1000;
  (* a counter registered mid-interval (core rebuilt between phases
     re-registers the same paths; brand-new paths count from zero) *)
  let late = S.counter t "core.replays" in
  S.add late 7;
  let s1 = S.snapshot t ~cycle:1640 in
  Alcotest.(check int) "cycle delta" 640 (s1.S.cycle - s0.S.cycle);
  Alcotest.(check int) "cycles" 640 (S.delta s0 s1 "core.cycles");
  Alcotest.(check int) "insns" 1000 (S.delta s0 s1 "core.commit.insns");
  Alcotest.(check int) "late counter from zero" 7 (S.delta s0 s1 "core.replays");
  Alcotest.(check (option int)) "snapshot_get present" (Some 1640)
    (S.snapshot_get s1 "core.cycles");
  Alcotest.(check (option int)) "snapshot_get absent in older" None
    (S.snapshot_get s0 "core.replays");
  (* re-registering an existing path returns the same counter, so the
     delta keeps accumulating across rebuilds *)
  let again = S.counter t "core.cycles" in
  S.add again 10;
  let s2 = S.snapshot t ~cycle:1650 in
  Alcotest.(check int) "rebuild accumulates" 650 (S.delta s0 s2 "core.cycles")

let test_timelapse_csv () =
  let t = S.create () in
  let a = S.counter t "a" in
  let b = S.counter t "b" in
  let tl = T.create t ~interval:10 in
  for cycle = 1 to 30 do
    S.incr a;
    if cycle mod 2 = 0 then S.incr b;
    T.tick tl ~cycle
  done;
  let csv = T.to_csv tl ~paths:[ "a"; "b" ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 3 rows" 4 (List.length lines);
  Alcotest.(check string) "header" "cycle,a,b" (List.hd lines);
  Alcotest.(check string) "first interval" "10,10,5" (List.nth lines 1)

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "shared path" `Quick test_counter_shared;
    Alcotest.test_case "array growth" `Quick test_counter_growth;
    Alcotest.test_case "snapshot delta" `Quick test_snapshot_delta;
    Alcotest.test_case "timelapse series" `Quick test_timelapse_series;
    Alcotest.test_case "timelapse finish" `Quick test_timelapse_finish;
    Alcotest.test_case "timelapse finish at boundary" `Quick
      test_timelapse_finish_boundary;
    Alcotest.test_case "snapshot bracketing" `Quick test_snapshot_bracketing;
    Alcotest.test_case "timelapse csv" `Quick test_timelapse_csv;
  ]
