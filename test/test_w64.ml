(* Unit and property tests for 64-bit word arithmetic (Ptl_util.W64).
   Flag semantics here underpin every ALU result in the simulator, so the
   oracle cases are chosen from the x86 manuals' edge cases. *)

open Ptl_util

let check_add size a b cin expect_r expect_c expect_o () =
  let r, c, o = W64.add_carry size a b cin in
  Alcotest.(check int64) "result" expect_r r;
  Alcotest.(check bool) "carry" expect_c c;
  Alcotest.(check bool) "overflow" expect_o o

let check_sub size a b bin expect_r expect_c expect_o () =
  let r, c, o = W64.sub_borrow size a b bin in
  Alcotest.(check int64) "result" expect_r r;
  Alcotest.(check bool) "borrow" expect_c c;
  Alcotest.(check bool) "overflow" expect_o o

let test_truncate () =
  Alcotest.(check int64) "b1" 0xEFL (W64.truncate W64.B1 0xBEEFL);
  Alcotest.(check int64) "b2" 0xBEEFL (W64.truncate W64.B2 0xDEADBEEFL);
  Alcotest.(check int64) "b4" 0xDEADBEEFL (W64.truncate W64.B4 0x1DEADBEEFL);
  Alcotest.(check int64) "b8" (-1L) (W64.truncate W64.B8 (-1L))

let test_sign_extend () =
  Alcotest.(check int64) "b1 neg" (-1L) (W64.sign_extend W64.B1 0xFFL);
  Alcotest.(check int64) "b1 pos" 0x7FL (W64.sign_extend W64.B1 0x7FL);
  Alcotest.(check int64) "b2" (-2L) (W64.sign_extend W64.B2 0xFFFEL);
  Alcotest.(check int64) "b4" (-0x80000000L) (W64.sign_extend W64.B4 0x80000000L)

let test_parity () =
  Alcotest.(check bool) "0 even" true (W64.parity 0L);
  Alcotest.(check bool) "1 odd" false (W64.parity 1L);
  Alcotest.(check bool) "3 even" true (W64.parity 3L);
  Alcotest.(check bool) "7 odd" false (W64.parity 7L);
  (* only the low byte counts *)
  Alcotest.(check bool) "0x100 even" true (W64.parity 0x100L)

let test_umul128 () =
  let lo, hi = W64.umul128 0xFFFFFFFFFFFFFFFFL 0xFFFFFFFFFFFFFFFFL in
  (* (2^64-1)^2 = 2^128 - 2^65 + 1 *)
  Alcotest.(check int64) "lo" 1L lo;
  Alcotest.(check int64) "hi" 0xFFFFFFFFFFFFFFFEL hi;
  let lo, hi = W64.umul128 0x123456789ABCDEFL 0x10L in
  Alcotest.(check int64) "lo shift" 0x123456789ABCDEF0L lo;
  Alcotest.(check int64) "hi shift" 0L hi

let test_smul128 () =
  let lo, hi = W64.smul128 (-1L) (-1L) in
  Alcotest.(check int64) "lo" 1L lo;
  Alcotest.(check int64) "hi" 0L hi;
  let lo, hi = W64.smul128 (-2L) 3L in
  Alcotest.(check int64) "lo" (-6L) lo;
  Alcotest.(check int64) "hi" (-1L) hi

let test_shifts () =
  let r, c, o = W64.shl W64.B1 0x80L 1 in
  Alcotest.(check int64) "shl result" 0L r;
  Alcotest.(check (option bool)) "shl carry" (Some true) c;
  Alcotest.(check (option bool)) "shl ovf" (Some true) o;
  let r, c, _ = W64.shr W64.B4 0x80000000L 31 in
  Alcotest.(check int64) "shr" 1L r;
  Alcotest.(check (option bool)) "shr carry" (Some false) c;
  let r, _, _ = W64.sar W64.B4 0x80000000L 31 in
  Alcotest.(check int64) "sar" 0xFFFFFFFFL r;
  let r, _, _ = W64.rol W64.B1 0x81L 1 in
  Alcotest.(check int64) "rol" 0x03L r;
  let r, _, _ = W64.ror W64.B1 0x01L 1 in
  Alcotest.(check int64) "ror" 0x80L r;
  (* count masking: 32-bit ops mask the count to 5 bits *)
  let r, c, o = W64.shl W64.B4 1L 32 in
  Alcotest.(check int64) "masked count" 1L r;
  Alcotest.(check (option bool)) "masked carry" None c;
  Alcotest.(check (option bool)) "masked ovf" None o

(* Property: add_carry agrees with a 3-way reference using arbitrary
   precision via Int64 on small sizes. *)
let prop_add_b2 =
  QCheck.Test.make ~name:"add_carry B2 matches reference" ~count:2000
    QCheck.(triple (int_bound 0xFFFF) (int_bound 0xFFFF) bool)
    (fun (a, b, cin) ->
      let r, c, _ = W64.add_carry W64.B2 (Int64.of_int a) (Int64.of_int b) cin in
      let full = a + b + if cin then 1 else 0 in
      Int64.to_int r = full land 0xFFFF && c = (full > 0xFFFF))

let prop_sub_b2 =
  QCheck.Test.make ~name:"sub_borrow B2 matches reference" ~count:2000
    QCheck.(triple (int_bound 0xFFFF) (int_bound 0xFFFF) bool)
    (fun (a, b, cin) ->
      let r, c, _ = W64.sub_borrow W64.B2 (Int64.of_int a) (Int64.of_int b) cin in
      let full = a - b - (if cin then 1 else 0) in
      Int64.to_int r = full land 0xFFFF && c = (full < 0))

let prop_mul128 =
  QCheck.Test.make ~name:"umul128 via 32-bit decomposition" ~count:2000
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let lo, _hi = W64.umul128 a b in
      (* low word must match plain 64-bit multiply *)
      lo = Int64.mul a b)

let prop_add_sub_inverse =
  QCheck.Test.make ~name:"x + y - y = x at every size" ~count:2000
    QCheck.(triple int64 int64 (oneofl [ W64.B1; W64.B2; W64.B4; W64.B8 ]))
    (fun (x, y, size) ->
      let s, _, _ = W64.add_carry size x y false in
      let d, _, _ = W64.sub_borrow size s y false in
      d = W64.truncate size x)

let suite =
  [
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "sign_extend" `Quick test_sign_extend;
    Alcotest.test_case "parity" `Quick test_parity;
    Alcotest.test_case "umul128" `Quick test_umul128;
    Alcotest.test_case "smul128" `Quick test_smul128;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "add: carry out b8" `Quick
      (check_add W64.B8 (-1L) 1L false 0L true false);
    Alcotest.test_case "add: signed overflow" `Quick
      (check_add W64.B1 0x7FL 1L false 0x80L false true);
    Alcotest.test_case "add: carry in chain" `Quick
      (check_add W64.B8 (-1L) 0L true 0L true false);
    Alcotest.test_case "sub: borrow" `Quick
      (check_sub W64.B4 0L 1L false 0xFFFFFFFFL true false);
    Alcotest.test_case "sub: overflow" `Quick
      (check_sub W64.B1 0x80L 1L false 0x7FL false true);
    Alcotest.test_case "sub: borrow in equal" `Quick
      (check_sub W64.B8 5L 5L true 0xFFFFFFFFFFFFFFFFL true false);
    Test_seed.to_alcotest prop_add_b2;
    Test_seed.to_alcotest prop_sub_b2;
    Test_seed.to_alcotest prop_mul128;
    Test_seed.to_alcotest prop_add_sub_inverse;
  ]
