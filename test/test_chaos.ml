(* Chaos tests (lib/chaos + its instrumentation in lib/fleet and
   lib/store): schedule parsing and exact-hit firing as pure units,
   then the fault matrix — for every worker-side protocol fault the
   fleet must converge to a result byte-identical to the clean run
   (never silently wrong, never a hang), and store-side faults must
   either fail open (result cache) or surface as explicit quarantine
   (corrupt interval record). *)

module Chaos = Ptl_chaos.Chaos
module Fleet = Ptl_fleet.Fleet
module Store = Ptl_store.Store
module Sample = Ptl_sample.Sample

(* ---- units: schedule spec round-trip, exact-hit firing ---- *)

let test_parse () =
  let spec =
    "kill@work.done:2;drop@work.lease;delay=0.5@work.hello;flip=12@store.write;truncate@work.done;fail@store.result.write"
  in
  (match Chaos.parse spec with
  | Error e -> Alcotest.fail e
  | Ok rules ->
    Alcotest.(check int) "six rules" 6 (List.length rules);
    (* to_string canonicalizes the default :1 hit; the canonical form
       must parse back to the same schedule *)
    (match Chaos.parse (Chaos.to_string rules) with
    | Ok reparsed ->
      Alcotest.(check bool) "round trips" true (rules = reparsed)
    | Error e -> Alcotest.fail ("canonical form does not re-parse: " ^ e)));
  (match Chaos.parse "" with
  | Ok [] -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty spec must be the empty schedule");
  let bad name s =
    match Chaos.parse s with
    | Error (_ : string) -> ()
    | Ok _ -> Alcotest.fail (name ^ ": accepted a malformed spec")
  in
  bad "unknown action" "boom@work.done";
  bad "no point" "kill";
  bad "empty point" "kill@";
  bad "zero hit" "kill@work.done:0";
  bad "bad delay" "delay=x@work.done";
  bad "bad flip" "flip=-1@store.write"

let test_fire_exact_hit () =
  Chaos.arm
    [ { Chaos.r_point = "p"; r_hit = 2; r_action = Chaos.Kill } ];
  Alcotest.(check bool) "first pass clean" true (Chaos.fire "p" = None);
  Alcotest.(check bool) "second pass fires" true
    (Chaos.fire "p" = Some Chaos.Kill);
  Alcotest.(check bool) "third pass clean again" true (Chaos.fire "p" = None);
  Alcotest.(check bool) "other points unaffected" true (Chaos.fire "q" = None);
  Alcotest.(check int) "passes counted" 3 (Chaos.hit_count "p");
  Chaos.disarm ();
  Alcotest.(check bool) "disarmed fires nothing" true (Chaos.fire "p" = None);
  Alcotest.(check int) "counters reset on disarm" 0 (Chaos.hit_count "p")

(* ---- the fault matrix ---- *)

(* One cell: arm [spec], run a faulty worker against a real server
   (kill faults surface as Chaos.Killed — the stand-in for the process
   dying), disarm, drain with a clean worker, and require the merged
   result byte-identical to the clean run with nothing quarantined. *)
type cell = {
  c_spec : string;
  c_killed : bool;  (** the fault must kill the faulty worker *)
  c_requeued : bool;  (** the fault must cost at least one re-queue *)
}

let matrix =
  [
    { c_spec = "kill@work.hello"; c_killed = true; c_requeued = false };
    { c_spec = "kill@work.lease"; c_killed = true; c_requeued = false };
    { c_spec = "kill@work.replay"; c_killed = true; c_requeued = true };
    { c_spec = "kill@work.done"; c_killed = true; c_requeued = true };
    { c_spec = "truncate@work.done"; c_killed = true; c_requeued = true };
    { c_spec = "drop@work.lease"; c_killed = false; c_requeued = false };
    { c_spec = "drop@work.done"; c_killed = false; c_requeued = true };
    { c_spec = "delay=0.2@work.done"; c_killed = false; c_requeued = false };
  ]

let run_cell k cell =
  let cr, _, expected = Lazy.force Test_fleet.captured in
  let dir, sock = Test_fleet.fresh_paths (Printf.sprintf "chaos_%d" k) in
  let store = Test_fleet.make_store ~dir cr in
  let server =
    Stdlib.Domain.spawn (fun () ->
        Fleet.serve ~lease_timeout:60.0 ~max_failures:3 ~socket:sock store)
  in
  (match Chaos.parse cell.c_spec with
  | Error e -> Alcotest.fail e
  | Ok rules -> Chaos.arm rules);
  let killed =
    match
      Fleet.work ~retries:50 ~reconnects:0 ~recv_timeout:1.0 ~connect:sock ()
    with
    | Ok (_ : int) | Error (_ : string) -> false
    | exception Chaos.Killed (_ : string) -> true
  in
  Chaos.disarm ();
  Alcotest.(check bool)
    (cell.c_spec ^ ": fault kills the worker iff scheduled to")
    cell.c_killed killed;
  (* a clean worker drains whatever the faulty one left behind; a
     connect failure here means the faulty worker already drained the
     store itself and the server has exited, removing its socket *)
  (match Fleet.work ~retries:3 ~connect:sock () with
  | Ok (_ : int) | Error (_ : string) -> ());
  let sv = Stdlib.Domain.join server in
  Alcotest.(check bool)
    (cell.c_spec ^ ": result byte-identical to the clean run")
    true
    (sv.Fleet.sv_result = expected);
  Alcotest.(check bool) (cell.c_spec ^ ": nothing quarantined") true
    (sv.Fleet.sv_quarantined = []);
  if cell.c_requeued then
    Alcotest.(check bool) (cell.c_spec ^ ": the lost lease was re-queued")
      true
      (sv.Fleet.sv_requeued >= 1)

let test_fault_matrix () = List.iteri run_cell matrix

(* a result-cache write failure must fail open: the replay completes
   with the full, identical result — a cache is never load-bearing *)
let test_result_cache_fails_open () =
  let cr, _, expected = Lazy.force Test_fleet.captured in
  let dir, _ = Test_fleet.fresh_paths "chaos_cache" in
  let store = Test_fleet.make_store ~dir cr in
  (match Chaos.parse "fail@store.result.write:1" with
  | Error e -> Alcotest.fail e
  | Ok rules -> Chaos.arm rules);
  let rp =
    match Fleet.replay ~jobs:1 store with
    | Ok rp -> rp
    | Error e ->
      Chaos.disarm ();
      Alcotest.fail (Store.error_to_string e)
  in
  Chaos.disarm ();
  let count = Array.length cr.Sample.cr_deltas in
  Alcotest.(check int) "everything replayed" count rp.Fleet.rp_replayed;
  Alcotest.(check bool) "nothing quarantined" true (rp.Fleet.rp_quarantined = []);
  Alcotest.(check bool) "result identical despite the cache fault" true
    (rp.Fleet.rp_result = expected)

(* a bit flipped in a record payload after its CRC is computed: the
   store publishes a plausible-looking file whose corruption only the
   read-time CRC can catch — replay must quarantine exactly that
   interval, never fold the damage into the result *)
let test_flipped_record_quarantined () =
  let cr, ivs, _ = Lazy.force Test_fleet.captured in
  let count = Array.length cr.Sample.cr_deltas in
  let dir, _ = Test_fleet.fresh_paths "chaos_flip" in
  (* store.write passes: base is hit 1, interval 0 is hit 2 *)
  (match Chaos.parse "flip=5@store.write:2" with
  | Error e -> Alcotest.fail e
  | Ok rules -> Chaos.arm rules);
  let store = Test_fleet.make_store ~dir cr in
  Chaos.disarm ();
  match Fleet.replay ~jobs:1 store with
  | Error e -> Alcotest.fail (Store.error_to_string e)
  | Ok rp ->
    Alcotest.(check (list int)) "the flipped interval is quarantined" [ 0 ]
      (List.map fst rp.Fleet.rp_quarantined);
    Alcotest.(check int) "survivors replayed" (count - 1) rp.Fleet.rp_replayed;
    Alcotest.(check bool) "degraded result covers exactly the survivors" true
      (rp.Fleet.rp_result = Test_fleet.degraded_expected cr ivs ~poison:0)

let suite =
  [
    Alcotest.test_case "schedule spec parses and round-trips" `Quick test_parse;
    Alcotest.test_case "rules fire on their exact hit" `Quick
      test_fire_exact_hit;
    Alcotest.test_case "fault matrix: identical result under every fault"
      `Quick test_fault_matrix;
    Alcotest.test_case "result-cache write failure fails open" `Quick
      test_result_cache_fails_open;
    Alcotest.test_case "flipped record is quarantined, not folded in" `Quick
      test_flipped_record_quarantined;
  ]
