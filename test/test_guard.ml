(** Guard-rail tests (lib/guard): each planted structural corruption
    must be detected by the matching invariant checker with the right
    subsystem tag; a forced pipeline lockup must trip the typed
    watchdog; and under degrade the supervisor must roll back to the
    last checkpoint and finish the run on the sequential reference core
    with correct architectural state. Randomized programs draw their
    seed from {!Test_seed}. *)

open Ptl_util
open Ptl_isa
module Machine = Ptl_arch.Machine
module Context = Ptl_arch.Context
module Env = Ptl_arch.Env
module Config = Ptl_ooo.Config
module Ooo = Ptl_ooo.Ooo_core
module Inorder = Ptl_ooo.Inorder_core
module Physreg = Ptl_ooo.Physreg
module Registry = Ptl_ooo.Registry
module Sim_failure = Ptl_ooo.Sim_failure
module Hierarchy = Ptl_mem.Hierarchy
module Cache = Ptl_mem.Cache
module Guard = Ptl_guard.Guard
module Stats = Ptl_stats.Statstree
module Fuzzgen = Ptl_fuzz.Fuzzgen
module Fuzz = Ptl_fuzz.Harness

let reg = Regs.gpr_of_name

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let build ?(base = 0x40_0000L) items =
  let a = Asm.create ~base () in
  List.iter
    (fun it ->
      match it with `I insn -> Asm.ins a insn | `L l -> Asm.label a l | `J f -> f a)
    items;
  Asm.assemble a

let i x = `I x

(* The summing loop: rax = n*(n+1)/2 when it halts. Long enough runs
   keep the pipeline busy while a test plants its corruption. *)
let sum_loop n =
  [ i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 0L));
    i (Insn.Mov (W64.B8, Insn.Reg (reg "rcx"), Insn.Imm (Int64.of_int n)));
    `L "loop";
    i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rax"), Insn.RM (Insn.Reg (reg "rcx"))));
    i (Insn.Unary (Insn.Dec, W64.B8, Insn.Reg (reg "rcx")));
    `J (fun a -> Asm.jcc a Flags.NE "loop");
    i Insn.Hlt ]

let sum_expected n = Int64.of_int (n * (n + 1) / 2)

let make ?(core = "ooo") ?(config = Config.tiny) items =
  let m = Machine.create (build items) in
  (m, Registry.build core config m.Machine.env [| m.Machine.ctx |])

let ooo_of inst =
  match inst.Registry.handle with
  | Registry.Core_ooo c -> c
  | _ -> Alcotest.fail "expected an ooo core handle"

let inorder_of inst =
  match inst.Registry.handle with
  | Registry.Core_inorder c -> c
  | _ -> Alcotest.fail "expected an inorder core handle"

(* Guard diagnostic bundles go nowhere during tests. *)
let devnull = lazy (open_out "/dev/null")

let wrap ?(gcfg = { Guard.default_config with Guard.interval = 1 }) m inst =
  Guard.wrap ~config:gcfg ~out:(Lazy.force devnull) ~env:m.Machine.env
    ~ctx:m.Machine.ctx inst

let step_n inst n =
  for _ = 1 to n do
    if not (inst.Registry.idle ()) then inst.Registry.step ()
  done

(* Drive to completion; fail the test rather than spin forever. *)
let run_to_idle ?(budget = 2_000_000) inst =
  let budget = ref budget in
  while (not (inst.Registry.idle ())) && !budget > 0 do
    inst.Registry.step ();
    decr budget
  done;
  if !budget = 0 then Alcotest.fail "guarded run did not finish in budget"

(* The invariant sweep over [inst] must currently report a violation
   whose subsystem tag contains [sub]. *)
let detect ~sub m inst =
  match Guard.first_violation (Guard.checks_for_instance m.Machine.env inst) with
  | Some (c, msg) ->
    if not (contains c.Guard.subsystem sub) then
      Alcotest.failf "wrong subsystem %S for %S (wanted *%s*)" c.Guard.subsystem
        msg sub
  | None -> Alcotest.failf "planted %s corruption was not detected" sub

(* The sweep must be clean (guards each test against pre-existing false
   positives before it plants anything). *)
let expect_clean m inst =
  match Guard.first_violation (Guard.checks_for_instance m.Machine.env inst) with
  | Some (c, msg) ->
    Alcotest.failf "false positive before corruption: %s: %s" c.Guard.name msg
  | None -> ()

let expect_failure ~sub f =
  match f () with
  | _ -> Alcotest.failf "expected a Sim_failure tagged *%s*" sub
  | exception Sim_failure.Sim_failure fl ->
    if not (contains fl.Sim_failure.subsystem sub) then
      Alcotest.failf "wrong subsystem %S (wanted *%s*)" fl.Sim_failure.subsystem
        sub;
    fl

(* --- clean sweeps: no false positives on healthy cores --- *)

let test_clean_sum_loop () =
  let m, inst = make (sum_loop 500) in
  let g = wrap m inst in
  run_to_idle g;
  Alcotest.(check int64) "sum" (sum_expected 500) (Machine.gpr m (reg "rax"));
  let st = m.Machine.env.Env.stats in
  Alcotest.(check int) "no violations" 0 (Stats.get st "guard.violations");
  Alcotest.(check bool) "sweeps ran" true (Stats.get st "guard.check_passes" > 0);
  Alcotest.(check bool) "not degraded" false (Guard.degraded g)

let test_clean_random_programs () =
  (* Seeded random programs through the full supervisor, every core
     model with structural state, strict TLB mode on (a bare machine
     never edits live page tables, so the pagetable-agreement check is
     sound here). *)
  let rng = Test_seed.rng ~salt:31 () in
  List.iter
    (fun core ->
      for _ = 1 to 4 do
        let prog = Fuzzgen.generate rng ~classes:Fuzzgen.all_classes ~len:16 in
        let m = Machine.create (Fuzzgen.build prog) in
        let inst =
          Registry.build core Config.tiny m.Machine.env [| m.Machine.ctx |]
        in
        let gcfg =
          { Guard.default_config with Guard.interval = 1; strict_tlb = true }
        in
        let g = wrap ~gcfg m inst in
        run_to_idle g;
        Alcotest.(check int)
          (core ^ " violations") 0
          (Stats.get m.Machine.env.Env.stats "guard.violations")
      done)
    [ "ooo"; "inorder" ]

(* --- planted corruption: each checker fires with its subsystem tag --- *)

(* Step until [cond] holds (the pipeline fill takes a cold-cache
   dependent number of cycles, so fixed counts are not reliable). *)
let step_until inst cond =
  let tries = ref 20_000 in
  while (not (cond ())) && !tries > 0 do
    inst.Registry.step ();
    decr tries
  done;
  if !tries = 0 then Alcotest.fail "condition not reached while warming up"

(* Warm the pipeline into a steady busy state mid-loop: several uops in
   the ROB and at least one physical register live. *)
let warm_ooo ?config () =
  let m, inst = make ?config (sum_loop 100_000) in
  let core = ooo_of inst in
  step_until inst (fun () -> Ring.length core.Ooo.threads.(0).Ooo.rob >= 4);
  Alcotest.(check bool) "pipeline busy" false (inst.Registry.idle ());
  expect_clean m inst;
  (m, inst, core)

let test_corrupt_freelist () =
  let m, inst, core = warm_ooo () in
  (* push a live (non-Free) register back onto the free list *)
  let prf = core.Ooo.prf in
  let live = ref (-1) in
  Array.iteri
    (fun idx (r : Physreg.reg) ->
      if !live < 0 && r.Physreg.state <> Physreg.Free then live := idx)
    prf.Physreg.regs;
  if !live < 0 then Alcotest.fail "no live physreg after warmup";
  Queue.push !live prf.Physreg.free;
  detect ~sub:"physreg" m inst

let test_corrupt_physreg_leak () =
  let m, inst, core = warm_ooo () in
  (* a register that is neither free nor referenced by any RAT/ROB
     entry has leaked; fabricate one by marking a Free register Written
     without putting it anywhere *)
  let prf = core.Ooo.prf in
  let victim = Queue.pop prf.Physreg.free in
  prf.Physreg.regs.(victim).Physreg.state <- Physreg.Written;
  detect ~sub:"physreg" m inst

let test_corrupt_rob_order () =
  let m, inst, core = warm_ooo () in
  (* swap two adjacent ROB entries: age order is broken *)
  let rob = core.Ooo.threads.(0).Ooo.rob in
  if Ring.length rob < 2 then Alcotest.fail "ROB too empty to corrupt";
  let a = Ring.get rob 0 and b = Ring.get rob 1 in
  Ring.set rob 0 b;
  Ring.set rob 1 a;
  detect ~sub:"rob" m inst

let test_corrupt_iq_slot () =
  let m, inst, core = warm_ooo () in
  (* drive until some issue-queue slot is occupied, then flip its ROB
     entry out of Waiting without freeing the slot *)
  let find_slotted () =
    let found = ref None in
    Array.iter
      (Array.iter (function
        | Some { Ooo.slot_rob = e } when !found = None -> found := Some e
        | _ -> ()))
      core.Ooo.iqs;
    !found
  in
  let tries = ref 2_000 in
  while find_slotted () = None && !tries > 0 do
    inst.Registry.step ();
    decr tries
  done;
  match find_slotted () with
  | None -> Alcotest.fail "no occupied issue-queue slot found"
  | Some e ->
    expect_clean m inst;
    e.Ooo.state <- Ooo.Issued;
    detect ~sub:"iq" m inst

let test_corrupt_mshr_leak () =
  let m, inst, core = warm_ooo () in
  (* an MSHR whose completion lies beyond any legitimate latency chain *)
  Hashtbl.replace core.Ooo.hierarchy.Hierarchy.mshr 0x1234
    (m.Machine.env.Env.cycle + 500_000_000);
  detect ~sub:"mem" m inst

let test_corrupt_cache_tag () =
  let m, inst, core = warm_ooo () in
  if not (Cache.debug_duplicate_tag core.Ooo.hierarchy.Hierarchy.l1d) then
    Alcotest.fail "no valid L1D line to duplicate after warmup";
  detect ~sub:"mem" m inst

(* The same physreg corruption must also surface through the wrapped
   supervisor as a typed Sim_failure (the end-to-end path the CLI and
   fuzz harness rely on). *)
let test_supervisor_raises () =
  let m, inst, core = warm_ooo () in
  let g = wrap m inst in
  step_n g 8;
  let prf = core.Ooo.prf in
  let victim = Queue.pop prf.Physreg.free in
  prf.Physreg.regs.(victim).Physreg.state <- Physreg.Written;
  let fl = expect_failure ~sub:"physreg" (fun () -> step_n g 4) in
  Alcotest.(check bool) "invariant kind" true
    (fl.Sim_failure.kind = Sim_failure.Invariant);
  (* the rendered bundle is self-contained *)
  let bundle = Sim_failure.render fl in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("bundle has " ^ needle) true (contains bundle needle))
    [ "subsystem"; "physreg"; "cycle"; "rip"; "invariant" ];
  ignore m

(* A test-planted tripwire through the pluggable registry API. *)
let test_register_check_tripwire () =
  let m, inst = make (sum_loop 100_000) in
  let g = wrap m inst in
  let armed = ref false in
  Guard.register_check g
    (Guard.make_check ~name:"test.tripwire" ~subsystem:"selftest" (fun () ->
         if !armed then Some "boom" else None));
  step_n g 16;
  armed := true;
  let fl = expect_failure ~sub:"selftest" (fun () -> step_n g 2) in
  Alcotest.(check bool) "message carried" true
    (contains fl.Sim_failure.message "boom")

(* --- watchdogs: a stuck pipeline raises a typed Lockup --- *)

let test_ooo_watchdog () =
  let config = { Config.tiny with Config.watchdog_cycles = 2_000 } in
  let m, inst, core = warm_ooo ~config () in
  (* wedge commit: strand the ROB head in Waiting with no issue-queue
     slot, so it can never be selected or completed again *)
  let rob = core.Ooo.threads.(0).Ooo.rob in
  let head = Ring.get rob 0 in
  head.Ooo.state <- Ooo.Waiting;
  head.Ooo.in_iq <- -1;
  let fl = expect_failure ~sub:"watchdog" (fun () -> step_n inst 10_000) in
  Alcotest.(check bool) "lockup kind" true (fl.Sim_failure.kind = Sim_failure.Lockup);
  Alcotest.(check bool) "cycle recorded" true (fl.Sim_failure.cycle > 0);
  ignore m

let test_inorder_watchdog () =
  let config = { Config.tiny with Config.watchdog_cycles = 500 } in
  let m, inst = make ~core:"inorder" ~config (sum_loop 1_000_000) in
  let core = inorder_of inst in
  step_n inst 50;
  (* emulate a wedged commit counter: progress tracking never advances *)
  core.Inorder.wd_last_insns <- max_int;
  let fl = expect_failure ~sub:"inorder.watchdog" (fun () -> step_n inst 10_000) in
  Alcotest.(check bool) "lockup kind" true (fl.Sim_failure.kind = Sim_failure.Lockup);
  ignore m

(* --- checkpoint rollback + degrade round trip --- *)

let test_degrade_rollback () =
  let n = 3_000 in
  let config = { Config.tiny with Config.watchdog_cycles = 500 } in
  let m, inst = make ~config (sum_loop n) in
  let core = ooo_of inst in
  let gcfg =
    {
      Guard.default_config with
      Guard.interval = 8;
      checkpoint_every = 200;
      degrade = true;
    }
  in
  let g = wrap ~gcfg m inst in
  (* run to mid-loop, then force a lockup *)
  step_n g 1_500;
  Alcotest.(check bool) "still running" false (g.Registry.idle ());
  let rob = core.Ooo.threads.(0).Ooo.rob in
  if Ring.is_empty rob then Alcotest.fail "empty ROB mid-loop";
  let head = Ring.get rob 0 in
  head.Ooo.state <- Ooo.Waiting;
  head.Ooo.in_iq <- -1;
  (* under degrade nothing is raised: the supervisor rolls back to the
     last checkpoint and finishes the run on the sequential core *)
  run_to_idle g;
  Alcotest.(check bool) "degraded" true (Guard.degraded g);
  let st = m.Machine.env.Env.stats in
  Alcotest.(check int) "one violation" 1 (Stats.get st "guard.violations");
  Alcotest.(check int) "one rollback" 1 (Stats.get st "guard.rollbacks");
  Alcotest.(check int) "degraded once" 1 (Stats.get st "guard.degraded");
  Alcotest.(check bool) "checkpoints taken" true (Stats.get st "guard.checkpoints" > 1);
  (* architectural state is exactly the program's result *)
  Alcotest.(check int64) "sum" (sum_expected n) (Machine.gpr m (reg "rax"));
  Alcotest.(check int64) "counter drained" 0L (Machine.gpr m (reg "rcx"))

(* --- guard inside the fuzz harness: clean sweep stays clean --- *)

let test_fuzz_with_guard_clean () =
  let s =
    Fuzz.run ~core:"ooo"
      ~guard:{ Guard.default_config with Guard.interval = 4 }
      ~len:12 ~seed:Test_seed.seed ~iters:6 ()
  in
  Alcotest.(check int) "no findings" 0 (List.length s.Fuzz.s_divergences)

let suite =
  [
    Alcotest.test_case "clean guarded sum loop" `Quick test_clean_sum_loop;
    Alcotest.test_case "clean guarded random programs (strict TLB)" `Quick
      test_clean_random_programs;
    Alcotest.test_case "corrupt free list -> physreg" `Quick test_corrupt_freelist;
    Alcotest.test_case "leak physreg -> physreg" `Quick test_corrupt_physreg_leak;
    Alcotest.test_case "reorder ROB slot -> rob" `Quick test_corrupt_rob_order;
    Alcotest.test_case "corrupt iq slot -> iq" `Quick test_corrupt_iq_slot;
    Alcotest.test_case "leak MSHR -> mem" `Quick test_corrupt_mshr_leak;
    Alcotest.test_case "duplicate cache tag -> mem" `Quick test_corrupt_cache_tag;
    Alcotest.test_case "supervisor raises typed failure" `Quick test_supervisor_raises;
    Alcotest.test_case "pluggable tripwire check" `Quick test_register_check_tripwire;
    Alcotest.test_case "ooo lockup watchdog" `Quick test_ooo_watchdog;
    Alcotest.test_case "inorder lockup watchdog" `Quick test_inorder_watchdog;
    Alcotest.test_case "degrade: rollback + seq completion" `Quick test_degrade_rollback;
    Alcotest.test_case "fuzz harness under guard stays clean" `Quick
      test_fuzz_with_guard_clean;
  ]
