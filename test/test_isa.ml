(* ISA tests: encoder/decoder round trips (unit + property), flag/condition
   semantics, assembler label resolution and branch relaxation. *)

open Ptl_util
open Ptl_isa

let insn_testable =
  Alcotest.testable
    (fun fmt i -> Format.pp_print_string fmt (Disasm.to_string i))
    (fun a b -> a = b)

let roundtrip ?(rip = 0x400000L) insn =
  let bytes = Encode.encode ~rip insn in
  let fetch addr =
    let i = Int64.to_int (Int64.sub addr rip) in
    Char.code bytes.[i]
  in
  let decoded, len = Decode.decode ~fetch ~rip in
  Alcotest.(check int) "length" (String.length bytes) len;
  Alcotest.check insn_testable "insn" (Encode.normalize insn) decoded

let sample_mem = Insn.mem ~base:Regs.rbp ~index:Regs.rsi ~scale:4 ~disp:(-72L) ()

let unit_roundtrips () =
  List.iter roundtrip
    [
      Insn.Nop;
      Insn.Alu (Insn.Add, W64.B8, Insn.Reg Regs.rax, Insn.RM (Insn.Reg Regs.rbx));
      Insn.Alu (Insn.Sub, W64.B4, Insn.Mem sample_mem, Insn.Imm 1234L);
      Insn.Alu (Insn.Cmp, W64.B1, Insn.Reg Regs.rcx, Insn.Imm (-1L));
      Insn.Alu (Insn.Xor, W64.B8, Insn.Reg Regs.r15, Insn.Imm 0x12345678L);
      Insn.Test (W64.B2, Insn.Reg Regs.rdx, Insn.Imm 0x7FFFL);
      Insn.Mov (W64.B8, Insn.Reg Regs.rsp, Insn.RM (Insn.Mem (Insn.mem_abs 0x1000L)));
      Insn.Mov (W64.B1, Insn.Mem (Insn.mem_bd Regs.rdi 3L), Insn.Imm 0xFFL);
      Insn.Movabs (Regs.r9, 0xDEADBEEFCAFEBABEL);
      Insn.Lea (Regs.rax, sample_mem);
      Insn.Movzx (W64.B8, W64.B1, Regs.rax, Insn.Mem sample_mem);
      Insn.Movsx (W64.B4, W64.B2, Regs.rbx, Insn.Reg Regs.rcx);
      Insn.Unary (Insn.Neg, W64.B8, Insn.Reg Regs.rdx);
      Insn.Unary (Insn.Inc, W64.B4, Insn.Mem (Insn.mem_bd Regs.rax 0L));
      Insn.Shift (Insn.Shl, W64.B8, Insn.Reg Regs.rax, Insn.ImmC 3);
      Insn.Shift (Insn.Sar, W64.B4, Insn.Mem sample_mem, Insn.Cl);
      Insn.Imul2 (W64.B8, Regs.rax, Insn.Reg Regs.rbx);
      Insn.Muldiv (Insn.Div, W64.B8, Insn.Reg Regs.rcx);
      Insn.Muldiv (Insn.Imul1, W64.B4, Insn.Mem sample_mem);
      Insn.Push (Insn.RM (Insn.Reg Regs.rbp));
      Insn.Push (Insn.Imm 42L);
      Insn.Push (Insn.RM (Insn.Mem sample_mem));
      Insn.Pop (Insn.Reg Regs.rbp);
      Insn.Pop (Insn.Mem (Insn.mem_bd Regs.rsp (-8L)));
      Insn.Call 0x400100L;
      Insn.CallInd (Insn.Reg Regs.rax);
      Insn.Ret;
      Insn.Jmp 0x3FFFF0L;
      Insn.JmpInd (Insn.Mem (Insn.mem ~base:Regs.rax ~index:Regs.rbx ~scale:8 ()));
      Insn.Jcc (Flags.NE, 0x400010L) (* short *);
      Insn.Jcc (Flags.LE, 0x500000L) (* long *);
      Insn.Setcc (Flags.A, Insn.Reg Regs.rdx);
      Insn.Cmovcc (Flags.G, W64.B8, Regs.rax, Insn.Mem sample_mem);
      Insn.Xchg (W64.B8, Insn.Mem sample_mem, Regs.rbx);
      Insn.Xadd (W64.B4, Insn.Mem sample_mem, Regs.rcx);
      Insn.Cmpxchg (W64.B8, Insn.Mem sample_mem, Regs.rdx);
      Insn.Bittest (Insn.Bts, W64.B8, Insn.Mem sample_mem, Insn.Breg Regs.rax);
      Insn.Bittest (Insn.Bt, W64.B4, Insn.Reg Regs.rbx, Insn.Bimm 17);
      Insn.Movs (W64.B8, true);
      Insn.Stos (W64.B1, true);
      Insn.Lods (W64.B4, false);
      Insn.Hlt;
      Insn.Syscall;
      Insn.Sysret;
      Insn.Int 0x80;
      Insn.Iret;
      Insn.Pushf;
      Insn.Popf;
      Insn.Cli;
      Insn.Sti;
      Insn.Pause;
      Insn.Ptlcall;
      Insn.Kcall;
      Insn.Rdtsc;
      Insn.Rdpmc;
      Insn.Cpuid;
      Insn.MovToCr (3, Regs.rax);
      Insn.MovFromCr (3, Regs.rbx);
      Insn.Invlpg sample_mem;
      Insn.Fld sample_mem;
      Insn.Fst sample_mem;
      Insn.Fp (Insn.Fmul, sample_mem);
      Insn.SseLoad (3, sample_mem);
      Insn.SseStore (sample_mem, 14);
      Insn.SseMov (0, 15);
      Insn.Sse (Insn.Divsd, 2, 3);
      Insn.Cvtsi2sd (1, Regs.rax);
      Insn.Cvtsd2si (Regs.rbx, 2);
      Insn.Comisd (4, 5);
      Insn.Locked (Insn.Alu (Insn.Add, W64.B8, Insn.Mem sample_mem, Insn.Imm 1L));
      Insn.Locked (Insn.Cmpxchg (W64.B8, Insn.Mem sample_mem, Regs.rbx));
    ]

let test_invalid_encodings () =
  (* LOCK on a register destination is rejected by the encoder. *)
  Alcotest.check_raises "lock reg" (Invalid_argument "Encode: LOCK on non-lockable")
    (fun () ->
      ignore
        (Encode.encode
           (Insn.Locked (Insn.Alu (Insn.Add, W64.B8, Insn.Reg 0, Insn.Imm 1L)))));
  (* mem-to-mem is rejected. *)
  (try
     ignore
       (Encode.encode
          (Insn.Mov (W64.B8, Insn.Mem sample_mem, Insn.RM (Insn.Mem sample_mem))));
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  (* undefined opcode decodes to Invalid_opcode *)
  (try
     ignore (Decode.decode_string "\xEE" ~at:0);
     Alcotest.fail "expected Invalid_opcode"
   with Decode.Invalid_opcode _ -> ())

let test_variable_lengths () =
  let len i = String.length (Encode.encode ~rip:0x1000L i) in
  Alcotest.(check int) "nop" 1 (len Insn.Nop);
  Alcotest.(check int) "ptlcall is 0f 37" 2 (len Insn.Ptlcall);
  Alcotest.(check bool) "reg-reg short" true (len (Insn.Alu (Insn.Add, W64.B8, Insn.Reg 0, Insn.RM (Insn.Reg 1))) <= 4);
  Alcotest.(check bool) "mem-imm long" true
    (len (Insn.Alu (Insn.Add, W64.B8, Insn.Mem (Insn.mem_abs 0x123456L), Insn.Imm 0x89ABCDL)) >= 10)

let test_ptlcall_opcode_bytes () =
  (* The paper defines ptlcall as opcode 0x0f37; check the actual bytes. *)
  let b = Encode.encode Insn.Ptlcall in
  Alcotest.(check int) "first" 0x0F (Char.code b.[0]);
  Alcotest.(check int) "second" 0x37 (Char.code b.[1])

let test_cond_eval () =
  let f = Flags.empty |> Flags.set_zf true |> Flags.set_cf true in
  Alcotest.(check bool) "e" true (Flags.eval Flags.E f);
  Alcotest.(check bool) "b" true (Flags.eval Flags.B f);
  Alcotest.(check bool) "a" false (Flags.eval Flags.A f);
  Alcotest.(check bool) "be" true (Flags.eval Flags.BE f);
  let f = Flags.empty |> Flags.set_sf true |> Flags.set_of true in
  Alcotest.(check bool) "l (sf=of)" false (Flags.eval Flags.L f);
  Alcotest.(check bool) "ge" true (Flags.eval Flags.GE f);
  let f = Flags.empty |> Flags.set_sf true in
  Alcotest.(check bool) "l (sf<>of)" true (Flags.eval Flags.L f)

let prop_cond_negate =
  QCheck.Test.make ~name:"negate inverts every condition" ~count:500
    QCheck.(pair (int_bound 15) (int_bound 0xFFF))
    (fun (code, flags) ->
      let c = Flags.cond_of_code code in
      Flags.eval c flags = not (Flags.eval (Flags.negate c) flags))

(* Random instruction generator for the round-trip property. *)
let gen_insn =
  let open QCheck.Gen in
  let gpr = int_bound 15 in
  let size = oneofl [ W64.B1; W64.B2; W64.B4; W64.B8 ] in
  let mem_g =
    let* base = opt gpr in
    let* index = opt gpr in
    let* scale = oneofl [ 1; 2; 4; 8 ] in
    let* disp = oneofl [ 0L; 8L; -8L; 127L; -128L; 128L; 0x1234L; -123456L ] in
    return (Insn.mem ?base ?index ~scale ~disp ())
  in
  let rm_g = oneof [ map (fun r -> Insn.Reg r) gpr; map (fun m -> Insn.Mem m) mem_g ] in
  let imm_g = oneofl [ 0L; 1L; -1L; 127L; -128L; 128L; 0x7FFFL; 0x12345678L; -2000000L ] in
  let src_of_rm rm =
    (* avoid mem-to-mem *)
    match rm with
    | Insn.Mem _ -> oneof [ map (fun r -> Insn.RM (Insn.Reg r)) gpr; map (fun i -> Insn.Imm i) imm_g ]
    | Insn.Reg _ ->
      oneof
        [ map (fun r -> Insn.RM (Insn.Reg r)) gpr;
          map (fun m -> Insn.RM (Insn.Mem m)) mem_g;
          map (fun i -> Insn.Imm i) imm_g ]
  in
  let alu_g =
    let* op = oneofl [ Insn.Add; Insn.Or; Insn.Adc; Insn.Sbb; Insn.And; Insn.Sub; Insn.Xor; Insn.Cmp ] in
    let* s = size in
    let* dst = rm_g in
    let* src = src_of_rm dst in
    return (Insn.Alu (op, s, dst, src))
  in
  let mov_g =
    let* s = size in
    let* dst = rm_g in
    let* src = src_of_rm dst in
    return (Insn.Mov (s, dst, src))
  in
  let shift_g =
    let* op = oneofl [ Insn.Shl; Insn.Shr; Insn.Sar; Insn.Rol; Insn.Ror ] in
    let* s = size in
    let* dst = rm_g in
    let* c = oneof [ map (fun n -> Insn.ImmC n) (int_bound 255); return Insn.Cl ] in
    return (Insn.Shift (op, s, dst, c))
  in
  let locked_g =
    let* op = oneofl [ Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor ] in
    let* s = size in
    let* m = mem_g in
    let* i = imm_g in
    return (Insn.Locked (Insn.Alu (op, s, Insn.Mem m, Insn.Imm i)))
  in
  let simple_g =
    oneofl
      [ Insn.Nop; Insn.Ret; Insn.Hlt; Insn.Syscall; Insn.Pushf; Insn.Popf;
        Insn.Rdtsc; Insn.Cpuid; Insn.Ptlcall; Insn.Kcall; Insn.Pause ]
  in
  let jcc_g =
    let* code = int_bound 15 in
    let* target = oneofl [ 0x400002L; 0x400050L; 0x40FFFFL; 0x3F0000L ] in
    return (Insn.Jcc (Flags.cond_of_code code, target))
  in
  oneof [ alu_g; mov_g; shift_g; locked_g; simple_g; jcc_g ]

let prop_roundtrip =
  QCheck.Test.make ~name:"decode (encode i) = normalize i" ~count:5000
    (QCheck.make ~print:Disasm.to_string gen_insn)
    (fun insn ->
      let rip = 0x400000L in
      match Encode.encode ~rip insn with
      | exception Invalid_argument _ -> QCheck.assume_fail ()
      | bytes ->
        let fetch addr = Char.code bytes.[Int64.to_int (Int64.sub addr rip)] in
        let decoded, len = Decode.decode ~fetch ~rip in
        len = String.length bytes && decoded = Encode.normalize insn)

let test_asm_basic () =
  let a = Asm.create ~base:0x1000L () in
  Asm.label a "start";
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg Regs.rax, Insn.Imm 0L));
  Asm.label a "loop";
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg Regs.rax, Insn.Imm 1L));
  Asm.ins a (Insn.Alu (Insn.Cmp, W64.B8, Insn.Reg Regs.rax, Insn.Imm 10L));
  Asm.jcc a Flags.NE "loop";
  Asm.ins a Insn.Ret;
  let img = Asm.assemble a in
  Alcotest.(check int64) "base symbol" 0x1000L (Asm.symbol img "start");
  Alcotest.(check bool) "loop after first insn" true (Asm.symbol img "loop" > 0x1000L);
  (* Decode the whole stream and confirm it ends with ret. *)
  let fetch addr = Char.code img.Asm.code.[Int64.to_int (Int64.sub addr 0x1000L)] in
  let rec walk rip acc =
    if Int64.to_int (Int64.sub rip 0x1000L) >= String.length img.Asm.code then List.rev acc
    else
      let insn, len = Decode.decode ~fetch ~rip in
      walk (Int64.add rip (Int64.of_int len)) (insn :: acc)
  in
  let insns = walk 0x1000L [] in
  Alcotest.(check int) "count" 5 (List.length insns);
  (match List.rev insns with
  | Insn.Ret :: _ -> ()
  | _ -> Alcotest.fail "last insn not ret");
  (* The backward jcc must resolve to the loop label. *)
  match List.nth insns 3 with
  | Insn.Jcc (Flags.NE, target) ->
    Alcotest.(check int64) "jcc target" (Asm.symbol img "loop") target
  | other -> Alcotest.fail ("expected jcc, got " ^ Disasm.to_string other)

let test_asm_forward_ref () =
  let a = Asm.create ~base:0L () in
  Asm.jmp a "end";
  Asm.ins a Insn.Hlt;
  Asm.label a "end";
  Asm.ins a Insn.Ret;
  let img = Asm.assemble a in
  let fetch addr = Char.code img.Asm.code.[Int64.to_int addr] in
  let insn, len = Decode.decode ~fetch ~rip:0L in
  match insn with
  | Insn.Jmp target ->
    Alcotest.(check int64) "forward target" (Asm.symbol img "end") target;
    (* hlt at len, ret at end *)
    let insn2, _ = Decode.decode ~fetch ~rip:(Int64.of_int len) in
    Alcotest.check insn_testable "hlt" Insn.Hlt insn2
  | other -> Alcotest.fail ("expected jmp, got " ^ Disasm.to_string other)

let test_asm_relaxation () =
  (* A short backward branch must use the 3-byte form; a far one must not. *)
  let near = Asm.create ~base:0L () in
  Asm.label near "top";
  Asm.ins near Insn.Nop;
  Asm.jcc near Flags.E "top";
  let img_near = Asm.assemble near in
  Alcotest.(check int) "short form" 4 (String.length img_near.Asm.code);
  let far = Asm.create ~base:0L () in
  Asm.label far "top";
  Asm.space far 1000;
  Asm.jcc far Flags.E "top";
  let img_far = Asm.assemble far in
  Alcotest.(check int) "long form" (1000 + 6) (String.length img_far.Asm.code)

let test_asm_align_and_data () =
  let a = Asm.create ~base:0x2000L () in
  Asm.ins a Insn.Nop;
  Asm.align a 16;
  Asm.label a "data";
  Asm.quad a 0x1122334455667788L;
  Asm.asciz a "hi";
  let img = Asm.assemble a in
  Alcotest.(check int64) "aligned" 0x2010L (Asm.symbol img "data");
  let off = Int64.to_int (Int64.sub (Asm.symbol img "data") 0x2000L) in
  Alcotest.(check int) "first data byte" 0x88 (Char.code img.Asm.code.[off]);
  Alcotest.(check int) "last data byte" 0x11 (Char.code img.Asm.code.[off + 7])

let test_asm_undefined_label () =
  let a = Asm.create ~base:0L () in
  Asm.jmp a "nowhere";
  try
    ignore (Asm.assemble a);
    Alcotest.fail "expected Undefined_label"
  with Asm.Undefined_label l -> Alcotest.(check string) "label name" "nowhere" l

let test_asm_quad_ref () =
  let a = Asm.create ~base:0x3000L () in
  Asm.label a "table";
  Asm.quad_label a "handler";
  Asm.label a "handler";
  Asm.ins a Insn.Ret;
  let img = Asm.assemble a in
  let off = Int64.to_int (Int64.sub (Asm.symbol img "table") 0x3000L) in
  let v = W64.of_bytes 8 (fun i -> Char.code img.Asm.code.[off + i]) in
  Alcotest.(check int64) "table entry" (Asm.symbol img "handler") v

(* --- table-driven exception conditions: hand-written #DE/#GP/#PF
   triggers must fault identically in two independent worlds — the spec
   oracle's prediction, and real IDT delivery through the sequential
   core's fault machinery (lib/arch/fault.ml + assists.ml). The
   conformance suite derives such triggers from the spec table; this is
   the hand-curated regression set pinning the architectural contract
   itself --- *)

module Spec = Ptl_spec.Spec
module Conformance = Ptl_oracle.Conformance

let test_exception_table () =
  let mbad = Insn.Mem (Insn.mem_bd Regs.r15 Conformance.bad_disp) in
  let cases =
    [
      ( "div-by-zero", 0, None, Spec.Kernel,
        [ Insn.Movabs (Regs.rdx, 0L); Insn.Movabs (Regs.rax, 7L);
          Insn.Movabs (Regs.rbx, 0L);
          Insn.Muldiv (Insn.Div, W64.B8, Insn.Reg Regs.rbx) ] );
      (* quotient overflow: rdx:rax / rbx does not fit 64 bits *)
      ( "div-overflow", 0, None, Spec.Kernel,
        [ Insn.Movabs (Regs.rdx, 5L); Insn.Movabs (Regs.rax, 0L);
          Insn.Movabs (Regs.rbx, 2L);
          Insn.Muldiv (Insn.Div, W64.B8, Insn.Reg Regs.rbx) ] );
      ( "idiv-min-by-minus-one", 0, None, Spec.Kernel,
        [ Insn.Movabs (Regs.rdx, -1L); Insn.Movabs (Regs.rax, Int64.min_int);
          Insn.Movabs (Regs.rbx, -1L);
          Insn.Muldiv (Insn.Idiv, W64.B8, Insn.Reg Regs.rbx) ] );
      ( "hlt-in-user-mode", 13, None, Spec.User, [ Insn.Hlt ] );
      ( "load-unmapped", 14, Some Conformance.bad_addr, Spec.Kernel,
        [ Insn.Movabs (Regs.r15, Conformance.scratch);
          Insn.Mov (W64.B8, Insn.Reg Regs.rax, Insn.RM mbad) ] );
      ( "store-unmapped", 14, Some Conformance.bad_addr, Spec.Kernel,
        [ Insn.Movabs (Regs.r15, Conformance.scratch);
          Insn.Mov (W64.B8, mbad, Insn.RM (Insn.Reg Regs.rax)) ] );
    ]
  in
  List.iter
    (fun (name, vector, addr, mode, insns) ->
      let c =
        { Conformance.e_name = name; e_vector = vector; e_addr = addr;
          e_mode = mode; e_body = (fun a -> Asm.inss a insns) }
      in
      let image = Conformance.build_exc_image c in
      (match Conformance.predict Spec.table mode image with
      | Some (v, pa) ->
        Alcotest.(check int) (name ^ ": oracle vector") vector v;
        (match (addr, pa) with
        | Some want, Some got ->
          Alcotest.(check int64) (name ^ ": oracle fault addr") want got
        | Some _, None ->
          Alcotest.failf "%s: oracle predicted no faulting address" name
        | None, _ -> ())
      | None -> Alcotest.failf "%s: oracle predicted no fault" name);
      let got, cr2 = Conformance.deliver mode image in
      Alcotest.(check int)
        (name ^ ": delivered to handler")
        (Conformance.marker vector) got;
      match addr with
      | Some want when vector = 14 ->
        Alcotest.(check int64) (name ^ ": cr2") want cr2
      | _ -> ())
    cases

let suite =
  [
    Alcotest.test_case "unit roundtrips" `Quick unit_roundtrips;
    Alcotest.test_case "invalid encodings" `Quick test_invalid_encodings;
    Alcotest.test_case "variable lengths" `Quick test_variable_lengths;
    Alcotest.test_case "ptlcall = 0f 37" `Quick test_ptlcall_opcode_bytes;
    Alcotest.test_case "condition evaluation" `Quick test_cond_eval;
    Test_seed.to_alcotest prop_cond_negate;
    Test_seed.to_alcotest prop_roundtrip;
    Alcotest.test_case "asm basic + decode walk" `Quick test_asm_basic;
    Alcotest.test_case "asm forward reference" `Quick test_asm_forward_ref;
    Alcotest.test_case "asm branch relaxation" `Quick test_asm_relaxation;
    Alcotest.test_case "asm align + data" `Quick test_asm_align_and_data;
    Alcotest.test_case "asm undefined label" `Quick test_asm_undefined_label;
    Alcotest.test_case "asm quad_ref" `Quick test_asm_quad_ref;
    Alcotest.test_case "exception table: oracle + delivery" `Quick
      test_exception_table;
  ]
