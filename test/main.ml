(* Aggregated alcotest runner for the whole repository. Each [Test_*]
   module exposes [suite : unit Alcotest.test_case list] registered here
   under its own section. Randomized tests draw their seed from
   [Test_seed] (OPTLSIM_TEST_SEED, default 42); on failure the runner
   prints the seed so the run can be reproduced exactly. *)

let () =
  try
    Alcotest.run ~and_exit:false "optlsim"
      [
      ("w64", Test_w64.suite);
      ("util", Test_util.suite);
      ("trace", Test_trace.suite);
      ("stats", Test_stats.suite);
      ("isa", Test_isa.suite);
      ("mem", Test_mem.suite);
      ("bpred", Test_bpred.suite);
      ("uop", Test_uop.suite);
      ("seqcore", Test_seqcore.suite);
      ("ooo", Test_ooo.suite);
      ("vm", Test_vm.suite);
      ("kernel", Test_kernel.suite);
      ("workloads", Test_workloads.suite);
      ("system", Test_system.suite);
      ("microbench", Test_microbench.suite);
      ("fuzz", Test_fuzz.suite);
      ("spec", Test_spec.suite);
      ("guard", Test_guard.suite);
      ("sample", Test_sample.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("store", Test_store.suite);
      ("fleet", Test_fleet.suite);
      ("chaos", Test_chaos.suite);
      ("sweep", Test_sweep.suite);
    ]
  with e ->
    Printf.eprintf
      "\nrandomized tests ran with OPTLSIM_TEST_SEED=%d; export it to \
       reproduce this run\n"
      Test_seed.seed;
    (match e with Alcotest.Test_error -> exit 1 | _ -> raise e)
