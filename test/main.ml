(* Aggregated alcotest runner for the whole repository. Each [Test_*]
   module exposes [suite : unit Alcotest.test_case list] registered here
   under its own section. *)

let () =
  Alcotest.run "optlsim"
    [
      ("w64", Test_w64.suite);
      ("util", Test_util.suite);
      ("trace", Test_trace.suite);
      ("stats", Test_stats.suite);
      ("isa", Test_isa.suite);
      ("mem", Test_mem.suite);
      ("bpred", Test_bpred.suite);
      ("uop", Test_uop.suite);
      ("seqcore", Test_seqcore.suite);
      ("ooo", Test_ooo.suite);
      ("kernel", Test_kernel.suite);
      ("workloads", Test_workloads.suite);
      ("system", Test_system.suite);
      ("microbench", Test_microbench.suite);
    ]
