(* Durable interval store tests (lib/store): a capture round-trips
   through disk byte-for-byte (replaying a disk-loaded base + delta
   equals replaying the in-memory one), and every corruption mode —
   truncation, bit rot, wrong magic, wrong version, wrong record kind,
   out-of-range index — is rejected with the right typed error instead
   of a crash or a silently wrong replay. *)

module Sample = Ptl_sample.Sample
module Store = Ptl_store.Store
module Config = Ptl_ooo.Config

let schedule =
  { Sample.ff_insns = 6_000; warmup_insns = 800; measure_insns = 1_200 }

(* one small capture, shared by every test (read-only apart from the
   per-test scratch copies) *)
let capture =
  lazy
    (let d, _ = Test_checkpoint.bare_loop ~iters:20_000 () in
     Sample.run_capture ~schedule d)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "optlsim_store_test_%d_%d" (Unix.getpid ()) !n)
    in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    dir

let make_store () =
  let cr = Lazy.force capture in
  match
    Store.create ~dir:(fresh_dir ()) ~workload:"test-workload" ~core:"ooo"
      ~schedule ~placement:"fixed" cr ~config:Config.tiny
  with
  | Ok s -> s
  | Error e -> Alcotest.fail (Store.error_to_string e)

let err_name = function
  | Store.E_io _ -> "io"
  | Store.E_bad_magic _ -> "bad_magic"
  | Store.E_bad_version _ -> "bad_version"
  | Store.E_bad_kind _ -> "bad_kind"
  | Store.E_truncated _ -> "truncated"
  | Store.E_checksum _ -> "checksum"
  | Store.E_bad_index _ -> "bad_index"
  | Store.E_mismatch _ -> "mismatch"

let check_error name expected = function
  | Ok _ -> Alcotest.fail (name ^ ": accepted corrupt data")
  | Error e ->
    Alcotest.(check string) name expected (err_name e);
    (* every error renders a diagnostic *)
    Alcotest.(check bool) (name ^ ": message") true
      (String.length (Store.error_to_string e) > 0)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* round trip: manifest survives reopen, and a disk-loaded base + delta
   replays to the same interval record as the in-memory capture *)
let test_round_trip () =
  let cr = Lazy.force capture in
  let st = make_store () in
  let st =
    match Store.open_store ~dir:(Store.dir st) with
    | Ok s -> s
    | Error e -> Alcotest.fail (Store.error_to_string e)
  in
  let m = Store.manifest st in
  Alcotest.(check int) "interval count" (Array.length cr.Sample.cr_deltas)
    m.Store.m_count;
  Alcotest.(check string) "workload digest" "test-workload" m.Store.m_workload;
  Alcotest.(check bool) "delta accounting recorded" true
    (m.Store.m_delta_bytes > 0
    && m.Store.m_delta_bytes < m.Store.m_full_bytes);
  Alcotest.(check bool) "schedule survives" true (Store.schedule m = schedule);
  let base =
    match Store.load_base st with
    | Ok b -> b
    | Error e -> Alcotest.fail (Store.error_to_string e)
  in
  let dk =
    match Store.load_interval st 1 with
    | Ok d -> d
    | Error e -> Alcotest.fail (Store.error_to_string e)
  in
  let from_disk =
    Sample.replay_delta ~core_name:"ooo" ~config:Config.tiny ~schedule
      ~index:1 ~base dk
  in
  let from_memory =
    Sample.replay_delta ~core_name:"ooo" ~config:Config.tiny ~schedule
      ~index:1 ~base:cr.Sample.cr_base cr.Sample.cr_deltas.(1)
  in
  Alcotest.(check bool) "interval measured" true (from_disk <> None);
  Alcotest.(check bool) "disk replay = memory replay" true
    (from_disk = from_memory)

let test_bad_index () =
  let st = make_store () in
  let m = Store.manifest st in
  check_error "index past the end" "bad_index"
    (Store.load_interval st m.Store.m_count);
  check_error "negative index" "bad_index" (Store.load_interval st (-1))

let test_truncation () =
  let st = make_store () in
  let path = Store.interval_path st 0 in
  let raw = read_file path in
  (* cut mid-payload *)
  write_file path (String.sub raw 0 (String.length raw - 7));
  check_error "truncated payload" "truncated" (Store.load_interval st 0);
  (* cut mid-header *)
  write_file path (String.sub raw 0 5);
  check_error "truncated header" "truncated" (Store.load_interval st 0)

let test_bit_flip () =
  let st = make_store () in
  let path = Store.interval_path st 0 in
  let raw = read_file path in
  let b = Bytes.of_string raw in
  (* flip one payload bit, well past the header *)
  let pos = Bytes.length b - 11 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
  write_file path (Bytes.to_string b);
  check_error "payload bit flip" "checksum" (Store.load_interval st 0)

let test_bad_magic_and_version () =
  let st = make_store () in
  let path = Store.interval_path st 0 in
  let raw = read_file path in
  let b = Bytes.of_string raw in
  Bytes.set b 0 'X';
  write_file path (Bytes.to_string b);
  check_error "bad magic" "bad_magic" (Store.load_interval st 0);
  let b = Bytes.of_string raw in
  (* version field is the little-endian u16 at offset 8 *)
  Bytes.set_uint16_le b 8 99;
  write_file path (Bytes.to_string b);
  check_error "future version" "bad_version" (Store.load_interval st 0)

let test_bad_kind () =
  let st = make_store () in
  (* a well-formed record of the wrong kind: the base image where an
     interval is expected *)
  let base_raw = read_file (Store.base_path (Store.dir st)) in
  write_file (Store.interval_path st 0) base_raw;
  check_error "kind confusion" "bad_kind" (Store.load_interval st 0)

let test_missing_manifest () =
  match Store.open_store ~dir:(fresh_dir ()) with
  | Ok _ -> Alcotest.fail "opened a store with no manifest"
  | Error (Store.E_io _) -> ()
  | Error e ->
    Alcotest.fail ("expected E_io, got " ^ Store.error_to_string e)

(* the result cache: hits round-trip, config digests partition the
   cache, and a corrupt cache entry means "replay again", never a
   failure or a wrong answer *)
let test_result_cache () =
  let st = make_store () in
  let digest = (Store.manifest st).Store.m_config_digest in
  let iv =
    let cr = Lazy.force capture in
    Sample.replay_delta ~core_name:"ooo" ~config:Config.tiny ~schedule
      ~index:0 ~base:cr.Sample.cr_base cr.Sample.cr_deltas.(0)
  in
  (match Store.get_result st ~config_digest:digest ~index:0 with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "cache hit before any put"
  | Error e -> Alcotest.fail (Store.error_to_string e));
  (match Store.put_result st ~config_digest:digest ~index:0 iv with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  (match Store.get_result st ~config_digest:digest ~index:0 with
  | Ok (Some cached) ->
    Alcotest.(check bool) "cached result identical" true (cached = iv)
  | Ok None -> Alcotest.fail "cache miss after put"
  | Error e -> Alcotest.fail (Store.error_to_string e));
  (* a different config digest is a different cache universe *)
  let other = Store.config_digest { Config.tiny with Config.rob_size = 9 } in
  (match Store.get_result st ~config_digest:other ~index:0 with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "cache leaked across config digests"
  | Error e -> Alcotest.fail (Store.error_to_string e));
  Alcotest.(check int) "cached_results finds the one entry" 1
    (List.length (Store.cached_results st ~config_digest:digest));
  (* corrupt the cache entry: fail-open to a replay, not an error *)
  let path = Store.result_path st ~config_digest:digest 0 in
  let raw = read_file path in
  write_file path (String.sub raw 0 (String.length raw - 3));
  (match Store.get_result st ~config_digest:digest ~index:0 with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "corrupt cache entry served"
  | Error e ->
    Alcotest.fail ("corrupt cache should fail open: " ^ Store.error_to_string e));
  check_error "put_result range check" "bad_index"
    (Store.put_result st ~config_digest:digest ~index:999 iv)

(* sweep legs share one store but never share results: entries live
   under per-config-digest file names, so two legs populating the cache
   side by side stay disjoint and a hit for leg A is never served to
   leg B — even at the same interval index *)
let test_leg_cache_disjoint () =
  let st = make_store () in
  let cr = Lazy.force capture in
  let config_a = { Config.tiny with Config.rob_size = 12 } in
  let config_b = { Config.tiny with Config.rob_size = 14 } in
  let digest_a = Store.config_digest config_a in
  let digest_b = Store.config_digest config_b in
  Alcotest.(check bool) "legs digest differently" true (digest_a <> digest_b);
  let iv_a =
    Sample.replay_delta ~core_name:"ooo" ~config:config_a ~schedule ~index:0
      ~base:cr.Sample.cr_base cr.Sample.cr_deltas.(0)
  in
  Alcotest.(check bool) "leg A's interval measured" true (iv_a <> None);
  (* leg B caches the distinguishable "window not measured" marker *)
  let iv_b = None in
  (match Store.put_result st ~config_digest:digest_a ~index:0 iv_a with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  (* leg B misses where leg A hits *)
  (match Store.get_result st ~config_digest:digest_b ~index:0 with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "leg A's result served to leg B"
  | Error e -> Alcotest.fail (Store.error_to_string e));
  (match Store.put_result st ~config_digest:digest_b ~index:0 iv_b with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  (* each leg reads back its own result, not the other's *)
  let hit name digest =
    match Store.get_result st ~config_digest:digest ~index:0 with
    | Ok (Some iv) -> iv
    | Ok None -> Alcotest.fail (name ^ ": miss after put")
    | Error e -> Alcotest.fail (Store.error_to_string e)
  in
  Alcotest.(check bool) "leg A reads its own timing" true
    (hit "leg A" digest_a = iv_a);
  Alcotest.(check bool) "leg B reads its own timing" true
    (hit "leg B" digest_b = iv_b);
  Alcotest.(check int) "one entry per leg" 1
    (List.length (Store.cached_results st ~config_digest:digest_a));
  Alcotest.(check bool) "both legs listed" true
    (List.mem digest_a (Store.cached_digests st)
    && List.mem digest_b (Store.cached_digests st))

(* two domains hammering the same result-cache slot: every write is
   tmp+rename with a per-(pid, counter) tmp name, so concurrent puts
   can interleave freely and the survivor must still read back clean *)
let test_result_cache_race () =
  let st = make_store () in
  let digest = (Store.manifest st).Store.m_config_digest in
  let cr = Lazy.force capture in
  let iv =
    Sample.replay_delta ~core_name:"ooo" ~config:Config.tiny ~schedule
      ~index:0 ~base:cr.Sample.cr_base cr.Sample.cr_deltas.(0)
  in
  let racer () =
    for _ = 1 to 50 do
      match Store.put_result st ~config_digest:digest ~index:0 iv with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Store.error_to_string e)
    done
  in
  let d1 = Stdlib.Domain.spawn racer in
  let d2 = Stdlib.Domain.spawn racer in
  Stdlib.Domain.join d1;
  Stdlib.Domain.join d2;
  match Store.get_result st ~config_digest:digest ~index:0 with
  | Ok (Some cached) ->
    Alcotest.(check bool) "raced cache entry reads back clean" true
      (cached = iv)
  | Ok None -> Alcotest.fail "raced cache entry lost"
  | Error e -> Alcotest.fail (Store.error_to_string e)

(* ---- the capture journal: resumable capture ---- *)

exception Interrupted

let dir_files dir = Sys.readdir dir |> Array.to_list |> List.sort compare

let check_same_store name dir_a dir_b =
  Alcotest.(check (list string))
    (name ^ ": same file set")
    (dir_files dir_b) (dir_files dir_a);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s byte-identical" name f)
        true
        (read_file (Filename.concat dir_a f)
        = read_file (Filename.concat dir_b f)))
    (dir_files dir_a)

(* a journaled capture pass over the shared workload; [interrupt_at]
   simulates a crash right after that window's journal record lands *)
let journal_capture ~dir ?resume ?interrupt_at () =
  let j =
    match
      Store.begin_capture ~dir ~workload:"test-workload" ~core:"ooo"
        ~schedule ~placement:"fixed" ~config:Config.tiny ?resume ()
    with
    | Ok j -> j
    | Error e -> Alcotest.fail (Store.error_to_string e)
  in
  let on_base b =
    match Store.journal_base j b with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Store.error_to_string e)
  in
  let on_window (w : Sample.window) =
    (match
       Store.journal_interval j ~index:w.Sample.w_index
         ~delta_bytes:w.Sample.w_delta_bytes
         ~full_bytes:w.Sample.w_full_bytes w.Sample.w_delta
     with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Store.error_to_string e));
    match interrupt_at with
    | Some i when w.Sample.w_index = i -> raise Interrupted
    | _ -> ()
  in
  let rs =
    Option.map
      (fun pt ->
        {
          Sample.rs_base = pt.Store.pt_base;
          rs_last = pt.Store.pt_last;
          rs_count = pt.Store.pt_count;
          rs_delta_bytes = pt.Store.pt_delta_bytes;
          rs_full_bytes = pt.Store.pt_full_bytes;
        })
      resume
  in
  let d, _ = Test_checkpoint.bare_loop ~iters:20_000 () in
  let cr = Sample.run_capture ~on_base ~on_window ?resume:rs ~schedule d in
  (j, cr)

let finish j (cr : Sample.capture_run) =
  match
    Store.finish_capture j ~total_insns:cr.Sample.cr_insns
      ~total_cycles:cr.Sample.cr_cycles
  with
  | Ok st -> st
  | Error e -> Alcotest.fail (Store.error_to_string e)

(* the journaled path and the one-shot Store.create path must lay down
   the very same bytes — journaling is free of observable side effects *)
let test_journal_matches_create () =
  let cr = Lazy.force capture in
  let dir_b = fresh_dir () in
  (match
     Store.create ~dir:dir_b ~workload:"test-workload" ~core:"ooo" ~schedule
       ~placement:"fixed" cr ~config:Config.tiny
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  let dir_a = fresh_dir () in
  let j, cr2 = journal_capture ~dir:dir_a () in
  ignore (finish j cr2);
  Alcotest.(check int) "same totals" cr.Sample.cr_insns cr2.Sample.cr_insns;
  check_same_store "journal vs create" dir_a dir_b

(* crash after window 2's record landed, tear that record mid-write,
   resume: the journal recovers the longest valid prefix (0,1), the
   resumed pass recaptures 2 onward, and the sealed store is
   byte-identical to one captured without interruption *)
let test_capture_resume_after_torn_record () =
  let cr = Lazy.force capture in
  let dir_b = fresh_dir () in
  (match
     Store.create ~dir:dir_b ~workload:"test-workload" ~core:"ooo" ~schedule
       ~placement:"fixed" cr ~config:Config.tiny
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  let dir_c = fresh_dir () in
  (try ignore (journal_capture ~dir:dir_c ~interrupt_at:2 ()) with
  | Interrupted -> ());
  Alcotest.(check bool) "no manifest mid-capture" false
    (Sys.file_exists (Filename.concat dir_c "MANIFEST"));
  (* tear the last record mid-write *)
  let torn = Filename.concat dir_c "interval-000002" in
  let raw = read_file torn in
  write_file torn (String.sub raw 0 (String.length raw / 2));
  let pt =
    match Store.scan_partial ~dir:dir_c with
    | Ok (Some pt) -> pt
    | Ok None -> Alcotest.fail "no resume point found"
    | Error e -> Alcotest.fail (Store.error_to_string e)
  in
  Alcotest.(check int) "torn record excluded from the prefix" 2
    pt.Store.pt_count;
  Alcotest.(check string) "journal identifies its workload" "test-workload"
    pt.Store.pt_workload;
  Alcotest.(check bool) "journal identifies its schedule" true
    (pt.Store.pt_schedule = schedule);
  let j, cr2 = journal_capture ~dir:dir_c ~resume:pt () in
  ignore (finish j cr2);
  Alcotest.(check int) "resumed totals are whole-run" cr.Sample.cr_insns
    cr2.Sample.cr_insns;
  Alcotest.(check bool) "progress record retired" false
    (Sys.file_exists (Filename.concat dir_c "PROGRESS"));
  check_same_store "resumed vs uninterrupted" dir_c dir_b;
  (* a sealed store has nothing to resume *)
  match Store.scan_partial ~dir:dir_c with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "sealed store offered a resume point"
  | Error e -> Alcotest.fail (Store.error_to_string e)

let suite =
  [
    Alcotest.test_case "round trip through disk" `Quick test_round_trip;
    Alcotest.test_case "bad index" `Quick test_bad_index;
    Alcotest.test_case "truncation rejected" `Quick test_truncation;
    Alcotest.test_case "bit flip rejected" `Quick test_bit_flip;
    Alcotest.test_case "bad magic / version rejected" `Quick
      test_bad_magic_and_version;
    Alcotest.test_case "record kind confusion rejected" `Quick test_bad_kind;
    Alcotest.test_case "missing manifest rejected" `Quick
      test_missing_manifest;
    Alcotest.test_case "result cache" `Quick test_result_cache;
    Alcotest.test_case "leg caches stay disjoint" `Quick
      test_leg_cache_disjoint;
    Alcotest.test_case "result cache write race" `Quick
      test_result_cache_race;
    Alcotest.test_case "journaled capture = one-shot capture" `Quick
      test_journal_matches_create;
    Alcotest.test_case "interrupted capture resumes byte-identically"
      `Quick test_capture_resume_after_torn_record;
  ]
