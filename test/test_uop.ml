(* Tests of the uop layer: microcode translation goldens, SOM/EOM
   bracketing, pure uop execution semantics, and the basic block cache
   (including self-modifying-code invalidation). *)

open Ptl_util
open Ptl_isa
open Ptl_uop
module Stats = Ptl_stats.Statstree

let tr insn = Microcode.translate insn ~rip:0x1000L ~next_rip:0x1004L

let ops uops = Array.to_list (Array.map (fun u -> u.Uop.op) uops)

let test_translate_alu_reg () =
  let uops = tr (Insn.Alu (Insn.Add, W64.B8, Insn.Reg 0, Insn.RM (Insn.Reg 3))) in
  Alcotest.(check int) "one uop" 1 (Array.length uops);
  let u = uops.(0) in
  Alcotest.(check bool) "som" true u.Uop.som;
  Alcotest.(check bool) "eom" true u.Uop.eom;
  Alcotest.(check int) "dest" 0 u.Uop.rd;
  Alcotest.(check int) "flags set" Flags.cc_mask u.Uop.setflags

let test_translate_load_op_store () =
  let m = Insn.mem_bd Regs.rbp 16L in
  let uops = tr (Insn.Alu (Insn.Sub, W64.B4, Insn.Mem m, Insn.Imm 5L)) in
  (match ops uops with
  | [ Uop.Ld; Uop.Sub; Uop.St ] -> ()
  | _ -> Alcotest.fail "expected ld/sub/st");
  Alcotest.(check bool) "som on first" true uops.(0).Uop.som;
  Alcotest.(check bool) "eom on last" true uops.(2).Uop.eom;
  Alcotest.(check bool) "no mid markers" false (uops.(1).Uop.som || uops.(1).Uop.eom)

let test_translate_locked () =
  let m = Insn.mem_bd Regs.rbp 0L in
  let uops = tr (Insn.Locked (Insn.Alu (Insn.Add, W64.B8, Insn.Mem m, Insn.Imm 1L))) in
  match ops uops with
  | [ Uop.Ldl; Uop.Add; Uop.Strel ] -> ()
  | _ -> Alcotest.fail "expected ld.l/add/st.rel"

let test_translate_xchg_implicit_lock () =
  let m = Insn.mem_bd Regs.rbp 0L in
  let uops = tr (Insn.Xchg (W64.B8, Insn.Mem m, 3)) in
  match ops uops with
  | [ Uop.Ldl; Uop.Strel; Uop.Mov ] -> ()
  | _ -> Alcotest.fail "xchg mem must be locked"

let test_translate_call () =
  let uops = tr (Insn.Call 0x2000L) in
  (match ops uops with
  | [ Uop.Mov; Uop.Sub; Uop.St; Uop.Bru ] -> ()
  | _ -> Alcotest.fail "expected mov/sub/st/bru");
  Alcotest.(check int64) "return addr" 0x1004L uops.(0).Uop.imm;
  Alcotest.(check int64) "target" 0x2000L uops.(3).Uop.br_target

let test_translate_rep_movs () =
  let uops = tr (Insn.Movs (W64.B1, true)) in
  (match ops uops with
  | [ Uop.Brz; Uop.Ld; Uop.St; Uop.Add; Uop.Add; Uop.Sub; Uop.Bru ] -> ()
  | _ -> Alcotest.fail "unexpected rep movs expansion");
  (* exit branch leaves the instruction; back edge re-enters it *)
  Alcotest.(check int64) "exit to next" 0x1004L uops.(0).Uop.br_target;
  Alcotest.(check int64) "loop to self" 0x1000L uops.(6).Uop.br_target

let test_translate_div_by_8bit_unimplemented () =
  match Microcode.translate (Insn.Muldiv (Insn.Div, W64.B1, Insn.Reg 1)) ~rip:0L ~next_rip:2L with
  | exception Microcode.Unimplemented _ -> ()
  | _ -> Alcotest.fail "expected Unimplemented"

let test_translate_assists_serialize () =
  List.iter
    (fun insn ->
      let uops = tr insn in
      Alcotest.(check bool) "ends block" true
        (Array.exists Uop.ends_block uops))
    [ Insn.Syscall; Insn.Hlt; Insn.Ptlcall; Insn.Iret; Insn.Int 3 ]

(* --- pure exec semantics --- *)

let exec ?(ra = 0L) ?(rb = 0L) ?(rc = 0L) ?(flags = 0) u =
  Exec.execute u ~ra ~rb ~rc ~flags

let mku ?(size = W64.B8) ?(setflags = 0) ?(imm = 0L) ?(ra = Uop.reg_none)
    ?(rb = Uop.reg_none) ?(rc = Uop.reg_none) op =
  { Uop.default with Uop.op; size; setflags; imm; ra; rb; rc }

let test_exec_add_flags () =
  let u = mku ~size:W64.B4 ~setflags:Flags.cc_mask ~ra:0 ~rb:1 Uop.Add in
  let out = exec ~ra:0xFFFFFFFFL ~rb:1L u in
  Alcotest.(check int64) "wrap" 0L out.Exec.value;
  Alcotest.(check bool) "cf" true (Flags.cf out.Exec.flags);
  Alcotest.(check bool) "zf" true (Flags.zf out.Exec.flags);
  Alcotest.(check bool) "of clear" false (Flags.off out.Exec.flags)

let test_exec_partial_register_merge () =
  (* mov.b1 rax <- 0xFF must preserve the upper 56 bits *)
  let u = mku ~size:W64.B1 ~ra:0 ~imm:0xFFL Uop.Mov in
  let out = exec ~ra:0x1122334455667700L u in
  Alcotest.(check int64) "merged" 0x11223344556677FFL out.Exec.value;
  (* mov.b4 zero-extends *)
  let u = mku ~size:W64.B4 ~ra:0 ~imm:(-1L) Uop.Mov in
  let out = exec ~ra:0x1122334455667700L u in
  Alcotest.(check int64) "zext" 0xFFFFFFFFL out.Exec.value

let test_exec_inc_preserves_cf () =
  let u =
    mku ~size:W64.B8 ~setflags:(Flags.cc_mask land lnot Flags.cf_mask) ~ra:0 ~imm:1L
      Uop.Add
  in
  let out = exec ~ra:5L ~flags:Flags.cf_mask u in
  Alcotest.(check bool) "cf preserved" true (Flags.cf out.Exec.flags);
  Alcotest.(check int64) "value" 6L out.Exec.value

let test_exec_div128 () =
  let u = mku ~size:W64.B8 ~ra:0 ~rb:1 ~rc:2 Uop.Divqu in
  (* (1 << 64 | 0) / 2 would overflow; use hi=0 *)
  let out = exec ~ra:0L ~rb:100L ~rc:7L u in
  Alcotest.(check int64) "quot" 14L out.Exec.value;
  let u = mku ~size:W64.B8 ~ra:0 ~rb:1 ~rc:2 Uop.Remqu in
  let out = exec ~ra:0L ~rb:100L ~rc:7L u in
  Alcotest.(check int64) "rem" 2L out.Exec.value;
  (* true 128-bit: (5 << 64 + 10) / 16 = 5 << 60 + 0 ... check via identity *)
  let u = mku ~size:W64.B8 ~ra:0 ~rb:1 ~rc:2 Uop.Divqu in
  let out = exec ~ra:5L ~rb:10L ~rc:16L u in
  Alcotest.(check int64) "128-bit quot" 0x5000000000000000L out.Exec.value

let test_exec_div_faults () =
  let u = mku ~size:W64.B8 ~ra:0 ~rb:1 ~rc:2 Uop.Divqu in
  (try
     ignore (exec ~ra:0L ~rb:1L ~rc:0L u);
     Alcotest.fail "expected divide error"
   with Exec.Divide_error -> ());
  try
    ignore (exec ~ra:2L ~rb:0L ~rc:1L u);
    Alcotest.fail "expected overflow divide error"
  with Exec.Divide_error -> ()

let test_exec_signed_div () =
  let u = mku ~size:W64.B8 ~ra:0 ~rb:1 ~rc:2 Uop.Divqs in
  let out = exec ~ra:(-1L) ~rb:(-100L) ~rc:7L u in
  Alcotest.(check int64) "-100/7" (-14L) out.Exec.value;
  let u = mku ~size:W64.B8 ~ra:0 ~rb:1 ~rc:2 Uop.Remqs in
  let out = exec ~ra:(-1L) ~rb:(-100L) ~rc:7L u in
  Alcotest.(check int64) "-100 rem 7" (-2L) out.Exec.value

let test_exec_sel_setc () =
  let u = mku ~size:W64.B8 ~ra:0 ~rb:1 (Uop.Sel Flags.E) in
  let out = exec ~ra:111L ~rb:222L ~flags:Flags.zf_mask u in
  Alcotest.(check int64) "sel true" 111L out.Exec.value;
  let out = exec ~ra:111L ~rb:222L ~flags:0 u in
  Alcotest.(check int64) "sel false" 222L out.Exec.value;
  let u = mku ~size:W64.B1 ~ra:0 (Uop.Setc Flags.NE) in
  let out = exec ~ra:0xAA00L ~flags:0 u in
  Alcotest.(check int64) "setne merges" 0xAA01L out.Exec.value

let test_exec_branches () =
  let u = { (mku (Uop.Brc Flags.E)) with Uop.br_target = 0x100L; next_rip = 0x8L } in
  let out = exec ~flags:Flags.zf_mask u in
  Alcotest.(check bool) "taken" true out.Exec.taken;
  Alcotest.(check int64) "target" 0x100L out.Exec.target;
  let out = exec ~flags:0 u in
  Alcotest.(check bool) "not taken" false out.Exec.taken;
  Alcotest.(check int64) "fallthrough" 0x8L out.Exec.target;
  let u = { (mku ~ra:0 Uop.Brz) with Uop.br_target = 0x200L; next_rip = 0x8L } in
  Alcotest.(check bool) "brz on zero" true (exec ~ra:0L u).Exec.taken;
  Alcotest.(check bool) "brz on nonzero" false (exec ~ra:1L u).Exec.taken;
  let u = mku ~ra:0 Uop.Jmpr in
  Alcotest.(check int64) "jmpr" 0xABCL (exec ~ra:0xABCL u).Exec.target

let test_exec_address () =
  let u = { (mku ~ra:0 ~rb:1 Uop.Ld) with Uop.scale = 4; imm = 0x10L } in
  let out = exec ~ra:0x1000L ~rb:3L u in
  Alcotest.(check int64) "ea" 0x101CL out.Exec.value

let test_exec_fp () =
  let b = Int64.bits_of_float in
  let u = mku ~ra:0 ~rb:1 Uop.Fadd in
  let out = exec ~ra:(b 1.5) ~rb:(b 2.25) u in
  Alcotest.(check (float 1e-12)) "fadd" 3.75 (Int64.float_of_bits out.Exec.value);
  let u = mku ~ra:0 Uop.I2f in
  let out = exec ~ra:42L u in
  Alcotest.(check (float 1e-12)) "i2f" 42.0 (Int64.float_of_bits out.Exec.value);
  let u = mku ~ra:0 Uop.F2i in
  let out = exec ~ra:(b (-3.7)) u in
  Alcotest.(check int64) "f2i truncates" (-3L) out.Exec.value;
  let u = mku ~ra:0 ~rb:1 ~setflags:Flags.cc_mask Uop.Fcmp in
  let out = exec ~ra:(b 1.0) ~rb:(b 2.0) u in
  Alcotest.(check bool) "1<2 sets cf" true (Flags.cf out.Exec.flags);
  let out = exec ~ra:(b 2.0) ~rb:(b 2.0) u in
  Alcotest.(check bool) "eq sets zf" true (Flags.zf out.Exec.flags)

(* Property: microcode of random ALU instructions has SOM on the first uop,
   EOM on the last, and no load without a matching fault-safe shape. *)
let prop_translation_brackets =
  QCheck.Test.make ~name:"translations are SOM/EOM bracketed" ~count:1000
    (QCheck.make Test_isa.gen_insn)
    (fun insn ->
      match Microcode.translate insn ~rip:0x1000L ~next_rip:0x1005L with
      | exception Microcode.Unimplemented _ -> QCheck.assume_fail ()
      | exception Invalid_argument _ -> QCheck.assume_fail ()
      | uops ->
        Array.length uops > 0
        && uops.(0).Uop.som
        && uops.(Array.length uops - 1).Uop.eom
        && Array.for_all
             (fun u -> u.Uop.rip = 0x1000L && u.Uop.next_rip = 0x1005L)
             uops)

(* --- basic block cache --- *)

let make_code_mem insns =
  (* assemble at 0x1000 and expose fetch/mfn functions over a flat array *)
  let a = Asm.create ~base:0x1000L () in
  List.iter (Asm.ins a) insns;
  let img = Asm.assemble a in
  let fetch va =
    let off = Int64.to_int (Int64.sub va 0x1000L) in
    if off < 0 || off >= String.length img.Asm.code then
      raise (Decode.Invalid_opcode va)
    else Char.code img.Asm.code.[off]
  in
  let mfn_of va = Int64.to_int (Int64.shift_right_logical va 12) in
  (img, fetch, mfn_of)

let test_bbcache_build_and_hit () =
  let stats = Stats.create () in
  let cache = Bbcache.create stats in
  let _, fetch, mfn_of =
    make_code_mem
      [ Insn.Alu (Insn.Add, W64.B8, Insn.Reg 0, Insn.Imm 1L);
        Insn.Alu (Insn.Add, W64.B8, Insn.Reg 1, Insn.Imm 2L);
        Insn.Ret ]
  in
  let bb = Bbcache.lookup cache ~rip:0x1000L ~kernel:false ~fetch ~mfn_of in
  Alcotest.(check int) "three insns" 3 bb.Bbcache.insn_count;
  Alcotest.(check bool) "terminated by ret" true bb.Bbcache.terminated;
  Alcotest.(check int) "miss counted" 1 (Stats.get stats "bbcache.misses");
  let _ = Bbcache.lookup cache ~rip:0x1000L ~kernel:false ~fetch ~mfn_of in
  Alcotest.(check int) "hit counted" 1 (Stats.get stats "bbcache.hits")

let test_bbcache_kernel_user_split () =
  let stats = Stats.create () in
  let cache = Bbcache.create stats in
  let _, fetch, mfn_of = make_code_mem [ Insn.Ret ] in
  let _ = Bbcache.lookup cache ~rip:0x1000L ~kernel:false ~fetch ~mfn_of in
  let _ = Bbcache.lookup cache ~rip:0x1000L ~kernel:true ~fetch ~mfn_of in
  Alcotest.(check int) "two blocks (mode in key)" 2 (Bbcache.size cache)

let test_bbcache_insn_limit () =
  let stats = Stats.create () in
  let cache = Bbcache.create ~max_insns:4 stats in
  let _, fetch, mfn_of =
    make_code_mem (List.init 10 (fun _ -> Insn.Alu (Insn.Add, W64.B8, Insn.Reg 0, Insn.Imm 1L)))
  in
  let bb = Bbcache.lookup cache ~rip:0x1000L ~kernel:false ~fetch ~mfn_of in
  Alcotest.(check int) "limit respected" 4 bb.Bbcache.insn_count;
  Alcotest.(check bool) "not terminated" false bb.Bbcache.terminated;
  (* fallthrough continues exactly after the 4th instruction *)
  let bb2 =
    Bbcache.lookup cache ~rip:bb.Bbcache.fallthrough_rip ~kernel:false ~fetch ~mfn_of
  in
  Alcotest.(check int) "second block capped too" 4 bb2.Bbcache.insn_count;
  let bb3 =
    Bbcache.lookup cache ~rip:bb2.Bbcache.fallthrough_rip ~kernel:false ~fetch ~mfn_of
  in
  Alcotest.(check int) "remainder" 2 bb3.Bbcache.insn_count

let test_bbcache_smc_invalidation () =
  let stats = Stats.create () in
  let cache = Bbcache.create stats in
  let _, fetch, mfn_of = make_code_mem [ Insn.Nop; Insn.Ret ] in
  let bb = Bbcache.lookup cache ~rip:0x1000L ~kernel:false ~fetch ~mfn_of in
  let mfn = List.hd bb.Bbcache.mfns in
  Alcotest.(check bool) "page has code" true (Bbcache.mfn_has_code cache mfn);
  Alcotest.(check bool) "store triggers flush" true (Bbcache.store_committed cache mfn);
  Alcotest.(check int) "block gone" 0 (Bbcache.size cache);
  Alcotest.(check bool) "second store is clean" false (Bbcache.store_committed cache mfn);
  Alcotest.(check int) "flush counted" 1 (Stats.get stats "bbcache.smc_flushes")

let test_bbcache_mid_block_fault_cut () =
  (* code runs off the end of mapped bytes: the block must stop cleanly
     after the last decodable instruction *)
  let stats = Stats.create () in
  let cache = Bbcache.create stats in
  let _, fetch, mfn_of = make_code_mem [ Insn.Nop; Insn.Nop ] in
  let bb = Bbcache.lookup cache ~rip:0x1000L ~kernel:false ~fetch ~mfn_of in
  Alcotest.(check int) "both nops decoded" 2 bb.Bbcache.insn_count;
  Alcotest.(check bool) "cut, not terminated" false bb.Bbcache.terminated

let suite =
  [
    Alcotest.test_case "translate alu reg" `Quick test_translate_alu_reg;
    Alcotest.test_case "translate load-op-store" `Quick test_translate_load_op_store;
    Alcotest.test_case "translate locked rmw" `Quick test_translate_locked;
    Alcotest.test_case "translate xchg implicit lock" `Quick test_translate_xchg_implicit_lock;
    Alcotest.test_case "translate call" `Quick test_translate_call;
    Alcotest.test_case "translate rep movs loop" `Quick test_translate_rep_movs;
    Alcotest.test_case "translate 8-bit div unimplemented" `Quick test_translate_div_by_8bit_unimplemented;
    Alcotest.test_case "assists end blocks" `Quick test_translate_assists_serialize;
    Alcotest.test_case "exec add flags" `Quick test_exec_add_flags;
    Alcotest.test_case "exec partial register merge" `Quick test_exec_partial_register_merge;
    Alcotest.test_case "exec inc preserves cf" `Quick test_exec_inc_preserves_cf;
    Alcotest.test_case "exec 128/64 divide" `Quick test_exec_div128;
    Alcotest.test_case "exec divide faults" `Quick test_exec_div_faults;
    Alcotest.test_case "exec signed divide" `Quick test_exec_signed_div;
    Alcotest.test_case "exec sel/setc" `Quick test_exec_sel_setc;
    Alcotest.test_case "exec branches" `Quick test_exec_branches;
    Alcotest.test_case "exec address generation" `Quick test_exec_address;
    Alcotest.test_case "exec floating point" `Quick test_exec_fp;
    Test_seed.to_alcotest prop_translation_brackets;
    Alcotest.test_case "bbcache build + hit" `Quick test_bbcache_build_and_hit;
    Alcotest.test_case "bbcache kernel/user key" `Quick test_bbcache_kernel_user_split;
    Alcotest.test_case "bbcache insn limit" `Quick test_bbcache_insn_limit;
    Alcotest.test_case "bbcache SMC invalidation" `Quick test_bbcache_smc_invalidation;
    Alcotest.test_case "bbcache mid-block fault cut" `Quick test_bbcache_mid_block_fault_cut;
  ]
