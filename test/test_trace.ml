(* Trace subsystem tests: ring wraparound/overwrite semantics, the trace
   filters (class / RIP / cycle window), trigger modes, sink sanity, and an
   end-to-end OOO run checking that the captured window reconstructs
   exactly what the counter tree says happened — commit events equal to
   ooo.commit.insns, and a mispredicted branch visible with its annulled
   wrong-path uops. *)

open Ptl_util
open Ptl_isa
module Trace = Ptl_trace.Trace
module Machine = Ptl_arch.Machine
module Ooo = Ptl_ooo.Ooo_core
module Config = Ptl_ooo.Config
module Stats = Ptl_stats.Statstree

(* Every test must leave the global trace disarmed, or later suites would
   capture events into a stale configuration. *)
let with_trace f =
  Fun.protect ~finally:(fun () -> Trace.disable ()) f

(* ---------- ring overwrite semantics ---------- *)

let test_ring_push_overwrite () =
  let r = Ring.create 4 in
  for i = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "no overwrite at %d" i)
      false
      (Ring.push_overwrite r i)
  done;
  Alcotest.(check bool) "full" true (Ring.is_full r);
  (* pushing into a full ring drops the oldest *)
  Alcotest.(check bool) "overwrites" true (Ring.push_overwrite r 5);
  Alcotest.(check (list int)) "oldest dropped" [ 2; 3; 4; 5 ] (Ring.to_list r);
  Alcotest.(check bool) "overwrites again" true (Ring.push_overwrite r 6);
  Alcotest.(check (list int)) "window slides" [ 3; 4; 5; 6 ] (Ring.to_list r);
  Alcotest.(check int) "length stays at capacity" 4 (Ring.length r)

let test_ring_overwrite_wraparound_many () =
  let cap = 7 in
  let r = Ring.create cap in
  for i = 1 to 1000 do
    ignore (Ring.push_overwrite r i)
  done;
  (* the window is always the [cap] most recent values, in order *)
  Alcotest.(check (list int))
    "last cap survive"
    [ 994; 995; 996; 997; 998; 999; 1000 ]
    (Ring.to_list r);
  (* pop interoperates with overwrite: oldest first *)
  Alcotest.(check int) "pop oldest" 994 (Ring.pop r);
  ignore (Ring.push_overwrite r 1001);
  Alcotest.(check int) "refill after pop" cap (Ring.length r)

let test_ring_overwrite_mixed_ops () =
  let r = Ring.create 3 in
  ignore (Ring.push_overwrite r 1);
  ignore (Ring.push_overwrite r 2);
  Alcotest.(check int) "pop" 1 (Ring.pop r);
  ignore (Ring.push_overwrite r 3);
  ignore (Ring.push_overwrite r 4);
  (* now full with [2;3;4]; overwrite rotates through a non-zero head *)
  Alcotest.(check bool) "overwrite rotated" true (Ring.push_overwrite r 5);
  Alcotest.(check (list int)) "rotated window" [ 3; 4; 5 ] (Ring.to_list r);
  Alcotest.(check int) "get oldest" 3 (Ring.get r 0);
  Alcotest.(check int) "get youngest" 5 (Ring.get r 2)

(* ---------- trace capture, filters, trigger ---------- *)

let test_trace_capture_and_wrap () =
  with_trace (fun () ->
      Trace.configure ~capacity:8 ();
      Alcotest.(check bool) "armed" true !Trace.on;
      for c = 1 to 20 do
        Trace.set_cycle c;
        Trace.emit ~uuid:c Trace.Issue
      done;
      Alcotest.(check int) "window holds capacity" 8 (Trace.length ());
      Alcotest.(check int) "captured counts all" 20 (Trace.captured ());
      Alcotest.(check int) "overwritten counts lost" 12 (Trace.overwritten ());
      let evs = Trace.events () in
      Alcotest.(check int) "oldest surviving cycle" 13
        (List.hd evs).Trace.ev_cycle;
      Alcotest.(check int) "youngest cycle" 20
        (List.nth evs 7).Trace.ev_cycle)

let test_trace_class_filter () =
  with_trace (fun () ->
      Trace.configure ~classes:[ Trace.Retire; Trace.Tlb ] ();
      Trace.set_cycle 1;
      Trace.emit Trace.Issue;  (* pipe: filtered out *)
      Trace.emit Trace.Cache_miss;  (* mem: filtered out *)
      Trace.emit Trace.Commit;
      Trace.emit Trace.Tlb_miss;
      Trace.emit Trace.Commit_uop;
      Alcotest.(check int) "only selected classes" 3 (Trace.length ());
      Alcotest.(check bool) "no pipe events" true
        (List.for_all
           (fun e -> Trace.class_of e.Trace.ev_kind <> Trace.Pipe)
           (Trace.events ())))

let test_trace_parse_classes () =
  Alcotest.(check int) "all by default" (List.length Trace.all_classes)
    (List.length (Trace.parse_classes ""));
  Alcotest.(check bool) "pipe,commit" true
    (Trace.parse_classes "pipe,commit" = [ Trace.Pipe; Trace.Retire ]);
  Alcotest.(check bool) "rejects junk" true
    (try
       ignore (Trace.parse_classes "pipe,bogus");
       false
     with Invalid_argument _ -> true)

let test_trace_rip_filter () =
  with_trace (fun () ->
      Trace.configure ~rip:0x400100L ();
      Trace.set_cycle 1;
      Trace.emit ~rip:0x400100L Trace.Issue;
      Trace.emit ~rip:0x400108L Trace.Issue;
      Trace.emit ~rip:0x400100L Trace.Commit;
      Alcotest.(check int) "only matching rip" 2 (Trace.length ()))

let test_trace_cycle_window () =
  with_trace (fun () ->
      Trace.configure ~start_cycle:10 ~stop_cycle:20 ();
      for c = 1 to 30 do
        Trace.set_cycle c;
        Trace.emit Trace.Issue
      done;
      (* cycles 10..20 inclusive *)
      Alcotest.(check int) "window 10..20" 11 (Trace.length ());
      let evs = Trace.events () in
      Alcotest.(check int) "first at start" 10 (List.hd evs).Trace.ev_cycle)

let test_trace_trigger_mispredict () =
  with_trace (fun () ->
      Trace.configure ~trigger:Trace.On_mispredict ();
      Trace.set_cycle 1;
      Trace.emit Trace.Issue;
      Trace.emit Trace.Commit;
      Alcotest.(check int) "nothing before trigger" 0 (Trace.length ());
      Trace.set_cycle 2;
      Trace.emit Trace.Mispredict;  (* fires the trigger AND is recorded *)
      Trace.emit Trace.Annul;
      Trace.set_cycle 3;
      Trace.emit Trace.Fetch;
      Alcotest.(check int) "mispredict onward" 3 (Trace.length ());
      Alcotest.(check bool) "first recorded is the mispredict" true
        ((List.hd (Trace.events ())).Trace.ev_kind = Trace.Mispredict))

let test_trace_disabled_emits_nothing () =
  with_trace (fun () ->
      Trace.configure ();
      Trace.disable ();
      Trace.emit Trace.Issue;
      Alcotest.(check int) "no capture when off" 0 (Trace.length ()))

let test_trace_clear_rearms_trigger () =
  with_trace (fun () ->
      Trace.configure ~trigger:Trace.On_mispredict ();
      Trace.set_cycle 1;
      Trace.emit Trace.Mispredict;
      Trace.emit Trace.Issue;
      Alcotest.(check int) "captured" 2 (Trace.length ());
      Trace.clear ();
      Alcotest.(check int) "cleared" 0 (Trace.length ());
      Trace.emit Trace.Issue;
      Alcotest.(check int) "trigger re-armed" 0 (Trace.length ()))

(* ---------- sinks ---------- *)

let with_temp_file f =
  let path = Filename.temp_file "trace_test" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_trace_chrome_sink () =
  with_trace (fun () ->
      Trace.configure ();
      Trace.set_cycle 5;
      Trace.emit ~core:1 ~uuid:7 ~rip:0x400000L ~tag:"ooo" Trace.Commit;
      Trace.emit ~core:1 Trace.Cache_miss;
      with_temp_file (fun path ->
          let oc = open_out path in
          Trace.dump_chrome oc;
          close_out oc;
          let s = read_file path in
          Alcotest.(check bool) "has traceEvents" true
            (contains ~sub:"\"traceEvents\"" s);
          Alcotest.(check bool) "has commit event" true
            (contains ~sub:"\"commit:ooo\"" s);
          Alcotest.(check bool) "has metadata names" true
            (contains ~sub:"thread_name" s);
          (* structural sanity: braces and brackets balance *)
          let bal open_c close_c =
            String.fold_left
              (fun acc c ->
                if c = open_c then acc + 1
                else if c = close_c then acc - 1
                else acc)
              0 s
          in
          Alcotest.(check int) "braces balance" 0 (bal '{' '}');
          Alcotest.(check int) "brackets balance" 0 (bal '[' ']')))

let test_trace_csv_sink () =
  with_trace (fun () ->
      Trace.configure ();
      Trace.set_cycle 9;
      Trace.emit ~uuid:3 ~rip:0x1234L Trace.Issue;
      with_temp_file (fun path ->
          let oc = open_out path in
          Trace.dump_csv oc;
          close_out oc;
          let s = read_file path in
          Alcotest.(check bool) "header" true
            (contains ~sub:"cycle,kind,core" s);
          Alcotest.(check bool) "row" true (contains ~sub:"9,issue,0,0,3" s)))

(* An SMT window must group each hardware thread's events into its own
   contiguous tid band with labeled tracks. *)
let test_trace_chrome_smt_tracks () =
  with_trace (fun () ->
      Trace.configure ();
      Trace.set_cycle 3;
      Trace.emit ~thread:0 ~uuid:1 Trace.Fetch;
      Trace.emit ~thread:1 ~uuid:2 Trace.Fetch;
      Trace.emit ~thread:1 ~uuid:2 ~tag:"smt" Trace.Commit;
      with_temp_file (fun path ->
          let oc = open_out path in
          Trace.dump_chrome oc;
          close_out oc;
          let s = read_file path in
          (* thread 0 keeps the plain stage track *)
          Alcotest.(check bool) "t0 fetch track" true
            (contains ~sub:"{\"name\":\"fetch\"}" s);
          (* thread 1's tracks are labeled and live at tid 32+stage *)
          Alcotest.(check bool) "t1 fetch track" true
            (contains ~sub:"{\"name\":\"t1:fetch\"}" s);
          Alcotest.(check bool) "t1 commit track" true
            (contains ~sub:"{\"name\":\"t1:commit\"}" s);
          Alcotest.(check bool) "t1 fetch tid" true
            (contains ~sub:"\"tid\":32," s);
          Alcotest.(check bool) "t1 commit tid" true
            (contains ~sub:"\"tid\":43," s)))

(* ---------- incremental streaming sinks ---------- *)

let test_trace_stream_text_csv () =
  with_trace (fun () ->
      Trace.configure ();
      with_temp_file (fun path ->
          let oc = open_out path in
          Trace.stream_to Trace.Stream_csv oc;
          Alcotest.(check bool) "streaming on" true (Trace.streaming ());
          Trace.set_cycle 4;
          Trace.emit ~uuid:11 ~rip:0xbeefL Trace.Issue;
          (* the event is on disk before the run ends *)
          Trace.stream_stop ();
          close_out oc;
          let s = read_file path in
          Alcotest.(check bool) "csv header" true
            (contains ~sub:"cycle,kind,core" s);
          Alcotest.(check bool) "csv row" true
            (contains ~sub:"4,issue,0,0,11" s));
      Alcotest.(check bool) "detached" false (Trace.streaming ()))

let test_trace_stream_chrome () =
  with_trace (fun () ->
      Trace.configure ();
      with_temp_file (fun path ->
          let oc = open_out path in
          Trace.stream_to Trace.Stream_chrome oc;
          Trace.set_cycle 1;
          Trace.emit ~thread:1 ~uuid:1 Trace.Fetch;
          Trace.emit ~uuid:2 ~tag:"ooo" Trace.Commit;
          (* disable () must finalize the stream so the JSON is valid *)
          Trace.disable ();
          close_out oc;
          let s = read_file path in
          Alcotest.(check bool) "has traceEvents" true
            (contains ~sub:"\"traceEvents\"" s);
          Alcotest.(check bool) "lazy track metadata" true
            (contains ~sub:"{\"name\":\"t1:fetch\"}" s);
          Alcotest.(check bool) "has commit event" true
            (contains ~sub:"\"commit:ooo\"" s);
          let bal open_c close_c =
            String.fold_left
              (fun acc c ->
                if c = open_c then acc + 1
                else if c = close_c then acc - 1
                else acc)
              0 s
          in
          Alcotest.(check int) "braces balance" 0 (bal '{' '}');
          Alcotest.(check int) "brackets balance" 0 (bal '[' ']')))

(* events accepted while streaming also land in the ring (stream is a
   tee, not a diversion), and events rejected by filters reach neither *)
let test_trace_stream_tee_and_filters () =
  with_trace (fun () ->
      Trace.configure ~classes:[ Trace.Retire ] ();
      with_temp_file (fun path ->
          let oc = open_out path in
          Trace.stream_to Trace.Stream_text oc;
          Trace.set_cycle 2;
          Trace.emit Trace.Fetch;
          (* filtered: pipe class *)
          Trace.emit ~uuid:5 Trace.Commit;
          Trace.stream_stop ();
          close_out oc;
          let s = read_file path in
          Alcotest.(check bool) "commit streamed" true (contains ~sub:"commit" s);
          Alcotest.(check bool) "fetch filtered" false (contains ~sub:"fetch" s);
          Alcotest.(check int) "ring got the same event" 1 (Trace.length ())))

(* regression: a run dying on the Sim_failure exit path must still leave
   a complete stream. The driver finalizes via stream_stop before
   exiting; the on_stop hook owns channel teardown and must run exactly
   once, after the format footer, however the sink is torn down. *)
let test_trace_stream_finalized_on_failure () =
  with_trace (fun () ->
      Trace.configure ();
      with_temp_file (fun path ->
          let oc = open_out path in
          let stops = ref 0 in
          Trace.stream_to
            ~on_stop:(fun () ->
              incr stops;
              close_out oc)
            Trace.Stream_chrome oc;
          Trace.set_cycle 7;
          Trace.emit ~uuid:1 Trace.Fetch;
          Trace.emit ~uuid:1 ~tag:"ooo" Trace.Commit;
          (* the simulated crash: an exception unwinds out of the drive
             loop and the driver finalizes the sink before exiting *)
          (try raise Exit with Exit -> Trace.stream_stop ());
          Alcotest.(check int) "on_stop ran once" 1 !stops;
          Alcotest.(check bool) "sink detached" false (Trace.streaming ());
          (* idempotent: a later stream_stop/disable must not re-run it *)
          Trace.stream_stop ();
          Trace.disable ();
          Alcotest.(check int) "on_stop not re-run" 1 !stops;
          let s = read_file path in
          Alcotest.(check bool) "chrome footer written" true
            (contains ~sub:"\"displayTimeUnit\"" s);
          let bal open_c close_c =
            String.fold_left
              (fun acc c ->
                if c = open_c then acc + 1
                else if c = close_c then acc - 1
                else acc)
              0 s
          in
          Alcotest.(check int) "braces balance" 0 (bal '{' '}');
          Alcotest.(check int) "brackets balance" 0 (bal '[' ']')))

(* ---------- the sampling trigger ---------- *)

let test_trace_sample_trigger () =
  with_trace (fun () ->
      Trace.configure ~trigger:Trace.On_sample ();
      Trace.set_cycle 1;
      Trace.emit Trace.Fetch;
      Alcotest.(check int) "closed before first interval" 0 (Trace.length ());
      (* a mispredict must NOT open an On_sample trigger *)
      Trace.emit Trace.Mispredict;
      Alcotest.(check int) "mispredict does not open it" 0 (Trace.length ());
      Trace.sample_boundary ();
      Trace.emit Trace.Fetch;
      Alcotest.(check int) "open after sample_boundary" 1 (Trace.length ());
      (* latches open across the fast-forward gap to the next interval *)
      Trace.set_cycle 1000;
      Trace.emit Trace.Commit;
      Alcotest.(check int) "stays open" 2 (Trace.length ()))

(* ---------- end to end on the OOO core ---------- *)

let reg = Regs.gpr_of_name

let build ?(base = 0x40_0000L) items =
  let a = Asm.create ~base () in
  List.iter
    (fun it ->
      match it with `I insn -> Asm.ins a insn | `L l -> Asm.label a l | `J f -> f a)
    items;
  Asm.assemble a

let i x = `I x

(* The mispredict-heavy LCG program from the OOO tests: data-dependent
   branches guarantee real mispredictions to reconstruct. *)
let lcg_program =
  [ i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 0L));
    i (Insn.Mov (W64.B8, Insn.Reg (reg "rbx"), Insn.Imm 12345L));
    i (Insn.Mov (W64.B8, Insn.Reg (reg "rcx"), Insn.Imm 200L));
    `L "loop";
    i (Insn.Movabs (reg "rdx", 1103515245L));
    i (Insn.Imul2 (W64.B8, reg "rbx", Insn.Reg (reg "rdx")));
    i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rbx"), Insn.Imm 12345L));
    i (Insn.Bittest (Insn.Bt, W64.B8, Insn.Reg (reg "rbx"), Insn.Bimm 4));
    `J (fun a -> Asm.jcc a Flags.AE "skip");
    i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rax"), Insn.Imm 1L));
    `L "skip";
    i (Insn.Unary (Insn.Dec, W64.B8, Insn.Reg (reg "rcx")));
    `J (fun a -> Asm.jcc a Flags.NE "loop");
    i Insn.Hlt ]

let test_trace_ooo_end_to_end () =
  with_trace (fun () ->
      Trace.configure ~capacity:(1 lsl 18) ();
      let img = build lcg_program in
      let m = Machine.create img in
      let core = Ooo.create Config.tiny m.Machine.env [| m.Machine.ctx |] in
      ignore (Ooo.run core ~max_cycles:2_000_000);
      let stats = m.Machine.env.Ptl_arch.Env.stats in
      Alcotest.(check int) "nothing lost" 0 (Trace.overwritten ());
      (* every committed x86 instruction appears exactly once *)
      Alcotest.(check int) "commit events match counter"
        (Stats.get stats "ooo.commit.insns")
        (Trace.commits ~tag:"ooo" ());
      (* the counter tree says mispredicts happened; the trace must show
         them, each with annulled wrong-path work and a fetch redirect *)
      let mispredicts =
        Trace.count (fun e -> e.Trace.ev_kind = Trace.Mispredict)
      in
      Alcotest.(check bool) "mispredicts captured" true (mispredicts > 0);
      (* Mispredict events fire at branch *resolution*; the counter counts
         at *commit*. A resolved-mispredicted branch can itself be annulled
         by an older mispredict and never commit, so the trace sees at
         least as many as the counter. *)
      Alcotest.(check bool) "trace sees every counted mispredict" true
        (mispredicts >= Stats.get stats "ooo.commit.mispredicts");
      Alcotest.(check bool) "annuls captured" true
        (Trace.count (fun e -> e.Trace.ev_kind = Trace.Annul) > 0);
      Alcotest.(check bool) "redirects captured" true
        (Trace.count (fun e -> e.Trace.ev_kind = Trace.Redirect) > 0);
      (* a mispredicted branch's wrong-path uop is annulled after the
         branch's own event, then the correct path is refetched *)
      let evs = Array.of_list (Trace.events ()) in
      let misp_idx = ref (-1) in
      Array.iteri
        (fun idx e ->
          if !misp_idx < 0 && e.Trace.ev_kind = Trace.Mispredict then
            misp_idx := idx)
        evs;
      let rest = Array.sub evs !misp_idx (Array.length evs - !misp_idx) in
      let find kind =
        Array.exists (fun e -> e.Trace.ev_kind = kind) rest
      in
      Alcotest.(check bool) "annul follows mispredict" true (find Trace.Annul);
      Alcotest.(check bool) "refetch follows mispredict" true (find Trace.Fetch);
      (* timeline renderer agrees: some lane shows the mispredict marker *)
      with_temp_file (fun path ->
          let oc = open_out path in
          Trace.render_timeline ~limit:100000 oc;
          close_out oc;
          let s = read_file path in
          Alcotest.(check bool) "timeline shows mispredict" true
            (contains ~sub:"mispredict" s);
          Alcotest.(check bool) "timeline shows annul" true
            (contains ~sub:"annul@" s)))

let test_trace_zero_cost_shape () =
  (* With tracing off, emit is never even called (call sites check
     [!Trace.on]); this guards the invariant that disable really stops
     capture even if someone calls emit directly. *)
  with_trace (fun () ->
      Trace.configure ~capacity:16 ();  (* fresh, empty ring *)
      Trace.disable ();
      let img = build lcg_program in
      let m = Machine.create img in
      let core = Ooo.create Config.tiny m.Machine.env [| m.Machine.ctx |] in
      ignore (Ooo.run core ~max_cycles:2_000_000);
      Alcotest.(check int) "no events captured" 0 (Trace.length ()))

let suite =
  [
    Alcotest.test_case "ring push_overwrite basics" `Quick test_ring_push_overwrite;
    Alcotest.test_case "ring overwrite wraparound" `Quick
      test_ring_overwrite_wraparound_many;
    Alcotest.test_case "ring overwrite mixed ops" `Quick test_ring_overwrite_mixed_ops;
    Alcotest.test_case "trace capture and wrap" `Quick test_trace_capture_and_wrap;
    Alcotest.test_case "trace class filter" `Quick test_trace_class_filter;
    Alcotest.test_case "trace parse classes" `Quick test_trace_parse_classes;
    Alcotest.test_case "trace rip filter" `Quick test_trace_rip_filter;
    Alcotest.test_case "trace cycle window" `Quick test_trace_cycle_window;
    Alcotest.test_case "trace mispredict trigger" `Quick test_trace_trigger_mispredict;
    Alcotest.test_case "trace disabled captures nothing" `Quick
      test_trace_disabled_emits_nothing;
    Alcotest.test_case "trace clear re-arms trigger" `Quick
      test_trace_clear_rearms_trigger;
    Alcotest.test_case "trace chrome sink" `Quick test_trace_chrome_sink;
    Alcotest.test_case "trace csv sink" `Quick test_trace_csv_sink;
    Alcotest.test_case "trace chrome smt tracks" `Quick
      test_trace_chrome_smt_tracks;
    Alcotest.test_case "trace stream csv" `Quick test_trace_stream_text_csv;
    Alcotest.test_case "trace stream chrome" `Quick test_trace_stream_chrome;
    Alcotest.test_case "trace stream tee + filters" `Quick
      test_trace_stream_tee_and_filters;
    Alcotest.test_case "trace stream finalized on failure" `Quick
      test_trace_stream_finalized_on_failure;
    Alcotest.test_case "trace sample trigger" `Quick test_trace_sample_trigger;
    Alcotest.test_case "trace ooo end to end" `Quick test_trace_ooo_end_to_end;
    Alcotest.test_case "trace off captures nothing end to end" `Quick
      test_trace_zero_cost_shape;
  ]
