(* Full-system minios tests: guest programs written with the Gasm DSL,
   booted through the real kernel image, exercising syscalls, the
   scheduler, pipes, sockets, the disk model and preemptive timeslicing —
   on both the functional core and the out-of-order core. *)

module Kernel = Ptl_kernel.Kernel
module Abi = Ptl_kernel.Abi
module Ramfs = Ptl_kernel.Ramfs
module G = Ptl_workloads.Gasm
module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Registry = Ptl_ooo.Registry
module Config = Ptl_ooo.Config
module Stats = Ptl_stats.Statstree
module Flags = Ptl_isa.Flags

(* Boot a kernel with the given programs and drive it on [core] until
   shutdown. Returns (kernel, env). *)
let boot_and_run ?(core = "seq") ?(max_cycles = 200_000_000) ?(files = [])
    ?(kconfig = Kernel.default_config) programs =
  let env = Env.create () in
  let ctx = Context.create ~vcpu_id:0 in
  let k = Kernel.create ~config:kconfig env ctx in
  List.iter (fun (name, contents) -> Kernel.add_file k ~name ~contents) files;
  List.iter (fun (name, image) -> Kernel.register_program k ~name image) programs;
  Kernel.boot k;
  let inst = Registry.build core Config.tiny env [| ctx |] in
  Kernel.run k inst.Registry.step inst.Registry.idle ~max_cycles;
  (k, env)

let test_file_write_read () =
  (* init: create "out", write a constant, read it back, verify, write a
     verdict file, exit *)
  let g = G.create () in
  let path = G.cstring g "out" in
  let buf = G.buffer g 64 in
  (* fill buffer with 'A'..'@'+64 *)
  G.la g G.rdi buf;
  G.loop_n g 64 (fun () ->
      G.mov g G.rax G.rcx;
      G.addi g G.rax 64;
      G.stb g ~base:G.rdi G.rax ();
      G.addi g G.rdi 1);
  (* creat + write *)
  G.la g G.rdi path;
  G.syscall g Abi.sys_creat;
  G.mov g G.rbx G.rax (* fd *);
  G.mov g G.rdi G.rbx;
  G.la g G.rsi buf;
  G.lii g G.rdx 64;
  G.syscall g Abi.sys_write;
  G.mov g G.rdi G.rbx;
  G.syscall g Abi.sys_close;
  (* reopen and read back into buf2 *)
  let buf2 = G.buffer g 64 in
  G.la g G.rdi path;
  G.lii g G.rsi 0;
  G.syscall g Abi.sys_open;
  G.mov g G.rbx G.rax;
  G.mov g G.rdi G.rbx;
  G.la g G.rsi buf2;
  G.lii g G.rdx 64;
  G.syscall g Abi.sys_read;
  (* compare: exit code = number of mismatches *)
  G.la g G.rsi buf;
  G.la g G.rdi buf2;
  G.xor g G.rbx G.rbx;
  G.loop_n g 64 (fun () ->
      G.ldb g G.rax ~base:G.rsi ();
      G.ldb g G.rdx ~base:G.rdi ();
      G.cmp g G.rax G.rdx;
      let ok = G.fresh g "ok" in
      G.je g ok;
      G.addi g G.rbx 1;
      G.label g ok;
      G.addi g G.rsi 1;
      G.addi g G.rdi 1);
  G.mov g G.rdi G.rbx;
  G.syscall g Abi.sys_exit;
  let k, _ = boot_and_run [ ("init", G.assemble g) ] in
  (* mismatches = exit code of init (pid 1) *)
  (match Kernel.find_proc k 1 with
  | Some p -> Alcotest.(check int) "no mismatches" 0 p.Kernel.exit_code
  | None -> Alcotest.fail "init vanished");
  Alcotest.(check bool) "file persisted" true (Ramfs.exists k.Kernel.fs "out")

let test_disk_page_in () =
  (* reading a pre-existing file must hit the disk path (latency + DMA) *)
  let contents = String.init 10_000 (fun i -> Char.chr (i * 7 land 0xFF)) in
  let g = G.create () in
  G.jmp g "start";
  G.emit_read_full_fn g;
  G.label g "start";
  let path = G.cstring g "data" in
  let buf = G.buffer g 4096 in
  G.la g G.rdi path;
  G.lii g G.rsi 0;
  G.syscall g Abi.sys_open;
  G.mov g G.rbx G.rax;
  (* read 8192 bytes; checksum them as exit code (mod 256) *)
  G.mov g G.rdi G.rbx;
  G.la g G.rsi buf;
  G.lii g G.rdx 4096;
  G.call g "read_full";
  G.mov g G.r12 G.rax;
  G.mov g G.rdi G.rbx;
  G.la g G.rsi buf;
  G.lii g G.rdx 4096;
  G.call g "read_full";
  G.add g G.r12 G.rax;
  G.mov g G.rdi G.r12;
  G.syscall g Abi.sys_exit;
  let k, env = boot_and_run ~files:[ ("data", contents) ] [ ("init", G.assemble g) ] in
  (match Kernel.find_proc k 1 with
  | Some p -> Alcotest.(check int) "read 8192 bytes" 8192 p.Kernel.exit_code
  | None -> Alcotest.fail "init vanished");
  let stats = env.Env.stats in
  Alcotest.(check bool) "disk reads happened" true (Stats.get stats "kernel.disk_reads" >= 2);
  Alcotest.(check bool) "idle time while waiting on disk" true
    (Stats.get stats "kernel.idle_skipped_cycles" > 0)

(* entry label helper: programs starting with library functions need a
   jump over them; simplest is emitting functions after an initial jmp *)
let with_main g emit_libs main =
  G.jmp g "main";
  emit_libs ();
  G.label g "main";
  main ()

let test_pipe_parent_child () =
  (* init: make a pipe, spawn "child" (inherits fds), write a message,
     child doubles each byte and exits with the sum *)
  let parent = G.create () in
  with_main parent
    (fun () -> ())
    (fun () ->
      let fds = G.buffer parent 8 in
      G.la parent G.rdi fds;
      G.syscall parent Abi.sys_pipe;
      (* spawn child with arg = read fd *)
      let child_name = G.cstring parent "child" in
      G.la parent G.rdi fds;
      G.ins parent
        (Ptl_isa.Insn.Movzx
           (Ptl_util.W64.B8, Ptl_util.W64.B4, G.r12, Ptl_isa.Insn.Mem (Ptl_isa.Insn.mem_bd G.rdi 0L)));
      G.ins parent
        (Ptl_isa.Insn.Movzx
           (Ptl_util.W64.B8, Ptl_util.W64.B4, G.r13, Ptl_isa.Insn.Mem (Ptl_isa.Insn.mem_bd G.rdi 4L)));
      G.la parent G.rdi child_name;
      (* pack both fds into the spawn argument: rfd | wfd << 8 *)
      G.mov parent G.rsi G.r13;
      G.shl parent G.rsi 8;
      G.ins parent
        (Ptl_isa.Insn.Alu
           (Ptl_isa.Insn.Or, Ptl_util.W64.B8, Ptl_isa.Insn.Reg G.rsi,
            Ptl_isa.Insn.RM (Ptl_isa.Insn.Reg G.r12)));
      G.syscall parent Abi.sys_spawn;
      G.mov parent G.rbx G.rax (* child pid *);
      (* write 16 bytes of value 3 *)
      let msg = G.buffer parent 16 in
      G.la parent G.rdi msg;
      G.lii parent G.rsi 3;
      G.lii parent G.rdx 16;
      G.loop_n parent 16 (fun () ->
          G.stb parent ~base:G.rdi G.rsi ();
          G.addi parent G.rdi 1);
      G.mov parent G.rdi G.r13;
      G.la parent G.rsi msg;
      G.lii parent G.rdx 16;
      G.syscall parent Abi.sys_write;
      (* close write end so the child sees EOF *)
      G.mov parent G.rdi G.r13;
      G.syscall parent Abi.sys_close;
      (* wait for the child; exit with its code *)
      G.mov parent G.rdi G.rbx;
      G.syscall parent Abi.sys_waitpid;
      G.mov parent G.rdi G.rax;
      G.syscall parent Abi.sys_exit);
  let child = G.create () in
  with_main child
    (fun () -> ())
    (fun () ->
      (* spawn arg: rfd | wfd<<8. close the inherited write end first so
         EOF propagates, then read until EOF and sum *)
      G.mov child G.rbx G.rdi;
      G.andi child G.rbx 0xFF;
      G.shr child G.rdi 8;
      G.andi child G.rdi 0xFF;
      G.syscall child Abi.sys_close;
      let buf = G.buffer child 32 in
      G.xor child G.r12 G.r12;
      let top = G.fresh child "rd" in
      let out = G.fresh child "done" in
      G.label child top;
      G.mov child G.rdi G.rbx;
      G.la child G.rsi buf;
      G.lii child G.rdx 32;
      G.syscall child Abi.sys_read;
      G.cmpi child G.rax 0;
      G.jcc child Flags.LE out;
      (* sum rax bytes *)
      G.la child G.rsi buf;
      G.mov child G.rcx G.rax;
      let sum = G.fresh child "sum" in
      G.label child sum;
      G.ldb child G.rdx ~base:G.rsi ();
      G.add child G.r12 G.rdx;
      G.addi child G.rsi 1;
      G.subi child G.rcx 1;
      G.jne child sum;
      G.jmp child top;
      G.label child out;
      G.mov child G.rdi G.r12;
      G.syscall child Abi.sys_exit);
  let k, _ =
    boot_and_run [ ("init", G.assemble parent); ("child", G.assemble child) ]
  in
  match Kernel.find_proc k 1 with
  | Some p -> Alcotest.(check int) "sum via pipe" 48 p.Kernel.exit_code
  | None -> Alcotest.fail "init vanished"

let test_sockets_loopback () =
  (* server listens on port 7; client connects, sends 100 bytes of 7s;
     server sums and exits with sum mod 251 *)
  let server = G.create () in
  with_main server
    (fun () -> G.emit_read_full_fn server)
    (fun () ->
      G.syscall server Abi.sys_socket;
      G.mov server G.rbx G.rax;
      G.mov server G.rdi G.rbx;
      G.lii server G.rsi 7;
      G.syscall server Abi.sys_listen;
      G.mov server G.rdi G.rbx;
      G.syscall server Abi.sys_accept;
      G.mov server G.r13 G.rax;
      let buf = G.buffer server 128 in
      G.mov server G.rdi G.r13;
      G.la server G.rsi buf;
      G.lii server G.rdx 100;
      G.call server "read_full";
      (* sum *)
      G.la server G.rsi buf;
      G.xor server G.r12 G.r12;
      G.loop_n server 100 (fun () ->
          G.ldb server G.rdx ~base:G.rsi ();
          G.add server G.r12 G.rdx;
          G.addi server G.rsi 1);
      G.mov server G.rdi G.r12;
      G.syscall server Abi.sys_exit);
  let client = G.create () in
  with_main client
    (fun () -> G.emit_write_full_fn client)
    (fun () ->
      (* give the server a moment to listen *)
      G.lii client G.rdi 50_000;
      G.syscall client Abi.sys_sleep;
      G.syscall client Abi.sys_socket;
      G.mov client G.rbx G.rax;
      let retry = G.fresh client "retry" in
      G.label client retry;
      G.mov client G.rdi G.rbx;
      G.lii client G.rsi 7;
      G.syscall client Abi.sys_connect;
      G.cmpi client G.rax 0;
      let ok = G.fresh client "ok" in
      G.je client ok;
      G.lii client G.rdi 10_000;
      G.syscall client Abi.sys_sleep;
      G.jmp client retry;
      G.label client ok;
      let buf = G.buffer client 128 in
      G.la client G.rdi buf;
      G.lii client G.rsi 7;
      G.lii client G.rdx 100;
      G.loop_n client 100 (fun () ->
          G.stb client ~base:G.rdi G.rsi ();
          G.addi client G.rdi 1);
      G.mov client G.rdi G.rbx;
      G.la client G.rsi buf;
      G.lii client G.rdx 100;
      G.call client "write_full";
      G.mov client G.rdi G.rbx;
      G.syscall client Abi.sys_close;
      G.sys_exit client 0);
  let init = G.create () in
  with_main init
    (fun () -> ())
    (fun () ->
      let sname = G.cstring init "server" in
      let cname = G.cstring init "client" in
      G.la init G.rdi sname;
      G.lii init G.rsi 0;
      G.syscall init Abi.sys_spawn;
      G.mov init G.r12 G.rax;
      G.la init G.rdi cname;
      G.lii init G.rsi 0;
      G.syscall init Abi.sys_spawn;
      G.mov init G.rdi G.r12;
      G.syscall init Abi.sys_waitpid;
      G.mov init G.rdi G.rax;
      G.syscall init Abi.sys_exit);
  let k, env =
    boot_and_run
      [ ("init", G.assemble init); ("server", G.assemble server); ("client", G.assemble client) ]
  in
  (match Kernel.find_proc k 1 with
  | Some p -> Alcotest.(check int) "sum over socket" 700 p.Kernel.exit_code
  | None -> Alcotest.fail "init vanished");
  let stats = env.Env.stats in
  Alcotest.(check bool) "packets flowed" true (Stats.get stats "kernel.packets" > 0)

let test_preemption () =
  (* two spinners must interleave under the timer; each increments a
     shared-file... simpler: both run a long loop; init waits for both.
     If preemption failed, the second would starve past max_cycles. *)
  let spinner = G.create () in
  with_main spinner
    (fun () -> ())
    (fun () ->
      G.lii spinner G.rbx 0;
      let top = G.fresh spinner "spin" in
      G.label spinner top;
      G.addi spinner G.rbx 1;
      G.lii spinner G.rax 2_000_00;
      G.cmp spinner G.rbx G.rax;
      G.jne spinner top;
      G.sys_exit spinner 7);
  let init = G.create () in
  with_main init
    (fun () -> ())
    (fun () ->
      let sname = G.cstring init "spin" in
      G.la init G.rdi sname;
      G.lii init G.rsi 0;
      G.syscall init Abi.sys_spawn;
      G.mov init G.r12 G.rax;
      G.la init G.rdi sname;
      G.syscall init Abi.sys_spawn;
      G.mov init G.r13 G.rax;
      G.mov init G.rdi G.r12;
      G.syscall init Abi.sys_waitpid;
      G.mov init G.rbx G.rax;
      G.mov init G.rdi G.r13;
      G.syscall init Abi.sys_waitpid;
      G.add init G.rbx G.rax;
      G.mov init G.rdi G.rbx;
      G.syscall init Abi.sys_exit);
  let kconfig = { Kernel.default_config with Kernel.timer_period = 50_000 } in
  let k, env =
    boot_and_run ~kconfig [ ("init", G.assemble init); ("spin", G.assemble spinner) ]
  in
  (match Kernel.find_proc k 1 with
  | Some p -> Alcotest.(check int) "both spinners finished" 14 p.Kernel.exit_code
  | None -> Alcotest.fail "init vanished");
  let stats = env.Env.stats in
  Alcotest.(check bool) "context switches" true (Stats.get stats "kernel.context_switches" > 4);
  Alcotest.(check bool) "timer ticked" true (Stats.get stats "kernel.timer_ticks" > 0)

let test_readdir_stat () =
  let files = [ ("dir/a", "xx"); ("dir/b", "yyyy"); ("other", "z") ] in
  let g = G.create () in
  with_main g
    (fun () -> ())
    (fun () ->
      let prefix = G.cstring g "dir/" in
      let buf = G.buffer g 64 in
      (* count entries and sum their sizes *)
      G.xor g G.r12 G.r12 (* index *);
      G.xor g G.r13 G.r13 (* size sum *);
      let top = G.fresh g "rd" in
      let out = G.fresh g "out" in
      G.label g top;
      G.la g G.rdi prefix;
      G.mov g G.rsi G.r12;
      G.la g G.rdx buf;
      G.syscall g Abi.sys_readdir;
      G.cmpi g G.rax 0;
      G.jcc g Flags.L out;
      G.la g G.rax buf;
      G.ld g G.rdx ~base:G.rax ();
      G.add g G.r13 G.rdx;
      G.addi g G.r12 1;
      G.jmp g top;
      G.label g out;
      (* exit code = entries * 100 + total size  (2 entries, 6 bytes) *)
      G.mov g G.rax G.r12;
      G.lii g G.rbx 100;
      G.imul g G.rax G.rbx;
      G.add g G.rax G.r13;
      G.mov g G.rdi G.rax;
      G.syscall g Abi.sys_exit);
  let k, _ = boot_and_run ~files [ ("init", G.assemble g) ] in
  match Kernel.find_proc k 1 with
  | Some p -> Alcotest.(check int) "2 entries, 6 bytes" 206 p.Kernel.exit_code
  | None -> Alcotest.fail "init vanished"

let test_kernel_on_ooo_core () =
  (* the same file test must pass on the cycle-accurate core *)
  let g = G.create () in
  with_main g
    (fun () -> ())
    (fun () ->
      let path = G.cstring g "f" in
      G.la g G.rdi path;
      G.syscall g Abi.sys_creat;
      G.mov g G.rbx G.rax;
      let buf = G.buffer g 32 in
      G.la g G.rdi buf;
      G.lii g G.rsi 9;
      G.loop_n g 32 (fun () ->
          G.stb g ~base:G.rdi G.rsi ();
          G.addi g G.rdi 1);
      G.mov g G.rdi G.rbx;
      G.la g G.rsi buf;
      G.lii g G.rdx 32;
      G.syscall g Abi.sys_write;
      G.mov g G.rdi G.rax;
      G.syscall g Abi.sys_exit);
  let k, env = boot_and_run ~core:"ooo" [ ("init", G.assemble g) ] in
  (match Kernel.find_proc k 1 with
  | Some p -> Alcotest.(check int) "wrote 32" 32 p.Kernel.exit_code
  | None -> Alcotest.fail "init vanished");
  let stats = env.Env.stats in
  Alcotest.(check bool) "kernel cycles counted" true
    (Stats.get stats "ooo.cycles_in_mode.kernel" > 0);
  Alcotest.(check bool) "user cycles counted" true
    (Stats.get stats "ooo.cycles_in_mode.user" > 0)

(* Demand paging (lib/vm behind Kernel.config.demand_paging): the user
   address space starts empty, every first touch is a real #PF delivered
   through the simulated IDT and resolved by the VM layer, and the
   program still computes the right answer. *)
let heap_sweep ~pages =
  let g = G.create () in
  (* stamp page i with i+1, then sum the stamps back; exit code = sum *)
  G.li g G.rsi Abi.user_heap_base;
  G.xor g G.rcx G.rcx;
  G.label g "stamp";
  G.mov g G.rax G.rcx;
  G.addi g G.rax 1;
  G.st g ~base:G.rsi G.rax ();
  G.addi g G.rsi 4096;
  G.addi g G.rcx 1;
  G.cmpi g G.rcx pages;
  G.jcc g Flags.B "stamp";
  G.li g G.rsi Abi.user_heap_base;
  G.xor g G.rbx G.rbx;
  G.xor g G.rcx G.rcx;
  G.label g "sum";
  G.ld g G.rax ~base:G.rsi ();
  G.add g G.rbx G.rax;
  G.addi g G.rsi 4096;
  G.addi g G.rcx 1;
  G.cmpi g G.rcx pages;
  G.jcc g Flags.B "sum";
  G.mov g G.rdi G.rbx;
  G.syscall g Abi.sys_exit;
  G.assemble g

let test_demand_paging () =
  let kconfig = { Kernel.default_config with Kernel.demand_paging = true } in
  let k, env = boot_and_run ~kconfig [ ("init", heap_sweep ~pages:24) ] in
  (match Kernel.find_proc k 1 with
  | Some p ->
    Alcotest.(check int) "sum over 24 demand-paged pages" (24 * 25 / 2)
      p.Kernel.exit_code
  | None -> Alcotest.fail "init vanished");
  let stats = env.Env.stats in
  (* at least the touched heap pages plus code and stack faulted in *)
  Alcotest.(check bool)
    (Printf.sprintf "faults flowed through the kernel entry path (%d)"
       (Stats.get stats "vm.faults"))
    true
    (Stats.get stats "vm.faults" >= 24);
  Alcotest.(check bool) "fills recorded" true (Stats.get stats "vm.fills" > 0)

let test_demand_paging_reclaim () =
  (* a 16-frame resident budget under a 48-page working set: the CLOCK
     must evict and swap back in, shootdown IPIs must reach the running
     VCPU, and the program must still be correct *)
  let kconfig =
    {
      Kernel.default_config with
      Kernel.demand_paging = true;
      vm_watermark = 16;
      vm_batch = 4;
    }
  in
  let k, env = boot_and_run ~kconfig [ ("init", heap_sweep ~pages:48) ] in
  (match Kernel.find_proc k 1 with
  | Some p ->
    Alcotest.(check int) "sum survives eviction and swap-in" (48 * 49 / 2)
      p.Kernel.exit_code
  | None -> Alcotest.fail "init vanished");
  let stats = env.Env.stats in
  Alcotest.(check bool) "evictions happened" true
    (Stats.get stats "vm.evictions" > 0);
  Alcotest.(check bool) "evicted pages swapped back in" true
    (Stats.get stats "vm.swap_ins" > 0);
  Alcotest.(check bool) "shootdown IPIs delivered" true
    (Stats.get stats "vm.shootdowns" > 0)

let test_demand_paging_segv () =
  (* a stray store outside every VMA must kill the process, not the
     kernel *)
  let g = G.create () in
  G.li g G.rsi 0x7000_0000L;
  G.lii g G.rax 1;
  G.st g ~base:G.rsi G.rax ();
  G.lii g G.rdi 0;
  G.syscall g Abi.sys_exit;
  let kconfig = { Kernel.default_config with Kernel.demand_paging = true } in
  let k, _ = boot_and_run ~kconfig [ ("init", G.assemble g) ] in
  match Kernel.find_proc k 1 with
  | Some p ->
    Alcotest.(check int) "killed with -1, not exit 0" (-1) p.Kernel.exit_code
  | None -> Alcotest.fail "init vanished"

let suite =
  [
    Alcotest.test_case "file write/read" `Quick test_file_write_read;
    Alcotest.test_case "disk page-in" `Quick test_disk_page_in;
    Alcotest.test_case "pipe parent/child" `Quick test_pipe_parent_child;
    Alcotest.test_case "sockets loopback" `Quick test_sockets_loopback;
    Alcotest.test_case "preemptive timeslicing" `Quick test_preemption;
    Alcotest.test_case "readdir/stat" `Quick test_readdir_stat;
    Alcotest.test_case "kernel on ooo core" `Quick test_kernel_on_ooo_core;
    Alcotest.test_case "demand paging end to end" `Quick test_demand_paging;
    Alcotest.test_case "demand paging reclaim + shootdown" `Quick
      test_demand_paging_reclaim;
    Alcotest.test_case "demand paging segv kills the process" `Quick
      test_demand_paging_segv;
  ]
