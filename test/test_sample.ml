(* Tests for the mixed-mode sampled simulation engine (lib/sample):
   flag validation, snapshot/aggregate arithmetic, silent functional
   warming, determinism, architectural equality with a pure sequential
   run, CPI accuracy and ptlcall-driven regions of interest. *)

module Sample = Ptl_sample.Sample
module S = Ptl_stats.Statstree
module Trace = Ptl_trace.Trace
module Uarch = Ptl_ooo.Uarch
module Config = Ptl_ooo.Config
module Hierarchy = Ptl_mem.Hierarchy
module Cache = Ptl_mem.Cache
module Tlb = Ptl_mem.Tlb
module Predictor = Ptl_bpred.Predictor
module Domain = Ptl_hyper.Domain
module Ptlcall = Ptl_hyper.Ptlcall
module Kernel = Ptl_kernel.Kernel
module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Machine = Ptl_arch.Machine
module Insn = Ptl_isa.Insn
module Ooo = Ptl_ooo.Ooo_core
module G = Ptl_workloads.Gasm

(* ---------- flag validation ---------- *)

let check ?(core = "ooo") ?ff ?period ?(warmup = 1_000) ?(measure = 2_000)
    ?(guard_degrade = false) ?(fuzz = false) () =
  Sample.check_flags ~core ~ff ~period ~warmup ~measure ~guard_degrade ~fuzz ()

let test_check_flags () =
  (match check ~period:100_000 () with
  | Ok s ->
    Alcotest.(check int) "derived ff" 97_000 s.Sample.ff_insns;
    Alcotest.(check int) "warmup" 1_000 s.Sample.warmup_insns;
    Alcotest.(check int) "measure" 2_000 s.Sample.measure_insns;
    Alcotest.(check int) "period" 100_000 (Sample.period s)
  | Error e -> Alcotest.failf "valid period rejected: %s" e);
  (match check ~ff:50_000 () with
  | Ok s -> Alcotest.(check int) "explicit ff" 50_000 s.Sample.ff_insns
  | Error e -> Alcotest.failf "valid ff rejected: %s" e);
  let rejects name r =
    Alcotest.(check bool) name true (Result.is_error r)
  in
  rejects "seq core" (check ~core:"seq" ~period:100_000 ());
  rejects "unknown core" (check ~core:"nonsense" ~period:100_000 ());
  rejects "fuzz" (check ~fuzz:true ~period:100_000 ());
  rejects "guard degrade" (check ~guard_degrade:true ~period:100_000 ());
  rejects "ff and period" (check ~ff:1 ~period:100_000 ());
  rejects "period too small" (check ~period:3_000 ());
  rejects "measure < 1" (check ~measure:0 ~period:100_000 ())

(* ---------- aggregate arithmetic ---------- *)

let mk_interval idx insns cycles =
  let snap = S.snapshot (S.create ()) ~cycle:0 in
  {
    Sample.iv_index = idx;
    iv_insns = insns;
    iv_cycles = cycles;
    iv_cpi = float_of_int cycles /. float_of_int insns;
    iv_before = snap;
    iv_after = snap;
  }

let test_aggregate () =
  (* two intervals with CPIs 1.5 and 2.5: aggregate 400/200 = 2.0,
     sample variance 0.5, CI = 1.96 * sqrt(0.5/2) = 0.98 *)
  let ivs = [ mk_interval 0 100 150; mk_interval 1 100 250 ] in
  let r = Sample.aggregate ~total_insns:1_000 ~total_cycles:12_345 ivs in
  Alcotest.(check int) "measured insns" 200 r.Sample.measured_insns;
  Alcotest.(check int) "measured cycles" 400 r.Sample.measured_cycles;
  Alcotest.(check (float 1e-9)) "aggregate cpi" 2.0 r.Sample.cpi;
  Alcotest.(check (float 1e-9)) "mean cpi" 2.0 r.Sample.cpi_mean;
  Alcotest.(check (float 1e-9)) "ci95" 0.98 r.Sample.cpi_ci95;
  Alcotest.(check (float 1e-6)) "estimated cycles" 2000.0 r.Sample.est_cycles;
  Alcotest.(check int) "totals preserved" 12_345 r.Sample.total_cycles;
  (* one interval: no variance estimate *)
  let r1 = Sample.aggregate ~total_insns:100 ~total_cycles:0 [ mk_interval 0 50 100 ] in
  Alcotest.(check (float 1e-9)) "single-interval ci" 0.0 r1.Sample.cpi_ci95;
  (* no intervals: everything degrades to zero, no division by zero *)
  let r0 = Sample.aggregate ~total_insns:100 ~total_cycles:0 [] in
  Alcotest.(check (float 1e-9)) "empty cpi" 0.0 r0.Sample.cpi;
  Alcotest.(check (float 1e-9)) "empty est" 0.0 r0.Sample.est_cycles

(* ---------- functional warming is silent ---------- *)

let test_warming_silent () =
  let st = S.create () in
  let u = Uarch.create Config.tiny st in
  Fun.protect ~finally:Trace.disable (fun () ->
      Trace.configure ();
      let h = u.Uarch.hierarchy in
      Hierarchy.warm_load h ~paddr:0x1_0000;
      Hierarchy.warm_store h ~paddr:0x2_0040;
      Hierarchy.warm_ifetch h ~paddr:0x40_0000;
      Tlb.insert u.Uarch.dtlb 0x7f00_0000L
        { Tlb.vpn = 0L; mfn = 42; writable = true; user = true; nx = false; huge = false };
      (match Tlb.lookup_quiet u.Uarch.dtlb 0x7f00_0123L with
      | Tlb.L1_hit e -> Alcotest.(check int) "tlb mfn" 42 e.Tlb.mfn
      | _ -> Alcotest.fail "expected dtlb hit after insert");
      Predictor.warm_cond u.Uarch.bpred ~rip:0x40_0100L ~taken:true;
      Predictor.warm_target u.Uarch.bpred ~rip:0x40_0100L ~target:0x40_0000L;
      Predictor.warm_ras u.Uarch.bpred ~call:true ~ret:false
        ~next_rip:0x40_0108L;
      (* the state really moved... *)
      Alcotest.(check bool) "l1d warmed" true
        (Cache.probe h.Hierarchy.l1d 0x1_0000);
      Alcotest.(check bool) "l1d warmed by store" true
        (Cache.probe h.Hierarchy.l1d 0x2_0040);
      Alcotest.(check bool) "l1i warmed" true
        (Cache.probe h.Hierarchy.l1i 0x40_0000);
      Alcotest.(check bool) "l2 warmed" true
        (Cache.probe h.Hierarchy.l2 0x1_0000);
      (* ...but not one statistic and not one trace event *)
      List.iter
        (fun p ->
          Alcotest.(check int) (Printf.sprintf "counter %s still 0" p) 0
            (S.get st p))
        (S.paths st);
      Alcotest.(check int) "no trace events" 0 (Trace.length ()))

(* ---------- end to end on a kernel workload ---------- *)

(* rbx := sum(1..n) + 3n, computed in a homogeneous 4-insn loop; the
   final value doubles as the architectural fingerprint of the run. *)
let loop_domain ?(core = "ooo") ~iters () =
  let g = G.create () in
  G.jmp g "main";
  G.label g "main";
  G.lii g G.rbx 0;
  G.lii g G.rcx iters;
  G.label g "top";
  G.add g G.rbx G.rcx;
  G.addi g G.rbx 3;
  G.dec g G.rcx;
  G.jne g "top";
  G.sys_marker g 7;
  G.sys_exit g 0;
  let env = Env.create () in
  let ctx = Context.create ~vcpu_id:0 in
  let k = Kernel.create env ctx in
  Kernel.register_program k ~name:"init" (G.assemble g);
  Kernel.boot k;
  (Domain.create ~kernel:k ~core ~config:Config.tiny env ctx, k, ctx)

let expected_sum iters =
  Int64.of_int ((iters * (iters + 1) / 2) + (3 * iters))

let small_schedule =
  { Sample.ff_insns = 20_000; warmup_insns = 2_000; measure_insns = 3_000 }

let test_sampled_run_deterministic () =
  let run () =
    let d, k, _ = loop_domain ~iters:40_000 () in
    let r = Sample.run ~schedule:small_schedule d in
    Alcotest.(check bool) "shut down" true (Kernel.is_shutdown k);
    ( List.map (fun iv -> (iv.Sample.iv_insns, iv.Sample.iv_cycles)) r.Sample.intervals,
      r.Sample.total_insns,
      r.Sample.cpi )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "interval-exact determinism" true (a = b);
  let ivs, _, _ = a in
  Alcotest.(check bool) "several intervals measured" true (List.length ivs >= 3)

let test_sampled_matches_seq_architecturally () =
  let iters = 30_000 in
  let d_seq, k_seq, ctx_seq = loop_domain ~core:"seq" ~iters () in
  Domain.submit d_seq "-core seq -run";
  ignore (Domain.run ~max_cycles:1_000_000_000 d_seq);
  Alcotest.(check bool) "seq shut down" true (Kernel.is_shutdown k_seq);
  let d, k, ctx = loop_domain ~iters () in
  let r = Sample.run ~schedule:small_schedule d in
  Alcotest.(check bool) "sampled shut down" true (Kernel.is_shutdown k);
  Alcotest.(check bool) "intervals measured" true (r.Sample.intervals <> []);
  Alcotest.(check int64) "same architectural result"
    (Context.gpr ctx_seq G.rbx) (Context.gpr ctx G.rbx);
  Alcotest.(check int64) "the right result" (expected_sum iters)
    (Context.gpr ctx G.rbx);
  Alcotest.(check int) "same instruction count" (Domain.insns d_seq)
    (Domain.insns d);
  Alcotest.(check (list int)) "same markers" [ 7 ]
    (List.map fst (Domain.markers d))

let test_sampled_cpi_accuracy () =
  let iters = 40_000 in
  (* ground truth: the same workload in full detail on the OOO core *)
  let d_full, _, _ = loop_domain ~iters () in
  Domain.submit d_full "-core ooo -run";
  ignore (Domain.run ~max_cycles:1_000_000_000 d_full);
  let full_cycles = float_of_int (Domain.cycles d_full) in
  let d, _, _ = loop_domain ~iters () in
  let r = Sample.run ~schedule:small_schedule d in
  let err = abs_float (r.Sample.est_cycles -. full_cycles) /. full_cycles in
  Alcotest.(check bool)
    (Printf.sprintf "estimate within 10%% (err %.2f%%)" (100.0 *. err))
    true (err < 0.10);
  (* the report prints without raising *)
  let null = open_out Filename.null in
  Fun.protect ~finally:(fun () -> close_out null) (fun () ->
      Sample.report null r)

(* ---------- region-of-interest sampling ---------- *)

let test_roi_ptlcall_parse () =
  (match Ptlcall.parse "-startsample" with
  | [ Ptlcall.Sample_start ] -> ()
  | _ -> Alcotest.fail "-startsample");
  match Ptlcall.parse "-stopsample" with
  | [ Ptlcall.Sample_stop ] -> ()
  | _ -> Alcotest.fail "-stopsample"

let test_roi_gated_sampling () =
  (* setup loop, then an ROI of roi_iters iterations, then a tail loop;
     with ~roi:true only the bracketed region may be measured *)
  let roi_iters = 15_000 in
  let g = G.create () in
  G.jmp g "main";
  G.label g "main";
  G.lii g G.rcx 5_000;
  G.label g "pre";
  G.dec g G.rcx;
  G.jne g "pre";
  G.ptlctl g "-startsample";
  G.lii g G.rbx 0;
  G.lii g G.rcx roi_iters;
  G.label g "top";
  G.add g G.rbx G.rcx;
  G.addi g G.rbx 3;
  G.dec g G.rcx;
  G.jne g "top";
  G.ptlctl g "-stopsample";
  G.lii g G.rcx 5_000;
  G.label g "post";
  G.dec g G.rcx;
  G.jne g "post";
  G.sys_exit g 0;
  let env = Env.create () in
  let ctx = Context.create ~vcpu_id:0 in
  let k = Kernel.create env ctx in
  Kernel.register_program k ~name:"init" (G.assemble g);
  Kernel.boot k;
  let d = Domain.create ~kernel:k ~core:"ooo" ~config:Config.tiny env ctx in
  let schedule =
    { Sample.ff_insns = 5_000; warmup_insns = 1_000; measure_insns = 2_000 }
  in
  let r = Sample.run ~roi:true ~schedule d in
  Alcotest.(check bool) "shut down" true (Kernel.is_shutdown k);
  Alcotest.(check bool) "measured inside the region" true
    (r.Sample.intervals <> []);
  (* the region is ~4 insns/iter; everything measured must fit in it *)
  Alcotest.(check bool)
    (Printf.sprintf "measurement confined to ROI (%d insns)"
       r.Sample.measured_insns)
    true
    (r.Sample.measured_insns <= (4 * roi_iters) + 8)

(* ---------- interval placement ---------- *)

let test_placement_parse () =
  let ok spec expect =
    match Sample.parse_placement spec with
    | Ok p ->
      Alcotest.(check string) ("parse " ^ spec) expect
        (Sample.placement_to_string p)
    | Error e -> Alcotest.failf "parse %s rejected: %s" spec e
  in
  ok "" "fixed";
  ok "fixed" "fixed";
  ok "stratified" "stratified";
  ok "rand:123" "rand:123";
  ok "rand:-7" "rand:-7";
  let rejects spec =
    Alcotest.(check bool) ("reject " ^ spec) true
      (Result.is_error (Sample.parse_placement spec))
  in
  rejects "rand";
  rejects "rand:";
  rejects "rand:xyz";
  rejects "bogus"

let test_placement_offsets () =
  let schedule =
    { Sample.ff_insns = 10_000; warmup_insns = 500; measure_insns = 700 }
  in
  let n = 64 in
  let bounds name offs =
    Array.iter
      (fun o ->
        Alcotest.(check bool)
          (Printf.sprintf "%s offset %d in [0, ff]" name o)
          true
          (0 <= o && o <= schedule.Sample.ff_insns))
      offs
  in
  let fixed = Sample.offsets Sample.Fixed schedule n in
  Array.iter (fun o -> Alcotest.(check int) "fixed = ff" 10_000 o) fixed;
  let seed = Test_seed.seed + 5 in
  let r1 = Sample.offsets (Sample.Rand_offset seed) schedule n in
  let r2 = Sample.offsets (Sample.Rand_offset seed) schedule n in
  bounds "rand" r1;
  Alcotest.(check bool) "rand per-seed deterministic" true (r1 = r2);
  Alcotest.(check bool) "rand differs across seeds" true
    (r1 <> Sample.offsets (Sample.Rand_offset (seed + 1)) schedule n);
  Alcotest.(check bool) "rand offsets actually vary" true
    (Array.exists (fun o -> o <> r1.(0)) r1);
  let s = Sample.offsets Sample.Stratified schedule n in
  bounds "stratified" s;
  for i = 0 to Sample.strata - 2 do
    Alcotest.(check bool) "strata sweep ascends" true (s.(i) < s.(i + 1))
  done;
  Alcotest.(check int) "strata cycle repeats" s.(0) s.(Sample.strata);
  (* windows never overlap: each period's window fits before the next
     period starts, for every placement *)
  let no_overlap name offs =
    let window =
      schedule.Sample.warmup_insns + schedule.Sample.measure_insns
    in
    let period = Sample.period schedule in
    let last_end = ref 0 in
    Array.iteri
      (fun i o ->
        let start = (i * period) + o in
        Alcotest.(check bool)
          (Printf.sprintf "%s window %d disjoint from previous" name i)
          true
          (start >= !last_end);
        last_end := start + window)
      offs
  in
  no_overlap "fixed" fixed;
  no_overlap "rand" r1;
  no_overlap "stratified" s

(* ---------- checkpoint-parallel sampling ---------- *)

let test_check_jobs () =
  let ok name r =
    Alcotest.(check bool) name true (Result.is_ok r)
  and rejects name r =
    Alcotest.(check bool) name true (Result.is_error r)
  in
  ok "bare, no trace" (Sample.check_jobs ~jobs:4 ~kernel:false ~tracing:false ());
  ok "1 job tolerates tracing"
    (Sample.check_jobs ~jobs:1 ~kernel:false ~tracing:true ());
  rejects "jobs < 1" (Sample.check_jobs ~jobs:0 ~kernel:false ~tracing:false ());
  rejects "kernel domain"
    (Sample.check_jobs ~jobs:2 ~kernel:true ~tracing:false ());
  rejects "tracing with jobs > 1"
    (Sample.check_jobs ~jobs:2 ~kernel:false ~tracing:true ());
  (* and the engine itself refuses kernel-hosted domains *)
  let d, _, _ = loop_domain ~iters:100 () in
  Alcotest.check_raises "run_parallel rejects kernel domains"
    (Invalid_argument
       "Sample.run_parallel: kernel-hosted domains are not checkpointable")
    (fun () -> ignore (Sample.run_parallel ~schedule:small_schedule d))

let render_report r =
  let path = Filename.temp_file "optlsim_sample" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Sample.report oc r;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

(* serial ≡ parallel: 1 worker vs 4 workers over the same checkpoints
   must produce byte-identical per-interval snapshot pairs, aggregates
   and rendered reports, regardless of scheduling and completion order *)
let test_parallel_equivalence () =
  let schedule =
    { Sample.ff_insns = 6_000; warmup_insns = 800; measure_insns = 1_200 }
  in
  let placement = Sample.Rand_offset (Test_seed.seed + 11) in
  let run jobs =
    let d, _ = Test_checkpoint.bare_loop ~iters:20_000 () in
    Sample.run_parallel ~placement ~jobs ~schedule d
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check bool) "several intervals" true
    (List.length a.Sample.intervals >= 5);
  let strip r =
    List.map
      (fun iv ->
        ( iv.Sample.iv_index,
          iv.Sample.iv_insns,
          iv.Sample.iv_cycles,
          iv.Sample.iv_before,
          iv.Sample.iv_after ))
      r.Sample.intervals
  in
  (* snapshot records contain the full counter arrays and paths, so this
     is a byte-identical comparison of every per-interval statistic *)
  Alcotest.(check bool) "identical per-interval snapshot pairs" true
    (strip a = strip b);
  Alcotest.(check bool) "identical aggregates" true
    (a.Sample.cpi = b.Sample.cpi
    && a.Sample.cpi_mean = b.Sample.cpi_mean
    && a.Sample.cpi_ci95 = b.Sample.cpi_ci95
    && a.Sample.est_cycles = b.Sample.est_cycles
    && a.Sample.total_insns = b.Sample.total_insns
    && a.Sample.total_cycles = b.Sample.total_cycles);
  Alcotest.(check string) "identical rendered reports" (render_report a)
    (render_report b)

(* random offsets beat the fixed schedule on a workload whose phase
   length divides the sampling period (SMARTS' aliasing caveat): the
   fixed window always lands on the same phase, the random ones mix *)
let test_placement_antialias () =
  let phase_a = 100 and phase_b = 100 in
  let iter_len = phase_a + phase_b + 2 (* dec + jne *) in
  let iters = 120 in
  let build () =
    let g = G.create () in
    G.lii g G.rbx 3;
    G.lii g G.rcx iters;
    G.label g "top";
    (* phase A: independent single-cycle adds (low CPI) *)
    for _ = 1 to phase_a do
      G.addi g G.rax 1
    done;
    (* phase B: dependent multiply chain (latency-bound, high CPI) *)
    for _ = 1 to phase_b do
      G.imul g G.rbx G.rbx
    done;
    G.dec g G.rcx;
    G.jne g "top";
    G.ins g Insn.Hlt;
    G.assemble g
  in
  (* ground truth: the whole workload in full detail on the OOO core *)
  let truth =
    let m = Machine.create (build ()) in
    let core = Ooo.create Config.tiny m.Machine.env [| m.Machine.ctx |] in
    let cycles = Ooo.run core ~max_cycles:10_000_000 in
    float_of_int cycles /. float_of_int (Ooo.insns core)
  in
  let sampled placement =
    let m = Machine.create (build ()) in
    let d =
      Domain.create ~core:"ooo" ~config:Config.tiny m.Machine.env
        m.Machine.ctx
    in
    let schedule =
      (* period = 4 aliasing workload iterations *)
      {
        Sample.ff_insns = (4 * iter_len) - 70;
        warmup_insns = 30;
        measure_insns = 40;
      }
    in
    let r = Sample.run_parallel ~placement ~jobs:1 ~schedule d in
    Alcotest.(check bool) "intervals measured" true (r.Sample.intervals <> []);
    r.Sample.cpi
  in
  let err cpi = abs_float (cpi -. truth) /. truth in
  let e_fixed = err (sampled Sample.Fixed) in
  let e_rand = err (sampled (Sample.Rand_offset (Test_seed.seed + 23))) in
  Alcotest.(check bool)
    (Printf.sprintf
       "random offsets reduce aliasing error (fixed %.1f%%, rand %.1f%%)"
       (100.0 *. e_fixed) (100.0 *. e_rand))
    true (e_rand < e_fixed)

(* delta capture accounting: the master pass spends far fewer bytes on
   delta checkpoints than full per-window images would cost, and the
   deltas replay deterministically *)
let test_capture_delta_footprint () =
  let schedule =
    { Sample.ff_insns = 6_000; warmup_insns = 800; measure_insns = 1_200 }
  in
  let d, _ = Test_checkpoint.bare_loop ~iters:20_000 () in
  let cr = Sample.run_capture ~schedule d in
  Alcotest.(check bool) "several intervals" true
    (Array.length cr.Sample.cr_deltas >= 5);
  Alcotest.(check bool)
    (Printf.sprintf "delta bytes (%d) well under full bytes (%d)"
       cr.Sample.cr_delta_bytes cr.Sample.cr_full_bytes)
    true
    (cr.Sample.cr_delta_bytes * 2 < cr.Sample.cr_full_bytes);
  (* replaying the same delta twice is bit-identical (pure function of
     checkpoint + schedule) *)
  let replay () =
    Sample.replay_delta ~core_name:"ooo" ~config:Config.tiny ~schedule
      ~index:2 ~base:cr.Sample.cr_base cr.Sample.cr_deltas.(2)
  in
  let a = replay () and b = replay () in
  Alcotest.(check bool) "interval measured" true (a <> None);
  Alcotest.(check bool) "delta replay deterministic" true (a = b)

let suite =
  [
    Alcotest.test_case "flag validation" `Quick test_check_flags;
    Alcotest.test_case "aggregate arithmetic" `Quick test_aggregate;
    Alcotest.test_case "warming is silent" `Quick test_warming_silent;
    Alcotest.test_case "sampled run deterministic" `Quick
      test_sampled_run_deterministic;
    Alcotest.test_case "architectural equality vs seq" `Quick
      test_sampled_matches_seq_architecturally;
    Alcotest.test_case "cpi accuracy" `Quick test_sampled_cpi_accuracy;
    Alcotest.test_case "roi ptlcall parse" `Quick test_roi_ptlcall_parse;
    Alcotest.test_case "roi-gated sampling" `Quick test_roi_gated_sampling;
    Alcotest.test_case "placement parse" `Quick test_placement_parse;
    Alcotest.test_case "placement offsets" `Quick test_placement_offsets;
    Alcotest.test_case "jobs validation" `Quick test_check_jobs;
    Alcotest.test_case "serial = parallel (1 vs 4 jobs)" `Quick
      test_parallel_equivalence;
    Alcotest.test_case "delta capture footprint" `Quick
      test_capture_delta_footprint;
    Alcotest.test_case "random offsets beat aliasing" `Quick
      test_placement_antialias;
  ]
