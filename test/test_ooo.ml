(* Out-of-order core tests: the same guest programs as the seqcore tests
   must produce identical architectural results (the integrated-simulator
   guarantee), plus OOO-specific machinery: misprediction recovery,
   store-to-load forwarding, replay, precise faults, SMC flushes, and the
   seqcore-vs-ooo random-program equivalence property that implements the
   paper's co-simulation validation idea (§2.3). *)

open Ptl_util
open Ptl_isa
module Machine = Ptl_arch.Machine
module Context = Ptl_arch.Context
module Seqcore = Ptl_arch.Seqcore
module Ooo = Ptl_ooo.Ooo_core
module Config = Ptl_ooo.Config
module Stats = Ptl_stats.Statstree

let reg = Regs.gpr_of_name

let build ?(base = 0x40_0000L) items =
  let a = Asm.create ~base () in
  List.iter
    (fun it ->
      match it with `I insn -> Asm.ins a insn | `L l -> Asm.label a l | `J f -> f a)
    items;
  Asm.assemble a

let i x = `I x
let halt = [ i Insn.Hlt ]

(* Run a program to completion on the OOO core (hlt ends it). *)
let run_ooo ?(config = Config.tiny) ?(max_cycles = 2_000_000) items =
  let img = build items in
  let m = Machine.create img in
  let core = Ooo.create config m.Machine.env [| m.Machine.ctx |] in
  ignore (Ooo.run core ~max_cycles);
  (m, core)

let test_ooo_mov_add () =
  let m, core =
    run_ooo
      ([ i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 40L));
         i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rax"), Insn.Imm 2L)) ]
      @ halt)
  in
  Alcotest.(check int64) "rax" 42L (Machine.gpr m (reg "rax"));
  Alcotest.(check bool) "cycles counted" true (Ooo.cycles core > 0);
  Alcotest.(check int) "3 insns" 3 (Ooo.insns core)

let test_ooo_loop () =
  let items =
    [ i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 0L));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rcx"), Insn.Imm 100L));
      `L "loop";
      i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rax"), Insn.RM (Insn.Reg (reg "rcx"))));
      i (Insn.Unary (Insn.Dec, W64.B8, Insn.Reg (reg "rcx")));
      `J (fun a -> Asm.jcc a Flags.NE "loop") ]
    @ halt
  in
  let m, core = run_ooo items in
  Alcotest.(check int64) "sum" 5050L (Machine.gpr m (reg "rax"));
  (* the backward branch should be well predicted after warmup: over 100
     iterations, far fewer than 50 mispredicts *)
  let stats = m.Machine.env.Ptl_arch.Env.stats in
  ignore core;
  let mp = Stats.get stats "ooo.commit.mispredicts" in
  Alcotest.(check bool) "predictor learns" true (mp < 20)

let test_ooo_store_load_forwarding () =
  let hb = Machine.heap_base in
  let items =
    [ i (Insn.Movabs (reg "rsi", hb));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 1234L));
      i (Insn.Mov (W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 0L), Insn.RM (Insn.Reg (reg "rax"))));
      (* immediately dependent load: must forward from the store queue *)
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rbx"), Insn.RM (Insn.Mem (Insn.mem_bd (reg "rsi") 0L))));
      i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rbx"), Insn.Imm 1L)) ]
    @ halt
  in
  let m, _ = run_ooo items in
  Alcotest.(check int64) "forwarded" 1235L (Machine.gpr m (reg "rbx"))

let test_ooo_mispredict_recovery () =
  (* data-dependent branches on a pseudo-random pattern: forces real
     mispredictions; architectural result must still be exact *)
  let items =
    [ i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 0L));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rbx"), Insn.Imm 12345L));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rcx"), Insn.Imm 200L));
      `L "loop";
      (* rbx = rbx * 1103515245 + 12345 (lcg), branch on bit 4 *)
      i (Insn.Movabs (reg "rdx", 1103515245L));
      i (Insn.Imul2 (W64.B8, reg "rbx", Insn.Reg (reg "rdx")));
      i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rbx"), Insn.Imm 12345L));
      i (Insn.Bittest (Insn.Bt, W64.B8, Insn.Reg (reg "rbx"), Insn.Bimm 4));
      `J (fun a -> Asm.jcc a Flags.AE "skip");
      i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rax"), Insn.Imm 1L));
      `L "skip";
      i (Insn.Unary (Insn.Dec, W64.B8, Insn.Reg (reg "rcx")));
      `J (fun a -> Asm.jcc a Flags.NE "loop") ]
    @ halt
  in
  (* compute the expected count with the functional core *)
  let img = build items in
  let mseq = Machine.create img in
  ignore (Machine.run_seq mseq);
  let expected = Machine.gpr mseq (reg "rax") in
  let m, _ = run_ooo items in
  Alcotest.(check int64) "same count" expected (Machine.gpr m (reg "rax"));
  let stats = m.Machine.env.Ptl_arch.Env.stats in
  Alcotest.(check bool) "some mispredicts happened" true
    (Stats.get stats "ooo.commit.mispredicts" > 0)

let test_ooo_rep_movs () =
  let hb = Machine.heap_base in
  let items =
    [ i (Insn.Movabs (reg "rsi", hb));
      i (Insn.Movabs (reg "rdi", Int64.add hb 512L));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rcx"), Insn.Imm 100L));
      i (Insn.Movs (W64.B1, true)) ]
    @ halt
  in
  let img = build items in
  let m = Machine.create img in
  for k = 0 to 99 do
    Machine.write_mem m ~vaddr:(Int64.add hb (Int64.of_int k)) ~size:W64.B1
      ~value:(Int64.of_int (k land 0xFF))
  done;
  let core = Ooo.create Config.tiny m.Machine.env [| m.Machine.ctx |] in
  ignore (Ooo.run core ~max_cycles:1_000_000);
  for k = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "byte %d" k)
      (Int64.of_int (k land 0xFF))
      (Machine.read_mem m ~vaddr:(Int64.add hb (Int64.of_int (512 + k))) ~size:W64.B1)
  done

let test_ooo_page_fault_precise () =
  (* same faulting program as the seqcore test; the OOO core must deliver
     the same #PF precisely *)
  let a = Asm.create ~base:0x40_0000L () in
  Asm.lea_label a (reg "rax") "idt";
  Asm.ins a (Insn.MovToCr (6, reg "rax"));
  Asm.ins a (Insn.Movabs (reg "rbx", 0x7FFF_0000L));
  Asm.ins a (Insn.MovToCr (1, reg "rbx"));
  (* poison rdx; it must NOT survive into the handler path check *)
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg (reg "rdx"), Insn.Imm 7L));
  Asm.ins a (Insn.Movabs (reg "rsi", 0x9999_0000L));
  Asm.ins a (Insn.Mov (W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 0L), Insn.Imm 1L));
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg (reg "rdx"), Insn.Imm 111L));
  Asm.ins a Insn.Hlt;
  Asm.label a "pf_handler";
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg (reg "rdx"), Insn.Imm 222L));
  Asm.ins a (Insn.MovFromCr (2, reg "rdi"));
  Asm.ins a Insn.Hlt;
  Asm.align a 8;
  Asm.label a "idt";
  for _ = 0 to 13 do
    Asm.quad a 0L
  done;
  Asm.quad_label a "pf_handler";
  let img = Asm.assemble a in
  let m = Machine.create img in
  let core = Ooo.create Config.tiny m.Machine.env [| m.Machine.ctx |] in
  ignore (Ooo.run core ~max_cycles:1_000_000);
  Alcotest.(check int64) "handler ran" 222L (Machine.gpr m (reg "rdx"));
  Alcotest.(check int64) "cr2" 0x9999_0000L (Machine.gpr m (reg "rdi"))

let test_ooo_smc_flush () =
  let a = Asm.create ~base:0x40_0000L () in
  Asm.lea_label a (reg "rsi") "target";
  Asm.call a "target";
  Asm.ins a (Insn.Mov (W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 2L), Insn.Imm 2L));
  Asm.call a "target";
  Asm.ins a Insn.Hlt;
  Asm.label a "target";
  Asm.ins a (Insn.Movabs (reg "rax", 1L));
  Asm.ins a Insn.Ret;
  let img = Asm.assemble a in
  let m = Machine.create img in
  let core = Ooo.create Config.tiny m.Machine.env [| m.Machine.ctx |] in
  ignore (Ooo.run core ~max_cycles:1_000_000);
  Alcotest.(check int64) "patched code ran" 2L (Machine.gpr m (reg "rax"));
  let stats = m.Machine.env.Ptl_arch.Env.stats in
  Alcotest.(check bool) "smc flush counted" true
    (Stats.get stats "ooo.commit.smc_flushes" > 0)

let test_ooo_irq_delivery () =
  let a = Asm.create ~base:0x40_0000L () in
  Asm.lea_label a (reg "rax") "idt";
  Asm.ins a (Insn.MovToCr (6, reg "rax"));
  Asm.ins a (Insn.Movabs (reg "rbx", 0x7FFF_0000L));
  Asm.ins a (Insn.MovToCr (1, reg "rbx"));
  Asm.ins a Insn.Sti;
  Asm.label a "idle";
  Asm.ins a Insn.Hlt;
  Asm.jmp a "idle";
  Asm.label a "timer";
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rdx"), Insn.Imm 1L));
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rsp"), Insn.Imm 8L));
  Asm.ins a Insn.Iret;
  Asm.align a 8;
  Asm.label a "idt";
  for _ = 0 to 31 do
    Asm.quad a 0L
  done;
  Asm.quad_label a "timer";
  let img = Asm.assemble a in
  let m = Machine.create img in
  let core = Ooo.create Config.tiny m.Machine.env [| m.Machine.ctx |] in
  ignore (Ooo.run core ~max_cycles:100_000);
  Alcotest.(check bool) "halted" false m.Machine.ctx.Context.running;
  Context.raise_irq m.Machine.ctx 32;
  ignore (Ooo.run core ~max_cycles:100_000);
  Alcotest.(check int64) "handler ran" 1L (Machine.gpr m (reg "rdx"))

let test_ooo_k8_config_runs () =
  (* the full K8 configuration executes a nontrivial program correctly *)
  let items =
    [ i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 0L));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rcx"), Insn.Imm 1000L));
      `L "loop";
      i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rax"), Insn.RM (Insn.Reg (reg "rcx"))));
      i (Insn.Unary (Insn.Dec, W64.B8, Insn.Reg (reg "rcx")));
      `J (fun a -> Asm.jcc a Flags.NE "loop") ]
    @ halt
  in
  let m, core = run_ooo ~config:Config.k8_ptlsim items in
  Alcotest.(check int64) "sum" 500500L (Machine.gpr m (reg "rax"));
  (* superscalar: a 3-wide K8 should beat 1 IPC-equivalent on this loop? the
     dec->jcc chain limits it; just sanity-check CPI is reasonable *)
  let cpi = float_of_int (Ooo.cycles core) /. float_of_int (Ooo.insns core) in
  Alcotest.(check bool) "cpi sane" true (cpi < 3.0 && cpi > 0.2)

(* --- the co-simulation property: random straight-line programs give the
   same architectural state on seqcore and the OOO core --- *)

let gen_program =
  let open QCheck.Gen in
  let gpr = int_bound 15 in
  let sizes = oneofl [ W64.B1; W64.B2; W64.B4; W64.B8 ] in
  let imm = oneofl [ 0L; 1L; -1L; 42L; 0x7FL; 0x1234L; -77L ] in
  (* memory ops confined to the heap through r15, kept valid *)
  let heap_mem =
    let* d = int_bound 63 in
    return (Insn.mem_bd 15 (Int64.of_int (d * 8)))
  in
  let alu_ops = [ Insn.Add; Insn.Or; Insn.Adc; Insn.Sbb; Insn.And; Insn.Sub; Insn.Xor; Insn.Cmp ] in
  let insn =
    frequency
      [ (6, let* op = oneofl alu_ops in
            let* s = sizes in
            let* d = gpr in
            let* src = oneof [ map (fun r -> Insn.RM (Insn.Reg r)) gpr; map (fun v -> Insn.Imm v) imm ] in
            return (Insn.Alu (op, s, Insn.Reg d, src)));
        (3, let* s = sizes in
            let* d = gpr in
            let* v = imm in
            return (Insn.Mov (s, Insn.Reg d, Insn.Imm v)));
        (2, let* op = oneofl alu_ops in
            let* s = sizes in
            let* m = heap_mem in
            let* v = imm in
            return (Insn.Alu (op, s, Insn.Mem m, Insn.Imm v)));
        (2, let* s = sizes in
            let* d = gpr in
            let* m = heap_mem in
            return (Insn.Mov (s, Insn.Reg d, Insn.RM (Insn.Mem m))));
        (2, let* s = sizes in
            let* m = heap_mem in
            let* r = gpr in
            return (Insn.Mov (s, Insn.Mem m, Insn.RM (Insn.Reg r))));
        (2, let* op = oneofl [ Insn.Shl; Insn.Shr; Insn.Sar; Insn.Rol; Insn.Ror ] in
            let* s = sizes in
            let* d = gpr in
            let* c = int_bound 66 in
            return (Insn.Shift (op, s, Insn.Reg d, Insn.ImmC c)));
        (1, let* c = int_bound 15 in
            let* d = gpr in
            return (Insn.Setcc (Flags.cond_of_code c, Insn.Reg d)));
        (1, let* c = int_bound 15 in
            let* s = oneofl [ W64.B2; W64.B4; W64.B8 ] in
            let* d = gpr in
            let* r = gpr in
            return (Insn.Cmovcc (Flags.cond_of_code c, s, d, Insn.Reg r)));
        (1, let* d = gpr in
            let* s = gpr in
            return (Insn.Imul2 (W64.B8, d, Insn.Reg s)));
        (1, let* m = heap_mem in
            let* r = gpr in
            return (Insn.Locked (Insn.Xadd (W64.B8, Insn.Mem m, r))));
        (1, let* op = oneofl [ Insn.Bts; Insn.Btr; Insn.Btc ] in
            let* m = heap_mem in
            let* b = int_bound 63 in
            return (Insn.Bittest (op, W64.B8, Insn.Mem m, Insn.Bimm b))) ]
  in
  list_size (int_range 5 60) insn

(* r15, rsp must stay valid: the generator never writes them. Filter. *)
let writes_pinned_reg insn =
  let pinned r = r = 15 || r = Regs.rsp in
  match insn with
  | Insn.Alu (op, _, Insn.Reg d, _) -> op <> Insn.Cmp && pinned d
  | Insn.Mov (_, Insn.Reg d, _)
  | Insn.Shift (_, _, Insn.Reg d, _)
  | Insn.Setcc (_, Insn.Reg d)
  | Insn.Cmovcc (_, _, d, _)
  | Insn.Imul2 (_, d, _) -> pinned d
  | Insn.Locked (Insn.Xadd (_, _, r)) -> pinned r
  | _ -> false

let run_both insns =
  let program =
    [ `I (Insn.Movabs (15, Machine.heap_base)) ]
    @ List.map (fun x -> `I x) insns
    @ [ `I Insn.Hlt ]
  in
  let img = build program in
  let m1 = Machine.create img in
  ignore (Machine.run_seq m1);
  let m2 = Machine.create img in
  let core = Ooo.create Config.tiny m2.Machine.env [| m2.Machine.ctx |] in
  ignore (Ooo.run core ~max_cycles:3_000_000);
  (m1, m2)

let prop_cosim_equivalence =
  QCheck.Test.make ~name:"seqcore and ooo-core agree on random programs" ~count:60
    (QCheck.make gen_program)
    (fun insns ->
      let insns = List.filter (fun x -> not (writes_pinned_reg x)) insns in
      QCheck.assume (insns <> []);
      let m1, m2 = run_both insns in
      let diffs = Context.diff m1.Machine.ctx m2.Machine.ctx in
      if diffs <> [] then
        QCheck.Test.fail_reportf "state diverged:\n%s" (String.concat "\n" diffs)
      else true)

let suite =
  [
    Alcotest.test_case "ooo mov/add" `Quick test_ooo_mov_add;
    Alcotest.test_case "ooo loop + predictor" `Quick test_ooo_loop;
    Alcotest.test_case "ooo store-load forwarding" `Quick test_ooo_store_load_forwarding;
    Alcotest.test_case "ooo mispredict recovery" `Quick test_ooo_mispredict_recovery;
    Alcotest.test_case "ooo rep movs" `Quick test_ooo_rep_movs;
    Alcotest.test_case "ooo precise page fault" `Quick test_ooo_page_fault_precise;
    Alcotest.test_case "ooo SMC flush" `Quick test_ooo_smc_flush;
    Alcotest.test_case "ooo irq delivery" `Quick test_ooo_irq_delivery;
    Alcotest.test_case "ooo k8 config" `Quick test_ooo_k8_config_runs;
    Test_seed.to_alcotest prop_cosim_equivalence;
  ]
