(* Memory subsystem tests: physical frames, page-table walking with A/D
   bits, TLBs (including the K8 two-level + PDE-cache configuration),
   set-associative caches, hierarchy latencies with MSHR merging, and
   MOESI coherence invariants. *)

open Ptl_mem
module Stats = Ptl_stats.Statstree

let test_phys_rw () =
  let m = Phys_mem.create () in
  Phys_mem.write64 m 0x1000 0x1122334455667788L;
  Alcotest.(check int64) "read64" 0x1122334455667788L (Phys_mem.read64 m 0x1000);
  Alcotest.(check int) "read8" 0x88 (Phys_mem.read8 m 0x1000);
  Alcotest.(check int) "read8 high" 0x11 (Phys_mem.read8 m 0x1007);
  Alcotest.(check int) "read16" 0x5566 (Phys_mem.read16 m 0x1002);
  Phys_mem.write8 m 0x1003 0xAB;
  Alcotest.(check int64) "modified" 0x11223344AB667788L (Phys_mem.read64 m 0x1000)

let test_phys_cross_page () =
  let m = Phys_mem.create () in
  (* write straddling the 0x1FFF/0x2000 frame boundary *)
  Phys_mem.write64 m 0x1FFC 0xCAFEBABE12345678L;
  Alcotest.(check int64) "cross read" 0xCAFEBABE12345678L (Phys_mem.read64 m 0x1FFC);
  Alcotest.(check int) "low frame byte" 0x78 (Phys_mem.read8 m 0x1FFC);
  Alcotest.(check int) "high frame byte" 0xCA (Phys_mem.read8 m 0x2003)

let test_phys_alloc_copy () =
  let m = Phys_mem.create () in
  let mfn1 = Phys_mem.alloc_page m in
  let mfn2 = Phys_mem.alloc_page m in
  Alcotest.(check bool) "distinct" true (mfn1 <> mfn2);
  Phys_mem.write64 m (Phys_mem.paddr_of_mfn mfn1) 7L;
  let snap = Phys_mem.copy m in
  Phys_mem.write64 m (Phys_mem.paddr_of_mfn mfn1) 9L;
  Phys_mem.restore m ~snapshot:snap;
  Alcotest.(check int64) "restored" 7L (Phys_mem.read64 m (Phys_mem.paddr_of_mfn mfn1))

(* Build a tiny address space and exercise the walker. *)
let make_space () =
  let m = Phys_mem.create () in
  let cr3 = Phys_mem.alloc_page m in
  let alloc () = Phys_mem.alloc_page m in
  let data_mfn = Phys_mem.alloc_page m in
  Pagetable.map m ~cr3_mfn:cr3 ~vaddr:0x400000L ~mfn:data_mfn ~writable:true
    ~user:true ~alloc ();
  (m, cr3, data_mfn)

let test_walk_ok () =
  let m, cr3, data_mfn = make_space () in
  match Pagetable.walk m ~cr3_mfn:cr3 ~vaddr:0x400123L ~write:false ~user:true ~exec:false () with
  | Ok tr ->
    Alcotest.(check int) "mfn" data_mfn tr.Pagetable.mfn;
    Alcotest.(check int) "four pte loads" 4 (List.length tr.Pagetable.pte_addrs);
    Alcotest.(check int) "paddr"
      (Phys_mem.paddr_of_mfn data_mfn + 0x123)
      (Pagetable.to_paddr tr 0x400123L)
  | Error _ -> Alcotest.fail "unexpected fault"

let test_walk_fault () =
  let m, cr3, _ = make_space () in
  (match Pagetable.walk m ~cr3_mfn:cr3 ~vaddr:0x500000L ~write:false ~user:true ~exec:false () with
  | Ok _ -> Alcotest.fail "expected not-present fault"
  | Error f -> Alcotest.(check bool) "not present" true f.Pagetable.not_present);
  (* write to read-only page *)
  let alloc () = Phys_mem.alloc_page m in
  let ro = Phys_mem.alloc_page m in
  Pagetable.map m ~cr3_mfn:cr3 ~vaddr:0x600000L ~mfn:ro ~writable:false ~user:true ~alloc ();
  match Pagetable.walk m ~cr3_mfn:cr3 ~vaddr:0x600000L ~write:true ~user:true ~exec:false () with
  | Ok _ -> Alcotest.fail "expected protection fault"
  | Error f -> Alcotest.(check bool) "protection" false f.Pagetable.not_present

let test_walk_ad_bits () =
  let m, cr3, _ = make_space () in
  (* After a read walk, the leaf PTE has A set but not D. *)
  (match Pagetable.walk m ~cr3_mfn:cr3 ~vaddr:0x400000L ~write:false ~user:true ~exec:false () with
  | Ok tr ->
    let leaf = List.nth tr.Pagetable.pte_addrs 3 in
    let pte = Phys_mem.read64 m leaf in
    Alcotest.(check bool) "A set" true (Int64.logand pte Pagetable.pte_a <> 0L);
    Alcotest.(check bool) "D clear" true (Int64.logand pte Pagetable.pte_d = 0L);
    (* After a write walk, D is set too. *)
    (match Pagetable.walk m ~cr3_mfn:cr3 ~vaddr:0x400000L ~write:true ~user:true ~exec:false () with
    | Ok _ ->
      let pte = Phys_mem.read64 m leaf in
      Alcotest.(check bool) "D set" true (Int64.logand pte Pagetable.pte_d <> 0L)
    | Error _ -> Alcotest.fail "write walk failed")
  | Error _ -> Alcotest.fail "read walk failed")

let test_walk_noncanonical () =
  let m, cr3, _ = make_space () in
  match
    Pagetable.walk m ~cr3_mfn:cr3 ~vaddr:0x8000_0000_0000L ~write:false ~user:false ~exec:false ()
  with
  | Ok _ -> Alcotest.fail "expected canonical fault"
  | Error _ -> ()

let test_unmap () =
  let m, cr3, _ = make_space () in
  Pagetable.unmap m ~cr3_mfn:cr3 ~vaddr:0x400000L;
  Alcotest.(check (option int)) "gone" None (Pagetable.probe m ~cr3_mfn:cr3 ~vaddr:0x400000L)

let tlb_entry mfn = { Tlb.vpn = 0L; mfn; writable = true; user = true; nx = false; huge = false }

let test_tlb_hit_miss () =
  let tlb = Tlb.create Tlb.ptlsim_config in
  Alcotest.(check bool) "cold miss" true (Tlb.lookup tlb 0x400000L = Tlb.Tlb_miss);
  Tlb.insert tlb 0x400000L (tlb_entry 42);
  (match Tlb.lookup tlb 0x400FFFL with
  | Tlb.L1_hit e -> Alcotest.(check int) "mfn" 42 e.Tlb.mfn
  | _ -> Alcotest.fail "expected L1 hit");
  (* a different page still misses *)
  Alcotest.(check bool) "other page" true (Tlb.lookup tlb 0x401000L = Tlb.Tlb_miss)

let test_tlb_capacity_eviction () =
  let tlb = Tlb.create Tlb.ptlsim_config in
  (* fill all 32 entries plus one more *)
  for i = 0 to 32 do
    Tlb.insert tlb (Int64.of_int (i * 4096)) (tlb_entry i)
  done;
  (* the first entry must be evicted under LRU *)
  Alcotest.(check bool) "evicted" true (Tlb.lookup tlb 0L = Tlb.Tlb_miss);
  Alcotest.(check bool) "newest present" true (Tlb.lookup tlb (Int64.of_int (32 * 4096)) <> Tlb.Tlb_miss)

let test_tlb_two_level () =
  let tlb = Tlb.create Tlb.k8_config in
  for i = 0 to 63 do
    Tlb.insert tlb (Int64.of_int (i * 4096)) (tlb_entry i)
  done;
  (* Entry 0 fell out of the 32-entry L1 but must hit in the 1024-entry L2. *)
  (match Tlb.lookup tlb 0L with
  | Tlb.L2_hit e -> Alcotest.(check int) "mfn" 0 e.Tlb.mfn
  | Tlb.L1_hit _ -> Alcotest.fail "expected L2, not L1"
  | Tlb.Tlb_miss -> Alcotest.fail "expected L2 hit");
  (* After promotion it now hits in L1. *)
  match Tlb.lookup tlb 0L with
  | Tlb.L1_hit _ -> ()
  | _ -> Alcotest.fail "expected L1 after promotion"

let test_tlb_pde_cache () =
  let tlb = Tlb.create Tlb.k8_config in
  Alcotest.(check int) "cold walk = 4 loads" 4 (Tlb.walk_loads tlb 0x400000L);
  Tlb.insert tlb 0x400000L (tlb_entry 1);
  (* Same 2 MB region: PDE cache covers the upper levels. *)
  Alcotest.(check int) "warm walk = 1 load" 1 (Tlb.walk_loads tlb 0x401000L);
  let no_pde = Tlb.create Tlb.ptlsim_config in
  Tlb.insert no_pde 0x400000L (tlb_entry 1);
  Alcotest.(check int) "ptlsim config always 4" 4 (Tlb.walk_loads no_pde 0x401000L)

let test_tlb_flush () =
  let tlb = Tlb.create Tlb.k8_config in
  Tlb.insert tlb 0x400000L (tlb_entry 1);
  Tlb.flush_page tlb 0x400000L;
  (* flush_page clears L1 and L2 *)
  Alcotest.(check bool) "page flushed" true (Tlb.lookup tlb 0x400000L = Tlb.Tlb_miss);
  Tlb.insert tlb 0x400000L (tlb_entry 1);
  Tlb.flush tlb;
  Alcotest.(check bool) "all flushed" true (Tlb.lookup tlb 0x400000L = Tlb.Tlb_miss)

let small_cache =
  {
    Cache.name = "t";
    size_bytes = 1024;
    line_size = 64;
    ways = 2;
    latency = 3;
    banks = 8;
    replacement = Cache.Lru;
  }

let test_cache_hit_miss () =
  let stats = Stats.create () in
  let c = Cache.create stats small_cache in
  (match Cache.access c 0x1000 ~write:false with
  | Cache.Miss { writeback = None } -> ()
  | _ -> Alcotest.fail "expected clean miss");
  (match Cache.access c 0x1008 ~write:false with
  | Cache.Hit -> ()
  | _ -> Alcotest.fail "same line should hit");
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c)

let test_cache_eviction_writeback () =
  let stats = Stats.create () in
  let c = Cache.create stats small_cache in
  (* 1024B/64B/2way = 8 sets; addresses mapping to set 0 differ by 512. *)
  ignore (Cache.access c 0x0 ~write:true);
  ignore (Cache.access c 0x200 ~write:false);
  (* Third distinct line in set 0 evicts the LRU (the dirty 0x0 line). *)
  (match Cache.access c 0x400 ~write:false with
  | Cache.Miss { writeback = Some victim } -> Alcotest.(check int) "victim" 0x0 victim
  | _ -> Alcotest.fail "expected dirty writeback");
  Alcotest.(check bool) "evicted line gone" false (Cache.probe c 0x0)

let test_cache_lru_order () =
  let stats = Stats.create () in
  let c = Cache.create stats small_cache in
  ignore (Cache.access c 0x0 ~write:false);
  ignore (Cache.access c 0x200 ~write:false);
  (* touch 0x0 so 0x200 is now LRU *)
  ignore (Cache.access c 0x0 ~write:false);
  ignore (Cache.access c 0x400 ~write:false);
  Alcotest.(check bool) "recently used kept" true (Cache.probe c 0x0);
  Alcotest.(check bool) "lru evicted" false (Cache.probe c 0x200)

let test_cache_banking () =
  let stats = Stats.create () in
  let c = Cache.create stats small_cache in
  Alcotest.(check int) "bank 0" 0 (Cache.bank_of c 0x1000);
  Alcotest.(check int) "bank 1" 1 (Cache.bank_of c 0x1008);
  Alcotest.(check int) "wraps" 0 (Cache.bank_of c 0x1040)

let test_cache_occupancy_bound () =
  let stats = Stats.create () in
  let c = Cache.create stats small_cache in
  for i = 0 to 999 do
    ignore (Cache.access c (i * 64) ~write:(i mod 3 = 0))
  done;
  Alcotest.(check bool) "occupancy within capacity" true (Cache.occupancy c <= 16)

let test_hierarchy_latencies () =
  let stats = Stats.create () in
  let h = Hierarchy.create stats Hierarchy.k8_ptlsim in
  (* Cold load: L1 latency + L2 latency + memory. *)
  let lat1 = Hierarchy.load h ~cycle:0 ~paddr:0x10000 in
  Alcotest.(check int) "cold" (3 + 10 + 112) lat1;
  (* Warm hit. *)
  let lat2 = Hierarchy.load h ~cycle:200 ~paddr:0x10000 in
  Alcotest.(check int) "hit" 3 lat2;
  (* L2 hit after L1 eviction is cheaper than memory: evict by filling. *)
  Alcotest.(check bool) "store latency positive" true (Hierarchy.store h ~cycle:300 ~paddr:0x20000 > 0)

let test_hierarchy_mshr_merge () =
  let stats = Stats.create () in
  let h = Hierarchy.create stats Hierarchy.k8_ptlsim in
  let lat1 = Hierarchy.load h ~cycle:0 ~paddr:0x30000 in
  (* Before the first access to another word of the same missing line
     completes, the second access merges into the MSHR: the cache array
     itself already has the line allocated, so it scores a hit; what
     matters is the merge path exists for *misses* to in-flight lines.
     Simulate by invalidating L1 between the two accesses. *)
  ignore (Cache.invalidate (Hierarchy.l1d h) 0x30000);
  let lat2 = Hierarchy.load h ~cycle:5 ~paddr:0x30008 in
  Alcotest.(check bool) "merged shorter" true (lat2 < lat1);
  Alcotest.(check int) "merge = remaining" (lat1 - 5) lat2;
  Alcotest.(check int) "merge counted" 1 (Stats.get stats "mem.mshr_merges")

let test_hierarchy_prefetch () =
  let stats = Stats.create () in
  let h = Hierarchy.create stats Hierarchy.k8_silicon in
  ignore (Hierarchy.load h ~cycle:0 ~paddr:0x40000);
  (* The next line was prefetched into L2 (K8-style): the demand miss pays
     L1+L2 latency instead of going to memory. *)
  let lat = Hierarchy.load h ~cycle:500 ~paddr:0x40040 in
  Alcotest.(check int) "prefetched line close by" (3 + 10) lat;
  Alcotest.(check bool) "prefetch counted" true (Stats.get stats "mem.prefetches" >= 1);
  (* without prefetch the same access pays full memory latency *)
  let h2 = Hierarchy.create ~prefix:"m2" stats Hierarchy.k8_ptlsim in
  ignore (Hierarchy.load h2 ~cycle:0 ~paddr:0x40000);
  Alcotest.(check int) "no prefetch goes to memory" (3 + 10 + 112)
    (Hierarchy.load h2 ~cycle:500 ~paddr:0x40040)

let test_hierarchy_ifetch_and_invalidate () =
  let stats = Stats.create () in
  let h = Hierarchy.create stats Hierarchy.k8_ptlsim in
  let lat1 = Hierarchy.ifetch h ~cycle:0 ~paddr:0x50000 in
  Alcotest.(check bool) "cold ifetch slow" true (lat1 > 100);
  let lat2 = Hierarchy.ifetch h ~cycle:200 ~paddr:0x50000 in
  Alcotest.(check int) "warm ifetch" 3 lat2;
  Hierarchy.invalidate_line h 0x50000;
  let lat3 = Hierarchy.ifetch h ~cycle:400 ~paddr:0x50000 in
  Alcotest.(check bool) "invalidated refetches" true (lat3 > 3)

let test_coherence_moesi () =
  let stats = Stats.create () in
  let d =
    Coherence.create stats
      ~mode:(Coherence.Moesi { transfer_latency = 20; invalidate_latency = 10 })
      ~ncores:2 ~line_size:64
  in
  (* Core 0 reads: exclusive. *)
  Alcotest.(check int) "first read free" 0
    (Coherence.miss_penalty d ~core:0 ~paddr:0x1000 ~write:false);
  Alcotest.(check bool) "E state" true (Coherence.state d ~core:0 ~paddr:0x1000 = Coherence.E);
  (* Core 0 writes (hit upgrade from E is free). *)
  Alcotest.(check int) "E->M free" 0 (Coherence.write_hit_penalty d ~core:0 ~paddr:0x1000);
  Alcotest.(check bool) "M state" true (Coherence.state d ~core:0 ~paddr:0x1000 = Coherence.M);
  (* Core 1 reads: cache-to-cache transfer; core 0 drops to O. *)
  Alcotest.(check int) "dirty transfer" 20
    (Coherence.miss_penalty d ~core:1 ~paddr:0x1000 ~write:false);
  Alcotest.(check bool) "owner O" true (Coherence.state d ~core:0 ~paddr:0x1000 = Coherence.O);
  Alcotest.(check bool) "reader S" true (Coherence.state d ~core:1 ~paddr:0x1000 = Coherence.S);
  (* Core 1 writes: invalidate + transfer. *)
  Alcotest.(check bool) "rfo penalty" true
    (Coherence.miss_penalty d ~core:1 ~paddr:0x1000 ~write:true >= 10);
  Alcotest.(check bool) "old owner I" true (Coherence.state d ~core:0 ~paddr:0x1000 = Coherence.I);
  Alcotest.(check bool) "writer M" true (Coherence.state d ~core:1 ~paddr:0x1000 = Coherence.M);
  Alcotest.(check bool) "invariants" true (Coherence.check_invariants d)

let test_coherence_instant () =
  let stats = Stats.create () in
  let d = Coherence.create stats ~mode:Coherence.Instant ~ncores:4 ~line_size:64 in
  Alcotest.(check int) "always free" 0
    (Coherence.miss_penalty d ~core:0 ~paddr:0x1000 ~write:true);
  Alcotest.(check int) "write hit free" 0 (Coherence.write_hit_penalty d ~core:3 ~paddr:0x1000)

let prop_coherence_invariants =
  QCheck.Test.make ~name:"MOESI invariants hold under random traffic" ~count:300
    QCheck.(list (triple (int_bound 3) (int_bound 15) bool))
    (fun ops ->
      let stats = Stats.create () in
      let d =
        Coherence.create stats
          ~mode:(Coherence.Moesi { transfer_latency = 20; invalidate_latency = 10 })
          ~ncores:4 ~line_size:64
      in
      List.iter
        (fun (core, lineno, write) ->
          let paddr = lineno * 64 in
          if Coherence.state d ~core ~paddr = Coherence.I then
            ignore (Coherence.miss_penalty d ~core ~paddr ~write)
          else if write then ignore (Coherence.write_hit_penalty d ~core ~paddr))
        ops;
      Coherence.check_invariants d)

(* dirty-page tracking: writes (and allocating reads) dirty a page,
   plain reads of existing pages do not, and a delta carries exactly
   the touched footprint *)
let test_phys_dirty_tracking () =
  let m = Phys_mem.create () in
  Phys_mem.write64 m 0x1000 0xAAL;
  Phys_mem.write64 m 0x5000 0xBBL;
  let base = Phys_mem.copy m in
  Phys_mem.clear_dirty m;
  Alcotest.(check int) "clean after clear_dirty" 0 (Phys_mem.dirty_count m);
  ignore (Phys_mem.read64 m 0x1000);
  Alcotest.(check int) "plain read stays clean" 0 (Phys_mem.dirty_count m);
  Phys_mem.write8 m 0x5004 0xCC;
  Alcotest.(check int) "write dirties one page" 1 (Phys_mem.dirty_count m);
  (* a read that allocates a zero page is allocation-state mutation *)
  ignore (Phys_mem.read64 m 0x9000);
  Alcotest.(check int) "allocating read dirties" 2 (Phys_mem.dirty_count m);
  let d = Phys_mem.delta m in
  Alcotest.(check int) "delta carries the footprint" 2
    (Phys_mem.delta_pages d);
  Alcotest.(check int) "delta bytes = pages x page_size"
    (2 * Phys_mem.page_size) (Phys_mem.delta_bytes d);
  (* base + delta rebuilds the live contents, drift afterwards or not *)
  Phys_mem.write64 m 0x1000 0xDDL;
  let rebuilt = Phys_mem.clone_cow base in
  Phys_mem.apply_delta rebuilt d;
  Alcotest.(check int64) "rebuilt dirty page" 0x000000CC000000BBL
    (Phys_mem.read64 rebuilt 0x5000);
  Alcotest.(check int64) "rebuilt clean page (pre-delta content)" 0xAAL
    (Phys_mem.read64 rebuilt 0x1000);
  Alcotest.(check int64) "rebuilt allocated-by-read page" 0L
    (Phys_mem.read64 rebuilt 0x9000);
  Alcotest.(check int) "rebuilt allocation count"
    (Phys_mem.allocated_pages m) (Phys_mem.allocated_pages rebuilt)

(* copy-on-write clones: reads share the base's bytes, a write copies
   the frame privately and never leaks back into the base *)
let test_phys_clone_cow () =
  let base = Phys_mem.create () in
  Phys_mem.write64 base 0x1000 0x1111L;
  Phys_mem.write64 base 0x2000 0x2222L;
  let c1 = Phys_mem.clone_cow base in
  let c2 = Phys_mem.clone_cow base in
  Alcotest.(check int64) "clone reads base content" 0x1111L
    (Phys_mem.read64 c1 0x1000);
  Phys_mem.write64 c1 0x1000 0xDEADL;
  Alcotest.(check int64) "clone write is private" 0xDEADL
    (Phys_mem.read64 c1 0x1000);
  Alcotest.(check int64) "base unchanged" 0x1111L
    (Phys_mem.read64 base 0x1000);
  Alcotest.(check int64) "sibling clone unchanged" 0x1111L
    (Phys_mem.read64 c2 0x1000);
  (* the unwritten page is still shared verbatim *)
  Alcotest.(check int64) "unwritten page shared" 0x2222L
    (Phys_mem.read64 c1 0x2000);
  Alcotest.(check (list int)) "clone diffs only the written page"
    [ Phys_mem.mfn_of_paddr 0x1000 ]
    (Phys_mem.diff c1 base)

(* ---- A/D discipline: success-only, per level ---- *)

let pte_at m addr = Phys_mem.read64 m addr

let has_bit pte bit = Int64.logand pte bit <> 0L

(* The PTE path for a mapped vaddr, root first, without perturbing A/D. *)
let path_of m cr3 vaddr =
  match
    Pagetable.walk m ~cr3_mfn:cr3 ~vaddr ~write:false ~user:true ~exec:false
      ~set_ad:false ()
  with
  | Ok tr -> tr.Pagetable.pte_addrs
  | Error _ -> Alcotest.fail "path walk failed"

let test_walk_ad_per_level () =
  let m, cr3, _ = make_space () in
  let path = path_of m cr3 0x400000L in
  Alcotest.(check int) "4-level path" 4 (List.length path);
  (* set_ad:false must leave every level untouched *)
  List.iteri
    (fun i addr ->
      Alcotest.(check bool)
        (Printf.sprintf "no A at level %d before any real walk" (3 - i))
        false
        (has_bit (pte_at m addr) Pagetable.pte_a))
    path;
  (* a read walk sets A on all four levels, D nowhere *)
  (match
     Pagetable.walk m ~cr3_mfn:cr3 ~vaddr:0x400000L ~write:false ~user:true
       ~exec:false ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "read walk failed");
  List.iteri
    (fun i addr ->
      let lvl = 3 - i in
      Alcotest.(check bool) (Printf.sprintf "A set at level %d" lvl) true
        (has_bit (pte_at m addr) Pagetable.pte_a);
      Alcotest.(check bool) (Printf.sprintf "no D at level %d" lvl) false
        (has_bit (pte_at m addr) Pagetable.pte_d))
    path;
  (* a write walk adds D on the leaf only *)
  (match
     Pagetable.walk m ~cr3_mfn:cr3 ~vaddr:0x400000L ~write:true ~user:true
       ~exec:false ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "write walk failed");
  List.iteri
    (fun i addr ->
      let lvl = 3 - i in
      Alcotest.(check bool)
        (Printf.sprintf "D %s at level %d"
           (if lvl = 0 then "set" else "still clear")
           lvl)
        (lvl = 0)
        (has_bit (pte_at m addr) Pagetable.pte_d))
    path

let test_walk_ad_only_on_success () =
  (* map a read-only page; a faulting write walk must not set A or D on
     any level it visited *)
  let m = Phys_mem.create () in
  let cr3 = Phys_mem.alloc_page m in
  let alloc () = Phys_mem.alloc_page m in
  let data = Phys_mem.alloc_page m in
  Pagetable.map m ~cr3_mfn:cr3 ~vaddr:0x400000L ~mfn:data ~writable:false
    ~user:true ~alloc ();
  let path = path_of m cr3 0x400000L in
  (match
     Pagetable.walk m ~cr3_mfn:cr3 ~vaddr:0x400000L ~write:true ~user:true
       ~exec:false ()
   with
  | Ok _ -> Alcotest.fail "write through a read-only page succeeded"
  | Error _ -> ());
  List.iteri
    (fun i addr ->
      Alcotest.(check bool)
        (Printf.sprintf "faulting walk left level %d clean" (3 - i))
        false
        (has_bit (pte_at m addr)
           (Int64.logor Pagetable.pte_a Pagetable.pte_d)))
    path

(* ---- 2M huge pages: walker and TLB ---- *)

let make_huge_space () =
  let m = Phys_mem.create () in
  let cr3 = Phys_mem.alloc_page m in
  let alloc () = Phys_mem.alloc_page m in
  let block =
    Phys_mem.alloc_pages m ~align:Pagetable.huge_pages Pagetable.huge_pages
  in
  Pagetable.map m ~cr3_mfn:cr3 ~vaddr:0x40000000L ~mfn:block ~writable:true
    ~user:true ~huge:true ~alloc ();
  (m, cr3, block)

let test_huge_walk () =
  let m, cr3, block = make_huge_space () in
  (* an offset deep inside the region: the exact 4K frame comes back *)
  let vaddr = 0x40057123L in
  (match
     Pagetable.walk m ~cr3_mfn:cr3 ~vaddr ~write:true ~user:true ~exec:false ()
   with
  | Ok tr ->
    Alcotest.(check bool) "huge" true tr.Pagetable.huge;
    Alcotest.(check int) "three pte loads" 3 (List.length tr.Pagetable.pte_addrs);
    Alcotest.(check int) "exact 4K frame" (block + 0x57) tr.Pagetable.mfn;
    Alcotest.(check int) "paddr"
      (Phys_mem.paddr_of_mfn block + 0x57123)
      (Pagetable.to_paddr tr vaddr)
  | Error _ -> Alcotest.fail "huge walk failed");
  (* A on all three levels, D on the PS leaf (level 1) *)
  (match
     Pagetable.walk m ~cr3_mfn:cr3 ~vaddr ~write:false ~user:true ~exec:false
       ~set_ad:false ()
   with
  | Ok tr ->
    List.iteri
      (fun i addr ->
        let lvl = 3 - i in
        Alcotest.(check bool) (Printf.sprintf "A at level %d" lvl) true
          (has_bit (pte_at m addr) Pagetable.pte_a);
        Alcotest.(check bool)
          (Printf.sprintf "D %s at level %d"
             (if lvl = 1 then "set" else "clear")
             lvl)
          (lvl = 1)
          (has_bit (pte_at m addr) Pagetable.pte_d))
      tr.Pagetable.pte_addrs
  | Error _ -> Alcotest.fail "probe walk failed");
  (* misaligned huge mappings are rejected outright *)
  (match
     Pagetable.map m ~cr3_mfn:cr3 ~vaddr:0x40001000L ~mfn:block ~writable:true
       ~user:true ~huge:true
       ~alloc:(fun () -> Phys_mem.alloc_page m)
       ()
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "misaligned huge vaddr accepted");
  (* unmap drops the whole 2M region *)
  Pagetable.unmap m ~cr3_mfn:cr3 ~vaddr:0x400FF000L;
  Alcotest.(check (option int)) "whole region gone" None
    (Pagetable.probe m ~cr3_mfn:cr3 ~vaddr:0x40057000L)

let test_tlb_huge_entry () =
  let m, cr3, block = make_huge_space () in
  let tlb = Tlb.create Tlb.k8_config in
  let tr =
    match
      Pagetable.walk m ~cr3_mfn:cr3 ~vaddr:0x40057123L ~write:false ~user:true
        ~exec:false ()
    with
    | Ok tr -> tr
    | Error _ -> Alcotest.fail "walk failed"
  in
  let e = Tlb.entry_of_walk tr in
  Alcotest.(check bool) "entry tagged huge" true e.Tlb.huge;
  Alcotest.(check int) "entry stores the 2M base frame" block e.Tlb.mfn;
  Tlb.insert tlb 0x40057123L e;
  (* one entry covers every 4K page of the region *)
  (match Tlb.lookup tlb 0x401FF000L with
  | Tlb.L1_hit e' ->
    Alcotest.(check int) "paddr through the huge entry"
      (Phys_mem.paddr_of_mfn block + 0x1FF458)
      (Tlb.paddr_of e' 0x401FF458L)
  | _ -> Alcotest.fail "expected a huge hit across the region");
  (* ...but not the neighbouring region *)
  Alcotest.(check bool) "next 2M region misses" true
    (Tlb.lookup tlb 0x40200000L = Tlb.Tlb_miss);
  (* flushing any page of the region drops the single huge entry *)
  Tlb.flush_page tlb 0x40000000L;
  Alcotest.(check bool) "flush_page drops the huge entry" true
    (Tlb.lookup tlb 0x40057123L = Tlb.Tlb_miss)

(* ---- page-walk caches ---- *)

let test_pwc_basics () =
  let m, cr3, _ = make_space () in
  let pwc = Pwc.create ~entries:4 () in
  Alcotest.(check int) "cold: all 4 loads" 4
    (Pwc.loads_left pwc 0x400000L ~walk_len:4);
  let tr =
    match
      Pagetable.walk m ~cr3_mfn:cr3 ~vaddr:0x400000L ~write:false ~user:true
        ~exec:false ()
    with
    | Ok tr -> tr
    | Error _ -> Alcotest.fail "walk failed"
  in
  Pwc.insert pwc 0x400000L ~pte_addrs:tr.Pagetable.pte_addrs;
  (* same 2M region: the deepest (PT) cache cuts the walk to one load *)
  Alcotest.(check int) "warm same region: 1 load" 1
    (Pwc.loads_left pwc 0x401000L ~walk_len:4);
  (* same 1G region, different 2M: the PD-table cache leaves two loads *)
  Alcotest.(check int) "same 1G region: 2 loads" 2
    (Pwc.loads_left pwc 0x10200000L ~walk_len:4);
  (* a different 512G slot misses every depth *)
  Alcotest.(check int) "far away: all 4 loads" 4
    (Pwc.loads_left pwc 0x80_0000_0000L ~walk_len:4);
  Alcotest.(check bool) "hits counted" true (Pwc.hits pwc > 0);
  Pwc.flush pwc;
  Alcotest.(check int) "flush empties every depth" 4
    (Pwc.loads_left pwc 0x401000L ~walk_len:4);
  Alcotest.(check int) "flush leaves no entries" 0
    (List.length (Pwc.entries pwc))

let suite =
  [
    Alcotest.test_case "phys rw" `Quick test_phys_rw;
    Alcotest.test_case "phys dirty tracking" `Quick test_phys_dirty_tracking;
    Alcotest.test_case "phys clone cow" `Quick test_phys_clone_cow;
    Alcotest.test_case "phys cross page" `Quick test_phys_cross_page;
    Alcotest.test_case "phys alloc/copy/restore" `Quick test_phys_alloc_copy;
    Alcotest.test_case "walk ok" `Quick test_walk_ok;
    Alcotest.test_case "walk faults" `Quick test_walk_fault;
    Alcotest.test_case "walk A/D bits" `Quick test_walk_ad_bits;
    Alcotest.test_case "walk A/D per level" `Quick test_walk_ad_per_level;
    Alcotest.test_case "walk A/D only on success" `Quick
      test_walk_ad_only_on_success;
    Alcotest.test_case "walk non-canonical" `Quick test_walk_noncanonical;
    Alcotest.test_case "unmap" `Quick test_unmap;
    Alcotest.test_case "huge walk" `Quick test_huge_walk;
    Alcotest.test_case "tlb huge entry" `Quick test_tlb_huge_entry;
    Alcotest.test_case "pwc basics" `Quick test_pwc_basics;
    Alcotest.test_case "tlb hit/miss" `Quick test_tlb_hit_miss;
    Alcotest.test_case "tlb eviction" `Quick test_tlb_capacity_eviction;
    Alcotest.test_case "tlb two-level" `Quick test_tlb_two_level;
    Alcotest.test_case "tlb pde cache" `Quick test_tlb_pde_cache;
    Alcotest.test_case "tlb flush" `Quick test_tlb_flush;
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache eviction + writeback" `Quick test_cache_eviction_writeback;
    Alcotest.test_case "cache lru order" `Quick test_cache_lru_order;
    Alcotest.test_case "cache banking" `Quick test_cache_banking;
    Alcotest.test_case "cache occupancy bound" `Quick test_cache_occupancy_bound;
    Alcotest.test_case "hierarchy latencies" `Quick test_hierarchy_latencies;
    Alcotest.test_case "hierarchy mshr merge" `Quick test_hierarchy_mshr_merge;
    Alcotest.test_case "hierarchy prefetch" `Quick test_hierarchy_prefetch;
    Alcotest.test_case "hierarchy ifetch + invalidate" `Quick test_hierarchy_ifetch_and_invalidate;
    Alcotest.test_case "coherence moesi" `Quick test_coherence_moesi;
    Alcotest.test_case "coherence instant" `Quick test_coherence_instant;
    Test_seed.to_alcotest prop_coherence_invariants;
  ]
