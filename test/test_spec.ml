(** Tests for the declarative ISA spec table (lib/spec) and the
    conformance artifacts derived from it (lib/oracle): coverage of the
    fuzz generator's opcode space, the flag-effect lattice and its
    property suite, the exception-condition suite, and a has-teeth check
    proving that a deliberately mutated spec row fails its own property
    tests (the fuzz-side attribution of the same mutation lives in
    {!Test_fuzz}). *)

module Flags = Ptl_isa.Flags
module Spec = Ptl_spec.Spec
module Conformance = Ptl_oracle.Conformance

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- coverage: every opcode the fuzz generator can emit has a spec
   row, and no row is dead weight outside the generator space --- *)

let test_coverage () =
  let c = Spec.coverage () in
  Alcotest.(check (list string)) "no generator opcode lacks a spec row" []
    c.Spec.missing;
  Alcotest.(check (list string)) "no spec row outside the generator space" []
    c.Spec.extra;
  Alcotest.(check bool) "table is substantial" true
    (List.length c.Spec.covered >= 60)

(* --- flag-lattice spot checks: known rows carry the architecturally
   correct Written/Preserved/Undefined assignments --- *)

let effect_name = function
  | Spec.Written -> "written"
  | Spec.Preserved -> "preserved"
  | Spec.Undefined -> "undefined"

let check_lattice key expected =
  match Spec.find Spec.table key with
  | None -> Alcotest.failf "no spec row for %s" key
  | Some row ->
    List.iter
      (fun (flag, want) ->
        let got = Spec.effect_of row.Spec.lattice flag in
        if got <> want then
          Alcotest.failf "%s/%s: expected %s, got %s" key flag
            (effect_name want) (effect_name got))
      expected

let test_lattice_spot_checks () =
  let w = Spec.Written and p = Spec.Preserved and u = Spec.Undefined in
  check_lattice "add"
    [ ("CF", w); ("PF", w); ("ZF", w); ("SF", w); ("OF", w) ];
  (* INC/DEC famously preserve CF while writing the rest *)
  check_lattice "inc"
    [ ("CF", p); ("PF", w); ("ZF", w); ("SF", w); ("OF", w) ];
  check_lattice "dec" [ ("CF", p); ("ZF", w) ];
  (* logic ops clear CF/OF (written), leave AF undefined — our CC set
     models C/P/Z/S/O, so AND writes all five *)
  check_lattice "and" [ ("CF", w); ("OF", w); ("ZF", w) ];
  (* plain data movement touches nothing *)
  check_lattice "mov"
    [ ("CF", p); ("PF", p); ("ZF", p); ("SF", p); ("OF", p) ];
  check_lattice "lea" [ ("CF", p); ("OF", p) ];
  (* one-operand MUL leaves SF/ZF/PF undefined, writes CF/OF *)
  check_lattice "mul" [ ("CF", w); ("OF", w); ("ZF", u); ("SF", u); ("PF", u) ];
  (* the model preserves flags across DIV (x86 leaves them undefined) *)
  check_lattice "div"
    [ ("CF", p); ("PF", p); ("ZF", p); ("SF", p); ("OF", p) ];
  (* BT writes only CF *)
  check_lattice "bt" [ ("CF", w); ("ZF", p); ("SF", p) ]

(* --- the derived property suite (quick level: boundary operand subset)
   must be green over every row: flag lattice honoured on every probe,
   no divergence from the sequential core, and no vacuous Written claim
   (every Written flag actually toggles in at least one case) --- *)

let test_property_suite_quick () =
  let r = Conformance.run_properties ~level:`Quick () in
  let rows = List.length r.Conformance.p_rows in
  Alcotest.(check bool) "every row exercised" true
    (rows = List.length (Conformance.table_rows Spec.table));
  Alcotest.(check bool) "a real corpus of programs" true
    (r.Conformance.p_cases > 1000);
  if r.Conformance.p_failures > 0 || r.Conformance.p_vacuous > 0 then
    Alcotest.failf "property suite not green:\n%s"
      (Conformance.report_to_string r)

(* --- the derived exception suite: every declared #DE/#GP/#PF trigger
   must fault with the declared vector in both worlds (oracle
   prediction, IDT delivery through seqcore) and matching CR2 --- *)

let test_exception_suite () =
  let r = Conformance.run_exceptions () in
  Alcotest.(check bool) "a real set of triggers" true
    (r.Conformance.e_cases > 30);
  if r.Conformance.e_failures <> [] then
    Alcotest.failf "exception suite not green:\n%s"
      (Conformance.exc_report_to_string r)

(* --- has-teeth: drop ADD's CF write from a copy of the table; the
   row's own property tests must fail against the real cores while an
   untouched row stays green under the same mutated table --- *)

let test_planted_row_bug_caught () =
  let table = Spec.drop_flag_write ~key:"add" ~mask:Flags.cf_mask Spec.table in
  let row k =
    match Spec.find table k with
    | Some r -> r
    | None -> Alcotest.failf "no row %s" k
  in
  let rr = Conformance.run_row ~table ~level:`Quick (row "add") in
  Alcotest.(check bool) "mutated add row fails its property tests" true
    (rr.Conformance.rr_failures <> []);
  let rr_sub = Conformance.run_row ~table ~level:`Quick (row "sub") in
  Alcotest.(check (list (pair string string)))
    "untouched sub row stays green" [] rr_sub.Conformance.rr_failures

(* --- mutating a missing row is a programming error --- *)

let test_drop_flag_write_unknown_row () =
  match Spec.drop_flag_write ~key:"no-such-op" ~mask:Flags.cf_mask Spec.table with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the row" true (contains msg "no-such-op")

let suite =
  [
    Alcotest.test_case "generator coverage is total" `Quick test_coverage;
    Alcotest.test_case "flag-lattice spot checks" `Quick test_lattice_spot_checks;
    Alcotest.test_case "property suite (quick) green" `Quick
      test_property_suite_quick;
    Alcotest.test_case "exception suite green" `Quick test_exception_suite;
    Alcotest.test_case "planted row bug caught by properties" `Quick
      test_planted_row_bug_caught;
    Alcotest.test_case "drop_flag_write rejects unknown row" `Quick
      test_drop_flag_write_unknown_row;
  ]
