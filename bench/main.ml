(* The benchmark harness: regenerates every table and figure of the paper
   (PTLsim, ISPASS 2007) plus the ablation studies called out in DESIGN.md.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- table1  -- one experiment
     OPTLSIM_SCALE=2 ...                 -- scale the rsync file set

   Experiments print the paper's reported values next to ours; absolute
   numbers differ (different substrate scale) but the shape — who wins,
   signs of the deltas, crossovers — is the reproduction target. *)

open Ptl_util
module Stats = Ptl_stats.Statstree
module Timelapse = Ptl_stats.Timelapse
module Config = Ptl_ooo.Config
module Ooo = Ptl_ooo.Ooo_core
module Registry = Ptl_ooo.Registry
module Multicore = Ptl_ooo.Multicore
module Inorder = Ptl_ooo.Inorder_core
module Machine = Ptl_arch.Machine
module Context = Ptl_arch.Context
module Env = Ptl_arch.Env
module Seqcore = Ptl_arch.Seqcore
module Kernel = Ptl_kernel.Kernel
module Domain = Ptl_hyper.Domain
module Ptlmon = Ptl_hyper.Ptlmon
module Cosim = Ptl_hyper.Cosim
module RB = Ptl_workloads.Rsync_bench
module FS = Ptl_workloads.Fileset
module G = Ptl_workloads.Gasm
module Tbl = Ptl_util.Tablefmt
module Insn = Ptl_isa.Insn
module Flags = Ptl_isa.Flags
module Coherence = Ptl_mem.Coherence
module Tlb = Ptl_mem.Tlb
module Trace = Ptl_trace.Trace
module Sample = Ptl_sample.Sample
module Store = Ptl_store.Store
module Fleet = Ptl_fleet.Fleet
module Sweep = Ptl_sweep.Sweep
module Paired = Ptl_stats.Paired

let scale =
  match Sys.getenv_opt "OPTLSIM_SCALE" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 1)
  | None -> 1

let fileset =
  { FS.default with FS.nfiles = 24 * scale; max_size = 16_384 }

let banner name = Printf.printf "\n===== %s =====\n%!" name

(* ---------------------------------------------------------------- *)
(* Table 1: K8 silicon vs the PTLsim model on the rsync benchmark   *)
(* ---------------------------------------------------------------- *)

(* the paper's reported values (in thousands, Table 1) *)
let paper_native = [ 1_482_035; 990_360; 1_097_012; 6_118; 414_285; 138_062; 5_727; 1_593 ]
let paper_ptlsim = [ 1_545_810; 1_005_795; 1_436_979; 6_564; 418_072; 135_857; 5_392; 3_895 ]

let run_rsync machine ~snapshots =
  let d, k =
    Ptlmon.launch
      (RB.spec ~fileset ~machine
         ~snapshot_interval:(if snapshots then Some 100_000 else None)
         ())
  in
  Domain.submit d "-core ooo -run";
  ignore (Domain.run ~max_cycles:8_000_000_000 d);
  if not (RB.verify_sync k) then
    failwith "rsync benchmark did not synchronize correctly";
  (d, k)

let exp_table1 () =
  banner "Table 1: accuracy of the PTLsim model vs reference K8 silicon";
  Printf.printf "workload: rsync over ssh, %d files, %d KB total (paper: 6186 files, 48 MB)\n%!"
    fileset.FS.nfiles
    (FS.src_bytes (FS.generate fileset) / 1024);
  Printf.printf "reference = k8-silicon config (2-level TLB + PDE cache, prefetch,\n";
  Printf.printf "weaker silicon predictor, uop-triad counting); model = k8-ptlsim config\n%!";
  let dn, _ = run_rsync Config.k8_silicon ~snapshots:false in
  let dm, _ = run_rsync Config.k8_ptlsim ~snapshots:false in
  let n = RB.metrics_of_stats dn.Domain.env.Env.stats ~triads:true in
  let m = RB.metrics_of_stats dm.Domain.env.Env.stats ~triads:false in
  let rows_values =
    [
      ("Cycles", n.RB.m_cycles, m.RB.m_cycles);
      ("x86 Insns Committed", n.RB.m_insns, m.RB.m_insns);
      ("uops", n.RB.m_uops, m.RB.m_uops);
      ("L1 D-cache Misses", n.RB.m_l1d_misses, m.RB.m_l1d_misses);
      ("L1 D-cache Accesses", n.RB.m_l1d_accesses, m.RB.m_l1d_accesses);
      ("Total Branches", n.RB.m_branches, m.RB.m_branches);
      ("Mispredicted Branches", n.RB.m_mispredicts, m.RB.m_mispredicts);
      ("DTLB Misses", n.RB.m_dtlb_misses, m.RB.m_dtlb_misses);
    ]
  in
  let rows =
    List.map2
      (fun (name, native, model) (pn, pp) ->
        [| name;
           string_of_int native;
           string_of_int model;
           Tbl.pct_diff (float_of_int native) (float_of_int model);
           Tbl.thousands (pn * 1000);
           Tbl.thousands (pp * 1000);
           Tbl.pct_diff (float_of_int pn) (float_of_int pp) |])
      rows_values
      (List.map2 (fun a b -> (a, b)) paper_native paper_ptlsim)
  in
  print_endline
    (Tbl.render
       ~headers:[| "Trial"; "Ref(ours)"; "Model(ours)"; "%Diff"; "Paper Native"; "Paper PTLsim"; "Paper %Diff" |]
       ~aligns:[| Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right |]
       rows);
  (* derived-rate rows, like the paper's percentage lines *)
  let pct a b = 100.0 *. float_of_int a /. float_of_int (max 1 b) in
  Printf.printf "\nL1 miss rate:   ref %.2f%%  model %.2f%%   (paper: 1.48%% vs 1.57%%)\n"
    (pct n.RB.m_l1d_misses n.RB.m_l1d_accesses)
    (pct m.RB.m_l1d_misses m.RB.m_l1d_accesses);
  Printf.printf "mispredict %%:   ref %.2f%%  model %.2f%%   (paper: 4.15%% vs 3.97%%)\n"
    (pct n.RB.m_mispredicts n.RB.m_branches)
    (pct m.RB.m_mispredicts m.RB.m_branches);
  Printf.printf "DTLB miss rate: ref %.2f%%  model %.2f%%   (paper: 0.38%% vs 0.93%%)\n%!"
    (pct n.RB.m_dtlb_misses n.RB.m_dtlb_accesses)
    (pct m.RB.m_dtlb_misses m.RB.m_dtlb_accesses)

(* ---------------------------------------------------------------- *)
(* Figures 2 and 3: time-lapse plots over statistics snapshots       *)
(* ---------------------------------------------------------------- *)

let fig_run = ref None

let get_fig_run () =
  match !fig_run with
  | Some dk -> dk
  | None ->
    let dk = run_rsync Config.k8_ptlsim ~snapshots:true in
    fig_run := Some dk;
    dk

let exp_fig2 () =
  banner "Figure 2: time lapse of cycles per CPU mode (user/kernel/idle)";
  let d, _ = get_fig_run () in
  match d.Domain.timelapse with
  | None -> print_endline "no timelapse recorded"
  | Some tl ->
    let series path = Timelapse.ratio_series tl path "domain.cycles" in
    let user = series "domain.cycles_in_mode.user" in
    let kern = series "domain.cycles_in_mode.kernel" in
    let idle = series "domain.cycles_in_mode.idle" in
    Printf.printf "snapshot every 100K cycles; columns: user%% kernel%% idle%%\n";
    Printf.printf "phase markers: %s\n"
      (String.concat ", "
         (List.map
            (fun (m, c) -> Printf.sprintf "(%d)@%dK" m (c / 1000))
            (Domain.markers d)));
    List.iteri
      (fun i ((u, k), id) ->
        let bar frac ch =
          String.make (int_of_float (frac *. 30.0)) ch
        in
        Printf.printf "%4d |%-30s|%-30s|%-30s| u=%4.1f%% k=%4.1f%% i=%4.1f%%\n" i
          (bar u 'U') (bar k 'K') (bar id '.') (100. *. u) (100. *. k) (100. *. id))
      (List.map2 (fun a b -> (a, b)) (List.map2 (fun a b -> (a, b)) user kern) idle);
    let tot_u = List.fold_left ( +. ) 0. user /. float_of_int (max 1 (List.length user)) in
    let tot_k = List.fold_left ( +. ) 0. kern /. float_of_int (max 1 (List.length kern)) in
    let tot_i = List.fold_left ( +. ) 0. idle /. float_of_int (max 1 (List.length idle)) in
    Printf.printf
      "\noverall: user %.0f%%, kernel %.0f%%, idle %.0f%% (paper: kernel 15%%, idle 27%%)\n%!"
      (100. *. tot_u) (100. *. tot_k) (100. *. tot_i)

let exp_fig3 () =
  banner "Figure 3: time lapse of mispredict / DTLB miss / L1D miss rates";
  let d, _ = get_fig_run () in
  match d.Domain.timelapse with
  | None -> print_endline "no timelapse recorded"
  | Some tl ->
    let r n d' = Timelapse.ratio_series tl n d' in
    let misp = r "ooo.commit.mispredicts" "ooo.commit.cond_branches" in
    let dtlb = r "ooo.dcache.dtlb_misses" "ooo.dcache.dtlb_accesses" in
    let l1 =
      let m = Timelapse.series tl "ooo.mem.L1D.misses" in
      let h = Timelapse.series tl "ooo.mem.L1D.hits" in
      List.map2
        (fun mi hi -> if mi + hi = 0 then 0.0 else float_of_int mi /. float_of_int (mi + hi))
        m h
    in
    Printf.printf "columns: mispredict%% (paper red), DTLB miss%% (green), L1D miss%% (blue)\n";
    List.iteri
      (fun i ((mp, dt), l) ->
        Printf.printf "%4d | mispred %5.2f%% %-20s| dtlb %5.2f%% %-20s| l1d %5.2f%% %-20s\n" i
          (100. *. mp) (String.make (min 20 (int_of_float (mp *. 200.))) '#')
          (100. *. dt) (String.make (min 20 (int_of_float (dt *. 200.))) '#')
          (100. *. l) (String.make (min 20 (int_of_float (l *. 200.))) '#'))
      (List.map2 (fun a b -> (a, b)) (List.map2 (fun a b -> (a, b)) misp dtlb) l1)

(* ---------------------------------------------------------------- *)
(* Simulation throughput (the paper: 415,540 cycles/sec in 2007)     *)
(* ---------------------------------------------------------------- *)

let hot_loop_machine () =
  let g = G.create ~base:0x40_0000L () in
  G.li g G.rbp Machine.heap_base;
  G.lii g G.rcx 1_000_000_000;
  G.label g "top";
  G.ld g G.rax ~base:G.rbp ();
  G.addi g G.rax 1;
  G.st g ~base:G.rbp G.rax ();
  G.addi g G.rbx 3;
  G.dec g G.rcx;
  G.jne g "top";
  G.ins g Insn.Hlt;
  Machine.create (G.assemble g)

let exp_speed () =
  banner "Simulation throughput (paper: 415,540 simulated cycles/sec on 2006 HW)";
  let measure name make_step =
    let step = make_step () in
    (* warm up, then measure with the host clock *)
    for _ = 1 to 50_000 do step () done;
    let t0 = Sys.time () in
    let iters = 400_000 in
    for _ = 1 to iters do step () done;
    let dt = Sys.time () -. t0 in
    Printf.printf "%-10s %10.0f simulated cycles/sec (host)\n%!" name
      (float_of_int iters /. dt)
  in
  measure "ooo-k8" (fun () ->
      let m = hot_loop_machine () in
      let core = Ooo.create Config.k8_ptlsim m.Machine.env [| m.Machine.ctx |] in
      fun () ->
        Ooo.step core;
        m.Machine.env.Env.cycle <- m.Machine.env.Env.cycle + 1);
  measure "inorder" (fun () ->
      let m = hot_loop_machine () in
      let core = Inorder.create Config.k8_ptlsim m.Machine.env m.Machine.ctx in
      fun () -> ignore (Inorder.step_block core));
  measure "seq" (fun () ->
      let m = hot_loop_machine () in
      let core = Seqcore.create m.Machine.env m.Machine.ctx in
      fun () -> ignore (Seqcore.step_block core));
  (* a Bechamel microbenchmark of the single-cycle step primitive *)
  let open Bechamel in
  let test =
    Test.make ~name:"ooo_step"
      (let m = hot_loop_machine () in
       let core = Ooo.create Config.k8_ptlsim m.Machine.env [| m.Machine.ctx |] in
       Staged.stage (fun () ->
           Ooo.step core;
           m.Machine.env.Env.cycle <- m.Machine.env.Env.cycle + 1))
  in
  let benchmark =
    Benchmark.all
      (Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ())
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"sim" [ test ])
  in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock benchmark
  in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "bechamel: %s = %.0f ns/cycle\n%!" name est
      | _ -> ())
    results

(* ---------------------------------------------------------------- *)
(* Trace overhead: the disabled event-trace path must cost nothing   *)
(* ---------------------------------------------------------------- *)

let exp_trace_overhead () =
  banner "Trace overhead: disabled-path cost of the lib/trace instrumentation";
  Printf.printf
    "every pipeline stage is instrumented behind a single [!Trace.on] branch;\n\
     with tracing off that branch must disappear into measurement noise.\n%!";
  let measured_cycles = 300_000 in
  let run_once () =
    let m = hot_loop_machine () in
    let core = Ooo.create Config.k8_ptlsim m.Machine.env [| m.Machine.ctx |] in
    for _ = 1 to 30_000 do
      Ooo.step core;
      m.Machine.env.Env.cycle <- m.Machine.env.Env.cycle + 1
    done;
    let t0 = Sys.time () in
    for _ = 1 to measured_cycles do
      Ooo.step core;
      m.Machine.env.Env.cycle <- m.Machine.env.Env.cycle + 1
    done;
    Sys.time () -. t0
  in
  (* several tracing-off runs establish the noise floor (the two fastest
     of four, so one scheduling hiccup cannot fail the assertion) *)
  let off = List.init 4 (fun _ -> run_once ()) in
  List.iteri
    (fun i t ->
      Printf.printf "tracing off, run %d: %.3f s (%.0f cycles/s)\n%!" i t
        (float_of_int measured_cycles /. t))
    off;
  let sorted = List.sort compare off in
  let best, second =
    match sorted with a :: b :: _ -> (a, b) | _ -> assert false
  in
  let spread = 100.0 *. (second -. best) /. best in
  (* one run with capture live: ring armed, every event recorded *)
  Trace.configure ~capacity:(1 lsl 16) ();
  let on = run_once () in
  let captured = Trace.captured () in
  Trace.disable ();
  Printf.printf "tracing on:          %.3f s (%d events captured)\n" on captured;
  Printf.printf "off-path spread (two fastest off runs): %.2f%%\n" spread;
  Printf.printf "tracing-on delta vs fastest off run:    %+.1f%%\n%!"
    (100.0 *. (on -. best) /. best);
  if spread >= 2.0 then begin
    Printf.printf
      "FAIL: tracing-off runs differ by %.2f%% (>= 2%%); the disabled path is \
       not free\n%!"
      spread;
    exit 1
  end;
  Printf.printf "PASS: disabled trace path is within noise (< 2%%)\n%!"

(* ---------------------------------------------------------------- *)
(* Run-to-run variance (paper: <1% across perfctr re-runs)           *)
(* ---------------------------------------------------------------- *)

(* ---------------------------------------------------------------- *)
(* Guard overhead: cost of the invariant sweep at sampling intervals *)
(* ---------------------------------------------------------------- *)

let exp_guard_overhead () =
  banner "Guard overhead: invariant-sweep cost at sampling intervals {1, 64, 4096}";
  Printf.printf
    "the guard supervisor samples the full structural invariant set (ROB/LSQ\n\
     ordering, physreg conservation, iq slots, cache tag/LRU + MSHR, TLB)\n\
     every N core steps; the default N=64 must stay under 10%% overhead.\n%!";
  let module Guard = Ptl_guard.Guard in
  let measured_cycles = 200_000 in
  let run_once ~interval =
    let m = hot_loop_machine () in
    let inst =
      Registry.build "ooo" Config.k8_ptlsim m.Machine.env [| m.Machine.ctx |]
    in
    let inst =
      match interval with
      | None -> inst
      | Some n ->
        Guard.wrap
          ~config:{ Guard.default_config with Guard.interval = n }
          ~env:m.Machine.env ~ctx:m.Machine.ctx inst
    in
    for _ = 1 to 30_000 do
      inst.Registry.step ()
    done;
    let t0 = Sys.time () in
    for _ = 1 to measured_cycles do
      inst.Registry.step ()
    done;
    Sys.time () -. t0
  in
  (* two unguarded runs; the fastest is the baseline *)
  let base =
    match List.sort compare [ run_once ~interval:None; run_once ~interval:None ] with
    | b :: _ -> b
    | [] -> assert false
  in
  Printf.printf "guard off:            %.3f s (%.0f cycles/s)\n%!" base
    (float_of_int measured_cycles /. base);
  let default_over = ref 0.0 in
  List.iter
    (fun n ->
      let t = run_once ~interval:(Some n) in
      let over = 100.0 *. (t -. base) /. base in
      if n = 64 then default_over := over;
      Printf.printf "guard interval %-6d %.3f s (%.0f cycles/s)  %+.1f%%\n%!" n t
        (float_of_int measured_cycles /. t)
        over)
    [ 4096; 64; 1 ];
  if !default_over >= 10.0 then begin
    Printf.printf
      "FAIL: default sampling interval (64) costs %+.1f%% (>= 10%%)\n%!"
      !default_over;
    exit 1
  end;
  Printf.printf "PASS: default interval (64) overhead %+.1f%% < 10%%\n%!"
    !default_over

let exp_variance () =
  banner "Run-to-run variance of the 4-counter measurement protocol";
  Printf.printf
    "the paper re-ran the benchmark 4x (4 perfctrs at a time) and saw <1%%\n\
     variance; the simulator is fully deterministic so ours must be 0.\n";
  let small = { FS.default with FS.nfiles = 6; min_size = 2_000; max_size = 6_000 } in
  let results =
    List.init 3 (fun i ->
        let d, _ =
          Ptlmon.launch (RB.spec ~fileset:small ~snapshot_interval:None ())
        in
        Domain.submit d "-core seq -run";
        ignore (Domain.run ~max_cycles:2_000_000_000 d);
        let st = d.Domain.env.Env.stats in
        let c = Stats.get st "domain.cycles" in
        let n = Domain.insns d in
        Printf.printf "run %d: cycles=%d insns=%d\n%!" i c n;
        (c, n))
  in
  let all_equal = List.for_all (fun r -> r = List.hd results) results in
  Printf.printf "variance: %s\n%!" (if all_equal then "0.00% (identical)" else "NONZERO (bug!)")

(* ---------------------------------------------------------------- *)
(* Ablations                                                         *)
(* ---------------------------------------------------------------- *)

let exp_ablate_bbcache () =
  banner "Ablation: basic block cache (simulation speedup, §2.1)";
  let run ~flush_every_block =
    let m = hot_loop_machine () in
    let core = Seqcore.create m.Machine.env m.Machine.ctx in
    let t0 = Sys.time () in
    let blocks = 200_000 in
    for _ = 1 to blocks do
      if flush_every_block then Ptl_uop.Bbcache.clear core.Seqcore.bbcache;
      ignore (Seqcore.step_block core)
    done;
    Sys.time () -. t0
  in
  let cached = run ~flush_every_block:false in
  let uncached = run ~flush_every_block:true in
  Printf.printf "with bb cache:    %.3f s host time\n" cached;
  Printf.printf "decode-per-fetch: %.3f s host time\n" uncached;
  Printf.printf "speedup from the basic block cache: %.1fx\n%!" (uncached /. cached)

let store_load_machine () =
  (* stores immediately followed by dependent loads: the pattern load
     hoisting speculates on *)
  let g = G.create ~base:0x40_0000L () in
  G.li g G.rbp Machine.heap_base;
  G.lii g G.rcx 20_000;
  G.label g "top";
  G.st g ~base:G.rbp ~disp:0 G.rcx ();
  G.st g ~base:G.rbp ~disp:64 G.rcx ();
  (* an independent load the core could hoist past the stores *)
  G.ld g G.rax ~base:G.rbp ~disp:128 ();
  G.add g G.rbx G.rax;
  G.dec g G.rcx;
  G.jne g "top";
  G.ins g Insn.Hlt;
  Machine.create (G.assemble g)

let exp_ablate_hoist () =
  banner "Ablation: load hoisting (disabled for K8 in §5)";
  let run hoist =
    let m = store_load_machine () in
    let config = { Config.k8_ptlsim with Config.load_hoisting = hoist } in
    let core = Ooo.create config m.Machine.env [| m.Machine.ctx |] in
    let cycles = Ooo.run core ~max_cycles:50_000_000 in
    let st = m.Machine.env.Env.stats in
    (cycles, Stats.get st "ooo.issue.replays", Stats.get st "ooo.lsq.hoist_violations")
  in
  let c_off, replays_off, _ = run false in
  let c_on, replays_on, viol = run true in
  Printf.printf "no hoisting (K8):  %d cycles, %d replays\n" c_off replays_off;
  Printf.printf "with hoisting:     %d cycles, %d replays, %d violations\n" c_on replays_on viol;
  Printf.printf "hoisting speedup: %.2fx\n%!" (float_of_int c_off /. float_of_int c_on)

let exp_ablate_banks () =
  banner "Ablation: L1D bank-conflict enforcement (K8 8-bank pseudo dual-port, §5)";
  (* two loads per cycle to the same bank *)
  let g = G.create ~base:0x40_0000L () in
  G.li g G.rbp Machine.heap_base;
  G.lii g G.rcx 20_000;
  G.label g "top";
  G.ld g G.rax ~base:G.rbp ~disp:0 ();
  G.ld g G.rdx ~base:G.rbp ~disp:512 () (* same bank (bit 3..5 equal), different line *);
  G.add g G.rbx G.rax;
  G.add g G.rbx G.rdx;
  G.dec g G.rcx;
  G.jne g "top";
  G.ins g Insn.Hlt;
  let img = G.assemble g in
  let run banking =
    let m = Machine.create img in
    let config = { Config.k8_ptlsim with Config.enforce_banking = banking } in
    let core = Ooo.create config m.Machine.env [| m.Machine.ctx |] in
    let cycles = Ooo.run core ~max_cycles:50_000_000 in
    (cycles, Stats.get m.Machine.env.Env.stats "ooo.issue.bank_conflicts",
     Ooo.insns core)
  in
  let c_off, _, _ = run false in
  let c_on, conflicts, insns = run true in
  Printf.printf "banking off: %d cycles\n" c_off;
  Printf.printf "banking on:  %d cycles, %d conflicts (%d insns)\n" c_on conflicts insns;
  Printf.printf "conflict replays add %.1f%% cycles (paper: <2%% of accesses conflict)\n%!"
    (100.0 *. (float_of_int c_on -. float_of_int c_off) /. float_of_int c_off)

let exp_ablate_tlb () =
  banner "Ablation: 1-level DTLB (PTLsim) vs K8 2-level TLB + PDE cache";
  (* touch many pages so the 32-entry L1 TLB thrashes *)
  let g = G.create ~base:0x40_0000L () in
  G.li g G.rbp Machine.heap_base;
  G.lii g G.r12 50;
  G.label g "outer";
  G.lii g G.rcx 200 (* pages *);
  G.mov g G.rsi G.rbp;
  G.label g "top";
  G.ld g G.rax ~base:G.rsi ();
  G.add g G.rbx G.rax;
  G.addi g G.rsi 4096;
  G.dec g G.rcx;
  G.jne g "top";
  G.dec g G.r12;
  G.jne g "outer";
  G.ins g Insn.Hlt;
  let img = G.assemble g in
  let run dtlb =
    let m = Machine.create ~heap_pages:256 img in
    let config = { Config.k8_ptlsim with Config.dtlb } in
    let core = Ooo.create config m.Machine.env [| m.Machine.ctx |] in
    let cycles = Ooo.run core ~max_cycles:100_000_000 in
    let st = m.Machine.env.Env.stats in
    (cycles, Stats.get st "ooo.dcache.dtlb_misses", Stats.get st "ooo.dcache.dtlb_accesses")
  in
  let c1, m1, a1 = run Tlb.ptlsim_config in
  let c2, m2, a2 = run Tlb.k8_config in
  Printf.printf "PTLsim 1-level TLB: %d cycles, %d misses / %d accesses (%.2f%%)\n" c1 m1 a1
    (100.0 *. float_of_int m1 /. float_of_int (max 1 a1));
  Printf.printf "K8 2-level + PDE:   %d cycles, %d misses / %d accesses (%.2f%%)\n" c2 m2 a2
    (100.0 *. float_of_int m2 /. float_of_int (max 1 a2));
  Printf.printf
    "miss ratio 1-level/2-level: %.1fx (the paper's Table 1 DTLB row: +144%%)\n%!"
    (float_of_int m1 /. float_of_int (max 1 m2))

(* ---------------------------------------------------------------- *)
(* Virtual-memory scenarios (lib/vm)                                 *)
(* ---------------------------------------------------------------- *)

(* GUPS over a table far beyond L1-DTLB reach, measured four ways: 4K
   pages, 2M pages (one TLB entry covers the whole table), page-walk
   caches off vs on, and demand-paged under minios with the CLOCK
   reclaimer thrashing (swap + TLB shootdown IPIs). The budget asserts
   the headline VM result: hugepages must cut DTLB MPKI on GUPS.
   Writes BENCH_vm.json for the CI artifact. *)
let exp_vm () =
  banner "Virtual-memory scenarios: hugepages, walk caches, demand paging";
  let module Microbench = Ptl_workloads.Microbench in
  let slots = 1 lsl 16 (* 512 KB table: 128 pages vs 32 L1-DTLB entries *) in
  let steps = 60_000 * scale in
  let heap_pages = slots * 8 / 4096 in
  let run_bare ?(hugepages = false) () =
    let m =
      Machine.create ~heap_pages ~huge_heap:hugepages
        (Microbench.gups ~slots ~steps ())
    in
    let config = { Config.k8_ptlsim with Config.tlb_hugepages = hugepages } in
    let core = Ooo.create config m.Machine.env [| m.Machine.ctx |] in
    let cycles = Ooo.run core ~max_cycles:400_000_000 in
    let st = m.Machine.env.Env.stats in
    (cycles, max 1 (Ooo.insns core), Stats.get st "ooo.dcache.dtlb_misses")
  in
  let mpki misses insns = 1000.0 *. float_of_int misses /. float_of_int insns in
  let cpi cycles insns = float_of_int cycles /. float_of_int insns in
  let c4, i4, m4 = run_bare () in
  let c2, i2, m2 = run_bare ~hugepages:true () in
  Printf.printf "GUPS, %d slots x %d steps (out-of-order core, k8 config):\n" slots steps;
  Printf.printf "  4K pages:          %9d cycles, CPI %.3f, DTLB MPKI %7.2f\n"
    c4 (cpi c4 i4) (mpki m4 i4);
  Printf.printf "  2M pages:          %9d cycles, CPI %.3f, DTLB MPKI %7.2f\n"
    c2 (cpi c2 i2) (mpki m2 i2);
  (* the PWC contrast needs a latency-bound chain: on GUPS the OoO core
     overlaps walks across independent loads, so the saved walk loads
     vanish into ILP. A pointer chase serializes every load, putting the
     full 4-load walk on the critical path — what the walk caches trim. *)
  let pwc_entries = 16 in
  let chase_steps = 30_000 * scale in
  let run_chase ~pwc =
    let vaddr, blob = Microbench.chase_table ~slots ~seed:3 in
    let m =
      Machine.create ~heap_pages
        (Microbench.pointer_chase ~slots ~steps:chase_steps)
    in
    Machine.load_blob m.Machine.env m.Machine.ctx ~vaddr ~bytes:blob
      ~writable:true ~user:true;
    let config = { Config.k8_ptlsim with Config.pwc_entries = pwc } in
    let core = Ooo.create config m.Machine.env [| m.Machine.ctx |] in
    let cycles = Ooo.run core ~max_cycles:400_000_000 in
    (cycles, Stats.get m.Machine.env.Env.stats "ooo.dcache.dtlb_misses")
  in
  let cw0, _ = run_chase ~pwc:0 in
  let cw1, mw1 = run_chase ~pwc:pwc_entries in
  Printf.printf
    "pointer chase, %d slots x %d steps (every load's 4-load walk on the \
     critical path):\n"
    slots chase_steps;
  Printf.printf "  no walk caches:    %9d cycles\n" cw0;
  Printf.printf "  %2d-entry PWC:      %9d cycles\n" pwc_entries cw1;
  let walk_saved = cw0 - cw1 in
  let saved_per_miss = float_of_int walk_saved /. float_of_int (max 1 mw1) in
  Printf.printf
    "  walk caches save %d cycles (%.2f cycles per DTLB miss): the cached\n\
    \  PDP/PD tables turn 4-load walks into 1-2 loads\n%!"
    walk_saved saved_per_miss;
  (* demand paging: the same access pattern as a minios user process,
     first with frames to spare, then squeezed under a tight watermark
     so CLOCK reclaim + swap + shootdown IPIs carry the cost *)
  let run_demand ~watermark =
    let img =
      Microbench.gups ~base:Ptl_kernel.Abi.user_code_base
        ~heap:Ptl_kernel.Abi.user_heap_base ~user:true ~slots:(1 lsl 14)
        ~steps:(20_000 * scale) ()
    in
    let env = Env.create () in
    let ctx = Context.create ~vcpu_id:0 in
    let kc =
      {
        Kernel.default_config with
        Kernel.demand_paging = true;
        vm_watermark = watermark;
        vm_batch = 4;
      }
    in
    let k = Kernel.create ~config:kc env ctx in
    Kernel.register_program k ~name:"init" img;
    Kernel.boot k;
    let d = Domain.create ~kernel:k ~core:"ooo" ~config:Config.k8_ptlsim env ctx in
    Domain.submit d "-run";
    ignore (Domain.run ~max_cycles:800_000_000 d);
    if not (Kernel.is_shutdown k) then
      failwith "vm bench: demand-paged gups did not run to completion";
    let st = env.Env.stats in
    ( Stats.get st "domain.cycles",
      Stats.get st "vm.faults",
      Stats.get st "vm.evictions",
      Stats.get st "vm.shootdowns" )
  in
  let cyc_lazy, faults_lazy, _, _ = run_demand ~watermark:0 in
  let cyc_thrash, faults_thrash, evictions, shootdowns = run_demand ~watermark:16 in
  let shootdown_cost =
    float_of_int (cyc_thrash - cyc_lazy) /. float_of_int (max 1 shootdowns)
  in
  Printf.printf "demand-paged GUPS under minios (every fault a real #PF):\n";
  Printf.printf "  frames to spare:   %9d cycles, %d hard faults\n" cyc_lazy faults_lazy;
  Printf.printf
    "  watermark 16:      %9d cycles, %d faults, %d evictions, %d shootdown IPIs\n"
    cyc_thrash faults_thrash evictions shootdowns;
  Printf.printf
    "  reclaim cost: %.1f cycles per shootdown (swap-out + IPI + refault)\n%!"
    shootdown_cost;
  let huge_wins = mpki m2 i2 < mpki m4 i4 in
  let pwc_wins = walk_saved > 0 in
  let pass = huge_wins && pwc_wins && evictions > 0 && shootdowns > 0 in
  Printf.printf
    "budget (2M DTLB MPKI < 4K, PWC shortens walks, reclaim exercised): %s\n%!"
    (if pass then "PASS" else "FAIL");
  let oc = open_out "BENCH_vm.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"vm\",\n\
    \  \"scale\": %d,\n\
    \  \"gups\": { \"slots\": %d, \"steps\": %d },\n\
    \  \"pages_4k\": { \"cycles\": %d, \"insns\": %d, \"cpi\": %.4f, \
     \"dtlb_misses\": %d, \"dtlb_mpki\": %.3f },\n\
    \  \"pages_2m\": { \"cycles\": %d, \"insns\": %d, \"cpi\": %.4f, \
     \"dtlb_misses\": %d, \"dtlb_mpki\": %.3f },\n\
    \  \"pwc\": { \"entries\": %d, \"workload\": \"pointer_chase\", \
     \"cycles_off\": %d, \"cycles_on\": %d, \"dtlb_misses\": %d,\n\
    \            \"walk_cycles_saved\": %d, \"saved_per_miss\": %.3f },\n\
    \  \"demand\": { \"faults\": %d, \"thrash_faults\": %d, \"evictions\": \
     %d, \"shootdowns\": %d,\n\
    \              \"cycles_unconstrained\": %d, \"cycles_watermark16\": %d,\n\
    \              \"cycles_per_shootdown\": %.2f },\n\
    \  \"budget\": { \"hugepages_reduce_dtlb_mpki\": %b, \
     \"pwc_shortens_walks\": %b, \"reclaim_exercised\": %b },\n\
    \  \"pass\": %b\n\
     }\n"
    scale slots steps c4 i4 (cpi c4 i4) m4 (mpki m4 i4) c2 i2 (cpi c2 i2) m2
    (mpki m2 i2) pwc_entries cw0 cw1 mw1 walk_saved saved_per_miss faults_lazy
    faults_thrash evictions shootdowns cyc_lazy cyc_thrash shootdown_cost
    huge_wins pwc_wins
    (evictions > 0 && shootdowns > 0)
    pass;
  close_out oc;
  Printf.printf "wrote BENCH_vm.json\n%!";
  if not pass then exit 1

(* ---------------------------------------------------------------- *)
(* SMT scaling and coherence                                         *)
(* ---------------------------------------------------------------- *)

let lock_image iters =
  let g = G.create ~base:0x40_0000L () in
  G.li g G.rbp Machine.heap_base;
  G.lii g G.r12 iters;
  G.label g "again";
  G.label g "spin";
  G.lii g G.rax 1;
  G.ins g (Insn.Xchg (W64.B8, Insn.Mem (Insn.mem_bd G.rbp 0L), G.rax));
  G.cmpi g G.rax 0;
  G.jne g "spin";
  G.ld g G.rcx ~base:G.rbp ~disp:8 ();
  G.addi g G.rcx 1;
  G.st g ~base:G.rbp ~disp:8 G.rcx ();
  G.xor g G.rax G.rax;
  G.st g ~base:G.rbp G.rax ();
  (* non-critical work *)
  G.lii g G.rdx 20;
  G.label g "work";
  G.addi g G.rbx 1;
  G.dec g G.rdx;
  G.jne g "work";
  G.dec g G.r12;
  G.jne g "again";
  G.ins g Insn.Hlt;
  G.assemble g

let exp_smt () =
  banner "SMT scaling: shared-memory lock contention, 1..4 threads (§2.2, §4.4)";
  let iters = 400 in
  let img = lock_image iters in
  List.iter
    (fun threads ->
      let m = Machine.create img in
      let ctxs =
        Array.init threads (fun i ->
            if i = 0 then m.Machine.ctx
            else begin
              let c = Context.create ~vcpu_id:i in
              Context.restore c ~snapshot:m.Machine.ctx;
              c
            end)
      in
      let config = { Config.k8_ptlsim with Config.smt_threads = threads } in
      let core = Ooo.create config m.Machine.env ctxs in
      let cycles = Ooo.run core ~max_cycles:100_000_000 in
      let counter = Machine.read_mem m ~vaddr:(Int64.add Machine.heap_base 8L) ~size:W64.B8 in
      let st = m.Machine.env.Env.stats in
      Printf.printf
        "%d thread(s): %8d cycles, counter=%Ld (expect %d), interlock contended=%d\n%!"
        threads cycles counter (threads * iters)
        (Stats.get st "interlock.contended"))
    [ 1; 2; 4 ]

let exp_coherence () =
  banner "Multi-core: instant-visibility vs MOESI coherence (§4.4 / future work §7)";
  let img = lock_image 200 in
  let run coherence name =
    let m = Machine.create img in
    let ctx2 = Context.create ~vcpu_id:1 in
    Context.restore ctx2 ~snapshot:m.Machine.ctx;
    let mc = Multicore.create ~coherence Config.k8_ptlsim m.Machine.env [| m.Machine.ctx; ctx2 |] in
    let cycles = Multicore.run mc ~max_cycles:200_000_000 in
    let st = m.Machine.env.Env.stats in
    Printf.printf "%-22s %9d cycles, transfers=%d invalidations=%d\n%!" name cycles
      (Stats.get st "coherence.transfers")
      (Stats.get st "coherence.invalidations")
  in
  run Coherence.Instant "instant visibility:";
  run (Coherence.Moesi { transfer_latency = 20; invalidate_latency = 10 }) "MOESI (20cy transfer):"

(* ---------------------------------------------------------------- *)
(* Co-simulation and sampled simulation                              *)
(* ---------------------------------------------------------------- *)

let exp_cosim () =
  banner "Co-simulation self-validation (§2.3)";
  let g = G.create ~base:0x40_0000L () in
  G.li g G.rbp Machine.heap_base;
  G.lii g G.rcx 3000;
  G.lii g G.rbx 12345;
  G.label g "top";
  G.imuli g G.rbx 1103515245;
  G.addi g G.rbx 12345;
  G.mov g G.rax G.rbx;
  G.andi g G.rax 0xFF8;
  G.mov g G.rdx G.rbp;
  G.add g G.rdx G.rax;
  G.ld g G.rax ~base:G.rdx ();
  G.addi g G.rax 1;
  G.st g ~base:G.rdx G.rax ();
  G.dec g G.rcx;
  G.jne g "top";
  G.ins g Insn.Hlt;
  let img = G.assemble g in
  (match Cosim.validate ~config:Config.k8_ptlsim ~check_every:500 ~max_insns:20_000 img with
  | Cosim.Agree n ->
    Printf.printf "out-of-order core vs functional reference: AGREE over %d instructions\n%!" n
  | Cosim.Diverged { after_insns; diffs; _ } ->
    Printf.printf "DIVERGED after %d insns:\n  %s\n%!" after_insns (String.concat "\n  " diffs))

let exp_fuzz () =
  banner "Differential fuzzing throughput (random cosim, §2.3)";
  let module Fuzz = Ptl_fuzz.Harness in
  List.iter
    (fun core ->
      let t0 = Unix.gettimeofday () in
      let s = Fuzz.run ~core ~seed:42 ~iters:200 () in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf
        "%-8s %d programs, %d instructions, %d divergences  (%.1f progs/s, \
         %.0f insns/s)\n%!"
        core s.Fuzz.s_iters s.Fuzz.s_gen_insns
        (List.length s.Fuzz.s_divergences)
        (float_of_int s.Fuzz.s_iters /. dt)
        (float_of_int s.Fuzz.s_gen_insns /. dt))
    [ "ooo"; "inorder"; "smt" ];
  (* cost of catching + shrinking a planted bug *)
  let t0 = Unix.gettimeofday () in
  let s =
    Fuzz.run ~core:"ooo" ~inject:(Fuzz.flags_bug ~after:2) ~check_every:1
      ~seed:7 ~iters:20 ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  let shrunk =
    List.fold_left (fun a d -> a + d.Fuzz.d_insns) 0 s.Fuzz.s_divergences
  in
  Printf.printf
    "injected bug: %d/%d caught, mean shrunk size %.1f insns, %.2f s/case\n%!"
    (List.length s.Fuzz.s_divergences)
    s.Fuzz.s_iters
    (float_of_int shrunk /. float_of_int (max 1 (List.length s.Fuzz.s_divergences)))
    (dt /. float_of_int (max 1 (List.length s.Fuzz.s_divergences)))

let exp_sampling () =
  banner "Statistical sampled simulation (§2.3: spans of sim within native runs)";
  let make_domain cmd =
    let g = G.create () in
    G.jmp g "main";
    G.label g "main";
    G.ptlctl g cmd;
    G.li g G.rbp Ptl_kernel.Abi.user_heap_base;
    G.lii g G.rcx 120_000;
    G.label g "top";
    G.ld g G.rax ~base:G.rbp ();
    G.addi g G.rax 1;
    G.st g ~base:G.rbp G.rax ();
    G.addi g G.rbx 7;
    G.dec g G.rcx;
    G.jne g "top";
    G.sys_marker g 999;
    G.sys_exit g 0;
    let env = Env.create () in
    let ctx = Context.create ~vcpu_id:0 in
    let k = Kernel.create env ctx in
    Kernel.register_program k ~name:"init" (G.assemble g);
    Kernel.boot k;
    Domain.create ~kernel:k ~config:Config.k8_ptlsim env ctx
  in
  (* full simulation *)
  let d_full = make_domain "-core ooo -run" in
  ignore (Domain.run ~max_cycles:100_000_000 d_full);
  let full_insns = Stats.get d_full.Domain.env.Env.stats "ooo.commit.insns" in
  let full_cycles = Stats.get d_full.Domain.env.Env.stats "ooo.cycles" in
  let full_ipc = float_of_int full_insns /. float_of_int (max 1 full_cycles) in
  (* sampled: simulate 50k-insn spans out of every ~200k (repeat 3x) *)
  let d_s =
    make_domain
      "-core ooo -run -stopinsns 50k : -native : -run -stopinsns 50k : -native"
  in
  (* the command list runs its phases; schedule re-entry into sim later *)
  ignore (Domain.run ~max_cycles:100_000_000 d_s);
  let s_insns = Stats.get d_s.Domain.env.Env.stats "ooo.commit.insns" in
  let s_cycles = Stats.get d_s.Domain.env.Env.stats "ooo.cycles" in
  let s_ipc = float_of_int s_insns /. float_of_int (max 1 s_cycles) in
  Printf.printf "full simulation:   %8d insns, IPC %.3f\n" full_insns full_ipc;
  Printf.printf "sampled (2 spans): %8d simulated insns (of %d total), IPC %.3f\n"
    s_insns (Domain.insns d_s) s_ipc;
  Printf.printf "sampled IPC error vs full: %+.1f%%\n%!"
    (100.0 *. (s_ipc -. full_ipc) /. full_ipc)

(* The lib/sample supervisor on a long two-phase microbench: wall-clock
   speedup vs full detail, and aggregate-CPI error of the estimate.
   Writes BENCH_sample.json for the CI artifact. *)
let exp_sample () =
  banner "Sampled simulation engine (lib/sample): speedup and CPI error";
  (* a long homogeneous loop mixing memory, ALU and multiply work — the
     steady-state microbench shape where periodic sampling is exact up to
     boundary effects (phased workloads need periods incommensurate with
     the phase length; see --sample-period) *)
  let make_domain () =
    let g = G.create () in
    G.jmp g "main";
    G.label g "main";
    G.li g G.rbp Ptl_kernel.Abi.user_heap_base;
    G.lii g G.rcx (1_200_000 * scale);
    G.label g "top";
    G.ld g G.rax ~base:G.rbp ();
    G.addi g G.rax 1;
    G.st g ~base:G.rbp G.rax ();
    G.imuli g G.rbx 1103515245;
    G.addi g G.rbx 12345;
    G.dec g G.rcx;
    G.jne g "top";
    G.sys_marker g 999;
    G.sys_exit g 0;
    let env = Env.create () in
    let ctx = Context.create ~vcpu_id:0 in
    let k = Kernel.create env ctx in
    Kernel.register_program k ~name:"init" (G.assemble g);
    Kernel.boot k;
    Domain.create ~kernel:k ~core:"ooo" ~config:Config.k8_ptlsim env ctx
  in
  (* full-detail reference *)
  let d_full = make_domain () in
  Domain.submit d_full "-core ooo -run";
  let t0 = Unix.gettimeofday () in
  ignore (Domain.run ~max_cycles:2_000_000_000 d_full);
  let t_full = Unix.gettimeofday () -. t0 in
  let full_insns = Domain.insns d_full in
  let full_cycles = Stats.get d_full.Domain.env.Env.stats "domain.cycles" in
  let full_cpi = float_of_int full_cycles /. float_of_int (max 1 full_insns) in
  (* sampled run: ~1.2% of instructions in detail *)
  let schedule =
    { Sample.ff_insns = 2_470_000; warmup_insns = 10_000; measure_insns = 20_000 }
  in
  let d_s = make_domain () in
  let t0 = Unix.gettimeofday () in
  let r = Sample.run ~max_cycles:2_000_000_000 ~schedule d_s in
  let t_samp = Unix.gettimeofday () -. t0 in
  let speedup = t_full /. t_samp in
  let err_pct =
    100.0 *. (r.Sample.est_cycles -. float_of_int full_cycles)
    /. float_of_int (max 1 full_cycles)
  in
  Sample.report stdout r;
  Printf.printf "full detail: %d insns, %d cycles (CPI %.4f) in %.2f s\n"
    full_insns full_cycles full_cpi t_full;
  Printf.printf "sampled:     %d insns, %d measured in detail, %.2f s\n"
    r.Sample.total_insns r.Sample.measured_insns t_samp;
  Printf.printf "speedup %.1fx, estimated-cycle error %+.2f%%\n" speedup err_pct;
  let pass = speedup >= 10.0 && Float.abs err_pct <= 5.0 in
  Printf.printf "budget (>=10x, <=5%% error): %s\n%!"
    (if pass then "PASS" else "FAIL");
  let oc = open_out "BENCH_sample.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"sample\",\n\
    \  \"scale\": %d,\n\
    \  \"full\": { \"insns\": %d, \"cycles\": %d, \"cpi\": %.6f, \"seconds\": \
     %.3f },\n\
    \  \"sampled\": { \"insns\": %d, \"measured_insns\": %d, \"intervals\": \
     %d,\n\
    \               \"cpi\": %.6f, \"cpi_mean\": %.6f, \"cpi_ci95\": %.6f,\n\
    \               \"est_cycles\": %.0f, \"seconds\": %.3f },\n\
    \  \"speedup\": %.2f,\n\
    \  \"cpi_error_pct\": %.3f,\n\
    \  \"budget\": { \"min_speedup\": 10.0, \"max_cpi_error_pct\": 5.0 },\n\
    \  \"pass\": %b\n\
     }\n"
    scale full_insns full_cycles full_cpi t_full r.Sample.total_insns
    r.Sample.measured_insns
    (List.length r.Sample.intervals)
    r.Sample.cpi r.Sample.cpi_mean r.Sample.cpi_ci95 r.Sample.est_cycles
    t_samp speedup err_pct pass;
  close_out oc;
  Printf.printf "wrote BENCH_sample.json\n%!"

(* Checkpoint-parallel sampling (--sample-jobs): a bare-machine loop
   sampled three ways — the legacy serial supervisor, the parallel
   supervisor pinned to one job, and the parallel supervisor fanned
   across 4 worker domains. The jobs=1 and jobs=4 merged reports must
   be bit-identical; the speedup budget only applies when the host
   actually has the cores (recorded as host_cores in the JSON).
   Writes BENCH_parallel_sample.json for the CI artifact. *)
let exp_parallel_sample () =
  banner "Checkpoint-parallel sampled simulation (--sample-jobs)";
  (* bare machine (no minios kernel): the only checkpointable kind.
     detail-heavy schedule (80k timed insns per 480k period) so the
     replayed windows — the part the workers parallelize — dominate
     wall clock *)
  let make_domain () =
    let g = G.create () in
    G.li g G.rbp Machine.heap_base;
    G.lii g G.rcx (800_000 * scale);
    G.label g "top";
    G.ld g G.rax ~base:G.rbp ();
    G.addi g G.rax 1;
    G.st g ~base:G.rbp G.rax ();
    G.imuli g G.rbx 1103515245;
    G.addi g G.rbx 12345;
    G.dec g G.rcx;
    G.jne g "top";
    G.ins g Insn.Hlt;
    let m = Machine.create (G.assemble g) in
    Domain.create ~core:"ooo" ~config:Config.k8_ptlsim m.Machine.env
      m.Machine.ctx
  in
  let schedule =
    { Sample.ff_insns = 400_000; warmup_insns = 20_000; measure_insns = 60_000 }
  in
  let placement = Sample.Rand_offset 7 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let host_cores = Stdlib.Domain.recommended_domain_count () in
  Printf.printf "host cores (recommended_domain_count): %d\n%!" host_cores;
  let _r_serial, t_serial =
    time (fun () ->
        Sample.run ~placement ~max_cycles:2_000_000_000 ~schedule
          (make_domain ()))
  in
  Printf.printf "serial supervisor:        %.2f s\n%!" t_serial;
  let run_par jobs =
    time (fun () ->
        Sample.run_parallel ~placement ~max_cycles:2_000_000_000 ~jobs
          ~schedule (make_domain ()))
  in
  let r1, t_j1 = run_par 1 in
  Printf.printf "parallel, jobs=1:         %.2f s\n%!" t_j1;
  let r4, t_j4 = run_par 4 in
  Printf.printf "parallel, jobs=4:         %.2f s\n%!" t_j4;
  Sample.report stdout r4;
  let identical = r1 = r4 in
  let speedup_vs_serial = t_serial /. t_j4 in
  let speedup_vs_j1 = t_j1 /. t_j4 in
  Printf.printf "jobs=4 vs serial: %.2fx   jobs=4 vs jobs=1: %.2fx\n"
    speedup_vs_serial speedup_vs_j1;
  Printf.printf "jobs=1 vs jobs=4 merged reports: %s\n%!"
    (if identical then "BIT-IDENTICAL" else "DIFFER (bug!)");
  (* the speedup budget needs cores to spread across; on smaller hosts
     only the equivalence half of the budget is enforceable. Measured
     against jobs=1, which isolates the fan-out from the serial-vs-
     capture engine difference: with delta checkpoints the capture pass
     is cheap, so 4 replay workers must win at least 1.5x *)
  let speedup_applicable = host_cores >= 4 in
  let pass =
    identical && ((not speedup_applicable) || speedup_vs_j1 >= 1.5)
  in
  Printf.printf "budget (bit-identical%s): %s\n%!"
    (if speedup_applicable then " and >=1.5x vs jobs=1"
     else Printf.sprintf " only; >=1.5x waived, host has %d core(s)" host_cores)
    (if pass then "PASS" else "FAIL");
  let oc = open_out "BENCH_parallel_sample.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"parallel_sample\",\n\
    \  \"scale\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"placement\": \"%s\",\n\
    \  \"schedule\": { \"ff_insns\": %d, \"warmup_insns\": %d, \
     \"measure_insns\": %d },\n\
    \  \"intervals\": %d,\n\
    \  \"serial_seconds\": %.3f,\n\
    \  \"jobs1_seconds\": %.3f,\n\
    \  \"jobs4_seconds\": %.3f,\n\
    \  \"speedup_jobs4_vs_serial\": %.2f,\n\
    \  \"speedup_jobs4_vs_jobs1\": %.2f,\n\
    \  \"reports_bit_identical\": %b,\n\
    \  \"sampled\": { \"cpi\": %.6f, \"cpi_mean\": %.6f, \"cpi_ci95\": \
     %.6f, \"est_cycles\": %.0f },\n\
    \  \"budget\": { \"min_speedup_vs_jobs1\": 1.5, \"speedup_applicable\": \
     %b },\n\
    \  \"pass\": %b\n\
     }\n"
    scale host_cores
    (Sample.placement_to_string placement)
    schedule.Sample.ff_insns schedule.Sample.warmup_insns
    schedule.Sample.measure_insns
    (List.length r4.Sample.intervals)
    t_serial t_j1 t_j4 speedup_vs_serial speedup_vs_j1 identical
    r4.Sample.cpi r4.Sample.cpi_mean r4.Sample.cpi_ci95 r4.Sample.est_cycles
    speedup_applicable pass;
  close_out oc;
  Printf.printf "wrote BENCH_parallel_sample.json\n%!";
  if not identical then exit 1

(* The distributed sampling fleet (optlsim capture/serve/work/replay):
   one master pass spills a durable interval store, then the same store
   is consumed three ways — a serial in-process replay, a 2-worker-
   process fleet over the unix-socket job server, and a fully cached
   re-run. All three merged results must be bit-identical; the fleet
   speedup budget only applies when the host has the cores; the delta
   checkpoints must be measurably smaller than full images. Writes
   BENCH_fleet.json for the CI artifact. *)
let exp_fleet () =
  banner "Distributed sampling fleet (capture / serve / work)";
  let make_domain () =
    let g = G.create () in
    G.li g G.rbp Machine.heap_base;
    G.lii g G.rcx (400_000 * scale);
    G.label g "top";
    G.ld g G.rax ~base:G.rbp ();
    G.addi g G.rax 1;
    G.st g ~base:G.rbp G.rax ();
    G.imuli g G.rbx 1103515245;
    G.addi g G.rbx 12345;
    G.dec g G.rcx;
    G.jne g "top";
    G.ins g Insn.Hlt;
    let m = Machine.create (G.assemble g) in
    Domain.create ~core:"ooo" ~config:Config.k8_ptlsim m.Machine.env
      m.Machine.ctx
  in
  let schedule =
    { Sample.ff_insns = 200_000; warmup_insns = 10_000; measure_insns = 30_000 }
  in
  let placement = Sample.Rand_offset 7 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let host_cores = Stdlib.Domain.recommended_domain_count () in
  Printf.printf "host cores (recommended_domain_count): %d\n%!" host_cores;
  let dir = Filename.temp_file "optlsim_fleet" "" in
  Sys.remove dir;
  let sock = dir ^ ".sock" in
  let cr, t_capture =
    time (fun () ->
        Sample.run_capture ~placement ~max_cycles:2_000_000_000 ~schedule
          (make_domain ()))
  in
  let store =
    match
      Store.create ~dir ~workload:"bench-fleet" ~core:"ooo" ~schedule
        ~placement:(Sample.placement_to_string placement) cr
        ~config:Config.k8_ptlsim
    with
    | Ok s -> s
    | Error e -> failwith (Store.error_to_string e)
  in
  let intervals = Array.length cr.Sample.cr_deltas in
  Printf.printf
    "capture: %.2f s, %d interval(s), deltas %d bytes vs full %d bytes \
     (%.1fx smaller)\n%!"
    t_capture intervals cr.Sample.cr_delta_bytes cr.Sample.cr_full_bytes
    (float_of_int cr.Sample.cr_full_bytes
    /. float_of_int (max 1 cr.Sample.cr_delta_bytes));
  (* the fleet first (cache is empty), two real worker processes *)
  let workers = 2 in
  let sv, t_fleet =
    time (fun () ->
        let pids =
          List.init workers (fun _ ->
              match Unix.fork () with
              | 0 ->
                (* child: one fleet worker, then straight out — no
                   shared exit handlers, no bench epilogue *)
                (match Fleet.work ~retries:150 ~connect:sock () with
                | Ok _ -> Unix._exit 0
                | Error msg ->
                  prerr_endline ("fleet worker: " ^ msg);
                  Unix._exit 1)
              | pid -> pid)
        in
        let sv = Fleet.serve ~lease_timeout:60.0 ~socket:sock store in
        List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
        sv)
  in
  Printf.printf "fleet, %d worker processes: %.2f s (%d replayed, %d \
                 re-queued)\n%!"
    workers t_fleet sv.Fleet.sv_replayed sv.Fleet.sv_requeued;
  (* serial baseline on the same store, cache emptied first *)
  Array.iter
    (fun f ->
      if String.length f >= 7 && String.sub f 0 7 = "result-" then
        Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  let rp_serial, t_serial =
    time (fun () ->
        match Fleet.replay ~jobs:1 store with
        | Ok rp -> rp
        | Error e -> failwith (Store.error_to_string e))
  in
  Printf.printf "serial replay (jobs=1):   %.2f s\n%!" t_serial;
  (* cached re-run: everything from the (checkpoint, config) cache *)
  let rp_cached, t_cached =
    time (fun () ->
        match Fleet.replay ~jobs:1 store with
        | Ok rp -> rp
        | Error e -> failwith (Store.error_to_string e))
  in
  Printf.printf "cached re-run:            %.2f s (%d/%d from cache)\n%!"
    t_cached rp_cached.Fleet.rp_cached intervals;
  Sample.report stdout sv.Fleet.sv_result;
  let identical =
    sv.Fleet.sv_result = rp_serial.Fleet.rp_result
    && sv.Fleet.sv_result = rp_cached.Fleet.rp_result
  in
  let speedup = t_serial /. t_fleet in
  let delta_shrinks = cr.Sample.cr_delta_bytes < cr.Sample.cr_full_bytes in
  Printf.printf "fleet vs serial: %.2fx   merged reports: %s\n%!" speedup
    (if identical then "BIT-IDENTICAL" else "DIFFER (bug!)");
  let speedup_applicable = host_cores >= 2 in
  let pass =
    identical && delta_shrinks
    && ((not speedup_applicable) || speedup >= 1.2)
  in
  Printf.printf "budget (bit-identical, deltas < full%s): %s\n%!"
    (if speedup_applicable then " and >=1.2x vs serial"
     else Printf.sprintf "; speedup waived, host has %d core(s)" host_cores)
    (if pass then "PASS" else "FAIL");
  let oc = open_out "BENCH_fleet.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"fleet\",\n\
    \  \"scale\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"workers\": %d,\n\
    \  \"schedule\": { \"ff_insns\": %d, \"warmup_insns\": %d, \
     \"measure_insns\": %d },\n\
    \  \"intervals\": %d,\n\
    \  \"capture_seconds\": %.3f,\n\
    \  \"capture_delta_bytes\": %d,\n\
    \  \"capture_full_bytes\": %d,\n\
    \  \"delta_shrink_factor\": %.2f,\n\
    \  \"serial_seconds\": %.3f,\n\
    \  \"fleet_seconds\": %.3f,\n\
    \  \"cached_seconds\": %.3f,\n\
    \  \"speedup_fleet_vs_serial\": %.2f,\n\
    \  \"replayed_by_fleet\": %d,\n\
    \  \"leases_requeued\": %d,\n\
    \  \"reports_bit_identical\": %b,\n\
    \  \"sampled\": { \"cpi\": %.6f, \"cpi_mean\": %.6f, \"cpi_ci95\": \
     %.6f, \"est_cycles\": %.0f },\n\
    \  \"budget\": { \"min_speedup\": 1.2, \"speedup_applicable\": %b, \
     \"deltas_smaller_than_full\": %b },\n\
    \  \"pass\": %b\n\
     }\n"
    scale host_cores workers schedule.Sample.ff_insns
    schedule.Sample.warmup_insns schedule.Sample.measure_insns intervals
    t_capture cr.Sample.cr_delta_bytes cr.Sample.cr_full_bytes
    (float_of_int cr.Sample.cr_full_bytes
    /. float_of_int (max 1 cr.Sample.cr_delta_bytes))
    t_serial t_fleet t_cached speedup sv.Fleet.sv_replayed
    sv.Fleet.sv_requeued identical sv.Fleet.sv_result.Sample.cpi
    sv.Fleet.sv_result.Sample.cpi_mean sv.Fleet.sv_result.Sample.cpi_ci95
    sv.Fleet.sv_result.Sample.est_cycles speedup_applicable delta_shrinks
    pass;
  close_out oc;
  Printf.printf "wrote BENCH_fleet.json\n%!";
  if not (identical && delta_shrinks) then exit 1

(* ---------------------------------------------------------------- *)
(* Matched-pair design-space sweep: paired vs independent CIs         *)
(* ---------------------------------------------------------------- *)

(* Plant a small memory-latency delta and show that matched pairs
   (every leg replaying the *same* captured intervals — common random
   numbers) resolve it while independent runs at the same interval
   budget cannot. The workload alternates cache-friendly phases (one
   hot line) with memory-hostile phases (64-byte stride over a region
   twice the tiny config's L2), so the per-interval CPIs have a large
   workload variance that swamps the planted delta in the independent
   formula but cancels exactly in the per-interval differences.
   Writes BENCH_sweep.json for the CI artifact. *)
let exp_sweep () =
  banner "Matched-pair design-space sweep (paired vs independent CIs)";
  let make_domain () =
    let g = G.create () in
    G.li g G.rbp Machine.heap_base;
    G.lii g G.rdx (24 * scale);
    G.label g "phase";
    (* friendly: hammer one line *)
    G.lii g G.rcx 3_000;
    G.label g "fr";
    G.ld g G.rax ~base:G.rbp ();
    G.addi g G.rax 1;
    G.st g ~base:G.rbp G.rax ();
    G.dec g G.rcx;
    G.jne g "fr";
    (* hostile: stride over 128 KB (the tiny L2 holds 64 KB) *)
    G.li g G.rsi Machine.heap_base;
    G.lii g G.rcx 2_048;
    G.label g "ho";
    G.ld g G.rax ~base:G.rsi ();
    G.addi g G.rsi 64;
    G.dec g G.rcx;
    G.jne g "ho";
    G.dec g G.rdx;
    G.jne g "phase";
    G.ins g Insn.Hlt;
    let m = Machine.create (G.assemble g) in
    Domain.create ~core:"ooo" ~config:Config.tiny m.Machine.env m.Machine.ctx
  in
  let schedule =
    { Sample.ff_insns = 30_000; warmup_insns = 1_000; measure_insns = 2_000 }
  in
  let placement = Sample.Rand_offset 11 in
  let cr =
    Sample.run_capture ~placement ~max_cycles:2_000_000_000 ~schedule
      (make_domain ())
  in
  let dir = Filename.temp_file "optlsim_sweep" "" in
  Sys.remove dir;
  let store =
    match
      Store.create ~dir ~workload:"bench-sweep" ~core:"ooo" ~schedule
        ~placement:(Sample.placement_to_string placement) cr
        ~config:Config.tiny
    with
    | Ok s -> s
    | Error e -> failwith (Store.error_to_string e)
  in
  let intervals = Array.length cr.Sample.cr_deltas in
  Printf.printf "capture: %d interval(s) into %s\n%!" intervals dir;
  (* the planted delta: tiny's memory is 40 cycles away; the legs move
     it +/-2 cycles, a few percent of CPI on this workload *)
  let spec_text = "mem.latency=38,42" in
  let spec =
    match Sweep.parse spec_text with
    | Ok s -> s
    | Error e -> failwith (Sweep.error_to_string e)
  in
  let run () =
    match Sweep.run ~jobs:1 store spec with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  let r1 = run () in
  let r2 = run () in
  Sweep.render stdout r1;
  let rendered_identical = Sweep.render_string r1 = Sweep.render_string r2 in
  let cached_rerun =
    List.for_all (fun rk -> rk.Sweep.rk.Sweep.lr_replayed = 0) r2.Sweep.rep_ranked
  in
  let legs = List.filter (fun rk -> not rk.Sweep.rk_base) r1.Sweep.rep_ranked in
  let best = List.hd r1.Sweep.rep_ranked in
  let better_first = best.Sweep.rk.Sweep.lr_leg.Sweep.l_name = "mem.latency=38" in
  let paired_resolve =
    List.for_all (fun rk -> Paired.paired_excludes_zero rk.Sweep.rk_vs_base) legs
  in
  let indep_blind =
    List.for_all
      (fun rk -> not (Paired.indep_excludes_zero rk.Sweep.rk_vs_base))
      legs
  in
  let base_cpi = r1.Sweep.rep_base.Sweep.lr_result.Sample.cpi in
  let planted_pct rk =
    100.0 *. Float.abs rk.Sweep.rk_vs_base.Paired.delta_mean /. base_cpi
  in
  List.iter
    (fun rk ->
      let cmp = rk.Sweep.rk_vs_base in
      Printf.printf
        "%s: dCPI %+.4f (%.1f%% of base), paired CI %.4f %s zero, \
         independent CI %.4f %s zero (%.1fx tighter)\n%!"
        rk.Sweep.rk.Sweep.lr_leg.Sweep.l_name cmp.Paired.delta_mean
        (planted_pct rk) cmp.Paired.delta_ci95
        (if Paired.paired_excludes_zero cmp then "EXCLUDES" else "includes")
        cmp.Paired.indep_ci95
        (if Paired.indep_excludes_zero cmp then "EXCLUDES" else "includes")
        (cmp.Paired.indep_ci95 /. Float.max 1e-9 cmp.Paired.delta_ci95))
    legs;
  let pass =
    better_first && paired_resolve && indep_blind && rendered_identical
    && cached_rerun
  in
  Printf.printf
    "budget (planted-better leg first, paired CIs exclude zero, \
     independent CIs do not, cached re-run byte-identical): %s\n%!"
    (if pass then "PASS" else "FAIL");
  let leg_json rk =
    let cmp = rk.Sweep.rk_vs_base in
    Printf.sprintf
      "{ \"leg\": \"%s\", \"rank\": %d, \"cpi\": %.6f, \"delta_mean\": \
       %.6f, \"delta_pct_of_base\": %.3f, \"paired_ci95\": %.6f, \
       \"indep_ci95\": %.6f, \"pairs\": %d, \"verdict\": \"%s\", \
       \"paired_excludes_zero\": %b, \"indep_excludes_zero\": %b }"
      rk.Sweep.rk.Sweep.lr_leg.Sweep.l_name rk.Sweep.rk_rank
      rk.Sweep.rk.Sweep.lr_result.Sample.cpi cmp.Paired.delta_mean
      (planted_pct rk) cmp.Paired.delta_ci95 cmp.Paired.indep_ci95
      cmp.Paired.n
      (Paired.verdict_to_string rk.Sweep.rk_verdict)
      (Paired.paired_excludes_zero cmp)
      (Paired.indep_excludes_zero cmp)
  in
  let oc = open_out "BENCH_sweep.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"sweep\",\n\
    \  \"scale\": %d,\n\
    \  \"spec\": \"%s\",\n\
    \  \"schedule\": { \"ff_insns\": %d, \"warmup_insns\": %d, \
     \"measure_insns\": %d },\n\
    \  \"intervals\": %d,\n\
    \  \"base_cpi\": %.6f,\n\
    \  \"legs\": [\n    %s\n  ],\n\
    \  \"better_leg_ranked_first\": %b,\n\
    \  \"paired_cis_exclude_zero\": %b,\n\
    \  \"independent_cis_include_zero\": %b,\n\
    \  \"cached_rerun_byte_identical\": %b,\n\
    \  \"pass\": %b\n\
     }\n"
    scale spec_text schedule.Sample.ff_insns schedule.Sample.warmup_insns
    schedule.Sample.measure_insns intervals base_cpi
    (String.concat ",\n    " (List.map leg_json legs))
    better_first paired_resolve indep_blind
    (rendered_identical && cached_rerun)
    pass;
  close_out oc;
  Printf.printf "wrote BENCH_sweep.json\n%!";
  if not pass then exit 1

(* ---------------------------------------------------------------- *)
(* Self-healing fleet under injected faults                          *)
(* ---------------------------------------------------------------- *)

(* The robustness budget: (a) a worker killed mid-delivery must cost
   only re-queued work — the merged result stays bit-identical to a
   clean fleet run; (b) a poisoned interval record must be quarantined
   after the bounded retry budget and the run must terminate with an
   explicitly degraded result, never a hang or a silently-wrong report.
   Chaos schedules are armed in forked worker processes only, so the
   server's own store writes stay clean. Writes BENCH_chaos.json. *)
let exp_chaos () =
  banner "Self-healing fleet (chaos harness)";
  let module Chaos = Ptl_chaos.Chaos in
  let make_domain () =
    let g = G.create () in
    G.li g G.rbp Machine.heap_base;
    G.lii g G.rcx (150_000 * scale);
    G.label g "top";
    G.ld g G.rax ~base:G.rbp ();
    G.addi g G.rax 1;
    G.st g ~base:G.rbp G.rax ();
    G.imuli g G.rbx 1103515245;
    G.addi g G.rbx 12345;
    G.dec g G.rcx;
    G.jne g "top";
    G.ins g Insn.Hlt;
    let m = Machine.create (G.assemble g) in
    Domain.create ~core:"ooo" ~config:Config.k8_ptlsim m.Machine.env
      m.Machine.ctx
  in
  let schedule =
    { Sample.ff_insns = 60_000; warmup_insns = 5_000; measure_insns = 10_000 }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let dir = Filename.temp_file "optlsim_chaos" "" in
  Sys.remove dir;
  let sock = dir ^ ".sock" in
  let cr, t_capture =
    time (fun () ->
        Sample.run_capture ~max_cycles:2_000_000_000 ~schedule (make_domain ()))
  in
  let store =
    match
      Store.create ~dir ~workload:"bench-chaos" ~core:"ooo" ~schedule
        ~placement:"fixed" cr ~config:Config.k8_ptlsim
    with
    | Ok s -> s
    | Error e -> failwith (Store.error_to_string e)
  in
  let intervals = Array.length cr.Sample.cr_deltas in
  Printf.printf "capture: %.2f s, %d interval(s)\n%!" t_capture intervals;
  let clear_result_cache () =
    Array.iter
      (fun f ->
        if String.length f >= 7 && String.sub f 0 7 = "result-" then
          Sys.remove (Filename.concat dir f))
      (Sys.readdir dir)
  in
  let spawn_worker ?chaos () =
    match Unix.fork () with
    | 0 ->
      (match chaos with
      | Some spec -> (
        match Chaos.parse spec with
        | Ok rules -> Chaos.arm rules
        | Error e ->
          prerr_endline ("chaos worker: " ^ e);
          Unix._exit 1)
      | None -> ());
      (match Fleet.work ~retries:150 ~connect:sock () with
      | Ok _ -> Unix._exit 0
      | Error msg ->
        prerr_endline ("fleet worker: " ^ msg);
        Unix._exit 1
      | exception Chaos.Killed point ->
        (* the injected process death — the crash under test *)
        prerr_endline ("chaos worker killed at " ^ point);
        Unix._exit 0)
    | pid -> pid
  in
  let serve ?(max_failures = 3) () =
    Fleet.serve ~lease_timeout:60.0 ~max_failures ~socket:sock store
  in
  (* clean fleet baseline: one worker process, empty cache *)
  let sv_clean, t_clean =
    time (fun () ->
        let pid = spawn_worker () in
        let sv = serve () in
        ignore (Unix.waitpid [] pid);
        sv)
  in
  Printf.printf "clean fleet run:   %.2f s (%d replayed)\n%!" t_clean
    sv_clean.Fleet.sv_replayed;
  (* chaos run: one worker dies delivering its second result; a clean
     worker drains what the victim dropped *)
  clear_result_cache ();
  let sv_chaos, t_chaos =
    time (fun () ->
        let victim = spawn_worker ~chaos:"kill@work.done:2" () in
        let drain = spawn_worker () in
        let sv = serve () in
        ignore (Unix.waitpid [] victim);
        ignore (Unix.waitpid [] drain);
        sv)
  in
  let identical_when_clean = sv_chaos.Fleet.sv_result = sv_clean.Fleet.sv_result in
  let requeued = sv_chaos.Fleet.sv_requeued in
  let wasted_fraction = float_of_int requeued /. float_of_int intervals in
  let recovery_latency = max 0.0 (t_chaos -. t_clean) in
  Printf.printf
    "chaos fleet run:   %.2f s (%d re-queued, +%.2f s vs clean) — merged \
     report %s\n%!"
    t_chaos requeued recovery_latency
    (if identical_when_clean then "BIT-IDENTICAL" else "DIFFERS (bug!)");
  (* poison run: corrupt one interval record (first payload byte), the
     fleet must quarantine exactly it within max_failures attempts *)
  clear_result_cache ();
  let poison = min 1 (intervals - 1) in
  let path = Store.interval_path store poison in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd 23 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 1 '\000') 0 1);
  Unix.close fd;
  let max_failures = 2 in
  let sv_poison, t_poison =
    time (fun () ->
        let pid = spawn_worker () in
        let sv = serve ~max_failures () in
        ignore (Unix.waitpid [] pid);
        sv)
  in
  let poison_quarantined =
    List.map fst sv_poison.Fleet.sv_quarantined = [ poison ]
  in
  Printf.printf "poison fleet run:  %.2f s — quarantined %s (expected [%d])\n%!"
    t_poison
    (String.concat ","
       (List.map (fun (i, _) -> string_of_int i) sv_poison.Fleet.sv_quarantined))
    poison;
  Sample.report_degraded stdout ~count:intervals
    ~quarantined:sv_poison.Fleet.sv_quarantined sv_poison.Fleet.sv_result;
  let pass = identical_when_clean && poison_quarantined in
  Printf.printf "budget (identical under kill, poison quarantined): %s\n%!"
    (if pass then "PASS" else "FAIL");
  let oc = open_out "BENCH_chaos.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"chaos\",\n\
    \  \"scale\": %d,\n\
    \  \"intervals\": %d,\n\
    \  \"capture_seconds\": %.3f,\n\
    \  \"clean_seconds\": %.3f,\n\
    \  \"chaos_seconds\": %.3f,\n\
    \  \"poison_seconds\": %.3f,\n\
    \  \"requeued\": %d,\n\
    \  \"wasted_fraction\": %.4f,\n\
    \  \"recovery_latency_s\": %.3f,\n\
    \  \"identical_when_clean\": %b,\n\
    \  \"poison_quarantined\": %b,\n\
    \  \"quarantine_retry_budget\": %d,\n\
    \  \"pass\": %b\n\
     }\n"
    scale intervals t_capture t_clean t_chaos t_poison requeued
    wasted_fraction recovery_latency identical_when_clean poison_quarantined
    max_failures pass;
  close_out oc;
  Printf.printf "wrote BENCH_chaos.json\n%!";
  if not pass then exit 1

(* ---------------------------------------------------------------- *)

let experiments =
  [
    ("table1", exp_table1);
    ("fig2", exp_fig2);
    ("fig3", exp_fig3);
    ("speed", exp_speed);
    ("trace-overhead", exp_trace_overhead);
    ("guard-overhead", exp_guard_overhead);
    ("variance", exp_variance);
    ("ablate-bbcache", exp_ablate_bbcache);
    ("ablate-hoist", exp_ablate_hoist);
    ("ablate-banks", exp_ablate_banks);
    ("ablate-tlb", exp_ablate_tlb);
    ("vm", exp_vm);
    ("smt", exp_smt);
    ("coherence", exp_coherence);
    ("cosim", exp_cosim);
    ("sampling", exp_sampling);
    ("sample", exp_sample);
    ("parallel-sample", exp_parallel_sample);
    ("fleet", exp_fleet);
    ("sweep", exp_sweep);
    ("chaos", exp_chaos);
    ("fuzz", exp_fuzz);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let chosen =
    match args with
    | [] -> experiments
    | names ->
      List.filter_map
        (fun n ->
          match List.assoc_opt n experiments with
          | Some f -> Some (n, f)
          | None ->
            Printf.eprintf "unknown experiment %s (have: %s)\n" n
              (String.concat ", " (List.map fst experiments));
            None)
        names
  in
  List.iter (fun (_, f) -> f ()) chosen;
  Printf.printf "\nall requested experiments completed.\n%!"
