(* Native-mode co-simulation demo (paper §2.3): a guest program switches
   itself between native mode and the cycle-accurate core with ptlcall
   command lists, and the out-of-order core is validated instruction-by-
   instruction against the functional reference.

     dune exec examples/cosim_demo.exe *)

open Ptlsim

let pointer_chase_image () =
  let g = Gasm.create ~base:0x40_0000L () in
  Gasm.li g Gasm.rbp Machine.heap_base;
  Gasm.lii g Gasm.rcx 5_000;
  Gasm.lii g Gasm.rbx 7;
  Gasm.label g "top";
  Gasm.imuli g Gasm.rbx 1103515245;
  Gasm.addi g Gasm.rbx 12345;
  Gasm.mov g Gasm.rax Gasm.rbx;
  Gasm.andi g Gasm.rax 0xFF8;
  Gasm.mov g Gasm.rdx Gasm.rbp;
  Gasm.add g Gasm.rdx Gasm.rax;
  Gasm.ld g Gasm.rax ~base:Gasm.rdx ();
  Gasm.addi g Gasm.rax 1;
  Gasm.st g ~base:Gasm.rdx Gasm.rax ();
  Gasm.dec g Gasm.rcx;
  Gasm.jne g "top";
  Gasm.ins g Insn.Hlt;
  Gasm.assemble g

let () =
  let image = pointer_chase_image () in

  (* 1. lockstep validation: does the cycle-accurate core compute exactly
        what the functional reference computes? *)
  print_endline "validating the out-of-order core against the functional reference...";
  (match Cosim.validate ~config:Config.k8_ptlsim ~check_every:1000 ~max_insns:30_000 image with
  | Cosim.Agree n -> Printf.printf "AGREE across %d instructions.\n" n
  | Cosim.Diverged { after_insns; diffs; _ } ->
    Printf.printf "diverged after %d instructions:\n  %s\n" after_insns
      (String.concat "\n  " diffs);
    (* the paper's binary-search isolation *)
    let first = Cosim.bisect ~config:Config.k8_ptlsim image ~lo:0 ~hi:after_insns in
    Printf.printf "first divergent instruction: #%d\n" first);

  (* 2. checkpoint + deterministic replay (the §4.2 methodology) *)
  let m = Machine.create image in
  let ck = Checkpoint.capture m.Machine.env m.Machine.ctx in
  ignore (Machine.run_seq m);
  let first_result = Machine.gpr m Gasm.rbx in
  Checkpoint.restore ck m.Machine.env m.Machine.ctx;
  ignore (Machine.run_seq m);
  Printf.printf "checkpoint replay deterministic: %b\n"
    (Machine.gpr m Gasm.rbx = first_result);

  (* 3. trigger-driven mode switching inside a full-system domain *)
  let g = Gasm.create () in
  Gasm.jmp g "main";
  Gasm.label g "main";
  Gasm.ptlctl g "-core ooo -run -stopinsns 5k : -native";
  Gasm.lii g Gasm.rcx 50_000;
  Gasm.label g "spin";
  Gasm.addi g Gasm.rax 3;
  Gasm.dec g Gasm.rcx;
  Gasm.jne g "spin";
  Gasm.sys_marker g 999;
  Gasm.sys_exit g 0;
  let env = Env.create () in
  let ctx = Context.create ~vcpu_id:0 in
  let k = Kernel.create env ctx in
  Kernel.register_program k ~name:"init" (Gasm.assemble g);
  Kernel.boot k;
  let d = Domain.create ~kernel:k ~config:Config.k8_ptlsim env ctx in
  ignore (Domain.run ~max_cycles:500_000_000 d);
  let st = env.Env.stats in
  Printf.printf
    "mode switching: %d switches; %d instructions simulated cycle-accurately,\n\
     %d executed in native mode (same virtual clock throughout).\n"
    (Statstree.get st "domain.mode_switches")
    (Statstree.get st "ooo.commit.insns")
    (Statstree.get st "domain.native_insns")
