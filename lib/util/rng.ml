(** Deterministic xoshiro256** pseudo-random number generator.

    Everything in the simulator that needs randomness (random cache
    replacement, workload file generation, property-test corpora) uses this
    generator so runs are reproducible from a single seed — the paper's
    determinism requirement ("cycle accurate and fully deterministic for
    debugging purposes", §2.1). *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64, used to expand the seed into the four state words. *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix state in
  let s1 = splitmix state in
  let s2 = splitmix state in
  let s3 = splitmix state in
  { s0; s1; s2; s3 }

(** Next raw 64-bit value. *)
let next64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(** Uniform integer in [0, bound). [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.unsigned_rem (next64 t) (Int64.of_int bound))

(** Uniform bool. *)
let bool t = Int64.logand (next64 t) 1L = 1L

(** Uniform float in [0, 1). *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next64 t) 11) /. 9007199254740992.0

(** Pick a uniformly random element of a non-empty array. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

(* ---- checkpointing ---- *)

(** The four xoshiro state words, so a generator mid-stream can be
    checkpointed and resumed exactly (sampled-simulation checkpoints
    carry the cache-replacement RNG cursors). *)
type snapshot = { sn0 : int64; sn1 : int64; sn2 : int64; sn3 : int64 }

let snapshot t = { sn0 = t.s0; sn1 = t.s1; sn2 = t.s2; sn3 = t.s3 }

let restore t ~snapshot =
  t.s0 <- snapshot.sn0;
  t.s1 <- snapshot.sn1;
  t.s2 <- snapshot.sn2;
  t.s3 <- snapshot.sn3

(** Structural equality of the generator state with a snapshot. *)
let equal_snapshot t s =
  t.s0 = s.sn0 && t.s1 = s.sn1 && t.s2 = s.sn2 && t.s3 = s.sn3
