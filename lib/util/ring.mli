(** Fixed-capacity circular FIFO queue with random access by age.

    Pipeline structures (fetch queues, reorder buffers, load/store queues)
    are bounded in-order queues that also need oldest-to-youngest scans;
    this ring provides exactly that. *)

type 'a t

(** [create capacity] raises [Invalid_argument] when [capacity <= 0]. *)
val create : int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

(** Free slots remaining. *)
val remaining : 'a t -> int

(** Append at the tail; raises [Failure] when full. *)
val push : 'a t -> 'a -> unit

(** Append at the tail; when full, overwrites the oldest element instead
    of failing (event-log semantics). Returns [true] iff an element was
    overwritten. *)
val push_overwrite : 'a t -> 'a -> bool

(** Remove and return the oldest element; raises [Failure] when empty. *)
val pop : 'a t -> 'a

val peek : 'a t -> 'a option

(** [get t i] is the element [i] places from the oldest (0 = oldest);
    raises [Invalid_argument] out of range. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

(** Remove the [n] youngest elements (pipeline annulment). *)
val drop_youngest : 'a t -> int -> unit

val clear : 'a t -> unit

(** Oldest-to-youngest iteration. *)
val iteri : 'a t -> (int -> 'a -> unit) -> unit

val iter : 'a t -> ('a -> unit) -> unit
val fold : 'a t -> 'b -> ('b -> 'a -> 'b) -> 'b

(** First element (oldest first) satisfying the predicate, with its age
    index. *)
val find_first : 'a t -> ('a -> bool) -> (int * 'a) option

val to_list : 'a t -> 'a list
