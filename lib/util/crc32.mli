(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven. Used by
    the durable interval store to checksum every on-disk payload. *)

(** The CRC of the empty string; the accumulator to start from. *)
val empty : int32

(** Fold [len] bytes of [s] at [pos] into a running CRC. Chaining
    [update] calls over consecutive slices equals {!string} of their
    concatenation. *)
val update : int32 -> string -> pos:int -> len:int -> int32

(** CRC-32 of a whole string. *)
val string : string -> int32
