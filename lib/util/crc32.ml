(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven, pure
    OCaml. The durable interval store (lib/store) checksums every
    payload with this so bit rot and truncation are detected before a
    corrupt checkpoint can silently poison a replay. *)

(* Reflected polynomial 0xEDB88320; the classic 256-entry table,
   computed once at module load. *)
let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

(** Fold [len] bytes of [s] starting at [pos] into a running CRC
    (start from {!empty}; the stored value is the finalized CRC). *)
let update crc s ~pos ~len =
  let table = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (String.unsafe_get s i)))) 0xFFl)
    in
    c := Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let empty = 0l

(** CRC-32 of a whole string. *)
let string s = update empty s ~pos:0 ~len:(String.length s)
