(** Deterministic xoshiro256** pseudo-random number generator. Everything
    needing randomness (replacement policies, workload generation) uses
    this so runs reproduce exactly from a seed — the paper's determinism
    requirement (§2.1). *)

type t

val create : int -> t
val next64 : t -> int64

(** Uniform in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** Checkpoint of the generator state (the four xoshiro words), so
    mid-stream generators resume exactly across save/restore. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot:snapshot -> unit
val equal_snapshot : t -> snapshot -> bool
