(** Fixed-capacity circular FIFO queue with random access by age.

    Pipeline structures (fetch queues, reorder buffers, load/store queues)
    are all bounded in-order queues that also need to be scanned from oldest
    to youngest; this ring provides exactly that. Slots hold ['a option]
    internally so [create] needs no dummy element. *)

type 'a t = {
  slots : 'a option array;
  mutable head : int;  (* index of the oldest element *)
  mutable count : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create";
  { slots = Array.make capacity None; head = 0; count = 0 }

let capacity t = Array.length t.slots
let length t = t.count
let is_empty t = t.count = 0
let is_full t = t.count = Array.length t.slots
let remaining t = Array.length t.slots - t.count

(** Append at the tail. Raises [Failure] when full. *)
let push t v =
  if is_full t then failwith "Ring.push: full";
  let idx = (t.head + t.count) mod Array.length t.slots in
  t.slots.(idx) <- Some v;
  t.count <- t.count + 1

(** Append at the tail; when full, overwrite (drop) the oldest element.
    This is the bounded-event-log discipline of the paper's §2.3 ring
    buffer: the window always holds the most recent [capacity] entries.
    Returns [true] when an old element was overwritten. *)
let push_overwrite t v =
  let cap = Array.length t.slots in
  if t.count = cap then begin
    t.slots.(t.head) <- Some v;
    t.head <- (t.head + 1) mod cap;
    true
  end
  else begin
    t.slots.((t.head + t.count) mod cap) <- Some v;
    t.count <- t.count + 1;
    false
  end

(** Remove and return the oldest element. Raises [Failure] when empty. *)
let pop t =
  if is_empty t then failwith "Ring.pop: empty";
  match t.slots.(t.head) with
  | None -> assert false
  | Some v ->
    t.slots.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.slots;
    t.count <- t.count - 1;
    v

let peek t =
  if is_empty t then None
  else t.slots.(t.head)

(** [get t i] is the element [i] places from the oldest (0 = oldest). *)
let get t i =
  if i < 0 || i >= t.count then invalid_arg "Ring.get";
  match t.slots.((t.head + i) mod Array.length t.slots) with
  | None -> assert false
  | Some v -> v

let set t i v =
  if i < 0 || i >= t.count then invalid_arg "Ring.set";
  t.slots.((t.head + i) mod Array.length t.slots) <- Some v

(** Remove the [n] youngest elements (used for pipeline annulment). *)
let drop_youngest t n =
  if n < 0 || n > t.count then invalid_arg "Ring.drop_youngest";
  for i = t.count - n to t.count - 1 do
    t.slots.((t.head + i) mod Array.length t.slots) <- None
  done;
  t.count <- t.count - n

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.count <- 0

(** Iterate oldest-to-youngest. *)
let iteri t f =
  for i = 0 to t.count - 1 do
    f i (get t i)
  done

let iter t f = iteri t (fun _ v -> f v)

let fold t init f =
  let acc = ref init in
  iter t (fun v -> acc := f !acc v);
  !acc

(** First element (oldest-first) satisfying [f], with its age index. *)
let find_first t f =
  let rec go i =
    if i >= t.count then None
    else
      let v = get t i in
      if f v then Some (i, v) else go (i + 1)
  in
  go 0

let to_list t = List.rev (fold t [] (fun acc v -> v :: acc))
