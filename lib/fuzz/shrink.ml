(** Delta-debugging minimization (greedy ddmin) over an array of program
    elements.

    [minimize ~test arr] returns a (not necessarily unique) locally
    minimal sub-array of [arr] on which [test] still returns [true],
    assuming [test arr = true]. Chunks of decreasing size are removed
    while the failure keeps reproducing; candidates are tried in a fixed
    order, so the result is deterministic for a deterministic [test]. *)

let remove arr lo len =
  Array.append (Array.sub arr 0 lo)
    (Array.sub arr (lo + len) (Array.length arr - lo - len))

let minimize ~test arr =
  let rec go arr chunk =
    let n = Array.length arr in
    if n <= 1 || chunk < 1 then arr
    else begin
      let rec try_from i =
        if i >= n then None
        else begin
          let len = min chunk (n - i) in
          let cand = remove arr i len in
          if Array.length cand > 0 && test cand then Some cand
          else try_from (i + chunk)
        end
      in
      match try_from 0 with
      | Some cand -> go cand (max 1 (min chunk (Array.length cand / 2)))
      | None -> if chunk = 1 then arr else go arr (chunk / 2)
    end
  in
  go arr (max 1 (Array.length arr / 2))
