(** Differential fuzzing harness: generated programs run on a timed core,
    the sequential reference and (by default) the spec-table oracle;
    divergences are shrunk and reported with a majority verdict.

    Each iteration derives a per-iteration seed from the master seed,
    generates a program ({!Fuzzgen}), and co-simulates it
    ({!Ptl_hyper.Cosim}) on identical initial state, comparing committed
    register/flag/memory state at instruction-count checkpoints; in
    parallel the same image runs in lockstep against the independent
    spec-derived reference interpreter ({!Ptl_oracle.Cross}). On
    divergence of either pair the failing slot sequence is minimized
    with delta debugging ({!Shrink}), the minimal case is re-run with
    {!Ptl_trace} armed and per-instruction checkpoints, and a
    self-contained text report is emitted: the shrunk program, both
    architectural states at the first divergent instruction, the trace
    window leading up to it, the majority verdict tagging the odd model
    out, and a replay command line.

    With three models the blame is no longer ambiguous: two of
    oracle/seq/timed agreeing outvotes the third, and when seq and timed
    both diverge from each other the oracle's verdict breaks the tie.

    Everything is deterministic: two runs with the same seed and flags
    produce byte-identical reports. *)

module Rng = Ptl_util.Rng
module Context = Ptl_arch.Context
module Config = Ptl_ooo.Config
module Registry = Ptl_ooo.Registry
module Trace = Ptl_trace.Trace
module Cosim = Ptl_hyper.Cosim
module Flags = Ptl_isa.Flags
module Guard = Ptl_guard.Guard
module Spec = Ptl_spec.Spec
module Cross = Ptl_oracle.Cross

(* The scratch window every generated memory access lands in; compared
   quadword by quadword at each checkpoint. The private stack above it is
   not compared directly, but any stack corruption surfaces through the
   registers popped from it. *)
let mem_ranges = [ (Fuzzgen.scratch_base, Fuzzgen.scratch_bytes) ]

(* Step budget per model run: generated programs commit a few thousand
   instructions at most, so a model needing this many cycles is wedged. *)
let step_budget = 2_000_000

(** Deliberately planted core bug for harness self-tests and
    [--fuzz-inject]: once [after] instructions have committed, the model
    core's flags writes are mutated (CF forced set) after every step.
    The factory shape matches {!Cosim.validate}'s [inject]. *)
let flags_bug ~after () : Context.t -> unit =
 fun ctx ->
  if ctx.Context.insns_committed >= after then
    ctx.Context.flags <- ctx.Context.flags lor Flags.cf_mask

type divergence = {
  d_iter : int;  (** iteration that found it *)
  d_iter_seed : int;  (** per-iteration generator seed *)
  d_orig_insns : int;  (** static size before shrinking *)
  d_insns : int;  (** static size after shrinking *)
  d_after : int;  (** first divergent committed-instruction count *)
  d_pair : string;  (** which model pair disagreed first, e.g. "seq vs ooo" *)
  d_verdict : string;  (** majority verdict; [""] when the oracle is off *)
  d_listing : string list;  (** shrunk program disassembly *)
  d_diffs : string list;  (** architectural diffs of the diverging pair *)
  d_trace : string list;  (** trace window leading up to the mismatch *)
  d_report : string;  (** the full rendered report *)
}

type summary = {
  s_seed : int;
  s_core : string;
  s_iters : int;
  s_gen_insns : int;  (** total static instructions generated *)
  s_oracle_checked : int;  (** iterations cross-checked against the oracle *)
  s_oracle_unsupported : int;  (** oracle bailed: no spec row (should be 0) *)
  s_divergences : divergence list;  (** in iteration order *)
}

let default_len = 40
let default_check_every = 32

let render_report ~seed ~core ~len ~classes ~replay_extra d =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "=== optlsim fuzz divergence ===\n";
  pf "master seed     : %d\n" seed;
  pf "iteration       : %d\n" d.d_iter;
  pf "iteration seed  : %d\n" d.d_iter_seed;
  pf "core            : %s (vs seq reference)\n" core;
  pf "original program: %d instructions\n" d.d_orig_insns;
  pf "shrunk program  : %d instructions\n" d.d_insns;
  pf "first divergence: after %d committed instructions\n" d.d_after;
  pf "diverging pair  : %s\n" d.d_pair;
  if d.d_verdict <> "" then pf "verdict         : %s\n" d.d_verdict;
  pf "\n-- shrunk program --\n";
  List.iter (fun l -> pf "%s\n" l) d.d_listing;
  pf "\n-- architectural diffs (%s) --\n" d.d_pair;
  List.iter (fun l -> pf "%s\n" l) d.d_diffs;
  if d.d_trace <> [] then begin
    pf "\n-- trace window (last %d events before the mismatch) --\n"
      (List.length d.d_trace);
    List.iter (fun l -> pf "%s\n" l) d.d_trace
  end;
  let classes_flag =
    if classes = Fuzzgen.all_classes then ""
    else
      Printf.sprintf " --fuzz-classes %s"
        (String.concat "," (List.map Fuzzgen.cls_name classes))
  in
  pf "\nreplay: optlsim fuzz --fuzz-seed %d --fuzz-iters %d --fuzz-len %d --core %s%s%s\n"
    seed (d.d_iter + 1) len core classes_flag replay_extra;
  Buffer.contents buf

(** Run [iters] fuzzing iterations against [core]. [progress] is called
    after every iteration with (iteration, divergences-so-far).
    [replay_extra] is appended verbatim to the replay command line in
    reports (the CLI passes its [--fuzz-inject] flag through it).
    [oracle] (on by default) adds the spec-table reference interpreter as
    a third model, cross-checked in lockstep against the sequential core
    every iteration; [table] substitutes a mutated spec table (the
    planted-bug self-tests use {!Ptl_spec.Spec.drop_flag_write}). *)
let run ?(config = Config.tiny) ?(core = "ooo") ?inject ?guard
    ?(oracle = true) ?(table = Spec.table)
    ?(classes = Fuzzgen.all_classes) ?(len = default_len)
    ?(check_every = default_check_every) ?(trace_capacity = 4096)
    ?(trace_classes = Trace.all_classes) ?(trace_lines = 64)
    ?(replay_extra = "") ?(progress = fun _ _ -> ()) ~seed ~iters () =
  (* Guard-detected lockups and invariant violations surface as [Hung]
     stops and become shrinkable divergences; the diagnostic bundle is
     folded into the report rather than spammed to stderr on every ddmin
     probe, and degrade mode is never allowed here (falling back to the
     seq core would make the model its own reference). *)
  let guard_sink =
    match guard with Some _ -> Some (open_out "/dev/null") | None -> None
  in
  let wrap =
    match (guard, guard_sink) with
    | Some g, Some sink ->
      let g = { g with Guard.degrade = false } in
      Some (fun env ctx inst -> Guard.wrap ~config:g ~out:sink ~env ~ctx inst)
    | _ -> None
  in
  let master = Rng.create seed in
  let gen_insns = ref 0 in
  let oracle_checked = ref 0 in
  let oracle_unsup = ref 0 in
  let divs = ref [] in
  let pair_timed = Printf.sprintf "seq vs %s" core in
  let pair_oracle = "oracle vs seq" in
  for iter = 0 to iters - 1 do
    let iter_seed =
      Int64.to_int (Int64.logand (Rng.next64 master) 0x3FFF_FFFF_FFFF_FFFFL)
    in
    let rng = Rng.create iter_seed in
    let prog = Fuzzgen.generate rng ~classes ~len in
    let orig_insns = Fuzzgen.insn_count prog in
    gen_insns := !gen_insns + orig_insns;
    (* Commit bound: static size times the worst dynamic expansion (loop
       iterations, REP counts), plus slack. *)
    let max_insns = (orig_insns * 64) + 256 in
    let check slots =
      let img = Fuzzgen.build (Fuzzgen.with_slots prog slots) in
      Cosim.validate ~config ~core ?inject ?wrap ~budget:step_budget
        ~mem_ranges ~check_every ~max_insns img
    in
    let diverged slots =
      match check slots with Cosim.Agree _ -> false | Cosim.Diverged _ -> true
    in
    (* The third model: lockstep oracle-vs-seq over the same image. An
       [Unsupported] stop means the generator emitted something outside
       the spec table — counted, never reported as a divergence (the
       conformance coverage gate owns that invariant). *)
    let cross slots =
      let img = Fuzzgen.build (Fuzzgen.with_slots prog slots) in
      Cross.check ~table ~max_insns ~mem_ranges img
    in
    let cross_diverged slots =
      match cross slots with Cross.Diverged _ -> true | _ -> false
    in
    let timed_div =
      match check prog.Fuzzgen.slots with
      | Cosim.Agree _ -> false
      | Cosim.Diverged _ -> true
    in
    let oracle_div =
      if not oracle then false
      else begin
        incr oracle_checked;
        match cross prog.Fuzzgen.slots with
        | Cross.Agree _ -> false
        | Cross.Diverged _ -> true
        | Cross.Unsupported _ ->
          incr oracle_unsup;
          false
      end
    in
    if timed_div || oracle_div then begin
      (* Shrink against whichever pair(s) diverged; the disjunction keeps
         shrinking productive when the minimal case only trips one. *)
      let test =
        if timed_div && oracle_div then
          fun slots -> diverged slots || cross_diverged slots
        else if timed_div then diverged
        else cross_diverged
      in
      let slots = Shrink.minimize ~test prog.Fuzzgen.slots in
      (* Polish: if ddmin got down to one slot, prefer the smallest single
         original slot that still reproduces. *)
      let slots =
        if Array.length slots <> 1 then slots
        else begin
          let w (_, s) = Fuzzgen.slot_insns s in
          let singles =
            List.stable_sort
              (fun a b -> compare (w a) (w b))
              (Array.to_list prog.Fuzzgen.slots)
          in
          match
            List.find_opt
              (fun s -> w s < w slots.(0) && test [| s |])
              singles
          with
          | Some s -> [| s |]
          | None -> slots
        end
      in
      let shrunk = Fuzzgen.with_slots prog slots in
      let img = Fuzzgen.build shrunk in
      (* Precise replay of the minimal case: per-instruction checkpoints
         with the trace subsystem armed, so the report pins the first
         divergent instruction and carries the pipeline window. *)
      Trace.configure ~capacity:trace_capacity ~classes:trace_classes ();
      let final_t =
        Cosim.validate ~config ~core ?inject ?wrap ~budget:step_budget
          ~mem_ranges ~trace_lines ~check_every:1 ~max_insns img
      in
      Trace.disable ();
      let final_o = if oracle then Some (cross slots) else None in
      let t_div = match final_t with Cosim.Diverged _ -> true | _ -> false in
      let o_div =
        match final_o with Some (Cross.Diverged _) -> true | _ -> false
      in
      (* The diverging pair named in the report: seq-vs-timed when that
         pair reproduced on the shrunk case (it carries the pipeline
         trace), otherwise oracle-vs-seq. *)
      let pair, after, diffs, trace =
        match (final_t, final_o) with
        | Cosim.Diverged { after_insns; diffs; trace }, _ ->
          (pair_timed, after_insns, diffs, trace)
        | _, Some (Cross.Diverged { after; diffs }) ->
          (pair_oracle, after, diffs, [])
        | Cosim.Agree n, _ ->
          ( pair_timed,
            n,
            [ "divergence did not reproduce at per-instruction checkpoints" ],
            [] )
      in
      (* Majority verdict across the three models. Seq-vs-timed and
         oracle-vs-seq are already known; when both pairs disagree the
         remaining edge — oracle vs timed — breaks the tie. *)
      let verdict =
        if not oracle then ""
        else
          match (t_div, o_div) with
          | true, false ->
            Printf.sprintf "oracle and seq agree; %s is the odd model out" core
          | false, true ->
            Printf.sprintf
              "seq and %s agree; the oracle is the odd model out (spec-table \
               bug, or a bug both cores share)"
              core
          | true, true ->
            let model_m, _ =
              Cosim.run_model ~config ~core
                ?inject:(Option.map (fun f -> f ()) inject)
                ?wrap ~budget:step_budget img ~n:max_insns
            in
            let st = Cross.run_oracle ~table ~max_insns img in
            if Cross.final_diffs ~mem_ranges st model_m = [] then
              Printf.sprintf "oracle and %s agree; seq is the odd model out"
                core
            else "all three models disagree; no majority"
          | false, false -> "divergence did not reproduce on the shrunk case"
      in
      let d =
        {
          d_iter = iter;
          d_iter_seed = iter_seed;
          d_orig_insns = orig_insns;
          d_insns = Fuzzgen.insn_count shrunk;
          d_after = after;
          d_pair = pair;
          d_verdict = verdict;
          d_listing = Fuzzgen.listing img;
          d_diffs = diffs;
          d_trace = trace;
          d_report = "";
        }
      in
      let d =
        { d with d_report = render_report ~seed ~core ~len ~classes ~replay_extra d }
      in
      divs := d :: !divs
    end;
    progress iter (List.length !divs)
  done;
  (match guard_sink with Some c -> close_out c | None -> ());
  {
    s_seed = seed;
    s_core = core;
    s_iters = iters;
    s_gen_insns = !gen_insns;
    s_oracle_checked = !oracle_checked;
    s_oracle_unsupported = !oracle_unsup;
    s_divergences = List.rev !divs;
  }

(** Write one report file per divergence under [dir] (created if absent),
    named [div-seed<S>-iter<N>.txt]. Returns the paths written. *)
let write_reports ~dir summary =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun d ->
      let file =
        Filename.concat dir
          (Printf.sprintf "div-seed%d-iter%04d.txt" summary.s_seed d.d_iter)
      in
      let oc = open_out file in
      output_string oc d.d_report;
      close_out oc;
      file)
    summary.s_divergences

(** Validate an [optlsim fuzz] invocation before any simulation runs.
    Fuzz mode owns the trace subsystem (it arms capture around the
    divergence replay and embeds the window in the report), so only
    [--trace-buf] and [--trace-filter] are honoured; the other
    [--trace-*] flags contradict it and are rejected with an
    explanation. Returns the first problem as [Error msg]. *)
let check_flags ~iters ~len ~classes ~core ~inject ~guard_degrade ~trace_start
    ~trace_stop ~trace_rip ~trace_trigger ~trace_out ~trace_timeline () =
  let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
  let* () =
    if iters < 1 then Error "--fuzz-iters must be at least 1" else Ok ()
  in
  let* () = if len < 1 then Error "--fuzz-len must be at least 1" else Ok () in
  let* () =
    match Fuzzgen.parse_classes classes with
    | _ -> Ok ()
    | exception Invalid_argument msg -> Error ("--fuzz-classes: " ^ msg)
  in
  let* () =
    if core = "seq" then
      Error
        "--core seq: the sequential core is the fuzzing reference; pick a \
         timed core (ooo, inorder, smt)"
    else if not (List.mem core (Registry.names ())) then
      Error
        (Printf.sprintf "--core %s: unknown core model (have: %s)" core
           (String.concat ", " (List.sort compare (Registry.names ()))))
    else Ok ()
  in
  let* () =
    match inject with
    | Some n when n < 1 -> Error "--fuzz-inject must be at least 1"
    | _ -> Ok ()
  in
  let reject flag msg = Error (flag ^ " contradicts fuzz mode: " ^ msg) in
  let* () =
    if guard_degrade then
      reject "--guard-degrade"
        "degrading to the seq core would make the model its own reference \
         and mask the very findings fuzzing exists to surface"
    else Ok ()
  in
  let* () =
    match trace_start with
    | Some _ ->
      reject "--trace-start"
        "divergence replays re-simulate from cycle 0; the window is armed \
         automatically"
    | None -> Ok ()
  in
  let* () =
    match trace_stop with
    | Some _ ->
      reject "--trace-stop"
        "the capture window must extend to the mismatch; it cannot be cut \
         off at a fixed cycle"
    | None -> Ok ()
  in
  let* () =
    if trace_rip <> "" then
      reject "--trace-rip"
        "the divergence window must show every instruction, not a single \
         address"
    else Ok ()
  in
  let* () =
    match String.lowercase_ascii trace_trigger with
    | "" | "immediate" -> Ok ()
    | _ ->
      reject "--trace-trigger"
        "divergence replays capture from the start of the shrunk program"
  in
  let* () =
    if trace_out <> [] then
      reject "--trace-out"
        "reports embed the trace window; use --fuzz-report-dir to write \
         them to files"
    else Ok ()
  in
  if trace_timeline > 0 then
    reject "--trace-timeline"
      "reports embed the trace window as event lines; timelines apply to \
       rsync/compute runs"
  else Ok ()
