(** Deterministic random program generator for differential fuzzing.

    Generates x86lite-64 instruction sequences weighted over the decoder's
    supported opcode space — flags-heavy ALU chains, unaligned loads and
    stores, forward branches and bounded loops, REP string ops, LOCK'd
    read-modify-writes, x87/SSE scalar FP — under invariants that make
    every program safe to run bare on both the functional reference and
    the timed cores:

    - [r15] is pinned to the scratch heap base and [rsp] to a private
      stack at the top of the heap; generated code never writes either,
      so every memory access stays inside the mapped heap.
    - Inter-slot control flow only branches {e forward}, and loops/REP
      counts are bounded, so every program terminates at [hlt].
    - Divide setup bundles pin dividend and divisor so no #DE is raised,
      and 8-bit multiply/divide (unimplemented microcode) is excluded.
    - [rdtsc]/[rdpmc] are excluded: their results depend on the timing
      model, so the cores would diverge legitimately.
    - [syscall]/[int]/[iret] are excluded: the bare machine has no
      handlers.

    A program is an array of {e slots}, each a short self-contained
    instruction bundle labelled by its original slot id. Branch targets
    name slot ids, not addresses, so delta-debugging can drop slots and
    relink the survivors (a removed branch target resolves to the next
    surviving slot, or the exit). *)

module Rng = Ptl_util.Rng
module W64 = Ptl_util.W64
module Insn = Ptl_isa.Insn
module Regs = Ptl_isa.Regs
module Flags = Ptl_isa.Flags
module Asm = Ptl_isa.Asm
module Encode = Ptl_isa.Encode
module Decode = Ptl_isa.Decode
module Disasm = Ptl_isa.Disasm
module Machine = Ptl_arch.Machine

(* ---------- instruction classes ---------- *)

type cls = Alu | Mem | Branch | Strings | Lock | Muldiv | Fp | Stack | Misc

let all_classes = [ Alu; Mem; Branch; Strings; Lock; Muldiv; Fp; Stack; Misc ]

let cls_name = function
  | Alu -> "alu" | Mem -> "mem" | Branch -> "branch" | Strings -> "string"
  | Lock -> "lock" | Muldiv -> "muldiv" | Fp -> "fp" | Stack -> "stack"
  | Misc -> "misc"

let cls_of_name = function
  | "alu" -> Alu | "mem" -> Mem | "branch" -> Branch | "string" -> Strings
  | "lock" -> Lock | "muldiv" -> Muldiv | "fp" -> Fp | "stack" -> Stack
  | "misc" -> Misc
  | other ->
    invalid_arg
      (Printf.sprintf
         "unknown instruction class %S (expected %s)" other
         (String.concat ", " (List.map cls_name all_classes)))

(** Parse a comma-separated class list, e.g. ["alu,mem,branch"]. The empty
    string selects every class; unknown names raise [Invalid_argument]. *)
let parse_classes spec =
  if spec = "" then all_classes
  else
    String.split_on_char ',' spec
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s -> cls_of_name (String.lowercase_ascii (String.trim s)))

(* Generation is weighted toward the flags-heavy integer core of the ISA,
   where microarchitectural bugs (renaming, forwarding, partial-flag
   merges) are most likely to hide. *)
let weight = function
  | Alu -> 4 | Mem -> 4 | Branch -> 2 | Strings -> 1 | Lock -> 1
  | Muldiv -> 1 | Fp -> 1 | Stack -> 1 | Misc -> 1

(* ---------- program representation ---------- *)

type slot =
  | Straight of Insn.t list
  | Fwd of Flags.cond option * int  (* forward branch to slot id *)
  | Loop of { ctr : Regs.gpr; iters : int; body : Insn.t list }
  | CallLeaf of int  (* call leaf function k *)

type program = {
  slots : (int * slot) array;  (* (original slot id, bundle) *)
  leaves : Insn.t list array;  (* leaf function bodies ([ret] appended) *)
}

let code_base = 0x40_0000L
let scratch_base = Machine.heap_base

(** Bytes of scratch memory the generated programs read and write (and
    the harness compares); the stack lives above this window. *)
let scratch_bytes = 16 * 1024

(* Private stack near the top of the default 256 KiB heap, clear of the
   compared scratch window. Push depth is tiny (balanced pushes plus one
   call frame), so 4 KiB of headroom below the mapping top is plenty. *)
let stack_top = Int64.add scratch_base 0x3_F000L

(* ---------- operand generators ---------- *)

(* Registers the generator may write: everything but rsp and the pinned
   scratch-base register r15. *)
let reg_pool = [| 0; 1; 2; 3; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14 |]

(* Divide bundles load rax/rdx explicitly, so the divisor register must
   be neither. *)
let div_reg_pool = [| 1; 3; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14 |]

let reg rng = reg_pool.(Rng.int rng (Array.length reg_pool))
let xmm rng = Rng.int rng Regs.num_xmms
let any_size rng = Rng.choose rng [| W64.B1; W64.B2; W64.B4; W64.B8 |]
let wide_size rng = Rng.choose rng [| W64.B2; W64.B4; W64.B8 |]
let any_cond rng = Flags.cond_of_code (Rng.int rng 16)

(* Immediates mix boundary values with uniform noise; everything fits a
   sign-extended imm32 so any operand size encodes. *)
let interesting_imms =
  [| 0L; 1L; -1L; 2L; -2L; 0x7FL; 0x80L; 0xFFL; 0x100L; 0x7FFFL; 0x8000L;
     0xFFFFL; 0x7FFFFFFFL; -0x80000000L; 42L |]

let imm rng =
  if Rng.bool rng then Rng.choose rng interesting_imms
  else Int64.of_int32 (Int64.to_int32 (Rng.next64 rng))

(* A scratch-memory operand, deliberately unaligned, together with the
   setup instructions it needs (an index-register load). All reachable
   addresses stay within [scratch_base, scratch_base + scratch_bytes). *)
let mem_operand rng =
  if Rng.int rng 3 = 0 then begin
    let idx = reg rng in
    let scale = Rng.choose rng [| 1; 2; 4; 8 |] in
    let v = Rng.int rng 64 in
    let disp = Int64.of_int (Rng.int rng (scratch_bytes - 64 - (64 * 8))) in
    ( [ Insn.Movabs (idx, Int64.of_int v) ],
      Insn.mem ~base:Regs.r15 ~index:idx ~scale ~disp () )
  end
  else ([], Insn.mem_bd Regs.r15 (Int64.of_int (Rng.int rng (scratch_bytes - 64))))

let src_reg_or_imm rng =
  if Rng.bool rng then Insn.RM (Insn.Reg (reg rng)) else Insn.Imm (imm rng)

let alu_op rng =
  Rng.choose rng
    [| Insn.Add; Insn.Or; Insn.Adc; Insn.Sbb; Insn.And; Insn.Sub; Insn.Xor;
       Insn.Cmp |]

(* A single register-only ALU-ish instruction (also the loop-body and
   leaf-function building block). [avoid] excludes a destination. *)
let reg_alu_insn ?avoid rng =
  let rec dst () =
    let d = reg rng in
    match avoid with Some a when a = d -> dst () | _ -> d
  in
  let d = dst () in
  match Rng.int rng 4 with
  | 0 -> Insn.Alu (alu_op rng, any_size rng, Insn.Reg d, src_reg_or_imm rng)
  | 1 -> Insn.Test (any_size rng, Insn.Reg d, src_reg_or_imm rng)
  | 2 -> Insn.Unary
           (Rng.choose rng [| Insn.Not; Insn.Neg; Insn.Inc; Insn.Dec |],
            any_size rng, Insn.Reg d)
  | _ -> Insn.Mov (any_size rng, Insn.Reg d, src_reg_or_imm rng)

(* ---------- per-class slot generators ---------- *)

let gen_alu rng =
  let insn =
    match Rng.int rng 9 with
    | 0 | 1 -> Insn.Alu (alu_op rng, any_size rng, Insn.Reg (reg rng), src_reg_or_imm rng)
    | 2 -> Insn.Test (any_size rng, Insn.Reg (reg rng), src_reg_or_imm rng)
    | 3 ->
      Insn.Unary
        (Rng.choose rng [| Insn.Not; Insn.Neg; Insn.Inc; Insn.Dec |],
         any_size rng, Insn.Reg (reg rng))
    | 4 ->
      let count = if Rng.bool rng then Insn.ImmC (Rng.int rng 67) else Insn.Cl in
      Insn.Shift
        (Rng.choose rng [| Insn.Shl; Insn.Shr; Insn.Sar; Insn.Rol; Insn.Ror |],
         any_size rng, Insn.Reg (reg rng), count)
    | 5 -> Insn.Setcc (any_cond rng, Insn.Reg (reg rng))
    | 6 -> Insn.Cmovcc (any_cond rng, wide_size rng, reg rng, Insn.Reg (reg rng))
    | 7 -> Insn.Imul2 (wide_size rng, reg rng, Insn.Reg (reg rng))
    | _ ->
      let dsize, ssize =
        Rng.choose rng
          [| (W64.B2, W64.B1); (W64.B4, W64.B1); (W64.B4, W64.B2);
             (W64.B8, W64.B1); (W64.B8, W64.B2); (W64.B8, W64.B4) |]
      in
      if Rng.bool rng then Insn.Movzx (dsize, ssize, reg rng, Insn.Reg (reg rng))
      else Insn.Movsx (dsize, ssize, reg rng, Insn.Reg (reg rng))
  in
  Straight [ insn ]

let gen_mem rng =
  let setup, m = mem_operand rng in
  let insn =
    match Rng.int rng 11 with
    | 0 -> Insn.Mov (any_size rng, Insn.Mem m, src_reg_or_imm rng)
    | 1 -> Insn.Mov (any_size rng, Insn.Reg (reg rng), Insn.RM (Insn.Mem m))
    | 2 -> Insn.Alu (alu_op rng, any_size rng, Insn.Mem m, src_reg_or_imm rng)
    | 3 ->
      Insn.Alu (alu_op rng, any_size rng, Insn.Reg (reg rng), Insn.RM (Insn.Mem m))
    | 4 ->
      let dsize, ssize =
        Rng.choose rng
          [| (W64.B2, W64.B1); (W64.B4, W64.B2); (W64.B8, W64.B1);
             (W64.B8, W64.B4) |]
      in
      if Rng.bool rng then Insn.Movzx (dsize, ssize, reg rng, Insn.Mem m)
      else Insn.Movsx (dsize, ssize, reg rng, Insn.Mem m)
    | 5 -> Insn.Lea (reg rng, m)
    | 6 -> Insn.Xchg (any_size rng, Insn.Mem m, reg rng)
    | 7 -> Insn.Xadd (any_size rng, Insn.Mem m, reg rng)
    | 8 -> Insn.Cmpxchg (any_size rng, Insn.Mem m, reg rng)
    | 9 ->
      let size = wide_size rng in
      Insn.Bittest
        (Rng.choose rng [| Insn.Bt; Insn.Bts; Insn.Btr; Insn.Btc |],
         size, Insn.Mem m, Insn.Bimm (Rng.int rng (8 * W64.bytes_of_size size)))
    | _ ->
      Insn.Unary
        (Rng.choose rng [| Insn.Not; Insn.Neg; Insn.Inc; Insn.Dec |],
         any_size rng, Insn.Mem m)
  in
  Straight (setup @ [ insn ])

let gen_branch rng ~id ~len ~nleaves =
  match Rng.int rng 4 with
  | 0 | 1 ->
    let cond = if Rng.int rng 3 = 0 then None else Some (any_cond rng) in
    let target = min len (id + 1 + Rng.int rng 4) in
    Fwd (cond, target)
  | 2 ->
    let ctr = reg rng in
    let iters = 1 + Rng.int rng 6 in
    let body =
      List.init (1 + Rng.int rng 2) (fun _ -> reg_alu_insn ~avoid:ctr rng)
    in
    Loop { ctr; iters; body }
  | _ -> CallLeaf (Rng.int rng nleaves)

let gen_strings rng =
  let size = any_size rng in
  let rep = Rng.bool rng in
  let o1 = Int64.add scratch_base (Int64.of_int (Rng.int rng 8192)) in
  let o2 = Int64.add scratch_base (Int64.of_int (8192 + Rng.int rng 4096)) in
  let count = Int64.of_int (1 + Rng.int rng 17) in
  let op, needs_rsi, needs_rdi =
    match Rng.int rng 3 with
    | 0 -> (Insn.Movs (size, rep), true, true)
    | 1 -> (Insn.Stos (size, rep), false, true)
    | _ -> (Insn.Lods (size, rep), true, false)
  in
  let setup =
    (if needs_rsi then [ Insn.Movabs (Regs.rsi, o1) ] else [])
    @ (if needs_rdi then [ Insn.Movabs (Regs.rdi, o2) ] else [])
    @ if rep then [ Insn.Movabs (Regs.rcx, count) ] else []
  in
  Straight (setup @ [ op ])

let gen_lock rng =
  let setup, m = mem_operand rng in
  let insn =
    match Rng.int rng 6 with
    | 0 ->
      let op =
        Rng.choose rng
          [| Insn.Add; Insn.Or; Insn.Adc; Insn.Sbb; Insn.And; Insn.Sub;
             Insn.Xor |]
      in
      Insn.Alu (op, any_size rng, Insn.Mem m, src_reg_or_imm rng)
    | 1 ->
      Insn.Unary
        (Rng.choose rng [| Insn.Not; Insn.Neg; Insn.Inc; Insn.Dec |],
         any_size rng, Insn.Mem m)
    | 2 -> Insn.Xchg (any_size rng, Insn.Mem m, reg rng)
    | 3 -> Insn.Xadd (any_size rng, Insn.Mem m, reg rng)
    | 4 -> Insn.Cmpxchg (any_size rng, Insn.Mem m, reg rng)
    | _ ->
      let size = wide_size rng in
      Insn.Bittest
        (Rng.choose rng [| Insn.Bts; Insn.Btr; Insn.Btc |],
         size, Insn.Mem m, Insn.Bimm (Rng.int rng (8 * W64.bytes_of_size size)))
  in
  Straight (setup @ [ Insn.Locked insn ])

(* Divides are emitted with a setup bundle pinning dividend and divisor:
   rdx:rax = small positive, divisor in 1..13, so quotients fit at every
   operand size and #DE can never be raised. 8-bit forms are excluded
   (unimplemented microcode). *)
let gen_muldiv rng =
  let size = wide_size rng in
  match Rng.int rng 4 with
  | 0 -> Straight [ Insn.Muldiv (Insn.Mul, size, Insn.Reg (reg rng)) ]
  | 1 -> Straight [ Insn.Muldiv (Insn.Imul1, size, Insn.Reg (reg rng)) ]
  | _ ->
    let op = if Rng.bool rng then Insn.Div else Insn.Idiv in
    let dividend = Int64.of_int (Rng.int rng 1000) in
    let divisor = Int64.of_int (1 + Rng.int rng 13) in
    if Rng.bool rng then
      let dr = div_reg_pool.(Rng.int rng (Array.length div_reg_pool)) in
      Straight
        [ Insn.Movabs (Regs.rax, dividend); Insn.Movabs (Regs.rdx, 0L);
          Insn.Movabs (dr, divisor); Insn.Muldiv (op, size, Insn.Reg dr) ]
    else
      let setup, m = mem_operand rng in
      Straight
        (setup
        @ [ Insn.Movabs (Regs.rax, dividend); Insn.Movabs (Regs.rdx, 0L);
            Insn.Mov (size, Insn.Mem m, Insn.Imm divisor);
            Insn.Muldiv (op, size, Insn.Mem m) ])

let gen_fp rng =
  let setup, m = mem_operand rng in
  let insn =
    match Rng.int rng 10 with
    | 0 -> Insn.Fld m
    | 1 -> Insn.Fst m
    | 2 -> Insn.Fp (Rng.choose rng [| Insn.Fadd; Insn.Fsub; Insn.Fmul; Insn.Fdiv |], m)
    | 3 -> Insn.SseLoad (xmm rng, m)
    | 4 -> Insn.SseStore (m, xmm rng)
    | 5 -> Insn.SseMov (xmm rng, xmm rng)
    | 6 ->
      Insn.Sse
        (Rng.choose rng [| Insn.Addsd; Insn.Subsd; Insn.Mulsd; Insn.Divsd |],
         xmm rng, xmm rng)
    | 7 -> Insn.Cvtsi2sd (xmm rng, reg rng)
    | 8 -> Insn.Cvtsd2si (reg rng, xmm rng)
    | _ -> Insn.Comisd (xmm rng, xmm rng)
  in
  Straight (setup @ [ insn ])

(* Stack slots keep pushes and pops balanced so rsp is invariant across
   slot boundaries (loops and leaf calls rely on that). *)
let gen_stack rng =
  match Rng.int rng 5 with
  | 0 -> Straight [ Insn.Push (src_reg_or_imm rng); Insn.Pop (Insn.Reg (reg rng)) ]
  | 1 ->
    let setup, m = mem_operand rng in
    Straight (setup @ [ Insn.Push (Insn.RM (Insn.Mem m)); Insn.Pop (Insn.Reg (reg rng)) ])
  | 2 ->
    let setup, m = mem_operand rng in
    Straight
      (setup @ [ Insn.Push (Insn.RM (Insn.Reg (reg rng))); Insn.Pop (Insn.Mem m) ])
  | 3 ->
    Straight
      [ Insn.Push (src_reg_or_imm rng); Insn.Push (src_reg_or_imm rng);
        Insn.Pop (Insn.Reg (reg rng)); Insn.Pop (Insn.Reg (reg rng)) ]
  | _ -> Straight [ Insn.Pushf; Insn.Popf ]

let gen_misc rng =
  match Rng.int rng 5 with
  | 0 -> Straight [ Insn.Nop ]
  | 1 -> Straight [ Insn.Pause ]
  | 2 -> Straight [ Insn.Movabs (reg rng, Rng.next64 rng) ]
  | 3 -> Straight [ Insn.Cpuid ]
  | _ -> Straight [ Insn.Xchg (any_size rng, Insn.Reg (reg rng), reg rng) ]

let gen_slot rng cls ~id ~len ~nleaves =
  match cls with
  | Alu -> gen_alu rng
  | Mem -> gen_mem rng
  | Branch -> gen_branch rng ~id ~len ~nleaves
  | Strings -> gen_strings rng
  | Lock -> gen_lock rng
  | Muldiv -> gen_muldiv rng
  | Fp -> gen_fp rng
  | Stack -> gen_stack rng
  | Misc -> gen_misc rng

let pick_class rng classes =
  let total = List.fold_left (fun a c -> a + weight c) 0 classes in
  let k = Rng.int rng total in
  let rec go k = function
    | [] -> assert false
    | [ c ] -> c
    | c :: rest -> if k < weight c then c else go (k - weight c) rest
  in
  go k classes

(** Generate a [len]-slot program drawing from [classes], consuming
    randomness only from [rng] (so one seed fully determines the
    program). *)
let generate rng ~classes ~len =
  if classes = [] then invalid_arg "Fuzzgen.generate: empty class list";
  let nleaves = 2 in
  let leaves =
    Array.init nleaves (fun _ ->
        List.init (1 + Rng.int rng 2) (fun _ -> reg_alu_insn rng))
  in
  let slots =
    Array.init len (fun i ->
        (i, gen_slot rng (pick_class rng classes) ~id:i ~len ~nleaves))
  in
  { slots; leaves }

(* ---------- assembly ---------- *)

(** Static instructions in a slot as placed in the program (loop and call
    overheads included). *)
let slot_insns = function
  | Straight insns -> List.length insns
  | Fwd _ -> 1
  | Loop { body; _ } -> List.length body + 3  (* mov ctr + dec + jcc *)
  | CallLeaf _ -> 1

(** Assemble a program to a flat image at {!code_base}. Branch targets
    relink to the next surviving slot (or the exit), so any sub-array of
    slots assembles to a valid terminating program — the property
    delta-debugging relies on. *)
let build (p : program) =
  let a = Asm.create ~base:code_base () in
  let ids = Array.map fst p.slots in
  let label_of_target j =
    let rec go k =
      if k >= Array.length ids then "Lend"
      else if ids.(k) >= j then "L" ^ string_of_int ids.(k)
      else go (k + 1)
    in
    go 0
  in
  Asm.ins a (Insn.Movabs (Regs.r15, scratch_base));
  Asm.ins a (Insn.Movabs (Regs.rsp, stack_top));
  let used_leaves = ref [] in
  Array.iter
    (fun (id, slot) ->
      Asm.label a ("L" ^ string_of_int id);
      match slot with
      | Straight insns -> Asm.inss a insns
      | Fwd (None, j) -> Asm.jmp a (label_of_target j)
      | Fwd (Some c, j) -> Asm.jcc a c (label_of_target j)
      | Loop { ctr; iters; body } ->
        Asm.ins a (Insn.Mov (W64.B8, Insn.Reg ctr, Insn.Imm (Int64.of_int iters)));
        Asm.label a (Printf.sprintf "L%dtop" id);
        Asm.inss a body;
        Asm.ins a (Insn.Unary (Insn.Dec, W64.B8, Insn.Reg ctr));
        Asm.jcc a Flags.NE (Printf.sprintf "L%dtop" id)
      | CallLeaf k ->
        if not (List.mem k !used_leaves) then used_leaves := k :: !used_leaves;
        Asm.call a ("F" ^ string_of_int k))
    p.slots;
  Asm.label a "Lend";
  Asm.ins a Insn.Hlt;
  List.iter
    (fun k ->
      Asm.label a ("F" ^ string_of_int k);
      Asm.inss a p.leaves.(k);
      Asm.ins a Insn.Ret)
    (List.sort compare !used_leaves);
  Asm.assemble a

(** Keep only the slots passing [keep] (by position), preserving original
    ids — the shrinking projection. *)
let with_slots p slots = { p with slots }

(* ---------- listing ---------- *)

(** Disassemble an assembled image back into addressed text lines by
    linear decode walk (the image is pure code, so the walk is total for
    any program the generator can produce). *)
let listing img =
  let code = img.Asm.code in
  let base = img.Asm.img_base in
  let fetch va = Char.code code.[Int64.to_int (Int64.sub va base)] in
  let limit = Int64.add base (Int64.of_int (String.length code)) in
  let rec go rip acc =
    if rip >= limit then List.rev acc
    else
      match Decode.decode ~fetch ~rip with
      | insn, len ->
        let line = Printf.sprintf "%#Lx: %s" rip (Disasm.to_string insn) in
        go (Int64.add rip (Int64.of_int len)) (line :: acc)
      | exception Decode.Invalid_opcode _ ->
        List.rev (Printf.sprintf "%#Lx: (bad)" rip :: acc)
  in
  go base []

(** Static instruction count of a program (prologue and [hlt] included). *)
let insn_count p = List.length (listing (build p))
