(** The ptlcall command-list language (paper §4.1): the strings the guest
    passes through the ptlcall opcode (or [ptlctl] wrapper) to direct the
    simulator, e.g. "-core smt -run -stopinsns 10m : -native". *)

type stop_condition =
  | Stop_insns of int
  | Stop_cycles of int
  | Stop_rip of int64
  | Stop_marker of int

type command =
  | Set_core of string
  | Run of stop_condition list
  | Native
  | Snapshot
  | Kill
  | Flush_stats
  | Sample_start  (** [-startsample]: enter the sampling region of interest *)
  | Sample_stop  (** [-stopsample]: leave the sampling region of interest *)

exception Parse_error of string

(** Accepts PTLsim-style counts ("10m", "500k", "2g"). *)
val parse_count : string -> int

(** Parse a command list; phases separated by ":". Raises
    [Parse_error]. *)
val parse : string -> command list

val command_to_string : command -> string
