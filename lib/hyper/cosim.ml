(** Native-mode co-simulation self-validation (§2.3).

    "It is possible, on an instruction by instruction basis, to determine
    where the architectural state produced by PTLsim's model begins to
    diverge from the state produced by the native x86 host processor ...
    Using binary search techniques, the problem can be rapidly isolated."

    Here the functional core plays the reference processor: the same
    image runs on both engines, comparing architectural state every
    [check_every] committed instructions, and [bisect] narrows the first
    divergent instruction when one exists.

    The model side is resolved through {!Ptl_ooo.Registry}, so any timed
    core ("ooo", "smt", "inorder") can be validated with the same driver.
    When the {!Ptl_trace} subsystem is armed, a divergence carries the
    trace window leading up to the mismatch; [inject] lets test harnesses
    plant a deliberate microarchitectural bug (e.g. a mutated flags write)
    to prove the validation catches it. *)

module Machine = Ptl_arch.Machine
module Context = Ptl_arch.Context
module Seqcore = Ptl_arch.Seqcore
module Config = Ptl_ooo.Config
module Registry = Ptl_ooo.Registry
module Sim_failure = Ptl_ooo.Sim_failure
module Trace = Ptl_trace.Trace

type result =
  | Agree of int  (* instructions compared *)
  | Diverged of {
      after_insns : int;
      diffs : string list;
      (* trace window leading up to the mismatch; [] when tracing is off *)
      trace : string list;
    }

(* How a model run ended. [Hung] is a typed simulator self-check fault
   (watchdog lockup or guard invariant violation) raised mid-step. *)
type stop = Reached | Idle | Out_of_budget | Hung of Sim_failure.t

(* Run [image] on the functional core for exactly [n] committed
   instructions (single-instruction blocks for exact stepping). *)
let run_reference image ~n =
  let m = Machine.create image in
  let seq = Seqcore.create ~max_bb_insns:1 m.Machine.env m.Machine.ctx in
  let rec go () =
    if m.Machine.ctx.Context.insns_committed < n && m.Machine.ctx.Context.running
    then begin
      (match Seqcore.step_block seq with
      | Seqcore.Executed 0 | Seqcore.Idle -> ()
      | Seqcore.Executed _ | Seqcore.Interrupted -> go ())
    end
  in
  go ();
  m

(** Run [image] on the timed core [core] (a {!Registry} name) for at least
    [n] committed instructions. [inject], called after every step with the
    VCPU context, lets a harness corrupt state mid-run to emulate a core
    bug. [budget] bounds the number of steps so a wedged model is reported
    instead of hanging the validator. *)
let run_model ?(config = Config.tiny) ?(core = "ooo") ?inject ?wrap
    ?(budget = 50_000_000) image ~n =
  let m = Machine.create image in
  let instance = Registry.build core config m.Machine.env [| m.Machine.ctx |] in
  (* e.g. the guard supervisor (lib/guard), installed by the fuzz harness *)
  let instance =
    match wrap with
    | Some w -> w m.Machine.env m.Machine.ctx instance
    | None -> instance
  in
  let budget = ref budget in
  let stop = ref None in
  while !stop = None do
    if m.Machine.ctx.Context.insns_committed >= n then stop := Some Reached
    else if instance.Registry.idle () then stop := Some Idle
    else if !budget <= 0 then stop := Some Out_of_budget
    else begin
      (try instance.Registry.step ()
       with Sim_failure.Sim_failure f -> stop := Some (Hung f));
      (match inject with Some f -> f m.Machine.ctx | None -> ());
      decr budget
    end
  done;
  (m, match !stop with Some s -> s | None -> assert false)

(* Compare guest memory over [ranges] (vaddr, bytes) word by word,
   reporting the first few differing quadwords. *)
let diff_mem ?(limit = 8) ranges ref_m model_m =
  let out = ref [] in
  let count = ref 0 in
  List.iter
    (fun (vaddr, bytes) ->
      let words = bytes / 8 in
      for i = 0 to words - 1 do
        if !count < limit then begin
          let va = Int64.add vaddr (Int64.of_int (i * 8)) in
          let a = Machine.read_mem ref_m ~vaddr:va ~size:Ptl_util.W64.B8 in
          let b = Machine.read_mem model_m ~vaddr:va ~size:Ptl_util.W64.B8 in
          if a <> b then begin
            incr count;
            out := Printf.sprintf "mem[%#Lx]: %#Lx vs %#Lx" va a b :: !out
          end
        end
      done)
    ranges;
  List.rev !out

(* Full architectural comparison: registers/flags/rip plus any memory
   ranges the caller knows the program writes. *)
let diff_machines ?(mem_ranges = []) ref_m model_m =
  Context.diff ref_m.Machine.ctx model_m.Machine.ctx
  @ diff_mem mem_ranges ref_m model_m

(* Snapshot the tail of the armed trace window as text lines. *)
let trace_window lines =
  if !Trace.on then List.map Trace.event_to_string (Trace.recent lines)
  else []

(** Compare the model against the reference every [check_every]
    instructions, up to [max_insns]. The model may overrun a checkpoint by
    a few commits within one cycle, so the reference is aligned to the
    model's actual committed count before comparing. [inject] is a factory
    returning a fresh corruption callback per model run (each checkpoint
    re-simulates from the initial state). When tracing is armed the ring
    is cleared before each model run, so a [Diverged] result carries the
    model-side window leading up to the mismatch. *)
let validate ?config ?(core = "ooo") ?inject ?wrap ?budget ?(mem_ranges = [])
    ?(trace_lines = 64) ?(check_every = 50) ~max_insns image =
  let rec go n =
    if n > max_insns then Agree max_insns
    else begin
      if !Trace.on then Trace.clear ();
      let inject = match inject with Some f -> Some (f ()) | None -> None in
      let model_m, stop = run_model ?config ~core ?inject ?wrap ?budget image ~n in
      let window = trace_window trace_lines in
      let actual = model_m.Machine.ctx.Context.insns_committed in
      match stop with
      | Out_of_budget ->
        Diverged
          {
            after_insns = actual;
            diffs =
              [ Printf.sprintf
                  "model wedged: step budget exhausted after %d committed insns"
                  actual ];
            trace = window;
          }
      | Hung f ->
        (* A watchdog lockup / invariant violation is a reportable,
           shrinkable finding exactly like an architectural divergence. *)
        Diverged
          {
            after_insns = actual;
            diffs = Sim_failure.summary f :: [];
            trace = (if window <> [] then window else f.Sim_failure.trace_window);
          }
      | Reached | Idle ->
        let ref_m = run_reference image ~n:actual in
        let diffs = diff_machines ~mem_ranges ref_m model_m in
        if diffs <> [] then Diverged { after_insns = actual; diffs; trace = window }
        else if actual < n (* program finished early: fully compared *)
        then Agree actual
        else go (n + check_every)
    end
  in
  go check_every

(** Binary-search the first divergent instruction between [lo] (known
    agreeing) and [hi] (known diverged) — the paper's isolation
    technique. *)
let bisect ?config ?(core = "ooo") ?inject ?wrap ?budget ?(mem_ranges = []) image
    ~lo ~hi =
  let rec go lo hi =
    if hi - lo <= 1 then hi
    else begin
      let mid = (lo + hi) / 2 in
      let inject = match inject with Some f -> Some (f ()) | None -> None in
      let model_m, _ = run_model ?config ~core ?inject ?wrap ?budget image ~n:mid in
      let actual = model_m.Machine.ctx.Context.insns_committed in
      let ref_m = run_reference image ~n:actual in
      if diff_machines ~mem_ranges ref_m model_m = [] then go mid hi
      else go lo mid
    end
  in
  go lo hi
