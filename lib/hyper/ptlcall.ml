(** The ptlcall command-list language.

    "A command list (specified as a text string) may consist of
    '-core smt -run -stopinsns 10m : -native'. This command tells PTLsim
    to switch back to simulation mode, execute 10 million x86 instructions
    under PTLsim's SMT core, then switch back to native mode" (§4.1).

    Guest programs invoke it through the [ptlcall] opcode (0x0f37) with
    rdi = guest pointer to the command string and rsi = its length; the
    in-guest [ptlctl] wrapper program (see {!Ptl_workloads}) is "simply a
    wrapper around the ptlcall instruction". *)

type stop_condition =
  | Stop_insns of int
  | Stop_cycles of int
  | Stop_rip of int64
  | Stop_marker of int  (* stop when the guest issues this phase marker *)

(** One phase of execution requested by a command list. *)
type command =
  | Set_core of string  (* -core <model> *)
  | Run of stop_condition list  (* -run [-stopinsns N] [-stopcycles N]... *)
  | Native  (* -native: switch to full-speed native mode *)
  | Snapshot  (* -snapshot: capture a statistics snapshot *)
  | Kill  (* -kill: stop the domain and finalize statistics *)
  | Flush_stats  (* -flushstats: zero all counters *)
  | Sample_start  (* -startsample: enter the sampling region of interest *)
  | Sample_stop  (* -stopsample: leave the sampling region of interest *)

exception Parse_error of string

(* "10m" = 10 million, "64k" = 65?? no: decimal thousands, like PTLsim *)
let parse_count s =
  let n = String.length s in
  if n = 0 then raise (Parse_error "empty count");
  let mult, digits =
    match s.[n - 1] with
    | 'k' | 'K' -> (1_000, String.sub s 0 (n - 1))
    | 'm' | 'M' -> (1_000_000, String.sub s 0 (n - 1))
    | 'g' | 'G' -> (1_000_000_000, String.sub s 0 (n - 1))
    | _ -> (1, s)
  in
  match int_of_string_opt digits with
  | Some v -> v * mult
  | None -> raise (Parse_error ("bad count: " ^ s))

let parse_rip s =
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> raise (Parse_error ("bad rip: " ^ s))

(** Parse a command list. Phases are separated by ":"; tokens by spaces. *)
let parse text : command list =
  let tokens =
    String.split_on_char ' ' text
    |> List.concat_map (fun t ->
           if String.contains t ':' && t <> ":" then
             String.split_on_char ':' t |> List.concat_map (fun x -> [ x; ":" ])
           else [ t ])
    |> List.filter (fun t -> t <> "")
  in
  let rec go acc = function
    | [] -> List.rev acc
    | ":" :: rest -> go acc rest
    | "-core" :: name :: rest -> go (Set_core name :: acc) rest
    | "-native" :: rest -> go (Native :: acc) rest
    | "-snapshot" :: rest -> go (Snapshot :: acc) rest
    | "-kill" :: rest -> go (Kill :: acc) rest
    | "-flushstats" :: rest -> go (Flush_stats :: acc) rest
    | "-startsample" :: rest -> go (Sample_start :: acc) rest
    | "-stopsample" :: rest -> go (Sample_stop :: acc) rest
    | "-run" :: rest ->
      (* gather stop conditions attached to this run *)
      let rec stops acc_s = function
        | "-stopinsns" :: n :: rest -> stops (Stop_insns (parse_count n) :: acc_s) rest
        | "-stopcycles" :: n :: rest -> stops (Stop_cycles (parse_count n) :: acc_s) rest
        | "-stoprip" :: r :: rest -> stops (Stop_rip (parse_rip r) :: acc_s) rest
        | "-stopmarker" :: n :: rest -> stops (Stop_marker (parse_count n) :: acc_s) rest
        | rest -> (List.rev acc_s, rest)
      in
      let conditions, rest = stops [] rest in
      go (Run conditions :: acc) rest
    | tok :: _ -> raise (Parse_error ("unknown token: " ^ tok))
  in
  go [] tokens

let command_to_string = function
  | Set_core n -> "-core " ^ n
  | Run conds ->
    "-run"
    ^ String.concat ""
        (List.map
           (function
             | Stop_insns n -> Printf.sprintf " -stopinsns %d" n
             | Stop_cycles n -> Printf.sprintf " -stopcycles %d" n
             | Stop_rip r -> Printf.sprintf " -stoprip %#Lx" r
             | Stop_marker n -> Printf.sprintf " -stopmarker %d" n)
           conds)
  | Native -> "-native"
  | Snapshot -> "-snapshot"
  | Kill -> "-kill"
  | Flush_stats -> "-flushstats"
  | Sample_start -> "-startsample"
  | Sample_stop -> "-stopsample"
