(** A domain: one guest virtual machine under the PTLsim/X-style monitor.

    The domain owns the environment (physical memory, virtualized time),
    the VCPU context, optionally a minios kernel instance, and the two
    execution engines the paper's co-simulation design requires (§2.3):

    - *native mode*: the fast functional core standing in for "executing
      at full speed on the host's physical x86 processors", advancing
      virtual time at a calibrated native IPC;
    - *simulation mode*: any registered cycle-accurate core model.

    Transitions are seamless: both engines share the context and the
    single virtual clock, so rdtsc never observes a gap — the effect the
    paper achieves by virtualizing the TSC across switches (§4.1).
    Commands arrive via the guest [ptlcall] instruction as command lists
    ("-core ooo -run -stopinsns 10m : -native"), via {!Ptlcall}. *)

module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Seqcore = Ptl_arch.Seqcore
module Registry = Ptl_ooo.Registry
module Config = Ptl_ooo.Config
module Kernel = Ptl_kernel.Kernel
module Stats = Ptl_stats.Statstree
module Timelapse = Ptl_stats.Timelapse
module Vmem = Ptl_arch.Vmem

type mode = Native | Simulating

type t = {
  env : Env.t;
  ctx : Context.t;
  kernel : Kernel.t option;
  config : Config.t;
  mutable core_name : string;
  mutable mode : mode;
  mutable sim : Registry.instance option;
  (* decorator applied to every freshly built core instance (the guard
     supervisor installs itself here; identity when unset) *)
  mutable instance_wrap : (Registry.instance -> Registry.instance) option;
  (* shared long-lived microarch state threaded into every core build
     (the sampling supervisor installs one so caches/TLBs/predictor
     survive mode switches; None = each instance builds its own) *)
  mutable uarch : Ptl_ooo.Uarch.t option;
  (* region-of-interest gate toggled by the guest's -startsample /
     -stopsample ptlcalls; read by the sampling supervisor *)
  mutable sample_roi : bool;
  native : Seqcore.t;
  (* native-mode clock: cycles advance by insns * num / den (default
     2/3 cycles per instruction = IPC 1.5, roughly the K8 on rsync) *)
  native_cpi_num : int;
  native_cpi_den : int;
  mutable native_frac : int;
  mutable pending : Ptlcall.command list;
  mutable stop_insns : int option;  (* absolute committed-insn target *)
  mutable stop_cycles : int option;
  mutable stop_rip : int64 option;
  mutable stop_marker : int option;
  mutable marker_hit : bool;
  mutable run_active : bool;  (* a -run phase is executing; queue is parked *)
  mutable killed : bool;
  mutable timelapse : Timelapse.t option;
  mutable markers : (int * int) list;  (* (marker, cycle), newest first *)
  c_mode_switches : Stats.counter;
  c_user : Stats.counter;
  c_kernel : Stats.counter;
  c_idle : Stats.counter;
  c_cycles : Stats.counter;
  c_native_insns : Stats.counter;
}

let create ?kernel ?(core = "ooo") ?(native_cpi = (2, 3)) ~config env ctx =
  let stats = env.Env.stats in
  let num, den = native_cpi in
  let t =
    {
      env;
      ctx;
      kernel;
      config;
      core_name = core;
      mode = Native;
      sim = None;
      instance_wrap = None;
      uarch = None;
      sample_roi = false;
      native = Seqcore.create ~prefix:"native" env ctx;
      native_cpi_num = num;
      native_cpi_den = den;
      native_frac = 0;
      pending = [];
      stop_insns = None;
      stop_cycles = None;
      stop_rip = None;
      stop_marker = None;
      marker_hit = false;
      run_active = false;
      killed = false;
      timelapse = None;
      markers = [];
      c_mode_switches = Stats.counter stats "domain.mode_switches";
      c_user = Stats.counter stats "domain.cycles_in_mode.user";
      c_kernel = Stats.counter stats "domain.cycles_in_mode.kernel";
      c_idle = Stats.counter stats "domain.cycles_in_mode.idle";
      c_cycles = Stats.counter stats "domain.cycles";
      c_native_insns = Stats.counter stats "domain.native_insns";
    }
  in
  (* guest ptlcall: rdi = command string pointer, rsi = length *)
  env.Env.ptlcall <-
    (fun ctx ->
      let ptr = Context.gpr ctx Ptl_isa.Regs.rdi in
      let len = Int64.to_int (Context.gpr ctx Ptl_isa.Regs.rsi) in
      if len > 0 && len < 4096 then begin
        let text = Vmem.read_string env.Env.vmem ctx ~vaddr:ptr len ~at_rip:0L in
        match Ptlcall.parse text with
        | cmds ->
          t.pending <- t.pending @ cmds;
          (* a fresh command list preempts any open-ended -run phase *)
          t.run_active <- false
        | exception Ptlcall.Parse_error msg ->
          Logs.warn (fun m -> m "ptlcall: %s" msg)
      end);
  (* phase markers from the kernel flow into the domain *)
  (match kernel with
  | Some k ->
    k.Kernel.on_marker <-
      (fun n ->
        t.markers <- (n, env.Env.cycle) :: t.markers;
        match t.stop_marker with
        | Some m when m = n -> t.marker_hit <- true
        | _ -> ())
  | None -> ());
  t

(** Attach periodic statistics snapshots (the paper snapshots every 2.2M
    cycles — 1000 per simulated second at 2.2 GHz). *)
let enable_timelapse t ~interval =
  t.timelapse <- Some (Timelapse.create t.env.Env.stats ~interval)

let markers t = List.rev t.markers

(* ---- mode switching ---- *)

let enter_native t =
  if t.mode <> Native then begin
    Stats.incr t.c_mode_switches;
    t.mode <- Native;
    t.sim <- None
  end

let enter_sim t =
  if t.mode <> Simulating || t.sim = None then begin
    Stats.incr t.c_mode_switches;
    t.mode <- Simulating;
    let inst =
      Registry.build ?uarch:t.uarch t.core_name t.config t.env [| t.ctx |]
    in
    let inst =
      match t.instance_wrap with Some w -> w inst | None -> inst
    in
    t.sim <- Some inst
  end

(** Install a shared microarchitectural state threaded into every core
    instance built from now on (forcing a rebuild at the next simulation
    step). The sampling supervisor uses this so functional warming during
    fast-forward lands in the structures the timed core will read. *)
let set_uarch t u =
  t.uarch <- Some u;
  t.sim <- None

(** Install a decorator applied to every core instance the domain builds
    from now on (and to the current one, by forcing a rebuild at the
    next simulation step). *)
let set_instance_wrap t w =
  t.instance_wrap <- Some w;
  t.sim <- None

let clear_stops t =
  t.stop_insns <- None;
  t.stop_cycles <- None;
  t.stop_rip <- None;
  t.stop_marker <- None;
  t.marker_hit <- false

(* Apply queued ptlcall commands until a Run/Native begins executing. *)
let rec process_commands t =
  match t.pending with
  | [] -> ()
  | cmd :: rest ->
    t.pending <- rest;
    (match cmd with
    | Ptlcall.Set_core name ->
      t.core_name <- name;
      if t.mode = Simulating then t.sim <- None (* rebuild on entry *);
      process_commands t
    | Ptlcall.Run conditions ->
      clear_stops t;
      List.iter
        (function
          | Ptlcall.Stop_insns n ->
            t.stop_insns <- Some (t.ctx.Context.insns_committed + n)
          | Ptlcall.Stop_cycles n -> t.stop_cycles <- Some (t.env.Env.cycle + n)
          | Ptlcall.Stop_rip r -> t.stop_rip <- Some r
          | Ptlcall.Stop_marker m -> t.stop_marker <- Some m)
        conditions;
      t.run_active <- true;
      enter_sim t
    | Ptlcall.Native ->
      clear_stops t;
      t.run_active <- false;
      enter_native t;
      process_commands t
    | Ptlcall.Snapshot ->
      (match t.timelapse with
      | Some tl -> Timelapse.finish tl ~cycle:t.env.Env.cycle
      | None -> ());
      process_commands t
    | Ptlcall.Kill -> t.killed <- true
    | Ptlcall.Flush_stats ->
      Stats.reset t.env.Env.stats;
      process_commands t
    | Ptlcall.Sample_start ->
      t.sample_roi <- true;
      process_commands t
    | Ptlcall.Sample_stop ->
      t.sample_roi <- false;
      process_commands t)

(* A stop condition fired: the current Run phase is over; take the next
   command (typically -native), or just halt the stops. *)
let stops_hit t =
  (match t.stop_insns with
  | Some target when t.ctx.Context.insns_committed >= target -> true
  | _ -> false)
  || (match t.stop_cycles with
     | Some target when t.env.Env.cycle >= target -> true
     | _ -> false)
  || (match t.stop_rip with
     | Some rip when t.ctx.Context.rip = rip -> true
     | _ -> false)
  || t.marker_hit

(* ---- per-cycle accounting (Figure 2's user/kernel/idle split) ---- *)

let count_mode t n =
  Stats.add t.c_cycles n;
  if not t.ctx.Context.running then Stats.add t.c_idle n
  else if Context.is_kernel t.ctx then Stats.add t.c_kernel n
  else Stats.add t.c_user n

let tick_timelapse t =
  match t.timelapse with
  | Some tl -> Timelapse.tick tl ~cycle:t.env.Env.cycle
  | None -> ()

(* ---- stepping ---- *)

let sim_idle t =
  match t.sim with Some inst -> inst.Registry.idle () | None -> true

let domain_idle t =
  (not t.ctx.Context.running) && not (Context.interruptible t.ctx)
  && match t.mode with Simulating -> sim_idle t | Native -> true

(* advance virtual time for [n] native instructions *)
let native_advance t n =
  let total = (n * t.native_cpi_num) + t.native_frac in
  let cycles = total / t.native_cpi_den in
  t.native_frac <- total mod t.native_cpi_den;
  count_mode t cycles;
  t.env.Env.cycle <- t.env.Env.cycle + cycles

let step t =
  match t.mode with
  | Native -> (
    match Seqcore.step_block t.native with
    | Seqcore.Executed n ->
      Stats.add t.c_native_insns n;
      native_advance t (max 1 n)
    | Seqcore.Interrupted -> native_advance t 1
    | Seqcore.Idle -> ())
  | Simulating -> (
    enter_sim t;
    match t.sim with
    | Some inst ->
      (* count however much virtual time the instance consumed (1 cycle
         for the cycle-steppers, a block's worth for the functional one) *)
      let before = t.env.Env.cycle in
      inst.Registry.step ();
      count_mode t (max 1 (t.env.Env.cycle - before))
    | None -> assert false)

(** One iteration of the drive loop: service device events, skip idle
    gaps to the next timer, advance the active engine one step, tick the
    timelapse. Returns false when the domain can make no further
    progress (guest shut down, or halted with nothing pending). Mode and
    command handling are the caller's job — {!run} layers the ptlcall
    machinery on top; the sampling supervisor forces modes itself. *)
let drive_once t =
  (match t.kernel with
  | Some k ->
    if Kernel.next_event_cycle k <= t.env.Env.cycle then Kernel.poll k
  | None -> ());
  if match t.kernel with Some k -> Kernel.is_shutdown k | None -> false then
    false
  else if domain_idle t then (
    match t.kernel with
    | Some k ->
      let next = Kernel.next_event_cycle k in
      if next = max_int then false
      else begin
        let skip = max 1 (next - t.env.Env.cycle) in
        count_mode t skip;
        t.env.Env.cycle <- t.env.Env.cycle + skip;
        Kernel.poll k;
        tick_timelapse t;
        true
      end
    | None -> false)
  else begin
    step t;
    tick_timelapse t;
    true
  end

(** Drive the domain until killed, [max_cycles] elapse, or (with no kernel)
    the guest halts for good. *)
let run ?(max_cycles = max_int) t =
  let start = t.env.Env.cycle in
  let stop = ref false in
  while (not !stop) && (not t.killed) && t.env.Env.cycle - start < max_cycles do
    (* a -run phase parks the command queue until its stop conditions
       fire; everything else drains immediately *)
    if stops_hit t then begin
      clear_stops t;
      t.run_active <- false;
      (* a finished -run phase falls through to the next command; with
         none queued, drop to native mode like PTLsim's default *)
      if t.pending = [] then enter_native t
    end;
    if not t.run_active then process_commands t;
    if t.killed then stop := true
    else if not (drive_once t) then stop := true
  done;
  (match t.timelapse with
  | Some tl -> Timelapse.finish tl ~cycle:t.env.Env.cycle
  | None -> ());
  t.env.Env.cycle - start

(** Submit a command list programmatically (what the in-guest ptlctl tool
    does through the ptlcall opcode). *)
let submit t text = t.pending <- t.pending @ Ptlcall.parse text

let insns t = t.ctx.Context.insns_committed
let cycles t = Stats.value t.c_cycles
