(** Domain checkpointing (paper §4.2): capture and restore physical
    memory, VCPU context and the virtual clock of a bare-machine domain.
    Restores are in place, so existing references remain valid — like
    restarting a domain from a Xen checkpoint. [full] checkpoints extend
    this with the warmed {!Ptl_ooo.Uarch} contents for
    checkpoint-parallel sampled simulation (lib/sample). *)

type t

val capture : Ptl_arch.Env.t -> Ptl_arch.Context.t -> t
val restore : t -> Ptl_arch.Env.t -> Ptl_arch.Context.t -> unit

(** Every difference between the live machine state and the checkpoint
    (architectural context, dirtied pages, virtual clock); empty =
    exact. TLB generations are shoot-down bookkeeping and are not
    compared. *)
val diff : t -> Ptl_arch.Env.t -> Ptl_arch.Context.t -> string list

(** Machine checkpoint + warmed microarchitecture (cache tags/LRU with
    replacement-RNG cursors, TLBs, predictor tables). *)
type full = { fk_machine : t; fk_uarch : Ptl_ooo.Uarch.snapshot }

val capture_full :
  uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t -> Ptl_arch.Context.t -> full

val restore_full :
  full -> uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t -> Ptl_arch.Context.t -> unit

val diff_full :
  full -> uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t -> Ptl_arch.Context.t ->
  string list

(** {2 Delta checkpoints}

    One {!base} image per run (deep memory copy + warmed
    {!Ptl_ooo.Uarch} snapshot), then a cheap {!delta} per interval:
    dirty pages since the base, the architectural context, the virtual
    clock, and only the microarchitectural components that changed.
    Capture cost scales with the interval's footprint, not guest
    memory size; workers rebuild private state from [base + delta]
    sharing the base copy-on-write. *)

(** Immutable once captured; safe to share across domains/processes. *)
type base = { bk_mem : Ptl_mem.Phys_mem.t; bk_uarch : Ptl_ooo.Uarch.snapshot }

(** Capture the base image and arm dirty-page tracking: subsequent
    {!capture_delta}s record only pages touched after this call. *)
val capture_base : uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t -> base

type delta = {
  dk_pages : Ptl_mem.Phys_mem.delta;
  dk_ctx : Ptl_arch.Context.t;
  dk_cycle : int;
  dk_tsc_offset : int64;
  dk_uarch : Ptl_ooo.Uarch.delta;
}

val capture_delta :
  base:base -> uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t ->
  Ptl_arch.Context.t -> delta

(** Guest memory pages a delta carries (its footprint). *)
val delta_pages : delta -> int

(** Serialized page payload of a delta / of a full image of [env]'s
    memory — the apples-to-apples capture-cost comparison. *)
val delta_page_bytes : delta -> int

val full_page_bytes : Ptl_arch.Env.t -> int

(** Private memory reproducing the delta's capture point: a
    copy-on-write clone of the base overlaid with the dirty pages;
    O(frames + footprint), not O(guest bytes). *)
val clone_mem : base:base -> delta -> Ptl_mem.Phys_mem.t

(** Restore in place, rebuilding memory from base + delta. *)
val restore_delta :
  base:base -> delta -> uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t ->
  Ptl_arch.Context.t -> unit

(** Restore in place and re-arm dirty-page tracking as the original
    capture run had it at that moment (dirty set = the delta's page
    set), so a resumed capture's subsequent {!capture_delta}s are
    byte-identical to the uninterrupted run's. Use for capture resume;
    {!restore_delta} (which leaves every restored frame dirty) for
    replay. *)
val resume_delta :
  base:base -> delta -> uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t ->
  Ptl_arch.Context.t -> unit

(** Restore context/clock/uarch into worker state whose memory already
    came from {!clone_mem}. *)
val restore_delta_into :
  base:base -> delta -> uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t ->
  Ptl_arch.Context.t -> unit

(** {!restore_delta_into} with geometry tolerance: uarch components the
    snapshot does not fit (a design-space sweep leg replaying under a
    different machine configuration) start cold and re-warm during the
    warm-up phase. Returns the component names started cold — empty for
    a same-configuration replay, which restores exactly as
    {!restore_delta_into}. *)
val restore_delta_into_fit :
  base:base -> delta -> uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t ->
  Ptl_arch.Context.t -> string list

(** {!restore_full} with the same geometry tolerance. *)
val restore_full_fit :
  full -> uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t -> Ptl_arch.Context.t ->
  string list
