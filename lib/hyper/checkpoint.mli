(** Domain checkpointing (paper §4.2): capture and restore physical
    memory, VCPU context and the virtual clock of a bare-machine domain.
    Restores are in place, so existing references remain valid — like
    restarting a domain from a Xen checkpoint. [full] checkpoints extend
    this with the warmed {!Ptl_ooo.Uarch} contents for
    checkpoint-parallel sampled simulation (lib/sample). *)

type t

val capture : Ptl_arch.Env.t -> Ptl_arch.Context.t -> t
val restore : t -> Ptl_arch.Env.t -> Ptl_arch.Context.t -> unit

(** Every difference between the live machine state and the checkpoint
    (architectural context, dirtied pages, virtual clock); empty =
    exact. TLB generations are shoot-down bookkeeping and are not
    compared. *)
val diff : t -> Ptl_arch.Env.t -> Ptl_arch.Context.t -> string list

(** Machine checkpoint + warmed microarchitecture (cache tags/LRU with
    replacement-RNG cursors, TLBs, predictor tables). *)
type full = { fk_machine : t; fk_uarch : Ptl_ooo.Uarch.snapshot }

val capture_full :
  uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t -> Ptl_arch.Context.t -> full

val restore_full :
  full -> uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t -> Ptl_arch.Context.t -> unit

val diff_full :
  full -> uarch:Ptl_ooo.Uarch.t -> Ptl_arch.Env.t -> Ptl_arch.Context.t ->
  string list
