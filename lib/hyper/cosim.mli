(** Native-mode co-simulation self-validation (paper §2.3): run the same
    image on a cycle-accurate core and the functional reference, compare
    architectural state at instruction-count checkpoints, and
    binary-search the first divergence when one exists. The model side is
    any {!Ptl_ooo.Registry} core name ("ooo", "smt", "inorder"). *)

type result =
  | Agree of int  (** instructions compared *)
  | Diverged of {
      after_insns : int;
      diffs : string list;
      trace : string list;
          (** trace window leading up to the mismatch (text lines, oldest
              first); [[]] unless {!Ptl_trace.Trace} is armed *)
    }

(** How a model run ended: reached the requested instruction count, went
    idle (program finished), exhausted its step budget (wedged), or
    raised a typed simulator self-check fault (watchdog lockup or guard
    invariant violation). *)
type stop =
  | Reached
  | Idle
  | Out_of_budget
  | Hung of Ptl_ooo.Sim_failure.t

(** Run the functional reference for exactly [n] committed instructions. *)
val run_reference : Ptl_isa.Asm.image -> n:int -> Ptl_arch.Machine.t

(** Run the timed core [core] for at least [n] committed instructions.
    [inject] is called after every step with the VCPU context (fault
    injection for harness self-tests); [wrap] decorates the built
    registry instance (the guard supervisor installs itself here);
    [budget] bounds the step count. *)
val run_model :
  ?config:Ptl_ooo.Config.t ->
  ?core:string ->
  ?inject:(Ptl_arch.Context.t -> unit) ->
  ?wrap:
    (Ptl_arch.Env.t ->
    Ptl_arch.Context.t ->
    Ptl_ooo.Registry.instance ->
    Ptl_ooo.Registry.instance) ->
  ?budget:int ->
  Ptl_isa.Asm.image ->
  n:int ->
  Ptl_arch.Machine.t * stop

(** Architectural diff of two machines: registers/flags/rip plus the
    given guest-virtual [mem_ranges] (vaddr, length-in-bytes), compared
    quadword by quadword. *)
val diff_machines :
  ?mem_ranges:(int64 * int) list ->
  Ptl_arch.Machine.t ->
  Ptl_arch.Machine.t ->
  string list

(** Compare every [check_every] instructions up to [max_insns]. [inject]
    is a factory producing a fresh corruption callback per model run
    (each checkpoint re-simulates from the initial state). When tracing
    is armed, the ring is cleared before each model run and a divergence
    carries the last [trace_lines] events as text. *)
val validate :
  ?config:Ptl_ooo.Config.t ->
  ?core:string ->
  ?inject:(unit -> Ptl_arch.Context.t -> unit) ->
  ?wrap:
    (Ptl_arch.Env.t ->
    Ptl_arch.Context.t ->
    Ptl_ooo.Registry.instance ->
    Ptl_ooo.Registry.instance) ->
  ?budget:int ->
  ?mem_ranges:(int64 * int) list ->
  ?trace_lines:int ->
  ?check_every:int ->
  max_insns:int ->
  Ptl_isa.Asm.image ->
  result

(** Narrow the first divergent instruction between [lo] (agreeing) and
    [hi] (diverged). *)
val bisect :
  ?config:Ptl_ooo.Config.t ->
  ?core:string ->
  ?inject:(unit -> Ptl_arch.Context.t -> unit) ->
  ?wrap:
    (Ptl_arch.Env.t ->
    Ptl_arch.Context.t ->
    Ptl_ooo.Registry.instance ->
    Ptl_ooo.Registry.instance) ->
  ?budget:int ->
  ?mem_ranges:(int64 * int) list ->
  Ptl_isa.Asm.image ->
  lo:int ->
  hi:int ->
  int
