(** Domain checkpointing: capture and restore the machine state of a
    bare-metal (kernel-less) domain — physical memory, VCPU context and
    the virtual clock. This is the foundation of the interrupt/DMA
    trace-and-inject methodology of §4.2 ("a checkpoint of the target
    machine's physical memory and register state is captured ... the
    simulator then starts execution at the checkpoint"), and of
    checkpoint-parallel sampled simulation (lib/sample), where every
    measured interval is replayed from one of these by a worker domain.

    Full-system domains with a live minios instance carry host-side
    kernel bookkeeping (continuations) that is deliberately not
    checkpointable; the trace/inject experiments and parallel sampling
    run on bare-machine workloads, like the paper's device-level
    replay. *)

module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Pm = Ptl_mem.Phys_mem
module Uarch = Ptl_ooo.Uarch

type t = {
  mem_snapshot : Pm.t;
  ctx_snapshot : Context.t;
  cycle : int;
  tsc_offset : int64;
}

(** Capture the machine state. *)
let capture (env : Env.t) (ctx : Context.t) =
  {
    mem_snapshot = Pm.copy env.Env.mem;
    ctx_snapshot = Context.copy ctx;
    cycle = env.Env.cycle;
    tsc_offset = env.Env.tsc_offset;
  }

(** Restore the machine state in place: existing references to the
    environment and context remain valid, exactly like restarting a
    domain from a Xen checkpoint. *)
let restore t (env : Env.t) (ctx : Context.t) =
  Pm.restore env.Env.mem ~snapshot:t.mem_snapshot;
  Context.restore ctx ~snapshot:t.ctx_snapshot;
  env.Env.cycle <- t.cycle;
  env.Env.tsc_offset <- t.tsc_offset

(** Every difference between the live machine state and the checkpoint:
    architectural registers/rip/flags/mode (via {!Context.diff}), dirtied
    or (de)allocated physical pages, and the virtual clock. Empty =
    exact. ([Context.restore] bumps the TLB generation on purpose;
    generations are shoot-down bookkeeping, not architectural state, so
    they are not compared.) *)
let diff t (env : Env.t) (ctx : Context.t) =
  Context.diff ctx t.ctx_snapshot
  @ List.map
      (fun mfn -> Printf.sprintf "mem: frame mfn %#x differs" mfn)
      (Pm.diff env.Env.mem t.mem_snapshot)
  @ (if env.Env.cycle <> t.cycle then
       [ Printf.sprintf "cycle: %d vs %d" env.Env.cycle t.cycle ]
     else [])
  @
  if env.Env.tsc_offset <> t.tsc_offset then
    [
      Printf.sprintf "tsc_offset: %Ld vs %Ld" env.Env.tsc_offset t.tsc_offset;
    ]
  else []

(* ---- full checkpoints: machine + warmed microarchitecture ---- *)

(** A machine checkpoint extended with the warmed {!Ptl_ooo.Uarch}
    contents (cache tags/LRU + replacement-RNG cursors, TLBs, predictor
    tables) — what a parallel sampling worker needs to reproduce a
    measured interval exactly. *)
type full = { fk_machine : t; fk_uarch : Uarch.snapshot }

let capture_full ~(uarch : Uarch.t) env ctx =
  { fk_machine = capture env ctx; fk_uarch = Uarch.snapshot uarch }

(** Restore into a (possibly freshly built) machine and a [Uarch.t] of
    the same configuration. *)
let restore_full f ~uarch env ctx =
  restore f.fk_machine env ctx;
  Uarch.restore uarch ~snapshot:f.fk_uarch

(** Every difference between the live machine + microarchitectural state
    and the full checkpoint, each line naming the subsystem. Empty =
    exact round trip. *)
let diff_full f ~uarch env ctx =
  diff f.fk_machine env ctx @ Uarch.diff uarch f.fk_uarch
