(** Domain checkpointing: capture and restore the machine state of a
    bare-metal (kernel-less) domain — physical memory, VCPU context and
    the virtual clock. This is the foundation of the interrupt/DMA
    trace-and-inject methodology of §4.2 ("a checkpoint of the target
    machine's physical memory and register state is captured ... the
    simulator then starts execution at the checkpoint"), and of
    checkpoint-parallel sampled simulation (lib/sample), where every
    measured interval is replayed from one of these by a worker domain.

    Full-system domains with a live minios instance carry host-side
    kernel bookkeeping (continuations) that is deliberately not
    checkpointable; the trace/inject experiments and parallel sampling
    run on bare-machine workloads, like the paper's device-level
    replay. *)

module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Pm = Ptl_mem.Phys_mem
module Uarch = Ptl_ooo.Uarch

type t = {
  mem_snapshot : Pm.t;
  ctx_snapshot : Context.t;
  cycle : int;
  tsc_offset : int64;
}

(** Capture the machine state. *)
let capture (env : Env.t) (ctx : Context.t) =
  {
    mem_snapshot = Pm.copy env.Env.mem;
    ctx_snapshot = Context.copy ctx;
    cycle = env.Env.cycle;
    tsc_offset = env.Env.tsc_offset;
  }

(** Restore the machine state in place: existing references to the
    environment and context remain valid, exactly like restarting a
    domain from a Xen checkpoint. *)
let restore t (env : Env.t) (ctx : Context.t) =
  Pm.restore env.Env.mem ~snapshot:t.mem_snapshot;
  Context.restore ctx ~snapshot:t.ctx_snapshot;
  env.Env.cycle <- t.cycle;
  env.Env.tsc_offset <- t.tsc_offset

(** Every difference between the live machine state and the checkpoint:
    architectural registers/rip/flags/mode (via {!Context.diff}), dirtied
    or (de)allocated physical pages, and the virtual clock. Empty =
    exact. ([Context.restore] bumps the TLB generation on purpose;
    generations are shoot-down bookkeeping, not architectural state, so
    they are not compared.) *)
let diff t (env : Env.t) (ctx : Context.t) =
  Context.diff ctx t.ctx_snapshot
  @ List.map
      (fun mfn -> Printf.sprintf "mem: frame mfn %#x differs" mfn)
      (Pm.diff env.Env.mem t.mem_snapshot)
  @ (if env.Env.cycle <> t.cycle then
       [ Printf.sprintf "cycle: %d vs %d" env.Env.cycle t.cycle ]
     else [])
  @
  if env.Env.tsc_offset <> t.tsc_offset then
    [
      Printf.sprintf "tsc_offset: %Ld vs %Ld" env.Env.tsc_offset t.tsc_offset;
    ]
  else []

(* ---- full checkpoints: machine + warmed microarchitecture ---- *)

(** A machine checkpoint extended with the warmed {!Ptl_ooo.Uarch}
    contents (cache tags/LRU + replacement-RNG cursors, TLBs, predictor
    tables) — what a parallel sampling worker needs to reproduce a
    measured interval exactly. *)
type full = { fk_machine : t; fk_uarch : Uarch.snapshot }

let capture_full ~(uarch : Uarch.t) env ctx =
  { fk_machine = capture env ctx; fk_uarch = Uarch.snapshot uarch }

(** Restore into a (possibly freshly built) machine and a [Uarch.t] of
    the same configuration. *)
let restore_full f ~uarch env ctx =
  restore f.fk_machine env ctx;
  Uarch.restore uarch ~snapshot:f.fk_uarch

(** Every difference between the live machine + microarchitectural state
    and the full checkpoint, each line naming the subsystem. Empty =
    exact round trip. *)
let diff_full f ~uarch env ctx =
  diff f.fk_machine env ctx @ Uarch.diff uarch f.fk_uarch

(* ---- delta checkpoints: base image + per-interval footprints ---- *)

(** The master image a run of delta checkpoints is relative to: a deep
    copy of guest memory plus the warmed {!Uarch} snapshot at capture
    time. Immutable once captured, so any number of replay workers (on
    any number of {!Stdlib.Domain}s or processes) share one base. *)
type base = { bk_mem : Pm.t; bk_uarch : Uarch.snapshot }

(** Capture the base image and arm the environment's dirty-page
    tracking: subsequent {!capture_delta}s record only pages touched
    since this call. *)
let capture_base ~(uarch : Uarch.t) (env : Env.t) =
  let b = { bk_mem = Pm.copy env.Env.mem; bk_uarch = Uarch.snapshot uarch } in
  Pm.clear_dirty env.Env.mem;
  b

(** A checkpoint expressed against a {!base}: the dirty pages since the
    base was captured, the (small) architectural context, the virtual
    clock, and the microarchitectural components that changed. Capture
    cost scales with the interval's footprint, not guest memory size. *)
type delta = {
  dk_pages : Pm.delta;
  dk_ctx : Context.t;
  dk_cycle : int;
  dk_tsc_offset : int64;
  dk_uarch : Uarch.delta;
}

let capture_delta ~(base : base) ~(uarch : Uarch.t) (env : Env.t)
    (ctx : Context.t) =
  {
    dk_pages = Pm.delta env.Env.mem;
    dk_ctx = Context.copy ctx;
    dk_cycle = env.Env.cycle;
    dk_tsc_offset = env.Env.tsc_offset;
    dk_uarch = Uarch.delta uarch ~base:base.bk_uarch;
  }

(** Guest memory pages a delta carries (its footprint). *)
let delta_pages d = Pm.delta_pages d.dk_pages

(** Serialized page payload of a delta, against {!full_page_bytes} for
    the full image it replaces. *)
let delta_page_bytes d = Pm.delta_bytes d.dk_pages

(** Page payload of a full checkpoint of [env]'s memory. *)
let full_page_bytes (env : Env.t) =
  Pm.allocated_pages env.Env.mem * Pm.page_size

(** A private physical memory reproducing the delta's capture point:
    a copy-on-write clone of the base overlaid with the dirty pages.
    O(frames + footprint), not O(guest bytes). *)
let clone_mem ~(base : base) (d : delta) =
  let mem = Pm.clone_cow base.bk_mem in
  Pm.apply_delta mem d.dk_pages;
  mem

(** Restore a delta checkpoint in place into a machine + [Uarch.t] of
    the same configuration (the memory is rebuilt from the base plus
    the delta's pages; prefer {!clone_mem} + {!Ptl_arch.Env.create}
    [?mem] when building fresh worker state, which shares the base
    copy-on-write instead of copying it). *)
let restore_delta ~(base : base) (d : delta) ~uarch (env : Env.t)
    (ctx : Context.t) =
  Pm.restore env.Env.mem ~snapshot:base.bk_mem;
  Pm.apply_delta env.Env.mem d.dk_pages;
  Context.restore ctx ~snapshot:d.dk_ctx;
  env.Env.cycle <- d.dk_cycle;
  env.Env.tsc_offset <- d.dk_tsc_offset;
  Uarch.restore_delta uarch ~base:base.bk_uarch ~delta:d.dk_uarch

(** Restore a delta checkpoint in place {e and re-arm dirty-page
    tracking as if the original capture run were still in flight}:
    after this call the dirty set is exactly the delta's page set —
    what the original run had dirty at that capture moment (deltas are
    cumulative since {!capture_base}). A resumed capture's subsequent
    {!capture_delta}s are therefore byte-identical to the uninterrupted
    run's. Plain {!restore_delta} instead leaves {e every} frame dirty
    (restore marks all it touches), which is correct for replay but
    would bloat resumed deltas and break resume byte-identity. *)
let resume_delta ~(base : base) (d : delta) ~uarch (env : Env.t)
    (ctx : Context.t) =
  Pm.restore env.Env.mem ~snapshot:base.bk_mem;
  Pm.clear_dirty env.Env.mem;
  Pm.apply_delta env.Env.mem d.dk_pages;
  Context.restore ctx ~snapshot:d.dk_ctx;
  (* Context.restore bumps tlb_generation to invalidate a live machine's
     stale TLB entries — but a resume rebuilds the uarch TLBs to exactly
     the checkpoint state below, so the bump would only make the resumed
     run's future snapshots disagree with the original's by one
     generation. Restore the counter exactly. *)
  ctx.Context.tlb_generation <- d.dk_ctx.Context.tlb_generation;
  env.Env.cycle <- d.dk_cycle;
  env.Env.tsc_offset <- d.dk_tsc_offset;
  Uarch.restore_delta uarch ~base:base.bk_uarch ~delta:d.dk_uarch

(** Restore a delta's microarchitectural and context/clock state into
    freshly built worker state whose memory already came from
    {!clone_mem}. *)
let restore_delta_into ~(base : base) (d : delta) ~uarch (env : Env.t)
    (ctx : Context.t) =
  Context.restore ctx ~snapshot:d.dk_ctx;
  env.Env.cycle <- d.dk_cycle;
  env.Env.tsc_offset <- d.dk_tsc_offset;
  Uarch.restore_delta uarch ~base:base.bk_uarch ~delta:d.dk_uarch

(** {!restore_delta_into} with geometry tolerance: uarch components the
    snapshot does not fit (a sweep leg replaying under a different
    machine configuration) start cold and re-warm during the warm-up
    phase. Returns the component names started cold; empty for a
    same-configuration replay, which restores exactly as
    {!restore_delta_into}. *)
let restore_delta_into_fit ~(base : base) (d : delta) ~uarch (env : Env.t)
    (ctx : Context.t) =
  Context.restore ctx ~snapshot:d.dk_ctx;
  env.Env.cycle <- d.dk_cycle;
  env.Env.tsc_offset <- d.dk_tsc_offset;
  Uarch.restore_delta_fit uarch ~base:base.bk_uarch ~delta:d.dk_uarch

(** {!restore_full} with the same geometry tolerance. *)
let restore_full_fit f ~uarch env ctx =
  restore f.fk_machine env ctx;
  Uarch.restore_fit uarch ~snapshot:f.fk_uarch
