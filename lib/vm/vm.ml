(** The virtual-memory scenario layer: lazily-populated address spaces,
    demand-fault resolution, 2M-page promotion/splitting, watermark-driven
    reclaim and TLB-shootdown orchestration.

    Division of labour mirrors the minios kernel model: the *policy* here
    is host-side bookkeeping (VMA lists, the CLOCK hand, the swap store),
    exactly like a real kernel's mm structures live outside the faulting
    instruction — but every guest-visible consequence is architectural:
    faults are delivered through the simulated IDT and handled by real
    guest entry/exit code, mappings are edited in the simulated page
    tables, and invalidations reach remote VCPUs as interrupt IPIs, so the
    kernel-mode cycle accounting covers genuine memory-management work.

    Reclaim runs CLOCK (second chance) over the hardware accessed bits the
    walker sets: each pass over the resident-frame queue clears A on
    referenced pages and evicts unreferenced ones. Evicted page contents
    go to a host-side swap store and come back on the next fault, so
    eviction is always safe regardless of backing. *)

module Pm = Ptl_mem.Phys_mem
module Pt = Ptl_mem.Pagetable
module Context = Ptl_arch.Context
module Stats = Ptl_stats.Statstree
module Trace = Ptl_trace.Trace

(** What fills a page of a mapping on first touch: zeroes (anonymous
    heap/stack) or bytes of a program image at [base]. *)
type backing = Zero | Image of { bytes : string; base : int64 }

type vma = {
  vma_start : int64;  (* page-aligned *)
  vma_pages : int;
  vma_writable : bool;
  vma_backing : backing;
}

type space = { sp_cr3 : int; mutable sp_vmas : vma list }

(* One resident demand-paged frame, queued in CLOCK order. *)
type frame = { fr_cr3 : int; fr_vaddr : int64; fr_mfn : int }

type fault_result = Resolved | Unmapped | Prot_violation

type t = {
  mem : Pm.t;
  stats : Stats.t;
  mutable ctxs : Context.t list;  (* VCPUs reachable by shootdown IPIs *)
  shootdown_vec : int option;
  watermark : int;  (* resident-frame budget; 0 = unlimited *)
  batch : int;  (* evictions per reclaim pass *)
  spaces : (int, space) Hashtbl.t;
  clock : frame Queue.t;
  (* (cr3, page vaddr) -> mfn for every frame this layer mapped; the
     authoritative resident set (CLOCK entries may be stale after unmap) *)
  resident : (int * int64, int) Hashtbl.t;
  swap : (int * int64, string) Hashtbl.t;
  mutable free : int list;  (* recycled frames *)
  c_faults : Stats.counter;
  c_fills : Stats.counter;
  c_swap_ins : Stats.counter;
  c_swap_outs : Stats.counter;
  c_evictions : Stats.counter;
  c_shootdowns : Stats.counter;
  c_promotions : Stats.counter;
  c_splits : Stats.counter;
}

let create ?(prefix = "vm") ?shootdown_vec ?(watermark = 0) ?(batch = 8) ~mem
    stats =
  {
    mem;
    stats;
    ctxs = [];
    shootdown_vec;
    watermark;
    batch = max 1 batch;
    spaces = Hashtbl.create 8;
    clock = Queue.create ();
    resident = Hashtbl.create 64;
    swap = Hashtbl.create 64;
    free = [];
    c_faults = Stats.counter stats (prefix ^ ".faults");
    c_fills = Stats.counter stats (prefix ^ ".fills");
    c_swap_ins = Stats.counter stats (prefix ^ ".swap_ins");
    c_swap_outs = Stats.counter stats (prefix ^ ".swap_outs");
    c_evictions = Stats.counter stats (prefix ^ ".evictions");
    c_shootdowns = Stats.counter stats (prefix ^ ".shootdowns");
    c_promotions = Stats.counter stats (prefix ^ ".promotions");
    c_splits = Stats.counter stats (prefix ^ ".splits");
  }

(** Register a VCPU as a shootdown-IPI target. *)
let attach_ctx t ctx = if not (List.memq ctx t.ctxs) then t.ctxs <- ctx :: t.ctxs

let space t ~cr3 =
  match Hashtbl.find_opt t.spaces cr3 with
  | Some sp -> sp
  | None ->
    let sp = { sp_cr3 = cr3; sp_vmas = [] } in
    Hashtbl.add t.spaces cr3 sp;
    sp

let page_base vaddr =
  Int64.logand vaddr (Int64.lognot (Int64.of_int Pm.page_mask))

(** Declare a lazily-populated mapping. Overlaps are resolved newest-first. *)
let add_vma t ~cr3 ~start ~pages ~writable ~backing =
  let sp = space t ~cr3 in
  sp.sp_vmas <-
    { vma_start = page_base start; vma_pages = pages; vma_writable = writable;
      vma_backing = backing }
    :: sp.sp_vmas

let find_vma t ~cr3 ~vaddr =
  match Hashtbl.find_opt t.spaces cr3 with
  | None -> None
  | Some sp ->
    List.find_opt
      (fun v ->
        vaddr >= v.vma_start
        && Int64.sub vaddr v.vma_start
           < Int64.of_int (v.vma_pages * Pm.page_size))
      sp.sp_vmas

let resident_pages t = Hashtbl.length t.resident
let faults t = Stats.value t.c_faults
let evictions t = Stats.value t.c_evictions
let shootdowns t = Stats.value t.c_shootdowns

(* ---- TLB invalidation ---- *)

(** Invalidate the translation structures of every VCPU on address space
    [cr3]. Flushes are immediate (generation bump) so no core can consume
    a stale translation; the invalidation *cost* is modeled by the
    shootdown IPI, which runs the guest's interrupt entry/exit path on
    each affected running VCPU. *)
let shootdown t ~cr3 =
  List.iter
    (fun (ctx : Context.t) ->
      if ctx.Context.cr3 = cr3 then begin
        Context.flush_tlbs ctx;
        match t.shootdown_vec with
        | Some vec when ctx.Context.running ->
          Context.raise_irq ctx vec;
          Stats.incr t.c_shootdowns;
          if !Trace.on then
            Trace.emit ~core:ctx.Context.vcpu_id ~info:(Int64.of_int cr3)
              Trace.Tlb_shootdown
        | _ -> ()
      end)
    t.ctxs

(* ---- frames and fills ---- *)

let alloc_frame t =
  match t.free with
  | mfn :: rest ->
    t.free <- rest;
    (* recycled frames carry stale contents; zero before reuse *)
    let b = Pm.frame t.mem mfn in
    Bytes.fill b 0 Pm.page_size '\x00';
    mfn
  | [] -> Pm.alloc_page t.mem

(* Fill the frame for [page_va] from swap if the page was evicted before,
   else from its VMA backing. *)
let fill_frame t ~cr3 ~page_va ~mfn (vma : vma) =
  let paddr = Pm.paddr_of_mfn mfn in
  match Hashtbl.find_opt t.swap (cr3, page_va) with
  | Some contents ->
    Hashtbl.remove t.swap (cr3, page_va);
    Stats.incr t.c_swap_ins;
    Pm.write_string t.mem paddr contents
  | None -> (
    Stats.incr t.c_fills;
    match vma.vma_backing with
    | Zero -> ()  (* fresh frames are already zeroed *)
    | Image { bytes; base } ->
      let len = String.length bytes in
      for i = 0 to Pm.page_size - 1 do
        let off = Int64.to_int (Int64.sub (Int64.add page_va (Int64.of_int i)) base) in
        if off >= 0 && off < len then Pm.write8 t.mem (paddr + i) (Char.code bytes.[off])
      done)

(* ---- reclaim: CLOCK with second chance over hardware A bits ---- *)

let evict t (fr : frame) =
  (* save contents to swap, unmap, recycle the frame *)
  let contents = Pm.read_string t.mem (Pm.paddr_of_mfn fr.fr_mfn) Pm.page_size in
  Hashtbl.replace t.swap (fr.fr_cr3, fr.fr_vaddr) contents;
  Stats.incr t.c_swap_outs;
  Stats.incr t.c_evictions;
  Pt.unmap t.mem ~cr3_mfn:fr.fr_cr3 ~vaddr:fr.fr_vaddr;
  Hashtbl.remove t.resident (fr.fr_cr3, fr.fr_vaddr);
  t.free <- fr.fr_mfn :: t.free;
  shootdown t ~cr3:fr.fr_cr3

(* Evict up to [n] frames, giving referenced pages a second chance. The
   scan is bounded so a fully-referenced resident set terminates after
   clearing every A bit (two passes). [keep] protects the page being
   faulted in right now. *)
let reclaim t ~keep n =
  let budget = ref n in
  let scans = ref (2 * (Queue.length t.clock + 1)) in
  while !budget > 0 && !scans > 0 && not (Queue.is_empty t.clock) do
    decr scans;
    let fr = Queue.pop t.clock in
    let key = (fr.fr_cr3, fr.fr_vaddr) in
    match Hashtbl.find_opt t.resident key with
    | Some mfn when mfn = fr.fr_mfn ->
      if keep = key then Queue.push fr t.clock
      else begin
        match Pt.leaf_pte t.mem ~cr3_mfn:fr.fr_cr3 ~vaddr:fr.fr_vaddr with
        | Some (pte_addr, pte, 0) when Int64.logand pte Pt.pte_a <> 0L ->
          (* referenced: clear A, second chance *)
          Pm.write64 t.mem pte_addr (Int64.logand pte (Int64.lognot Pt.pte_a));
          Queue.push fr t.clock
        | Some (_, _, 0) ->
          evict t fr;
          decr budget
        | Some _ | None ->
          (* huge-mapped or already unmapped: drop the stale record *)
          Hashtbl.remove t.resident key
      end
    | _ -> ()  (* stale CLOCK entry (page already evicted/unmapped) *)
  done

(* ---- fault resolution ---- *)

(** Resolve a #PF at [vaddr] in address space [cr3]: allocate and map a
    frame on first touch (running reclaim first when the resident budget
    is exhausted) and fill it from swap or the VMA backing. [ctx] is the
    faulting VCPU (its TLBs see the new mapping via the page tables; no
    flush is needed to *add* a translation). *)
let handle_fault t (ctx : Context.t) ~cr3 ~vaddr ~write =
  ignore ctx;
  match find_vma t ~cr3 ~vaddr with
  | None -> Unmapped
  | Some vma ->
    if write && not vma.vma_writable then Prot_violation
    else begin
      let page_va = page_base vaddr in
      let key = (cr3, page_va) in
      if Hashtbl.mem t.resident key then
        (* raced retry: the mapping already exists *)
        Resolved
      else begin
        Stats.incr t.c_faults;
        if !Trace.on then
          Trace.emit ~info:vaddr ~tag:(if write then "w" else "r")
            Trace.Page_fault;
        (* keep a floor under the budget: a single instruction can need
           code + stack + two data pages at once *)
        if t.watermark > 0 && Hashtbl.length t.resident >= max 8 t.watermark
        then reclaim t ~keep:key t.batch;
        let mfn = alloc_frame t in
        fill_frame t ~cr3 ~page_va ~mfn vma;
        Pt.map t.mem ~cr3_mfn:cr3 ~vaddr:page_va ~mfn
          ~writable:vma.vma_writable ~user:true
          ~alloc:(fun () -> Pm.alloc_page t.mem)
          ();
        Hashtbl.replace t.resident key mfn;
        Queue.push { fr_cr3 = cr3; fr_vaddr = page_va; fr_mfn = mfn } t.clock;
        Resolved
      end
    end

(* ---- 2M promotion and splitting ---- *)

(** Collapse the 2M-aligned region containing [vaddr] into one PS-set PDE.
    A fresh 2M-aligned block of 512 contiguous frames is allocated, every
    4K page's contents are migrated in (unpopulated demand pages are
    filled from their backing), and the old frames are recycled. Returns
    the 2M base frame, or None when no VMA fully covers the region. *)
let promote t ~cr3 ~vaddr =
  let base_va = Int64.logand vaddr (Int64.lognot (Int64.of_int Pt.huge_mask)) in
  let covered =
    match find_vma t ~cr3 ~vaddr:base_va with
    | Some v ->
      Int64.add base_va (Int64.of_int Pt.huge_size)
      <= Int64.add v.vma_start (Int64.of_int (v.vma_pages * Pm.page_size))
    | None -> false
  in
  if not covered then None
  else begin
    let vma = Option.get (find_vma t ~cr3 ~vaddr:base_va) in
    let block = Pm.alloc_pages t.mem ~align:Pt.huge_pages Pt.huge_pages in
    for i = 0 to Pt.huge_pages - 1 do
      let va = Int64.add base_va (Int64.of_int (i * Pm.page_size)) in
      let dst = Pm.paddr_of_mfn (block + i) in
      match Hashtbl.find_opt t.resident (cr3, va) with
      | Some mfn ->
        Pm.write_string t.mem dst
          (Pm.read_string t.mem (Pm.paddr_of_mfn mfn) Pm.page_size);
        Hashtbl.remove t.resident (cr3, va);
        t.free <- mfn :: t.free
      | None -> (
        match Pt.probe t.mem ~cr3_mfn:cr3 ~vaddr:va with
        | Some mfn ->
          (* eagerly-mapped page outside our resident set: migrate it *)
          Pm.write_string t.mem dst
            (Pm.read_string t.mem (Pm.paddr_of_mfn mfn) Pm.page_size)
        | None ->
          (* not populated yet: fill from swap/backing now *)
          (match Hashtbl.find_opt t.swap (cr3, va) with
          | Some contents ->
            Hashtbl.remove t.swap (cr3, va);
            Pm.write_string t.mem dst contents
          | None -> (
            match vma.vma_backing with
            | Zero -> ()
            | Image { bytes; base } ->
              let len = String.length bytes in
              for k = 0 to Pm.page_size - 1 do
                let off =
                  Int64.to_int (Int64.sub (Int64.add va (Int64.of_int k)) base)
                in
                if off >= 0 && off < len then
                  Pm.write8 t.mem (dst + k) (Char.code bytes.[off])
              done)))
    done;
    Pt.map t.mem ~cr3_mfn:cr3 ~vaddr:base_va ~mfn:block
      ~writable:vma.vma_writable ~user:true ~huge:true
      ~alloc:(fun () -> Pm.alloc_page t.mem)
      ();
    Stats.incr t.c_promotions;
    shootdown t ~cr3;
    Some block
  end

(** Replace the PS-set PDE covering [vaddr] with a table of 512 4K PTEs
    over the same contiguous frames (no copying). Returns true when a
    huge mapping was actually split. *)
let split t ~cr3 ~vaddr =
  match Pt.pde_of t.mem ~cr3_mfn:cr3 ~vaddr with
  | Some (pde_addr, pde)
    when Int64.logand pde Pt.pte_p <> 0L && Int64.logand pde Pt.pte_ps <> 0L ->
    let base_mfn = Pt.pte_mfn pde in
    let table = Pm.alloc_page t.mem in
    let flags =
      Int64.logand pde
        (Int64.logor
           (Int64.logor Pt.pte_w Pt.pte_u)
           (Int64.logor Pt.pte_a Pt.pte_d))
    in
    for i = 0 to Pt.huge_pages - 1 do
      let pte =
        Int64.logor
          (Int64.logor (Int64.of_int ((base_mfn + i) lsl Pm.page_shift)) Pt.pte_p)
          flags
      in
      Pm.write64 t.mem (Pm.paddr_of_mfn table + (8 * i)) pte
    done;
    Pm.write64 t.mem pde_addr
      (Int64.logor
         (Int64.of_int (table lsl Pm.page_shift))
         (Int64.logor Pt.pte_p
            (Int64.logor Pt.pte_w Pt.pte_u)));
    Stats.incr t.c_splits;
    shootdown t ~cr3;
    true
  | _ -> false
