(** The basic block cache: pre-decoded uop sequences keyed by far more than
    the RIP.

    As the paper stresses (§2.1), in a full-system simulator translated
    code must be identified by its virtual address *and* the physical page
    (MFN) it starts on, plus context bits such as kernel/user mode, because
    different address spaces may map different code at the same RIP. The
    cache also handles self-modifying code: every MFN with cached blocks is
    registered, and a committed store to such a page invalidates all blocks
    decoded from it (the core then flushes its pipeline).

    The basic block cache does not change the architecturally visible
    behaviour of the machine; it exists to make simulation fast — the
    `ablate-bbcache` bench measures exactly that claim. *)

module Stats = Ptl_stats.Statstree

type key = { krip : int64; kmfn : int; kkernel : bool }

type bb = {
  key : key;
  uops : Uop.t array;
  insn_count : int;
  byte_len : int;
  (* every MFN any instruction byte of the block touches *)
  mfns : int list;
  (* where fetch continues if the block ends without a taken branch *)
  fallthrough_rip : int64;
  (* whether the block ends in a branch/assist (vs a size limit cut) *)
  terminated : bool;
}

type t = {
  blocks : (key, bb) Hashtbl.t;
  by_mfn : (int, key list ref) Hashtbl.t;
  max_insns : int;
  max_uops : int;
  hits : Stats.counter;
  misses : Stats.counter;
  invalidations : Stats.counter;
  smc_flushes : Stats.counter;
}

let create ?(max_insns = 16) ?(max_uops = 48) stats =
  {
    blocks = Hashtbl.create 4096;
    by_mfn = Hashtbl.create 1024;
    max_insns;
    max_uops;
    hits = Stats.counter stats "bbcache.hits";
    misses = Stats.counter stats "bbcache.misses";
    invalidations = Stats.counter stats "bbcache.invalidations";
    smc_flushes = Stats.counter stats "bbcache.smc_flushes";
  }

let register_mfn t mfn key =
  match Hashtbl.find_opt t.by_mfn mfn with
  | Some l -> l := key :: !l
  | None -> Hashtbl.add t.by_mfn mfn (ref [ key ])

(** Translate a basic block starting at [rip]. [fetch] returns instruction
    bytes by virtual address (raising the caller's fault exception on
    translation failure); [mfn_of] maps a virtual address to the physical
    frame it lives on (used both for the cache key and SMC tracking). *)
let build t ~rip ~kernel ~fetch ~mfn_of =
  let key = { krip = rip; kmfn = mfn_of rip; kkernel = kernel } in
  let uops = ref [] in
  let nuops = ref 0 in
  let ninsns = ref 0 in
  let mfns = ref [ key.kmfn ] in
  let pos = ref rip in
  let terminated = ref false in
  (try
     let continue_ = ref true in
     while !continue_ do
       let insn, len = Ptl_isa.Decode.decode ~fetch ~rip:!pos in
       let next_rip = Int64.add !pos (Int64.of_int len) in
       let translated =
         try Microcode.translate insn ~rip:!pos ~next_rip
         with Microcode.Unimplemented _ -> raise (Ptl_isa.Decode.Invalid_opcode !pos)
       in
       (* Would this instruction overflow the block? Cut before it. *)
       if !ninsns > 0
          && (!ninsns + 1 > t.max_insns || !nuops + Array.length translated > t.max_uops)
       then continue_ := false
       else begin
         Array.iter (fun u -> uops := u :: !uops) translated;
         nuops := !nuops + Array.length translated;
         incr ninsns;
         (* record page(s) the instruction bytes occupy *)
         let last_byte = Int64.sub next_rip 1L in
         let m1 = mfn_of !pos and m2 = mfn_of last_byte in
         if not (List.mem m1 !mfns) then mfns := m1 :: !mfns;
         if not (List.mem m2 !mfns) then mfns := m2 :: !mfns;
         pos := next_rip;
         if Array.exists Uop.ends_block translated then begin
           terminated := true;
           continue_ := false
         end
       end
     done
   with exn ->
     (* Faults decoding the *first* instruction belong to the consumer
        (instruction fetch fault); mid-block faults just cut the block so
        the fault is taken when fetch actually reaches that instruction. *)
     if !ninsns = 0 then raise exn);
  let bb =
    {
      key;
      uops = Array.of_list (List.rev !uops);
      insn_count = !ninsns;
      byte_len = Int64.to_int (Int64.sub !pos rip);
      mfns = !mfns;
      fallthrough_rip = !pos;
      terminated = !terminated;
    }
  in
  Hashtbl.replace t.blocks key bb;
  List.iter (fun m -> register_mfn t m key) bb.mfns;
  bb

(** Look up (or decode and cache) the block at [rip]. *)
let lookup t ~rip ~kernel ~fetch ~mfn_of =
  let key = { krip = rip; kmfn = mfn_of rip; kkernel = kernel } in
  match Hashtbl.find_opt t.blocks key with
  | Some bb ->
    Stats.incr t.hits;
    if !Ptl_trace.Trace.on then Ptl_trace.Trace.emit ~rip Ptl_trace.Trace.Bb_hit;
    bb
  | None ->
    Stats.incr t.misses;
    if !Ptl_trace.Trace.on then Ptl_trace.Trace.emit ~rip Ptl_trace.Trace.Bb_miss;
    build t ~rip ~kernel ~fetch ~mfn_of

(** Invalidate every block decoded from [mfn]; returns how many died. *)
let invalidate_mfn t mfn =
  match Hashtbl.find_opt t.by_mfn mfn with
  | None -> 0
  | Some keys ->
    let n = ref 0 in
    List.iter
      (fun key ->
        if Hashtbl.mem t.blocks key then begin
          Hashtbl.remove t.blocks key;
          incr n
        end)
      !keys;
    Hashtbl.remove t.by_mfn mfn;
    Stats.add t.invalidations !n;
    !n

(** Does [mfn] back any cached code? (Cheap check for the store-commit
    path: only stores touching code pages trigger SMC handling.) *)
let mfn_has_code t mfn = Hashtbl.mem t.by_mfn mfn

(** A committed store hit [mfn]. If code was cached from that page, all of
    it is invalidated and the caller must flush its pipeline (returns
    true). This is the self-modifying-code protocol of §2.1. *)
let store_committed t mfn =
  if mfn_has_code t mfn then begin
    ignore (invalidate_mfn t mfn);
    Stats.incr t.smc_flushes;
    if !Ptl_trace.Trace.on then
      Ptl_trace.Trace.emit ~info:(Int64.of_int mfn) ~tag:"smc"
        Ptl_trace.Trace.Flush;
    true
  end
  else false

let size t = Hashtbl.length t.blocks

let clear t =
  Hashtbl.reset t.blocks;
  Hashtbl.reset t.by_mfn
