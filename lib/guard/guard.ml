(** Simulator self-checks and crash containment.

    PTLsim's credibility rests on the timed cores staying correct over
    billion-cycle runs, and the paper's own deadlock-prevention schemes
    (§2.2) show how easily a clustered OOO/SMT pipeline silently wedges
    or leaks structural resources. This subsystem keeps the models
    honest at runtime:

    - a pluggable {b invariant registry}: named structural checks (ROB
      ordering, physical-register conservation and leak detection, LSQ
      ordering, issue-queue slot conservation, cache tag/LRU and MSHR
      consistency, TLB internal consistency and — optionally —
      TLB↔pagetable agreement) built from small inspection hooks the
      core and memory subsystems expose;
    - a {b supervisor} wrapping any {!Ptl_ooo.Registry.instance}: it
      samples the registered invariants every [interval] steps, takes
      periodic {!Ptl_hyper.Checkpoint} snapshots, and on a watchdog
      lockup or invariant violation emits a {!Ptl_ooo.Sim_failure}
      diagnostic bundle — then either re-raises (default) or, under
      [degrade], rolls back to the last checkpoint and finishes the run
      on the sequential reference core so long experiments make forward
      progress instead of dying.

    The TLB↔pagetable agreement check is strict-mode only: between a
    guest store to a page table and the subsequent invlpg/CR3 write, a
    real TLB legitimately holds stale entries, so the check is sound
    only where the guest never edits live page tables (the bare-machine
    fuzz/cosim harnesses). *)

module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Registry = Ptl_ooo.Registry
module Config = Ptl_ooo.Config
module Ooo_core = Ptl_ooo.Ooo_core
module Inorder_core = Ptl_ooo.Inorder_core
module Physreg = Ptl_ooo.Physreg
module Sim_failure = Ptl_ooo.Sim_failure
module Hierarchy = Ptl_mem.Hierarchy
module Tlb = Ptl_mem.Tlb
module Pt = Ptl_mem.Pagetable
module Checkpoint = Ptl_hyper.Checkpoint
module Stats = Ptl_stats.Statstree

(* ---------- the invariant registry ---------- *)

(** One named structural check. [run] returns a violation description,
    or None while the invariant holds. [stride] cost-tiers the check:
    it runs on every [stride]-th sweep only (1 = every sweep). Full
    memory-array scans (cache tags, TLB levels, pagetable walks) are
    orders of magnitude more expensive than the core-structure checks,
    so they ride a slower cadence to keep the default sweep interval
    under the <10% overhead budget. *)
type check = {
  name : string;
  subsystem : string;
  stride : int;
  run : unit -> string option;
}

let make_check ?(stride = 1) ~name ~subsystem run =
  { name; subsystem; stride = max 1 stride; run }

(** First violated check, with its message. *)
let first_violation checks =
  List.fold_left
    (fun acc c ->
      match acc with
      | Some _ -> acc
      | None -> (match c.run () with Some msg -> Some (c, msg) | None -> None))
    None checks

(** First violated check among those due on sweep number [sweep]. *)
let first_violation_due ~sweep checks =
  first_violation (List.filter (fun c -> sweep mod c.stride = 0) checks)

(* ---------- per-structure check builders ---------- *)

(* Sweep stride for the full-array scans; the cheap core-structure
   checks run every sweep. *)
let expensive_stride = 16

(** Cache hierarchy + MSHR consistency, under subsystem [sub]. *)
let hierarchy_checks ~sub (env : Env.t) (h : Hierarchy.t) =
  [
    make_check ~stride:expensive_stride ~name:(sub ^ ".cache") ~subsystem:sub
      (fun () -> Hierarchy.check h ~cycle:env.Env.cycle);
  ]

(** TLB internal consistency, under subsystem [sub]. *)
let tlb_checks ~sub (tlbs : Tlb.t list) =
  List.map
    (fun tlb ->
      make_check ~stride:expensive_stride ~name:(sub ^ ".consistency")
        ~subsystem:sub (fun () -> Tlb.check tlb))
    tlbs

(** Strict-mode TLB↔pagetable agreement: every cached translation must
    match what a fresh walk of the current page tables produces. Only
    sound when the guest does not edit live page tables (see module
    doc). *)
let tlb_pagetable_check ~sub (env : Env.t) (ctx : Context.t) (tlb : Tlb.t) =
  make_check ~stride:expensive_stride ~name:(sub ^ ".pagetable")
    ~subsystem:sub (fun () ->
      List.fold_left
        (fun acc (tag, (e : Tlb.entry)) ->
          match acc with
          | Some _ -> acc
          | None ->
            (* A tag covers 4K or 2M depending on the entry's page size;
               comparing paddrs at the region base is size-agnostic (a
               fresh walk of a huge mapping yields the exact 4K frame). *)
            let vaddr = Tlb.vaddr_of_tag tag in
            (match
               Pt.walk env.Env.mem ~cr3_mfn:ctx.Context.cr3 ~vaddr ~write:false
                 ~user:false ~exec:false ~set_ad:false ()
             with
            | Ok tr when Pt.to_paddr tr vaddr = Tlb.paddr_of e vaddr -> None
            | Ok tr ->
              Some
                (Printf.sprintf
                   "tag %#Lx (%s) cached paddr %#x but pagetable says %#x"
                   tag
                   (if e.Tlb.huge then "2M" else "4K")
                   (Tlb.paddr_of e vaddr) (Pt.to_paddr tr vaddr))
            | Error _ ->
              Some
                (Printf.sprintf
                   "tag %#Lx cached (mfn %d) but no longer mapped" tag
                   e.Tlb.mfn)))
        None (Tlb.entries tlb))

(** Strict-mode PWC↔pagetable agreement: every cached walk-cache entry at
    depth [d] must name the very table a presence-only descent from CR3
    reaches for that prefix (depth 0 = PT, 1 = PD, 2 = PDPT). A PS leaf
    met above the target level means the entry outlived a promote. Same
    soundness caveat as the TLB check. *)
let pwc_pagetable_check ~sub (env : Env.t) (ctx : Context.t)
    (pwc : Ptl_mem.Pwc.t) =
  let mem = env.Env.mem in
  make_check ~stride:expensive_stride ~name:(sub ^ ".pagetable")
    ~subsystem:sub (fun () ->
      List.fold_left
        (fun acc (depth, prefix, table_mfn) ->
          match acc with
          | Some _ -> acc
          | None ->
            let vaddr =
              Int64.shift_left prefix (Pt.huge_shift + (Pt.index_bits * depth))
            in
            let rec descend level table =
              if level = depth then
                if table = table_mfn then None
                else
                  Some
                    (Printf.sprintf
                       "depth %d prefix %#Lx cached table mfn %d but \
                        pagetable says %d"
                       depth prefix table_mfn table)
              else
                let idx = Pt.vpn_index vaddr level in
                let pte =
                  Ptl_mem.Phys_mem.read64 mem
                    (Ptl_mem.Phys_mem.paddr_of_mfn table + (8 * idx))
                in
                if Int64.logand pte Pt.pte_p = 0L then
                  Some
                    (Printf.sprintf
                       "depth %d prefix %#Lx cached table mfn %d but the \
                        level-%d table is gone"
                       depth prefix table_mfn level)
                else if level = 1 && Int64.logand pte Pt.pte_ps <> 0L then
                  Some
                    (Printf.sprintf
                       "depth %d prefix %#Lx cached table mfn %d under a \
                        2M leaf (stale after promote)"
                       depth prefix table_mfn)
                else descend (level - 1) (Pt.pte_mfn pte)
            in
            descend 3 ctx.Context.cr3)
        None (Ptl_mem.Pwc.entries pwc))

(** The full invariant set for an out-of-order/SMT core. *)
let ooo_checks ?(strict_tlb = false) (env : Env.t) (core : Ooo_core.t) =
  let sub suffix = core.Ooo_core.prefix ^ "." ^ suffix in
  let structural =
    [
      make_check ~name:(sub "rob.order") ~subsystem:(sub "rob") (fun () ->
          Ooo_core.guard_rob_order_check core);
      make_check ~name:(sub "lsq.order") ~subsystem:(sub "lsq") (fun () ->
          Ooo_core.guard_lsq_check core);
      make_check ~name:(sub "physreg.conservation") ~subsystem:(sub "physreg")
        (fun () ->
          Physreg.conservation_check core.Ooo_core.prf
            ~iter_referenced:(Ooo_core.guard_iter_referenced core));
      make_check ~name:(sub "iq.conservation") ~subsystem:(sub "iq") (fun () ->
          Ooo_core.guard_iq_check core);
      make_check ~name:(sub "interlock.leak") ~subsystem:(sub "interlock")
        (fun () -> Ooo_core.guard_interlock_check core);
    ]
  in
  let mem =
    hierarchy_checks ~sub:(sub "mem") env core.Ooo_core.hierarchy
    @ tlb_checks ~sub:(sub "tlb") [ core.Ooo_core.dtlb; core.Ooo_core.itlb ]
  in
  let strict =
    if strict_tlb then
      let ctx = core.Ooo_core.threads.(0).Ooo_core.ctx in
      [
        tlb_pagetable_check ~sub:(sub "dtlb") env ctx core.Ooo_core.dtlb;
        tlb_pagetable_check ~sub:(sub "itlb") env ctx core.Ooo_core.itlb;
      ]
      @ (match core.Ooo_core.pwc with
        | Some pwc -> [ pwc_pagetable_check ~sub:(sub "pwc") env ctx pwc ]
        | None -> [])
    else []
  in
  structural @ mem @ strict

(** The invariant set for the in-order timed core (its pipeline state is
    a single block in flight; the structural surface is the memory
    system). *)
let inorder_checks ?(strict_tlb = false) (env : Env.t) (core : Inorder_core.t) =
  hierarchy_checks ~sub:"inorder.mem" env core.Inorder_core.hierarchy
  @ tlb_checks ~sub:"inorder.tlb"
      [ core.Inorder_core.dtlb; core.Inorder_core.itlb ]
  @
  if strict_tlb then
    [
      tlb_pagetable_check ~sub:"inorder.dtlb" env core.Inorder_core.ctx
        core.Inorder_core.dtlb;
      tlb_pagetable_check ~sub:"inorder.itlb" env core.Inorder_core.ctx
        core.Inorder_core.itlb;
    ]
    @ (match core.Inorder_core.pwc with
      | Some pwc ->
        [ pwc_pagetable_check ~sub:"inorder.pwc" env core.Inorder_core.ctx pwc ]
      | None -> [])
  else []

(** The invariant set behind a registry instance, chosen by its handle.
    The sequential reference core has no microarchitectural state to
    check. *)
let checks_for_instance ?strict_tlb (env : Env.t) (inst : Registry.instance) =
  match inst.Registry.handle with
  | Registry.Core_ooo core -> ooo_checks ?strict_tlb env core
  | Registry.Core_inorder core -> inorder_checks ?strict_tlb env core
  | Registry.Core_seq _ | Registry.Core_opaque -> []

(* ---------- the supervisor ---------- *)

type config = {
  interval : int;  (* run the invariant set every N steps *)
  checkpoint_every : int;  (* cycles between snapshots; 0 = none *)
  degrade : bool;  (* roll back + finish on the seq core on failure *)
  strict_tlb : bool;  (* arm the TLB↔pagetable agreement check *)
}

let default_config =
  { interval = 64; checkpoint_every = 0; degrade = false; strict_tlb = false }

type supervisor = {
  cfg : config;
  env : Env.t;
  ctx : Context.t;
  out : out_channel;
  mutable inner : Registry.instance;
  mutable checks : check list;
  mutable steps : int;
  mutable next_checkpoint : int;  (* cycle of the next snapshot *)
  mutable last_checkpoint : Checkpoint.t option;
  mutable degraded : bool;
  c_checks : Stats.counter;
  c_violations : Stats.counter;
  c_checkpoints : Stats.counter;
  c_rollbacks : Stats.counter;
  c_degraded : Stats.counter;
}

let take_checkpoint s =
  s.last_checkpoint <- Some (Checkpoint.capture s.env s.ctx);
  s.next_checkpoint <- s.env.Env.cycle + s.cfg.checkpoint_every;
  Stats.incr s.c_checkpoints

(* A failure surfaced: either re-raise for the driver to render and
   handle (default), or print the diagnostic bundle here and fall back
   to the sequential reference core from the last checkpoint (degrade —
   the failure is swallowed, so this is its only chance to be seen). *)
let handle_failure s (f : Sim_failure.t) =
  Stats.incr s.c_violations;
  if not s.cfg.degrade then raise (Sim_failure.Sim_failure f)
  else begin
    output_string s.out (Sim_failure.render f);
    flush s.out;
    (match s.last_checkpoint with
    | Some cp ->
      Checkpoint.restore cp s.env s.ctx;
      Stats.incr s.c_rollbacks;
      Printf.fprintf s.out
        "guard: rolled back to checkpoint at cycle %d; degrading to the seq core\n"
        s.env.Env.cycle
    | None ->
      Printf.fprintf s.out
        "guard: no checkpoint to roll back to; degrading to the seq core in place\n");
    flush s.out;
    s.degraded <- true;
    s.checks <- [];
    s.inner <- Registry.build "seq" Config.tiny s.env [| s.ctx |];
    Stats.incr s.c_degraded
  end

let run_checks s ~sweep =
  Stats.incr s.c_checks;
  match first_violation_due ~sweep s.checks with
  | None -> ()
  | Some (c, msg) ->
    let f =
      Sim_failure.make ~stats:s.env.Env.stats ~subsystem:c.subsystem
        ~kind:Sim_failure.Invariant ~cycle:s.env.Env.cycle
        ~rip:s.ctx.Context.rip
        (Printf.sprintf "%s: %s" c.name msg)
    in
    handle_failure s f

let sup_step s () =
  if s.degraded then s.inner.Registry.step ()
  else begin
    (try s.inner.Registry.step ()
     with Sim_failure.Sim_failure f -> handle_failure s f);
    if not s.degraded then begin
      s.steps <- s.steps + 1;
      if s.cfg.checkpoint_every > 0 && s.env.Env.cycle >= s.next_checkpoint
      then take_checkpoint s;
      if s.steps mod s.cfg.interval = 0 then
        run_checks s ~sweep:(s.steps / s.cfg.interval)
    end
  end

(** Extra named checks (e.g. a test's planted tripwire) on a wrapped
    instance. No effect on instances not produced by {!wrap}.

    The registry is process-global and mutex-guarded: fleet workers and
    sweep legs wrap a supervisor around every replay, and replays run
    concurrently on several {!Stdlib.Domain}s. (Each supervisor itself
    still belongs to the one domain driving its instance; only the
    name->supervisor table is shared.) *)
let supervisors : (string, supervisor) Hashtbl.t = Hashtbl.create 4

let supervisors_lock = Mutex.create ()

let find_supervisor name =
  Mutex.lock supervisors_lock;
  let s = Hashtbl.find_opt supervisors name in
  Mutex.unlock supervisors_lock;
  s

let register_check (inst : Registry.instance) c =
  match find_supervisor inst.Registry.model_name with
  | Some s -> s.checks <- c :: s.checks
  | None -> ()

(** Wrap [inst] in a supervisor over the (single) context [ctx]. The
    wrapped instance steps the original core, samples the invariant set
    every [interval] steps, snapshots every [checkpoint_every] cycles
    (when > 0, or once at wrap time under [degrade]), and contains
    failures per [config]. Diagnostic bundles go to [out] (stderr by
    default). *)
let wrap ?(config = default_config) ?(out = stderr) ~env ~ctx inst =
  let s =
    {
      cfg = config;
      env;
      ctx;
      out;
      inner = inst;
      checks = checks_for_instance ~strict_tlb:config.strict_tlb env inst;
      steps = 0;
      next_checkpoint = env.Env.cycle + max 1 config.checkpoint_every;
      last_checkpoint = None;
      degraded = false;
      c_checks = Stats.counter env.Env.stats "guard.check_passes";
      c_violations = Stats.counter env.Env.stats "guard.violations";
      c_checkpoints = Stats.counter env.Env.stats "guard.checkpoints";
      c_rollbacks = Stats.counter env.Env.stats "guard.rollbacks";
      c_degraded = Stats.counter env.Env.stats "guard.degraded";
    }
  in
  (* Under degrade a rollback target must always exist. *)
  if config.degrade then take_checkpoint s;
  let name = "guard:" ^ inst.Registry.model_name in
  Mutex.lock supervisors_lock;
  Hashtbl.replace supervisors name s;
  Mutex.unlock supervisors_lock;
  {
    Registry.model_name = name;
    step = sup_step s;
    idle = (fun () -> s.inner.Registry.idle ());
    insns = (fun () -> s.inner.Registry.insns ());
    handle = inst.Registry.handle;
  }

(** Whether a wrapped instance has fallen back to the seq core. *)
let degraded (inst : Registry.instance) =
  match find_supervisor inst.Registry.model_name with
  | Some s -> s.degraded
  | None -> false
