(** Declarative per-instruction specification of the x86lite-64 ISA.

    Following the x86isa/ACL2 line of work (PAPERS.md), this table is the
    repository's independent statement of what each instruction *means*:
    one row per mnemonic carrying the operand shapes the instruction
    admits, a per-flag Written/Preserved/Undefined lattice, the exception
    conditions it can raise, and an executable semantic function over a
    small architectural state. Everything else is derived from it:

    - {!Ptl_oracle.Oracle} interprets programs directly from the rows and
      is cross-checked against both the sequential reference core and the
      timed cores by the fuzz harness (three-way mode);
    - {!Ptl_oracle.Conformance} generates exhaustive corner-operand
      property tests per row, asserting the flag lattice;
    - [optlsim conformance --coverage] reports generator-reachable
      mnemonics with no row.

    INDEPENDENCE RULE: the semantic functions here must not call into
    [lib/uop] ([Exec]/[Microcode]), [lib/arch] ([Seqcore]) or the
    [W64] arithmetic helpers those use — the whole point is a second,
    independently written implementation, so a shared bug cannot hide.
    The only acceptable sharing is interface-level: the [W64.size] type,
    the RFLAGS bit positions in {!Ptl_isa.Flags}, the {!Ptl_isa.Insn}
    AST and the decoder (semantics are specified per decoded
    instruction; decode correctness is covered by the encoder/decoder
    round-trip tests). Where this model deliberately deviates from real
    x86 (DESIGN.md "Key modelling decisions"), the row's [note] records
    the deviation and the semantics mirror the model, e.g. rotates
    recompute ZF/SF/PF and REP ignores DF. *)

open Ptl_util
module Insn = Ptl_isa.Insn
module Regs = Ptl_isa.Regs
module Flags = Ptl_isa.Flags

(* ------------------------------------------------------------------ *)
(* Flag-effect lattice                                                 *)
(* ------------------------------------------------------------------ *)

(** Per-flag static effect. [Written]: the model computes the flag from
    the operation (property tests assert the write is non-vacuous over
    the corner sweep). [Preserved]: never modified (asserted on every
    case). [Undefined]: real x86 leaves it undefined or the update is
    count/operand-conditional; only oracle/core agreement is asserted. *)
type effect_ = Written | Preserved | Undefined

type lattice = {
  l_cf : effect_;
  l_pf : effect_;
  l_zf : effect_;
  l_sf : effect_;
  l_of : effect_;
}

let all_written = { l_cf = Written; l_pf = Written; l_zf = Written;
                    l_sf = Written; l_of = Written }
let all_preserved = { l_cf = Preserved; l_pf = Preserved; l_zf = Preserved;
                      l_sf = Preserved; l_of = Preserved }

(** Look up one flag's effect by its {!Flags.all_cc} name. *)
let effect_of l = function
  | "CF" -> l.l_cf
  | "PF" -> l.l_pf
  | "ZF" -> l.l_zf
  | "SF" -> l.l_sf
  | "OF" -> l.l_of
  | n -> invalid_arg ("Spec.effect_of: " ^ n)

let effect_name = function
  | Written -> "written"
  | Preserved -> "preserved"
  | Undefined -> "undefined"

(* ------------------------------------------------------------------ *)
(* Operand shapes and exception conditions                             *)
(* ------------------------------------------------------------------ *)

(** Operand shapes a row admits; drives the derived property-test
    generator (which sizes to sweep, whether memory forms exist). *)
type shape =
  | Plain  (* fixed operands or none: nop, cpuid, hlt, ret, ... *)
  | Alu_shape of W64.size list  (* rm dst x (reg|imm|mem) src *)
  | Rm_shape of W64.size list  (* single rm operand *)
  | Shift_shape of W64.size list
  | Widen_shape of (W64.size * W64.size) list  (* movzx/movsx (dst,src) *)
  | Reg_rm_shape of W64.size list  (* reg dst, rm src: imul2, cmovcc *)
  | Mul_shape of W64.size list  (* implicit rdx:rax widening forms *)
  | Push_shape
  | Pop_shape
  | Bit_shape of W64.size list
  | String_shape of W64.size list
  | Xchg_shape of W64.size list  (* xchg/xadd/cmpxchg rm x reg *)
  | Branch_shape
  | Setcc_shape
  | Fp_mem_shape  (* fld/fst/fadd..: one B8 memory operand *)
  | Fp_reg_shape  (* xmm,xmm binary / unary moves *)
  | Cvt_shape
  | Flagio_shape  (* pushf/popf *)

(** Exception conditions a row can trigger; the table-driven exception
    tests build one trigger scenario per condition per row. *)
type fault_cond =
  | F_de  (* #DE: divide by zero or quotient overflow *)
  | F_gp_user  (* #GP: privileged instruction in user mode *)
  | F_pf  (* #PF: memory operand on an unmapped page *)

(** A predicted architectural fault, with enough detail to compare
    against the delivery path (vector and CR2). *)
type fault =
  | Divide_fault
  | Privilege_fault
  | Access_fault of { addr : int64; write : bool }

let fault_vector = function
  | Divide_fault -> 0
  | Privilege_fault -> 13
  | Access_fault _ -> 14

(* ------------------------------------------------------------------ *)
(* Oracle architectural state                                          *)
(* ------------------------------------------------------------------ *)

type mode = User | Kernel

(** The oracle's whole world: registers, flags, rip and a byte-granular
    sparse memory over a backing function (the code image; unmapped-but-
    valid pages read as zero, like the machine's freshly mapped pages).
    Memory writes are journaled per step so a faulting instruction
    leaves no partial state behind, mirroring the sequential core's
    buffered macro-instruction commit. *)
type state = {
  regs : int64 array;  (* 16 GPRs, x86-64 encoding order *)
  xmms : int64 array;
  mutable st0 : int64;
  mutable rip : int64;
  mutable flags : int;
  mutable mode : mode;
  mutable halted : bool;
  mutable insns : int;  (* committed-unit count, aligned with seqcore *)
  mem : (int64, int) Hashtbl.t;  (* committed byte writes *)
  mutable journal : (int64 * int) list;  (* this step's pending writes *)
  backing : int64 -> int option;  (* initial contents (code image) *)
  valid : int64 -> bool;  (* mapped-address predicate, for #PF *)
}

exception Spec_fault of fault
exception Unsupported_insn of string

let make_state ~rip ~flags ~mode ~backing ~valid () =
  { regs = Array.make 16 0L; xmms = Array.make 16 0L; st0 = 0L; rip; flags;
    mode; halted = false; insns = 0; mem = Hashtbl.create 256; journal = [];
    backing; valid }

(* ------------------------------------------------------------------ *)
(* Independent word arithmetic                                         *)
(*                                                                     *)
(* Deliberately different formulations from lib/util/w64.ml: carries   *)
(* and overflows come from the classic bitwise carry-recurrence        *)
(* identities rather than unsigned compares, parity is a popcount      *)
(* loop, and the 128-bit multiplier works in 16-bit limbs.             *)
(* ------------------------------------------------------------------ *)

let bits = function W64.B1 -> 8 | W64.B2 -> 16 | W64.B4 -> 32 | W64.B8 -> 64

let size_mask sz =
  if bits sz = 64 then -1L else Int64.sub (Int64.shift_left 1L (bits sz)) 1L

let trunc sz v = Int64.logand v (size_mask sz)

let sext sz v =
  let s = 64 - bits sz in
  Int64.shift_right (Int64.shift_left v s) s

let msb sz v = Int64.logand (Int64.shift_right_logical v (bits sz - 1)) 1L = 1L
let lsb v = Int64.logand v 1L = 1L
let is_zero sz v = trunc sz v = 0L

(* Unsigned compare via sign-bias, not W64.ult's formulation. *)
let ucmp a b = compare (Int64.add a Int64.min_int) (Int64.add b Int64.min_int)

(* PF: even number of set bits in the low byte (popcount loop). *)
let parity v =
  let b = Int64.to_int (Int64.logand v 0xFFL) in
  let rec pop n acc = if n = 0 then acc else pop (n lsr 1) (acc + (n land 1)) in
  pop b 0 land 1 = 0

let fset mask b f = if b then f lor mask else f land lnot mask

let zsp sz r f =
  f
  |> fset Flags.zf_mask (is_zero sz r)
  |> fset Flags.sf_mask (msb sz r)
  |> fset Flags.pf_mask (parity r)

(* r = a + b + cin (mod 2^w). Carry-out of bit w-1 via the full-adder
   recurrence c' = (a&b) | ((a|b) & ~r); signed overflow via
   ~(a^b) & (a^r). Both read at the operand's top bit. *)
let add_cc sz a b cin f =
  let a = trunc sz a and b = trunc sz b in
  let r = trunc sz (Int64.add (Int64.add a b) (if cin then 1L else 0L)) in
  let carry =
    msb sz
      (Int64.logor (Int64.logand a b)
         (Int64.logand (Int64.logor a b) (Int64.lognot r)))
  in
  let ovf =
    msb sz (Int64.logand (Int64.lognot (Int64.logxor a b)) (Int64.logxor a r))
  in
  (r, f |> fset Flags.cf_mask carry |> fset Flags.of_mask ovf |> zsp sz r)

(* r = a - b - bin. Borrow via the full-subtractor recurrence
   br' = (~a&b) | ((~a|b) & r); overflow via (a^b) & (a^r). *)
let sub_cc sz a b bin f =
  let a = trunc sz a and b = trunc sz b in
  let r = trunc sz (Int64.sub (Int64.sub a b) (if bin then 1L else 0L)) in
  let na = Int64.lognot a in
  let borrow =
    msb sz (Int64.logor (Int64.logand na b) (Int64.logand (Int64.logor na b) r))
  in
  let ovf = msb sz (Int64.logand (Int64.logxor a b) (Int64.logxor a r)) in
  (r, f |> fset Flags.cf_mask borrow |> fset Flags.of_mask ovf |> zsp sz r)

let logic_cc sz r f =
  let r = trunc sz r in
  (r, f |> fset Flags.cf_mask false |> fset Flags.of_mask false |> zsp sz r)

(* Shifts and rotates, mirroring the model's documented choices (count
   masked to the operand width as on x86; count 0 leaves every flag;
   OF only written at count 1; rotates recompute ZF/SF/PF — a model
   deviation from x86, which preserves them). *)
let shift_cc op sz v count f =
  let w = bits sz in
  let v = trunc sz v in
  match op with
  | Insn.Shl ->
    let c = count land (if w = 64 then 63 else 31) in
    if c = 0 then (v, f)
    else
      let r, cf =
        if c >= w then (0L, c = w && lsb v)
        else
          ( trunc sz (Int64.shift_left v c),
            Int64.logand (Int64.shift_right_logical v (w - c)) 1L = 1L )
      in
      let f = fset Flags.cf_mask cf f in
      let f = if c = 1 then fset Flags.of_mask (cf <> msb sz r) f else f in
      (r, zsp sz r f)
  | Insn.Shr ->
    let c = count land (if w = 64 then 63 else 31) in
    if c = 0 then (v, f)
    else
      let r, cf =
        if c >= w then (0L, false)
        else
          ( Int64.shift_right_logical v c,
            Int64.logand (Int64.shift_right_logical v (c - 1)) 1L = 1L )
      in
      let f = fset Flags.cf_mask cf f in
      let f = if c = 1 then fset Flags.of_mask (msb sz v) f else f in
      (r, zsp sz r f)
  | Insn.Sar ->
    let c = count land (if w = 64 then 63 else 31) in
    if c = 0 then (v, f)
    else
      let sv = sext sz v in
      let r = trunc sz (Int64.shift_right sv (min c (w - 1))) in
      let cf =
        if c >= w then msb sz v
        else Int64.logand (Int64.shift_right sv (c - 1)) 1L = 1L
      in
      let f = fset Flags.cf_mask cf f in
      let f = if c = 1 then fset Flags.of_mask false f else f in
      (r, zsp sz r f)
  | Insn.Rol ->
    let c = count mod w in
    if c = 0 then (v, f)
    else
      let r =
        trunc sz
          (Int64.logor (Int64.shift_left v c)
             (Int64.shift_right_logical v (w - c)))
      in
      let cf = lsb r in
      let f = fset Flags.cf_mask cf f in
      let f = if c = 1 then fset Flags.of_mask (cf <> msb sz r) f else f in
      (r, zsp sz r f)
  | Insn.Ror ->
    let c = count mod w in
    if c = 0 then (v, f)
    else
      let r =
        trunc sz
          (Int64.logor (Int64.shift_right_logical v c)
             (Int64.shift_left v (w - c)))
      in
      let cf = msb sz r in
      let f = fset Flags.cf_mask cf f in
      let f =
        if c = 1 then
          fset Flags.of_mask
            (msb sz r
            <> (Int64.logand (Int64.shift_right_logical r (w - 2)) 1L = 1L))
            f
        else f
      in
      (r, zsp sz r f)

(* 64x64 -> 128-bit unsigned multiply in 16-bit limbs: partial products
   accumulate in plain OCaml ints and carries propagate limb by limb. *)
let mul128u a b =
  let limb x i = Int64.to_int (Int64.logand (Int64.shift_right_logical x (16 * i)) 0xFFFFL) in
  let acc = Array.make 8 0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      acc.(i + j) <- acc.(i + j) + (limb a i * limb b j)
    done
  done;
  let lo = ref 0L and hi = ref 0L and carry = ref 0 in
  for k = 0 to 7 do
    let v = acc.(k) + !carry in
    let low16 = Int64.of_int (v land 0xFFFF) in
    carry := v lsr 16;
    if k < 4 then lo := Int64.logor !lo (Int64.shift_left low16 (16 * k))
    else hi := Int64.logor !hi (Int64.shift_left low16 (16 * (k - 4)))
  done;
  (!lo, !hi)

(* Signed via magnitudes + 128-bit negation of the product. *)
let mul128s a b =
  let sa = a < 0L and sb = b < 0L in
  let au = if sa then Int64.neg a else a in
  let bu = if sb then Int64.neg b else b in
  let lo, hi = mul128u au bu in
  if sa <> sb then
    let lo' = Int64.neg lo in
    let hi' = if lo = 0L then Int64.neg hi else Int64.lognot hi in
    (lo', hi')
  else (lo, hi)

(* Low half of the widening multiply plus the model's CF=OF signal: the
   product does not fit the *signed* operand width (DESIGN.md notes this
   signed-fit rule is used even for unsigned mul). *)
let mull sz a b =
  let sa = sext sz a and sb = sext sz b in
  if sz = W64.B8 then
    let lo, hi = mul128s sa sb in
    (lo, hi <> Int64.shift_right lo 63)
  else
    let full = Int64.mul sa sb in
    let r = trunc sz full in
    (r, sext sz r <> full)

let mulh ~signed sz a b =
  if sz = W64.B8 then
    let _, hi = if signed then mul128s a b else mul128u a b in
    hi
  else
    let a = if signed then sext sz a else trunc sz a in
    let b = if signed then sext sz b else trunc sz b in
    let full = Int64.mul a b in
    if signed then trunc sz (Int64.shift_right full (bits sz))
    else Int64.shift_right_logical full (bits sz)

(* 128-by-64 unsigned divide with a two-word remainder register: all 128
   dividend bits shift in MSB-first and the remainder is reduced against
   the divisor after every shift. The caller has already excluded
   quotient overflow, so quotient bits above 63 never set. *)
let div128u ~hi ~lo ~d =
  if d = 0L then raise (Spec_fault Divide_fault);
  if ucmp hi d >= 0 then raise (Spec_fault Divide_fault);
  let rh = ref 0L and rl = ref 0L and q = ref 0L in
  for i = 127 downto 0 do
    let bit =
      if i >= 64 then Int64.logand (Int64.shift_right_logical hi (i - 64)) 1L
      else Int64.logand (Int64.shift_right_logical lo i) 1L
    in
    rh := Int64.logor (Int64.shift_left !rh 1) (Int64.shift_right_logical !rl 63);
    rl := Int64.logor (Int64.shift_left !rl 1) bit;
    if !rh <> 0L || ucmp !rl d >= 0 then begin
      if ucmp !rl d < 0 then rh := Int64.sub !rh 1L;
      rl := Int64.sub !rl d;
      if i < 64 then q := Int64.logor !q (Int64.shift_left 1L i)
    end
  done;
  (!q, !rl)

let div128s ~hi ~lo ~d =
  if d = 0L then raise (Spec_fault Divide_fault);
  let neg_dividend = hi < 0L in
  let hi, lo =
    if neg_dividend then
      let lo' = Int64.neg lo in
      let hi' = if lo = 0L then Int64.neg hi else Int64.lognot hi in
      (hi', lo')
    else (hi, lo)
  in
  let neg_divisor = d < 0L in
  let d_abs = if neg_divisor then Int64.neg d else d in
  let q, r = div128u ~hi ~lo ~d:d_abs in
  let q = if neg_dividend <> neg_divisor then Int64.neg q else q in
  let r = if neg_dividend then Int64.neg r else r in
  if neg_dividend <> neg_divisor then begin
    if q > 0L then raise (Spec_fault Divide_fault)
  end
  else if q < 0L then raise (Spec_fault Divide_fault);
  (q, r)

(* Condition codes, written out directly from the x86 truth table. *)
let cond_true (c : Flags.cond) f =
  let b m = f land m <> 0 in
  let cf = b Flags.cf_mask and zf = b Flags.zf_mask and sf = b Flags.sf_mask in
  let pf = b Flags.pf_mask and ovf = b Flags.of_mask in
  match c with
  | Flags.O -> ovf
  | Flags.NO -> not ovf
  | Flags.B -> cf
  | Flags.AE -> not cf
  | Flags.E -> zf
  | Flags.NE -> not zf
  | Flags.BE -> cf || zf
  | Flags.A -> (not cf) && not zf
  | Flags.S -> sf
  | Flags.NS -> not sf
  | Flags.P -> pf
  | Flags.NP -> not pf
  | Flags.L -> sf <> ovf
  | Flags.GE -> sf = ovf
  | Flags.LE -> zf || sf <> ovf
  | Flags.G -> (not zf) && sf = ovf

(* Scalar-double helpers (IEEE via the OCaml float runtime; exec.ml uses
   the same stdlib operators, which is unavoidable interface sharing —
   there is one IEEE 754). *)
let f64 bits = Int64.float_of_bits bits
let bits64 f = Int64.bits_of_float f

let fbinop (op : Insn.fpop) a b =
  match op with
  | Insn.Fadd -> bits64 (f64 a +. f64 b)
  | Insn.Fsub -> bits64 (f64 a -. f64 b)
  | Insn.Fmul -> bits64 (f64 a *. f64 b)
  | Insn.Fdiv -> bits64 (f64 a /. f64 b)

let sse_fpop = function
  | Insn.Addsd -> Insn.Fadd
  | Insn.Subsd -> Insn.Fsub
  | Insn.Mulsd -> Insn.Fmul
  | Insn.Divsd -> Insn.Fdiv

let f2i_indefinite = 9.22337203685477581e18

(* ------------------------------------------------------------------ *)
(* State accessors                                                     *)
(* ------------------------------------------------------------------ *)

let reg st r = st.regs.(r)

(* x86 partial-register writes: B1/B2 merge, B4 zero-extends, B8
   replaces. *)
let set_reg st sz r v =
  match sz with
  | W64.B8 -> st.regs.(r) <- v
  | W64.B4 -> st.regs.(r) <- trunc W64.B4 v
  | W64.B1 | W64.B2 ->
    let m = size_mask sz in
    st.regs.(r) <- Int64.logor (Int64.logand st.regs.(r) (Int64.lognot m))
        (Int64.logand v m)

let check_mapped st ~write addr =
  if not (st.valid addr) then raise (Spec_fault (Access_fault { addr; write }))

let read_byte st addr =
  check_mapped st ~write:false addr;
  match List.assoc_opt addr st.journal with
  | Some b -> b
  | None -> (
    match Hashtbl.find_opt st.mem addr with
    | Some b -> b
    | None -> ( match st.backing addr with Some b -> b | None -> 0))

let write_byte st addr b =
  check_mapped st ~write:true addr;
  st.journal <- (addr, b land 0xFF) :: st.journal

let read_mem st sz addr =
  let n = bits sz / 8 in
  let rec go i acc =
    if i >= n then acc
    else
      let b = read_byte st (Int64.add addr (Int64.of_int i)) in
      go (i + 1) (Int64.logor acc (Int64.shift_left (Int64.of_int b) (8 * i)))
  in
  go 0 0L

let write_mem st sz addr v =
  let n = bits sz / 8 in
  for i = 0 to n - 1 do
    write_byte st
      (Int64.add addr (Int64.of_int i))
      (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
  done

(** Flush the step's journaled writes into committed memory. The oracle
    driver calls this after a successful step; a faulting step drops the
    journal instead, so no partial instruction is ever visible. *)
let commit_journal st =
  List.iter (fun (a, b) -> Hashtbl.replace st.mem a b) (List.rev st.journal);
  st.journal <- []

let discard_journal st = st.journal <- []

let ea st (m : Insn.mem) =
  let base = match m.Insn.base with Some r -> reg st r | None -> 0L in
  let index =
    match m.Insn.index with
    | Some r -> Int64.mul (reg st r) (Int64.of_int m.Insn.scale)
    | None -> 0L
  in
  Int64.add base (Int64.add index m.Insn.disp)

(* rm/src operand reads zero-extend to the operand size, like loads and
   the uop layer's truncating operand fetch. *)
let read_rm st sz = function
  | Insn.Reg r -> trunc sz (reg st r)
  | Insn.Mem m -> read_mem st sz (ea st m)

let write_rm st sz rm v =
  match rm with
  | Insn.Reg r -> set_reg st sz r v
  | Insn.Mem m -> write_mem st sz (ea st m) v

let src_val st sz = function
  | Insn.RM rm -> read_rm st sz rm
  | Insn.Imm v -> trunc sz v

let require_kernel st =
  if st.mode <> Kernel then raise (Spec_fault Privilege_fault)

(* ------------------------------------------------------------------ *)
(* Per-row semantics                                                   *)
(* ------------------------------------------------------------------ *)

(** What one committed execution unit did with control. [Repeat] is one
    REP-string iteration: rip stays put, matching the sequential core's
    one-commit-per-loop-pass counting (a REP with count k commits k+1
    units: k body passes plus the final exit test). *)
type step = Next | Jump of int64 | Repeat | Halt_step

type sem = state -> Insn.t -> next_rip:int64 -> step

let bad_shape key = raise (Unsupported_insn key)

let strip = function Insn.Locked i -> i | i -> i

let alu_sem st insn ~next_rip:_ =
  match strip insn with
  | Insn.Alu (op, sz, dst, src) ->
    let a = read_rm st sz dst in
    let b = src_val st sz src in
    let f = st.flags in
    let cf_in = f land Flags.cf_mask <> 0 in
    let r, f' =
      match op with
      | Insn.Add -> add_cc sz a b false f
      | Insn.Adc -> add_cc sz a b cf_in f
      | Insn.Sub | Insn.Cmp -> sub_cc sz a b false f
      | Insn.Sbb -> sub_cc sz a b cf_in f
      | Insn.And -> logic_cc sz (Int64.logand a b) f
      | Insn.Or -> logic_cc sz (Int64.logor a b) f
      | Insn.Xor -> logic_cc sz (Int64.logxor a b) f
    in
    if op <> Insn.Cmp then write_rm st sz dst r;
    st.flags <- f';
    Next
  | _ -> bad_shape "alu"

let test_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Test (sz, dst, src) ->
    let a = read_rm st sz dst in
    let b = src_val st sz src in
    let _, f' = logic_cc sz (Int64.logand a b) st.flags in
    st.flags <- f';
    Next
  | _ -> bad_shape "test"

let mov_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Mov (sz, dst, src) ->
    write_rm st sz dst (src_val st sz src);
    Next
  | _ -> bad_shape "mov"

let movabs_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Movabs (d, v) ->
    st.regs.(d) <- v;
    Next
  | _ -> bad_shape "movabs"

let lea_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Lea (d, m) ->
    st.regs.(d) <- ea st m;
    Next
  | _ -> bad_shape "lea"

let widen_sem ~signed st insn ~next_rip:_ =
  match insn with
  | Insn.Movzx (dsz, ssz, d, rm) | Insn.Movsx (dsz, ssz, d, rm) ->
    let v = read_rm st ssz rm in
    set_reg st dsz d (if signed then sext ssz v else v);
    Next
  | _ -> bad_shape "widen"

let unary_sem st insn ~next_rip:_ =
  match strip insn with
  | Insn.Unary (op, sz, dst) ->
    let a = read_rm st sz dst in
    (match op with
    | Insn.Not -> write_rm st sz dst (Int64.lognot a)
    | Insn.Neg ->
      let r, f' = sub_cc sz 0L a false st.flags in
      write_rm st sz dst r;
      st.flags <- f'
    | Insn.Inc | Insn.Dec ->
      let r, f' =
        if op = Insn.Inc then add_cc sz a 1L false st.flags
        else sub_cc sz a 1L false st.flags
      in
      write_rm st sz dst r;
      (* inc/dec preserve CF, as on x86 *)
      st.flags <- f' land lnot Flags.cf_mask lor (st.flags land Flags.cf_mask));
    Next
  | _ -> bad_shape "unary"

let shift_sem st insn ~next_rip:_ =
  match strip insn with
  | Insn.Shift (op, sz, dst, count) ->
    let n =
      match count with
      | Insn.ImmC n -> n land 0xFF
      | Insn.Cl -> Int64.to_int (Int64.logand (reg st Regs.rcx) 0xFFL)
    in
    let a = read_rm st sz dst in
    let r, f' = shift_cc op sz a n st.flags in
    write_rm st sz dst r;
    st.flags <- f';
    Next
  | _ -> bad_shape "shift"

let setcc_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Setcc (c, dst) ->
    write_rm st W64.B1 dst (if cond_true c st.flags then 1L else 0L);
    Next
  | _ -> bad_shape "setcc"

let cmovcc_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Cmovcc (c, sz, d, rm) ->
    let v = read_rm st sz rm in
    (* the not-taken path still merges at the operand size, so a false
       32-bit cmov zero-extends its destination (model deviation) *)
    set_reg st sz d (if cond_true c st.flags then v else reg st d);
    Next
  | _ -> bad_shape "cmovcc"

let imul2_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Imul2 (sz, d, rm) ->
    let b = read_rm st sz rm in
    let r, sig_ = mull sz (reg st d) b in
    set_reg st sz d r;
    st.flags <-
      st.flags
      |> fset Flags.cf_mask sig_
      |> fset Flags.of_mask sig_
      |> zsp sz r;
    Next
  | _ -> bad_shape "imul2"

let muldiv_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Muldiv (op, sz, rm) ->
    if sz = W64.B1 then raise (Unsupported_insn "muldiv B1");
    let v = read_rm st sz rm in
    (match op with
    | Insn.Mul | Insn.Imul1 ->
      let a = reg st Regs.rax in
      let hi = mulh ~signed:(op = Insn.Imul1) sz a v in
      let lo, sig_ = mull sz a v in
      set_reg st sz Regs.rax lo;
      set_reg st sz Regs.rdx hi;
      st.flags <-
        st.flags
        |> fset Flags.cf_mask sig_
        |> fset Flags.of_mask sig_
        |> zsp sz lo
    | Insn.Div | Insn.Idiv ->
      let signed = op = Insn.Idiv in
      let q, r =
        if sz = W64.B8 then
          let hi = reg st Regs.rdx and lo = reg st Regs.rax in
          if signed then div128s ~hi ~lo ~d:v
          else div128u ~hi ~lo ~d:v
        else begin
          let w = bits sz in
          let d = if signed then sext sz v else v in
          if d = 0L then raise (Spec_fault Divide_fault);
          let dividend =
            Int64.logor
              (Int64.shift_left (trunc sz (reg st Regs.rdx)) w)
              (trunc sz (reg st Regs.rax))
          in
          if signed then begin
            (* sign-extend the 2w-bit dividend, then magnitude divide *)
            let s = 64 - (2 * w) in
            let dividend = Int64.shift_right (Int64.shift_left dividend s) s in
            let nd = dividend < 0L and nv = d < 0L in
            let du = if nd then Int64.neg dividend else dividend in
            let vu = if nv then Int64.neg d else d in
            let q, r = div128u ~hi:0L ~lo:du ~d:vu in
            let q = if nd <> nv then Int64.neg q else q in
            let r = if nd then Int64.neg r else r in
            let half = Int64.shift_left 1L (w - 1) in
            if q >= half || q < Int64.neg half then
              raise (Spec_fault Divide_fault);
            (trunc sz q, trunc sz r)
          end
          else begin
            let q, r = div128u ~hi:0L ~lo:dividend ~d in
            if ucmp q (size_mask sz) > 0 then raise (Spec_fault Divide_fault);
            (trunc sz q, trunc sz r)
          end
        end
      in
      set_reg st sz Regs.rax q;
      set_reg st sz Regs.rdx r);
    Next
  | _ -> bad_shape "muldiv"

let push_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Push src ->
    (* memory/immediate data resolves before the decrement; a register
       operand is read at store time, so "push rsp" stores the
       post-decrement rsp (model deviation, see DESIGN.md) *)
    let early =
      match src with
      | Insn.RM (Insn.Mem m) -> Some (read_mem st W64.B8 (ea st m))
      | Insn.Imm v -> Some v
      | Insn.RM (Insn.Reg _) -> None
    in
    st.regs.(Regs.rsp) <- Int64.sub st.regs.(Regs.rsp) 8L;
    let v =
      match (early, src) with
      | Some v, _ -> v
      | None, Insn.RM (Insn.Reg r) -> reg st r
      | None, _ -> assert false
    in
    write_mem st W64.B8 st.regs.(Regs.rsp) v;
    Next
  | _ -> bad_shape "push"

let pop_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Pop dst ->
    let v = read_mem st W64.B8 st.regs.(Regs.rsp) in
    st.regs.(Regs.rsp) <- Int64.add st.regs.(Regs.rsp) 8L;
    (match dst with
    | Insn.Reg d -> st.regs.(d) <- v
    (* a memory destination computes its address with the updated rsp *)
    | Insn.Mem m -> write_mem st W64.B8 (ea st m) v);
    Next
  | _ -> bad_shape "pop"

let call_sem st insn ~next_rip =
  match insn with
  | Insn.Call target ->
    st.regs.(Regs.rsp) <- Int64.sub st.regs.(Regs.rsp) 8L;
    write_mem st W64.B8 st.regs.(Regs.rsp) next_rip;
    Jump target
  | Insn.CallInd rm ->
    let target = read_rm st W64.B8 rm in
    st.regs.(Regs.rsp) <- Int64.sub st.regs.(Regs.rsp) 8L;
    write_mem st W64.B8 st.regs.(Regs.rsp) next_rip;
    Jump target
  | _ -> bad_shape "call"

let ret_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Ret ->
    let v = read_mem st W64.B8 st.regs.(Regs.rsp) in
    st.regs.(Regs.rsp) <- Int64.add st.regs.(Regs.rsp) 8L;
    Jump v
  | _ -> bad_shape "ret"

let jmp_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Jmp target -> Jump target
  | Insn.JmpInd rm -> Jump (read_rm st W64.B8 rm)
  | _ -> bad_shape "jmp"

let jcc_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Jcc (c, target) -> if cond_true c st.flags then Jump target else Next
  | _ -> bad_shape "jcc"

let xchg_sem st insn ~next_rip:_ =
  match strip insn with
  | Insn.Xchg (sz, dst, r) ->
    let old = read_rm st sz dst in
    write_rm st sz dst (reg st r);
    set_reg st sz r old;
    Next
  | _ -> bad_shape "xchg"

let xadd_sem st insn ~next_rip:_ =
  match strip insn with
  | Insn.Xadd (sz, dst, r) ->
    let old = read_rm st sz dst in
    let sum, f' = add_cc sz old (reg st r) false st.flags in
    write_rm st sz dst sum;
    set_reg st sz r old;
    st.flags <- f';
    Next
  | _ -> bad_shape "xadd"

let cmpxchg_sem st insn ~next_rip:_ =
  match strip insn with
  | Insn.Cmpxchg (sz, dst, r) ->
    let old = read_rm st sz dst in
    let rax = reg st Regs.rax in
    let _, f' = sub_cc sz rax old false st.flags in
    let eq = trunc sz rax = old in
    (* the store happens either way (old value written back on miss) *)
    write_rm st sz dst (if eq then reg st r else old);
    set_reg st sz Regs.rax (if eq then rax else old);
    st.flags <- f';
    Next
  | _ -> bad_shape "cmpxchg"

let bittest_sem st insn ~next_rip:_ =
  match strip insn with
  | Insn.Bittest (op, sz, dst, src) ->
    let idx =
      match src with
      | Insn.Breg r -> reg st r
      | Insn.Bimm n -> Int64.of_int n
    in
    (* the bit index wraps within the addressed word even for memory
       operands (model deviation: real x86 bt-mem addresses beyond) *)
    let bit = Int64.to_int (Int64.unsigned_rem idx (Int64.of_int (bits sz))) in
    let a = read_rm st sz dst in
    let mask = Int64.shift_left 1L bit in
    let cf = Int64.logand a mask <> 0L in
    (match op with
    | Insn.Bt -> ()
    | Insn.Bts -> write_rm st sz dst (Int64.logor a mask)
    | Insn.Btr -> write_rm st sz dst (Int64.logand a (Int64.lognot mask))
    | Insn.Btc -> write_rm st sz dst (Int64.logxor a mask));
    st.flags <- fset Flags.cf_mask cf st.flags;
    Next
  | _ -> bad_shape "bittest"

(* REP strings: one committed unit per loop pass; the exit test is its
   own unit. Pointers always advance (REP ignores DF in this model). *)
let string_sem st insn ~next_rip:_ =
  let step sz = Int64.of_int (bits sz / 8) in
  let body = function
    | Insn.Movs (sz, _) ->
      let v = read_mem st sz (reg st Regs.rsi) in
      write_mem st sz (reg st Regs.rdi) v;
      st.regs.(Regs.rsi) <- Int64.add st.regs.(Regs.rsi) (step sz);
      st.regs.(Regs.rdi) <- Int64.add st.regs.(Regs.rdi) (step sz)
    | Insn.Stos (sz, _) ->
      write_mem st sz (reg st Regs.rdi) (reg st Regs.rax);
      st.regs.(Regs.rdi) <- Int64.add st.regs.(Regs.rdi) (step sz)
    | Insn.Lods (sz, _) ->
      let v = read_mem st sz (reg st Regs.rsi) in
      set_reg st sz Regs.rax v;
      st.regs.(Regs.rsi) <- Int64.add st.regs.(Regs.rsi) (step sz)
    | _ -> bad_shape "string"
  in
  match insn with
  | Insn.Movs (_, rep) | Insn.Stos (_, rep) | Insn.Lods (_, rep) ->
    if rep then begin
      if reg st Regs.rcx = 0L then Next
      else begin
        body insn;
        st.regs.(Regs.rcx) <- Int64.sub st.regs.(Regs.rcx) 1L;
        Repeat
      end
    end
    else begin
      body insn;
      Next
    end
  | _ -> bad_shape "string"

let hlt_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Hlt ->
    require_kernel st;
    st.halted <- true;
    Halt_step
  | _ -> bad_shape "hlt"

let pushf_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Pushf ->
    st.regs.(Regs.rsp) <- Int64.sub st.regs.(Regs.rsp) 8L;
    write_mem st W64.B8 st.regs.(Regs.rsp) (Int64.of_int st.flags);
    Next
  | _ -> bad_shape "pushf"

let popf_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Popf ->
    let v = read_mem st W64.B8 st.regs.(Regs.rsp) in
    st.regs.(Regs.rsp) <- Int64.add st.regs.(Regs.rsp) 8L;
    let nf = Int64.to_int v in
    (* user mode cannot change IF *)
    let nf =
      if st.mode = User then
        nf land lnot Flags.if_mask lor (st.flags land Flags.if_mask)
      else nf
    in
    st.flags <- nf;
    Next
  | _ -> bad_shape "popf"

let nop_sem _st _insn ~next_rip:_ = Next

let cpuid_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Cpuid ->
    (* "OPTLsim x_64", as the A_cpuid assist reports *)
    st.regs.(Regs.rax) <- 1L;
    st.regs.(Regs.rbx) <- 0x4C54504FL;
    st.regs.(Regs.rcx) <- 0x206D6973L;
    st.regs.(Regs.rdx) <- 0x34365F78L;
    Next
  | _ -> bad_shape "cpuid"

let fld_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Fld m ->
    st.st0 <- read_mem st W64.B8 (ea st m);
    Next
  | _ -> bad_shape "fld"

let fst_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Fst m ->
    write_mem st W64.B8 (ea st m) st.st0;
    Next
  | _ -> bad_shape "fst"

let fp_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Fp (op, m) ->
    st.st0 <- fbinop op st.st0 (read_mem st W64.B8 (ea st m));
    Next
  | _ -> bad_shape "fp"

let sse_sem st insn ~next_rip:_ =
  match insn with
  | Insn.SseLoad (x, m) ->
    st.xmms.(x) <- read_mem st W64.B8 (ea st m);
    Next
  | Insn.SseStore (m, x) ->
    write_mem st W64.B8 (ea st m) st.xmms.(x);
    Next
  | Insn.SseMov (xd, xs) ->
    st.xmms.(xd) <- st.xmms.(xs);
    Next
  | Insn.Sse (op, xd, xs) ->
    st.xmms.(xd) <- fbinop (sse_fpop op) st.xmms.(xd) st.xmms.(xs);
    Next
  | _ -> bad_shape "sse"

let cvtsi2sd_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Cvtsi2sd (x, r) ->
    st.xmms.(x) <- bits64 (Int64.to_float (reg st r));
    Next
  | _ -> bad_shape "cvtsi2sd"

let cvtsd2si_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Cvtsd2si (r, x) ->
    let fv = f64 st.xmms.(x) in
    st.regs.(r) <-
      (if Float.is_nan fv || fv >= f2i_indefinite || fv <= -.f2i_indefinite
       then Int64.min_int
       else Int64.of_float fv);
    Next
  | _ -> bad_shape "cvtsd2si"

let comisd_sem st insn ~next_rip:_ =
  match insn with
  | Insn.Comisd (xa, xb) ->
    let fa = f64 st.xmms.(xa) and fb = f64 st.xmms.(xb) in
    let zf, pf, cf =
      if Float.is_nan fa || Float.is_nan fb then (true, true, true)
      else if fa > fb then (false, false, false)
      else if fa < fb then (false, false, true)
      else (true, false, false)
    in
    st.flags <-
      st.flags
      |> fset Flags.zf_mask zf
      |> fset Flags.pf_mask pf
      |> fset Flags.cf_mask cf
      |> fset Flags.sf_mask false
      |> fset Flags.of_mask false;
    Next
  | _ -> bad_shape "comisd"

(* ------------------------------------------------------------------ *)
(* The table                                                           *)
(* ------------------------------------------------------------------ *)

type row = {
  key : string;  (* Insn.mnemonic *)
  shape : shape;
  lattice : lattice;
  faults : fault_cond list;
  note : string;  (* model deviations from real x86, "" if none *)
  sem : sem;
}

let all_sizes = [ W64.B1; W64.B2; W64.B4; W64.B8 ]
let wide_sizes = [ W64.B2; W64.B4; W64.B8 ]

let widen_pairs =
  [ (W64.B2, W64.B1); (W64.B4, W64.B1); (W64.B4, W64.B2);
    (W64.B8, W64.B1); (W64.B8, W64.B2); (W64.B8, W64.B4) ]

(* Shift rows: CF/ZF/SF/PF written for any non-zero masked count; OF only
   at count 1, hence Undefined in the static lattice. *)
let shift_lattice =
  { l_cf = Written; l_pf = Written; l_zf = Written; l_sf = Written;
    l_of = Undefined }

let mul_lattice =
  (* x86 leaves ZF/SF/PF undefined after multiplies; the model defines
     them from the low result, so only oracle/core agreement is checked *)
  { l_cf = Written; l_pf = Undefined; l_zf = Undefined; l_sf = Undefined;
    l_of = Written }

let cf_only =
  { all_preserved with l_cf = Written }

let rows : row list =
  let alu op lat note =
    { key = Insn.alu_name op; shape = Alu_shape all_sizes; lattice = lat;
      faults = [ F_pf ]; note; sem = alu_sem }
  in
  [
    alu Insn.Add all_written "";
    alu Insn.Or all_written "logic ops clear CF/OF";
    alu Insn.Adc all_written "";
    alu Insn.Sbb all_written "";
    alu Insn.And all_written "logic ops clear CF/OF";
    alu Insn.Sub all_written "";
    alu Insn.Xor all_written "logic ops clear CF/OF";
    alu Insn.Cmp all_written "";
    { key = "test"; shape = Alu_shape all_sizes; lattice = all_written;
      faults = [ F_pf ]; note = "logic flags, no writeback"; sem = test_sem };
    { key = "mov"; shape = Alu_shape all_sizes; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = mov_sem };
    { key = "movabs"; shape = Plain; lattice = all_preserved; faults = [];
      note = ""; sem = movabs_sem };
    { key = "lea"; shape = Plain; lattice = all_preserved; faults = [];
      note = ""; sem = lea_sem };
    { key = "movzx"; shape = Widen_shape widen_pairs;
      lattice = all_preserved; faults = [ F_pf ]; note = "";
      sem = widen_sem ~signed:false };
    { key = "movsx"; shape = Widen_shape widen_pairs;
      lattice = all_preserved; faults = [ F_pf ]; note = "";
      sem = widen_sem ~signed:true };
    { key = "not"; shape = Rm_shape all_sizes; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = unary_sem };
    { key = "neg"; shape = Rm_shape all_sizes; lattice = all_written;
      faults = [ F_pf ]; note = ""; sem = unary_sem };
    { key = "inc"; shape = Rm_shape all_sizes;
      lattice = { all_written with l_cf = Preserved }; faults = [ F_pf ];
      note = "CF preserved, as on x86"; sem = unary_sem };
    { key = "dec"; shape = Rm_shape all_sizes;
      lattice = { all_written with l_cf = Preserved }; faults = [ F_pf ];
      note = "CF preserved, as on x86"; sem = unary_sem };
    { key = "shl"; shape = Shift_shape all_sizes; lattice = shift_lattice;
      faults = [ F_pf ];
      note = "count 0 leaves all flags; OF written only at count 1; \
              CF at count = width is the operand's LSB";
      sem = shift_sem };
    { key = "shr"; shape = Shift_shape all_sizes; lattice = shift_lattice;
      faults = [ F_pf ];
      note = "count 0 leaves all flags; OF written only at count 1";
      sem = shift_sem };
    { key = "sar"; shape = Shift_shape all_sizes; lattice = shift_lattice;
      faults = [ F_pf ];
      note = "count 0 leaves all flags; OF written only at count 1";
      sem = shift_sem };
    { key = "rol"; shape = Shift_shape all_sizes;
      lattice = shift_lattice; faults = [ F_pf ];
      note = "model recomputes ZF/SF/PF from the result (x86 preserves \
              them); count taken mod width";
      sem = shift_sem };
    { key = "ror"; shape = Shift_shape all_sizes;
      lattice = shift_lattice; faults = [ F_pf ];
      note = "model recomputes ZF/SF/PF from the result (x86 preserves \
              them); count taken mod width";
      sem = shift_sem };
    { key = "setcc"; shape = Setcc_shape; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = setcc_sem };
    { key = "cmovcc"; shape = Reg_rm_shape wide_sizes;
      lattice = all_preserved; faults = [ F_pf ];
      note = "a false 32-bit cmov still zero-extends its destination";
      sem = cmovcc_sem };
    { key = "imul2"; shape = Reg_rm_shape wide_sizes; lattice = mul_lattice;
      faults = [ F_pf ];
      note = "CF=OF = product does not fit the signed operand width; \
              ZF/SF/PF model-defined from the low result (x86: undefined)";
      sem = imul2_sem };
    { key = "mul"; shape = Mul_shape wide_sizes; lattice = mul_lattice;
      faults = [ F_pf ];
      note = "model uses the signed-fit rule for CF/OF even for unsigned \
              mul (x86 tests the high half); ZF/SF/PF from the low result";
      sem = muldiv_sem };
    { key = "imul"; shape = Mul_shape wide_sizes; lattice = mul_lattice;
      faults = [ F_pf ];
      note = "ZF/SF/PF model-defined from the low result (x86: undefined)";
      sem = muldiv_sem };
    { key = "div"; shape = Mul_shape wide_sizes; lattice = all_preserved;
      faults = [ F_de; F_pf ];
      note = "model preserves all flags (x86: undefined); #DE on divide \
              by zero or quotient overflow";
      sem = muldiv_sem };
    { key = "idiv"; shape = Mul_shape wide_sizes; lattice = all_preserved;
      faults = [ F_de; F_pf ];
      note = "model preserves all flags (x86: undefined); #DE on divide \
              by zero or quotient overflow";
      sem = muldiv_sem };
    { key = "push"; shape = Push_shape; lattice = all_preserved;
      faults = [ F_pf ];
      note = "push rsp stores the post-decrement rsp (model deviation)";
      sem = push_sem };
    { key = "pop"; shape = Pop_shape; lattice = all_preserved;
      faults = [ F_pf ];
      note = "a memory destination computes its address with the \
              incremented rsp";
      sem = pop_sem };
    { key = "call"; shape = Branch_shape; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = call_sem };
    { key = "ret"; shape = Branch_shape; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = ret_sem };
    { key = "jmp"; shape = Branch_shape; lattice = all_preserved;
      faults = []; note = ""; sem = jmp_sem };
    { key = "jcc"; shape = Branch_shape; lattice = all_preserved;
      faults = []; note = ""; sem = jcc_sem };
    { key = "xchg"; shape = Xchg_shape all_sizes; lattice = all_preserved;
      faults = [ F_pf ]; note = "memory forms are implicitly locked";
      sem = xchg_sem };
    { key = "xadd"; shape = Xchg_shape all_sizes; lattice = all_written;
      faults = [ F_pf ]; note = ""; sem = xadd_sem };
    { key = "cmpxchg"; shape = Xchg_shape all_sizes; lattice = all_written;
      faults = [ F_pf ];
      note = "flags from rax - dest; the store happens even on miss \
              (old value written back)";
      sem = cmpxchg_sem };
    { key = "bt"; shape = Bit_shape wide_sizes; lattice = cf_only;
      faults = [ F_pf ];
      note = "bit index wraps within the addressed word even for memory \
              operands (model deviation)";
      sem = bittest_sem };
    { key = "bts"; shape = Bit_shape wide_sizes; lattice = cf_only;
      faults = [ F_pf ]; note = "same index wrap as bt"; sem = bittest_sem };
    { key = "btr"; shape = Bit_shape wide_sizes; lattice = cf_only;
      faults = [ F_pf ]; note = "same index wrap as bt"; sem = bittest_sem };
    { key = "btc"; shape = Bit_shape wide_sizes; lattice = cf_only;
      faults = [ F_pf ]; note = "same index wrap as bt"; sem = bittest_sem };
    { key = "movs"; shape = String_shape all_sizes; lattice = all_preserved;
      faults = [ F_pf ];
      note = "REP ignores DF (always forward); one commit per iteration \
              plus the exit test";
      sem = string_sem };
    { key = "stos"; shape = String_shape all_sizes; lattice = all_preserved;
      faults = [ F_pf ]; note = "REP ignores DF (always forward)";
      sem = string_sem };
    { key = "lods"; shape = String_shape all_sizes; lattice = all_preserved;
      faults = [ F_pf ]; note = "REP ignores DF (always forward)";
      sem = string_sem };
    { key = "hlt"; shape = Plain; lattice = all_preserved;
      faults = [ F_gp_user ];
      note = "privileged; halts with rip at the next instruction";
      sem = hlt_sem };
    { key = "pushf"; shape = Flagio_shape; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = pushf_sem };
    { key = "popf"; shape = Flagio_shape; lattice = all_written;
      faults = [ F_pf ]; note = "user mode cannot change IF";
      sem = popf_sem };
    { key = "nop"; shape = Plain; lattice = all_preserved; faults = [];
      note = ""; sem = nop_sem };
    { key = "pause"; shape = Plain; lattice = all_preserved; faults = [];
      note = ""; sem = nop_sem };
    { key = "cpuid"; shape = Plain; lattice = all_preserved; faults = [];
      note = "rax/rbx/rcx/rdx <- the fixed \"OPTLsim x_64\" identity";
      sem = cpuid_sem };
    { key = "fld"; shape = Fp_mem_shape; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = fld_sem };
    { key = "fst"; shape = Fp_mem_shape; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = fst_sem };
    { key = "fadd"; shape = Fp_mem_shape; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = fp_sem };
    { key = "fsub"; shape = Fp_mem_shape; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = fp_sem };
    { key = "fmul"; shape = Fp_mem_shape; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = fp_sem };
    { key = "fdiv"; shape = Fp_mem_shape; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = fp_sem };
    { key = "sseload"; shape = Fp_mem_shape; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = sse_sem };
    { key = "ssestore"; shape = Fp_mem_shape; lattice = all_preserved;
      faults = [ F_pf ]; note = ""; sem = sse_sem };
    { key = "ssemov"; shape = Fp_reg_shape; lattice = all_preserved;
      faults = []; note = ""; sem = sse_sem };
    { key = "addsd"; shape = Fp_reg_shape; lattice = all_preserved;
      faults = []; note = ""; sem = sse_sem };
    { key = "subsd"; shape = Fp_reg_shape; lattice = all_preserved;
      faults = []; note = ""; sem = sse_sem };
    { key = "mulsd"; shape = Fp_reg_shape; lattice = all_preserved;
      faults = []; note = ""; sem = sse_sem };
    { key = "divsd"; shape = Fp_reg_shape; lattice = all_preserved;
      faults = []; note = ""; sem = sse_sem };
    { key = "cvtsi2sd"; shape = Cvt_shape; lattice = all_preserved;
      faults = []; note = ""; sem = cvtsi2sd_sem };
    { key = "cvtsd2si"; shape = Cvt_shape; lattice = all_preserved;
      faults = [];
      note = "NaN and out-of-range convert to the x86 integer indefinite \
              (0x8000000000000000)";
      sem = cvtsd2si_sem };
    { key = "comisd"; shape = Fp_reg_shape; lattice = all_written;
      faults = [];
      note = "unordered sets ZF/PF/CF; SF/OF cleared"; sem = comisd_sem };
  ]

type table = (string, row) Hashtbl.t

let table : table =
  let t = Hashtbl.create 97 in
  List.iter
    (fun r ->
      if Hashtbl.mem t r.key then invalid_arg ("Spec: duplicate row " ^ r.key);
      Hashtbl.add t r.key r)
    rows;
  t

let find (t : table) key = Hashtbl.find_opt t key
let key_of_insn insn = Insn.mnemonic insn

(** Copy the table (rows are immutable records, so a shallow copy is a
    safe base for mutation helpers). *)
let copy_table (t : table) : table = Hashtbl.copy t

(** Plant a spec bug for the harness self-test: return a copy of [t]
    where [key]'s semantics restore the flag bits in [mask] to their
    pre-instruction values (i.e. the row no longer writes them) and the
    lattice claims they are Preserved. The three-way fuzz harness must
    localize the resulting divergence to the oracle. *)
let drop_flag_write ~key ~mask (t : table) : table =
  let t = copy_table t in
  (match Hashtbl.find_opt t key with
  | None -> invalid_arg ("Spec.drop_flag_write: no row " ^ key)
  | Some row ->
    let sem st insn ~next_rip =
      let before = st.flags in
      let step = row.sem st insn ~next_rip in
      st.flags <- st.flags land lnot mask lor (before land mask);
      step
    in
    let fix e name = if mask land e <> 0 then Preserved else effect_of row.lattice name in
    let lattice =
      { l_cf = fix Flags.cf_mask "CF"; l_pf = fix Flags.pf_mask "PF";
        l_zf = fix Flags.zf_mask "ZF"; l_sf = fix Flags.sf_mask "SF";
        l_of = fix Flags.of_mask "OF" }
    in
    Hashtbl.replace t key { row with sem; lattice });
  t

(* ------------------------------------------------------------------ *)
(* Generator coverage                                                  *)
(* ------------------------------------------------------------------ *)

(** Every mnemonic the fuzz generator ([lib/fuzz/fuzzgen.ml]) can emit,
    including prologue/epilogue instructions. The conformance coverage
    gate requires a spec row for each. *)
let generator_keys =
  [ "add"; "or"; "adc"; "sbb"; "and"; "sub"; "xor"; "cmp"; "test"; "mov";
    "movabs"; "lea"; "movzx"; "movsx"; "not"; "neg"; "inc"; "dec"; "shl";
    "shr"; "sar"; "rol"; "ror"; "setcc"; "cmovcc"; "imul2"; "mul"; "imul";
    "div"; "idiv"; "push"; "pop"; "pushf"; "popf"; "call"; "ret"; "jmp";
    "jcc"; "xchg"; "xadd"; "cmpxchg"; "bt"; "bts"; "btr"; "btc"; "movs";
    "stos"; "lods"; "hlt"; "nop"; "pause"; "cpuid"; "fld"; "fst"; "fadd";
    "fsub"; "fmul"; "fdiv"; "sseload"; "ssestore"; "ssemov"; "addsd";
    "subsd"; "mulsd"; "divsd"; "cvtsi2sd"; "cvtsd2si"; "comisd" ]

type coverage = {
  covered : string list;  (* generator keys with a spec row *)
  missing : string list;  (* generator keys with no row *)
  extra : string list;  (* rows no generator path reaches *)
}

let coverage ?(t = table) () =
  let covered, missing =
    List.partition (fun k -> Hashtbl.mem t k) generator_keys
  in
  let extra =
    Hashtbl.fold
      (fun k _ acc -> if List.mem k generator_keys then acc else k :: acc)
      t []
    |> List.sort compare
  in
  { covered; missing; extra }

let coverage_pct c =
  let n = List.length c.covered and m = List.length c.missing in
  if n + m = 0 then 100.0 else 100.0 *. float_of_int n /. float_of_int (n + m)
