(** Lockstep cross-check: the spec-driven oracle vs the sequential core.

    Runs [Seqcore] with [~max_bb_insns:1] so every [step_block] commits
    exactly one unit (one macro-instruction; each REP string iteration
    and its final exit test are separate units), steps the oracle by the
    same unit, and compares the full architectural state — GPRs, XMMs,
    st0, rip and the condition codes — after every commit. Memory over
    the given ranges is compared once at the end.

    Per-commit comparison (rather than final-state-only) is what lets
    the conformance property tests pin a flag-lattice assertion to the
    exact instruction under test, and what keeps a planted spec bug from
    being masked by a later flag write. *)

open Ptl_util
open Ptl_isa
open Ptl_arch
module Spec = Ptl_spec.Spec
module Uop = Ptl_uop.Uop

type result =
  | Agree of int  (* committed units compared *)
  | Diverged of { after : int; diffs : string list }
  | Unsupported of { after : int; what : string }  (* no spec row *)

let page = 4096

(** Mapped-address predicate matching the address space [Machine.create]
    builds: the code image's pages, [Machine.stack_pages] below
    [Machine.stack_top], and the default 64 heap pages at
    [Machine.heap_base]. *)
let valid_for_machine (image : Asm.image) =
  let base = image.Asm.img_base in
  let npages = (String.length image.Asm.code + page - 1) / page in
  let code_hi = Int64.add base (Int64.of_int (npages * page)) in
  let stack_lo =
    Int64.sub Machine.stack_top (Int64.of_int (Machine.stack_pages * page))
  in
  let heap_hi = Int64.add Machine.heap_base (Int64.of_int (64 * page)) in
  fun va ->
    (va >= base && va < code_hi)
    || (va >= stack_lo && va < Machine.stack_top)
    || (va >= Machine.heap_base && va < heap_hi)

(** Architectural differences between the oracle state and a machine
    context, formatted one per line ("oracle" vs "core"). *)
let state_diffs (st : Spec.state) (ctx : Context.t) =
  let ds = ref [] in
  let add fmt = Printf.ksprintf (fun s -> ds := s :: !ds) fmt in
  if st.Spec.rip <> ctx.Context.rip then
    add "rip: oracle %016Lx vs core %016Lx" st.Spec.rip ctx.Context.rip;
  let fo = st.Spec.flags land Flags.cc_mask
  and fc = ctx.Context.flags land Flags.cc_mask in
  if fo <> fc then
    add "flags: oracle %s vs core %s" (Flags.to_string fo) (Flags.to_string fc);
  for i = 0 to Regs.num_gprs - 1 do
    let a = st.Spec.regs.(i) and b = Context.gpr ctx i in
    if a <> b then add "%s: oracle %016Lx vs core %016Lx" (Regs.gpr_name i) a b
  done;
  for i = 0 to Regs.num_xmms - 1 do
    let b = Context.get_reg ctx (Uop.xmm i) in
    if st.Spec.xmms.(i) <> b then
      add "xmm%d: oracle %016Lx vs core %016Lx" i st.Spec.xmms.(i) b
  done;
  let b = Context.get_reg ctx Uop.reg_st0 in
  if st.Spec.st0 <> b then add "st0: oracle %016Lx vs core %016Lx" st.Spec.st0 b;
  List.rev !ds

(** Quadword-compare the given [(base, bytes)] ranges between the oracle
    memory and a machine. *)
let mem_diffs ?(limit = 8) (st : Spec.state) (m : Machine.t) ranges =
  let ds = ref [] and n = ref 0 in
  List.iter
    (fun (base, bytes) ->
      for i = 0 to (bytes / 8) - 1 do
        if !n < limit then begin
          let va = Int64.add base (Int64.of_int (i * 8)) in
          let a = Spec.read_mem st W64.B8 va in
          let b = Machine.read_mem m ~vaddr:va ~size:W64.B8 in
          if a <> b then begin
            incr n;
            ds :=
              Printf.sprintf "mem[%Lx]: oracle %016Lx vs core %016Lx" va a b
              :: !ds
          end
        end
      done)
    ranges;
  List.rev !ds

(** Compare the oracle's final state against an arbitrary machine (used
    by the fuzz harness to break seq-vs-timed ties with the oracle's
    verdict). *)
let final_diffs ?(mem_ranges = []) (st : Spec.state) (m : Machine.t) =
  state_diffs st m.Machine.ctx @ mem_diffs st m mem_ranges

(** Run the oracle alone on [image] until it halts, faults or exhausts
    [max_insns], mirroring [Machine.create]'s initial register file.
    Combined with {!final_diffs} this gives the fuzz harness a third,
    independent verdict when the sequential and timed cores disagree. *)
let run_oracle ?(table = Spec.table) ?(max_insns = 200_000) (image : Asm.image) =
  let m = Machine.create image in
  let ctx = m.Machine.ctx in
  let o =
    Oracle.create ~table
      ~mode:
        (match ctx.Context.mode with
        | Context.User -> Spec.User
        | Context.Kernel -> Spec.Kernel)
      ~flags:ctx.Context.flags
      ~valid:(valid_for_machine image)
      ~rip:ctx.Context.rip image
  in
  let st = Oracle.state o in
  for i = 0 to Regs.num_gprs - 1 do
    st.Spec.regs.(i) <- Context.gpr ctx i
  done;
  ignore (Oracle.run ~max_insns o);
  st

(** Run [image] in lockstep on the sequential core and the oracle.
    [probe ~index ~before ~after] fires after every oracle unit with the
    0-based unit index and the oracle's flags on either side of it (the
    conformance property tests hang their lattice assertions on it).
    Memory over [mem_ranges] is compared at the end. *)
let check ?(table = Spec.table) ?(max_insns = 200_000) ?(mem_ranges = [])
    ?probe (image : Asm.image) : result =
  let m = Machine.create image in
  let ctx = m.Machine.ctx in
  let seq = Seqcore.create ~max_bb_insns:1 m.Machine.env ctx in
  let o =
    Oracle.create ~table
      ~mode:
        (match ctx.Context.mode with
        | Context.User -> Spec.User
        | Context.Kernel -> Spec.Kernel)
      ~flags:ctx.Context.flags
      ~valid:(valid_for_machine image)
      ~rip:ctx.Context.rip image
  in
  let st = Oracle.state o in
  (* Machine.create initializes rsp; mirror the full GPR file. *)
  for i = 0 to Regs.num_gprs - 1 do
    st.Spec.regs.(i) <- Context.gpr ctx i
  done;
  let res = ref None in
  let diverge diffs = Diverged { after = st.Spec.insns; diffs } in
  let finish () =
    match mem_diffs st m mem_ranges with
    | [] -> Agree st.Spec.insns
    | ds -> diverge ds
  in
  (* Step the oracle one unit; false stops the lockstep loop. *)
  let step_oracle () =
    let before = st.Spec.flags in
    let idx = st.Spec.insns in
    match Oracle.step o with
    | Oracle.Stepped ->
      (match probe with
      | Some p -> p ~index:idx ~before ~after:st.Spec.flags
      | None -> ());
      true
    | Oracle.Halted ->
      res := Some (diverge [ "core committed a unit but the oracle is halted" ]);
      false
    | Oracle.Faulted f ->
      res :=
        Some
          (diverge
             [ Printf.sprintf
                 "oracle predicts a fault (vector %d) the core did not take"
                 (Spec.fault_vector f) ]);
      false
    | Oracle.Undecodable rip ->
      res := Some (diverge [ Printf.sprintf "oracle cannot decode at %Lx" rip ]);
      false
    | Oracle.Unsupported k ->
      res := Some (Unsupported { after = st.Spec.insns; what = k });
      false
  in
  while !res = None do
    if st.Spec.insns >= max_insns then res := Some (finish ())
    else if not ctx.Context.running then
      if st.Spec.halted then res := Some (finish ())
      else res := Some (diverge [ "core halted but the oracle has not" ])
    else begin
      let before = ctx.Context.insns_committed in
      match Seqcore.step_block seq with
      | exception Assists.Triple_fault msg -> (
        (* No IDT: the core died on an unhandled fault. Consistent only
           if the oracle predicts a fault at the same instruction. *)
        match Oracle.step o with
        | Oracle.Faulted _ | Oracle.Undecodable _ -> res := Some (finish ())
        | _ ->
          res := Some (diverge [ "core took an unhandled fault: " ^ msg ]))
      | Seqcore.Interrupted -> ()
      | Seqcore.Idle ->
        if st.Spec.halted then res := Some (finish ())
        else res := Some (diverge [ "core idle but the oracle has not halted" ])
      | Seqcore.Executed _ ->
        let committed = ctx.Context.insns_committed - before in
        if committed = 0 then begin
          (* The macro faulted and delivery redirected into a handler.
             Lockstep stops here; consistent only if the oracle predicts
             a fault too (the conformance exception suite compares the
             delivered vector separately). *)
          match Oracle.step o with
          | Oracle.Faulted _ | Oracle.Undecodable _ -> res := Some (finish ())
          | _ ->
            res :=
              Some (diverge [ "core took a fault the oracle does not predict" ])
        end
        else
          let k = ref 0 in
          while !res = None && !k < committed do
            incr k;
            if step_oracle () && !k = committed then
              match state_diffs st ctx with
              | [] -> ()
              | ds -> res := Some (diverge ds)
          done
    end
  done;
  match !res with Some r -> r | None -> assert false
