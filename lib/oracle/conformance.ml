(** Derived conformance suites: everything here is generated from the
    spec table ([Spec.rows]) — no per-instruction test code.

    Two suites:

    - {b Properties}: for every spec row, sweep the corner-operand set
      (0, ±1, MIN, MAX, sign boundaries, alternating bit patterns) over
      the row's operand shapes under three incoming-flag presets, run
      each program in lockstep on the sequential core and the oracle
      ([Cross.check]), and check the row's flag lattice at the target
      instruction: [Preserved] flags must be bit-identical across it on
      every case, [Written] flags must change on at least one case in
      the row's sweep (non-vacuity), [Undefined] flags are only held to
      oracle/core agreement (which the lockstep compare gives for free).

    - {b Exceptions}: for every fault condition a row declares (#DE,
      #GP-in-user, #PF), build one trigger program, compare the oracle's
      predicted vector (and CR2 for #PF) against real delivery through
      the sequential core's IDT path ([lib/arch/assists.ml]). *)

open Ptl_util
open Ptl_isa
open Ptl_arch
module Spec = Ptl_spec.Spec

type level = [ `Quick | `Full ]

let scratch = Machine.heap_base
let base = 0x40_0000L

(* Memory ranges compared at the end of every property run: the scratch
   window all memory operands target, and the top of the stack that
   push/pop/call/pushf traffic lands in. *)
let prop_mem_ranges =
  [ (scratch, 0x400); (Int64.sub Machine.stack_top 0x100L, 0x100) ]

let movq r v = Insn.Movabs (r, v)
let md disp = Insn.mem_bd Regs.r15 (Int64.of_int disp)

(* Seed a scratch quadword through r13 (also deterministically clears
   whatever the previous case left there). *)
let init_mem disp v =
  [ movq Regs.r13 v; Insn.Mov (W64.B8, Insn.Mem (md disp), Insn.RM (Insn.Reg Regs.r13)) ]

(* ------------------------------------------------------------------ *)
(* Corner operands                                                     *)
(* ------------------------------------------------------------------ *)

let operand_sets (level : level) sz =
  let m = Spec.size_mask sz in
  let top = Int64.shift_left 1L (Spec.bits sz - 1) in
  let maxp = Int64.logand (Int64.lognot top) m in
  let all =
    List.sort_uniq compare
      [ 0L; 1L; m; top; maxp;
        Int64.logand 0x5555_5555_5555_5555L m;
        Int64.logand 0xAAAA_AAAA_AAAA_AAAAL m ]
  in
  let prim =
    match level with
    | `Quick -> List.sort_uniq compare [ 1L; top ]
    | `Full -> List.sort_uniq compare [ 0L; 1L; m; top; maxp ]
  in
  (prim, all)

let pairs level sz =
  let prim, all = operand_sets level sz in
  let snd_set = match level with `Quick -> [ 0L; 1L; Spec.size_mask sz ] | `Full -> all in
  List.concat_map (fun a -> List.map (fun b -> (a, b)) snd_set) prim

let singles level sz = snd (operand_sets level sz)
  |> fun all -> (match level with `Quick -> [ 1L; Int64.shift_left 1L (Spec.bits sz - 1) ] | `Full -> all)

let sizes_for (level : level) szs =
  match level with
  | `Full -> szs
  | `Quick -> List.filter (fun s -> s = W64.B1 || s = W64.B8) szs
              |> fun l -> if l = [] then [ List.hd szs ] else l

let all_conds = List.init 16 Flags.cond_of_code

(* ------------------------------------------------------------------ *)
(* Incoming-flag presets                                               *)
(* ------------------------------------------------------------------ *)

(* Three flag climates so "preserved" means preserved from both 0 and 1,
   and a written flag visibly changes against at least one of them:
   all-clear, ZF+PF, and SF+OF+PF+CF. *)
let presets =
  [ ("clear",
     [ movq Regs.r13 1L;
       Insn.Test (W64.B8, Insn.Reg Regs.r13, Insn.RM (Insn.Reg Regs.r13)) ]);
    ("zp",
     [ movq Regs.r13 0L;
       Insn.Test (W64.B8, Insn.Reg Regs.r13, Insn.RM (Insn.Reg Regs.r13)) ]);
    ("scop",
     [ movq Regs.r13 Int64.max_int;
       Insn.Alu (Insn.Add, W64.B8, Insn.Reg Regs.r13, Insn.Imm 1L);
       Insn.Bittest (Insn.Bt, W64.B8, Insn.Reg Regs.r13, Insn.Bimm 63) ]) ]

(* ------------------------------------------------------------------ *)
(* Case generation per shape                                           *)
(* ------------------------------------------------------------------ *)

(** One generated program body: [c_emit] writes the instructions after
    the prologue and flag preset; the target instruction occupies
    committed units [c_before, c_before + c_units) of the body. *)
type case = {
  c_name : string;
  c_emit : Asm.t -> unit;
  c_before : int;
  c_units : int;
}

let line ?(units = 1) name setup target =
  { c_name = name;
    c_emit =
      (fun a ->
        Asm.inss a setup;
        Asm.ins a target;
        Asm.ins a Insn.Hlt);
    c_before = List.length setup;
    c_units = units }

let sz_name sz = string_of_int (Spec.bits sz)

let alu_target key sz dst src =
  match key with
  | "test" -> Insn.Test (sz, dst, src)
  | "mov" -> Insn.Mov (sz, dst, src)
  | "add" -> Insn.Alu (Insn.Add, sz, dst, src)
  | "or" -> Insn.Alu (Insn.Or, sz, dst, src)
  | "adc" -> Insn.Alu (Insn.Adc, sz, dst, src)
  | "sbb" -> Insn.Alu (Insn.Sbb, sz, dst, src)
  | "and" -> Insn.Alu (Insn.And, sz, dst, src)
  | "sub" -> Insn.Alu (Insn.Sub, sz, dst, src)
  | "xor" -> Insn.Alu (Insn.Xor, sz, dst, src)
  | "cmp" -> Insn.Alu (Insn.Cmp, sz, dst, src)
  | k -> invalid_arg ("Conformance.alu_target: " ^ k)

let unary_of_key = function
  | "not" -> Insn.Not | "neg" -> Insn.Neg | "inc" -> Insn.Inc | "dec" -> Insn.Dec
  | k -> invalid_arg ("Conformance.unary_of_key: " ^ k)

let shift_of_key = function
  | "shl" -> Insn.Shl | "shr" -> Insn.Shr | "sar" -> Insn.Sar
  | "rol" -> Insn.Rol | "ror" -> Insn.Ror
  | k -> invalid_arg ("Conformance.shift_of_key: " ^ k)

let bittest_of_key = function
  | "bt" -> Insn.Bt | "bts" -> Insn.Bts | "btr" -> Insn.Btr | "btc" -> Insn.Btc
  | k -> invalid_arg ("Conformance.bittest_of_key: " ^ k)

let muldiv_of_key = function
  | "mul" -> Insn.Mul | "imul" -> Insn.Imul1 | "div" -> Insn.Div
  | "idiv" -> Insn.Idiv
  | k -> invalid_arg ("Conformance.muldiv_of_key: " ^ k)

let fpop_of_key = function
  | "fadd" -> Insn.Fadd | "fsub" -> Insn.Fsub | "fmul" -> Insn.Fmul
  | "fdiv" -> Insn.Fdiv
  | k -> invalid_arg ("Conformance.fpop_of_key: " ^ k)

let sse2_of_key = function
  | "addsd" -> Insn.Addsd | "subsd" -> Insn.Subsd | "mulsd" -> Insn.Mulsd
  | "divsd" -> Insn.Divsd
  | k -> invalid_arg ("Conformance.sse2_of_key: " ^ k)

let alu_cases level key szs =
  List.concat_map
    (fun sz ->
      let n = sz_name sz in
      List.concat_map
        (fun (a, b) ->
          let nm form = Printf.sprintf "%s%s.%s a=%Lx b=%Lx" key n form a b in
          let rr =
            line (nm "rr") [ movq Regs.r10 a; movq Regs.r11 b ]
              (alu_target key sz (Insn.Reg Regs.r10) (Insn.RM (Insn.Reg Regs.r11)))
          in
          let ri =
            if Encode.imm_encodable sz (Encode.normalize_imm sz b) then
              [ line (nm "ri") [ movq Regs.r10 a ]
                  (alu_target key sz (Insn.Reg Regs.r10) (Insn.Imm (Encode.normalize_imm sz b))) ]
            else []
          in
          let mr =
            line (nm "mr") (init_mem 0x40 a @ [ movq Regs.r11 b ])
              (alu_target key sz (Insn.Mem (md 0x40)) (Insn.RM (Insn.Reg Regs.r11)))
          in
          let rm =
            line (nm "rm") (init_mem 0x40 b @ [ movq Regs.r10 a ])
              (alu_target key sz (Insn.Reg Regs.r10) (Insn.RM (Insn.Mem (md 0x40))))
          in
          match level with
          | `Quick -> rr :: ri
          | `Full -> (rr :: ri) @ [ mr; rm ])
        (pairs level sz))
    (sizes_for level szs)

let rm_cases level key szs =
  List.concat_map
    (fun sz ->
      let n = sz_name sz in
      List.concat_map
        (fun a ->
          let nm form = Printf.sprintf "%s%s.%s a=%Lx" key n form a in
          let r =
            line (nm "r") [ movq Regs.r10 a ]
              (Insn.Unary (unary_of_key key, sz, Insn.Reg Regs.r10))
          in
          let m =
            line (nm "m") (init_mem 0x40 a)
              (Insn.Unary (unary_of_key key, sz, Insn.Mem (md 0x40)))
          in
          match level with `Quick -> [ r ] | `Full -> [ r; m ])
        (singles level sz))
    (sizes_for level szs)

let shift_counts level sz =
  let w = Spec.bits sz in
  let l =
    match level with
    | `Quick -> [ 0; 1; w - 1; w; 65 ]
    | `Full -> [ 0; 1; 7; 8; 9; 15; 16; 17; 31; 32; 33; 63; 64; 65; 66 ]
  in
  List.sort_uniq compare (List.filter (fun c -> c >= 0 && c <= 66) l)

let shift_cases level key szs =
  let op = shift_of_key key in
  List.concat_map
    (fun sz ->
      let n = sz_name sz in
      List.concat_map
        (fun a ->
          List.concat_map
            (fun c ->
              let nm form =
                Printf.sprintf "%s%s.%s a=%Lx c=%d" key n form a c
              in
              let immc =
                line (nm "imm") [ movq Regs.r10 a ]
                  (Insn.Shift (op, sz, Insn.Reg Regs.r10, Insn.ImmC c))
              in
              let cl =
                line (nm "cl")
                  [ movq Regs.r10 a; movq Regs.rcx (Int64.of_int c) ]
                  (Insn.Shift (op, sz, Insn.Reg Regs.r10, Insn.Cl))
              in
              let m =
                line (nm "m") (init_mem 0x40 a)
                  (Insn.Shift (op, sz, Insn.Mem (md 0x40), Insn.ImmC c))
              in
              match level with
              | `Quick -> [ immc ]
              | `Full -> [ immc; cl ] @ (if c = 1 then [ m ] else []))
            (shift_counts level sz))
        (singles level sz))
    (sizes_for level szs)

let widen_cases level key prs =
  let signed = String.equal key "movsx" in
  let target dsz ssz rm =
    if signed then Insn.Movsx (dsz, ssz, Regs.r10, rm)
    else Insn.Movzx (dsz, ssz, Regs.r10, rm)
  in
  let prs = match level with `Quick -> [ List.hd prs; List.nth prs (List.length prs - 1) ] | `Full -> prs in
  List.concat_map
    (fun (dsz, ssz) ->
      List.concat_map
        (fun a ->
          let nm form =
            Printf.sprintf "%s%d_%d.%s a=%Lx" key (Spec.bits dsz) (Spec.bits ssz) form a
          in
          let r =
            line (nm "r")
              [ movq Regs.r10 0xDEAD_BEEF_CAFE_F00DL; movq Regs.r11 a ]
              (target dsz ssz (Insn.Reg Regs.r11))
          in
          let m =
            line (nm "m")
              (init_mem 0x40 a @ [ movq Regs.r10 0xDEAD_BEEF_CAFE_F00DL ])
              (target dsz ssz (Insn.Mem (md 0x40)))
          in
          match level with `Quick -> [ r ] | `Full -> [ r; m ])
        (singles level ssz))
    prs

let imul2_cases level szs =
  List.concat_map
    (fun sz ->
      let n = sz_name sz in
      List.concat_map
        (fun (a, b) ->
          let nm form = Printf.sprintf "imul2_%s.%s a=%Lx b=%Lx" n form a b in
          let r =
            line (nm "r") [ movq Regs.r10 a; movq Regs.r11 b ]
              (Insn.Imul2 (sz, Regs.r10, Insn.Reg Regs.r11))
          in
          let m =
            line (nm "m") (init_mem 0x40 b @ [ movq Regs.r10 a ])
              (Insn.Imul2 (sz, Regs.r10, Insn.Mem (md 0x40)))
          in
          match level with `Quick -> [ r ] | `Full -> [ r; m ])
        (pairs level sz))
    (sizes_for level szs)

let cmovcc_cases level szs =
  let conds =
    match level with
    | `Quick -> [ Flags.E; Flags.NE ]
    | `Full -> [ Flags.E; Flags.NE; Flags.B; Flags.AE; Flags.S; Flags.L; Flags.G; Flags.P ]
  in
  List.concat_map
    (fun sz ->
      let n = sz_name sz in
      List.concat_map
        (fun cond ->
          let cn = Flags.cond_name cond in
          let a = 0xDEAD_BEEF_CAFE_F00DL and b = 0x0123_4567_89AB_CDEFL in
          let r =
            line (Printf.sprintf "cmov%s_%s.r" cn n)
              [ movq Regs.r10 a; movq Regs.r11 b ]
              (Insn.Cmovcc (cond, sz, Regs.r10, Insn.Reg Regs.r11))
          in
          let m =
            line (Printf.sprintf "cmov%s_%s.m" cn n)
              (init_mem 0x40 b @ [ movq Regs.r10 a ])
              (Insn.Cmovcc (cond, sz, Regs.r10, Insn.Mem (md 0x40)))
          in
          match level with `Quick -> [ r ] | `Full -> [ r; m ])
        conds)
    (sizes_for level szs)

let muldiv_cases level key szs =
  let op = muldiv_of_key key in
  let target sz rm = Insn.Muldiv (op, sz, rm) in
  List.concat_map
    (fun sz ->
      let n = sz_name sz in
      if key = "mul" || key = "imul" then
        List.concat_map
          (fun (a, b) ->
            let nm form = Printf.sprintf "%s%s.%s a=%Lx b=%Lx" key n form a b in
            let setup d =
              [ movq Regs.rax a; movq Regs.rdx 0x1111_2222_3333_4444L;
                movq Regs.r11 d ]
            in
            let r = line (nm "r") (setup b) (target sz (Insn.Reg Regs.r11)) in
            let m =
              line (nm "m") (init_mem 0x40 b @ setup 0L)
                (target sz (Insn.Mem (md 0x40)))
            in
            match level with `Quick -> [ r ] | `Full -> [ r; m ])
          (pairs level sz)
      else
        (* Safe (no #DE) dividend/divisor triples: quotient fits whenever
           the high half is less than the divisor (unsigned) or the
           dividend is small (signed). Faulting combinations are covered
           by the exception suite. *)
        let neg v = Int64.neg v in
        let m64 = Spec.size_mask sz in
        let maxp = Int64.logand (Int64.lognot (Int64.shift_left 1L (Spec.bits sz - 1))) m64 in
        let triples =
          if key = "div" then
            [ (0L, 5L, 1L); (0L, maxp, 3L); (0L, m64, m64); (1L, 7L, 3L);
              (0L, 100L, 7L); (2L, m64, 5L) ]
          else
            [ (0L, 5L, 1L); (0L, 100L, 3L); (0L, maxp, 3L); (neg 1L, neg 5L, 3L);
              (neg 1L, neg 100L, neg 3L); (0L, maxp, m64) ]
        in
        let triples = match level with `Quick -> [ List.hd triples; List.nth triples 3 ] | `Full -> triples in
        List.concat_map
          (fun (hi, lo, d) ->
            let nm form =
              Printf.sprintf "%s%s.%s hi=%Lx lo=%Lx d=%Lx" key n form hi lo d
            in
            let setup dd =
              [ movq Regs.rax lo; movq Regs.rdx hi; movq Regs.r11 dd ]
            in
            let r = line (nm "r") (setup d) (target sz (Insn.Reg Regs.r11)) in
            let m =
              line (nm "m") (init_mem 0x40 d @ setup 0L)
                (target sz (Insn.Mem (md 0x40)))
            in
            match level with `Quick -> [ r ] | `Full -> [ r; m ])
          triples)
    (sizes_for level szs)

let push_cases level =
  let vals = match level with `Quick -> [ 1L ] | `Full -> [ 0L; 1L; -1L; Int64.min_int ] in
  List.concat_map
    (fun a ->
      [ line (Printf.sprintf "push.r a=%Lx" a) [ movq Regs.r10 a ]
          (Insn.Push (Insn.RM (Insn.Reg Regs.r10)));
        line (Printf.sprintf "push.m a=%Lx" a) (init_mem 0x40 a)
          (Insn.Push (Insn.RM (Insn.Mem (md 0x40)))) ])
    vals
  @ [ line "push.rsp" [] (Insn.Push (Insn.RM (Insn.Reg Regs.rsp)));
      line "push.imm" [] (Insn.Push (Insn.Imm 0x1234L));
      line "push.imm_neg" [] (Insn.Push (Insn.Imm (-5L))) ]

let pop_cases level =
  let vals = match level with `Quick -> [ 0x1234L ] | `Full -> [ 0x1234L; -1L ] in
  List.concat_map
    (fun a ->
      let pre = [ movq Regs.r10 a; Insn.Push (Insn.RM (Insn.Reg Regs.r10)) ] in
      [ line (Printf.sprintf "pop.r a=%Lx" a) pre (Insn.Pop (Insn.Reg Regs.r11));
        line (Printf.sprintf "pop.m a=%Lx" a) pre (Insn.Pop (Insn.Mem (md 0x40))) ])
    vals
  @ [ (* pop into rsp itself: the popped value becomes the new rsp *)
      line "pop.rsp"
        [ movq Regs.r10 (Int64.sub Machine.stack_top 0x80L);
          Insn.Push (Insn.RM (Insn.Reg Regs.r10)) ]
        (Insn.Pop (Insn.Reg Regs.rsp)) ]

(* Branch rows get custom label-based programs; the target's commit
   index within the body is fixed regardless of branch direction. *)
let branch_cases level key =
  let mk name emit before =
    { c_name = name; c_emit = emit; c_before = before; c_units = 1 }
  in
  match key with
  | "jmp" ->
    [ mk "jmp.fwd"
        (fun a ->
          Asm.jmp a "fwd";
          Asm.ins a (movq Regs.r12 111L);
          Asm.label a "fwd";
          Asm.ins a Insn.Hlt)
        0;
      mk "jmp.ind"
        (fun a ->
          Asm.lea_label a Regs.r10 "fwd";
          Asm.ins a (Insn.JmpInd (Insn.Reg Regs.r10));
          Asm.ins a (movq Regs.r12 111L);
          Asm.label a "fwd";
          Asm.ins a Insn.Hlt)
        1 ]
  | "jcc" ->
    let conds = match level with `Quick -> [ Flags.E; Flags.NE ] | `Full -> all_conds in
    List.map
      (fun cond ->
        mk (Printf.sprintf "jcc.%s" (Flags.cond_name cond))
          (fun a ->
            Asm.jcc a cond "skip";
            Asm.ins a (movq Regs.r12 111L);
            Asm.label a "skip";
            Asm.ins a Insn.Hlt)
          0)
      conds
  | "call" | "ret" ->
    let emit a =
      Asm.call a "f";
      Asm.ins a (movq Regs.r12 1L);
      Asm.ins a Insn.Hlt;
      Asm.label a "f";
      Asm.ins a (movq Regs.r11 2L);
      Asm.ins a Insn.Ret
    in
    let emit_ind a =
      Asm.lea_label a Regs.r10 "f";
      Asm.ins a (Insn.CallInd (Insn.Reg Regs.r10));
      Asm.ins a (movq Regs.r12 1L);
      Asm.ins a Insn.Hlt;
      Asm.label a "f";
      Asm.ins a (movq Regs.r11 2L);
      Asm.ins a Insn.Ret
    in
    if key = "call" then [ mk "call.direct" emit 0; mk "call.ind" emit_ind 1 ]
    else [ mk "ret" emit 2 ]
  | k -> invalid_arg ("Conformance.branch_cases: " ^ k)

let setcc_cases level =
  let conds = match level with `Quick -> [ Flags.E; Flags.S ] | `Full -> all_conds in
  List.concat_map
    (fun cond ->
      let cn = Flags.cond_name cond in
      let r =
        line (Printf.sprintf "set%s.r" cn)
          [ movq Regs.r10 0xFFFF_FFFF_FFFF_FFFFL ]
          (Insn.Setcc (cond, Insn.Reg Regs.r10))
      in
      let m =
        line (Printf.sprintf "set%s.m" cn) (init_mem 0x40 (-1L))
          (Insn.Setcc (cond, Insn.Mem (md 0x40)))
      in
      match level with `Quick -> [ r ] | `Full -> [ r; m ])
    conds

let xchg_cases level key szs =
  List.concat_map
    (fun sz ->
      let n = sz_name sz in
      List.concat_map
        (fun (a, b) ->
          let nm form = Printf.sprintf "%s%s.%s a=%Lx b=%Lx" key n form a b in
          let rax_setup c = [ movq Regs.rax c ] in
          let mk form setup rm =
            let target =
              match key with
              | "xchg" -> Insn.Xchg (sz, rm, Regs.r11)
              | "xadd" -> Insn.Xadd (sz, rm, Regs.r11)
              | "cmpxchg" -> Insn.Cmpxchg (sz, rm, Regs.r11)
              | k -> invalid_arg ("Conformance.xchg_cases: " ^ k)
            in
            line (nm form) setup target
          in
          let cmp_extra =
            (* comparand: a hit and a (near-certain) miss *)
            if key = "cmpxchg" then [ rax_setup a; rax_setup (Int64.lognot a) ]
            else [ [] ]
          in
          List.concat_map
            (fun extra ->
              let r =
                mk "r" ([ movq Regs.r10 a; movq Regs.r11 b ] @ extra)
                  (Insn.Reg Regs.r10)
              in
              let m =
                mk "m" (init_mem 0x40 a @ [ movq Regs.r11 b ] @ extra)
                  (Insn.Mem (md 0x40))
              in
              match level with `Quick -> [ r ] | `Full -> [ r; m ])
            cmp_extra)
        (pairs level sz))
    (sizes_for level szs)

let bit_cases level key szs =
  let op = bittest_of_key key in
  List.concat_map
    (fun sz ->
      let w = Spec.bits sz in
      let n = sz_name sz in
      let imm_idx = match level with `Quick -> [ 0; w - 1 ] | `Full -> [ 0; 1; w - 1 ] in
      let reg_idx =
        match level with
        | `Quick -> [ 1L; Int64.of_int w ]
        | `Full -> [ 0L; 1L; Int64.of_int (w - 1); Int64.of_int w;
                     Int64.of_int (w + 1); 255L; -1L ]
      in
      List.concat_map
        (fun a ->
          let imm_cases =
            List.concat_map
              (fun i ->
                let nm form = Printf.sprintf "%s%s.%s a=%Lx i=%d" key n form a i in
                let r =
                  line (nm "ri") [ movq Regs.r10 a ]
                    (Insn.Bittest (op, sz, Insn.Reg Regs.r10, Insn.Bimm i))
                in
                let m =
                  line (nm "mi") (init_mem 0x40 a)
                    (Insn.Bittest (op, sz, Insn.Mem (md 0x40), Insn.Bimm i))
                in
                match level with `Quick -> [ r ] | `Full -> [ r; m ])
              imm_idx
          in
          let reg_cases =
            List.concat_map
              (fun i ->
                let nm form = Printf.sprintf "%s%s.%s a=%Lx i=%Ld" key n form a i in
                let r =
                  line (nm "rr") [ movq Regs.r10 a; movq Regs.r11 i ]
                    (Insn.Bittest (op, sz, Insn.Reg Regs.r10, Insn.Breg Regs.r11))
                in
                let m =
                  line (nm "mr") (init_mem 0x40 a @ [ movq Regs.r11 i ])
                    (Insn.Bittest (op, sz, Insn.Mem (md 0x40), Insn.Breg Regs.r11))
                in
                match level with `Quick -> [ r ] | `Full -> [ r; m ])
              reg_idx
          in
          imm_cases @ reg_cases)
        (singles level sz))
    (sizes_for level szs)

let string_cases level key szs =
  let target sz rep =
    match key with
    | "movs" -> Insn.Movs (sz, rep)
    | "stos" -> Insn.Stos (sz, rep)
    | "lods" -> Insn.Lods (sz, rep)
    | k -> invalid_arg ("Conformance.string_cases: " ^ k)
  in
  let counts = match level with `Quick -> [ 0; 2 ] | `Full -> [ 0; 1; 3 ] in
  List.concat_map
    (fun sz ->
      let n = sz_name sz in
      let setup count =
        init_mem 0x200 0xA1B2_C3D4_E5F6_0718L
        @ init_mem 0x208 0x1122_3344_5566_7788L
        @ init_mem 0x210 0x99AA_BBCC_DDEE_FF00L
        @ [ movq Regs.rsi (Int64.add scratch 0x200L);
            movq Regs.rdi (Int64.add scratch 0x300L);
            movq Regs.rax 0x0F1E_2D3C_4B5A_6978L;
            movq Regs.rcx (Int64.of_int count) ]
      in
      line (Printf.sprintf "%s%s.once" key n) (setup 7) (target sz false)
      :: List.map
           (fun count ->
             line ~units:(count + 1)
               (Printf.sprintf "rep_%s%s.n%d" key n count)
               (setup count) (target sz true))
           counts)
    (sizes_for level szs)

let flagio_cases key =
  match key with
  | "pushf" -> [ line "pushf" [] Insn.Pushf ]
  | "popf" ->
    List.map
      (fun v ->
        line (Printf.sprintf "popf v=%Lx" v)
          [ movq Regs.r10 v; Insn.Push (Insn.RM (Insn.Reg Regs.r10)) ]
          Insn.Popf)
      [ 0L; 0x8D5L; 0xAD5L; 0x44L ]
  | k -> invalid_arg ("Conformance.flagio_cases: " ^ k)

let f64 f = Int64.bits_of_float f

let fp_values level =
  match level with
  | `Quick -> [ f64 1.5; f64 (-2.25) ]
  | `Full ->
    [ f64 0.0; f64 1.5; f64 (-2.25); f64 1e308; f64 (-0.0); f64 4e-320;
      f64 infinity; f64 neg_infinity ]

let fp_mem_cases level key =
  let vals = fp_values level in
  List.concat_map
    (fun v ->
      let nm = Printf.sprintf "%s v=%Lx" key v in
      match key with
      | "fld" -> [ line nm (init_mem 0x80 v) (Insn.Fld (md 0x80)) ]
      | "fst" ->
        [ line nm (init_mem 0x80 v @ [ Insn.Fld (md 0x80) ]) (Insn.Fst (md 0x88)) ]
      | "fadd" | "fsub" | "fmul" | "fdiv" ->
        List.map
          (fun w ->
            line (Printf.sprintf "%s v=%Lx w=%Lx" key v w)
              (init_mem 0x90 v @ [ Insn.Fld (md 0x90) ] @ init_mem 0x80 w)
              (Insn.Fp (fpop_of_key key, md 0x80)))
          (match level with `Quick -> [ f64 3.0 ] | `Full -> [ f64 3.0; f64 0.0; f64 (-1.5) ])
      | "sseload" -> [ line nm (init_mem 0x80 v) (Insn.SseLoad (2, md 0x80)) ]
      | "ssestore" ->
        [ line nm (init_mem 0x80 v @ [ Insn.SseLoad (2, md 0x80) ])
            (Insn.SseStore (md 0x88, 2)) ]
      | k -> invalid_arg ("Conformance.fp_mem_cases: " ^ k))
    vals

let fp_reg_cases level key =
  let load2 v w = init_mem 0x80 v @ init_mem 0x88 w
                  @ [ Insn.SseLoad (2, md 0x80); Insn.SseLoad (3, md 0x88) ] in
  let val_pairs =
    let base = [ (f64 1.5, f64 3.0); (f64 (-2.0), f64 2.0) ] in
    match level with
    | `Quick -> [ List.hd base ]
    | `Full -> base @ [ (f64 0.0, f64 (-0.0)); (f64 1e308, f64 1e308) ]
  in
  let cmp_pairs =
    (* comisd additionally needs the unordered case *)
    val_pairs @ [ (0x7FF8_0000_0000_0000L, f64 1.0); (f64 1.0, f64 1.0) ]
  in
  match key with
  | "ssemov" ->
    List.map
      (fun (v, w) ->
        line (Printf.sprintf "ssemov v=%Lx" v) (load2 v w) (Insn.SseMov (4, 2)))
      val_pairs
  | "addsd" | "subsd" | "mulsd" | "divsd" ->
    List.map
      (fun (v, w) ->
        line (Printf.sprintf "%s v=%Lx w=%Lx" key v w) (load2 v w)
          (Insn.Sse (sse2_of_key key, 2, 3)))
      val_pairs
  | "comisd" ->
    List.map
      (fun (v, w) ->
        line (Printf.sprintf "comisd v=%Lx w=%Lx" v w) (load2 v w)
          (Insn.Comisd (2, 3)))
      cmp_pairs
  | k -> invalid_arg ("Conformance.fp_reg_cases: " ^ k)

let cvt_cases level key =
  match key with
  | "cvtsi2sd" ->
    List.map
      (fun a ->
        line (Printf.sprintf "cvtsi2sd a=%Lx" a) [ movq Regs.r10 a ]
          (Insn.Cvtsi2sd (2, Regs.r10)))
      (singles level W64.B8)
  | "cvtsd2si" ->
    let vals =
      match level with
      | `Quick -> [ f64 1.5; f64 (-1.5) ]
      | `Full ->
        [ f64 0.0; f64 1.5; f64 (-1.5); f64 0.49; f64 1e18; f64 9.3e18;
          f64 (-9.3e18); f64 infinity; 0x7FF8_0000_0000_0000L ]
    in
    List.map
      (fun v ->
        line (Printf.sprintf "cvtsd2si v=%Lx" v)
          (init_mem 0x80 v @ [ Insn.SseLoad (2, md 0x80); movq Regs.r10 7L ])
          (Insn.Cvtsd2si (Regs.r10, 2)))
      vals
  | k -> invalid_arg ("Conformance.cvt_cases: " ^ k)

let plain_cases level key =
  match key with
  | "movabs" ->
    List.map
      (fun a -> line (Printf.sprintf "movabs a=%Lx" a) [] (movq Regs.r10 a))
      (singles level W64.B8)
  | "lea" ->
    [ line "lea.bd" [] (Insn.Lea (Regs.r10, Insn.mem_bd Regs.r15 0x40L));
      line "lea.bis"
        [ movq Regs.r11 5L ]
        (Insn.Lea
           (Regs.r10,
            Insn.mem ~base:Regs.r15 ~index:Regs.r11 ~scale:4 ~disp:12L ())) ]
  | "nop" -> [ line "nop" [] Insn.Nop ]
  | "pause" -> [ line "pause" [] Insn.Pause ]
  | "cpuid" ->
    [ line "cpuid"
        [ movq Regs.rax 7L; movq Regs.rbx 7L; movq Regs.rcx 7L; movq Regs.rdx 7L ]
        Insn.Cpuid ]
  | "hlt" -> [ line "hlt" [] Insn.Hlt ]
  | k -> invalid_arg ("Conformance.plain_cases: " ^ k)

(** All generated property cases for one spec row. *)
let cases_for (level : level) (row : Spec.row) : case list =
  let key = row.Spec.key in
  match row.Spec.shape with
  | Spec.Alu_shape szs -> alu_cases level key szs
  | Spec.Rm_shape szs -> rm_cases level key szs
  | Spec.Shift_shape szs -> shift_cases level key szs
  | Spec.Widen_shape prs -> widen_cases level key prs
  | Spec.Reg_rm_shape szs ->
    if key = "imul2" then imul2_cases level szs else cmovcc_cases level szs
  | Spec.Mul_shape szs -> muldiv_cases level key szs
  | Spec.Push_shape -> push_cases level
  | Spec.Pop_shape -> pop_cases level
  | Spec.Bit_shape szs -> bit_cases level key szs
  | Spec.String_shape szs -> string_cases level key szs
  | Spec.Xchg_shape szs -> xchg_cases level key szs
  | Spec.Branch_shape -> branch_cases level key
  | Spec.Setcc_shape -> setcc_cases level
  | Spec.Fp_mem_shape -> fp_mem_cases level key
  | Spec.Fp_reg_shape -> fp_reg_cases level key
  | Spec.Cvt_shape -> cvt_cases level key
  | Spec.Flagio_shape -> flagio_cases key
  | Spec.Plain -> plain_cases level key

(* ------------------------------------------------------------------ *)
(* Property runner                                                     *)
(* ------------------------------------------------------------------ *)

type row_result = {
  rr_key : string;
  rr_cases : int;  (* programs run (cases x presets) *)
  rr_failures : (string * string) list;  (* case/preset, what *)
  rr_vacuous : string list;  (* Written flags that never changed *)
}

type report = {
  p_rows : row_result list;
  p_cases : int;
  p_failures : int;
  p_vacuous : int;
}

let run_row ?(table = Spec.table) ?(level = `Full) (row : Spec.row) : row_result =
  let cases = cases_for level row in
  let failures = ref [] in
  let changed : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let count = ref 0 in
  List.iter
    (fun c ->
      List.iter
        (fun (pname, preset) ->
          incr count;
          let a = Asm.create ~base () in
          Asm.ins a (movq Regs.r15 scratch);
          Asm.inss a preset;
          c.c_emit a;
          let image = Asm.assemble a in
          let t_index = 1 + List.length preset + c.c_before in
          let tag = c.c_name ^ "/" ^ pname in
          let fail what = failures := (tag, what) :: !failures in
          let probe ~index ~before ~after =
            if index >= t_index && index < t_index + c.c_units then
              List.iter
                (fun (fname, mask) ->
                  match Spec.effect_of row.Spec.lattice fname with
                  | Spec.Preserved ->
                    if before land mask <> after land mask then
                      fail
                        (Printf.sprintf "%s not preserved (%s -> %s)" fname
                           (Flags.to_string before) (Flags.to_string after))
                  | Spec.Written ->
                    if before land mask <> after land mask then
                      Hashtbl.replace changed fname ()
                  | Spec.Undefined -> ())
                Flags.all_cc
          in
          match Cross.check ~table ~mem_ranges:prop_mem_ranges ~probe image with
          | Cross.Agree _ -> ()
          | Cross.Diverged { after; diffs } ->
            fail
              (Printf.sprintf "diverged after %d units: %s" after
                 (String.concat "; " diffs))
          | Cross.Unsupported { what; _ } -> fail ("no spec row for: " ^ what))
        presets)
    cases;
  let vacuous =
    List.filter_map
      (fun (fname, _) ->
        match Spec.effect_of row.Spec.lattice fname with
        | Spec.Written when not (Hashtbl.mem changed fname) -> Some fname
        | _ -> None)
      Flags.all_cc
  in
  { rr_key = row.Spec.key; rr_cases = !count;
    rr_failures = List.rev !failures; rr_vacuous = vacuous }

let table_rows (t : Spec.table) =
  Hashtbl.fold (fun _ r acc -> r :: acc) t []
  |> List.sort (fun a b -> compare a.Spec.key b.Spec.key)

(** Run the derived property suite over every row of [table]. *)
let run_properties ?(table = Spec.table) ?(level = `Full) ?progress () : report
    =
  let rows = table_rows table in
  let results =
    List.map
      (fun row ->
        (match progress with Some p -> p row.Spec.key | None -> ());
        run_row ~table ~level row)
      rows
  in
  { p_rows = results;
    p_cases = List.fold_left (fun n r -> n + r.rr_cases) 0 results;
    p_failures =
      List.fold_left (fun n r -> n + List.length r.rr_failures) 0 results;
    p_vacuous =
      List.fold_left (fun n r -> n + List.length r.rr_vacuous) 0 results }

(* ------------------------------------------------------------------ *)
(* Exception-condition suite                                           *)
(* ------------------------------------------------------------------ *)

type exc_case = {
  e_name : string;
  e_vector : int;
  e_addr : int64 option;  (* expected CR2 for #PF *)
  e_mode : Spec.mode;
  e_body : Asm.t -> unit;
}

(* An address inside no mapped region: past the end of the 64-page heap. *)
let bad_disp = 0x10_0000L
let bad_addr = Int64.add scratch bad_disp
let mbad = Insn.Mem (Insn.mem_bd Regs.r15 bad_disp)

let exc_line ?(mode = Spec.Kernel) ?addr name vector setup target =
  { e_name = name; e_vector = vector; e_addr = addr; e_mode = mode;
    e_body =
      (fun a ->
        Asm.ins a (movq Regs.r15 scratch);
        Asm.inss a setup;
        Asm.ins a target) }

(** Trigger cases derived from a row's declared fault conditions. *)
let exc_cases_for (row : Spec.row) : exc_case list =
  let key = row.Spec.key in
  List.concat_map
    (fun fc ->
      match (fc, row.Spec.shape) with
      | Spec.F_gp_user, _ ->
        [ { e_name = key ^ ".gp_user"; e_vector = 13; e_addr = None;
            e_mode = Spec.User;
            e_body = (fun a -> Asm.ins a Insn.Hlt) } ]
      | Spec.F_de, Spec.Mul_shape _ ->
        let op = muldiv_of_key key in
        let mk name hi lo d =
          exc_line (key ^ "." ^ name) 0
            [ movq Regs.rax lo; movq Regs.rdx hi; movq Regs.r11 d ]
            (Insn.Muldiv (op, W64.B8, Insn.Reg Regs.r11))
        in
        if key = "div" then
          [ mk "de_zero" 0L 5L 0L; mk "de_overflow" 5L 0L 2L ]
        else
          [ mk "de_zero" 0L 5L 0L;
            mk "de_overflow" (-1L) Int64.min_int (-1L) ]
      | Spec.F_de, _ -> []
      | Spec.F_pf, shape -> (
        let pf name setup target =
          [ exc_line ~addr:bad_addr (key ^ "." ^ name) 14 setup target ]
        in
        let pf_at name addr setup target =
          [ exc_line ~addr (key ^ "." ^ name) 14 setup target ]
        in
        match shape with
        | Spec.Alu_shape _ ->
          pf "pf_dst" [ movq Regs.r11 1L ]
            (alu_target key W64.B8 mbad (Insn.RM (Insn.Reg Regs.r11)))
        | Spec.Rm_shape _ ->
          pf "pf" [] (Insn.Unary (unary_of_key key, W64.B8, mbad))
        | Spec.Shift_shape _ ->
          pf "pf" [] (Insn.Shift (shift_of_key key, W64.B8, mbad, Insn.ImmC 1))
        | Spec.Widen_shape _ ->
          pf "pf" []
            (if key = "movsx" then Insn.Movsx (W64.B8, W64.B1, Regs.r10, mbad)
             else Insn.Movzx (W64.B8, W64.B1, Regs.r10, mbad))
        | Spec.Reg_rm_shape _ ->
          pf "pf" []
            (if key = "imul2" then Insn.Imul2 (W64.B8, Regs.r10, mbad)
             else Insn.Cmovcc (Flags.NE, W64.B8, Regs.r10, mbad))
        | Spec.Mul_shape _ ->
          pf "pf" [ movq Regs.rax 4L; movq Regs.rdx 0L ]
            (Insn.Muldiv (muldiv_of_key key, W64.B8, mbad))
        | Spec.Push_shape ->
          pf_at "pf" (Int64.sub bad_addr 8L) [ movq Regs.rsp bad_addr ]
            (Insn.Push (Insn.Imm 1L))
        | Spec.Pop_shape ->
          pf_at "pf" bad_addr [ movq Regs.rsp bad_addr ]
            (Insn.Pop (Insn.Reg Regs.r10))
        | Spec.Bit_shape _ ->
          pf "pf" [] (Insn.Bittest (bittest_of_key key, W64.B8, mbad, Insn.Bimm 3))
        | Spec.String_shape _ ->
          let setup src =
            [ movq Regs.rsi (if src then bad_addr else Int64.add scratch 0x200L);
              movq Regs.rdi (if src then Int64.add scratch 0x300L else bad_addr);
              movq Regs.rcx 1L ]
          in
          (match key with
          | "movs" -> pf "pf_src" (setup true) (Insn.Movs (W64.B8, false))
          | "lods" -> pf "pf_src" (setup true) (Insn.Lods (W64.B8, false))
          | _ -> pf "pf_dst" (setup false) (Insn.Stos (W64.B8, false)))
        | Spec.Xchg_shape _ ->
          let target =
            match key with
            | "xchg" -> Insn.Xchg (W64.B8, mbad, Regs.r11)
            | "xadd" -> Insn.Xadd (W64.B8, mbad, Regs.r11)
            | _ -> Insn.Cmpxchg (W64.B8, mbad, Regs.r11)
          in
          pf "pf" [ movq Regs.r11 1L ] target
        | Spec.Branch_shape -> (
          match key with
          | "call" ->
            [ { e_name = "call.pf"; e_vector = 14;
                e_addr = Some (Int64.sub bad_addr 8L); e_mode = Spec.Kernel;
                e_body =
                  (fun a ->
                    Asm.ins a (movq Regs.r15 scratch);
                    Asm.ins a (movq Regs.rsp bad_addr);
                    Asm.call a "f";
                    Asm.ins a Insn.Hlt;
                    Asm.label a "f";
                    Asm.ins a Insn.Hlt) } ]
          | "ret" ->
            pf_at "pf" bad_addr [ movq Regs.rsp bad_addr ] Insn.Ret
          | _ -> [])
        | Spec.Setcc_shape -> pf "pf" [] (Insn.Setcc (Flags.E, mbad))
        | Spec.Fp_mem_shape -> (
          let m = Insn.mem_bd Regs.r15 bad_disp in
          match key with
          | "fld" -> pf "pf" [] (Insn.Fld m)
          | "fst" -> pf "pf" [] (Insn.Fst m)
          | "fadd" | "fsub" | "fmul" | "fdiv" ->
            pf "pf" [] (Insn.Fp (fpop_of_key key, m))
          | "sseload" -> pf "pf" [] (Insn.SseLoad (2, m))
          | _ -> pf "pf" [] (Insn.SseStore (m, 2)))
        | Spec.Flagio_shape ->
          if key = "pushf" then
            pf_at "pf" (Int64.sub bad_addr 8L) [ movq Regs.rsp bad_addr ]
              Insn.Pushf
          else pf_at "pf" bad_addr [ movq Regs.rsp bad_addr ] Insn.Popf
        | Spec.Plain | Spec.Cvt_shape | Spec.Fp_reg_shape -> []))
    row.Spec.faults

let handled_vectors = [ 0; 6; 13; 14 ]

(* Program image with an IDT and per-vector marker handlers: handler for
   vector v sets r14 <- 100+v and halts, so delivery is observable (and
   distinguishable from r14's initial zero when nothing is delivered). *)
let marker v = 100 + v

let build_exc_image (c : exc_case) =
  let a = Asm.create ~base () in
  c.e_body a;
  Asm.ins a Insn.Hlt;
  List.iter
    (fun v ->
      Asm.label a (Printf.sprintf "h%d" v);
      Asm.ins a (movq Regs.r14 (Int64.of_int (marker v)));
      Asm.ins a Insn.Hlt)
    handled_vectors;
  Asm.label a "hx";
  Asm.ins a (movq Regs.r14 999L);
  Asm.ins a Insn.Hlt;
  Asm.align a 8;
  Asm.label a "idt";
  for v = 0 to 31 do
    Asm.quad_label a
      (if List.mem v handled_vectors then Printf.sprintf "h%d" v else "hx")
  done;
  Asm.assemble a

(* Oracle prediction: run the program on the oracle alone and report the
   first predicted fault as (vector, pf address). *)
let predict table mode (image : Asm.image) =
  let o =
    Oracle.create ~table ~mode
      ~valid:(Cross.valid_for_machine image)
      ~rip:image.Asm.img_base image
  in
  (Oracle.state o).Spec.regs.(Regs.rsp) <- Machine.stack_top;
  match Oracle.run ~max_insns:64 o with
  | Oracle.Faulted (Spec.Access_fault { addr; _ } as f) ->
    Some (Spec.fault_vector f, Some addr)
  | Oracle.Faulted f -> Some (Spec.fault_vector f, None)
  | Oracle.Undecodable _ -> Some (6, None)
  | Oracle.Stepped | Oracle.Halted | Oracle.Unsupported _ -> None

(* Real delivery: run the machine through seqcore with the IDT installed
   and report (marker vector, cr2). *)
let deliver mode (image : Asm.image) =
  let m =
    Machine.create
      ~mode:(match mode with Spec.User -> Context.User | Spec.Kernel -> Context.Kernel)
      image
  in
  let ctx = m.Machine.ctx in
  ctx.Context.idt_base <- Asm.symbol image "idt";
  ctx.Context.kernel_rsp <- Int64.sub Machine.stack_top 0x800L;
  let seq = Seqcore.create m.Machine.env ctx in
  (* Explicit step loop: [Seqcore.run] stops on [Executed 0], but a
     faulting macro commits nothing — delivery redirects into the handler
     with 0 committed, and we must keep stepping to observe it. *)
  (try
     let budget = ref 4096 in
     let continue_ = ref true in
     while !continue_ && !budget > 0 do
       decr budget;
       match Seqcore.step_block seq with
       | Seqcore.Executed _ | Seqcore.Interrupted ->
         if not ctx.Context.running then continue_ := false
       | Seqcore.Idle -> continue_ := false
     done
   with Assists.Triple_fault _ -> ());
  (Int64.to_int (Context.gpr ctx Regs.r14), ctx.Context.cr2)

type exc_report = {
  e_cases : int;
  e_failures : (string * string) list;  (* case name, what *)
}

(** Run every derived exception trigger: the oracle must predict the
    row's declared vector (and faulting address for #PF), and seqcore
    delivery through the IDT must land in the matching handler with the
    same CR2. *)
let run_exceptions ?(table = Spec.table) () : exc_report =
  let cases = List.concat_map exc_cases_for (table_rows table) in
  let failures = ref [] in
  List.iter
    (fun c ->
      let fail what = failures := (c.e_name, what) :: !failures in
      let image = build_exc_image c in
      (match predict table c.e_mode image with
      | Some (v, addr) ->
        if v <> c.e_vector then
          fail (Printf.sprintf "oracle predicted vector %d, want %d" v c.e_vector);
        (match (c.e_addr, addr) with
        | Some want, Some got when got <> want ->
          fail (Printf.sprintf "oracle predicted fault addr %Lx, want %Lx" got want)
        | Some want, None ->
          fail (Printf.sprintf "oracle predicted no fault addr, want %Lx" want)
        | _ -> ())
      | None -> fail "oracle predicted no fault");
      let got, cr2 = deliver c.e_mode image in
      if got <> marker c.e_vector then
        fail
          (Printf.sprintf "core delivered marker %d, want vector %d" got
             c.e_vector);
      match c.e_addr with
      | Some want when c.e_vector = 14 && cr2 <> want ->
        fail (Printf.sprintf "core cr2 = %Lx, want %Lx" cr2 want)
      | _ -> ())
    cases;
  { e_cases = List.length cases; e_failures = List.rev !failures }

(* ------------------------------------------------------------------ *)
(* Text reports                                                        *)
(* ------------------------------------------------------------------ *)

let report_to_string (r : report) =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "conformance: %d rows, %d property programs\n"
       (List.length r.p_rows) r.p_cases);
  List.iter
    (fun rr ->
      if rr.rr_failures <> [] || rr.rr_vacuous <> [] then begin
        Buffer.add_string b
          (Printf.sprintf "row %-10s %d cases, %d failures\n" rr.rr_key
             rr.rr_cases (List.length rr.rr_failures));
        List.iteri
          (fun i (tag, what) ->
            if i < 5 then
              Buffer.add_string b (Printf.sprintf "  FAIL %s: %s\n" tag what))
          rr.rr_failures;
        if List.length rr.rr_failures > 5 then
          Buffer.add_string b
            (Printf.sprintf "  ... %d more\n" (List.length rr.rr_failures - 5));
        List.iter
          (fun fl ->
            Buffer.add_string b
              (Printf.sprintf "  VACUOUS %s: declared Written but never changed\n"
                 fl))
          rr.rr_vacuous
      end)
    r.p_rows;
  Buffer.add_string b
    (Printf.sprintf "result: %d failures, %d vacuous flag claims\n" r.p_failures
       r.p_vacuous);
  Buffer.contents b

let exc_report_to_string (r : exc_report) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "exceptions: %d trigger cases\n" r.e_cases);
  List.iter
    (fun (name, what) ->
      Buffer.add_string b (Printf.sprintf "  FAIL %s: %s\n" name what))
    r.e_failures;
  Buffer.add_string b
    (Printf.sprintf "result: %d failures\n" (List.length r.e_failures));
  Buffer.contents b

let coverage_to_string (c : Spec.coverage) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "spec coverage of fuzzgen opcodes: %d/%d (%.1f%%)\n"
       (List.length c.Spec.covered)
       (List.length c.Spec.covered + List.length c.Spec.missing)
       (Spec.coverage_pct c));
  if c.Spec.missing <> [] then
    Buffer.add_string b
      ("missing rows: " ^ String.concat " " c.Spec.missing ^ "\n");
  if c.Spec.extra <> [] then
    Buffer.add_string b
      ("rows beyond the generator set: " ^ String.concat " " c.Spec.extra ^ "\n");
  Buffer.contents b
