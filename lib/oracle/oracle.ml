(** The conformance oracle: an independent reference interpreter driven
    directly by the declarative spec table ([lib/spec]).

    The oracle deliberately shares no execution code with the simulator
    cores: no microcode expansion, no uop execution, no [W64] arithmetic.
    It decodes a macro-instruction (the decoder *is* shared — the spec
    covers semantics, not encodings), looks up the spec row by mnemonic,
    and runs the row's [sem] function over a private [Spec.state].

    Stepping granularity matches the sequential core's committed-unit
    count ([Seqcore.create ~max_bb_insns:1]): one [step] per committed
    macro-instruction, with each REP string iteration (and the final
    exit test) its own step, so lockstep comparison is possible. *)

open Ptl_isa
module Spec = Ptl_spec.Spec

type t = {
  st : Spec.state;
  table : Spec.table;
}

(** Result of stepping the oracle by one committed unit. *)
type outcome =
  | Stepped  (* one unit committed; state advanced *)
  | Halted  (* already halted before the step *)
  | Faulted of Spec.fault  (* predicted architectural fault; state rolled back *)
  | Undecodable of int64  (* decoder rejected the bytes (#UD) *)
  | Unsupported of string  (* decoded fine but no spec row covers it *)

let state t = t.st

(** Build an oracle over an assembled image. [valid] is the
    mapped-address predicate (see [Cross.valid_for_machine] for the
    predicate matching [Machine.create]'s address space). Freshly mapped
    pages read as zero, so the backing store only covers the code image. *)
let create ?(table = Spec.table) ?(mode = Spec.Kernel) ?(flags = 0) ~valid
    ~rip (image : Asm.image) =
  let base = image.Asm.img_base in
  let len = Int64.of_int (String.length image.Asm.code) in
  let backing va =
    let off = Int64.sub va base in
    if off >= 0L && off < len then
      Some (Char.code image.Asm.code.[Int64.to_int off])
    else None
  in
  { st = Spec.make_state ~rip ~flags ~mode ~backing ~valid (); table }

let rollback st regs xmms st0 flags =
  Array.blit regs 0 st.Spec.regs 0 (Array.length regs);
  Array.blit xmms 0 st.Spec.xmms 0 (Array.length xmms);
  st.Spec.st0 <- st0;
  st.Spec.flags <- flags;
  Spec.discard_journal st

(** Execute one committed unit. On a predicted fault the architectural
    state is rolled back to the instruction boundary (registers, flags
    and journaled memory writes), mirroring the sequential core's
    buffered macro commit, and [rip] is left at the faulting
    instruction. *)
let step t : outcome =
  let st = t.st in
  if st.Spec.halted then Halted
  else
    let fetch va = Spec.read_byte st va in
    match Decode.decode ~fetch ~rip:st.Spec.rip with
    | exception Decode.Invalid_opcode rip -> Undecodable rip
    | exception Spec.Spec_fault f -> Faulted f
    | insn, ilen -> (
        let next_rip = Int64.add st.Spec.rip (Int64.of_int ilen) in
        let key = Spec.key_of_insn insn in
        match Spec.find t.table key with
        | None -> Unsupported key
        | Some row -> (
            let regs = Array.copy st.Spec.regs in
            let xmms = Array.copy st.Spec.xmms in
            let st0 = st.Spec.st0 and flags = st.Spec.flags in
            match row.Spec.sem st insn ~next_rip with
            | exception Spec.Spec_fault f ->
                rollback st regs xmms st0 flags;
                Faulted f
            | exception Spec.Unsupported_insn k ->
                rollback st regs xmms st0 flags;
                Unsupported k
            | stp ->
                Spec.commit_journal st;
                st.Spec.insns <- st.Spec.insns + 1;
                (match stp with
                | Spec.Next -> st.Spec.rip <- next_rip
                | Spec.Jump target -> st.Spec.rip <- target
                | Spec.Repeat -> ()  (* another unit at the same rip *)
                | Spec.Halt_step -> st.Spec.rip <- next_rip);
                Stepped))

(** Run until halt, fault or [max_insns] committed units. Returns the
    last outcome ([Stepped] means the budget ran out first). *)
let run ?(max_insns = 1_000_000) t : outcome =
  let rec go last =
    if t.st.Spec.insns >= max_insns then last
    else
      match step t with
      | Stepped -> go Stepped
      | Halted -> Halted
      | (Faulted _ | Undecodable _ | Unsupported _) as stop -> stop
  in
  go Stepped

(** Predicted fault for the instruction at the current rip, or [None]
    if it executes cleanly ([`Fault]s are not delivered by the oracle;
    the caller compares the prediction against the machine's delivery
    path). [Undecodable] maps to vector 6 (#UD). *)
let predict_fault t : (int * int64 option) option =
  match step t with
  | Faulted (Spec.Access_fault { addr; _ } as f) ->
      Some (Spec.fault_vector f, Some addr)
  | Faulted f -> Some (Spec.fault_vector f, None)
  | Undecodable _ -> Some (6, None)
  | Stepped | Halted | Unsupported _ -> None
