(** The minios guest ABI: syscall numbers, calling convention, memory
    layout and interrupt vectors.

    Calling convention: syscall number in rax, arguments in rdi, rsi, rdx;
    result in rax (negative = error). Syscalls may clobber rax, rcx, r11,
    rsi, rdi and rdx (data-movement syscalls run kernel copy loops in
    those registers). All other registers are preserved.

    Address space layout (per process; the kernel region is mapped
    supervisor-only into every process):
    - kernel image at {!kernel_base}
    - per-process kernel stacks at {!kstack_base} + pid * {!kstack_stride}
    - kernel heap (page cache, socket rings) from {!kheap_base}
    - user program image at {!user_code_base}
    - user heap at {!user_heap_base}
    - user stack top at {!user_stack_top} *)

let kernel_base = 0x10_0000L
let kstack_base = 0x20_0000L
let kstack_stride = 0x1_0000L
let kstack_pages = 4
let kheap_base = 0x400_0000L
let user_code_base = 0x40_0000L
let user_heap_base = 0x1000_0000L
let user_heap_pages = 256
let user_stack_top = 0x7FFF_F000L
let user_stack_pages = 16

(* Interrupt vectors. *)
let vec_timer = 32
let vec_io = 33
let vec_shootdown = 34  (* TLB-shootdown IPI from the VM layer *)

(* Syscall numbers. *)
let sys_exit = 0
let sys_read = 1
let sys_write = 2
let sys_open = 3
let sys_close = 4
let sys_pipe = 5
let sys_spawn = 6
let sys_waitpid = 7
let sys_sleep = 8
let sys_socket = 9
let sys_listen = 10
let sys_accept = 11
let sys_connect = 12
let sys_getpid = 13
let sys_readdir = 14
let sys_stat = 15
let sys_yield = 16
let sys_creat = 17
let sys_ptl_marker = 18  (* benchmark phase marker: forwarded to stats *)
let sys_poll2 = 19  (* block until one of two fds is readable; returns 0/1 *)
let sys_seek = 20  (* set a file descriptor's absolute position *)

(* Errors (returned as negative values in rax). *)
let e_badf = -9
let e_noent = -2
let e_inval = -22
let e_again = -11
let e_child = -10

(* open flags *)
let o_rdonly = 0
let o_wronly = 1
let o_creat = 64
