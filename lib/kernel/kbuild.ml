(** Builder for the minios kernel image — real guest code for every path
    where the paper's full-system claim needs genuine kernel-mode cycles:
    interrupt entry/exit with full register save/restore, the syscall
    dispatcher, data-movement copy loops, the TCP-checksum transmit loop,
    a run-queue scan on every timer tick, and the idle loop.

    Host-side kernel services are reached through the paravirtual [kcall]
    instruction; the *site* of each kcall (its return address) identifies
    the service, so no registers are clobbered for dispatch. *)

open Ptl_util
module Insn = Ptl_isa.Insn
module Regs = Ptl_isa.Regs
module Asm = Ptl_isa.Asm
module Flags = Ptl_isa.Flags

(** Resolved addresses the host kernel model needs. *)
type layout = {
  image : Asm.image;
  l_boot : int64;
  l_idle : int64;
  l_syscall_entry : int64;
  l_syscall_kcall : int64;  (* re-entry point for retried syscalls *)
  l_sysret : int64;  (* restore rcx/r11 and sysret *)
  l_copy_ret : int64;  (* rep movsb; sysret *)
  l_copy_commit_ret : int64;  (* rep movsb; kcall commit; sysret *)
  l_csum_copy_commit_ret : int64;  (* checksum; rep movsb; kcall commit *)
  l_timer_resume : int64;  (* pops + iret, for rescheduled processes *)
  l_runqueue : int64;
  (* kcall sites (address immediately after each kcall) *)
  s_boot : int64;
  s_syscall : int64;
  s_timer : int64;
  s_io : int64;
  s_fault : int64;  (* shared by #GP/#DE/#UD entries *)
  s_pf : int64;  (* #PF entry (full frame; demand paging resolves + irets) *)
  s_shootdown : int64;  (* TLB-shootdown IPI acknowledge *)
  s_commit : int64;  (* publish side effects after a guest copy loop *)
}

let runqueue_entries = 32

(* push/pop all GPRs except rsp (interrupt paths save the full frame). *)
let save_regs a =
  List.iter
    (fun r -> Asm.ins a (Insn.Push (Insn.RM (Insn.Reg r))))
    [ Regs.rax; Regs.rcx; Regs.rdx; Regs.rbx; Regs.rbp; Regs.rsi; Regs.rdi;
      Regs.r8; Regs.r9; Regs.r10; Regs.r11; Regs.r12; Regs.r13; Regs.r14; Regs.r15 ]

let restore_regs a =
  List.iter
    (fun r -> Asm.ins a (Insn.Pop (Insn.Reg r)))
    [ Regs.r15; Regs.r14; Regs.r13; Regs.r12; Regs.r11; Regs.r10; Regs.r9;
      Regs.r8; Regs.rdi; Regs.rsi; Regs.rbp; Regs.rbx; Regs.rdx; Regs.rcx;
      Regs.rax ]

let build () =
  let a = Asm.create ~base:Abi.kernel_base () in

  (* ---- boot ---- *)
  Asm.label a "boot";
  Asm.lea_label a Regs.rax "idt";
  Asm.ins a (Insn.MovToCr (6, Regs.rax));
  Asm.lea_label a Regs.rax "syscall_entry";
  Asm.ins a (Insn.MovToCr (5, Regs.rax));
  (* kernel boot stack: supplied by the host before entry in cr1 *)
  Asm.ins a Insn.Kcall;
  Asm.label a "after_boot_kcall";
  (* the boot kcall normally context-switches to init; if it returns,
     fall into the idle loop *)
  Asm.label a "idle";
  Asm.ins a Insn.Sti;
  Asm.ins a Insn.Hlt;
  Asm.jmp a "idle";

  (* ---- syscall path ----
     rcx/r11 hold the user return state but are clobbered by the kernel
     copy loops (rep movsb), so they are saved on the user stack around
     the service, like a real kernel's entry/exit frames. *)
  Asm.align a 16;
  Asm.label a "syscall_entry";
  Asm.ins a (Insn.Push (Insn.RM (Insn.Reg Regs.rcx)));
  Asm.ins a (Insn.Push (Insn.RM (Insn.Reg Regs.r11)));
  Asm.label a "syscall_kcall";
  Asm.ins a Insn.Kcall;
  Asm.label a "after_syscall_kcall";
  Asm.label a "sysret_path";
  Asm.ins a (Insn.Pop (Insn.Reg Regs.r11));
  Asm.ins a (Insn.Pop (Insn.Reg Regs.rcx));
  Asm.ins a Insn.Sysret;

  (* copy continuation: kernel<->user data movement (read/write/pipe).
     Host preloads rsi/rdi/rcx; rax already holds the return value. *)
  Asm.align a 16;
  Asm.label a "copy_ret";
  Asm.ins a (Insn.Movs (W64.B1, true));
  Asm.jmp a "sysret_path";

  (* copy with post-commit: data movement whose side effects (ring
     indices, file sizes) are published only after the copy completed,
     via a second kcall. *)
  Asm.align a 16;
  Asm.label a "copy_commit_ret";
  Asm.ins a (Insn.Movs (W64.B1, true));
  Asm.label a "commit_kcall";
  Asm.ins a Insn.Kcall;
  Asm.label a "after_commit_kcall";
  Asm.jmp a "sysret_path";

  (* transmit continuation: TCP-style checksum pass, copy, then commit.
     In: rsi=src, rdi=dst, rcx=len, r11=len (saved). rax set at commit. *)
  Asm.align a 16;
  Asm.label a "csum_copy_ret";
  Asm.ins a (Insn.Alu (Insn.Xor, W64.B8, Insn.Reg Regs.rdx, Insn.RM (Insn.Reg Regs.rdx)));
  Asm.ins a (Insn.Test (W64.B8, Insn.Reg Regs.rcx, Insn.RM (Insn.Reg Regs.rcx)));
  Asm.jcc a Flags.E "csum_done";
  Asm.label a "csum_loop";
  Asm.ins a (Insn.Movzx (W64.B8, W64.B1, Regs.rax, Insn.Mem (Insn.mem_bd Regs.rsi 0L)));
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg Regs.rdx, Insn.RM (Insn.Reg Regs.rax)));
  Asm.ins a (Insn.Shift (Insn.Rol, W64.B8, Insn.Reg Regs.rdx, Insn.ImmC 1));
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg Regs.rsi, Insn.Imm 1L));
  Asm.ins a (Insn.Unary (Insn.Dec, W64.B8, Insn.Reg Regs.rcx));
  Asm.jcc a Flags.NE "csum_loop";
  Asm.label a "csum_done";
  (* restore rsi/rcx from r11 and do the copy *)
  Asm.ins a (Insn.Alu (Insn.Sub, W64.B8, Insn.Reg Regs.rsi, Insn.RM (Insn.Reg Regs.r11)));
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg Regs.rcx, Insn.RM (Insn.Reg Regs.r11)));
  Asm.ins a (Insn.Movs (W64.B1, true));
  (* share the commit kcall site with copy_commit_ret *)
  Asm.jmp a "commit_kcall";

  (* ---- timer interrupt ---- *)
  Asm.align a 16;
  Asm.label a "timer_entry";
  save_regs a;
  (* scheduler work: scan the run queue (real kernel-mode cycles) *)
  Asm.lea_label a Regs.rbx "runqueue";
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg Regs.rcx, Insn.Imm (Int64.of_int runqueue_entries)));
  Asm.label a "rq_scan";
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg Regs.rax, Insn.RM (Insn.Mem (Insn.mem_bd Regs.rbx 0L))));
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg Regs.rbx, Insn.Imm 8L));
  Asm.ins a (Insn.Unary (Insn.Dec, W64.B8, Insn.Reg Regs.rcx));
  Asm.jcc a Flags.NE "rq_scan";
  Asm.ins a Insn.Kcall;
  Asm.label a "after_timer_kcall";
  Asm.label a "timer_resume";
  restore_regs a;
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg Regs.rsp, Insn.Imm 8L));
  Asm.ins a Insn.Iret;

  (* ---- I/O completion interrupt ---- *)
  Asm.align a 16;
  Asm.label a "io_entry";
  save_regs a;
  Asm.ins a Insn.Kcall;
  Asm.label a "after_io_kcall";
  Asm.jmp a "timer_resume" (* same restore path *);

  (* ---- fault entries (#DE/#UD/#GP): host decides, usually kills *)
  Asm.align a 16;
  Asm.label a "fault_entry";
  Asm.ins a Insn.Kcall;
  Asm.label a "after_fault_kcall";
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg Regs.rsp, Insn.Imm 8L));
  Asm.ins a Insn.Iret;

  (* ---- #PF entry: full register save, like a real kernel's page-fault
     path — demand paging resolves the fault host-side and the iret
     restarts the faulting instruction; unresolvable faults kill the
     process in the kcall instead. *)
  Asm.align a 16;
  Asm.label a "pf_entry";
  save_regs a;
  Asm.ins a Insn.Kcall;
  Asm.label a "after_pf_kcall";
  restore_regs a;
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg Regs.rsp, Insn.Imm 8L));
  Asm.ins a Insn.Iret;

  (* ---- TLB-shootdown IPI: save, acknowledge (the host flushes this
     VCPU's translation structures at the kcall), restore, iret. *)
  Asm.align a 16;
  Asm.label a "shootdown_entry";
  save_regs a;
  Asm.ins a Insn.Kcall;
  Asm.label a "after_shootdown_kcall";
  restore_regs a;
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg Regs.rsp, Insn.Imm 8L));
  Asm.ins a Insn.Iret;

  (* ---- data ---- *)
  Asm.align a 64;
  Asm.label a "runqueue";
  for _ = 1 to runqueue_entries do
    Asm.quad a 0L
  done;
  Asm.align a 64;
  Asm.label a "idt";
  for v = 0 to 47 do
    if v = 0 || v = 6 || v = 13 then Asm.quad_label a "fault_entry"
    else if v = 14 then Asm.quad_label a "pf_entry"
    else if v = Abi.vec_timer then Asm.quad_label a "timer_entry"
    else if v = Abi.vec_io then Asm.quad_label a "io_entry"
    else if v = Abi.vec_shootdown then Asm.quad_label a "shootdown_entry"
    else Asm.quad a 0L
  done;

  let image = Asm.assemble a in
  let sym = Asm.symbol image in
  {
    image;
    l_boot = sym "boot";
    l_idle = sym "idle";
    l_syscall_entry = sym "syscall_entry";
    l_syscall_kcall = sym "syscall_kcall";
    l_sysret = sym "sysret_path";
    l_copy_ret = sym "copy_ret";
    l_copy_commit_ret = sym "copy_commit_ret";
    l_csum_copy_commit_ret = sym "csum_copy_ret";
    l_timer_resume = sym "timer_resume";
    l_runqueue = sym "runqueue";
    s_boot = sym "after_boot_kcall";
    s_syscall = sym "after_syscall_kcall";
    s_timer = sym "after_timer_kcall";
    s_io = sym "after_io_kcall";
    s_fault = sym "after_fault_kcall";
    s_pf = sym "after_pf_kcall";
    s_shootdown = sym "after_shootdown_kcall";
    s_commit = sym "after_commit_kcall";
  }
