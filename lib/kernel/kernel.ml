(** The minios kernel model.

    Division of labour (documented in DESIGN.md): *bookkeeping* (process
    tables, file descriptors, ring-buffer indices, scheduling decisions)
    is host-side, exactly like Xen's backend drivers and PTLmon live
    outside the simulated pipeline; but *all guest-visible work* — copy
    loops, checksum loops, interrupt entry/exit with full register
    save/restore, run-queue scans, the idle hlt loop — executes as real
    simulated kernel-mode instructions, so the user/kernel/idle cycle
    accounting of the paper's Figure 2 is genuinely simulated.

    Context switching uses two mechanisms, both with real-hardware
    analogues: interrupt-path switches park the outgoing process on its own
    kernel stack (the guest pops 15 registers and irets on resume), while
    syscall-path blocking snapshots the register file host-side, the same
    way Xen's contextswap hypercall moves VCPU state (§4). *)

open Ptl_util
module Context = Ptl_arch.Context
module Env = Ptl_arch.Env
module Vmem = Ptl_arch.Vmem
module Pm = Ptl_mem.Phys_mem
module Pt = Ptl_mem.Pagetable
module Stats = Ptl_stats.Statstree
module Regs = Ptl_isa.Regs
module Vm = Ptl_vm.Vm

type config = {
  timer_period : int;  (* cycles between timer interrupts *)
  timeslice_ticks : int;  (* timer ticks per scheduling quantum *)
  disk_latency : int;  (* cycles per block fetch from "disk" *)
  net_latency : int;  (* cycles per packet on the loopback path *)
  net_mtu : int;  (* bytes per packet *)
  kheap_pages : int;  (* page cache + ring buffer budget *)
  demand_paging : bool;  (* lazily populate user address spaces *)
  vm_watermark : int;  (* resident user-frame budget (0 = unlimited) *)
  vm_batch : int;  (* evictions per reclaim pass *)
}

(** 2.2 GHz-flavoured defaults: 1000 Hz timer, ~50us disk, ~30us network. *)
let default_config =
  {
    timer_period = 2_200_000;
    timeslice_ticks = 4;
    disk_latency = 110_000;
    net_latency = 66_000;
    net_mtu = 1460;
    kheap_pages = 4096;
    demand_paging = false;
    vm_watermark = 0;
    vm_batch = 8;
  }

(* ---- kernel objects ---- *)

type pipe = {
  p_ring_va : int64;  (* guest VA of the ring buffer (kheap) *)
  p_cap : int;
  mutable p_r : int;  (* read cursor (absolute) *)
  mutable p_w : int;  (* write cursor (absolute) *)
  mutable p_readers : int;
  mutable p_writers : int;
}

(* One direction of a TCP-lite connection. *)
type channel = {
  ch_ring_va : int64;
  ch_cap : int;
  mutable ch_r : int;
  mutable ch_w : int;  (* bytes written (committed by sender) *)
  mutable ch_delivered : int;  (* bytes visible to the receiver *)
  mutable ch_in_flight : int;  (* bytes with a pending delivery event *)
  mutable ch_closed : bool;
}

type socket = {
  sock_id : int;
  mutable sock_refs : int;  (* open fd references across all processes *)
  mutable sock_port : int;
  mutable sock_listening : bool;
  mutable sock_backlog : int list;  (* pending peer socket ids *)
  mutable sock_tx : channel option;  (* data we send *)
  mutable sock_rx : channel option;  (* data we receive *)
}

type fd_obj =
  | F_file of { file : Ramfs.file; mutable pos : int; writable : bool }
  | F_pipe_r of pipe
  | F_pipe_w of pipe
  | F_sock of socket

type resume =
  | R_fresh of { entry : int64; user_rsp : int64; mutable arg : int64 }
  | R_kstack of int64  (* kernel rsp; resumes at timer_resume *)
  | R_syscall of int64 array  (* saved regs; re-dispatch the syscall *)
  | R_sysret of { regs : int64 array; rax : int64 }

type pstate = Ready | Running | Blocked | Zombie

type proc = {
  pid : int;
  pname : string;
  cr3 : int;
  kstack_top : int64;
  mutable state : pstate;
  mutable resume : resume;
  mutable fds : fd_obj option array;
  mutable exit_code : int;
  mutable ticks_run : int;
  mutable pending_commit : (unit -> int64) option;
}

type event =
  | E_timer
  | E_disk_done of { pid : int; file : Ramfs.file; blk : int; va : int64 }
  | E_net_deliver of { ch : channel; bytes : int }
  | E_wake of int

type t = {
  env : Env.t;
  ctx : Context.t;
  config : config;
  layout : Kbuild.layout;
  fs : Ramfs.t;
  programs : (string, Ptl_isa.Asm.image) Hashtbl.t;
  mutable procs : proc list;
  mutable next_pid : int;
  mutable current : proc option;
  runqueue : int Queue.t;
  mutable events : (int * event) list;  (* sorted by cycle *)
  mutable next_event_cycle : int;
  mutable jiffies : int;
  kernel_cr3 : int;
  mutable kernel_pages : (int64 * int) list;  (* (va, mfn) of kernel region *)
  mutable kheap_next : int64;
  mutable kheap_end : int64;
  mutable sockets : socket list;
  mutable next_sock : int;
  mutable shutdown : bool;
  mutable scratch : int64;  (* kernel VA of a small metadata buffer *)
  vm : Vm.t option;  (* demand-paging policy engine (config.demand_paging) *)
  mutable on_marker : int -> unit;
  c_syscalls : Stats.counter;
  c_switches : Stats.counter;
  c_timer_ticks : Stats.counter;
  c_disk_reads : Stats.counter;
  c_packets : Stats.counter;
  c_page_ins : Stats.counter;
}

exception Kernel_panic of string

(* ---- event queue ---- *)

let refresh_next t =
  t.next_event_cycle <-
    (match t.events with [] -> max_int | (c, _) :: _ -> c)

let post t ~at ev =
  let rec insert = function
    | [] -> [ (at, ev) ]
    | (c, e) :: rest when c <= at -> (c, e) :: insert rest
    | later -> (at, ev) :: later
  in
  t.events <- insert t.events;
  refresh_next t

let next_event_cycle t = t.next_event_cycle

(* ---- address space plumbing ---- *)

let alloc_mapped t ~cr3 ~vaddr ~npages ~user =
  for i = 0 to npages - 1 do
    let va = Int64.add vaddr (Int64.of_int (i * Pm.page_size)) in
    let mfn = Pm.alloc_page t.env.Env.mem in
    Pt.map t.env.Env.mem ~cr3_mfn:cr3 ~vaddr:va ~mfn ~writable:true ~user
      ~alloc:(fun () -> Pm.alloc_page t.env.Env.mem)
      ();
    if not user then t.kernel_pages <- (va, mfn) :: t.kernel_pages
  done

(* Map the accumulated kernel region into another address space. *)
let map_kernel_into t ~cr3 =
  List.iter
    (fun (va, mfn) ->
      Pt.map t.env.Env.mem ~cr3_mfn:cr3 ~vaddr:va ~mfn ~writable:true ~user:false
        ~alloc:(fun () -> Pm.alloc_page t.env.Env.mem)
        ())
    t.kernel_pages

let load_image t ~cr3 (img : Ptl_isa.Asm.image) ~user =
  let base = img.Ptl_isa.Asm.img_base in
  let len = String.length img.Ptl_isa.Asm.code in
  let first = Int64.to_int (Int64.logand base (Int64.of_int Pm.page_mask)) in
  let npages = (first + len + Pm.page_size - 1) / Pm.page_size in
  let page_base = Int64.sub base (Int64.of_int first) in
  for i = 0 to npages - 1 do
    let va = Int64.add page_base (Int64.of_int (i * Pm.page_size)) in
    let mfn = Pm.alloc_page t.env.Env.mem in
    Pt.map t.env.Env.mem ~cr3_mfn:cr3 ~vaddr:va ~mfn ~writable:true ~user
      ~alloc:(fun () -> Pm.alloc_page t.env.Env.mem)
      ();
    if not user then t.kernel_pages <- (va, mfn) :: t.kernel_pages
  done;
  String.iteri
    (fun i c ->
      let va = Int64.add base (Int64.of_int i) in
      match Pt.probe t.env.Env.mem ~cr3_mfn:cr3 ~vaddr:va with
      | Some mfn ->
        Pm.write8 t.env.Env.mem
          (Pm.paddr_of_mfn mfn + Int64.to_int (Int64.logand va (Int64.of_int Pm.page_mask)))
          (Char.code c)
      | None -> assert false)
    img.Ptl_isa.Asm.code

(* Allocate [n] bytes of kernel heap (guest VA, page granular pool). *)
let kheap_alloc t n =
  let n = Ptl_util.Bitops.align_up n 64 in
  if Int64.add t.kheap_next (Int64.of_int n) > t.kheap_end then
    raise (Kernel_panic "kernel heap exhausted");
  let va = t.kheap_next in
  t.kheap_next <- Int64.add t.kheap_next (Int64.of_int n);
  va

(* Physical address behind a kernel-heap VA (kheap is mapped in every
   address space, so translation through kernel_cr3 is authoritative). *)
let kva_paddr t va =
  match Pt.probe t.env.Env.mem ~cr3_mfn:t.kernel_cr3 ~vaddr:va with
  | Some mfn ->
    Pm.paddr_of_mfn mfn + Int64.to_int (Int64.logand va (Int64.of_int Pm.page_mask))
  | None -> raise (Kernel_panic "unmapped kernel VA")

(* ---- construction ---- *)

let create ?(config = default_config) env ctx =
  let layout = Kbuild.build () in
  let stats = env.Env.stats in
  let t =
    {
      env;
      ctx;
      config;
      layout;
      fs = Ramfs.create ();
      programs = Hashtbl.create 8;
      procs = [];
      next_pid = 1;
      current = None;
      runqueue = Queue.create ();
      events = [];
      next_event_cycle = max_int;
      jiffies = 0;
      kernel_cr3 = Pm.alloc_page env.Env.mem;
      kernel_pages = [];
      kheap_next = Abi.kheap_base;
      kheap_end = Int64.add Abi.kheap_base (Int64.of_int (config.kheap_pages * Pm.page_size));
      sockets = [];
      next_sock = 1;
      shutdown = false;
      scratch = 0L;
      vm =
        (if config.demand_paging then begin
           let vm =
             Vm.create ~shootdown_vec:Abi.vec_shootdown
               ~watermark:config.vm_watermark ~batch:config.vm_batch
               ~mem:env.Env.mem stats
           in
           Vm.attach_ctx vm ctx;
           Some vm
         end
         else None);
      on_marker = (fun _ -> ());
      c_syscalls = Stats.counter stats "kernel.syscalls";
      c_switches = Stats.counter stats "kernel.context_switches";
      c_timer_ticks = Stats.counter stats "kernel.timer_ticks";
      c_disk_reads = Stats.counter stats "kernel.disk_reads";
      c_packets = Stats.counter stats "kernel.packets";
      c_page_ins = Stats.counter stats "kernel.page_ins";
    }
  in
  (* kernel image + boot stack + kernel heap, all supervisor-only *)
  load_image t ~cr3:t.kernel_cr3 layout.Kbuild.image ~user:false;
  alloc_mapped t ~cr3:t.kernel_cr3 ~vaddr:Abi.kstack_base
    ~npages:Abi.kstack_pages ~user:false;
  alloc_mapped t ~cr3:t.kernel_cr3 ~vaddr:Abi.kheap_base ~npages:config.kheap_pages
    ~user:false;
  t

let register_program t ~name image = Hashtbl.replace t.programs name image

let add_file t ~name ~contents = Ramfs.add_file t.fs ~name ~contents

let find_proc t pid = List.find_opt (fun p -> p.pid = pid) t.procs

(* ---- context switching ---- *)

let boot_kstack_top = Int64.add Abi.kstack_base (Int64.of_int (Abi.kstack_pages * Pm.page_size))

let apply_resume t (p : proc) =
  let ctx = t.ctx in
  ctx.Context.cr3 <- p.cr3;
  Context.flush_tlbs ctx;
  ctx.Context.kernel_rsp <- p.kstack_top;
  ctx.Context.running <- true;
  match p.resume with
  | R_fresh { entry; user_rsp; arg } ->
    Array.fill ctx.Context.regs 0 (Array.length ctx.Context.regs) 0L;
    Context.set_gpr ctx Regs.rdi arg;
    Context.set_gpr ctx Regs.rsp user_rsp;
    ctx.Context.mode <- Context.User;
    ctx.Context.flags <- Ptl_isa.Flags.set_if true Ptl_isa.Flags.empty;
    ctx.Context.rip <- entry
  | R_kstack krsp ->
    ctx.Context.mode <- Context.Kernel;
    Context.set_gpr ctx Regs.rsp krsp;
    ctx.Context.rip <- t.layout.Kbuild.l_timer_resume
  | R_syscall regs | R_sysret { regs; _ } ->
    Array.blit regs 0 ctx.Context.regs 0 (Array.length regs);
    ctx.Context.mode <- Context.Kernel;
    (match p.resume with
    | R_sysret { rax; _ } ->
      Context.set_gpr ctx Regs.rax rax;
      ctx.Context.rip <- t.layout.Kbuild.l_sysret
    | R_syscall _ ->
      (* re-execute the kcall (not the entry pushes: rsp already holds
         the saved rcx/r11 frame) *)
      ctx.Context.rip <- t.layout.Kbuild.l_syscall_kcall
    | _ -> assert false)

let switch_to_idle t =
  let ctx = t.ctx in
  t.current <- None;
  ctx.Context.cr3 <- t.kernel_cr3;
  Context.flush_tlbs ctx;
  ctx.Context.mode <- Context.Kernel;
  ctx.Context.kernel_rsp <- boot_kstack_top;
  Context.set_gpr ctx Regs.rsp boot_kstack_top;
  ctx.Context.flags <- Ptl_isa.Flags.set_if true t.ctx.Context.flags;
  ctx.Context.rip <- t.layout.Kbuild.l_idle;
  ctx.Context.running <- true

let switch_to t (p : proc) =
  Stats.incr t.c_switches;
  p.state <- Running;
  p.ticks_run <- 0;
  t.current <- Some p;
  apply_resume t p

(* Pick the next runnable process, or idle. *)
let schedule t =
  match Queue.take_opt t.runqueue with
  | Some pid ->
    (match find_proc t pid with
    | Some p when p.state = Ready -> switch_to t p
    | _ -> switch_to_idle t)
  | None -> switch_to_idle t

let make_ready t (p : proc) =
  if p.state <> Ready && p.state <> Running then begin
    p.state <- Ready;
    Queue.push p.pid t.runqueue
  end

(* Wake a blocked process and, if the CPU is idle, nudge it with the I/O
   interrupt so the hlt loop breaks. *)
let wake t (p : proc) =
  if p.state = Blocked then begin
    make_ready t p;
    Context.raise_irq t.ctx Abi.vec_io
  end

(* ---- process lifecycle ---- *)

let spawn t ~name =
  match Hashtbl.find_opt t.programs name with
  | None -> None
  | Some img ->
    let pid = t.next_pid in
    t.next_pid <- pid + 1;
    let cr3 = Pm.alloc_page t.env.Env.mem in
    (* per-process kernel stack lives in the shared kernel region *)
    let kstack_va =
      Int64.add Abi.kstack_base (Int64.mul (Int64.of_int pid) Abi.kstack_stride)
    in
    alloc_mapped t ~cr3:t.kernel_cr3 ~vaddr:kstack_va ~npages:Abi.kstack_pages
      ~user:false;
    map_kernel_into t ~cr3;
    (* refresh older address spaces with the new kernel stack pages *)
    List.iter (fun p -> map_kernel_into t ~cr3:p.cr3) t.procs;
    (match t.vm with
    | Some vm ->
      (* demand paging: register VMAs only; every user page — code
         included — is populated by the first #PF through pf_entry *)
      let base = img.Ptl_isa.Asm.img_base in
      let first = Int64.to_int (Int64.logand base (Int64.of_int Pm.page_mask)) in
      let len = String.length img.Ptl_isa.Asm.code in
      let npages = (first + len + Pm.page_size - 1) / Pm.page_size in
      Vm.add_vma vm ~cr3 ~start:(Int64.sub base (Int64.of_int first))
        ~pages:npages ~writable:true
        ~backing:(Vm.Image { bytes = img.Ptl_isa.Asm.code; base });
      Vm.add_vma vm ~cr3
        ~start:
          (Int64.sub Abi.user_stack_top
             (Int64.of_int (Abi.user_stack_pages * Pm.page_size)))
        ~pages:Abi.user_stack_pages ~writable:true ~backing:Vm.Zero;
      Vm.add_vma vm ~cr3 ~start:Abi.user_heap_base ~pages:Abi.user_heap_pages
        ~writable:true ~backing:Vm.Zero;
      (* Pre-populate the top stack page: the kernel-mode launch stub
         pushes the first-entry iret frame onto the user stack, where a
         #PF could not be delivered (no user frame to switch from). Real
         kernels also populate the initial stack eagerly (args/env). *)
      ignore
        (Vm.handle_fault vm t.ctx ~cr3 ~vaddr:(Int64.sub Abi.user_stack_top 8L)
           ~write:true)
    | None ->
      load_image t ~cr3 img ~user:true;
      alloc_mapped t ~cr3
        ~vaddr:
          (Int64.sub Abi.user_stack_top
             (Int64.of_int (Abi.user_stack_pages * Pm.page_size)))
        ~npages:Abi.user_stack_pages ~user:true;
      alloc_mapped t ~cr3 ~vaddr:Abi.user_heap_base ~npages:Abi.user_heap_pages
        ~user:true);
    let p =
      {
        pid;
        pname = name;
        cr3;
        kstack_top = Int64.add kstack_va (Int64.of_int (Abi.kstack_pages * Pm.page_size));
        state = Blocked;
        resume =
          R_fresh
            { entry = img.Ptl_isa.Asm.img_base; user_rsp = Abi.user_stack_top; arg = 0L };
        fds = Array.make 16 None;
        exit_code = 0;
        ticks_run = 0;
        pending_commit = None;
      }
    in
    t.procs <- t.procs @ [ p ];
    make_ready t p;
    Some p

(* Children inherit the parent's descriptors (reference counts updated
   for pipe endpoints). *)
let inherit_fds (parent : proc) (child : proc) =
  Array.iteri
    (fun i obj ->
      child.fds.(i) <- obj;
      match obj with
      | Some (F_pipe_r pi) -> pi.p_readers <- pi.p_readers + 1
      | Some (F_pipe_w pi) -> pi.p_writers <- pi.p_writers + 1
      | Some (F_sock sock) -> sock.sock_refs <- sock.sock_refs + 1
      | Some (F_file _) | None -> ())
    parent.fds

(* ---- blocking and waking ---- *)

let snapshot_regs t = Array.copy t.ctx.Context.regs

(* Block the current process inside a syscall; the syscall re-dispatches
   when the process is next scheduled. *)
let block_current t =
  match t.current with
  | None -> raise (Kernel_panic "block with no current process")
  | Some p ->
    p.state <- Blocked;
    p.resume <- R_syscall (snapshot_regs t);
    schedule t

(* Wake every process blocked in a retryable syscall (robust wake-all
   strategy; unsatisfied processes simply re-block). Disk waiters are
   woken by their completion events only. *)
let wake_all t =
  List.iter
    (fun p ->
      match (p.state, p.resume) with
      | Blocked, R_syscall _ -> wake t p
      | _ -> ())
    t.procs

(* ---- fd helpers ---- *)

let alloc_fd (p : proc) obj =
  let rec go i =
    if i >= Array.length p.fds then None
    else if p.fds.(i) = None then begin
      p.fds.(i) <- Some obj;
      Some i
    end
    else go (i + 1)
  in
  go 0

let fd_obj (p : proc) fd =
  if fd < 0 || fd >= Array.length p.fds then None else p.fds.(fd)

(* Pre-resolve demand faults for a user range a host-side service is
   about to dereference — the kernel's copyin/copyout pin step. Guest
   copy loops need none of this (their accesses fault through pf_entry);
   only the few host-side reads/writes of user pointers do. *)
let touch_user t (p : proc) vaddr ~len ~write =
  match t.vm with
  | None -> ()
  | Some vm ->
    let first = Int64.logand vaddr (Int64.lognot (Int64.of_int Pm.page_mask)) in
    let last =
      Int64.logand
        (Int64.add vaddr (Int64.of_int (max 0 (len - 1))))
        (Int64.lognot (Int64.of_int Pm.page_mask))
    in
    let va = ref first in
    while !va <= last do
      ignore (Vm.handle_fault vm t.ctx ~cr3:p.cr3 ~vaddr:!va ~write);
      va := Int64.add !va (Int64.of_int Pm.page_size)
    done

(* read a NUL-terminated string from user memory *)
let user_string t vaddr =
  (match t.current with
  | Some p -> touch_user t p vaddr ~len:256 ~write:false
  | None -> ());
  let buf = Buffer.create 32 in
  let rec go va =
    let b =
      Int64.to_int
        (Vmem.read t.env.Env.vmem t.ctx ~vaddr:va ~size:W64.B1 ~at_rip:0L)
    in
    if b <> 0 && Buffer.length buf < 255 then begin
      Buffer.add_char buf (Char.chr b);
      go (Int64.add va 1L)
    end
  in
  go vaddr;
  Buffer.contents buf

(* ---- syscall return paths ---- *)

let sysret t rax =
  Context.set_gpr t.ctx Regs.rax rax;
  t.ctx.Context.rip <- t.layout.Kbuild.l_sysret

(* Launch a guest copy loop that returns to user mode when done.
   [commit] runs at the commit kcall and produces the final rax. *)
let guest_copy t ~src ~dst ~len ~commit =
  match t.current with
  | None -> raise (Kernel_panic "guest_copy with no process")
  | Some p ->
    p.pending_commit <- Some commit;
    Context.set_gpr t.ctx Regs.rsi src;
    Context.set_gpr t.ctx Regs.rdi dst;
    Context.set_gpr t.ctx Regs.rcx (Int64.of_int len);
    t.ctx.Context.rip <- t.layout.Kbuild.l_copy_commit_ret

(* Same, through the checksum (transmit) path. *)
let guest_csum_copy t ~src ~dst ~len ~commit =
  match t.current with
  | None -> raise (Kernel_panic "guest_csum_copy with no process")
  | Some p ->
    p.pending_commit <- Some commit;
    Context.set_gpr t.ctx Regs.rsi src;
    Context.set_gpr t.ctx Regs.rdi dst;
    Context.set_gpr t.ctx Regs.rcx (Int64.of_int len);
    Context.set_gpr t.ctx Regs.r11 (Int64.of_int len);
    t.ctx.Context.rip <- t.layout.Kbuild.l_csum_copy_commit_ret

(* Plain copy with a pre-set return value (page-cache reads, dirents). *)
let guest_copy_simple t ~src ~dst ~len ~rax =
  Context.set_gpr t.ctx Regs.rsi src;
  Context.set_gpr t.ctx Regs.rdi dst;
  Context.set_gpr t.ctx Regs.rcx (Int64.of_int len);
  Context.set_gpr t.ctx Regs.rax rax;
  t.ctx.Context.rip <- t.layout.Kbuild.l_copy_ret

(* ---- files ---- *)

(* Ensure block [blk] of [file] is in the page cache. Returns [`Ready va]
   or blocks the caller on the disk and returns [`Blocked]. The cache slot
   is published only when the DMA completes, so early wake-ups retry and
   re-block instead of reading unfilled pages; the pending list prevents a
   duplicate disk request. *)
let ensure_block t (p : proc) (file : Ramfs.file) blk ~for_write =
  Ramfs.ensure_blocks file blk;
  if Ramfs.block_resident file blk then
    `Ready (Int64.of_int file.Ramfs.cache_paddr.(blk))
  else if List.mem blk file.Ramfs.pending_blocks then begin
    (* someone already requested this block; wait for it *)
    block_current t;
    `Blocked
  end
  else if for_write && blk * Ramfs.block_size >= file.Ramfs.size then begin
    (* fresh block past EOF: a zeroed page, no disk read needed *)
    let va = kheap_alloc t Pm.page_size in
    file.Ramfs.cache_paddr.(blk) <- Int64.to_int va;
    `Ready va
  end
  else begin
    Stats.incr t.c_disk_reads;
    let va = kheap_alloc t Pm.page_size in
    file.Ramfs.pending_blocks <- blk :: file.Ramfs.pending_blocks;
    post t
      ~at:(t.env.Env.cycle + t.config.disk_latency)
      (E_disk_done { pid = p.pid; file; blk; va });
    block_current t;
    `Blocked
  end

(* ---- pipes ---- *)

let pipe_capacity = 16 * 1024

let make_pipe t =
  {
    p_ring_va = kheap_alloc t pipe_capacity;
    p_cap = pipe_capacity;
    p_r = 0;
    p_w = 0;
    p_readers = 1;
    p_writers = 1;
  }

let svc_read_pipe t (pi : pipe) ~buf ~len =
  let avail = pi.p_w - pi.p_r in
  if avail = 0 then begin
    if pi.p_writers = 0 then sysret t 0L (* EOF *) else block_current t
  end
  else begin
    let roff = pi.p_r mod pi.p_cap in
    let n = min (min len avail) (pi.p_cap - roff) in
    guest_copy t
      ~src:(Int64.add pi.p_ring_va (Int64.of_int roff))
      ~dst:buf ~len:n
      ~commit:(fun () ->
        pi.p_r <- pi.p_r + n;
        wake_all t;
        Int64.of_int n)
  end

let svc_write_pipe t (pi : pipe) ~buf ~len =
  if pi.p_readers = 0 then sysret t (Int64.of_int Abi.e_inval)
  else begin
    let space = pi.p_cap - (pi.p_w - pi.p_r) in
    if space = 0 then block_current t
    else begin
      let woff = pi.p_w mod pi.p_cap in
      let n = min (min len space) (pi.p_cap - woff) in
      guest_copy t ~src:buf
        ~dst:(Int64.add pi.p_ring_va (Int64.of_int woff))
        ~len:n
        ~commit:(fun () ->
          pi.p_w <- pi.p_w + n;
          wake_all t;
          Int64.of_int n)
    end
  end

(* ---- sockets ---- *)

let channel_capacity = 64 * 1024

let make_channel t =
  {
    ch_ring_va = kheap_alloc t channel_capacity;
    ch_cap = channel_capacity;
    ch_r = 0;
    ch_w = 0;
    ch_delivered = 0;
    ch_in_flight = 0;
    ch_closed = false;
  }

let make_socket t =
  let s =
    {
      sock_id = t.next_sock;
      sock_refs = 0;
      sock_port = -1;
      sock_listening = false;
      sock_backlog = [];
      sock_tx = None;
      sock_rx = None;
    }
  in
  t.next_sock <- t.next_sock + 1;
  t.sockets <- s :: t.sockets;
  s

let find_socket t id = List.find_opt (fun s -> s.sock_id = id) t.sockets

let svc_read_sock t (s : socket) ~buf ~len =
  match s.sock_rx with
  | None -> sysret t (Int64.of_int Abi.e_inval)
  | Some ch ->
    let avail = ch.ch_delivered - ch.ch_r in
    if avail = 0 then begin
      if ch.ch_closed && ch.ch_in_flight = 0 && ch.ch_w = ch.ch_delivered then
        sysret t 0L
      else block_current t
    end
    else begin
      let roff = ch.ch_r mod ch.ch_cap in
      let n = min (min len avail) (ch.ch_cap - roff) in
      guest_copy t
        ~src:(Int64.add ch.ch_ring_va (Int64.of_int roff))
        ~dst:buf ~len:n
        ~commit:(fun () ->
          ch.ch_r <- ch.ch_r + n;
          wake_all t;
          Int64.of_int n)
    end

(* Segment [n] freshly written bytes into MTU packets with per-packet
   delivery latency — the time-dilation-correct network model (§4.2). *)
let schedule_delivery t (ch : channel) n =
  let mtu = t.config.net_mtu in
  let rec go off k =
    if off < n then begin
      let chunk = min mtu (n - off) in
      Stats.incr t.c_packets;
      ch.ch_in_flight <- ch.ch_in_flight + chunk;
      post t
        ~at:(t.env.Env.cycle + t.config.net_latency + (k * (t.config.net_latency / 4)))
        (E_net_deliver { ch; bytes = chunk });
      go (off + chunk) (k + 1)
    end
  in
  go 0 0

let svc_write_sock t (s : socket) ~buf ~len =
  match s.sock_tx with
  | None -> sysret t (Int64.of_int Abi.e_inval)
  | Some ch ->
    if ch.ch_closed then sysret t (Int64.of_int Abi.e_inval)
    else begin
      let space = ch.ch_cap - (ch.ch_w - ch.ch_r) in
      if space = 0 then block_current t
      else begin
        let woff = ch.ch_w mod ch.ch_cap in
        let n = min (min len space) (ch.ch_cap - woff) in
        guest_csum_copy t ~src:buf
          ~dst:(Int64.add ch.ch_ring_va (Int64.of_int woff))
          ~len:n
          ~commit:(fun () ->
            ch.ch_w <- ch.ch_w + n;
            schedule_delivery t ch n;
            Int64.of_int n)
      end
    end

(* ---- syscall dispatch ---- *)

(* kernel scratch buffer for small metadata copies (dirents, stat) *)
let scratch_va t =
  if t.scratch = 0L then t.scratch <- kheap_alloc t 256;
  t.scratch

let write_scratch t bytes =
  let va = scratch_va t in
  let paddr = kva_paddr t va in
  String.iteri (fun i c -> Pm.write8 t.env.Env.mem (paddr + i) (Char.code c)) bytes;
  va

let close_fd t (p : proc) fd =
  match fd_obj p fd with
  | None -> Int64.of_int Abi.e_badf
  | Some obj ->
    p.fds.(fd) <- None;
    (match obj with
    | F_pipe_r pi ->
      pi.p_readers <- pi.p_readers - 1;
      wake_all t
    | F_pipe_w pi ->
      pi.p_writers <- pi.p_writers - 1;
      wake_all t
    | F_sock s ->
      s.sock_refs <- s.sock_refs - 1;
      if s.sock_refs <= 0 then begin
        Option.iter (fun ch -> ch.ch_closed <- true) s.sock_tx;
        Option.iter (fun ch -> ch.ch_closed <- true) s.sock_rx
      end;
      wake_all t
    | F_file _ -> ());
    0L

let dirent_bytes ~size ~name =
  let b = Buffer.create 32 in
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr (W64.byte (Int64.of_int size) i))
  done;
  Buffer.add_string b name;
  Buffer.add_char b '\x00';
  Buffer.contents b

let svc_exit t (p : proc) code =
  p.state <- Zombie;
  p.exit_code <- code;
  (* drop all fds so pipe/socket peers see EOF *)
  Array.iteri (fun fd obj -> if obj <> None then ignore (close_fd t p fd)) p.fds;
  wake_all t;
  if List.for_all (fun q -> q.state = Zombie) t.procs then t.shutdown <- true;
  schedule t

let dispatch_syscall t =
  match t.current with
  | None -> raise (Kernel_panic "syscall with no current process")
  | Some p ->
    Stats.incr t.c_syscalls;
    let ctx = t.ctx in
    let nr = Int64.to_int (Context.gpr ctx Regs.rax) in
    let a1 = Context.gpr ctx Regs.rdi in
    let a2 = Context.gpr ctx Regs.rsi in
    let a3 = Context.gpr ctx Regs.rdx in
    let err e = sysret t (Int64.of_int e) in
    if nr = Abi.sys_exit then svc_exit t p (Int64.to_int a1)
    else if nr = Abi.sys_read then begin
      let fd = Int64.to_int a1 and buf = a2 and len = Int64.to_int a3 in
      if len <= 0 then sysret t 0L
      else
        match fd_obj p fd with
        | None -> err Abi.e_badf
        | Some (F_file h) ->
          let file = h.file and pos = h.pos in
          if pos >= file.Ramfs.size then sysret t 0L
          else begin
            (* advance the position eagerly by the amount we will return *)
            let blk = pos / Ramfs.block_size in
            let off = pos mod Ramfs.block_size in
            let n = min (min len (file.Ramfs.size - pos)) (Ramfs.block_size - off) in
            match ensure_block t p file blk ~for_write:false with
            | `Blocked -> ()
            | `Ready va ->
              h.pos <- pos + n;
              guest_copy_simple t
                ~src:(Int64.add va (Int64.of_int off))
                ~dst:buf ~len:n ~rax:(Int64.of_int n)
          end
        | Some (F_pipe_r pi) -> svc_read_pipe t pi ~buf ~len
        | Some (F_pipe_w _) -> err Abi.e_badf
        | Some (F_sock s) -> svc_read_sock t s ~buf ~len
    end
    else if nr = Abi.sys_write then begin
      let fd = Int64.to_int a1 and buf = a2 and len = Int64.to_int a3 in
      if len <= 0 then sysret t 0L
      else
        match fd_obj p fd with
        | None -> err Abi.e_badf
        | Some (F_file h) when h.writable ->
          let file = h.file and pos = h.pos in
          let blk = pos / Ramfs.block_size in
          let off = pos mod Ramfs.block_size in
          let n = min len (Ramfs.block_size - off) in
          (match ensure_block t p file blk ~for_write:true with
          | `Blocked -> ()
          | `Ready va ->
            h.pos <- pos + n;
            let mem = t.env.Env.mem in
            let paddr = kva_paddr t va in
            guest_copy t ~src:buf ~dst:(Int64.add va (Int64.of_int off)) ~len:n
              ~commit:(fun () ->
                Ramfs.writeback_block mem file blk ~paddr ~upto:(off + n);
                wake_all t;
                Int64.of_int n))
        | Some (F_file _) -> err Abi.e_badf
        | Some (F_pipe_w pi) -> svc_write_pipe t pi ~buf ~len
        | Some (F_pipe_r _) -> err Abi.e_badf
        | Some (F_sock s) -> svc_write_sock t s ~buf ~len
    end
    else if nr = Abi.sys_open then begin
      let name = user_string t a1 in
      let flags = Int64.to_int a2 in
      if flags land Abi.o_creat <> 0 then Ramfs.creat t.fs name;
      match Ramfs.find t.fs name with
      | None -> err Abi.e_noent
      | Some file ->
        (match
           alloc_fd p (F_file { file; pos = 0; writable = flags land Abi.o_wronly <> 0 })
         with
        | Some fd -> sysret t (Int64.of_int fd)
        | None -> err Abi.e_inval)
    end
    else if nr = Abi.sys_creat then begin
      let name = user_string t a1 in
      Ramfs.creat t.fs name;
      match Ramfs.find t.fs name with
      | None -> err Abi.e_noent
      | Some file ->
        (match alloc_fd p (F_file { file; pos = 0; writable = true }) with
        | Some fd -> sysret t (Int64.of_int fd)
        | None -> err Abi.e_inval)
    end
    else if nr = Abi.sys_close then sysret t (close_fd t p (Int64.to_int a1))
    else if nr = Abi.sys_pipe then begin
      let pi = make_pipe t in
      match alloc_fd p (F_pipe_r pi) with
      | None -> err Abi.e_inval
      | Some rfd ->
        (match alloc_fd p (F_pipe_w pi) with
        | None ->
          p.fds.(rfd) <- None;
          err Abi.e_inval
        | Some wfd ->
          (* write the two fds to the user pointer in a1 *)
          touch_user t p a1 ~len:8 ~write:true;
          Vmem.write t.env.Env.vmem ctx ~vaddr:a1 ~size:W64.B4
            ~value:(Int64.of_int rfd) ~at_rip:0L;
          Vmem.write t.env.Env.vmem ctx ~vaddr:(Int64.add a1 4L) ~size:W64.B4
            ~value:(Int64.of_int wfd) ~at_rip:0L;
          sysret t 0L)
    end
    else if nr = Abi.sys_spawn then begin
      let name = user_string t a1 in
      match spawn t ~name with
      | Some child ->
        (* the spawn argument lands in the child's rdi on first entry *)
        (match child.resume with
        | R_fresh r -> r.arg <- a2
        | _ -> ());
        inherit_fds p child;
        sysret t (Int64.of_int child.pid)
      | None -> err Abi.e_noent
    end
    else if nr = Abi.sys_waitpid then begin
      let pid = Int64.to_int a1 in
      match find_proc t pid with
      | None -> err Abi.e_child
      | Some q when q.state = Zombie ->
        t.procs <- List.filter (fun r -> r.pid <> pid) t.procs;
        sysret t (Int64.of_int q.exit_code)
      | Some _ -> block_current t
    end
    else if nr = Abi.sys_sleep then begin
      let cycles = Int64.to_int a1 in
      p.state <- Blocked;
      p.resume <- R_sysret { regs = snapshot_regs t; rax = 0L };
      post t ~at:(t.env.Env.cycle + max 1 cycles) (E_wake p.pid);
      schedule t
    end
    else if nr = Abi.sys_socket then begin
      let s = make_socket t in
      match alloc_fd p (F_sock s) with
      | Some fd ->
        s.sock_refs <- s.sock_refs + 1;
        sysret t (Int64.of_int fd)
      | None -> err Abi.e_inval
    end
    else if nr = Abi.sys_listen then begin
      match fd_obj p (Int64.to_int a1) with
      | Some (F_sock s) ->
        s.sock_port <- Int64.to_int a2;
        s.sock_listening <- true;
        wake_all t;
        sysret t 0L
      | _ -> err Abi.e_badf
    end
    else if nr = Abi.sys_accept then begin
      match fd_obj p (Int64.to_int a1) with
      | Some (F_sock s) when s.sock_listening -> (
        match s.sock_backlog with
        | [] -> block_current t
        | peer_id :: rest -> (
          s.sock_backlog <- rest;
          match find_socket t peer_id with
          | None -> err Abi.e_inval
          | Some conn -> (
            match alloc_fd p (F_sock conn) with
            | Some fd ->
              conn.sock_refs <- conn.sock_refs + 1;
              sysret t (Int64.of_int fd)
            | None -> err Abi.e_inval)))
      | _ -> err Abi.e_badf
    end
    else if nr = Abi.sys_connect then begin
      match fd_obj p (Int64.to_int a1) with
      | Some (F_sock s) -> (
        let port = Int64.to_int a2 in
        let listener =
          List.find_opt (fun l -> l.sock_listening && l.sock_port = port) t.sockets
        in
        match listener with
        | None -> err Abi.e_again
        | Some l ->
          (* build the two directional channels and the acceptor's endpoint *)
          let c2s = make_channel t in
          let s2c = make_channel t in
          s.sock_tx <- Some c2s;
          s.sock_rx <- Some s2c;
          let server_end = make_socket t in
          server_end.sock_tx <- Some s2c;
          server_end.sock_rx <- Some c2s;
          l.sock_backlog <- l.sock_backlog @ [ server_end.sock_id ];
          wake_all t;
          sysret t 0L)
      | _ -> err Abi.e_badf
    end
    else if nr = Abi.sys_getpid then sysret t (Int64.of_int p.pid)
    else if nr = Abi.sys_readdir then begin
      let prefix = user_string t a1 in
      let index = Int64.to_int a2 in
      let entries = Ramfs.list_dir t.fs ~prefix in
      match List.nth_opt entries index with
      | None -> sysret t (-1L)
      | Some name ->
        let size = Option.value ~default:0 (Ramfs.size t.fs name) in
        let bytes = dirent_bytes ~size ~name in
        let va = write_scratch t bytes in
        guest_copy_simple t ~src:va ~dst:a3 ~len:(String.length bytes)
          ~rax:(Int64.of_int (String.length bytes))
    end
    else if nr = Abi.sys_stat then begin
      let name = user_string t a1 in
      match Ramfs.size t.fs name with
      | None -> err Abi.e_noent
      | Some size ->
        let bytes = String.init 8 (fun i -> Char.chr (W64.byte (Int64.of_int size) i)) in
        let va = write_scratch t bytes in
        guest_copy_simple t ~src:va ~dst:a2 ~len:8 ~rax:0L
    end
    else if nr = Abi.sys_yield then begin
      p.resume <- R_sysret { regs = snapshot_regs t; rax = 0L };
      make_ready t p;
      p.state <- Ready;
      schedule t
    end
    else if nr = Abi.sys_poll2 then begin
      let readable fd =
        match fd_obj p fd with
        | Some (F_pipe_r pi) -> pi.p_w - pi.p_r > 0 || pi.p_writers = 0
        | Some (F_sock s) -> (
          match s.sock_rx with
          | Some ch ->
            ch.ch_delivered - ch.ch_r > 0
            || (ch.ch_closed && ch.ch_in_flight = 0 && ch.ch_w = ch.ch_delivered)
          | None -> false)
        | Some (F_file _) -> true
        | Some (F_pipe_w _) | None -> false
      in
      let fd0 = Int64.to_int a1 and fd1 = Int64.to_int a2 in
      if readable fd0 then sysret t 0L
      else if readable fd1 then sysret t 1L
      else block_current t
    end
    else if nr = Abi.sys_seek then begin
      match fd_obj p (Int64.to_int a1) with
      | Some (F_file h) ->
        h.pos <- Int64.to_int a2;
        sysret t 0L
      | _ -> err Abi.e_badf
    end
    else if nr = Abi.sys_ptl_marker then begin
      let n = Int64.to_int a1 in
      t.on_marker n;
      if n = 999 then t.shutdown <- true;
      sysret t 0L
    end
    else err Abi.e_inval

(* ---- interrupt-path handlers ---- *)

(* Timer tick (kcall from the timer handler, after the run-queue scan).
   ctx.rsp is the current kernel stack below 15 saved registers; parking
   the process is just remembering that rsp. *)
let handle_timer t =
  Stats.incr t.c_timer_ticks;
  t.jiffies <- t.jiffies + 1;
  match t.current with
  | None ->
    (* the timer interrupted the idle loop *)
    if not (Queue.is_empty t.runqueue) then schedule t
  | Some p ->
    p.ticks_run <- p.ticks_run + 1;
    if p.ticks_run >= t.config.timeslice_ticks && not (Queue.is_empty t.runqueue)
    then begin
      p.resume <- R_kstack (Context.gpr t.ctx Regs.rsp);
      p.state <- Ready;
      Queue.push p.pid t.runqueue;
      schedule t
    end
(* otherwise return through the restore path into the same process *)

(* I/O completion interrupt: wake-ups already happened in [poll]; if the
   CPU was idle, pick up the newly runnable work. *)
let handle_io t =
  match t.current with
  | None -> if not (Queue.is_empty t.runqueue) then schedule t
  | Some _ -> ()

(* A guest fault reached the kernel (vector 0/6/13/14). User-mode bugs
   kill the process; kernel-mode faults are simulator bugs. *)
let handle_fault t =
  match t.current with
  | None -> raise (Kernel_panic "fault in idle/kernel context")
  | Some p ->
    Logs.debug (fun m ->
        let rd off =
          try
            Vmem.read t.env.Env.vmem t.ctx
              ~vaddr:(Int64.add (Context.gpr t.ctx Regs.rsp) (Int64.of_int off))
              ~size:W64.B8 ~at_rip:0L
          with _ -> -1L
        in
        m "fault frame: err=%Ld rip=%Ld(%#Lx) mode=%Ld flags=%Lx rsp=%Lx | regs rax=%Lx rbx=%Lx rcx=%Lx rdx=%Lx rsi=%Lx rdi=%Lx rbp=%Lx r12=%Lx r13=%Lx r14=%Lx r15=%Lx"
          (rd 0) (rd 8) (rd 8) (rd 16) (rd 24) (rd 32)
          (Context.gpr t.ctx Regs.rax) (Context.gpr t.ctx Regs.rbx)
          (Context.gpr t.ctx Regs.rcx) (Context.gpr t.ctx Regs.rdx)
          (Context.gpr t.ctx Regs.rsi) (Context.gpr t.ctx Regs.rdi)
          (Context.gpr t.ctx Regs.rbp) (Context.gpr t.ctx Regs.r12)
          (Context.gpr t.ctx Regs.r13) (Context.gpr t.ctx Regs.r14)
          (Context.gpr t.ctx Regs.r15));
    Logs.warn (fun m ->
        m "minios: killing pid %d (%s) after fault (frame rip=%#Lx cr2=%#Lx)" p.pid
          p.pname
          (try
             Vmem.read t.env.Env.vmem t.ctx
               ~vaddr:(Int64.add (Context.gpr t.ctx Regs.rsp) 8L)
               ~size:W64.B8 ~at_rip:0L
           with _ -> -1L)
          t.ctx.Context.cr2);
    svc_exit t p (-1)

(* #PF delivered through the guest pf_entry: below the 15 saved GPRs the
   frame is [errcode][rip][mode][flags][rsp]. Demand paging resolves
   first-touch faults (the iret then restarts the faulting instruction);
   anything unresolvable kills the process like the generic fault path. *)
let pf_frame_err_off = 15 * 8

let handle_pf t =
  match t.current with
  | None -> raise (Kernel_panic "page fault in idle/kernel context")
  | Some p ->
    let vaddr = t.ctx.Context.cr2 in
    let err =
      try
        Vmem.read t.env.Env.vmem t.ctx
          ~vaddr:
            (Int64.add (Context.gpr t.ctx Regs.rsp)
               (Int64.of_int pf_frame_err_off))
          ~size:W64.B8 ~at_rip:0L
      with _ -> 0L
    in
    let write = Int64.logand err 2L <> 0L in
    let resolved =
      match t.vm with
      | Some vm -> Vm.handle_fault vm t.ctx ~cr3:p.cr3 ~vaddr ~write = Vm.Resolved
      | None -> false
    in
    if not resolved then begin
      Logs.warn (fun m ->
          m "minios: killing pid %d (%s) after unresolved #PF (cr2=%#Lx err=%#Lx)"
            p.pid p.pname vaddr err);
      svc_exit t p (-1)
    end

(* TLB-shootdown IPI acknowledge: the architectural flush of this VCPU's
   translation structures. (The VM layer also flushed at initiation so no
   stale translation is ever consumable; this guest round-trip carries the
   invalidation cost.) *)
let handle_shootdown t = Context.flush_tlbs t.ctx

let handle_commit t =
  match t.current with
  | None -> raise (Kernel_panic "commit kcall with no process")
  | Some p -> (
    match p.pending_commit with
    | None -> raise (Kernel_panic "commit kcall without pending commit")
    | Some f ->
      p.pending_commit <- None;
      Context.set_gpr t.ctx Regs.rax (f ()))

let handle_boot t =
  (* arm the timer and start init *)
  post t ~at:(t.env.Env.cycle + t.config.timer_period) E_timer;
  match spawn t ~name:"init" with
  | Some _ -> schedule t
  | None -> raise (Kernel_panic "no init program registered")

(* ---- the kcall demultiplexer (installed as Env.kcall) ---- *)

let kcall_handler t (ctx : Context.t) =
  let site = ctx.Context.rip in
  let l = t.layout in
  try
    if site = l.Kbuild.s_syscall then dispatch_syscall t
    else if site = l.Kbuild.s_commit then handle_commit t
    else if site = l.Kbuild.s_timer then handle_timer t
    else if site = l.Kbuild.s_io then handle_io t
    else if site = l.Kbuild.s_boot then handle_boot t
    else if site = l.Kbuild.s_fault then handle_fault t
    else if site = l.Kbuild.s_pf then handle_pf t
    else if site = l.Kbuild.s_shootdown then handle_shootdown t
    else raise (Kernel_panic (Printf.sprintf "unknown kcall site %#Lx" site))
  with Ptl_arch.Fault.Guest_fault f ->
    (* a service dereferenced a bad guest pointer (EFAULT analogue):
       kill the offending process rather than crashing the machine *)
    (match t.current with
    | Some p ->
      Logs.warn (fun m ->
          m "minios: killing pid %d (%s): bad pointer in service (%s)" p.pid
            p.pname (Ptl_arch.Fault.to_string f));
      svc_exit t p (-2)
    | None -> raise (Kernel_panic ("fault in kernel service: " ^ Ptl_arch.Fault.to_string f)))

(* ---- event polling (the driver calls this when cycle >= next event) ---- *)

let poll t =
  while t.next_event_cycle <= t.env.Env.cycle do
    match t.events with
    | [] -> t.next_event_cycle <- max_int
    | (_, ev) :: rest ->
      t.events <- rest;
      refresh_next t;
      (match ev with
      | E_timer ->
        Context.raise_irq t.ctx Abi.vec_timer;
        post t ~at:(t.env.Env.cycle + t.config.timer_period) E_timer
      | E_disk_done { pid; file; blk; va } ->
        Stats.incr t.c_page_ins;
        Ramfs.dma_block_in t.env.Env.mem file blk ~paddr:(kva_paddr t va);
        Ramfs.ensure_blocks file blk;
        file.Ramfs.cache_paddr.(blk) <- Int64.to_int va;
        file.Ramfs.pending_blocks <-
          List.filter (fun b -> b <> blk) file.Ramfs.pending_blocks;
        (match find_proc t pid with Some p -> wake t p | None -> ());
        (* others may be waiting on the same block *)
        wake_all t
      | E_net_deliver { ch; bytes } ->
        ch.ch_delivered <- ch.ch_delivered + bytes;
        ch.ch_in_flight <- ch.ch_in_flight - bytes;
        wake_all t
      | E_wake pid -> (
        match find_proc t pid with
        | Some p when p.state = Blocked ->
          make_ready t p;
          Context.raise_irq t.ctx Abi.vec_io
        | _ -> ()))
  done

(* ---- boot ---- *)

(** Install the kernel into the environment and point the VCPU at the
    guest boot code. The caller then drives the core model; the boot
    kcall spawns "init" and switches to it. *)
let boot t =
  t.env.Env.kcall <- kcall_handler t;
  let ctx = t.ctx in
  ctx.Context.cr3 <- t.kernel_cr3;
  Context.flush_tlbs ctx;
  ctx.Context.mode <- Context.Kernel;
  ctx.Context.kernel_rsp <- boot_kstack_top;
  Context.set_gpr ctx Regs.rsp boot_kstack_top;
  ctx.Context.rip <- t.layout.Kbuild.l_boot;
  ctx.Context.running <- true

let is_shutdown t = t.shutdown

(** Simple standalone driver: run the kernel + workload on a core-model
    instance until shutdown or [max_cycles]. Fast-forwards idle time to
    the next event (counting the skipped cycles as idle). *)
let run t (core : unit -> unit) (idle : unit -> bool) ~max_cycles =
  let idle_counter = Stats.counter t.env.Env.stats "kernel.idle_skipped_cycles" in
  let start = t.env.Env.cycle in
  while (not t.shutdown) && t.env.Env.cycle - start < max_cycles do
    if t.next_event_cycle <= t.env.Env.cycle then poll t;
    if idle () then begin
      (* nothing runnable: skip ahead to the next device event *)
      if t.next_event_cycle = max_int then t.shutdown <- true
      else begin
        let skip = max 0 (t.next_event_cycle - t.env.Env.cycle) in
        Stats.add idle_counter skip;
        t.env.Env.cycle <- t.env.Env.cycle + skip;
        poll t
      end
    end
    else core ()
  done
