(** The matched-pair design-space sweep engine: what production users of
    a simulator actually do is compare machine configurations.

    A sweep spec names axes of the design space and the values to try:

    {v --sweep "cache.l2.size=256k,1m,4m x bpred=gshare,hybrid" v}

    The cross product of the axes gives the {e legs}; every leg replays
    the *same* captured interval store ({!Ptl_store.Store}) through
    {!Ptl_fleet.Fleet.replay}, so all legs share one checkpoint set
    (common random numbers), results land in the per-config-digest
    result cache, and repeated sweeps are free. Because the intervals
    are matched, the per-interval CPI {e differences} between a leg and
    the store's own (base) configuration carry none of the
    interval-to-interval workload variance: {!Ptl_stats.Paired} turns
    them into paired 95% confidence intervals that resolve deltas far
    below what independent runs can see at the same interval budget.

    The report ranks legs by CPI, classifies each as win/loss/tie
    against the base config, and marks the Pareto frontier over
    (CPI, L1D MPKI, area proxy). *)

module Config = Ptl_ooo.Config
module Cache = Ptl_mem.Cache
module Hierarchy = Ptl_mem.Hierarchy
module Tlb = Ptl_mem.Tlb
module Predictor = Ptl_bpred.Predictor
module Sample = Ptl_sample.Sample
module Store = Ptl_store.Store
module Fleet = Ptl_fleet.Fleet
module Paired = Ptl_stats.Paired
module Bitops = Ptl_util.Bitops
module Tbl = Ptl_util.Tablefmt

(* ---------------------------------------------------------------- *)
(* Typed errors                                                      *)
(* ---------------------------------------------------------------- *)

type error =
  | E_syntax of { spec : string; reason : string }
  | E_unknown_key of { key : string; known : string list }
  | E_bad_value of { key : string; value : string; expected : string }
  | E_empty_values of { key : string }
  | E_duplicate_axis of { key : string }
  | E_too_many_legs of { legs : int; limit : int }
  | E_bad_geometry of { leg : string; cache : string; reason : string }

let error_to_string = function
  | E_syntax { spec; reason } ->
    Printf.sprintf
      "sweep: cannot parse %S: %s (expected KEY=V1,V2[ x KEY=V1,...])" spec
      reason
  | E_unknown_key { key; known } ->
    Printf.sprintf "sweep: unknown axis key %S; known keys: %s" key
      (String.concat ", " known)
  | E_bad_value { key; value; expected } ->
    Printf.sprintf "sweep: axis %s: bad value %S (expected %s)" key value
      expected
  | E_empty_values { key } ->
    Printf.sprintf "sweep: axis %s has an empty value list" key
  | E_duplicate_axis { key } ->
    Printf.sprintf "sweep: axis %s appears twice (merge its value lists)" key
  | E_too_many_legs { legs; limit } ->
    Printf.sprintf
      "sweep: the cross product has %d legs, more than the %d-leg limit"
      legs limit
  | E_bad_geometry { leg; cache; reason } ->
    Printf.sprintf "sweep: leg %s: %s geometry invalid: %s" leg cache reason

let ( let* ) r f = match r with Error _ as e -> e | Ok x -> f x

(* ---------------------------------------------------------------- *)
(* Value parsers                                                     *)
(* ---------------------------------------------------------------- *)

(* "65536", "256k", "1m" -> bytes *)
let parse_size s =
  let len = String.length s in
  if len = 0 then None
  else begin
    let mult, digits =
      match Char.lowercase_ascii s.[len - 1] with
      | 'k' -> (1024, String.sub s 0 (len - 1))
      | 'm' -> (1024 * 1024, String.sub s 0 (len - 1))
      | '0' .. '9' -> (1, s)
      | _ -> (0, "")
    in
    if mult = 0 then None
    else
      match int_of_string_opt digits with
      | Some n when n > 0 -> Some (n * mult)
      | _ -> None
  end

let parse_bool s =
  match String.lowercase_ascii s with
  | "true" | "on" | "1" -> Some true
  | "false" | "off" | "0" -> Some false
  | _ -> None

let pos_int s =
  match int_of_string_opt s with Some n when n > 0 -> Some n | _ -> None

let nonneg_int s =
  match int_of_string_opt s with Some n when n >= 0 -> Some n | _ -> None

(* ---------------------------------------------------------------- *)
(* The key registry: every sweepable axis of Config.t               *)
(* ---------------------------------------------------------------- *)

let with_hier c f = { c with Config.hierarchy = f c.Config.hierarchy }

let with_l1d c f =
  with_hier c (fun h -> { h with Hierarchy.l1d = f h.Hierarchy.l1d })

let with_l1i c f =
  with_hier c (fun h -> { h with Hierarchy.l1i = f h.Hierarchy.l1i })

let with_l2 c f =
  with_hier c (fun h -> { h with Hierarchy.l2 = f h.Hierarchy.l2 })

let bpred_of base = function
  | "gshare" -> Some Predictor.k8_ptlsim
  | "silicon" -> Some Predictor.k8_silicon
  | "hybrid" ->
    Some
      {
        Predictor.k8_ptlsim with
        Predictor.direction =
          Predictor.Hybrid
            { table_bits = 14; history_bits = 12; chooser_bits = 12 };
      }
  | "bimodal" ->
    Some { Predictor.k8_ptlsim with Predictor.direction = Predictor.Bimodal 14 }
  | "taken" ->
    Some { base with Predictor.direction = Predictor.Always_taken }
  | _ -> None

let tlb_of = function
  | "ptlsim" -> Some Tlb.ptlsim_config
  | "k8" -> Some Tlb.k8_config
  | _ -> None

(** One sweepable key: its value grammar (for the typed error message),
    a shape check usable at parse time, and the config transformer. *)
type key = {
  k_name : string;
  k_expected : string;
  k_check : string -> bool;
  k_apply : Config.t -> string -> Config.t;
}

let size_key name apply =
  {
    k_name = name;
    k_expected = "a power-of-two byte size, e.g. 16k, 256k, 1m";
    k_check =
      (fun v ->
        match parse_size v with
        | Some n -> Bitops.is_pow2 n && n >= 1024
        | None -> false);
    k_apply = (fun c v -> apply c (Option.get (parse_size v)));
  }

let pos_key name apply =
  {
    k_name = name;
    k_expected = "a positive integer";
    k_check = (fun v -> pos_int v <> None);
    k_apply = (fun c v -> apply c (Option.get (pos_int v)));
  }

let nonneg_key name apply =
  {
    k_name = name;
    k_expected = "a non-negative integer";
    k_check = (fun v -> nonneg_int v <> None);
    k_apply = (fun c v -> apply c (Option.get (nonneg_int v)));
  }

let bool_key name apply =
  {
    k_name = name;
    k_expected = "a boolean: true/false (or on/off, 1/0)";
    k_check = (fun v -> parse_bool v <> None);
    k_apply = (fun c v -> apply c (Option.get (parse_bool v)));
  }

let keys =
  [
    size_key "cache.l1d.size" (fun c n ->
        with_l1d c (fun l -> { l with Cache.size_bytes = n }));
    pos_key "cache.l1d.ways" (fun c n ->
        with_l1d c (fun l -> { l with Cache.ways = n }));
    size_key "cache.l1i.size" (fun c n ->
        with_l1i c (fun l -> { l with Cache.size_bytes = n }));
    size_key "cache.l2.size" (fun c n ->
        with_l2 c (fun l -> { l with Cache.size_bytes = n }));
    pos_key "cache.l2.ways" (fun c n ->
        with_l2 c (fun l -> { l with Cache.ways = n }));
    pos_key "cache.l2.latency" (fun c n ->
        with_l2 c (fun l -> { l with Cache.latency = n }));
    pos_key "mem.latency" (fun c n ->
        with_hier c (fun h -> { h with Hierarchy.mem_latency = n }));
    pos_key "mshrs" (fun c n ->
        with_hier c (fun h -> { h with Hierarchy.mshrs = n }));
    bool_key "prefetch" (fun c b ->
        with_hier c (fun h -> { h with Hierarchy.prefetch_next_line = b }));
    {
      k_name = "bpred";
      k_expected = "one of gshare, hybrid, bimodal, taken, silicon";
      k_check = (fun v -> bpred_of Predictor.k8_ptlsim v <> None);
      k_apply =
        (fun c v ->
          { c with Config.bpred = Option.get (bpred_of c.Config.bpred v) });
    };
    {
      k_name = "dtlb";
      k_expected = "one of ptlsim, k8";
      k_check = (fun v -> tlb_of v <> None);
      k_apply = (fun c v -> { c with Config.dtlb = Option.get (tlb_of v) });
    };
    {
      k_name = "itlb";
      k_expected = "one of ptlsim, k8";
      k_check = (fun v -> tlb_of v <> None);
      k_apply = (fun c v -> { c with Config.itlb = Option.get (tlb_of v) });
    };
    pos_key "rob.size" (fun c n -> { c with Config.rob_size = n });
    pos_key "lsq.size" (fun c n -> { c with Config.lsq_size = n });
    {
      k_name = "phys.regs";
      k_expected = "an integer >= 40 (the rename pool must cover the \
                    architectural registers)";
      k_check = (fun v -> match pos_int v with Some n -> n >= 40 | None -> false);
      k_apply = (fun c v -> { c with Config.phys_regs = Option.get (pos_int v) });
    };
    bool_key "load.hoisting" (fun c b -> { c with Config.load_hoisting = b });
    nonneg_key "redirect.penalty" (fun c n ->
        { c with Config.redirect_penalty = n });
    (* virtual-memory scenario axes (lib/vm): page-walk caches, hugepage
       TLB entries, demand paging and the reclaim loop *)
    nonneg_key "pwc.entries" (fun c n -> { c with Config.pwc_entries = n });
    bool_key "tlb.hugepages" (fun c b -> { c with Config.tlb_hugepages = b });
    bool_key "vm.demand_paging" (fun c b ->
        { c with Config.vm_demand_paging = b });
    nonneg_key "vm.reclaim.watermark" (fun c n ->
        { c with Config.vm_reclaim_watermark = n });
    pos_key "vm.reclaim.batch" (fun c n ->
        { c with Config.vm_reclaim_batch = n });
  ]

let known_keys = List.map (fun k -> k.k_name) keys
let find_key name = List.find_opt (fun k -> k.k_name = name) keys

(* ---------------------------------------------------------------- *)
(* Spec parsing                                                      *)
(* ---------------------------------------------------------------- *)

type axis = { ax_key : string; ax_values : string list }
type spec = axis list

(** Canonical spec text; [parse] round-trips it. *)
let to_string (s : spec) =
  String.concat " x "
    (List.map
       (fun a -> a.ax_key ^ "=" ^ String.concat "," a.ax_values)
       s)

let max_legs = 256

let parse_axis spec token =
  match String.index_opt token '=' with
  | None ->
    Error
      (E_syntax
         { spec; reason = Printf.sprintf "axis %S has no '='" token })
  | Some i ->
    let key = String.sub token 0 i in
    let vals = String.sub token (i + 1) (String.length token - i - 1) in
    (match find_key key with
    | None -> Error (E_unknown_key { key; known = known_keys })
    | Some k ->
      if vals = "" then Error (E_empty_values { key })
      else begin
        let values = String.split_on_char ',' vals in
        if List.exists (fun v -> v = "") values then
          Error (E_empty_values { key })
        else
          let rec check = function
            | [] -> Ok { ax_key = key; ax_values = values }
            | v :: rest ->
              if k.k_check v then check rest
              else
                Error (E_bad_value { key; value = v; expected = k.k_expected })
          in
          check values
      end)

(** Parse a sweep spec: axes [KEY=V1,V2,...] separated by a standalone
    [x] token. Every key must be known, every value must parse at its
    key's type, value lists must be non-empty, no key may appear twice,
    and the cross product is capped at {!max_legs}. *)
let parse spec_text : (spec, error) result =
  let tokens =
    String.split_on_char ' ' spec_text
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  let rec go acc expecting_axis = function
    | [] ->
      if expecting_axis && acc = [] then
        Error (E_syntax { spec = spec_text; reason = "empty spec" })
      else if expecting_axis then
        Error
          (E_syntax { spec = spec_text; reason = "trailing 'x' with no axis" })
      else Ok (List.rev acc)
    | "x" :: rest ->
      if expecting_axis then
        Error
          (E_syntax
             { spec = spec_text; reason = "'x' where an axis was expected" })
      else go acc true rest
    | token :: rest ->
      if not expecting_axis then
        Error
          (E_syntax
             {
               spec = spec_text;
               reason =
                 Printf.sprintf "axes must be separated by 'x' (near %S)"
                   token;
             })
      else
        let* axis = parse_axis spec_text token in
        go (axis :: acc) false rest
  in
  let* axes = go [] true tokens in
  let rec dup_check seen = function
    | [] -> Ok ()
    | a :: rest ->
      if List.mem a.ax_key seen then Error (E_duplicate_axis { key = a.ax_key })
      else dup_check (a.ax_key :: seen) rest
  in
  let* () = dup_check [] axes in
  let legs =
    List.fold_left (fun acc a -> acc * List.length a.ax_values) 1 axes
  in
  if legs > max_legs then Error (E_too_many_legs { legs; limit = max_legs })
  else Ok axes

(** Legs in the cross product of [s]'s axes: first axis varies slowest
    (odometer order). *)
let cross (s : spec) : (string * string) list list =
  List.fold_left
    (fun acc a ->
      List.concat_map
        (fun prefix ->
          List.map (fun v -> prefix @ [ (a.ax_key, v) ]) a.ax_values)
        acc)
    [ [] ] s

(* ---------------------------------------------------------------- *)
(* Legs                                                              *)
(* ---------------------------------------------------------------- *)

type leg = {
  l_name : string;  (** "cache.l2.size=1m,bpred=gshare" *)
  l_settings : (string * string) list;
  l_config : Config.t;
  l_digest : string;  (** {!Store.config_digest} of [l_config] *)
}

let leg_name settings =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) settings)

(* mirror of the checks Cache.create enforces, so a bad leg is a typed
   error at spec time instead of an Invalid_argument mid-replay *)
let check_cache_geometry ~leg (c : Cache.config) =
  let nlines = c.Cache.size_bytes / c.Cache.line_size in
  if nlines = 0 || nlines mod c.Cache.ways <> 0 then
    Error
      (E_bad_geometry
         {
           leg;
           cache = c.Cache.name;
           reason =
             Printf.sprintf "%d lines of %d bytes cannot split into %d ways"
               nlines c.Cache.line_size c.Cache.ways;
         })
  else if not (Bitops.is_pow2 (nlines / c.Cache.ways)) then
    Error
      (E_bad_geometry
         {
           leg;
           cache = c.Cache.name;
           reason =
             Printf.sprintf "%d sets is not a power of two"
               (nlines / c.Cache.ways);
         })
  else Ok ()

(** Expand a parsed spec into concrete legs over [base]. Each leg's
    config carries the leg name (so its {!Store.config_digest} — the
    result-cache key — is a pure function of base config + settings),
    and its cache geometry is validated up front. *)
let legs ~(base : Config.t) (s : spec) : (leg list, error) result =
  let make settings =
    let name = leg_name settings in
    let config =
      List.fold_left
        (fun c (k, v) -> (Option.get (find_key k)).k_apply c v)
        base settings
    in
    let config = { config with Config.name = base.Config.name ^ "+" ^ name } in
    let h = config.Config.hierarchy in
    let* () = check_cache_geometry ~leg:name h.Hierarchy.l1d in
    let* () = check_cache_geometry ~leg:name h.Hierarchy.l1i in
    let* () = check_cache_geometry ~leg:name h.Hierarchy.l2 in
    Ok
      {
        l_name = name;
        l_settings = settings;
        l_config = config;
        l_digest = Store.config_digest config;
      }
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | settings :: rest ->
      let* leg = make settings in
      go (leg :: acc) rest
  in
  go [] (cross s)

(* ---------------------------------------------------------------- *)
(* Area proxy                                                        *)
(* ---------------------------------------------------------------- *)

(** A deterministic silicon-area proxy in KB-equivalents: SRAM bytes of
    the caches, TLBs, predictor and rename/window structures. Crude on
    purpose — it exists so the Pareto frontier has a cost axis, not to
    model any real floorplan. *)
let area_kb (c : Config.t) =
  let h = c.Config.hierarchy in
  let cache_bytes =
    h.Hierarchy.l1d.Cache.size_bytes + h.Hierarchy.l1i.Cache.size_bytes
    + h.Hierarchy.l2.Cache.size_bytes
    + (match h.Hierarchy.l3 with Some l3 -> l3.Cache.size_bytes | None -> 0)
  in
  let dir_entries =
    match c.Config.bpred.Predictor.direction with
    | Predictor.Always_taken -> 0
    | Predictor.Saturating b | Predictor.Bimodal b -> 1 lsl b
    | Predictor.Gshare { table_bits; _ } -> 1 lsl table_bits
    | Predictor.Hybrid { table_bits; chooser_bits; _ } ->
      (2 lsl table_bits) + (1 lsl chooser_bits)
  in
  (* 2-bit direction counters; 8 bytes per BTB/RAS entry *)
  let bpred_bytes =
    (dir_entries / 4)
    + (8 * c.Config.bpred.Predictor.btb_entries)
    + (8 * c.Config.bpred.Predictor.ras_entries)
  in
  let tlb_entries (t : Tlb.config) =
    t.Tlb.l1_entries
    + (match t.Tlb.l2 with Some (e, _) -> e | None -> 0)
    + t.Tlb.pde_entries
  in
  let tlb_bytes = 16 * (tlb_entries c.Config.dtlb + tlb_entries c.Config.itlb) in
  let core_bytes =
    (16 * c.Config.phys_regs) + (32 * (c.Config.rob_size + c.Config.lsq_size))
  in
  float_of_int (cache_bytes + bpred_bytes + tlb_bytes + core_bytes) /. 1024.0

(* ---------------------------------------------------------------- *)
(* Flag validation (CLI front line, in the Fleet.check_ style)       *)
(* ---------------------------------------------------------------- *)

let check_flags ~store ~spec ~jobs ~guard_degrade ~tracing ~sampling ~fuzz () =
  if fuzz then
    Error
      "sweep cannot be combined with fuzzing: a sweep replays captured \
       intervals, there is nothing to fuzz"
  else if guard_degrade then
    Error
      "--guard-degrade cannot be combined with sweep: legs replay measured \
       intervals from checkpoints, there is no live run to roll back and \
       degrade"
  else if tracing then
    Error
      "--trace-* cannot be combined with sweep: the process-global trace \
       ring cannot be shared across sweep legs and replay jobs"
  else if sampling then
    Error
      "--sample-* cannot be combined with sweep: the sampling schedule is \
       pinned by the store manifest (re-capture to change it)"
  else if store = "" then
    Error
      "--store is required: sweep replays every leg over one captured \
       interval store (run capture first)"
  else if spec = "" then
    Error
      "--sweep is required: give the design-space spec, e.g. \
       \"cache.l2.size=256k,1m,4m x bpred=gshare,hybrid\""
  else if jobs < 0 then
    Error "--jobs must be at least 1 (or 0 to auto-detect host cores)"
  else Ok ()

(* ---------------------------------------------------------------- *)
(* The driver: every leg over the same interval store                *)
(* ---------------------------------------------------------------- *)

type leg_result = {
  lr_leg : leg;
  lr_result : Sample.result;
  lr_cached : int;  (** intervals answered from this leg's result cache *)
  lr_replayed : int;
  lr_quarantined : (int * string list) list;
      (** intervals this leg could not replay (see
          {!Ptl_fleet.Fleet.replayed}); they simply do not pair *)
  lr_mpki_l1d : float;  (** L1D misses per kilo-instruction (measured) *)
  lr_mpki_dtlb : float;  (** DTLB misses per kilo-instruction (measured) *)
  lr_area : float;  (** {!area_kb} of the leg's config *)
}

type ranked = {
  rk : leg_result;
  rk_rank : int;  (** 1 = best CPI *)
  rk_vs_base : Paired.t;  (** per-interval CPI, leg vs the base config *)
  rk_verdict : Paired.verdict;
  rk_pareto : bool;  (** on the (CPI, L1D MPKI, area) frontier *)
  rk_base : bool;  (** this row is the store's own configuration *)
}

type report = {
  rep_store : string;
  rep_spec : spec;
  rep_schedule : Sample.schedule;
  rep_intervals : int;
  rep_base : leg_result;
  rep_ranked : ranked list;  (** base + legs, best CPI first *)
}

let mpki r ~insns path =
  if insns = 0 then 0.0
  else float_of_int (Sample.result_stat r path) *. 1000.0 /. float_of_int insns

let leg_metrics ~core (leg : leg) (rp : Fleet.replayed) =
  let r = rp.Fleet.rp_result in
  let insns = r.Sample.measured_insns in
  {
    lr_leg = leg;
    lr_result = r;
    lr_cached = rp.Fleet.rp_cached;
    lr_replayed = rp.Fleet.rp_replayed;
    lr_quarantined = rp.Fleet.rp_quarantined;
    lr_mpki_l1d = mpki r ~insns (core ^ ".mem.L1D.misses");
    lr_mpki_dtlb = mpki r ~insns (core ^ ".dcache.dtlb_misses");
    lr_area = area_kb leg.l_config;
  }

(* match intervals by capture index: only windows both legs measured
   form pairs (a leg whose guest halts early simply contributes fewer) *)
let paired_cpis (a : Sample.result) (b : Sample.result) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun iv -> Hashtbl.replace tbl iv.Sample.iv_index iv.Sample.iv_cpi)
    a.Sample.intervals;
  let pairs =
    List.filter_map
      (fun iv ->
        match Hashtbl.find_opt tbl iv.Sample.iv_index with
        | Some cpi_a -> Some (cpi_a, iv.Sample.iv_cpi)
        | None -> None)
      b.Sample.intervals
  in
  ( Array.of_list (List.map fst pairs),
    Array.of_list (List.map snd pairs) )

let dominates a b =
  (* a dominates b: no worse on every axis, strictly better on one *)
  let (ca, ma, aa) = a and (cb, mb, ab) = b in
  ca <= cb && ma <= mb && aa <= ab && (ca < cb || ma < mb || aa < ab)

(** Legs with quarantined intervals, [(leg name, indices)] in rank
    order — non-empty means the sweep report is degraded (quarantined
    windows drop out of that leg's aggregate and pair set). *)
let degraded (r : report) =
  List.filter_map
    (fun rk ->
      match rk.rk.lr_quarantined with
      | [] -> None
      | q -> Some (rk.rk.lr_leg.l_name, List.map fst q))
    r.rep_ranked

(** Run a parsed spec over [store]: the base (manifest) configuration
    plus every leg replays the same intervals on [jobs] in-process
    domains, missing results are computed and cached, and the rows are
    ranked by CPI with paired statistics against the base. [wrap]
    interposes on every replay's core instance (e.g. a per-leg guard
    supervisor); a replay failure quarantines that (leg, interval)
    instead of aborting the sweep. *)
let run ?(jobs = 1) ?(log = fun _ -> ()) ?wrap store (s : spec) :
    (report, string) result =
  let m = Store.manifest store in
  let base_config = m.Store.m_config in
  let* sweep_legs =
    match legs ~base:base_config s with
    | Ok l -> Ok l
    | Error e -> Error (error_to_string e)
  in
  let cached = Store.cached_digests store in
  log
    (Printf.sprintf "sweep: %d leg(s) + base over %d interval(s); %d \
                     config(s) already in the result cache"
       (List.length sweep_legs) m.Store.m_count (List.length cached));
  let replay_leg name config =
    match Fleet.replay ~jobs ~config ?wrap store with
    | Ok rp ->
      log
        (Printf.sprintf "sweep: leg %s: %d cached, %d replayed%s" name
           rp.Fleet.rp_cached rp.Fleet.rp_replayed
           (match rp.Fleet.rp_quarantined with
           | [] -> ""
           | q -> Printf.sprintf ", %d quarantined" (List.length q)));
      Ok rp
    | Error e -> Error (Store.error_to_string e)
  in
  let base_leg =
    {
      l_name = "(base)";
      l_settings = [];
      l_config = base_config;
      l_digest = m.Store.m_config_digest;
    }
  in
  let* base_rp = replay_leg base_leg.l_name base_config in
  let core = m.Store.m_core in
  let base_lr = leg_metrics ~core base_leg base_rp in
  let rec run_legs acc = function
    | [] -> Ok (List.rev acc)
    | leg :: rest ->
      let* rp = replay_leg leg.l_name leg.l_config in
      run_legs (leg_metrics ~core leg rp :: acc) rest
  in
  let* leg_lrs = run_legs [] sweep_legs in
  let rows = base_lr :: leg_lrs in
  let points =
    List.map (fun lr -> (lr.lr_result.Sample.cpi, lr.lr_mpki_l1d, lr.lr_area)) rows
  in
  let pareto lr =
    let p = (lr.lr_result.Sample.cpi, lr.lr_mpki_l1d, lr.lr_area) in
    not (List.exists (fun q -> dominates q p) points)
  in
  let sorted =
    List.stable_sort
      (fun a b ->
        match Float.compare a.lr_result.Sample.cpi b.lr_result.Sample.cpi with
        | 0 -> String.compare a.lr_leg.l_name b.lr_leg.l_name
        | c -> c)
      rows
  in
  let ranked =
    List.mapi
      (fun i lr ->
        let baseline, candidate = paired_cpis base_lr.lr_result lr.lr_result in
        let cmp = Paired.compare ~baseline ~candidate in
        {
          rk = lr;
          rk_rank = i + 1;
          rk_vs_base = cmp;
          rk_verdict = Paired.verdict cmp;
          rk_pareto = pareto lr;
          rk_base = lr.lr_leg.l_name = "(base)";
        })
      sorted
  in
  Ok
    {
      rep_store = Store.dir store;
      rep_spec = s;
      rep_schedule = Store.schedule m;
      rep_intervals = m.Store.m_count;
      rep_base = base_lr;
      rep_ranked = ranked;
    }

(* ---------------------------------------------------------------- *)
(* Report rendering (deterministic: same store + spec = same bytes)   *)
(* ---------------------------------------------------------------- *)

let render oc (r : report) =
  let s = r.rep_schedule in
  Printf.fprintf oc
    "sweep over %d matched interval(s) (schedule ff=%d/warmup=%d/measure=%d)\n"
    r.rep_intervals s.Sample.ff_insns s.Sample.warmup_insns
    s.Sample.measure_insns;
  Printf.fprintf oc "spec: %s\n" (to_string r.rep_spec);
  let rows =
    List.map
      (fun rk ->
        let lr = rk.rk in
        let cmp = rk.rk_vs_base in
        [|
          string_of_int rk.rk_rank;
          lr.lr_leg.l_name;
          Printf.sprintf "%.4f" lr.lr_result.Sample.cpi;
          (if rk.rk_base then "-"
           else Printf.sprintf "%+.4f" cmp.Paired.delta_mean);
          (if rk.rk_base then "-"
           else Printf.sprintf "%.4f" cmp.Paired.delta_ci95);
          (if rk.rk_base then "-"
           else Paired.verdict_to_string rk.rk_verdict);
          Printf.sprintf "%.3f" lr.lr_mpki_l1d;
          Printf.sprintf "%.3f" lr.lr_mpki_dtlb;
          Printf.sprintf "%.0f" lr.lr_area;
          (if rk.rk_pareto then "*" else "");
        |])
      r.rep_ranked
  in
  output_string oc
    (Tbl.render
       ~headers:
         [|
           "rank"; "leg"; "cpi"; "dCPI"; "+/-95%"; "verdict"; "L1D MPKI";
           "DTLB MPKI"; "area KB"; "pareto";
         |]
       ~aligns:
         [|
           Tbl.Right; Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Left;
           Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Left;
         |]
       rows);
  output_string oc "\n";
  let frontier =
    List.filter_map
      (fun rk -> if rk.rk_pareto then Some rk.rk.lr_leg.l_name else None)
      r.rep_ranked
  in
  Printf.fprintf oc "pareto frontier (cpi, L1D MPKI, area): %s\n"
    (String.concat ", " frontier);
  (* the matched-pair payoff, printed for the best non-base leg *)
  (match
     List.find_opt (fun rk -> not rk.rk_base) r.rep_ranked
   with
  | None -> ()
  | Some rk ->
    let cmp = rk.rk_vs_base in
    Printf.fprintf oc
      "best leg %s: dCPI %+.4f, paired 95%% CI %.4f vs independent-runs CI \
       %.4f (%.1fx tighter, %d pairs)\n"
      rk.rk.lr_leg.l_name cmp.Paired.delta_mean cmp.Paired.delta_ci95
      cmp.Paired.indep_ci95
      (if cmp.Paired.delta_ci95 > 0.0 then
         cmp.Paired.indep_ci95 /. cmp.Paired.delta_ci95
       else 0.0)
      cmp.Paired.n);
  (* only when something was quarantined: healthy sweeps render
     byte-identically to the pre-quarantine engine *)
  match degraded r with
  | [] -> ()
  | d ->
    Printf.fprintf oc
      "DEGRADED: %d leg(s) have quarantined interval(s); those windows \
       drop out of the leg's aggregate and pair set\n"
      (List.length d);
    List.iter
      (fun (name, idxs) ->
        Printf.fprintf oc "  %s: interval(s) %s\n" name
          (String.concat "," (List.map string_of_int idxs)))
      d

(** [render] to a string (the determinism tests byte-compare this). *)
let render_string r =
  let tmp = Filename.temp_file "optlsim_sweep" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let ch = open_out tmp in
      render ch r;
      close_out ch;
      let ic = open_in_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))
