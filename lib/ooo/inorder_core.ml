(** A simple scalar in-order timed core.

    PTLsim ships an in-order sequential core "used for rapid testing and
    microcode debugging" (§2.2); this is its timed cousin: functional
    execution via {!Ptl_arch.Seqcore} with a cycle cost charged per event —
    one base cycle per uop, blocking cache/TLB accesses, and a fixed
    misprediction penalty against its own branch predictor. It serves as a
    baseline core model (the `inorder` registry entry) and anchors the
    ablation benches. *)

module Seqcore = Ptl_arch.Seqcore
module Context = Ptl_arch.Context
module Vmem = Ptl_arch.Vmem
module Env = Ptl_arch.Env
module Hierarchy = Ptl_mem.Hierarchy
module Tlb = Ptl_mem.Tlb
module Pwc = Ptl_mem.Pwc
module Pm = Ptl_mem.Phys_mem
module Pt = Ptl_mem.Pagetable
module Predictor = Ptl_bpred.Predictor
module Stats = Ptl_stats.Statstree
module Trace = Ptl_trace.Trace

type t = {
  env : Env.t;
  ctx : Context.t;
  seq : Seqcore.t;
  hierarchy : Hierarchy.t;
  dtlb : Tlb.t;
  itlb : Tlb.t;
  pwc : Pwc.t option;
  hugepages : bool;
  bpred : Predictor.t;
  mutable pending_cycles : int;  (* cost accumulated by the current block *)
  mutable tlb_gen_seen : int;
  (* no-commit watchdog (same contract as the OOO core's): a running
     context that retires nothing for [watchdog_cycles] is a core bug *)
  watchdog_cycles : int;
  mutable wd_last_insns : int;
  mutable wd_last_progress : int;
  c_cycles : Stats.counter;
  c_kernel : Stats.counter;
  c_user : Stats.counter;
  c_idle : Stats.counter;
}

let create ?(prefix = "inorder") ?uarch (config : Config.t) env ctx =
  let stats = env.Env.stats in
  let uarch =
    match uarch with
    | Some u -> u
    | None -> Uarch.create ~prefix config stats
  in
  let t =
    {
      env;
      ctx;
      seq = Seqcore.create ~prefix env ctx;
      hierarchy = uarch.Uarch.hierarchy;
      dtlb = uarch.Uarch.dtlb;
      itlb = uarch.Uarch.itlb;
      pwc = uarch.Uarch.pwc;
      hugepages = config.Config.tlb_hugepages;
      bpred = uarch.Uarch.bpred;
      pending_cycles = 0;
      tlb_gen_seen = ctx.Context.tlb_generation;
      watchdog_cycles = config.Config.watchdog_cycles;
      wd_last_insns = 0;
      wd_last_progress = env.Env.cycle;
      c_cycles = Stats.counter stats (prefix ^ ".cycles");
      c_kernel = Stats.counter stats (prefix ^ ".cycles_in_mode.kernel");
      c_user = Stats.counter stats (prefix ^ ".cycles_in_mode.user");
      c_idle = Stats.counter stats (prefix ^ ".cycles_in_mode.idle");
    }
  in
  let charge n = t.pending_cycles <- t.pending_cycles + n in
  let translate ~vaddr ~write =
    match Tlb.lookup t.dtlb vaddr with
    | Tlb.L1_hit e | Tlb.L2_hit e -> Some (Tlb.paddr_of e vaddr)
    | Tlb.Tlb_miss ->
      (match
         Pt.walk env.Env.mem ~cr3_mfn:ctx.Context.cr3 ~vaddr ~write
           ~user:(ctx.Context.mode = Context.User) ~exec:false ~set_ad:false ()
       with
      | Error _ -> None
      | Ok tr ->
        let e = Tlb.entry_of_walk tr in
        let e =
          if e.Tlb.huge && not t.hugepages then
            { e with Tlb.huge = false; mfn = tr.Pt.mfn }
          else e
        in
        Tlb.insert t.dtlb vaddr e;
        (* blocking page walk; the PWC cuts the dependent-load chain *)
        let addrs = tr.Pt.pte_addrs in
        let loads =
          match t.pwc with
          | None -> List.length addrs
          | Some pwc ->
            let left =
              Pwc.loads_left pwc vaddr ~walk_len:(List.length addrs)
            in
            Pwc.insert pwc vaddr ~pte_addrs:addrs;
            left
        in
        let drop = List.length addrs - loads in
        List.iteri
          (fun i pa ->
            if i >= drop then
              charge (Hierarchy.load t.hierarchy ~cycle:env.Env.cycle ~paddr:pa))
          addrs;
        Some (Pt.to_paddr tr vaddr))
  in
  t.seq.Seqcore.hooks <-
    Some
      {
        Seqcore.h_load =
          (fun ~vaddr ~rip ->
            ignore rip;
            match translate ~vaddr ~write:false with
            | Some paddr -> charge (Hierarchy.load t.hierarchy ~cycle:env.Env.cycle ~paddr)
            | None -> ());
        h_store =
          (fun ~vaddr ~rip ->
            ignore rip;
            match translate ~vaddr ~write:true with
            | Some paddr -> charge (Hierarchy.store t.hierarchy ~cycle:env.Env.cycle ~paddr)
            | None -> ());
        h_branch =
          (fun ~rip ~taken ~target ~conditional ~call:_ ~ret:_ ~next_rip:_ ->
            if conditional then begin
              let pred = Predictor.predict_cond t.bpred ~rip in
              let mispredicted = pred <> taken in
              Predictor.update_cond t.bpred ~rip ~taken ~mispredicted;
              if mispredicted then begin
                if !Trace.on then
                  Trace.emit ~rip ~info:target
                    ~tag:(if taken then "taken" else "nt")
                    Trace.Mispredict;
                charge 8
              end
            end
            else begin
              (* indirect/direct: BTB-checked *)
              match Predictor.predict_target t.bpred ~rip with
              | Some p when p = target -> ()
              | _ ->
                Predictor.update_target t.bpred ~rip ~target;
                if !Trace.on then
                  Trace.emit ~rip ~info:target ~tag:"btb" Trace.Mispredict;
                charge 8
            end);
        h_insn =
          (fun ~rip ~kernel ->
            ignore rip;
            (* base CPI of 1 plus an i-cache charge per instruction line *)
            charge 1;
            if kernel then Stats.incr t.c_kernel else Stats.incr t.c_user);
      };
  t

(** Execute one basic block and advance simulated time by its cost.
    Returns the seqcore status. *)
let step_block t =
  if !Trace.on then Trace.set_cycle t.env.Env.cycle;
  if t.ctx.Context.tlb_generation <> t.tlb_gen_seen then begin
    t.tlb_gen_seen <- t.ctx.Context.tlb_generation;
    Tlb.flush t.dtlb;
    Tlb.flush t.itlb;
    Option.iter Pwc.flush t.pwc
  end;
  t.pending_cycles <- 0;
  let st = Seqcore.step_block t.seq in
  let cost = max 1 t.pending_cycles in
  (match st with
  | Seqcore.Idle -> Stats.incr t.c_idle
  | Seqcore.Executed _ | Seqcore.Interrupted -> ());
  t.env.Env.cycle <- t.env.Env.cycle + cost;
  Stats.add t.c_cycles cost;
  (* Watchdog: progress is committed instructions advancing, an interrupt
     being delivered, or a legitimately idle VCPU. A running context that
     keeps burning cycles without retiring is a simulator bug. *)
  let insns_now = Seqcore.insns t.seq in
  let progressed =
    insns_now > t.wd_last_insns
    || match st with Seqcore.Interrupted | Seqcore.Idle -> true | Seqcore.Executed _ -> false
  in
  if progressed then begin
    t.wd_last_insns <- insns_now;
    t.wd_last_progress <- t.env.Env.cycle
  end
  else if t.env.Env.cycle - t.wd_last_progress > t.watchdog_cycles then
    Sim_failure.fail ~stats:t.env.Env.stats ~subsystem:"inorder.watchdog"
      ~kind:Sim_failure.Lockup ~cycle:t.env.Env.cycle ~rip:t.ctx.Context.rip
      (Printf.sprintf "no commit since cycle %d (insns=%d)" t.wd_last_progress
         insns_now);
  st

(** Run until idle or [max_cycles] simulated cycles pass. *)
let run t ~max_cycles =
  let start = t.env.Env.cycle in
  let stop = ref false in
  while (not !stop) && t.env.Env.cycle - start < max_cycles do
    match step_block t with
    | Seqcore.Idle ->
      if not (Context.interruptible t.ctx) then stop := true
    | Seqcore.Executed _ | Seqcore.Interrupted -> ()
  done;
  t.env.Env.cycle - start

let insns t = Seqcore.insns t.seq
let cycles t = Stats.value t.c_cycles
