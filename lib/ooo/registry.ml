(** The core-model registry.

    "Models can be added as plug-ins by simply registering a C++ class
    with PTLsim and recompiling" (§2.2) — here, by registering a builder
    function under a name. The built-in models are:

    - ["ooo"]: the out-of-order superscalar core
    - ["smt"]: the same core with multiple hardware threads
    - ["inorder"]: the scalar in-order timed core
    - ["seq"]: the untimed functional core at a fixed 1.0 IPC

    Command lists such as "-core smt -run -stopinsns 10m" (§4.1) resolve
    core names through this registry. *)

module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Seqcore = Ptl_arch.Seqcore

(** The concrete core behind an instance, for tooling (the guard
    supervisor attaches model-specific invariant checks through it).
    [Core_opaque] is for third-party builders that expose nothing. *)
type handle =
  | Core_ooo of Ooo_core.t
  | Core_inorder of Inorder_core.t
  | Core_seq of Seqcore.t
  | Core_opaque

(** A uniform driving interface over any core model. *)
type instance = {
  model_name : string;
  (* Advance simulation; the instance owns env.cycle progression. *)
  step : unit -> unit;
  idle : unit -> bool;
  insns : unit -> int;
  handle : handle;
}

(** Builders take an optional shared {!Uarch.t} (the sampled-simulation
    supervisor passes one so caches/TLBs/predictor survive rebuilds);
    plain timed runs leave it [None] and each instance builds its own. *)
type builder = ?uarch:Uarch.t -> Config.t -> Env.t -> Context.t array -> instance

let registry : (string, builder) Hashtbl.t = Hashtbl.create 8

let register name builder = Hashtbl.replace registry name builder

let names () = Hashtbl.fold (fun k _ acc -> k :: acc) registry []

exception Unknown_core of string

let build ?uarch name config env contexts =
  match Hashtbl.find_opt registry name with
  | Some b -> b ?uarch config env contexts
  | None -> raise (Unknown_core name)

let () =
  register "ooo" (fun ?uarch config env contexts ->
      let core = Ooo_core.create ?uarch { config with Config.smt_threads = Array.length contexts } env contexts in
      {
        model_name = "ooo";
        step =
          (fun () ->
            Ooo_core.step core;
            env.Env.cycle <- env.Env.cycle + 1);
        idle = (fun () -> Ooo_core.all_idle core);
        insns = (fun () -> Ooo_core.insns core);
        handle = Core_ooo core;
      });
  register "smt" (fun ?uarch config env contexts ->
      let core =
        Ooo_core.create ~prefix:"smt" ?uarch
          { config with Config.smt_threads = Array.length contexts }
          env contexts
      in
      {
        model_name = "smt";
        step =
          (fun () ->
            Ooo_core.step core;
            env.Env.cycle <- env.Env.cycle + 1);
        idle = (fun () -> Ooo_core.all_idle core);
        insns = (fun () -> Ooo_core.insns core);
        handle = Core_ooo core;
      });
  register "inorder" (fun ?uarch config env contexts ->
      if Array.length contexts <> 1 then invalid_arg "inorder: single context";
      let core = Inorder_core.create ?uarch config env contexts.(0) in
      {
        model_name = "inorder";
        step = (fun () -> ignore (Inorder_core.step_block core));
        idle =
          (fun () ->
            (not contexts.(0).Context.running)
            && not (Context.interruptible contexts.(0)));
        insns = (fun () -> Inorder_core.insns core);
        handle = Core_inorder core;
      });
  register "seq" (fun ?uarch:_ _config env contexts ->
      if Array.length contexts <> 1 then invalid_arg "seq: single context";
      let core = Seqcore.create env contexts.(0) in
      {
        model_name = "seq";
        step =
          (fun () ->
            match Seqcore.step_block core with
            | Seqcore.Executed n ->
              (* fixed 1.0 IPC clock for the functional model *)
              env.Env.cycle <- env.Env.cycle + max 1 n
            | Seqcore.Interrupted -> env.Env.cycle <- env.Env.cycle + 1
            | Seqcore.Idle -> env.Env.cycle <- env.Env.cycle + 1);
        idle =
          (fun () ->
            (not contexts.(0).Context.running)
            && not (Context.interruptible contexts.(0)));
        insns = (fun () -> Seqcore.insns core);
        handle = Core_seq core;
      })
