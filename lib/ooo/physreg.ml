(** The physical register file and free list.

    PTLsim-style: one physical register holds both the 64-bit result value
    and the condition flags its producer generated, so flag renaming rides
    on value renaming — a uop that only sets flags (cmp) still allocates a
    register, and the flags consumer reads the producer's register. *)

type state = Free | Pending | Written

type reg = {
  mutable state : state;
  mutable value : int64;
  mutable flags : int;
  mutable written_cycle : int;
  mutable producer_cluster : int;  (* -1 = immediately visible everywhere *)
}

type t = {
  regs : reg array;
  free : int Queue.t;
}

let create n =
  let t =
    {
      regs =
        Array.init n (fun _ ->
            { state = Free; value = 0L; flags = 0; written_cycle = 0; producer_cluster = -1 });
      free = Queue.create ();
    }
  in
  for i = 0 to n - 1 do
    Queue.push i t.free
  done;
  t

let free_count t = Queue.length t.free

(** Allocate a register in [Pending] state; None when exhausted. *)
let alloc t =
  match Queue.take_opt t.free with
  | None -> None
  | Some i ->
    let r = t.regs.(i) in
    r.state <- Pending;
    r.value <- 0L;
    r.flags <- 0;
    Some i

let release t i =
  let r = t.regs.(i) in
  assert (r.state <> Free);
  r.state <- Free;
  Queue.push i t.free

let write t i ~value ~flags ~cycle ~cluster =
  let r = t.regs.(i) in
  r.state <- Written;
  r.value <- value;
  r.flags <- flags;
  r.written_cycle <- cycle;
  r.producer_cluster <- cluster

(** First cycle at which register [i] is usable from [cluster]: results
    cross clusters only after the consumer cluster's forwarding delay
    (paper §2.2: "multi-cycle latencies between clusters"). *)
let visible_cycle t i ~cluster ~forward_delay =
  let r = t.regs.(i) in
  if r.producer_cluster = -1 || r.producer_cluster = cluster then r.written_cycle
  else r.written_cycle + forward_delay

let is_written t i = t.regs.(i).state = Written
let value t i = t.regs.(i).value
let flags t i = t.regs.(i).flags

(** Invariant check for tests: free + live = capacity and no Free register
    is referenced. *)
let consistent t =
  let free_marked =
    Array.fold_left (fun a r -> a + if r.state = Free then 1 else 0) 0 t.regs
  in
  free_marked = Queue.length t.free

(* ---------- guard inspection hooks ---------- *)

let capacity t = Array.length t.regs
let state t i = t.regs.(i).state
let state_name = function Free -> "Free" | Pending -> "Pending" | Written -> "Written"

(** Free-list contents, head first. *)
let free_list t = List.rev (Queue.fold (fun acc i -> i :: acc) [] t.free)

(** Conservation + leak check against the set of registers the pipeline
    references ([iter_referenced] visits each, see
    {!Ooo_core.guard_iter_referenced}): the free list must agree with
    the Free-marked population, contain no duplicates and no live
    register; every referenced register must be live; and every live
    register must be referenced (otherwise it leaked). Returns a
    violation description, or None. *)
let conservation_check t ~iter_referenced =
  let n = capacity t in
  let on_free = Array.make n false in
  let dup = ref None in
  Queue.iter
    (fun i ->
      if i < 0 || i >= n then dup := Some (Printf.sprintf "free-list index %d out of range" i)
      else begin
        if on_free.(i) then dup := Some (Printf.sprintf "physreg %d on free list twice" i);
        on_free.(i) <- true
      end)
    t.free;
  match !dup with
  | Some _ as v -> v
  | None ->
    let free_marked =
      Array.fold_left (fun a r -> a + if r.state = Free then 1 else 0) 0 t.regs
    in
    if free_marked <> Queue.length t.free then
      Some
        (Printf.sprintf "free list holds %d entries but %d registers are Free"
           (Queue.length t.free) free_marked)
    else begin
      let referenced_set = Array.make n false in
      iter_referenced (fun i -> if i >= 0 && i < n then referenced_set.(i) <- true);
      let violation = ref None in
      Array.iteri
        (fun i r ->
          if !violation = None then begin
            if r.state = Free && referenced_set.(i) then
              violation := Some (Printf.sprintf "physreg %d is Free but still referenced" i)
            else if r.state <> Free && on_free.(i) then
              violation :=
                Some (Printf.sprintf "physreg %d is %s but on the free list" i (state_name r.state))
            else if r.state <> Free && not referenced_set.(i) then
              violation :=
                Some (Printf.sprintf "physreg %d leaked: %s but unreferenced" i (state_name r.state))
          end)
        t.regs;
      !violation
    end
