(** Machine configuration for the out-of-order core.

    Everything the paper calls configurable (§2.2) is a field here: the
    clustered microarchitecture with per-cluster issue queues and
    inter-cluster forwarding latencies, functional unit mix, uop latencies,
    physical register file size, fetch/rename/commit widths, ROB and
    load/store queue sizes, branch predictor, TLBs, cache hierarchy,
    load hoisting and L1 bank-conflict enforcement. *)

module Uop = Ptl_uop.Uop

(** Functional unit classes; each uop maps to one. *)
type fu_class = FU_alu | FU_mul | FU_div | FU_mem | FU_fp | FU_branch

type cluster = {
  cl_name : string;
  iq_size : int;  (* issue queue entries (collapsing) *)
  issue_width : int;  (* uops selected per cycle from this cluster *)
  fu_classes : fu_class list;  (* which classes this cluster hosts *)
  forward_delay : int;  (* extra cycles for results produced elsewhere *)
}

type t = {
  name : string;
  fetch_width : int;  (* uops fetched per cycle *)
  frontend_stages : int;  (* fetch-to-rename pipeline depth *)
  rename_width : int;
  commit_width : int;
  fetch_queue : int;
  rob_size : int;
  lsq_size : int;  (* unified load/store queue entries *)
  phys_regs : int;  (* physical register pool *)
  clusters : cluster list;
  bpred : Ptl_bpred.Predictor.config;
  dtlb : Ptl_mem.Tlb.config;
  itlb : Ptl_mem.Tlb.config;
  hierarchy : Ptl_mem.Hierarchy.config;
  (* Page-walk cache entries per level (0 = no PWC): per-level walker
     caches that cut a TLB miss's dependent loads (lib/mem/pwc.ml). *)
  pwc_entries : int;
  (* Honor 2M PDE leaves with single huge TLB entries; when false the
     TLB fragments huge mappings into exact 4K entries (architecturally
     identical, so both legs of a sweep replay the same capture). *)
  tlb_hugepages : bool;
  (* Guest-kernel VM policy axes, carried in the core config so sweep
     legs digest them: lazily-populated address spaces (demand paging)
     and the watermark-driven reclaim loop (0 watermark = no reclaim). *)
  vm_demand_paging : bool;
  vm_reclaim_watermark : int;  (* min free frames before reclaim kicks in *)
  vm_reclaim_batch : int;  (* frames evicted per reclaim pass *)
  load_hoisting : bool;  (* speculative loads past unresolved stores *)
  enforce_banking : bool;  (* L1D bank-conflict replays *)
  redirect_penalty : int;  (* extra cycles on fetch redirect (mispredict) *)
  smt_threads : int;
  (* K8 counts retired "uop triads" (groups of up to 3); when set, the
     committed-uop counter advances by ceil(n/3) per macro-op (§5). *)
  count_uop_triads : bool;
  (* Lockup watchdog: a thread that is not idle yet commits nothing for
     this many cycles is a simulator bug; the core raises a typed
     {!Sim_failure} (the guard supervisor turns it into a diagnostic
     bundle). *)
  watchdog_cycles : int;
}

(** Execution latency of each uop class, in cycles. *)
let uop_latency (u : Uop.t) =
  match u.Uop.op with
  | Uop.Mull | Uop.Mulhu | Uop.Mulhs -> 3
  | Uop.Divqu | Uop.Remqu | Uop.Divqs | Uop.Remqs -> 23
  | Uop.Fadd | Uop.Fsub | Uop.Fcmp -> 4
  | Uop.Fmul -> 4
  | Uop.Fdiv -> 17
  | Uop.I2f | Uop.F2i | Uop.Fmov -> 2
  | _ -> 1

let fu_class_of (u : Uop.t) =
  match u.Uop.op with
  | Uop.Ld | Uop.Ldl | Uop.St | Uop.Strel | Uop.Fence -> FU_mem
  | Uop.Mull | Uop.Mulhu | Uop.Mulhs -> FU_mul
  | Uop.Divqu | Uop.Remqu | Uop.Divqs | Uop.Remqs -> FU_div
  | Uop.Fadd | Uop.Fsub | Uop.Fmul | Uop.Fdiv | Uop.Fmov | Uop.I2f | Uop.F2i
  | Uop.Fcmp -> FU_fp
  | Uop.Bru | Uop.Brc _ | Uop.Brnz | Uop.Brz | Uop.Jmpr -> FU_branch
  | _ -> FU_alu

(** The paper's §5 configuration of PTLsim to match the AMD K8: 72-entry
    ROB, 44-entry load/store queue, three 8-entry integer issue queues
    (the K8's three "lanes"), a 36-entry FP issue queue two cycles away,
    128-entry physical register file, no load hoisting, 8-way banked L1D,
    single-level 32-entry TLBs, 16K gshare predictor. *)
let k8_ptlsim =
  let int_lane i =
    {
      cl_name = Printf.sprintf "int%d" i;
      iq_size = 8;
      issue_width = 1;
      fu_classes = [ FU_alu; FU_branch; FU_mem ] @ (if i = 0 then [ FU_mul; FU_div ] else []);
      forward_delay = 0;
    }
  in
  {
    name = "k8-ptlsim";
    fetch_width = 3;
    frontend_stages = 6;
    rename_width = 3;
    commit_width = 3;
    fetch_queue = 24;
    rob_size = 72;
    lsq_size = 44;
    phys_regs = 128;
    clusters =
      [ int_lane 0; int_lane 1; int_lane 2;
        { cl_name = "fp"; iq_size = 36; issue_width = 3; fu_classes = [ FU_fp ];
          forward_delay = 2 } ];
    bpred = Ptl_bpred.Predictor.k8_ptlsim;
    dtlb = Ptl_mem.Tlb.ptlsim_config;
    itlb = Ptl_mem.Tlb.ptlsim_config;
    hierarchy = Ptl_mem.Hierarchy.k8_ptlsim;
    pwc_entries = 0;
    tlb_hugepages = false;
    vm_demand_paging = false;
    vm_reclaim_watermark = 0;
    vm_reclaim_batch = 8;
    load_hoisting = false;
    enforce_banking = true;
    redirect_penalty = 10;
    smt_threads = 1;
    count_uop_triads = false;
    watchdog_cycles = 500_000;
  }

(** The "reference silicon" configuration: what the real Athlon 64 had
    that the PTLsim model of the paper did not — a two-level DTLB with a
    PDE cache, a hardware prefetcher, a slightly weaker direction
    predictor, and uop-triad retirement counting. Running the same
    workload under both configurations reproduces the Table 1 deltas. *)
let k8_silicon =
  {
    k8_ptlsim with
    name = "k8-silicon";
    bpred = Ptl_bpred.Predictor.k8_silicon;
    dtlb = Ptl_mem.Tlb.k8_config;
    itlb = Ptl_mem.Tlb.k8_config;
    hierarchy = Ptl_mem.Hierarchy.k8_silicon;
    count_uop_triads = true;
  }

(** A small default core for tests: tight structures so hazards are easy
    to provoke. *)
let tiny =
  {
    name = "tiny";
    fetch_width = 2;
    frontend_stages = 3;
    rename_width = 2;
    commit_width = 2;
    fetch_queue = 8;
    rob_size = 16;
    lsq_size = 8;
    phys_regs = 48;
    clusters =
      [ { cl_name = "all"; iq_size = 8; issue_width = 2;
          fu_classes = [ FU_alu; FU_branch; FU_mem; FU_mul; FU_div; FU_fp ];
          forward_delay = 0 } ];
    bpred =
      { Ptl_bpred.Predictor.direction = Ptl_bpred.Predictor.Gshare { table_bits = 10; history_bits = 8 };
        btb_entries = 64; btb_ways = 4; ras_entries = 8 };
    dtlb = { Ptl_mem.Tlb.l1_entries = 8; l1_ways = 8; l2 = None; pde_entries = 0 };
    itlb = { Ptl_mem.Tlb.l1_entries = 8; l1_ways = 8; l2 = None; pde_entries = 0 };
    pwc_entries = 0;
    tlb_hugepages = false;
    vm_demand_paging = false;
    vm_reclaim_watermark = 0;
    vm_reclaim_batch = 8;
    hierarchy =
      {
        Ptl_mem.Hierarchy.l1d =
          { Ptl_mem.Cache.name = "L1D"; size_bytes = 4096; line_size = 64; ways = 2;
            latency = 2; banks = 4; replacement = Ptl_mem.Cache.Lru };
        l1i =
          { Ptl_mem.Cache.name = "L1I"; size_bytes = 4096; line_size = 64; ways = 2;
            latency = 1; banks = 1; replacement = Ptl_mem.Cache.Lru };
        l2 =
          { Ptl_mem.Cache.name = "L2"; size_bytes = 65536; line_size = 64; ways = 4;
            latency = 6; banks = 1; replacement = Ptl_mem.Cache.Lru };
        l3 = None;
        mem_latency = 40;
        mshrs = 4;
        prefetch_next_line = false;
      };
    load_hoisting = false;
    enforce_banking = false;
    redirect_penalty = 4;
    smt_threads = 1;
    count_uop_triads = false;
    watchdog_cycles = 500_000;
  }
