(** The long-lived microarchitectural state of a timed core: cache
    hierarchy, TLBs, branch predictor and the decoded-basic-block cache.

    Normally each core instance builds its own set in [create]; mode
    switches (Domain.enter_sim) therefore start every simulation phase
    cold. The sampled-simulation supervisor (lib/sample) instead creates
    one [Uarch.t] up front and threads it through {!Registry.build}, so

    - cache/TLB/predictor contents survive the fast-forward phases and
      the per-phase core rebuilds (only pipeline state starts fresh,
      which the warm-up interval settles), and
    - the functional warmer can update the very structures the timed
      core will use, while the sequential core executes.

    [prefix] must match the core's stats/trace namespace ("ooo", "smt",
    "inorder") so counters land on the same paths either way. *)

module Hierarchy = Ptl_mem.Hierarchy
module Tlb = Ptl_mem.Tlb
module Pwc = Ptl_mem.Pwc
module Predictor = Ptl_bpred.Predictor
module Bbcache = Ptl_uop.Bbcache

type t = {
  hierarchy : Hierarchy.t;
  dtlb : Tlb.t;
  itlb : Tlb.t;
  pwc : Pwc.t option;  (* page-walk caches; None when pwc_entries = 0 *)
  bpred : Predictor.t;
  bbcache : Bbcache.t;
}

let create ?(prefix = "ooo") (config : Config.t) stats =
  {
    hierarchy =
      Hierarchy.create ~prefix:(prefix ^ ".mem") stats config.Config.hierarchy;
    dtlb = Tlb.create ~name:(prefix ^ ".dtlb") config.Config.dtlb;
    itlb = Tlb.create ~name:(prefix ^ ".itlb") config.Config.itlb;
    pwc =
      (if config.Config.pwc_entries > 0 then
         Some
           (Pwc.create ~name:(prefix ^ ".pwc")
              ~entries:config.Config.pwc_entries ())
       else None);
    bpred = Predictor.create ~prefix:(prefix ^ ".bpred") stats config.Config.bpred;
    bbcache = Bbcache.create stats;
  }

(* ---- checkpointing (sampled-simulation parallel workers) ---- *)

(** Checkpoint of the warmed long-lived state: cache tags/LRU (with the
    replacement-RNG cursors), both TLBs and every predictor table. The
    decoded-basic-block cache is deliberately excluded — it is state
    derived purely from guest memory, so a restored worker rebuilds it
    deterministically as it decodes (the warm-up interval absorbs the
    cost, exactly like any other core rebuild). *)
type snapshot = {
  sn_hierarchy : Hierarchy.snapshot;
  sn_dtlb : Tlb.snapshot;
  sn_itlb : Tlb.snapshot;
  sn_pwc : Pwc.snapshot option;
  sn_bpred : Predictor.snapshot;
}

let snapshot t =
  {
    sn_hierarchy = Hierarchy.snapshot t.hierarchy;
    sn_dtlb = Tlb.snapshot t.dtlb;
    sn_itlb = Tlb.snapshot t.itlb;
    sn_pwc = Option.map Pwc.snapshot t.pwc;
    sn_bpred = Predictor.snapshot t.bpred;
  }

(** Restore in place into a [t] built from the same {!Config.t} (the
    geometries must match). *)
let restore t ~snapshot =
  Hierarchy.restore t.hierarchy ~snapshot:snapshot.sn_hierarchy;
  Tlb.restore t.dtlb ~snapshot:snapshot.sn_dtlb;
  Tlb.restore t.itlb ~snapshot:snapshot.sn_itlb;
  (match (t.pwc, snapshot.sn_pwc) with
  | Some pwc, Some s -> Pwc.restore pwc ~snapshot:s
  | None, None -> ()
  | _ -> invalid_arg "Uarch.restore: pwc presence mismatch");
  Predictor.restore t.bpred ~snapshot:snapshot.sn_bpred

(** Best-effort restore for replays under a {e different} machine
    configuration (design-space sweep legs): each component restores
    only when the snapshot fits its geometry; the rest stay cold and
    re-warm during the interval's warm-up phase — the standard
    sampled-simulation treatment of warmed state that cannot be
    translated across geometries. Returns the components started cold;
    empty means the restore was exactly {!restore}. *)
let restore_fit t ~snapshot =
  let cold = ref [] in
  let component name fits restore =
    if fits then restore () else cold := name :: !cold
  in
  component "hierarchy"
    (Hierarchy.fits t.hierarchy snapshot.sn_hierarchy)
    (fun () -> Hierarchy.restore t.hierarchy ~snapshot:snapshot.sn_hierarchy);
  component "dtlb"
    (Tlb.fits t.dtlb snapshot.sn_dtlb)
    (fun () -> Tlb.restore t.dtlb ~snapshot:snapshot.sn_dtlb);
  component "itlb"
    (Tlb.fits t.itlb snapshot.sn_itlb)
    (fun () -> Tlb.restore t.itlb ~snapshot:snapshot.sn_itlb);
  (match (t.pwc, snapshot.sn_pwc) with
  | Some pwc, Some s ->
    component "pwc" (Pwc.fits pwc s) (fun () -> Pwc.restore pwc ~snapshot:s)
  | None, _ -> ()  (* no PWC in this configuration: nothing to restore *)
  | Some _, None -> component "pwc" false (fun () -> ()));
  component "bpred"
    (Predictor.fits t.bpred snapshot.sn_bpred)
    (fun () -> Predictor.restore t.bpred ~snapshot:snapshot.sn_bpred);
  List.rev !cold

(** Every mismatch between the live state and a snapshot, one line per
    difference with the owning subsystem named (empty = exact). *)
let diff t snapshot =
  Hierarchy.diff t.hierarchy snapshot.sn_hierarchy
  @ Tlb.diff t.dtlb snapshot.sn_dtlb
  @ Tlb.diff t.itlb snapshot.sn_itlb
  @ (match (t.pwc, snapshot.sn_pwc) with
    | Some pwc, Some s -> Pwc.diff pwc s
    | None, None -> []
    | _ -> [ "pwc: presence mismatch" ])
  @ Predictor.diff t.bpred snapshot.sn_bpred

(* ---- delta snapshots (cheap per-interval checkpoints) ---- *)

(** A snapshot expressed relative to a base snapshot: each component is
    present only if it changed since the base. Cache/TLB/predictor
    snapshots are plain data, so "changed" is structural inequality —
    the same snapshot-diff machinery the checkpoint round-trip harness
    trusts, reduced to a boolean. Per-interval capture cost then scales
    with what the interval perturbed, and a long-stable component
    (e.g. a saturated predictor) serializes as [None]. *)
type delta = {
  d_hierarchy : Hierarchy.snapshot option;
  d_dtlb : Tlb.snapshot option;
  d_itlb : Tlb.snapshot option;
  d_pwc : Pwc.snapshot option option;  (* Some s = changed to s *)
  d_bpred : Predictor.snapshot option;
}

let delta t ~base =
  let keep changed v = if changed then Some v else None in
  let sn = snapshot t in
  {
    d_hierarchy = keep (sn.sn_hierarchy <> base.sn_hierarchy) sn.sn_hierarchy;
    d_dtlb = keep (sn.sn_dtlb <> base.sn_dtlb) sn.sn_dtlb;
    d_itlb = keep (sn.sn_itlb <> base.sn_itlb) sn.sn_itlb;
    d_pwc = keep (sn.sn_pwc <> base.sn_pwc) sn.sn_pwc;
    d_bpred = keep (sn.sn_bpred <> base.sn_bpred) sn.sn_bpred;
  }

(** The full snapshot a delta resolves to: each component from the
    delta when it changed, from [base] otherwise. *)
let resolve_delta ~base ~delta =
  {
    sn_hierarchy = Option.value delta.d_hierarchy ~default:base.sn_hierarchy;
    sn_dtlb = Option.value delta.d_dtlb ~default:base.sn_dtlb;
    sn_itlb = Option.value delta.d_itlb ~default:base.sn_itlb;
    sn_pwc = Option.value delta.d_pwc ~default:base.sn_pwc;
    sn_bpred = Option.value delta.d_bpred ~default:base.sn_bpred;
  }

(** Restore the state [delta] was captured from: each component comes
    from the delta when it changed, from [base] otherwise. *)
let restore_delta t ~base ~delta =
  restore t ~snapshot:(resolve_delta ~base ~delta)

(** {!restore_delta} with the {!restore_fit} geometry tolerance. *)
let restore_delta_fit t ~base ~delta =
  restore_fit t ~snapshot:(resolve_delta ~base ~delta)
