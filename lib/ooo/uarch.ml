(** The long-lived microarchitectural state of a timed core: cache
    hierarchy, TLBs, branch predictor and the decoded-basic-block cache.

    Normally each core instance builds its own set in [create]; mode
    switches (Domain.enter_sim) therefore start every simulation phase
    cold. The sampled-simulation supervisor (lib/sample) instead creates
    one [Uarch.t] up front and threads it through {!Registry.build}, so

    - cache/TLB/predictor contents survive the fast-forward phases and
      the per-phase core rebuilds (only pipeline state starts fresh,
      which the warm-up interval settles), and
    - the functional warmer can update the very structures the timed
      core will use, while the sequential core executes.

    [prefix] must match the core's stats/trace namespace ("ooo", "smt",
    "inorder") so counters land on the same paths either way. *)

module Hierarchy = Ptl_mem.Hierarchy
module Tlb = Ptl_mem.Tlb
module Predictor = Ptl_bpred.Predictor
module Bbcache = Ptl_uop.Bbcache

type t = {
  hierarchy : Hierarchy.t;
  dtlb : Tlb.t;
  itlb : Tlb.t;
  bpred : Predictor.t;
  bbcache : Bbcache.t;
}

let create ?(prefix = "ooo") (config : Config.t) stats =
  {
    hierarchy =
      Hierarchy.create ~prefix:(prefix ^ ".mem") stats config.Config.hierarchy;
    dtlb = Tlb.create ~name:(prefix ^ ".dtlb") config.Config.dtlb;
    itlb = Tlb.create ~name:(prefix ^ ".itlb") config.Config.itlb;
    bpred = Predictor.create ~prefix:(prefix ^ ".bpred") stats config.Config.bpred;
    bbcache = Bbcache.create stats;
  }
