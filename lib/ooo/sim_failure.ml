(** Typed simulator self-check fault.

    A [Sim_failure] is the simulator admitting a bug in itself: a pipeline
    that stopped committing (watchdog lockup) or a structural invariant
    that no longer holds (free-list leak, ROB misordering, MSHR leak...).
    It replaces the old bare-string [Pipeline_hang] and carries everything
    a diagnostic needs: the failing subsystem, the cycle and guest RIP,
    the tail of the armed event trace, and a snapshot of the nonzero
    statistics counters. [render] turns one into the self-contained text
    bundle printed by the guard supervisor and the CLI driver. *)

module Stats = Ptl_stats.Statstree
module Trace = Ptl_trace.Trace

type kind = Lockup | Invariant

type t = {
  subsystem : string;  (* e.g. "ooo.watchdog", "ooo.physreg", "mem.mshr" *)
  kind : kind;
  cycle : int;
  rip : int64;  (* guest RIP at failure time, 0L when unknown *)
  message : string;
  trace_window : string list;  (* armed trace tail, oldest first *)
  stats : (string * int) list;  (* nonzero counters at failure time *)
}

exception Sim_failure of t

let kind_name = function Lockup -> "lockup" | Invariant -> "invariant"

(* Snapshot the nonzero counters of a stats tree. *)
let stats_snapshot (stats : Stats.t) =
  List.filter_map
    (fun path ->
      let v = Stats.get stats path in
      if v <> 0 then Some (path, v) else None)
    (Stats.paths stats)

(* Tail of the armed trace ring as text, [] when tracing is off. *)
let trace_tail ?(lines = 32) () =
  if !Trace.on then List.map Trace.event_to_string (Trace.recent lines)
  else []

let make ?stats ?(trace_lines = 32) ~subsystem ~kind ~cycle ~rip message =
  {
    subsystem;
    kind;
    cycle;
    rip;
    message;
    trace_window = trace_tail ~lines:trace_lines ();
    stats = (match stats with Some s -> stats_snapshot s | None -> []);
  }

let fail ?stats ?trace_lines ~subsystem ~kind ~cycle ~rip message =
  raise (Sim_failure (make ?stats ?trace_lines ~subsystem ~kind ~cycle ~rip message))

(** Short single-line form for log lines and cosim diffs. *)
let summary t =
  Printf.sprintf "sim failure [%s/%s] cycle %d rip %#Lx: %s" t.subsystem
    (kind_name t.kind) t.cycle t.rip t.message

(** The full diagnostic bundle as text (see README "Guard rails"). *)
let render t =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "=== optlsim guard: simulator failure ===\n";
  pf "subsystem : %s\n" t.subsystem;
  pf "kind      : %s\n" (kind_name t.kind);
  pf "cycle     : %d\n" t.cycle;
  pf "rip       : %#Lx\n" t.rip;
  pf "message   : %s\n" t.message;
  if t.trace_window <> [] then begin
    pf "\n-- trace window (last %d events) --\n" (List.length t.trace_window);
    List.iter (fun l -> pf "%s\n" l) t.trace_window
  end;
  if t.stats <> [] then begin
    pf "\n-- stats snapshot (nonzero counters) --\n";
    List.iter (fun (p, v) -> pf "%s = %d\n" p v) t.stats
  end;
  Buffer.contents buf
