(** The out-of-order superscalar core (optionally SMT).

    Modeled stage by stage as in the paper (§2.2): fetch from the basic
    block cache with branch prediction; rename onto a physical register
    file through per-thread register alias tables; dispatch into clustered
    collapsing issue queues; oldest-first select per cluster with
    functional-unit constraints; execution through the shared pure uop
    executor; a unified load/store queue with store-to-load forwarding,
    replay on conflicts and optional load hoisting; speculative recovery by
    walking the ROB backwards to restore the RAT; and a commit unit that
    enforces x86 instruction atomicity, delivers precise exceptions and
    interrupts at macro-op boundaries, trains the branch predictor, honours
    self-modifying code, and drives the interlock controller for LOCKed
    operations.

    Threads (up to 16, §2.2) share issue queues, functional units, the
    physical register file and the cache hierarchy but have private fetch
    queues, ROBs, LSQs and alias tables — the paper's SMT arrangement. *)

open Ptl_util
module Uop = Ptl_uop.Uop
module Exec = Ptl_uop.Exec
module Bbcache = Ptl_uop.Bbcache
module Context = Ptl_arch.Context
module Fault = Ptl_arch.Fault
module Assists = Ptl_arch.Assists
module Vmem = Ptl_arch.Vmem
module Env = Ptl_arch.Env
module Pm = Ptl_mem.Phys_mem
module Pt = Ptl_mem.Pagetable
module Tlb = Ptl_mem.Tlb
module Pwc = Ptl_mem.Pwc
module Hierarchy = Ptl_mem.Hierarchy
module Predictor = Ptl_bpred.Predictor
module Stats = Ptl_stats.Statstree
module Trace = Ptl_trace.Trace

type rat_entry = Arch | Phys of int

type entry_state =
  | Waiting  (* in an issue queue, sources not all ready / not selected *)
  | Issued  (* executing; completes at writeback_cycle *)
  | Done
  | Faulted of Fault.t

(* Where fetch resumes after a redirect. *)
type redirect =
  | To_rip of int64
  | Into_block of { ib_rip : int64; ib_index : int }

type rob_entry = {
  uop : Uop.t;
  seq : int;
  uuid : int;  (* fetch-order id for the event trace *)
  thread : int;
  bb_rip : int64;  (* start of the basic block this uop was fetched from *)
  bb_index : int;  (* index within that block *)
  dest : int;  (* value physreg, -1 if none *)
  dest_flags : int;  (* flags physreg, -1 if none *)
  old_rd : (int * rat_entry) option;  (* previous mapping of uop.rd *)
  old_flags : rat_entry option;  (* previous mapping of the flags reg *)
  src_a : rat_entry;
  src_b : rat_entry;
  src_c : rat_entry;
  src_f : rat_entry;  (* flags source when readflags *)
  mutable state : entry_state;
  mutable writeback_cycle : int;
  mutable in_iq : int;  (* cluster index while queued, -1 otherwise *)
  mutable exec_cluster : int;  (* cluster the uop executes in *)
  mutable result : int64;
  mutable rflags : int;
  (* branch resolution *)
  pred_taken : bool;
  pred_target : int64;
  ras_ck : Predictor.ras_checkpoint option;
  mutable taken : bool;
  mutable target : int64;
  mutable mispredicted : bool;
  (* memory *)
  mutable vaddr : int64;
  mutable paddr : int;
  mutable addr_valid : bool;
  mutable store_data : int64;
  mutable locked_acquired : bool;
  mutable replays : int;
  (* replayed uops re-enter selection only after a short delay, so a
     replay loop cannot monopolize an issue port and starve other
     (SMT) threads' ready uops *)
  mutable retry_cycle : int;
  (* the fault uop synthesized at fetch carries its fault here *)
  fetch_fault : Fault.t option;
}

(* A uop sitting in the fetch queue with its prediction. *)
type fetched = {
  f_uop : Uop.t;
  f_uuid : int;  (* fetch-order id for the event trace *)
  f_bb_rip : int64;
  f_bb_index : int;
  f_cycle : int;  (* fetch cycle, for frontend depth *)
  f_pred_taken : bool;
  f_pred_target : int64;
  f_ras_ck : Predictor.ras_checkpoint option;
  f_fault : Fault.t option;
}

type iq_slot = { slot_rob : rob_entry }

type thread_state = {
  tid : int;
  ctx : Context.t;
  rat : rat_entry array;
  rob : rob_entry Ring.t;
  lsq : rob_entry Ring.t;
  fetchq : fetched Ring.t;
  mutable fetch_rip : int64;
  mutable fetch_bb : Bbcache.bb option;
  mutable fetch_bb_index : int;
  mutable fetch_stall_until : int;
  mutable fetch_enabled : bool;  (* false after a fetch fault / assist until redirect *)
  mutable redirect : (int * redirect) option;  (* effective cycle, where *)
  mutable last_fetch_line : int;
  mutable tlb_gen_seen : int;
  mutable last_progress : int;  (* watchdog: last cycle with commit progress *)
}

type t = {
  config : Config.t;
  env : Env.t;
  core_id : int;
  prefix : string;  (* stats / trace namespace, e.g. "ooo" *)
  threads : thread_state array;
  prf : Physreg.t;
  iqs : iq_slot option array array;  (* per cluster, collapsing queue *)
  bbcache : Bbcache.t;
  hierarchy : Hierarchy.t;
  dtlb : Tlb.t;
  itlb : Tlb.t;
  pwc : Pwc.t option;
  bpred : Predictor.t;
  interlock : Interlock.t;
  mutable seq_counter : int;
  mutable uuid_counter : int;  (* fetch-order trace ids *)
  mutable fetch_round : int;  (* SMT round-robin pointer *)
  (* per-cycle bank occupancy for L1D bank-conflict modeling *)
  mutable banks_cycle : int;
  mutable banks_used : int list;
  (* counters *)
  c_cycles : Stats.counter;
  c_insns : Stats.counter;
  c_uops : Stats.counter;
  c_triads : Stats.counter;
  c_loads : Stats.counter;
  c_stores : Stats.counter;
  c_branches : Stats.counter;
  c_cond_branches : Stats.counter;
  c_mispredicts : Stats.counter;
  c_dtlb_misses : Stats.counter;
  c_dtlb_accesses : Stats.counter;
  c_itlb_misses : Stats.counter;
  c_replays : Stats.counter;
  c_bank_conflicts : Stats.counter;
  c_flushes : Stats.counter;
  c_assists : Stats.counter;
  c_faults : Stats.counter;
  c_irqs : Stats.counter;
  c_smc_flushes : Stats.counter;
  c_kernel_cycles : Stats.counter;
  c_user_cycles : Stats.counter;
  c_idle_cycles : Stats.counter;
  c_hoist_violations : Stats.counter;
}

let create ?(core_id = 0) ?(prefix = "ooo") ?interlock ?bbcache ?uarch
    (config : Config.t) env contexts =
  if Array.length contexts <> config.Config.smt_threads then
    invalid_arg "Ooo_core.create: one context per thread";
  let stats = env.Env.stats in
  (* a shared uarch (sampled simulation) supplies long-lived structures
     that survive this instance; otherwise build a private cold set *)
  let uarch =
    match uarch with
    | Some u -> u
    | None -> Uarch.create ~prefix config stats
  in
  let c suffix = Stats.counter stats (prefix ^ "." ^ suffix) in
  let thread tid ctx =
    {
      tid;
      ctx;
      rat = Array.make Uop.num_arch_regs Arch;
      rob = Ring.create (config.Config.rob_size);
      lsq = Ring.create (config.Config.lsq_size);
      fetchq = Ring.create (config.Config.fetch_queue);
      fetch_rip = ctx.Context.rip;
      fetch_bb = None;
      fetch_bb_index = 0;
      fetch_stall_until = 0;
      fetch_enabled = true;
      redirect = None;
      last_fetch_line = -1;
      tlb_gen_seen = ctx.Context.tlb_generation;
      (* baseline at the current virtual cycle: cores are rebuilt on
         every native->sim switch, arbitrarily late in the run *)
      last_progress = env.Env.cycle;
    }
  in
  {
    config;
    env;
    core_id;
    prefix;
    threads = Array.mapi thread contexts;
    prf = Physreg.create config.Config.phys_regs;
    iqs =
      Array.of_list
        (List.map (fun cl -> Array.make cl.Config.iq_size None) config.Config.clusters);
    bbcache = (match bbcache with Some b -> b | None -> uarch.Uarch.bbcache);
    hierarchy = uarch.Uarch.hierarchy;
    dtlb = uarch.Uarch.dtlb;
    itlb = uarch.Uarch.itlb;
    pwc = uarch.Uarch.pwc;
    bpred = uarch.Uarch.bpred;
    interlock =
      (match interlock with Some i -> i | None -> Interlock.create stats);
    seq_counter = 0;
    uuid_counter = 0;
    fetch_round = 0;
    banks_cycle = -1;
    banks_used = [];
    c_cycles = c "cycles";
    c_insns = c "commit.insns";
    c_uops = c "commit.uops";
    c_triads = c "commit.triads";
    c_loads = c "commit.loads";
    c_stores = c "commit.stores";
    c_branches = c "commit.branches";
    c_cond_branches = c "commit.cond_branches";
    c_mispredicts = c "commit.mispredicts";
    c_dtlb_misses = c "dcache.dtlb_misses";
    c_dtlb_accesses = c "dcache.dtlb_accesses";
    c_itlb_misses = c "fetch.itlb_misses";
    c_replays = c "issue.replays";
    c_bank_conflicts = c "issue.bank_conflicts";
    c_flushes = c "flushes";
    c_assists = c "commit.assists";
    c_faults = c "commit.faults";
    c_irqs = c "commit.irqs";
    c_smc_flushes = c "commit.smc_flushes";
    c_kernel_cycles = c "cycles_in_mode.kernel";
    c_user_cycles = c "cycles_in_mode.user";
    c_idle_cycles = c "cycles_in_mode.idle";
    c_hoist_violations = c "lsq.hoist_violations";
  }

let now t = t.env.Env.cycle

(* Trace helpers. Every call site guards with [if !Trace.on then ...] so
   the disabled path costs one branch and allocates nothing; these run
   only when tracing is armed. *)
let trace_uop t (e : rob_entry) kind =
  Trace.emit ~core:t.core_id ~thread:e.thread ~uuid:e.uuid ~rip:e.uop.Uop.rip kind

let trace_replay t (e : rob_entry) reason =
  Trace.emit ~core:t.core_id ~thread:e.thread ~uuid:e.uuid ~rip:e.uop.Uop.rip
    ~info:e.vaddr ~tag:reason Trace.Replay

(* ---------- RAT / physreg plumbing ---------- *)

let src_of th reg = if reg = Uop.reg_none then Arch else th.rat.(reg)

let src_ready t = function
  | Arch -> true
  | Phys p -> Physreg.is_written t.prf p

let src_value t th = function
  | Arch, reg -> if reg = Uop.reg_none then 0L else Context.get_reg th.ctx reg
  | Phys p, _ -> Physreg.value t.prf p

let flags_value t th = function
  | Arch -> th.ctx.Context.flags
  | Phys p -> Physreg.flags t.prf p

(* ---------- issue queue helpers ---------- *)

let iq_insert t cluster entry =
  let q = t.iqs.(cluster) in
  let rec go i =
    if i >= Array.length q then false
    else
      match q.(i) with
      | None ->
        q.(i) <- Some { slot_rob = entry };
        entry.in_iq <- cluster;
        true
      | Some _ -> go (i + 1)
  in
  go 0

let iq_remove t entry =
  if entry.in_iq >= 0 then begin
    let q = t.iqs.(entry.in_iq) in
    Array.iteri
      (fun i s ->
        match s with
        | Some { slot_rob } when slot_rob == entry -> q.(i) <- None
        | _ -> ())
      q;
    entry.in_iq <- -1
  end

let iq_free_slots t cluster =
  Array.fold_left (fun a s -> if s = None then a + 1 else a) 0 t.iqs.(cluster)

(* SMT deadlock prevention (§2.2 "deadlock prevention schemes"): every
   issue queue keeps one slot in reserve for each thread that has no
   entry in it, so a thread whose progress others are waiting on (e.g.
   the interlock owner) can always dispatch at least one uop. Without
   this, two spinning threads can jointly fill a queue and deadlock the
   owner out of it. *)
let iq_thread_may_insert t cluster tid =
  let nthreads = Array.length t.threads in
  if nthreads = 1 then iq_free_slots t cluster > 0
  else begin
    let present = Array.make nthreads false in
    Array.iter
      (fun s ->
        match s with
        | Some { slot_rob } -> present.(slot_rob.thread) <- true
        | None -> ())
      t.iqs.(cluster);
    let absent_others = ref 0 in
    Array.iteri
      (fun i p -> if i <> tid && not p then incr absent_others)
      present;
    iq_free_slots t cluster > !absent_others
  end

(* Pick the cluster for a uop: one that hosts the FU class, preferring the
   one with the most free issue-queue slots (simple load balancing over the
   K8's three lanes). *)
let cluster_for t (u : Uop.t) =
  let cls = Config.fu_class_of u in
  let best = ref (-1) and best_free = ref (-1) in
  List.iteri
    (fun i (cl : Config.cluster) ->
      if List.mem cls cl.Config.fu_classes then begin
        let free = iq_free_slots t i in
        if free > !best_free then begin
          best := i;
          best_free := free
        end
      end)
    t.config.Config.clusters;
  !best

(* ---------- annulment and recovery ---------- *)

(* Annul the youngest [n] ROB entries of a thread, restoring the RAT by
   walking youngest -> oldest (the paper's ROB-walk recovery). *)
let annul_youngest t th n =
  for k = 0 to n - 1 do
    let idx = Ring.length th.rob - 1 - k in
    let e = Ring.get th.rob idx in
    if !Trace.on then trace_uop t e Trace.Annul;
    (match e.old_rd with Some (r, prev) -> th.rat.(r) <- prev | None -> ());
    (match e.old_flags with Some prev -> th.rat.(Uop.reg_flags) <- prev | None -> ());
    (match e.uop.Uop.op with
    | Uop.Ldl ->
      Interlock.trace t.interlock "%d: annul ldl seq=%d th=%d acq=%b state=%s" (now t)
        e.seq e.thread e.locked_acquired
        (match e.state with Waiting -> "w" | Issued -> "i" | Done -> "d" | Faulted _ -> "f")
    | Uop.Strel ->
      Interlock.trace t.interlock "%d: annul strel seq=%d th=%d" (now t) e.seq e.thread
    | _ -> ());
    if e.dest >= 0 then Physreg.release t.prf e.dest;
    if e.dest_flags >= 0 then Physreg.release t.prf e.dest_flags;
    iq_remove t e;
    if e.locked_acquired then
      Interlock.release t.interlock ~cycle:(now t) ~core:t.core_id ~thread:th.tid
        ~paddr:e.paddr;
    (* restore speculative RAS state *)
    match e.ras_ck with
    | Some ck -> Predictor.ras_restore t.bpred ck
    | None -> ()
  done;
  Ring.drop_youngest th.rob n;
  (* rebuild the LSQ: drop entries whose rob entry was annulled *)
  let keep = Ring.fold th.lsq [] (fun acc e -> e :: acc) in
  Ring.clear th.lsq;
  List.iter
    (fun e ->
      (* an entry survives if it is still somewhere in the ROB *)
      let alive = Ring.fold th.rob false (fun a re -> a || re == e) in
      if alive then Ring.push th.lsq e)
    (List.rev keep)

(* Annul every entry younger than [entry] (exclusive). *)
let annul_after t th entry =
  let total = Ring.length th.rob in
  let rec age i = if Ring.get th.rob i == entry then i else age (i + 1) in
  let pos = age 0 in
  annul_youngest t th (total - pos - 1)

(* Annul [entry] and everything younger (inclusive). *)
let annul_from t th entry =
  let total = Ring.length th.rob in
  let rec age i = if Ring.get th.rob i == entry then i else age (i + 1) in
  let pos = age 0 in
  annul_youngest t th (total - pos)

(* After a full flush the context holds all committed state: revert every
   RAT mapping to Arch and release the physregs that held committed
   values (no in-flight consumer can exist — the ROB is empty). *)
let reset_rat t th =
  Array.iteri
    (fun i entry ->
      match entry with
      | Phys p ->
        Physreg.release t.prf p;
        th.rat.(i) <- Arch
      | Arch -> ())
    th.rat

let flush_fetch th =
  Ring.clear th.fetchq;
  th.fetch_bb <- None;
  th.fetch_bb_index <- 0;
  th.last_fetch_line <- -1

(* Full pipeline flush for one thread; fetch resumes at [rip] after the
   redirect penalty. *)
let flush_thread t th ~rip =
  Stats.incr t.c_flushes;
  if !Trace.on then
    Trace.emit ~core:t.core_id ~thread:th.tid ~rip ~tag:t.prefix Trace.Flush;
  annul_youngest t th (Ring.length th.rob);
  reset_rat t th;
  flush_fetch th;
  Interlock.release_all t.interlock ~cycle:(now t) ~core:t.core_id ~thread:th.tid;
  th.fetch_enabled <- true;
  th.redirect <- Some (now t + t.config.Config.redirect_penalty, To_rip rip)

(* ---------- fetch ---------- *)

(* The TLB entry a walk fills: a single 2M entry when this configuration
   honors huge pages, else the exact 4K fragment (architecturally
   identical; only the reach differs). *)
let tlb_fill_entry t (tr : Pt.translation) =
  let e = Tlb.entry_of_walk tr in
  if e.Tlb.huge && not t.config.Config.tlb_hugepages then
    { e with Tlb.huge = false; mfn = tr.Pt.mfn }
  else e

(* Consult the page-walk caches: further cut the dependent-load chain of
   a walk that would issue [loads] loads, and remember the walked
   tables. *)
let pwc_filter_loads t vaddr ~addrs loads =
  match t.pwc with
  | None -> loads
  | Some pwc ->
    let left = Pwc.loads_left pwc vaddr ~walk_len:loads in
    Pwc.insert pwc vaddr ~pte_addrs:addrs;
    left

let itlb_fetch_latency t th vaddr =
  (* ITLB lookup; misses walk the page table with timed PTE loads. *)
  match Tlb.lookup t.itlb vaddr with
  | Tlb.L1_hit _ | Tlb.L2_hit _ -> 0
  | Tlb.Tlb_miss ->
    Stats.incr t.c_itlb_misses;
    let ctx = th.ctx in
    (match
       Pt.walk t.env.Env.mem ~cr3_mfn:ctx.Context.cr3 ~vaddr ~write:false
         ~user:(ctx.Context.mode = Context.User) ~exec:true ()
     with
    | Error _ -> 0 (* the fault will surface when decode fetches bytes *)
    | Ok tr ->
      Tlb.insert t.itlb vaddr (tlb_fill_entry t tr);
      let addrs = tr.Pt.pte_addrs in
      let loads = min (Tlb.walk_loads t.itlb vaddr) (List.length addrs) in
      let loads = pwc_filter_loads t vaddr ~addrs loads in
      let charged =
        (* charge the last [loads] walk references (PDE cache / PWC skip
           the upper levels) *)
        let rec drop l n = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop tl (n - 1) in
        drop addrs (List.length addrs - loads)
      in
      List.fold_left
        (fun acc pa -> acc + Hierarchy.load t.hierarchy ~cycle:(now t + acc) ~paddr:pa)
        0 charged)

(* Predict a branch at fetch time; returns (taken, target, ras checkpoint
   if the RAS was touched). *)
let predict_branch t (u : Uop.t) =
  match u.Uop.op with
  | Uop.Bru ->
    if u.Uop.hint_call then begin
      let ck = Predictor.ras_checkpoint t.bpred in
      Predictor.ras_push t.bpred u.Uop.next_rip;
      (true, u.Uop.br_target, Some ck)
    end
    else (true, u.Uop.br_target, None)
  | Uop.Brc _ | Uop.Brnz | Uop.Brz ->
    let taken = Predictor.predict_cond t.bpred ~rip:u.Uop.rip in
    (taken, (if taken then u.Uop.br_target else u.Uop.next_rip), None)
  | Uop.Jmpr ->
    if u.Uop.hint_ret then begin
      let ck = Predictor.ras_checkpoint t.bpred in
      match Predictor.ras_pop t.bpred with
      | Some target -> (true, target, Some ck)
      | None -> (true, u.Uop.next_rip, Some ck)
    end
    else begin
      if u.Uop.hint_call then Predictor.ras_push t.bpred u.Uop.next_rip;
      match Predictor.predict_target t.bpred ~rip:u.Uop.rip with
      | Some target -> (true, target, None)
      | None -> (true, u.Uop.next_rip, None)
    end
  | _ -> (false, 0L, None)

let push_fault_uop t th fault =
  let u =
    { Uop.default with Uop.op = Uop.Nop; som = true; eom = true;
      rip = th.fetch_rip; next_rip = th.fetch_rip }
  in
  t.uuid_counter <- t.uuid_counter + 1;
  if !Trace.on then
    Trace.emit ~core:t.core_id ~thread:th.tid ~uuid:t.uuid_counter
      ~rip:th.fetch_rip ~tag:"fault" Trace.Fetch;
  Ring.push th.fetchq
    {
      f_uop = u;
      f_uuid = t.uuid_counter;
      f_bb_rip = th.fetch_rip;
      f_bb_index = 0;
      f_cycle = now t;
      f_pred_taken = false;
      f_pred_target = 0L;
      f_ras_ck = None;
      f_fault = Some fault;
    };
  (* stop fetching until the fault commits and redirects *)
  th.fetch_enabled <- false

(* Fetch up to [fetch_width] uops for thread [th]. *)
let fetch_thread t th =
  let ctx = th.ctx in
  (match th.redirect with
  | Some (cyc, where) when cyc <= now t ->
    th.redirect <- None;
    th.fetch_enabled <- true;
    (match where with
    | To_rip rip ->
      th.fetch_rip <- rip;
      th.fetch_bb <- None;
      th.fetch_bb_index <- 0
    | Into_block { ib_rip; ib_index } ->
      th.fetch_rip <- ib_rip;
      th.fetch_bb <- None;
      th.fetch_bb_index <- ib_index)
  | _ -> ());
  if th.fetch_enabled && th.redirect = None && ctx.Context.running
     && now t >= th.fetch_stall_until
  then begin
    let budget = ref t.config.Config.fetch_width in
    let stop = ref false in
    while (not !stop) && !budget > 0 && not (Ring.is_full th.fetchq) do
      (* ensure a current block *)
      (match th.fetch_bb with
      | Some _ -> ()
      | None -> (
        let rip = th.fetch_rip in
        let itlb_lat = itlb_fetch_latency t th rip in
        if itlb_lat > 0 then begin
          th.fetch_stall_until <- now t + itlb_lat;
          stop := true
        end
        else
          match
            Bbcache.lookup t.bbcache ~rip ~kernel:(Context.is_kernel ctx)
              ~fetch:(fun va -> Vmem.fetch_byte t.env.Env.vmem ctx ~at_rip:rip va)
              ~mfn_of:(fun va -> Vmem.code_mfn t.env.Env.vmem ctx ~at_rip:rip va)
          with
          | bb ->
            if Array.length bb.Bbcache.uops = 0 then begin
              (* empty block (fault on first instruction when re-decoded) *)
              push_fault_uop t th
                { Fault.kind = Fault.Invalid_opcode; at_rip = rip };
              stop := true
            end
            else th.fetch_bb <- Some bb
          | exception Fault.Guest_fault f ->
            push_fault_uop t th f;
            stop := true
          | exception Ptl_isa.Decode.Invalid_opcode _ ->
            push_fault_uop t th { Fault.kind = Fault.Invalid_opcode; at_rip = rip };
            stop := true));
      match th.fetch_bb with
      | None -> stop := true
      | Some bb ->
        if th.fetch_bb_index >= Array.length bb.Bbcache.uops then begin
          (* fell off a size-limited block: continue at the fallthrough *)
          th.fetch_rip <- bb.Bbcache.fallthrough_rip;
          th.fetch_bb <- None;
          th.fetch_bb_index <- 0
        end
        else begin
          let u = bb.Bbcache.uops.(th.fetch_bb_index) in
          (* model the i-cache: charge one access per 64-byte line *)
          let line = Int64.to_int (Int64.shift_right_logical u.Uop.rip 6) in
          let line_ok =
            if line = th.last_fetch_line then true
            else
              match
                Vmem.translate t.env.Env.vmem ctx ~vaddr:u.Uop.rip ~write:false
                  ~fetch:true ~at_rip:u.Uop.rip
              with
              | paddr ->
                th.last_fetch_line <- line;
                let lat = Hierarchy.ifetch t.hierarchy ~cycle:(now t) ~paddr in
                if lat > t.config.Config.hierarchy.Hierarchy.l1i.Ptl_mem.Cache.latency
                then begin
                  (* miss: the line arrives later; retry then *)
                  th.fetch_stall_until <- now t + lat;
                  stop := true;
                  false
                end
                else true
              | exception Fault.Guest_fault f ->
                push_fault_uop t th f;
                stop := true;
                false
          in
          if line_ok then begin
            let pred_taken, pred_target, ras_ck = predict_branch t u in
            t.uuid_counter <- t.uuid_counter + 1;
            if !Trace.on then
              Trace.emit ~core:t.core_id ~thread:th.tid ~uuid:t.uuid_counter
                ~rip:u.Uop.rip ~slot:th.fetch_bb_index ~info:pred_target
                Trace.Fetch;
            Ring.push th.fetchq
              {
                f_uop = u;
                f_uuid = t.uuid_counter;
                f_bb_rip = bb.Bbcache.key.Bbcache.krip;
                f_bb_index = th.fetch_bb_index;
                f_cycle = now t;
                f_pred_taken = pred_taken;
                f_pred_target = pred_target;
                f_ras_ck = ras_ck;
                f_fault = None;
              };
            decr budget;
            th.fetch_bb_index <- th.fetch_bb_index + 1;
            if Uop.is_branch u then begin
              if pred_taken then begin
                th.fetch_rip <- pred_target;
                th.fetch_bb <- None;
                th.fetch_bb_index <- 0
              end
              (* predicted not-taken: continue within the block *)
            end
            else if Uop.is_assist u then begin
              (* serializing: stop fetch until the assist commits *)
              th.fetch_enabled <- false;
              stop := true
            end
          end
        end
    done
  end

(* ---------- rename / dispatch ---------- *)

let alloc_entry_regs t (u : Uop.t) =
  let need_dest = u.Uop.rd <> Uop.reg_none in
  let need_flags = u.Uop.setflags <> 0 in
  let n_needed = (if need_dest then 1 else 0) + if need_flags then 1 else 0 in
  if Physreg.free_count t.prf < n_needed then None
  else begin
    let dest = if need_dest then Option.get (Physreg.alloc t.prf) else -1 in
    let dest_flags = if need_flags then Option.get (Physreg.alloc t.prf) else -1 in
    Some (dest, dest_flags)
  end

let rename_thread t th =
  let budget = ref t.config.Config.rename_width in
  let stop = ref false in
  while (not !stop) && !budget > 0 && not (Ring.is_empty th.fetchq) do
    match Ring.peek th.fetchq with
    | None -> stop := true
    | Some f ->
      if now t < f.f_cycle + t.config.Config.frontend_stages then stop := true
      else begin
        let u = f.f_uop in
        let is_mem = Uop.is_mem u in
        let is_assist = Uop.is_assist u || f.f_fault <> None in
        let cluster = if is_assist then -1 else cluster_for t u in
        let iq_ok =
          is_assist || (cluster >= 0 && iq_thread_may_insert t cluster th.tid)
        in
        if Ring.is_full th.rob
           || (is_mem && Ring.is_full th.lsq)
           || not iq_ok
        then stop := true
        else
          match alloc_entry_regs t u with
          | None -> stop := true
          | Some (dest, dest_flags) ->
            let src_a = src_of th u.Uop.ra in
            let src_b = src_of th u.Uop.rb in
            let src_c = src_of th u.Uop.rc in
            let src_f =
              if u.Uop.readflags then th.rat.(Uop.reg_flags) else Arch
            in
            let old_rd =
              if u.Uop.rd <> Uop.reg_none then begin
                let prev = th.rat.(u.Uop.rd) in
                th.rat.(u.Uop.rd) <- Phys dest;
                Some (u.Uop.rd, prev)
              end
              else None
            in
            let old_flags =
              if u.Uop.setflags <> 0 then begin
                let prev = th.rat.(Uop.reg_flags) in
                th.rat.(Uop.reg_flags) <- Phys dest_flags;
                Some prev
              end
              else None
            in
            t.seq_counter <- t.seq_counter + 1;
            let entry =
              {
                uop = u;
                seq = t.seq_counter;
                uuid = f.f_uuid;
                thread = th.tid;
                bb_rip = f.f_bb_rip;
                bb_index = f.f_bb_index;
                dest;
                dest_flags;
                old_rd;
                old_flags;
                src_a;
                src_b;
                src_c;
                src_f;
                state =
                  (match f.f_fault with
                  | Some fault -> Faulted fault
                  | None -> if is_assist then Done else Waiting);
                writeback_cycle = 0;
                in_iq = -1;
                exec_cluster = cluster;
                result = 0L;
                rflags = 0;
                pred_taken = f.f_pred_taken;
                pred_target = f.f_pred_target;
                ras_ck = f.f_ras_ck;
                taken = false;
                target = 0L;
                mispredicted = false;
                vaddr = 0L;
                paddr = -1;
                addr_valid = false;
                store_data = 0L;
                locked_acquired = false;
                replays = 0;
                retry_cycle = 0;
                fetch_fault = f.f_fault;
              }
            in
            Ring.push th.rob entry;
            if !Trace.on then begin
              Trace.emit ~core:t.core_id ~thread:th.tid ~uuid:entry.uuid
                ~rip:u.Uop.rip
                ~slot:(Ring.length th.rob - 1)
                Trace.Rename;
              Trace.emit ~core:t.core_id ~thread:th.tid ~uuid:entry.uuid
                ~rip:u.Uop.rip ~slot:cluster Trace.Dispatch
            end;
            if is_mem then Ring.push th.lsq entry;
            if not is_assist then begin
              let inserted = iq_insert t cluster entry in
              assert inserted
            end;
            ignore (Ring.pop th.fetchq);
            decr budget
      end
  done

(* ---------- memory pipeline helpers ---------- *)

(* Timed DTLB translation; returns (paddr, extra latency) or a fault. *)
let dtlb_translate t th ~vaddr ~write ~at_rip =
  Stats.incr t.c_dtlb_accesses;
  let ctx = th.ctx in
  let need_walk =
    match Tlb.lookup t.dtlb vaddr with
    | Tlb.L1_hit e | Tlb.L2_hit e -> if write && not e.Tlb.writable then None else Some e
    | Tlb.Tlb_miss -> None
  in
  match need_walk with
  | Some e -> Ok (Tlb.paddr_of e vaddr, 0)
  | None ->
    Stats.incr t.c_dtlb_misses;
    (match
       Pt.walk t.env.Env.mem ~cr3_mfn:ctx.Context.cr3 ~vaddr ~write
         ~user:(ctx.Context.mode = Context.User) ~exec:false ()
     with
    | Error f ->
      ctx.Context.cr2 <- vaddr;
      Error
        {
          Fault.kind =
            Fault.Page_fault
              {
                vaddr;
                not_present = f.Pt.not_present;
                write;
                user = ctx.Context.mode = Context.User;
                fetch = false;
              };
          at_rip;
        }
    | Ok tr ->
      let addrs = tr.Pt.pte_addrs in
      let loads = min (Tlb.walk_loads t.dtlb vaddr) (List.length addrs) in
      Tlb.insert t.dtlb vaddr (tlb_fill_entry t tr);
      let loads = pwc_filter_loads t vaddr ~addrs loads in
      let rec drop l n =
        if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop tl (n - 1)
      in
      let charged = drop addrs (List.length addrs - loads) in
      (* the walker's loads are dependent: serialize their latencies *)
      let lat =
        List.fold_left
          (fun acc pa -> acc + Hierarchy.load t.hierarchy ~cycle:(now t + acc) ~paddr:pa)
          0 charged
      in
      Ok (Pt.to_paddr tr vaddr, lat))

(* Read [size] bytes of physical memory that may straddle a page: the
   second page's physical frame is found via a second translation. *)
let read_guest_data t th ~vaddr ~paddr ~size ~at_rip =
  let n = W64.bytes_of_size size in
  let off = paddr land Pm.page_mask in
  if off + n <= Pm.page_size then Ok (Pm.read_sized t.env.Env.mem paddr size, 0)
  else
    (* crossing access: translate the second page too *)
    let first = Pm.page_size - off in
    match
      dtlb_translate t th ~vaddr:(Int64.add vaddr (Int64.of_int first)) ~write:false ~at_rip
    with
    | Error f -> Error f
    | Ok (paddr2, lat2) ->
      let v =
        W64.of_bytes n (fun i ->
            if i < first then Pm.read8 t.env.Env.mem (paddr + i)
            else Pm.read8 t.env.Env.mem (paddr2 + (i - first)))
      in
      Ok (v, lat2 + 1)

(* Does [e]'s committed-order-earlier store overlap the load at
   [paddr,size]? *)
let ranges_overlap a alen b blen = a < b + blen && b < a + alen

(* Search the thread's store queue for stores older than [load]. *)
type sq_result =
  | Sq_none
  | Sq_forward of int64  (* value forwarded from the youngest matching store *)
  | Sq_unknown_addr  (* an older store address is still unresolved *)
  | Sq_partial  (* overlap that cannot be forwarded: wait/replay *)

let store_queue_search t th (load : rob_entry) =
  ignore t;
  let n = W64.bytes_of_size load.uop.Uop.mem_size in
  let result = ref Sq_none in
  Ring.iter th.lsq (fun e ->
      if e.seq < load.seq && Uop.is_store e.uop then begin
        if not e.addr_valid then result := Sq_unknown_addr
        else begin
          let en = W64.bytes_of_size e.uop.Uop.mem_size in
          if ranges_overlap e.paddr en load.paddr n then begin
            if e.paddr = load.paddr && en >= n then
              result := Sq_forward (W64.truncate load.uop.Uop.mem_size e.store_data)
            else result := Sq_partial
          end
        end
      end);
  !result

(* ---------- execute ---------- *)

let thread_of t e = t.threads.(e.thread)

let redirect_fetch t th ~where =
  if !Trace.on then begin
    let target =
      match where with To_rip rip -> rip | Into_block { ib_rip; _ } -> ib_rip
    in
    Trace.emit ~core:t.core_id ~thread:th.tid ~rip:target Trace.Redirect
  end;
  flush_fetch th;
  th.fetch_enabled <- true;
  th.redirect <- Some (now t + t.config.Config.redirect_penalty, where)

(* Resolve a branch at execute: detect misprediction, annul the wrong
   path and steer fetch. The branch itself stays in the ROB and commits
   normally (training happens at commit). *)
let resolve_branch t th (e : rob_entry) (out : Exec.outcome) =
  e.taken <- out.Exec.taken;
  e.target <- out.Exec.target;
  let wrong =
    if out.Exec.taken then (not e.pred_taken) || e.pred_target <> out.Exec.target
    else e.pred_taken
  in
  if wrong then begin
    e.mispredicted <- true;
    if !Trace.on then
      Trace.emit ~core:t.core_id ~thread:e.thread ~uuid:e.uuid
        ~rip:e.uop.Uop.rip ~info:out.Exec.target
        ~tag:(if out.Exec.taken then "taken" else "nt")
        Trace.Mispredict;
    annul_after t th e;
    let where =
      if out.Exec.taken then To_rip out.Exec.target
      else if e.uop.Uop.eom then To_rip e.uop.Uop.next_rip
      else Into_block { ib_rip = e.bb_rip; ib_index = e.bb_index + 1 }
    in
    redirect_fetch t th ~where
  end

(* With load hoisting enabled, a store resolving its address must check
   for younger loads that already executed against the same bytes; such
   loads consumed stale data and the pipeline replays from their
   instruction (the paper's replay-on-misspeculation machinery). *)
let check_hoist_violation t th (store : rob_entry) =
  let sn = W64.bytes_of_size store.uop.Uop.mem_size in
  let victim = ref None in
  Ring.iter th.lsq (fun e ->
      if
        e.seq > store.seq && Uop.is_load e.uop && e.addr_valid
        && (e.state = Done || e.state = Issued)
        && ranges_overlap store.paddr sn e.paddr (W64.bytes_of_size e.uop.Uop.mem_size)
      then
        match !victim with
        | Some (v : rob_entry) when v.seq <= e.seq -> ()
        | _ -> victim := Some e)
      ;
  match !victim with
  | None -> ()
  | Some load ->
    Stats.incr t.c_hoist_violations;
    let restart_rip = load.uop.Uop.rip in
    (* annul from the start of the load's macro-op *)
    let rec find_som i =
      let e = Ring.get th.rob i in
      if e.uop.Uop.som && e.uop.Uop.rip = restart_rip && e.seq <= load.seq then e
      else find_som (i + 1)
    in
    let som_entry = find_som 0 in
    annul_from t th som_entry;
    redirect_fetch t th ~where:(To_rip restart_rip)

(* Bank-conflict tracking: one access per L1D bank per cycle (K8 §5). *)
let bank_conflict t paddr =
  if not t.config.Config.enforce_banking then false
  else begin
    if t.banks_cycle <> now t then begin
      t.banks_cycle <- now t;
      t.banks_used <- []
    end;
    let bank = Ptl_mem.Cache.bank_of (Hierarchy.l1d t.hierarchy) paddr in
    if List.mem bank t.banks_used then true
    else begin
      t.banks_used <- bank :: t.banks_used;
      false
    end
  end

let execute_load t th (e : rob_entry) (out : Exec.outcome) =
  let u = e.uop in
  let at_rip = u.Uop.rip in
  let vaddr = out.Exec.value in
  e.vaddr <- vaddr;
  match dtlb_translate t th ~vaddr ~write:false ~at_rip with
  | Error f ->
    e.state <- Faulted f;
    iq_remove t e
  | Ok (paddr, tlb_lat) -> (
    e.paddr <- paddr;
    e.addr_valid <- true;
    (* x86 LOCKed instructions are full fences: no load (plain or locked)
       may execute while an older locked operation of the same thread is
       still in flight. This both serializes locked sequences (deadlock
       prevention, §2.2) and stops speculative loads from reading stale
       data past an in-flight lock acquisition. *)
    let older_locked_pending =
      Ring.fold th.lsq false (fun acc older ->
          acc
          || (older.seq < e.seq
             && (older.uop.Uop.op = Uop.Ldl || older.uop.Uop.op = Uop.Strel)))
    in
    if older_locked_pending then begin
      Stats.incr t.c_replays;
      if !Trace.on then trace_replay t e "fence";
      e.replays <- e.replays + 1;
      e.retry_cycle <- now t + 2
    end
    else begin
    (* locked loads must own the interlock before reading (§4.4) *)
    if u.Uop.op = Uop.Ldl && not e.locked_acquired then begin
      if Interlock.acquire t.interlock ~cycle:(now t) ~core:t.core_id ~thread:th.tid ~paddr then
        e.locked_acquired <- true
      else begin
        (* replay until the owner releases *)
        Stats.incr t.c_replays;
        if !Trace.on then trace_replay t e "lock-acquire";
        e.replays <- e.replays + 1;
        e.retry_cycle <- now t + 4;
        e.addr_valid <- false
      end
    end;
    if u.Uop.op = Uop.Ldl && not e.locked_acquired then () (* stays Waiting *)
    else if
      u.Uop.op = Uop.Ld
      && Interlock.locked_by_other t.interlock ~core:t.core_id ~thread:th.tid ~paddr
    then begin
      (* another thread interlocked this address: replay until release *)
      Stats.incr t.c_replays;
      if !Trace.on then trace_replay t e "locked-other";
      e.replays <- e.replays + 1;
      e.retry_cycle <- now t + 4
    end
    else begin
      (* A locked load that cannot complete its read this cycle must NOT
         sit on the interlock: a younger speculative iteration could
         otherwise hold the lock while blocked behind the older
         iteration's unresolved store — a self-deadlock. The lock is only
         kept across a *successful* read (deadlock prevention, §2.2). *)
      let replay_release ?(reason = "") delay =
        Stats.incr t.c_replays;
        if !Trace.on then trace_replay t e reason;
        e.replays <- e.replays + 1;
        e.retry_cycle <- now t + delay;
        if e.locked_acquired then begin
          Interlock.release t.interlock ~cycle:(now t) ~core:t.core_id
            ~thread:th.tid ~paddr;
          e.locked_acquired <- false
        end
      in
      match store_queue_search t th e with
      | Sq_unknown_addr when not t.config.Config.load_hoisting ->
        (* K8: no load hoisting — wait for older store addresses *)
        replay_release ~reason:"sq-unknown" 2
      | Sq_partial -> replay_release ~reason:"sq-partial" 2
      | Sq_forward v ->
        e.result <- v;
        e.rflags <- out.Exec.flags;
        e.writeback_cycle <- now t + tlb_lat + 2 (* forwarding latency *);
        e.state <- Issued;
        if !Trace.on then
          Trace.emit ~core:t.core_id ~thread:e.thread ~uuid:e.uuid
            ~rip:u.Uop.rip ~info:e.vaddr ~tag:"sq" Trace.Forward;
        iq_remove t e
      | Sq_none | Sq_unknown_addr -> (
        if bank_conflict t paddr then begin
          Stats.incr t.c_bank_conflicts;
          replay_release ~reason:"bank" 1
        end
        else
          match read_guest_data t th ~vaddr ~paddr ~size:u.Uop.mem_size ~at_rip with
          | Error f ->
            e.state <- Faulted f;
            iq_remove t e
          | Ok (raw, cross_lat) ->
            let lat = Hierarchy.load t.hierarchy ~cycle:(now t) ~paddr in
            e.result <- Exec.finish_load u raw;
            e.rflags <- out.Exec.flags;
            e.writeback_cycle <- now t + tlb_lat + cross_lat + lat;
            e.state <- Issued;
            iq_remove t e)
    end
    end)

let execute_store t th (e : rob_entry) (out : Exec.outcome) ~rc =
  let u = e.uop in
  let at_rip = u.Uop.rip in
  let vaddr = out.Exec.value in
  e.vaddr <- vaddr;
  match dtlb_translate t th ~vaddr ~write:true ~at_rip with
  | Error f ->
    e.state <- Faulted f;
    iq_remove t e
  | Ok (paddr, tlb_lat) ->
    if
      u.Uop.op = Uop.St
      && Interlock.locked_by_other t.interlock ~core:t.core_id ~thread:th.tid ~paddr
    then begin
      Stats.incr t.c_replays;
      if !Trace.on then trace_replay t e "locked-other";
      e.replays <- e.replays + 1;
      e.retry_cycle <- now t + 4
    end
    else if bank_conflict t paddr then begin
      Stats.incr t.c_bank_conflicts;
      Stats.incr t.c_replays;
      if !Trace.on then trace_replay t e "bank";
      e.replays <- e.replays + 1;
      e.retry_cycle <- now t + 4
    end
    else begin
      e.paddr <- paddr;
      e.addr_valid <- true;
      e.store_data <- Exec.store_data u rc;
      e.rflags <- out.Exec.flags;
      e.writeback_cycle <- now t + tlb_lat + 1;
      e.state <- Issued;
      iq_remove t e;
      if t.config.Config.load_hoisting then check_hoist_violation t th e
    end

let execute_entry t (e : rob_entry) =
  let th = thread_of t e in
  let u = e.uop in
  if !Trace.on then
    Trace.emit ~core:t.core_id ~thread:e.thread ~uuid:e.uuid ~rip:u.Uop.rip
      ~slot:e.exec_cluster Trace.Issue;
  let ra = src_value t th (e.src_a, u.Uop.ra) in
  let rb = src_value t th (e.src_b, u.Uop.rb) in
  let rc = src_value t th (e.src_c, u.Uop.rc) in
  let flags = if u.Uop.readflags then flags_value t th e.src_f else 0 in
  match Exec.execute u ~ra ~rb ~rc ~flags with
  | exception Exec.Divide_error ->
    e.state <- Faulted { Fault.kind = Fault.Divide_error; at_rip = u.Uop.rip };
    iq_remove t e
  | out ->
    if Uop.is_load u then execute_load t th e out
    else if Uop.is_store u then execute_store t th e out ~rc
    else begin
      e.result <- out.Exec.value;
      e.rflags <- out.Exec.flags;
      e.writeback_cycle <- now t + Config.uop_latency u;
      e.state <- Issued;
      iq_remove t e;
      if Uop.is_branch u then resolve_branch t th e out
    end

(* Issue: per cluster, select up to issue_width ready entries,
   oldest-first ("collapsing" queue with broadcast wakeup modeled as a
   readiness scan). *)
let entry_sources_ready t cluster (e : rob_entry) =
  let ready src =
    match src with
    | Arch -> true
    | Phys p ->
      Physreg.is_written t.prf p
      && now t >= Physreg.visible_cycle t.prf p ~cluster
           ~forward_delay:(List.nth t.config.Config.clusters cluster).Config.forward_delay
  in
  ready e.src_a && ready e.src_b && ready e.src_c
  && ((not e.uop.Uop.readflags) || ready e.src_f)

let issue t =
  List.iteri
    (fun ci (cl : Config.cluster) ->
      let candidates = ref [] in
      Array.iter
        (fun slot ->
          match slot with
          | Some { slot_rob = e }
            when e.state = Waiting && now t >= e.retry_cycle
                 && entry_sources_ready t ci e ->
            candidates := e :: !candidates
          | _ -> ())
        t.iqs.(ci);
      (* Oldest-first with replay deprioritization and a starvation bound.
         Actively-replaying uops (retry stamp near now) yield to everyone
         else: interleaved retry phases would otherwise own a narrow
         cluster's only slot forever. An entry whose last replay is old
         (it has been ready but unselected for a while) is promoted back
         to normal priority, so nothing starves indefinitely. *)
      let klass e =
        if e.replays = 0 then 0
        else if now t - e.retry_cycle > 64 then 0
        else 1
      in
      let ordered =
        List.sort
          (fun a b -> compare (klass a, a.seq) (klass b, b.seq))
          !candidates
      in
      let rec take n = function
        | [] -> ()
        | e :: rest ->
          if n > 0 then begin
            (* the entry may have been annulled by an earlier branch
               resolution in this same cycle: annulment removed it from
               the IQ, so re-check *)
            if e.in_iq = ci && e.state = Waiting then execute_entry t e;
            take (n - 1) rest
          end
      in
      take cl.Config.issue_width ordered)
    t.config.Config.clusters

(* ---------- writeback ---------- *)

let writeback t =
  Array.iter
    (fun th ->
      Ring.iter th.rob (fun e ->
          if e.state = Issued && e.writeback_cycle <= now t then begin
            if e.dest >= 0 then
              Physreg.write t.prf e.dest ~value:e.result ~flags:e.rflags
                ~cycle:e.writeback_cycle ~cluster:e.exec_cluster;
            if e.dest_flags >= 0 then
              Physreg.write t.prf e.dest_flags ~value:0L ~flags:e.rflags
                ~cycle:e.writeback_cycle ~cluster:e.exec_cluster;
            e.state <- Done;
            if !Trace.on then trace_uop t e Trace.Writeback
          end))
    t.threads

(* ---------- commit ---------- *)

module Flags = Ptl_isa.Flags

(* Scan the macro-op at the ROB head. Returns the inclusive index of the
   last entry, or the reason it cannot commit yet. *)
type macro_scan =
  | Macro_ready of int
  | Macro_incomplete
  | Macro_fault of int * Fault.t  (* first faulting entry *)

let scan_head_macro th =
  let n = Ring.length th.rob in
  let rec go i =
    if i >= n then Macro_incomplete
    else begin
      let e = Ring.get th.rob i in
      match e.state with
      | Faulted f -> Macro_fault (i, f)
      | Waiting | Issued -> Macro_incomplete
      | Done ->
        if Uop.is_branch e.uop && e.taken then Macro_ready i
        else if e.uop.Uop.eom then Macro_ready i
        else go (i + 1)
    end
  in
  go 0

let release_old t entry =
  (match entry.old_rd with
  | Some (_, Phys p) -> Physreg.release t.prf p
  | Some (_, Arch) | None -> ());
  match entry.old_flags with
  | Some (Phys p) -> Physreg.release t.prf p
  | Some Arch | None -> ()


(* Commit one store to guest memory, with timing charge and SMC check.
   Returns true if a self-modifying-code flush is required. *)
let commit_store t th (e : rob_entry) =
  let ctx = th.ctx in
  Vmem.write t.env.Env.vmem ctx ~vaddr:e.vaddr ~size:e.uop.Uop.mem_size
    ~value:e.store_data ~at_rip:e.uop.Uop.rip;
  ignore (Hierarchy.store t.hierarchy ~cycle:(now t) ~paddr:e.paddr);
  if e.uop.Uop.op = Uop.Strel then
    Interlock.release t.interlock ~cycle:(now t) ~core:t.core_id ~thread:th.tid
      ~paddr:e.paddr;
  Bbcache.store_committed t.bbcache (Pm.mfn_of_paddr e.paddr)

let train_branch t (e : rob_entry) =
  Stats.incr t.c_branches;
  if e.mispredicted then Stats.incr t.c_mispredicts;
  match e.uop.Uop.op with
  | Uop.Brc _ | Uop.Brnz | Uop.Brz ->
    Stats.incr t.c_cond_branches;
    Predictor.update_cond t.bpred ~rip:e.uop.Uop.rip ~taken:e.taken
      ~mispredicted:e.mispredicted
  | Uop.Jmpr ->
    if not e.uop.Uop.hint_ret then
      Predictor.update_target t.bpred ~rip:e.uop.Uop.rip ~target:e.target
  | Uop.Bru | _ -> ()

(* Deliver a fault precisely: nothing of the faulting instruction commits. *)
let commit_fault t th (f : Fault.t) =
  Stats.incr t.c_faults;
  if !Trace.on then
    Trace.emit ~core:t.core_id ~thread:th.tid ~rip:f.Fault.at_rip ~tag:"fault"
      Trace.Flush;
  annul_youngest t th (Ring.length th.rob);
  reset_rat t th;
  flush_fetch th;
  Interlock.release_all t.interlock ~cycle:(now t) ~core:t.core_id ~thread:th.tid;
  Assists.deliver_fault t.env th.ctx f;
  th.fetch_enabled <- true;
  th.redirect <-
    Some (now t + t.config.Config.redirect_penalty, To_rip th.ctx.Context.rip)

let commit_thread t th =
  let budget = ref t.config.Config.commit_width in
  let continue_ = ref true in
  while !continue_ && !budget > 0 && not (Ring.is_empty th.rob) do
    match scan_head_macro th with
    | Macro_incomplete -> continue_ := false
    | Macro_fault (i, f) ->
      (* wait until everything before the faulting uop is done, so an
         older fault can still win *)
      let all_done_before =
        let rec chk j = j >= i || (Ring.get th.rob j).state = Done && chk (j + 1) in
        chk 0
      in
      if all_done_before then begin
        commit_fault t th f;
        th.last_progress <- now t
      end;
      continue_ := false
    | Macro_ready last ->
      let ctx = th.ctx in
      let nuops = last + 1 in
      (* memory-ordering gate: a plain store to an address interlocked by
         another thread must wait for the release before committing *)
      let blocked_by_interlock =
        let rec chk i =
          if i > last then false
          else begin
            let e = Ring.get th.rob i in
            (e.uop.Uop.op = Uop.St
            && Interlock.locked_by_other t.interlock ~core:t.core_id
                 ~thread:th.tid ~paddr:e.paddr)
            || chk (i + 1)
          end
        in
        chk 0
      in
      if blocked_by_interlock then continue_ := false
      else begin
      let smc_flush = ref false in
      let assist_ran = ref false in
      let assist_fault = ref None in
      (try
         for i = 0 to last do
           let e = Ring.get th.rob i in
           Stats.incr t.c_uops;
           if !Trace.on then trace_uop t e Trace.Commit_uop;
           (match e.uop.Uop.op with
           | Uop.Ldl | Uop.Strel ->
             Interlock.trace t.interlock "%d: commit %s seq=%d th=%d acq=%b" (now t)
               (Uop.opcode_name e.uop.Uop.op) e.seq e.thread e.locked_acquired
           | _ -> ());
           (match e.uop.Uop.op with
           | Uop.Assist a ->
             Stats.incr t.c_assists;
             assist_ran := true;
             Assists.run t.env ctx e.uop a
           | _ ->
             if e.dest >= 0 && e.uop.Uop.rd <> Uop.reg_none then
               Context.set_reg ctx e.uop.Uop.rd e.result;
             if e.uop.Uop.setflags <> 0 then
               ctx.Context.flags <-
                 ctx.Context.flags land lnot Flags.cc_mask
                 lor (e.rflags land Flags.cc_mask);
             if Uop.is_store e.uop then begin
               Stats.incr t.c_stores;
               if commit_store t th e then smc_flush := true
             end;
             if Uop.is_load e.uop then Stats.incr t.c_loads;
             if Uop.is_branch e.uop then train_branch t e);
           release_old t e
         done
       with Fault.Guest_fault f ->
         (* an assist faulted (e.g. privileged op in user mode) *)
         assist_fault := Some f);
      (match !assist_fault with
      | Some f ->
        (* the assist's own instruction must not complete: deliver *)
        commit_fault t th f;
        th.last_progress <- now t;
        continue_ := false
      | None ->
        (* architectural RIP update *)
        let last_e = Ring.get th.rob last in
        if not !assist_ran then
          ctx.Context.rip <-
            (if Uop.is_branch last_e.uop && last_e.taken then last_e.target
             else last_e.uop.Uop.next_rip);
        (* remove the macro from ROB and LSQ *)
        let last_seq = last_e.seq in
        for _ = 0 to last do
          ignore (Ring.pop th.rob)
        done;
        let rec pop_lsq () =
          match Ring.peek th.lsq with
          | Some e when e.seq <= last_seq ->
            ignore (Ring.pop th.lsq);
            pop_lsq ()
          | _ -> ()
        in
        pop_lsq ();
        Stats.incr t.c_insns;
        if !Trace.on then
          Trace.emit ~core:t.core_id ~thread:th.tid ~uuid:last_e.uuid
            ~rip:last_e.uop.Uop.rip ~slot:nuops ~tag:t.prefix Trace.Commit;
        ctx.Context.insns_committed <- ctx.Context.insns_committed + 1;
        if t.config.Config.count_uop_triads then
          Stats.add t.c_triads ((nuops + 2) / 3);
        budget := !budget - nuops;
        th.last_progress <- now t;
        (* post-macro events, in priority order *)
        if !assist_ran then begin
          flush_thread t th ~rip:ctx.Context.rip;
          continue_ := false
        end
        else if !smc_flush then begin
          Stats.incr t.c_smc_flushes;
          flush_thread t th ~rip:ctx.Context.rip;
          continue_ := false
        end
        else if Context.interruptible ctx then begin
          Stats.incr t.c_irqs;
          ignore (Assists.try_deliver_irq t.env ctx);
          flush_thread t th ~rip:ctx.Context.rip;
          continue_ := false
        end;
        (* CR3 / invlpg effects *)
        if ctx.Context.tlb_generation <> th.tlb_gen_seen then begin
          th.tlb_gen_seen <- ctx.Context.tlb_generation;
          Tlb.flush t.dtlb;
          Tlb.flush t.itlb;
          Option.iter Pwc.flush t.pwc
        end)
      end
  done

(* ---------- the cycle loop ---------- *)

type status = Running | All_idle

let count_mode_cycles t =
  let ctx = t.threads.(0).ctx in
  if not ctx.Context.running then Stats.incr t.c_idle_cycles
  else if Context.is_kernel ctx then Stats.incr t.c_kernel_cycles
  else Stats.incr t.c_user_cycles

let thread_idle th =
  (not th.ctx.Context.running) && Ring.is_empty th.rob && Ring.is_empty th.fetchq

(** Advance the core by one cycle (the driver owns env.cycle). *)
let step t =
  if !Trace.on then Trace.set_cycle (now t);
  Stats.incr t.c_cycles;
  count_mode_cycles t;
  Array.iter (fun th -> commit_thread t th) t.threads;
  writeback t;
  issue t;
  Array.iter (fun th -> rename_thread t th) t.threads;
  (* SMT fetch policy: one thread fetches per cycle, round-robin *)
  if Array.length t.threads = 1 then fetch_thread t t.threads.(0)
  else begin
    let n = Array.length t.threads in
    let tried = ref 0 in
    let fetched = ref false in
    while (not !fetched) && !tried < n do
      let th = t.threads.((t.fetch_round + !tried) mod n) in
      if th.ctx.Context.running || th.redirect <> None then begin
        fetch_thread t th;
        fetched := true;
        t.fetch_round <- (t.fetch_round + !tried + 1) mod n
      end;
      incr tried
    done
  end;
  (* idle VCPUs waiting on interrupts *)
  Array.iter
    (fun th ->
      if thread_idle th && Context.interruptible th.ctx then begin
        Stats.incr t.c_irqs;
        ignore (Assists.try_deliver_irq t.env th.ctx);
        th.fetch_enabled <- true;
        th.redirect <- Some (now t + 1, To_rip th.ctx.Context.rip);
        th.last_progress <- now t
      end)
    t.threads;
  (* watchdog: a stuck pipeline is a simulator bug; fail loudly with a
     typed fault the guard supervisor / CLI driver can render *)
  Array.iter
    (fun th ->
      if
        (not (thread_idle th))
        && now t - th.last_progress > t.config.Config.watchdog_cycles
      then
        Sim_failure.fail ~stats:t.env.Env.stats
          ~subsystem:(t.prefix ^ ".watchdog")
          ~kind:Sim_failure.Lockup ~cycle:(now t) ~rip:th.ctx.Context.rip
          (Printf.sprintf "core %d thread %d: no commit since cycle %d"
             t.core_id th.tid th.last_progress))
    t.threads

let all_idle t = Array.for_all (fun th -> thread_idle th && not (Context.interruptible th.ctx)) t.threads

(** Standalone run loop for a single core: advances env.cycle itself.
    Stops when [max_cycles] elapse or every thread is idle with no
    pending interrupt (deadlock-free idle). *)
let run t ~max_cycles =
  let start = now t in
  let stop = ref false in
  while (not !stop) && now t - start < max_cycles do
    if all_idle t then stop := true
    else begin
      step t;
      t.env.Env.cycle <- t.env.Env.cycle + 1
    end
  done;
  now t - start

let insns t = Stats.value t.c_insns
let cycles t = Stats.value t.c_cycles

(* ---------- guard inspection hooks ----------

   Small read-only views of the pipeline structures for the lib/guard
   invariant registry. They return plain data (or a violation string) so
   the guard does not have to re-derive pipeline semantics. All run
   between cycles, when the structures are consistent. *)

(* Allocation-free age scan: first out-of-order adjacent (prev, seq)
   pair in a ring of entries, or None. The guard sweep runs these every
   few dozen cycles, so they must not allocate. *)
let first_unordered ring =
  let prev = ref min_int and bad = ref None in
  Ring.iter ring (fun e ->
      if !bad = None && e.seq <= !prev then bad := Some (!prev, e.seq);
      prev := e.seq);
  !bad

(** ROB age ordering: per-thread sequence numbers must be strictly
    increasing oldest-to-youngest. Returns a violation, or None. *)
let guard_rob_order_check t =
  let bad = ref None in
  Array.iteri
    (fun tid th ->
      if !bad = None then
        match first_unordered th.rob with
        | Some (a, b) ->
          bad :=
            Some
              (Printf.sprintf "thread %d: seq %d precedes %d (age order broken)"
                 tid a b)
        | None -> ())
    t.threads;
  !bad

(** LSQ consistency: age-ordered, memory uops only, and every entry
    still present in its thread's ROB (a dangling LSQ entry survives its
    own annulment). Returns a violation, or None. *)
let guard_lsq_check t =
  let bad = ref None in
  Array.iteri
    (fun tid th ->
      if !bad = None then begin
        (match first_unordered th.lsq with
        | Some (a, b) ->
          bad := Some (Printf.sprintf "thread %d: seq %d precedes %d" tid a b)
        | None -> ());
        if !bad = None then begin
          (* membership via merge walk: both rings are age-ordered (just
             verified), so the LSQ must be a subsequence of the ROB —
             O(|ROB| + |LSQ|) instead of a quadratic scan *)
          let nr = Ring.length th.rob and nl = Ring.length th.lsq in
          let ri = ref 0 in
          (try
             for li = 0 to nl - 1 do
               let e = Ring.get th.lsq li in
               if not (Uop.is_mem e.uop) then begin
                 bad :=
                   Some
                     (Printf.sprintf "thread %d: LSQ seq %d is not a memory uop"
                        tid e.seq);
                 raise Exit
               end;
               while !ri < nr && not (Ring.get th.rob !ri == e) do
                 incr ri
               done;
               if !ri >= nr then begin
                 bad :=
                   Some
                     (Printf.sprintf "thread %d: LSQ seq %d has no ROB entry"
                        tid e.seq);
                 raise Exit
               end;
               incr ri
             done
           with Exit -> ())
        end
      end)
    t.threads;
  !bad

(** Visit every physical register the pipeline currently references:
    RAT mappings, in-flight destinations, and the old mappings held for
    commit-time release (sources are always a subset of these but are
    included for the dangling-reference check). *)
let guard_iter_referenced t f =
  let add i = if i >= 0 then f i in
  let add_rat = function Phys p -> add p | Arch -> () in
  Array.iter
    (fun th ->
      Array.iter add_rat th.rat;
      Ring.iter th.rob (fun e ->
          add e.dest;
          add e.dest_flags;
          (match e.old_rd with Some (_, m) -> add_rat m | None -> ());
          (match e.old_flags with Some m -> add_rat m | None -> ());
          add_rat e.src_a;
          add_rat e.src_b;
          add_rat e.src_c;
          add_rat e.src_f))
    t.threads

(** Issue-queue slot conservation, both directions: every occupied slot
    holds a Waiting entry that claims this cluster; every ROB entry
    claiming a queue slot occupies exactly one; and per-cluster occupied
    slots equal per-cluster ROB claimers (so a stale annulled entry
    cannot hide in a slot — the counts would disagree). Returns a
    violation description, or None when consistent. *)
let guard_iq_check t =
  let violation = ref None in
  let note fmt = Printf.ksprintf (fun s -> if !violation = None then violation := Some s) fmt in
  let nclusters = Array.length t.iqs in
  let occupied = Array.make nclusters 0 in
  let claimed = Array.make nclusters 0 in
  Array.iteri
    (fun ci q ->
      Array.iter
        (fun slot ->
          match slot with
          | None -> ()
          | Some { slot_rob = e } ->
            occupied.(ci) <- occupied.(ci) + 1;
            if e.in_iq <> ci then
              note "iq[%d]: slot entry seq %d claims cluster %d" ci e.seq e.in_iq
            else if e.state <> Waiting then
              note "iq[%d]: slot entry seq %d not in Waiting state" ci e.seq)
        q)
    t.iqs;
  Array.iter
    (fun th ->
      Ring.iter th.rob (fun e ->
          if e.in_iq >= 0 then begin
            if e.in_iq >= nclusters then
              note "rob seq %d: in_iq=%d out of range" e.seq e.in_iq
            else begin
              claimed.(e.in_iq) <- claimed.(e.in_iq) + 1;
              let occurrences =
                Array.fold_left
                  (fun a slot ->
                    match slot with
                    | Some { slot_rob } when slot_rob == e -> a + 1
                    | _ -> a)
                  0 t.iqs.(e.in_iq)
              in
              if occurrences <> 1 then
                note "rob seq %d: claims iq[%d] but occupies %d slots" e.seq
                  e.in_iq occurrences
            end
          end))
    t.threads;
  if !violation = None then
    for ci = 0 to nclusters - 1 do
      if occupied.(ci) <> claimed.(ci) then
        note "iq[%d]: %d slots occupied but %d ROB entries claim one" ci
          occupied.(ci) claimed.(ci)
    done;
  !violation

(** Locks still held with every thread idle are leaked interlocks. *)
let guard_interlock_check t =
  if all_idle t && Interlock.count t.interlock > 0 then
    Some
      (Printf.sprintf "%d interlock(s) held with all threads idle"
         (Interlock.count t.interlock))
  else None
