(** Seeded, deterministic fault injection for the fleet's self-healing
    machinery. Production code is instrumented with named {e points}
    ([Chaos.fire "work.done"]); a test (or [optlsim work --chaos])
    arms a {e schedule} of rules, each saying "the Nth time execution
    passes point P, perform this fault". Nothing is random: the same
    schedule against the same workload exercises the same fault at the
    same protocol step every run, so every cell of the fault matrix is
    a reproducible regression test rather than a flake.

    Instrumented points (and the faults that make sense at each):

    {v
    work.hello       worker -> server greeting        kill/drop/delay/truncate
    work.lease       worker lease request             kill/drop/delay/truncate
    work.replay      just before an interval replays  kill/delay
    work.done        worker result delivery           kill/drop/delay/truncate
    work.heartbeat   worker lease renewal             kill/drop/delay/truncate
    store.write      base/interval/manifest records   kill/fail/flip/truncate
    store.result.write  result-cache entries          kill/fail/flip/truncate
    v}

    The layer is process-global and mutex-guarded: a schedule armed on
    the main domain fires from worker domains too, and hit counting
    stays exact under parallel replay. When nothing is armed, [fire]
    is a single mutex-free load — the production cost is one branch. *)

type action =
  | Kill  (** raise {!Killed}: the process dies at this point *)
  | Drop  (** the operation silently does not happen (message lost) *)
  | Delay of float  (** sleep this long, then proceed (slow worker) *)
  | Truncate  (** emit a torn prefix of the data, then die *)
  | Flip_bit of int  (** corrupt this payload bit, then proceed *)
  | Fail  (** the operation reports failure (e.g. an I/O error) *)

type rule = {
  r_point : string;  (** instrumentation point name *)
  r_hit : int;  (** fire on the Nth pass through the point (1-based) *)
  r_action : action;
}

(** The injected process death. Deliberately NOT an exception any
    production path catches: it must propagate out like a real crash
    (only a chaos harness catches it, standing in for the kernel). *)
exception Killed of string

let armed = ref false
let rules : rule list ref = ref []
let hits : (string, int) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

(** Arm a fault schedule (replacing any previous one, counters reset). *)
let arm rs =
  Mutex.lock lock;
  rules := rs;
  Hashtbl.reset hits;
  armed := rs <> [];
  Mutex.unlock lock

let disarm () = arm []

(** Did execution reach [point], and if so which fault (if any) is due
    there this time? Counts every pass, armed rules match on the count. *)
let fire point =
  if not !armed then None
  else begin
    Mutex.lock lock;
    let n = 1 + (try Hashtbl.find hits point with Not_found -> 0) in
    Hashtbl.replace hits point n;
    let hit =
      List.find_opt (fun r -> r.r_point = point && r.r_hit = n) !rules
    in
    Mutex.unlock lock;
    Option.map (fun r -> r.r_action) hit
  end

(** Passes recorded through [point] since the schedule was armed. *)
let hit_count point =
  Mutex.lock lock;
  let n = try Hashtbl.find hits point with Not_found -> 0 in
  Mutex.unlock lock;
  n

(* ---------------------------------------------------------------- *)
(* Schedule specs                                                    *)
(* ---------------------------------------------------------------- *)

let action_to_string = function
  | Kill -> "kill"
  | Drop -> "drop"
  | Delay s -> Printf.sprintf "delay=%g" s
  | Truncate -> "truncate"
  | Flip_bit b -> Printf.sprintf "flip=%d" b
  | Fail -> "fail"

let rule_to_string r =
  Printf.sprintf "%s@%s:%d" (action_to_string r.r_action) r.r_point r.r_hit

let to_string rs = String.concat ";" (List.map rule_to_string rs)

(** Parse a fault schedule: rules [ACTION@POINT[:HIT]] joined by [';'],
    where ACTION is [kill], [drop], [delay=SECONDS], [truncate],
    [flip=BIT] or [fail], and HIT (default 1) is which pass through the
    point fires the fault — e.g. ["kill@work.done:2;drop@work.lease"]. *)
let parse spec : (rule list, string) result =
  let parse_action s =
    match String.index_opt s '=' with
    | None -> (
      match s with
      | "kill" -> Ok Kill
      | "drop" -> Ok Drop
      | "truncate" -> Ok Truncate
      | "fail" -> Ok Fail
      | _ -> Error (Printf.sprintf "unknown chaos action %S" s))
    | Some i -> (
      let name = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match name with
      | "delay" -> (
        match float_of_string_opt arg with
        | Some f when f >= 0.0 -> Ok (Delay f)
        | _ -> Error (Printf.sprintf "bad delay %S (want seconds)" arg))
      | "flip" -> (
        match int_of_string_opt arg with
        | Some b when b >= 0 -> Ok (Flip_bit b)
        | _ -> Error (Printf.sprintf "bad flip bit %S" arg))
      | _ -> Error (Printf.sprintf "unknown chaos action %S" name))
  in
  let parse_rule s =
    match String.index_opt s '@' with
    | None ->
      Error
        (Printf.sprintf "chaos rule %S has no '@' (want ACTION@POINT[:HIT])" s)
    | Some i -> (
      let action = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let point, hit =
        match String.rindex_opt rest ':' with
        | None -> (rest, Ok 1)
        | Some j -> (
          let p = String.sub rest 0 j in
          let h = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt h with
          | Some n when n >= 1 -> (p, Ok n)
          | _ ->
            (p, Error (Printf.sprintf "bad hit count %S (want >= 1)" h)))
      in
      match (parse_action action, hit) with
      | Error e, _ | _, Error e -> Error e
      | Ok a, Ok h ->
        if point = "" then Error (Printf.sprintf "chaos rule %S names no point" s)
        else Ok { r_point = point; r_hit = h; r_action = a })
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
      match parse_rule s with
      | Ok r -> go (r :: acc) rest
      | Error _ as e -> e)
  in
  go []
    (String.split_on_char ';' spec |> List.map String.trim
    |> List.filter (fun s -> s <> ""))
