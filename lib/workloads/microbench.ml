(** Microbenchmark guest programs — the compute-bound kernels used by the
    ablation benches and examples, each a generator producing a bare-metal
    image that ends in [hlt] with its result in rax.

    - {!pointer_chase}: dependent loads through a shuffled permutation —
      measures load-to-use and cache/TLB latency (every load depends on
      the previous one, so IPC collapses to memory latency).
    - {!stream}: linear read-modify-write sweeps — bandwidth-shaped,
      prefetcher-friendly.
    - {!matmul}: naive dense SSE-double matrix multiply — FP pipeline and
      cache blocking behaviour.
    - {!qsort}: recursive quicksort over 64-bit keys — call/return (RAS)
      and hard-to-predict compare branches. *)

open Ptl_util
module G = Gasm
module Insn = Ptl_isa.Insn
module Flags = Ptl_isa.Flags

let heap = Ptl_arch.Machine.heap_base

(** Build the chase permutation host-side (a single cycle through all
    slots, deterministic). Returns the (vaddr, bytes) blob to preload. *)
let chase_table ~slots ~seed =
  let rng = Rng.create seed in
  let order = Array.init slots (fun i -> i) in
  for i = slots - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  (* next.(order[i]) = order[i+1]: one big cycle *)
  let next = Array.make slots 0 in
  for i = 0 to slots - 1 do
    next.(order.(i)) <- order.((i + 1) mod slots)
  done;
  let b = Buffer.create (slots * 8) in
  Array.iter
    (fun n ->
      let target = Int64.add heap (Int64.of_int (n * 8)) in
      for k = 0 to 7 do
        Buffer.add_char b (Char.chr (W64.byte target k))
      done)
    next;
  (heap, Buffer.contents b)

(** Pointer chase: [steps] dependent loads through [slots] 8-byte cells.
    rax ends holding the final pointer (consumed so it cannot be dead). *)
let pointer_chase ~slots ~steps =
  ignore slots;
  let g = G.create ~base:0x40_0000L () in
  G.li g G.rax heap;
  G.lii g G.rcx steps;
  G.label g "top";
  G.ins g (Insn.Mov (W64.B8, Insn.Reg G.rax, Insn.RM (Insn.Mem (Insn.mem_bd G.rax 0L))));
  G.dec g G.rcx;
  G.jne g "top";
  G.ins g Insn.Hlt;
  G.assemble g

(** Stream: [passes] read-modify-write sweeps over [bytes] of memory in
    8-byte strides. rax ends holding the running sum. *)
let stream ~bytes ~passes =
  let g = G.create ~base:0x40_0000L () in
  G.xor g G.rax G.rax;
  G.lii g G.r12 passes;
  G.label g "pass";
  G.li g G.rsi heap;
  G.lii g G.rcx (bytes / 8);
  G.label g "top";
  G.ld g G.rdx ~base:G.rsi ();
  G.addi g G.rdx 3;
  G.st g ~base:G.rsi G.rdx ();
  G.add g G.rax G.rdx;
  G.addi g G.rsi 8;
  G.dec g G.rcx;
  G.jne g "top";
  G.dec g G.r12;
  G.jne g "pass";
  G.ins g Insn.Hlt;
  G.assemble g

(** Naive [n]x[n] double matrix multiply C = A*B over SSE scalar ops.
    A at heap, B at heap + n*n*8, C after that. The matrices must be
    preloaded (or zero); rax returns the address of C. *)
let matmul ~n =
  let g = G.create ~base:0x40_0000L () in
  let a_base = heap in
  let b_base = Int64.add heap (Int64.of_int (n * n * 8)) in
  let c_base = Int64.add heap (Int64.of_int (2 * n * n * 8)) in
  (* r12 = i, r13 = j, r14 = k *)
  G.xor g G.r12 G.r12;
  G.label g "i_loop";
  G.xor g G.r13 G.r13;
  G.label g "j_loop";
  (* xmm0 = 0 accumulator *)
  G.xor g G.rax G.rax;
  G.ins g (Insn.Cvtsi2sd (0, G.rax));
  G.xor g G.r14 G.r14;
  G.label g "k_loop";
  (* xmm1 = A[i*n + k] *)
  G.mov g G.rax G.r12;
  G.imuli g G.rax n;
  G.add g G.rax G.r14;
  G.shl g G.rax 3;
  G.li g G.rdx a_base;
  G.add g G.rdx G.rax;
  G.ins g (Insn.SseLoad (1, Insn.mem_bd G.rdx 0L));
  (* xmm2 = B[k*n + j] *)
  G.mov g G.rax G.r14;
  G.imuli g G.rax n;
  G.add g G.rax G.r13;
  G.shl g G.rax 3;
  G.li g G.rdx b_base;
  G.add g G.rdx G.rax;
  G.ins g (Insn.SseLoad (2, Insn.mem_bd G.rdx 0L));
  (* xmm0 += xmm1 * xmm2 *)
  G.ins g (Insn.Sse (Insn.Mulsd, 1, 2));
  G.ins g (Insn.Sse (Insn.Addsd, 0, 1));
  G.inc g G.r14;
  G.cmpi g G.r14 n;
  G.jne g "k_loop";
  (* C[i*n + j] = xmm0 *)
  G.mov g G.rax G.r12;
  G.imuli g G.rax n;
  G.add g G.rax G.r13;
  G.shl g G.rax 3;
  G.li g G.rdx c_base;
  G.add g G.rdx G.rax;
  G.ins g (Insn.SseStore (Insn.mem_bd G.rdx 0L, 0));
  G.inc g G.r13;
  G.cmpi g G.r13 n;
  G.jne g "j_loop";
  G.inc g G.r12;
  G.cmpi g G.r12 n;
  G.jne g "i_loop";
  G.li g G.rax c_base;
  G.ins g Insn.Hlt;
  G.assemble g

(** Recursive quicksort of [n] 64-bit keys at the heap base (Hoare
    partition, last element pivot). Exercises deep call/return chains and
    data-dependent branches. *)
let qsort ~n =
  let g = G.create ~base:0x40_0000L () in
  G.jmp g "main";

  (* qsort(rdi = lo index, rsi = hi index) on the array at rbp *)
  G.label g "qsort";
  G.cmp g G.rdi G.rsi;
  G.jcc g Flags.GE "qs_ret";
  List.iter (G.push g) [ G.r12; G.r13; G.r14; G.r15 ];
  G.mov g G.r12 G.rdi (* lo *);
  G.mov g G.r13 G.rsi (* hi *);
  (* pivot = a[hi] *)
  G.ldx g G.r14 ~base:G.rbp ~index:G.r13 () (* pivot *);
  G.mov g G.r15 G.r12 (* store index *);
  G.mov g G.rcx G.r12 (* scan *);
  G.label g "qs_scan";
  G.cmp g G.rcx G.r13;
  G.jcc g Flags.AE "qs_scan_done";
  G.ldx g G.rax ~base:G.rbp ~index:G.rcx ();
  (* keys are unsigned 64-bit *)
  G.cmp g G.rax G.r14;
  G.jcc g Flags.AE "qs_no_swap";
  (* swap a[rcx] <-> a[r15] *)
  G.ldx g G.rdx ~base:G.rbp ~index:G.r15 ();
  G.stx g ~base:G.rbp ~index:G.r15 G.rax ();
  G.stx g ~base:G.rbp ~index:G.rcx G.rdx ();
  G.inc g G.r15;
  G.label g "qs_no_swap";
  G.inc g G.rcx;
  G.jmp g "qs_scan";
  G.label g "qs_scan_done";
  (* swap pivot into place: a[r15] <-> a[hi] *)
  G.ldx g G.rax ~base:G.rbp ~index:G.r15 ();
  G.stx g ~base:G.rbp ~index:G.r15 G.r14 ();
  G.stx g ~base:G.rbp ~index:G.r13 G.rax ();
  (* recurse left: qsort(lo, r15-1) — guard r15 = 0 *)
  G.cmpi g G.r15 0;
  G.je g "qs_left_done";
  G.mov g G.rdi G.r12;
  G.mov g G.rsi G.r15;
  G.dec g G.rsi;
  G.call g "qsort";
  G.label g "qs_left_done";
  (* recurse right: qsort(r15+1, hi) *)
  G.mov g G.rdi G.r15;
  G.inc g G.rdi;
  G.mov g G.rsi G.r13;
  G.call g "qsort";
  List.iter (G.pop g) [ G.r15; G.r14; G.r13; G.r12 ];
  G.label g "qs_ret";
  G.ret g;

  G.label g "main";
  G.li g G.rbp heap;
  G.lii g G.rdi 0;
  G.lii g G.rsi (n - 1);
  G.call g "qsort";
  (* verify sortedness: rax = number of inversions (0 when correct) *)
  G.xor g G.rax G.rax;
  G.lii g G.rcx 0;
  G.label g "chk";
  G.mov g G.rdx G.rcx;
  G.inc g G.rdx;
  G.cmpi g G.rdx n;
  G.jcc g Flags.AE "chk_done";
  G.ldx g G.r8 ~base:G.rbp ~index:G.rcx ();
  G.ldx g G.r9 ~base:G.rbp ~index:G.rdx ();
  G.cmp g G.r8 G.r9;
  G.jcc g Flags.BE "chk_ok";
  G.inc g G.rax;
  G.label g "chk_ok";
  G.inc g G.rcx;
  G.jmp g "chk";
  G.label g "chk_done";
  G.ins g Insn.Hlt;
  G.assemble g

(** Random key blob for qsort (preload at the heap base). *)
let qsort_keys ~n ~seed =
  let rng = Rng.create seed in
  let b = Buffer.create (n * 8) in
  for _ = 1 to n do
    let v = Rng.next64 rng in
    for k = 0 to 7 do
      Buffer.add_char b (Char.chr (W64.byte v k))
    done
  done;
  (heap, Buffer.contents b)

(** GUPS (giga-updates-per-second): [steps] random read-modify-writes over
    a table of [slots] 8-byte cells at the heap base ([slots] must be a
    power of two). Each update hits an LCG-random slot, so with a table
    much larger than TLB reach almost every access is a DTLB miss — the
    canonical huge-page / page-walk-cache stress. rax ends holding the
    last value stored (consumed so the updates cannot be dead).

    [user] builds a minios user-mode image instead (for demand-paging
    runs): the table sits at [heap] — pass [Abi.user_heap_base] — and the
    program ends in an exit syscall rather than [hlt]. *)
let gups ?(base = 0x40_0000L) ?(heap = heap) ?(user = false) ~slots ~steps () =
  if slots land (slots - 1) <> 0 then invalid_arg "gups: slots not a power of two";
  let g = G.create ~base () in
  G.li g G.r8 1L (* LCG state *);
  G.li g G.r9 2862933555777941757L;
  G.li g G.r10 3037000493L;
  G.li g G.r11 heap;
  G.lii g G.rcx steps;
  G.label g "top";
  G.imul g G.r8 G.r9;
  G.add g G.r8 G.r10;
  (* idx = (state >> 11) & (slots - 1), scaled to an 8-byte cell *)
  G.mov g G.rax G.r8;
  G.shr g G.rax 11;
  G.andi g G.rax (slots - 1);
  G.shl g G.rax 3;
  G.add g G.rax G.r11;
  G.ld g G.rdx ~base:G.rax ();
  G.xor g G.rdx G.r8;
  G.st g ~base:G.rax G.rdx ();
  G.dec g G.rcx;
  G.jne g "top";
  G.mov g G.rax G.rdx;
  if user then G.sys_exit g 0 else G.ins g Insn.Hlt;
  G.assemble g
