(** optlsim — a cycle-accurate, full-system x86-64-style microarchitectural
    simulator in OCaml, reproducing PTLsim (Yourst, ISPASS 2007).

    This umbrella module re-exports the public API by subsystem. The usual
    entry points:

    - assemble a guest program: {!Asm} / {!Gasm} / {!Insn}
    - run it on a bare machine: {!Machine}, then {!Seqcore} (functional),
      {!Ooo_core} (cycle-accurate out-of-order), {!Inorder_core}, or any
      model from {!Registry}
    - boot a full system: {!Kernel} (minios) under {!Ptlmon}/{!Domain},
      drive mode switches with {!Ptlcall} command lists
    - measure: {!Statstree} counters, {!Timelapse} snapshots
    - reproduce the paper: {!Rsync_bench}, and [bench/main.exe]

    See README.md for a tour and DESIGN.md for the system inventory. *)

(* utilities *)
module W64 = Ptl_util.W64
module Rng = Ptl_util.Rng
module Ring = Ptl_util.Ring
module Bitops = Ptl_util.Bitops
module Tablefmt = Ptl_util.Tablefmt
module Crc32 = Ptl_util.Crc32

(* statistics (PTLstats) *)
module Statstree = Ptl_stats.Statstree
module Timelapse = Ptl_stats.Timelapse

(* guest ISA *)
module Regs = Ptl_isa.Regs
module Flags = Ptl_isa.Flags
module Insn = Ptl_isa.Insn
module Encode = Ptl_isa.Encode
module Decode = Ptl_isa.Decode
module Asm = Ptl_isa.Asm
module Disasm = Ptl_isa.Disasm

(* memory system *)
module Phys_mem = Ptl_mem.Phys_mem
module Pagetable = Ptl_mem.Pagetable
module Tlb = Ptl_mem.Tlb
module Pwc = Ptl_mem.Pwc
module Cache = Ptl_mem.Cache
module Hierarchy = Ptl_mem.Hierarchy
module Coherence = Ptl_mem.Coherence

(* uop layer *)
module Uop = Ptl_uop.Uop
module Exec = Ptl_uop.Exec
module Microcode = Ptl_uop.Microcode
module Bbcache = Ptl_uop.Bbcache

(* branch prediction *)
module Predictor = Ptl_bpred.Predictor

(* architectural layer *)
module Context = Ptl_arch.Context
module Env = Ptl_arch.Env
module Fault = Ptl_arch.Fault
module Assists = Ptl_arch.Assists
module Vmem = Ptl_arch.Vmem
module Seqcore = Ptl_arch.Seqcore
module Machine = Ptl_arch.Machine

(* core models *)
module Config = Ptl_ooo.Config
module Ooo_core = Ptl_ooo.Ooo_core
module Inorder_core = Ptl_ooo.Inorder_core
module Multicore = Ptl_ooo.Multicore
module Registry = Ptl_ooo.Registry
module Uarch = Ptl_ooo.Uarch
module Physreg = Ptl_ooo.Physreg
module Interlock = Ptl_ooo.Interlock
module Sim_failure = Ptl_ooo.Sim_failure

(* the virtual-memory scenario layer *)
module Vm = Ptl_vm.Vm

(* the minios guest kernel *)
module Kernel = Ptl_kernel.Kernel
module Abi = Ptl_kernel.Abi
module Ramfs = Ptl_kernel.Ramfs
module Kbuild = Ptl_kernel.Kbuild

(* the hypervisor / monitor layer *)
module Domain = Ptl_hyper.Domain
module Ptlmon = Ptl_hyper.Ptlmon
module Ptlcall = Ptl_hyper.Ptlcall
module Checkpoint = Ptl_hyper.Checkpoint
module Dma_trace = Ptl_hyper.Dma_trace
module Cosim = Ptl_hyper.Cosim

(* guard rails: invariant registry + crash-containment supervisor *)
module Guard = Ptl_guard.Guard

(* seeded fault injection for robustness testing *)
module Chaos = Ptl_chaos.Chaos

(* sampled simulation (fast-forward + periodic detail) *)
module Sample = Ptl_sample.Sample

(* durable interval store + distributed sampling fleet *)
module Store = Ptl_store.Store
module Lease_queue = Ptl_fleet.Lease_queue
module Fleet = Ptl_fleet.Fleet

(* matched-pair design-space sweeps over an interval store *)
module Paired = Ptl_stats.Paired
module Sweep = Ptl_sweep.Sweep

(* differential fuzzing *)
module Fuzzgen = Ptl_fuzz.Fuzzgen
module Shrink = Ptl_fuzz.Shrink
module Fuzz = Ptl_fuzz.Harness

(* declarative ISA spec + conformance oracle *)
module Spec = Ptl_spec.Spec
module Oracle = Ptl_oracle.Oracle
module Cross = Ptl_oracle.Cross
module Conformance = Ptl_oracle.Conformance

(* workloads *)
module Gasm = Ptl_workloads.Gasm
module Microbench = Ptl_workloads.Microbench
module Crypto = Ptl_workloads.Crypto
module Lz = Ptl_workloads.Lz
module Fileset = Ptl_workloads.Fileset
module Rsync_progs = Ptl_workloads.Rsync_progs
module Rsync_bench = Ptl_workloads.Rsync_bench
