(** The durable interval store: a versioned, checksummed on-disk home
    for one sampled-simulation capture, so interval sets outlive the
    master process, runs are resumable, and worker *processes* — local
    or across a shared filesystem, exactly like the paper's
    cluster-distributed PTLsim/X checkpoint workflow — can replay
    measured intervals long after the capture pass exited.

    A store is a directory:

    {v
    MANIFEST            workload/core/config/schedule identity + totals
    base                shared base image (guest memory + warmed uarch)
    interval-NNNNNN     one delta checkpoint per measured window
    result-DIGEST-NNNNNN  cached replay results, keyed by config digest
    v}

    Intervals are keyed by [(workload digest, schedule, capture
    index)]: the manifest pins the first two, the file name carries the
    index. Every file is framed by a fixed header — magic, format
    version, a record-kind tag, payload length and a CRC-32 of the
    payload — so truncation, bit rot and version skew are each rejected
    with a typed {!error} before a corrupt checkpoint can poison a
    replay. The result cache makes repeated runs of the same
    [(checkpoint, config)] pair free.

    Payloads are [Marshal]-encoded plain data (no closures: flags []),
    written by the same binary family that reads them — the usual
    OCaml-marshal compatibility contract, guarded by the explicit
    format version in the header. *)

module Checkpoint = Ptl_hyper.Checkpoint
module Sample = Ptl_sample.Sample
module Config = Ptl_ooo.Config
module Crc32 = Ptl_util.Crc32
module Chaos = Ptl_chaos.Chaos

(* ---------------------------------------------------------------- *)
(* Errors                                                            *)
(* ---------------------------------------------------------------- *)

type error =
  | E_io of { path : string; reason : string }
  | E_bad_magic of { path : string }
  | E_bad_version of { path : string; found : int; expected : int }
  | E_bad_kind of { path : string; found : char; expected : char }
  | E_truncated of { path : string; wanted : int; got : int }
  | E_checksum of { path : string; stored : int32; computed : int32 }
  | E_bad_index of { index : int; count : int }
  | E_mismatch of { path : string; field : string; found : string; expected : string }

let error_to_string = function
  | E_io { path; reason } -> Printf.sprintf "store: %s: %s" path reason
  | E_bad_magic { path } ->
    Printf.sprintf "store: %s: not an optlsim store file (bad magic)" path
  | E_bad_version { path; found; expected } ->
    Printf.sprintf
      "store: %s: format version %d, this build reads version %d \
       (re-capture the store)"
      path found expected
  | E_bad_kind { path; found; expected } ->
    Printf.sprintf "store: %s: record kind %C where %C was expected" path
      found expected
  | E_truncated { path; wanted; got } ->
    Printf.sprintf "store: %s: truncated (%d payload bytes of %d)" path got
      wanted
  | E_checksum { path; stored; computed } ->
    Printf.sprintf
      "store: %s: payload checksum mismatch (stored %08lx, computed %08lx) \
       — file is corrupt"
      path stored computed
  | E_bad_index { index; count } ->
    Printf.sprintf "store: interval index %d out of range (store holds %d)"
      index count
  | E_mismatch { path; field; found; expected } ->
    Printf.sprintf "store: %s: %s is %s, expected %s" path field found
      expected

let ( let* ) r f = match r with Error _ as e -> e | Ok x -> f x

(* ---------------------------------------------------------------- *)
(* Framed, checksummed records                                       *)
(* ---------------------------------------------------------------- *)

let magic = "OPTLSTOR"
let version = 1

(* magic(8) + version(2 LE) + kind(1) + payload length(8 LE) + crc(4 LE) *)
let header_size = 8 + 2 + 1 + 8 + 4

let kind_manifest = 'M'
let kind_base = 'B'
let kind_interval = 'I'
let kind_result = 'R'
let kind_progress = 'P'

(* Temp names are unique per (process, atomic counter): two workers
   racing to cache the same (config-digest, index) entry must never
   share a .tmp file, or their interleaved writes tear the record both
   renames then publish. With private temp files each rename installs
   a complete record atomically — whichever lands last wins and the
   entry stays readable. *)
let tmp_counter = Atomic.make 0

let tmp_name path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_counter 1)

let write_record ~path ~kind payload =
  (* chaos instrumentation: record writes are a fault-matrix cell.
     Fail = the caller sees a typed I/O error; Drop = the write is
     silently lost (acknowledged but absent); Flip_bit corrupts the
     payload AFTER the CRC is computed, so the torn record is caught at
     read time; Truncate publishes a torn record, then the process
     dies, the crash the resumable-capture journal recovers from. *)
  let fault =
    Chaos.fire
      (if kind = kind_result then "store.result.write" else "store.write")
  in
  match fault with
  | Some Chaos.Kill ->
    raise (Chaos.Killed (Printf.sprintf "store.write %s" path))
  | Some Chaos.Fail ->
    Error (E_io { path; reason = "chaos: injected write failure" })
  | Some Chaos.Drop -> Ok ()
  | (None | Some (Chaos.Delay _ | Chaos.Truncate | Chaos.Flip_bit _)) as fault
    -> (
    let payload_out =
      match fault with
      | Some (Chaos.Flip_bit b) when String.length payload > 0 ->
        let b = b mod (String.length payload * 8) in
        let bytes = Bytes.of_string payload in
        Bytes.set bytes (b / 8)
          (Char.chr (Char.code (Bytes.get bytes (b / 8)) lxor (1 lsl (b mod 8))));
        Bytes.to_string bytes
      | Some Chaos.Truncate -> String.sub payload 0 (String.length payload / 2)
      | _ -> payload
    in
    try
      let tmp = tmp_name path in
      let oc = open_out_bin tmp in
      let hdr = Buffer.create header_size in
      Buffer.add_string hdr magic;
      Buffer.add_uint16_le hdr version;
      Buffer.add_char hdr kind;
      Buffer.add_int64_le hdr (Int64.of_int (String.length payload));
      Buffer.add_int32_le hdr (Crc32.string payload);
      Buffer.output_buffer oc hdr;
      output_string oc payload_out;
      close_out oc;
      Sys.rename tmp path;
      if fault = Some Chaos.Truncate then
        raise (Chaos.Killed (Printf.sprintf "store.write %s (torn)" path));
      Ok ()
    with Sys_error reason -> Error (E_io { path; reason }))

let read_record ~path ~kind =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let size = in_channel_length ic in
        let raw = really_input_string ic size in
        raw)
  with
  | exception Sys_error reason -> Error (E_io { path; reason })
  | raw ->
    if String.length raw < header_size then
      Error (E_truncated { path; wanted = header_size; got = String.length raw })
    else if String.sub raw 0 8 <> magic then Error (E_bad_magic { path })
    else begin
      let found_version = String.get_uint16_le raw 8 in
      if found_version <> version then
        Error (E_bad_version { path; found = found_version; expected = version })
      else begin
        let found_kind = raw.[10] in
        if found_kind <> kind then
          Error (E_bad_kind { path; found = found_kind; expected = kind })
        else begin
          let len = Int64.to_int (String.get_int64_le raw 11) in
          let got = String.length raw - header_size in
          if got <> len then Error (E_truncated { path; wanted = len; got })
          else begin
            let stored = String.get_int32_le raw 19 in
            let computed = Crc32.update Crc32.empty raw ~pos:header_size ~len in
            if stored <> computed then
              Error (E_checksum { path; stored; computed })
            else Ok (String.sub raw header_size len)
          end
        end
      end
    end

let marshal v = Marshal.to_string v []

let write_value ~path ~kind v = write_record ~path ~kind (marshal v)

(* The kind tag is checked before unmarshaling, so a payload can only be
   decoded at the type it was encoded at. *)
let read_value ~path ~kind =
  let* payload = read_record ~path ~kind in
  match Marshal.from_string payload 0 with
  | v -> Ok v
  | exception Failure reason -> Error (E_io { path; reason })

(* ---------------------------------------------------------------- *)
(* Digests                                                           *)
(* ---------------------------------------------------------------- *)

(** Hex digest of any plain-data value (workload programs, configs). *)
let digest_value v = Digest.to_hex (Digest.string (marshal v))

(** Digest identifying a machine configuration — the result-cache key:
    replaying the same checkpoint under the same config is free. *)
let config_digest (c : Config.t) = digest_value c

(* ---------------------------------------------------------------- *)
(* Manifest and layout                                               *)
(* ---------------------------------------------------------------- *)

type manifest = {
  m_workload : string;  (** hex digest of the captured workload *)
  m_core : string;  (** core model the capture warmed for *)
  m_config : Config.t;
  m_config_digest : string;
  m_ff : int;
  m_warmup : int;
  m_measure : int;
  m_placement : string;  (** parseable by {!Sample.parse_placement} *)
  m_count : int;  (** intervals in the store *)
  m_total_insns : int;  (** master-pass totals, for the merged report *)
  m_total_cycles : int;
  m_delta_bytes : int;  (** page payload captured as deltas *)
  m_full_bytes : int;  (** what full per-window images would have cost *)
}

let schedule m =
  { Sample.ff_insns = m.m_ff; warmup_insns = m.m_warmup; measure_insns = m.m_measure }

type t = { dir : string; manifest : manifest }

let manifest t = t.manifest
let dir t = t.dir
let manifest_path dir = Filename.concat dir "MANIFEST"
let base_path dir = Filename.concat dir "base"

let interval_name index = Printf.sprintf "interval-%06d" index
let interval_path t index = Filename.concat t.dir (interval_name index)

(* Result-cache file names carry a digest prefix for humans; the full
   digest inside the payload is what is actually verified. *)
let result_name ~config_digest index =
  Printf.sprintf "result-%s-%06d" (String.sub config_digest 0 12) index

let result_path t ~config_digest index =
  Filename.concat t.dir (result_name ~config_digest index)

(** What a result-cache record stores: the full config digest it was
    replayed under plus the interval (None = the guest halted before
    committing a measured instruction — also worth caching). *)
type stored_result = {
  sr_config_digest : string;
  sr_index : int;
  sr_interval : Sample.interval option;
}

(* ---------------------------------------------------------------- *)
(* Writing a store                                                   *)
(* ---------------------------------------------------------------- *)

let mkdir_p dir =
  let rec mk d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  mk dir;
  if Sys.file_exists dir && Sys.is_directory dir then Ok ()
  else Error (E_io { path = dir; reason = "cannot create store directory" })

(** Spill a finished capture pass into [dir]. The manifest is written
    last, so a crashed capture leaves a store that {!open_store}
    rejects instead of a silently short one. *)
let create ~dir ~workload ~core ~(schedule : Sample.schedule) ~placement
    (cr : Sample.capture_run) ~(config : Config.t) =
  let* () = mkdir_p dir in
  let* () = write_value ~path:(base_path dir) ~kind:kind_base cr.Sample.cr_base in
  let count = Array.length cr.Sample.cr_deltas in
  let rec write_intervals i =
    if i >= count then Ok ()
    else
      let path = Filename.concat dir (interval_name i) in
      let* () = write_value ~path ~kind:kind_interval cr.Sample.cr_deltas.(i) in
      write_intervals (i + 1)
  in
  let* () = write_intervals 0 in
  let m =
    {
      m_workload = workload;
      m_core = core;
      m_config = config;
      m_config_digest = config_digest config;
      m_ff = schedule.Sample.ff_insns;
      m_warmup = schedule.Sample.warmup_insns;
      m_measure = schedule.Sample.measure_insns;
      m_placement = placement;
      m_count = count;
      m_total_insns = cr.Sample.cr_insns;
      m_total_cycles = cr.Sample.cr_cycles;
      m_delta_bytes = cr.Sample.cr_delta_bytes;
      m_full_bytes = cr.Sample.cr_full_bytes;
    }
  in
  let* () = write_value ~path:(manifest_path dir) ~kind:kind_manifest m in
  Ok { dir; manifest = m }

(* ---------------------------------------------------------------- *)
(* The capture journal: resumable captures                           *)
(* ---------------------------------------------------------------- *)

(* While a capture is in flight the directory holds the base, the
   interval records journaled so far, and a PROGRESS record (kind 'P',
   rewritten atomically after every window) carrying the capture's
   identity plus per-window byte accounting. The MANIFEST only appears
   at [finish_capture] — a crashed capture is never mistaken for a
   complete store — and [scan_partial] turns the journal back into a
   resume point: the longest valid prefix of interval records wins, so
   a record torn mid-write simply gets recaptured. *)

let progress_path dir = Filename.concat dir "PROGRESS"

(** The on-disk progress payload. [pg_windows] carries one
    (delta_bytes, full_bytes) pair per journaled window, oldest first
    — the accounting the final manifest sums, reconstructible for any
    resume prefix. *)
type progress = {
  pg_workload : string;
  pg_core : string;
  pg_config_digest : string;
  pg_ff : int;
  pg_warmup : int;
  pg_measure : int;
  pg_placement : string;
  pg_windows : (int * int) list;
}

(** An in-flight capture being journaled. *)
type journal = {
  j_dir : string;
  j_workload : string;
  j_core : string;
  j_config : Config.t;
  j_schedule : Sample.schedule;
  j_placement : string;
  mutable j_windows : (int * int) list;  (* newest first *)
}

let write_progress j =
  write_value ~path:(progress_path j.j_dir) ~kind:kind_progress
    {
      pg_workload = j.j_workload;
      pg_core = j.j_core;
      pg_config_digest = config_digest j.j_config;
      pg_ff = j.j_schedule.Sample.ff_insns;
      pg_warmup = j.j_schedule.Sample.warmup_insns;
      pg_measure = j.j_schedule.Sample.measure_insns;
      pg_placement = j.j_placement;
      pg_windows = List.rev j.j_windows;
    }

(** A resume point recovered from an interrupted capture's journal. *)
type partial = {
  pt_count : int;  (** valid journaled interval records (a prefix) *)
  pt_delta_bytes : int;  (** accounting over that prefix *)
  pt_full_bytes : int;
  pt_windows : (int * int) list;  (** per-window accounting, oldest first *)
  pt_base : Checkpoint.base;
  pt_last : Checkpoint.delta;  (** interval [pt_count - 1]: the resume state *)
  pt_workload : string;
  pt_core : string;
  pt_config_digest : string;
  pt_schedule : Sample.schedule;
  pt_placement : string;
}

(** Open a capture journal on [dir]. A fresh journal deletes any stale
    MANIFEST first (an interrupted re-capture must not masquerade as
    the previous complete store); [resume] primes the journal with a
    {!scan_partial} resume point instead, so the next
    {!journal_interval} continues at [pt_count]. *)
let begin_capture ~dir ~workload ~core ~(schedule : Sample.schedule)
    ~placement ~(config : Config.t) ?resume () =
  let* () = mkdir_p dir in
  match resume with
  | Some pt ->
    Ok
      {
        j_dir = dir;
        j_workload = workload;
        j_core = core;
        j_config = config;
        j_schedule = schedule;
        j_placement = placement;
        j_windows = List.rev pt.pt_windows;
      }
  | None ->
    if Sys.file_exists (manifest_path dir) then
      (try Sys.remove (manifest_path dir) with Sys_error _ -> ());
    Ok
      {
        j_dir = dir;
        j_workload = workload;
        j_core = core;
        j_config = config;
        j_schedule = schedule;
        j_placement = placement;
        j_windows = [];
      }

(** Journal the shared base image (once, before any interval). *)
let journal_base j (base : Checkpoint.base) =
  let* () = write_value ~path:(base_path j.j_dir) ~kind:kind_base base in
  write_progress j

(** Journal one captured window as it lands: the interval record first,
    then the PROGRESS update — so a crash between the two merely
    recaptures (and identically rewrites) the last window on resume.
    [index] must be the next unjournaled window. *)
let journal_interval j ~index ~delta_bytes ~full_bytes
    (d : Checkpoint.delta) =
  let expected = List.length j.j_windows in
  if index <> expected then Error (E_bad_index { index; count = expected })
  else begin
    let path = Filename.concat j.j_dir (interval_name index) in
    let* () = write_value ~path ~kind:kind_interval d in
    j.j_windows <- (delta_bytes, full_bytes) :: j.j_windows;
    write_progress j
  end

(** Seal a journaled capture: write the MANIFEST (readers now see a
    complete store) and retire the PROGRESS record. *)
let finish_capture j ~total_insns ~total_cycles =
  let windows = List.rev j.j_windows in
  let m =
    {
      m_workload = j.j_workload;
      m_core = j.j_core;
      m_config = j.j_config;
      m_config_digest = config_digest j.j_config;
      m_ff = j.j_schedule.Sample.ff_insns;
      m_warmup = j.j_schedule.Sample.warmup_insns;
      m_measure = j.j_schedule.Sample.measure_insns;
      m_placement = j.j_placement;
      m_count = List.length windows;
      m_total_insns = total_insns;
      m_total_cycles = total_cycles;
      m_delta_bytes = List.fold_left (fun a (d, _) -> a + d) 0 windows;
      m_full_bytes = List.fold_left (fun a (_, f) -> a + f) 0 windows;
    }
  in
  let* () = write_value ~path:(manifest_path j.j_dir) ~kind:kind_manifest m in
  (try Sys.remove (progress_path j.j_dir) with Sys_error _ -> ());
  Ok { dir = j.j_dir; manifest = m }

(** Recover a resume point from an interrupted capture. [Ok None] =
    nothing usable (no journal, torn progress/base, or no valid
    interval record yet) — start fresh. The resumable prefix is the
    longest run of valid interval records from 0, capped by what the
    progress record accounts for; anything past it (a record published
    ahead of its progress update, or torn mid-write) is recaptured
    deterministically. *)
let scan_partial ~dir : (partial option, error) result =
  if not (Sys.file_exists (progress_path dir)) then Ok None
  else
    match read_value ~path:(progress_path dir) ~kind:kind_progress with
    | Error _ -> Ok None
    | Ok (pg : progress) -> (
      match read_value ~path:(base_path dir) ~kind:kind_base with
      | Error _ -> Ok None
      | Ok (base : Checkpoint.base) -> (
        let limit = List.length pg.pg_windows in
        let rec prefix i last =
          if i >= limit then (i, last)
          else
            match
              read_value
                ~path:(Filename.concat dir (interval_name i))
                ~kind:kind_interval
            with
            | Ok (d : Checkpoint.delta) -> prefix (i + 1) (Some d)
            | Error _ -> (i, last)
        in
        let count, last = prefix 0 None in
        match last with
        | None -> Ok None
        | Some pt_last ->
          let windows = List.filteri (fun i _ -> i < count) pg.pg_windows in
          Ok
            (Some
               {
                 pt_count = count;
                 pt_delta_bytes =
                   List.fold_left (fun a (d, _) -> a + d) 0 windows;
                 pt_full_bytes =
                   List.fold_left (fun a (_, f) -> a + f) 0 windows;
                 pt_windows = windows;
                 pt_base = base;
                 pt_last;
                 pt_workload = pg.pg_workload;
                 pt_core = pg.pg_core;
                 pt_config_digest = pg.pg_config_digest;
                 pt_schedule =
                   {
                     Sample.ff_insns = pg.pg_ff;
                     warmup_insns = pg.pg_warmup;
                     measure_insns = pg.pg_measure;
                   };
                 pt_placement = pg.pg_placement;
               })))

(* ---------------------------------------------------------------- *)
(* Reading a store                                                   *)
(* ---------------------------------------------------------------- *)

let open_store ~dir =
  let* (m : manifest) =
    read_value ~path:(manifest_path dir) ~kind:kind_manifest
  in
  Ok { dir; manifest = m }

let load_base t : (Checkpoint.base, error) result =
  read_value ~path:(base_path t.dir) ~kind:kind_base

let load_interval t index : (Checkpoint.delta, error) result =
  if index < 0 || index >= t.manifest.m_count then
    Error (E_bad_index { index; count = t.manifest.m_count })
  else read_value ~path:(interval_path t index) ~kind:kind_interval

(* ---------------------------------------------------------------- *)
(* Result cache                                                      *)
(* ---------------------------------------------------------------- *)

let put_result t ~config_digest ~index (iv : Sample.interval option) =
  if index < 0 || index >= t.manifest.m_count then
    Error (E_bad_index { index; count = t.manifest.m_count })
  else
    write_value
      ~path:(result_path t ~config_digest index)
      ~kind:kind_result
      { sr_config_digest = config_digest; sr_index = index; sr_interval = iv }

(** [Ok None] = not cached (including an unreadable or mismatched cache
    entry: the cache is an optimization, so a bad entry means "replay
    again", never "fail the run"). *)
let get_result t ~config_digest ~index :
    (Sample.interval option option, error) result =
  if index < 0 || index >= t.manifest.m_count then
    Error (E_bad_index { index; count = t.manifest.m_count })
  else begin
    let path = result_path t ~config_digest index in
    if not (Sys.file_exists path) then Ok None
    else
      match read_value ~path ~kind:kind_result with
      | Error _ -> Ok None
      | Ok (sr : stored_result) ->
        if sr.sr_config_digest = config_digest && sr.sr_index = index then
          Ok (Some sr.sr_interval)
        else Ok None
  end

(** Every cached result for [config_digest], by index — what a server
    preloads so repeated runs of the same (store, config) are free. *)
let cached_results t ~config_digest =
  let rec scan i acc =
    if i >= t.manifest.m_count then List.rev acc
    else
      match get_result t ~config_digest ~index:i with
      | Ok (Some iv) -> scan (i + 1) ((i, iv) :: acc)
      | Ok None | Error _ -> scan (i + 1) acc
  in
  scan 0 []

(** Every distinct config digest with at least one readable result-cache
    entry, sorted — how a sweep reports which legs are already paid for.
    Unreadable entries are skipped (the cache fails open). *)
let cached_digests t =
  let digests = Hashtbl.create 8 in
  (match Sys.readdir t.dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.iter
      (fun f ->
        if String.length f > 7 && String.sub f 0 7 = "result-" then begin
          let path = Filename.concat t.dir f in
          match read_value ~path ~kind:kind_result with
          | Ok (sr : stored_result) ->
            Hashtbl.replace digests sr.sr_config_digest ()
          | Error _ -> ()
        end)
      files);
  List.sort String.compare (Hashtbl.fold (fun d () acc -> d :: acc) digests [])

(* ---------------------------------------------------------------- *)
(* Reporting                                                         *)
(* ---------------------------------------------------------------- *)

(** One-paragraph description of a store (CLI [capture]/[serve] logs). *)
let describe t =
  let m = t.manifest in
  Printf.sprintf
    "store %s: %d interval(s), workload %s, core %s, schedule \
     ff=%d/warmup=%d/measure=%d, placement %s, capture %d bytes as deltas \
     (full images: %d bytes)"
    t.dir m.m_count
    (String.sub m.m_workload 0 (min 12 (String.length m.m_workload)))
    m.m_core m.m_ff m.m_warmup m.m_measure m.m_placement m.m_delta_bytes
    m.m_full_bytes
