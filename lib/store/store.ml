(** The durable interval store: a versioned, checksummed on-disk home
    for one sampled-simulation capture, so interval sets outlive the
    master process, runs are resumable, and worker *processes* — local
    or across a shared filesystem, exactly like the paper's
    cluster-distributed PTLsim/X checkpoint workflow — can replay
    measured intervals long after the capture pass exited.

    A store is a directory:

    {v
    MANIFEST            workload/core/config/schedule identity + totals
    base                shared base image (guest memory + warmed uarch)
    interval-NNNNNN     one delta checkpoint per measured window
    result-DIGEST-NNNNNN  cached replay results, keyed by config digest
    v}

    Intervals are keyed by [(workload digest, schedule, capture
    index)]: the manifest pins the first two, the file name carries the
    index. Every file is framed by a fixed header — magic, format
    version, a record-kind tag, payload length and a CRC-32 of the
    payload — so truncation, bit rot and version skew are each rejected
    with a typed {!error} before a corrupt checkpoint can poison a
    replay. The result cache makes repeated runs of the same
    [(checkpoint, config)] pair free.

    Payloads are [Marshal]-encoded plain data (no closures: flags []),
    written by the same binary family that reads them — the usual
    OCaml-marshal compatibility contract, guarded by the explicit
    format version in the header. *)

module Checkpoint = Ptl_hyper.Checkpoint
module Sample = Ptl_sample.Sample
module Config = Ptl_ooo.Config
module Crc32 = Ptl_util.Crc32

(* ---------------------------------------------------------------- *)
(* Errors                                                            *)
(* ---------------------------------------------------------------- *)

type error =
  | E_io of { path : string; reason : string }
  | E_bad_magic of { path : string }
  | E_bad_version of { path : string; found : int; expected : int }
  | E_bad_kind of { path : string; found : char; expected : char }
  | E_truncated of { path : string; wanted : int; got : int }
  | E_checksum of { path : string; stored : int32; computed : int32 }
  | E_bad_index of { index : int; count : int }
  | E_mismatch of { path : string; field : string; found : string; expected : string }

let error_to_string = function
  | E_io { path; reason } -> Printf.sprintf "store: %s: %s" path reason
  | E_bad_magic { path } ->
    Printf.sprintf "store: %s: not an optlsim store file (bad magic)" path
  | E_bad_version { path; found; expected } ->
    Printf.sprintf
      "store: %s: format version %d, this build reads version %d \
       (re-capture the store)"
      path found expected
  | E_bad_kind { path; found; expected } ->
    Printf.sprintf "store: %s: record kind %C where %C was expected" path
      found expected
  | E_truncated { path; wanted; got } ->
    Printf.sprintf "store: %s: truncated (%d payload bytes of %d)" path got
      wanted
  | E_checksum { path; stored; computed } ->
    Printf.sprintf
      "store: %s: payload checksum mismatch (stored %08lx, computed %08lx) \
       — file is corrupt"
      path stored computed
  | E_bad_index { index; count } ->
    Printf.sprintf "store: interval index %d out of range (store holds %d)"
      index count
  | E_mismatch { path; field; found; expected } ->
    Printf.sprintf "store: %s: %s is %s, expected %s" path field found
      expected

let ( let* ) r f = match r with Error _ as e -> e | Ok x -> f x

(* ---------------------------------------------------------------- *)
(* Framed, checksummed records                                       *)
(* ---------------------------------------------------------------- *)

let magic = "OPTLSTOR"
let version = 1

(* magic(8) + version(2 LE) + kind(1) + payload length(8 LE) + crc(4 LE) *)
let header_size = 8 + 2 + 1 + 8 + 4

let kind_manifest = 'M'
let kind_base = 'B'
let kind_interval = 'I'
let kind_result = 'R'

let write_record ~path ~kind payload =
  try
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    let hdr = Buffer.create header_size in
    Buffer.add_string hdr magic;
    Buffer.add_uint16_le hdr version;
    Buffer.add_char hdr kind;
    Buffer.add_int64_le hdr (Int64.of_int (String.length payload));
    Buffer.add_int32_le hdr (Crc32.string payload);
    Buffer.output_buffer oc hdr;
    output_string oc payload;
    close_out oc;
    Sys.rename tmp path;
    Ok ()
  with Sys_error reason -> Error (E_io { path; reason })

let read_record ~path ~kind =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let size = in_channel_length ic in
        let raw = really_input_string ic size in
        raw)
  with
  | exception Sys_error reason -> Error (E_io { path; reason })
  | raw ->
    if String.length raw < header_size then
      Error (E_truncated { path; wanted = header_size; got = String.length raw })
    else if String.sub raw 0 8 <> magic then Error (E_bad_magic { path })
    else begin
      let found_version = String.get_uint16_le raw 8 in
      if found_version <> version then
        Error (E_bad_version { path; found = found_version; expected = version })
      else begin
        let found_kind = raw.[10] in
        if found_kind <> kind then
          Error (E_bad_kind { path; found = found_kind; expected = kind })
        else begin
          let len = Int64.to_int (String.get_int64_le raw 11) in
          let got = String.length raw - header_size in
          if got <> len then Error (E_truncated { path; wanted = len; got })
          else begin
            let stored = String.get_int32_le raw 19 in
            let computed = Crc32.update Crc32.empty raw ~pos:header_size ~len in
            if stored <> computed then
              Error (E_checksum { path; stored; computed })
            else Ok (String.sub raw header_size len)
          end
        end
      end
    end

let marshal v = Marshal.to_string v []

let write_value ~path ~kind v = write_record ~path ~kind (marshal v)

(* The kind tag is checked before unmarshaling, so a payload can only be
   decoded at the type it was encoded at. *)
let read_value ~path ~kind =
  let* payload = read_record ~path ~kind in
  match Marshal.from_string payload 0 with
  | v -> Ok v
  | exception Failure reason -> Error (E_io { path; reason })

(* ---------------------------------------------------------------- *)
(* Digests                                                           *)
(* ---------------------------------------------------------------- *)

(** Hex digest of any plain-data value (workload programs, configs). *)
let digest_value v = Digest.to_hex (Digest.string (marshal v))

(** Digest identifying a machine configuration — the result-cache key:
    replaying the same checkpoint under the same config is free. *)
let config_digest (c : Config.t) = digest_value c

(* ---------------------------------------------------------------- *)
(* Manifest and layout                                               *)
(* ---------------------------------------------------------------- *)

type manifest = {
  m_workload : string;  (** hex digest of the captured workload *)
  m_core : string;  (** core model the capture warmed for *)
  m_config : Config.t;
  m_config_digest : string;
  m_ff : int;
  m_warmup : int;
  m_measure : int;
  m_placement : string;  (** parseable by {!Sample.parse_placement} *)
  m_count : int;  (** intervals in the store *)
  m_total_insns : int;  (** master-pass totals, for the merged report *)
  m_total_cycles : int;
  m_delta_bytes : int;  (** page payload captured as deltas *)
  m_full_bytes : int;  (** what full per-window images would have cost *)
}

let schedule m =
  { Sample.ff_insns = m.m_ff; warmup_insns = m.m_warmup; measure_insns = m.m_measure }

type t = { dir : string; manifest : manifest }

let manifest t = t.manifest
let dir t = t.dir
let manifest_path dir = Filename.concat dir "MANIFEST"
let base_path dir = Filename.concat dir "base"

let interval_name index = Printf.sprintf "interval-%06d" index
let interval_path t index = Filename.concat t.dir (interval_name index)

(* Result-cache file names carry a digest prefix for humans; the full
   digest inside the payload is what is actually verified. *)
let result_name ~config_digest index =
  Printf.sprintf "result-%s-%06d" (String.sub config_digest 0 12) index

let result_path t ~config_digest index =
  Filename.concat t.dir (result_name ~config_digest index)

(** What a result-cache record stores: the full config digest it was
    replayed under plus the interval (None = the guest halted before
    committing a measured instruction — also worth caching). *)
type stored_result = {
  sr_config_digest : string;
  sr_index : int;
  sr_interval : Sample.interval option;
}

(* ---------------------------------------------------------------- *)
(* Writing a store                                                   *)
(* ---------------------------------------------------------------- *)

let mkdir_p dir =
  let rec mk d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  mk dir;
  if Sys.file_exists dir && Sys.is_directory dir then Ok ()
  else Error (E_io { path = dir; reason = "cannot create store directory" })

(** Spill a finished capture pass into [dir]. The manifest is written
    last, so a crashed capture leaves a store that {!open_store}
    rejects instead of a silently short one. *)
let create ~dir ~workload ~core ~(schedule : Sample.schedule) ~placement
    (cr : Sample.capture_run) ~(config : Config.t) =
  let* () = mkdir_p dir in
  let* () = write_value ~path:(base_path dir) ~kind:kind_base cr.Sample.cr_base in
  let count = Array.length cr.Sample.cr_deltas in
  let rec write_intervals i =
    if i >= count then Ok ()
    else
      let path = Filename.concat dir (interval_name i) in
      let* () = write_value ~path ~kind:kind_interval cr.Sample.cr_deltas.(i) in
      write_intervals (i + 1)
  in
  let* () = write_intervals 0 in
  let m =
    {
      m_workload = workload;
      m_core = core;
      m_config = config;
      m_config_digest = config_digest config;
      m_ff = schedule.Sample.ff_insns;
      m_warmup = schedule.Sample.warmup_insns;
      m_measure = schedule.Sample.measure_insns;
      m_placement = placement;
      m_count = count;
      m_total_insns = cr.Sample.cr_insns;
      m_total_cycles = cr.Sample.cr_cycles;
      m_delta_bytes = cr.Sample.cr_delta_bytes;
      m_full_bytes = cr.Sample.cr_full_bytes;
    }
  in
  let* () = write_value ~path:(manifest_path dir) ~kind:kind_manifest m in
  Ok { dir; manifest = m }

(* ---------------------------------------------------------------- *)
(* Reading a store                                                   *)
(* ---------------------------------------------------------------- *)

let open_store ~dir =
  let* (m : manifest) =
    read_value ~path:(manifest_path dir) ~kind:kind_manifest
  in
  Ok { dir; manifest = m }

let load_base t : (Checkpoint.base, error) result =
  read_value ~path:(base_path t.dir) ~kind:kind_base

let load_interval t index : (Checkpoint.delta, error) result =
  if index < 0 || index >= t.manifest.m_count then
    Error (E_bad_index { index; count = t.manifest.m_count })
  else read_value ~path:(interval_path t index) ~kind:kind_interval

(* ---------------------------------------------------------------- *)
(* Result cache                                                      *)
(* ---------------------------------------------------------------- *)

let put_result t ~config_digest ~index (iv : Sample.interval option) =
  if index < 0 || index >= t.manifest.m_count then
    Error (E_bad_index { index; count = t.manifest.m_count })
  else
    write_value
      ~path:(result_path t ~config_digest index)
      ~kind:kind_result
      { sr_config_digest = config_digest; sr_index = index; sr_interval = iv }

(** [Ok None] = not cached (including an unreadable or mismatched cache
    entry: the cache is an optimization, so a bad entry means "replay
    again", never "fail the run"). *)
let get_result t ~config_digest ~index :
    (Sample.interval option option, error) result =
  if index < 0 || index >= t.manifest.m_count then
    Error (E_bad_index { index; count = t.manifest.m_count })
  else begin
    let path = result_path t ~config_digest index in
    if not (Sys.file_exists path) then Ok None
    else
      match read_value ~path ~kind:kind_result with
      | Error _ -> Ok None
      | Ok (sr : stored_result) ->
        if sr.sr_config_digest = config_digest && sr.sr_index = index then
          Ok (Some sr.sr_interval)
        else Ok None
  end

(** Every cached result for [config_digest], by index — what a server
    preloads so repeated runs of the same (store, config) are free. *)
let cached_results t ~config_digest =
  let rec scan i acc =
    if i >= t.manifest.m_count then List.rev acc
    else
      match get_result t ~config_digest ~index:i with
      | Ok (Some iv) -> scan (i + 1) ((i, iv) :: acc)
      | Ok None | Error _ -> scan (i + 1) acc
  in
  scan 0 []

(** Every distinct config digest with at least one readable result-cache
    entry, sorted — how a sweep reports which legs are already paid for.
    Unreadable entries are skipped (the cache fails open). *)
let cached_digests t =
  let digests = Hashtbl.create 8 in
  (match Sys.readdir t.dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.iter
      (fun f ->
        if String.length f > 7 && String.sub f 0 7 = "result-" then begin
          let path = Filename.concat t.dir f in
          match read_value ~path ~kind:kind_result with
          | Ok (sr : stored_result) ->
            Hashtbl.replace digests sr.sr_config_digest ()
          | Error _ -> ()
        end)
      files);
  List.sort String.compare (Hashtbl.fold (fun d () acc -> d :: acc) digests [])

(* ---------------------------------------------------------------- *)
(* Reporting                                                         *)
(* ---------------------------------------------------------------- *)

(** One-paragraph description of a store (CLI [capture]/[serve] logs). *)
let describe t =
  let m = t.manifest in
  Printf.sprintf
    "store %s: %d interval(s), workload %s, core %s, schedule \
     ff=%d/warmup=%d/measure=%d, placement %s, capture %d bytes as deltas \
     (full images: %d bytes)"
    t.dir m.m_count
    (String.sub m.m_workload 0 (min 12 (String.length m.m_workload)))
    m.m_core m.m_ff m.m_warmup m.m_measure m.m_placement m.m_delta_bytes
    m.m_full_bytes
