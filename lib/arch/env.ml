(** The shared simulation environment: guest physical memory, the global
    cycle counter, time virtualization state, and the hooks through which
    the guest reaches the outside world (kernel-model services, the
    hypervisor's ptlcall handler, idle/pause notifications).

    Hooks default to no-ops so the architecture layer is testable on its
    own; the kernel and hypervisor layers install their handlers at boot. *)

type t = {
  mem : Ptl_mem.Phys_mem.t;
  stats : Ptl_stats.Statstree.t;
  vmem : Vmem.env;
  (* Current simulated cycle, advanced by whichever core model is running
     (or by the native-rate clock in native mode). *)
  mutable cycle : int;
  (* Virtualized timestamp counter offset: rdtsc returns cycle+offset so
     native<->simulation transitions are seamless (paper §4.1). *)
  mutable tsc_offset : int64;
  mutable kcall : Context.t -> unit;
  mutable ptlcall : Context.t -> unit;
  mutable on_hlt : Context.t -> unit;
  mutable on_pause : Context.t -> unit;
  mutable rdpmc : int -> int64;
}

let create ?stats ?mem () =
  let stats = match stats with Some s -> s | None -> Ptl_stats.Statstree.create () in
  let mem = match mem with Some m -> m | None -> Ptl_mem.Phys_mem.create () in
  {
    mem;
    stats;
    vmem = { Vmem.mem };
    cycle = 0;
    tsc_offset = 0L;
    kcall = (fun _ -> ());
    ptlcall = (fun _ -> ());
    on_hlt = (fun _ -> ());
    on_pause = (fun _ -> ());
    rdpmc = (fun _ -> 0L);
  }

(** The virtualized TSC value. *)
let tsc t = Int64.add (Int64.of_int t.cycle) t.tsc_offset
