(** Microcode assists: the serialized routines behind complex and
    privileged instructions, plus precise exception and interrupt delivery.

    PTLsim "uses its microcode to build stack frames, access interrupt
    descriptor tables, switch to kernel mode and redirect the processor to
    the exception handler entry point" (§2.1) — this module is that
    microcode. Assists run at commit, with the pipeline drained, and update
    the VCPU context and guest memory directly.

    Interrupt frame layout (descending stack; addresses ascending from the
    new rsp): [errcode][return_rip][old_mode][old_flags][old_rsp]. Handlers
    pop the error code (add rsp, 8) and end with [iret]. *)

open Ptl_util
module Flags = Ptl_isa.Flags
module Uop = Ptl_uop.Uop

exception Triple_fault of string

let push64 env ctx ~rsp v ~at_rip =
  let rsp' = Int64.sub rsp 8L in
  Vmem.write env.Env.vmem ctx ~vaddr:rsp' ~size:W64.B8 ~value:v ~at_rip;
  rsp'

(** Deliver vector [vector] with error code, returning to [return_rip].
    Used for faults, software interrupts and external interrupts alike. *)
let deliver env (ctx : Context.t) ~vector ~errcode ~return_rip =
  let at_rip = return_rip in
  let saved_mode = ctx.Context.mode in
  (* IDT and stack-frame accesses are system accesses regardless of the
     interrupted privilege level *)
  ctx.mode <- Context.Kernel;
  let handler =
    let slot = Int64.add ctx.idt_base (Int64.of_int (8 * vector)) in
    try Vmem.read env.Env.vmem ctx ~vaddr:slot ~size:W64.B8 ~at_rip
    with Fault.Guest_fault _ ->
      ctx.mode <- saved_mode;
      raise (Triple_fault "IDT unreadable")
  in
  ctx.mode <- saved_mode;
  if handler = 0L then
    raise (Triple_fault (Printf.sprintf "no handler for vector %d" vector));
  let old_rsp = Context.gpr ctx Ptl_isa.Regs.rsp in
  let old_flags = Int64.of_int ctx.flags in
  let old_mode = match ctx.mode with Context.User -> 0L | Context.Kernel -> 1L in
  (* Stack switch on privilege change, like TSS.RSP0. *)
  let base = if ctx.mode = Context.User then ctx.kernel_rsp else old_rsp in
  let push_frame base =
    let rsp = push64 env ctx ~rsp:base old_rsp ~at_rip in
    let rsp = push64 env ctx ~rsp old_flags ~at_rip in
    let rsp = push64 env ctx ~rsp old_mode ~at_rip in
    let rsp = push64 env ctx ~rsp return_rip ~at_rip in
    let rsp = push64 env ctx ~rsp errcode ~at_rip in
    Context.set_gpr ctx Ptl_isa.Regs.rsp rsp
  in
  let saved_cr2 = ctx.cr2 in
  (try
     ctx.mode <- Context.Kernel (* frame pushes are kernel accesses *);
     try push_frame base
     with Fault.Guest_fault _
       when ctx.kernel_rsp <> 0L && base <> ctx.kernel_rsp ->
       (* the aborted push's #PF is not delivered (hardware would double
          fault), so it must not clobber the cr2 of the fault being
          delivered *)
       ctx.cr2 <- saved_cr2;
       (* The interrupted stack is unmapped — possible in kernel mode
          under demand paging, where kernel paths run on a user stack
          whose page was reclaimed (e.g. the syscall entry's saves).
          Fall back to the known-good kernel stack, like an IST entry,
          so the #PF handler can run and repopulate it. *)
       push_frame ctx.kernel_rsp
   with Fault.Guest_fault f ->
     raise (Triple_fault ("fault pushing interrupt frame: " ^ Fault.to_string f)));
  ctx.flags <- Flags.set_if false ctx.flags;
  ctx.rip <- handler;
  ctx.running <- true

(** Deliver an architectural fault raised by a uop of the instruction at
    [fault.at_rip]; the instruction restarts (or the handler fixes up). *)
let deliver_fault env ctx (f : Fault.t) =
  deliver env ctx ~vector:(Fault.vector f.kind) ~errcode:(Fault.error_code f.kind)
    ~return_rip:f.at_rip

(** Try to deliver one pending external interrupt at an instruction
    boundary. Returns true if control was redirected. *)
let try_deliver_irq env (ctx : Context.t) =
  if Flags.iflag ctx.flags && Context.has_pending_irq ctx then begin
    let vector = Queue.pop ctx.pending_irqs in
    deliver env ctx ~vector ~errcode:0L ~return_rip:ctx.rip;
    true
  end
  else false

let require_kernel (ctx : Context.t) ~at_rip =
  if ctx.mode <> Context.Kernel then
    Fault.raise_fault Fault.General_protection ~at_rip

(** Execute the assist of uop [u]. The assist performs the whole
    architectural effect of its instruction, including the RIP update. May
    raise [Fault.Guest_fault] (delivered by the caller's commit logic). *)
let run env (ctx : Context.t) (u : Uop.t) (a : Uop.assist) =
  let at_rip = u.Uop.rip in
  let next () = ctx.rip <- u.Uop.next_rip in
  match a with
  | Uop.A_syscall ->
    (* fast system call: rcx <- return rip, r11 <- flags, enter kernel *)
    Context.set_gpr ctx Ptl_isa.Regs.rcx u.Uop.next_rip;
    Context.set_gpr ctx Ptl_isa.Regs.r11 (Int64.of_int ctx.flags);
    ctx.flags <- Flags.set_if false ctx.flags;
    ctx.mode <- Context.Kernel;
    ctx.rip <- ctx.syscall_entry
  | Uop.A_sysret ->
    require_kernel ctx ~at_rip;
    ctx.flags <- Int64.to_int (Context.gpr ctx Ptl_isa.Regs.r11);
    ctx.mode <- Context.User;
    ctx.rip <- Context.gpr ctx Ptl_isa.Regs.rcx
  | Uop.A_int vector ->
    deliver env ctx ~vector ~errcode:0L ~return_rip:u.Uop.next_rip
  | Uop.A_iret ->
    require_kernel ctx ~at_rip;
    let rsp = Context.gpr ctx Ptl_isa.Regs.rsp in
    let rd off = Vmem.read env.Env.vmem ctx ~vaddr:(Int64.add rsp off) ~size:W64.B8 ~at_rip in
    let new_rip = rd 0L in
    let new_mode = rd 8L in
    let new_flags = rd 16L in
    let new_rsp = rd 24L in
    ctx.rip <- new_rip;
    ctx.mode <- (if new_mode = 0L then Context.User else Context.Kernel);
    ctx.flags <- Int64.to_int new_flags;
    Context.set_gpr ctx Ptl_isa.Regs.rsp new_rsp
  | Uop.A_pushf ->
    let rsp = Context.gpr ctx Ptl_isa.Regs.rsp in
    let rsp = push64 env ctx ~rsp (Int64.of_int ctx.flags) ~at_rip in
    Context.set_gpr ctx Ptl_isa.Regs.rsp rsp;
    next ()
  | Uop.A_popf ->
    let rsp = Context.gpr ctx Ptl_isa.Regs.rsp in
    let v = Vmem.read env.Env.vmem ctx ~vaddr:rsp ~size:W64.B8 ~at_rip in
    Context.set_gpr ctx Ptl_isa.Regs.rsp (Int64.add rsp 8L);
    let v = Int64.to_int v in
    (* user mode may not change IF *)
    let v =
      if ctx.mode = Context.Kernel then v
      else Flags.set_if (Flags.iflag ctx.flags) v
    in
    ctx.flags <- v;
    next ()
  | Uop.A_cli ->
    require_kernel ctx ~at_rip;
    ctx.flags <- Flags.set_if false ctx.flags;
    next ()
  | Uop.A_sti ->
    require_kernel ctx ~at_rip;
    ctx.flags <- Flags.set_if true ctx.flags;
    next ()
  | Uop.A_hlt ->
    require_kernel ctx ~at_rip;
    ctx.running <- false;
    next ();
    env.Env.on_hlt ctx
  | Uop.A_pause ->
    next ();
    env.Env.on_pause ctx
  | Uop.A_rdtsc ->
    let tsc = Env.tsc env in
    Context.set_gpr ctx Ptl_isa.Regs.rax (Int64.logand tsc 0xFFFFFFFFL);
    Context.set_gpr ctx Ptl_isa.Regs.rdx (Int64.shift_right_logical tsc 32);
    next ()
  | Uop.A_rdpmc ->
    let idx = Int64.to_int (Context.gpr ctx Ptl_isa.Regs.rcx) in
    let v = env.Env.rdpmc idx in
    Context.set_gpr ctx Ptl_isa.Regs.rax (Int64.logand v 0xFFFFFFFFL);
    Context.set_gpr ctx Ptl_isa.Regs.rdx (Int64.shift_right_logical v 32);
    next ()
  | Uop.A_cpuid ->
    (* "OPTLsimVirtualCPU" identification, leaf-independent *)
    Context.set_gpr ctx Ptl_isa.Regs.rax 1L;
    Context.set_gpr ctx Ptl_isa.Regs.rbx 0x4C54504FL (* "OPTL" *);
    Context.set_gpr ctx Ptl_isa.Regs.rcx 0x206D6973L (* "sim " *);
    Context.set_gpr ctx Ptl_isa.Regs.rdx 0x34365F78L (* "x_64" *);
    next ()
  | Uop.A_mov_to_cr cr ->
    require_kernel ctx ~at_rip;
    let v = Context.gpr ctx (Int64.to_int u.Uop.imm) in
    (match cr with
    | 1 -> ctx.kernel_rsp <- v
    | 3 ->
      ctx.cr3 <- Int64.to_int v;
      Context.flush_tlbs ctx
    | 5 -> ctx.syscall_entry <- v
    | 6 -> ctx.idt_base <- v
    | _ -> Fault.raise_fault Fault.General_protection ~at_rip);
    next ()
  | Uop.A_mov_from_cr cr ->
    require_kernel ctx ~at_rip;
    let v =
      match cr with
      | 1 -> ctx.kernel_rsp
      | 2 -> ctx.cr2
      | 3 -> Int64.of_int ctx.cr3
      | 5 -> ctx.syscall_entry
      | 6 -> ctx.idt_base
      | _ -> Fault.raise_fault Fault.General_protection ~at_rip
    in
    Context.set_gpr ctx (Int64.to_int u.Uop.imm) v;
    next ()
  | Uop.A_invlpg ->
    require_kernel ctx ~at_rip;
    (* address precomputed into t0 by the translation *)
    Context.flush_tlbs ctx;
    next ()
  | Uop.A_ptlcall ->
    next ();
    env.Env.ptlcall ctx
  | Uop.A_kcall ->
    next ();
    env.Env.kcall ctx
