(** Bare-machine builder: a minimal single-VCPU address space for running
    standalone guest programs (tests, examples and microbenchmarks) without
    the full minios kernel. Allocates a page table tree, maps the assembled
    image, a stack and an optional heap, and returns a ready context.

    Real full-system runs go through {!Ptl_kernel} / {!Ptl_hyper}; this is
    the "userspace PTLsim" equivalent. *)

module Pm = Ptl_mem.Phys_mem
module Pt = Ptl_mem.Pagetable
module Asm = Ptl_isa.Asm

type t = {
  env : Env.t;
  ctx : Context.t;
  image : Asm.image;
}

let stack_top = 0x7FFF_F000L
let stack_pages = 16
let heap_base = 0x6000_0000L

(** Map [npages] fresh frames at [vaddr] (page-aligned). *)
let map_pages env (ctx : Context.t) ~vaddr ~npages ~writable ~user =
  let mem = env.Env.mem in
  for i = 0 to npages - 1 do
    let va = Int64.add vaddr (Int64.of_int (i * Pm.page_size)) in
    let mfn = Pm.alloc_page mem in
    Pt.map mem ~cr3_mfn:ctx.Context.cr3 ~vaddr:va ~mfn ~writable ~user
      ~alloc:(fun () -> Pm.alloc_page mem)
      ()
  done

(** Copy [bytes] into guest memory at [vaddr], mapping pages as needed. *)
let load_blob env (ctx : Context.t) ~vaddr ~bytes ~writable ~user =
  let mem = env.Env.mem in
  let base = Int64.logand vaddr (Int64.lognot (Int64.of_int Pm.page_mask)) in
  let last = Int64.add vaddr (Int64.of_int (max 0 (String.length bytes - 1))) in
  let npages =
    Int64.to_int (Int64.div (Int64.sub last base) (Int64.of_int Pm.page_size)) + 1
  in
  for i = 0 to npages - 1 do
    let va = Int64.add base (Int64.of_int (i * Pm.page_size)) in
    if Pt.probe mem ~cr3_mfn:ctx.Context.cr3 ~vaddr:va = None then begin
      let mfn = Pm.alloc_page mem in
      Pt.map mem ~cr3_mfn:ctx.Context.cr3 ~vaddr:va ~mfn ~writable ~user
        ~alloc:(fun () -> Pm.alloc_page mem)
        ()
    end
  done;
  String.iteri
    (fun i c ->
      let va = Int64.add vaddr (Int64.of_int i) in
      match Pt.probe mem ~cr3_mfn:ctx.Context.cr3 ~vaddr:va with
      | Some mfn ->
        Pm.write8 mem
          (Pm.paddr_of_mfn mfn + Int64.to_int (Int64.logand va (Int64.of_int Pm.page_mask)))
          (Char.code c)
      | None -> assert false)
    bytes

(** Map the heap with 2 MiB PS PDEs instead of 4 KiB PTEs: each chunk gets
    a contiguous, 512-aligned frame block so the PDE's base mfn covers the
    whole region. [npages] is rounded up to a whole number of huge pages. *)
let map_huge_heap env (ctx : Context.t) ~npages =
  let mem = env.Env.mem in
  let chunks = (npages + Pt.huge_pages - 1) / Pt.huge_pages in
  for i = 0 to chunks - 1 do
    let va = Int64.add heap_base (Int64.of_int (i * Pt.huge_size)) in
    let mfn = Pm.alloc_pages mem ~align:Pt.huge_pages Pt.huge_pages in
    Pt.map mem ~cr3_mfn:ctx.Context.cr3 ~vaddr:va ~mfn ~writable:true
      ~user:true ~huge:true
      ~alloc:(fun () -> Pm.alloc_page mem)
      ()
  done

(** Build a machine around an assembled image. Execution starts at the
    [entry] symbol (default: the image base) in the given [mode] (default
    kernel, so privileged instructions work in standalone programs).
    [huge_heap] backs the heap with 2 MiB pages (TLB-friendly variant of
    the same address space). *)
let create ?stats ?(mode = Context.Kernel) ?entry ?(heap_pages = 64)
    ?(huge_heap = false) image =
  let env = Env.create ?stats () in
  let ctx = Context.create ~vcpu_id:0 in
  ctx.Context.cr3 <- Pm.alloc_page env.Env.mem;
  (* code (writable so SMC tests can patch it; real kernels map RX) *)
  load_blob env ctx ~vaddr:image.Asm.img_base ~bytes:image.Asm.code ~writable:true
    ~user:true;
  (* stack *)
  map_pages env ctx
    ~vaddr:(Int64.sub stack_top (Int64.of_int (stack_pages * Pm.page_size)))
    ~npages:stack_pages ~writable:true ~user:true;
  (* heap *)
  if heap_pages > 0 then
    if huge_heap then map_huge_heap env ctx ~npages:heap_pages
    else map_pages env ctx ~vaddr:heap_base ~npages:heap_pages ~writable:true ~user:true;
  Context.set_gpr ctx Ptl_isa.Regs.rsp stack_top;
  ctx.Context.mode <- mode;
  ctx.Context.rip <-
    (match entry with
    | Some sym -> Asm.symbol image sym
    | None -> image.Asm.img_base);
  { env; ctx; image }

(** Read guest virtual memory (for assertions). *)
let read_mem t ~vaddr ~size =
  Vmem.read t.env.Env.vmem t.ctx ~vaddr ~size ~at_rip:0L

let write_mem t ~vaddr ~size ~value =
  Vmem.write t.env.Env.vmem t.ctx ~vaddr ~size ~value ~at_rip:0L

let gpr t r = Context.gpr t.ctx r

(** Convenience: build, then run on a fresh sequential core until [hlt]
    (the VCPU goes idle) or [max_insns]. Returns the seqcore. *)
let run_seq ?(max_insns = 1_000_000) t =
  let seq = Seqcore.create t.env t.ctx in
  ignore (Seqcore.run seq ~max_insns);
  seq
