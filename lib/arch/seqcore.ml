(** The sequential functional core.

    Executes uops in program order with no timing model. It serves three of
    the paper's roles at once: the in-order core "used for rapid testing
    and microcode debugging" (§2.2), the functional reference that the
    cycle-accurate cores are validated against in lockstep co-simulation
    (§2.3 / TFSim discussion in §6.3), and — run at a calibrated
    instructions-per-cycle rate — the *native mode* executor that stands in
    for running the domain on the host's physical CPUs.

    x86 instruction atomicity is enforced by buffering register, flag and
    store effects per macro-op and applying them only when the final uop
    (EOM or a taken branch) completes; a fault anywhere in the instruction
    discards the buffers, so delivered exceptions are precise. *)

open Ptl_util
module Uop = Ptl_uop.Uop
module Stats = Ptl_stats.Statstree
module Trace = Ptl_trace.Trace
module Pm = Ptl_mem.Phys_mem

(** Optional per-event callbacks, used by timing monitors layered on the
    functional core (the in-order timed core, perfctr-style functional
    cache/predictor models, trace collectors). *)
type hooks = {
  h_load : vaddr:int64 -> rip:int64 -> unit;
  h_store : vaddr:int64 -> rip:int64 -> unit;
  h_branch :
    rip:int64 ->
    taken:bool ->
    target:int64 ->
    conditional:bool ->
    call:bool ->
    ret:bool ->
    next_rip:int64 ->
    unit;
      (** [call]/[ret] carry the decoder's branch hints (RAS warming);
          [next_rip] is the fall-through address (the return address a
          call would push). *)
  h_insn : rip:int64 -> kernel:bool -> unit;  (* after each macro commit *)
}

type t = {
  env : Env.t;
  ctx : Context.t;
  prefix : string;  (* stats / trace namespace, e.g. "seq", "native" *)
  bbcache : Ptl_uop.Bbcache.t;
  mutable hooks : hooks option;
  c_insns : Stats.counter;
  c_uops : Stats.counter;
  c_loads : Stats.counter;
  c_stores : Stats.counter;
  c_branches : Stats.counter;
  c_taken : Stats.counter;
  c_assists : Stats.counter;
  c_faults : Stats.counter;
  c_irqs : Stats.counter;
}

let create ?(prefix = "seq") ?max_bb_insns env ctx =
  let c suffix = Stats.counter env.Env.stats (prefix ^ "." ^ suffix) in
  {
    env;
    ctx;
    prefix;
    bbcache = Ptl_uop.Bbcache.create ?max_insns:max_bb_insns env.Env.stats;
    hooks = None;
    c_insns = c "insns";
    c_uops = c "uops";
    c_loads = c "loads";
    c_stores = c "stores";
    c_branches = c "branches";
    c_taken = c "taken_branches";
    c_assists = c "assists";
    c_faults = c "faults";
    c_irqs = c "irqs";
  }

type status =
  | Executed of int  (* instructions committed in this step *)
  | Idle  (* VCPU halted, waiting for an interrupt *)
  | Interrupted  (* an external interrupt was delivered *)

(* Per-macro-op speculative state. *)
type macro_state = {
  mutable reg_writes : (int * int64) list;  (* newest first *)
  mutable store_writes : (int64 * W64.size * int64) list;  (* newest first *)
  mutable cur_flags : int;
}

let read_reg ms ctx r =
  if r = Uop.reg_none then 0L
  else if r = Uop.reg_flags then Int64.of_int ms.cur_flags
  else
    match List.assoc_opt r ms.reg_writes with
    | Some v -> v
    | None -> Context.get_reg ctx r

let buffer_reg ms r v = if r <> Uop.reg_none then ms.reg_writes <- (r, v) :: ms.reg_writes

(* Loads see this macro-op's earlier stores only on exact address+size
   match (our microcode never generates partial overlap within one
   instruction). *)
let buffered_load ms vaddr size =
  List.find_map
    (fun (a, s, v) -> if a = vaddr && s = size then Some v else None)
    ms.store_writes

let commit_macro t ms =
  List.iter (fun (r, v) -> Context.set_reg t.ctx r v) (List.rev ms.reg_writes);
  t.ctx.Context.flags <- ms.cur_flags;
  (* commit stores, with SMC detection on code pages *)
  List.iter
    (fun (vaddr, size, value) ->
      Vmem.write t.env.Env.vmem t.ctx ~vaddr ~size ~value ~at_rip:t.ctx.Context.rip;
      let paddr =
        Vmem.translate t.env.Env.vmem t.ctx ~vaddr ~write:true ~fetch:false
          ~at_rip:t.ctx.Context.rip
      in
      ignore (Ptl_uop.Bbcache.store_committed t.bbcache (Pm.mfn_of_paddr paddr)))
    (List.rev ms.store_writes);
  t.ctx.Context.insns_committed <- t.ctx.Context.insns_committed + 1;
  Stats.incr t.c_insns;
  if !Trace.on then
    Trace.emit ~uuid:t.ctx.Context.insns_committed ~rip:t.ctx.Context.rip
      ~tag:t.prefix Trace.Commit;
  match t.hooks with
  | Some h -> h.h_insn ~rip:t.ctx.Context.rip ~kernel:(Context.is_kernel t.ctx)
  | None -> ()

(* Execute the uops of one macro-op (one x86 instruction), starting at
   index [i] of [uops]. Returns [`Fallthrough j] (next uop index),
   [`Redirect rip] (taken branch / assist redirect) — in both cases the
   instruction committed — or raises [Fault.Guest_fault]. *)
let exec_macro t uops i =
  let ctx = t.ctx in
  let ms = { reg_writes = []; store_writes = []; cur_flags = ctx.Context.flags } in
  let finish_insn (u : Uop.t) i =
    if u.Uop.eom then begin
      commit_macro t ms;
      ctx.Context.rip <- u.Uop.next_rip;
      `Fallthrough (i + 1)
    end
    else `Continue
  in
  let rec go i =
    let u = uops.(i) in
    Stats.incr t.c_uops;
    match u.Uop.op with
    | Uop.Assist a ->
      (* assists commit the buffered state first, then run serialized *)
      commit_macro t ms;
      Stats.incr t.c_assists;
      Assists.run t.env ctx u a;
      `Redirect ctx.Context.rip
    | _ ->
      let at_rip = u.Uop.rip in
      let ra = read_reg ms ctx u.Uop.ra in
      let rb = read_reg ms ctx u.Uop.rb in
      let rc = read_reg ms ctx u.Uop.rc in
      let out = Ptl_uop.Exec.execute u ~ra ~rb ~rc ~flags:ms.cur_flags in
      ms.cur_flags <- out.Ptl_uop.Exec.flags;
      if Uop.is_load u then begin
        Stats.incr t.c_loads;
        let vaddr = out.Ptl_uop.Exec.value in
        (match t.hooks with
        | Some h -> h.h_load ~vaddr ~rip:at_rip
        | None -> ());
        let raw =
          match buffered_load ms vaddr u.Uop.mem_size with
          | Some v -> v
          | None -> Vmem.read t.env.Env.vmem ctx ~vaddr ~size:u.Uop.mem_size ~at_rip
        in
        buffer_reg ms u.Uop.rd (Ptl_uop.Exec.finish_load u raw);
        match finish_insn u i with `Continue -> go (i + 1) | r -> r
      end
      else if Uop.is_store u then begin
        Stats.incr t.c_stores;
        let vaddr = out.Ptl_uop.Exec.value in
        (match t.hooks with
        | Some h -> h.h_store ~vaddr ~rip:at_rip
        | None -> ());
        (* fault check now, so the whole instruction discards on fault *)
        ignore
          (Vmem.translate t.env.Env.vmem ctx ~vaddr ~write:true ~fetch:false ~at_rip);
        ms.store_writes <-
          (vaddr, u.Uop.mem_size, Ptl_uop.Exec.store_data u rc) :: ms.store_writes;
        match finish_insn u i with `Continue -> go (i + 1) | r -> r
      end
      else if Uop.is_branch u then begin
        Stats.incr t.c_branches;
        (match t.hooks with
        | Some h ->
          let conditional =
            match u.Uop.op with
            | Uop.Brc _ | Uop.Brnz | Uop.Brz -> true
            | _ -> false
          in
          h.h_branch ~rip:at_rip ~taken:out.Ptl_uop.Exec.taken
            ~target:out.Ptl_uop.Exec.target ~conditional
            ~call:u.Uop.hint_call ~ret:u.Uop.hint_ret ~next_rip:u.Uop.next_rip
        | None -> ());
        if out.Ptl_uop.Exec.taken then begin
          Stats.incr t.c_taken;
          (* a taken branch ends its macro-op even mid-microcode *)
          commit_macro t ms;
          ctx.Context.rip <- out.Ptl_uop.Exec.target;
          `Redirect out.Ptl_uop.Exec.target
        end
        else
          match finish_insn u i with `Continue -> go (i + 1) | r -> r
      end
      else begin
        buffer_reg ms u.Uop.rd out.Ptl_uop.Exec.value;
        match finish_insn u i with `Continue -> go (i + 1) | r -> r
      end
  in
  go i

let fetch_fn t ~at_rip vaddr = Vmem.fetch_byte t.env.Env.vmem t.ctx ~at_rip vaddr
let mfn_fn t ~at_rip vaddr = Vmem.code_mfn t.env.Env.vmem t.ctx ~at_rip vaddr

(** Execute one basic block's worth of instructions (or deliver one pending
    interrupt, or report the VCPU idle). Interrupts are sampled at block
    boundaries; blocks are bounded (16 instructions), so delivery latency
    is bounded and deterministic. *)
let step_block t : status =
  if !Trace.on then Trace.set_cycle t.env.Env.cycle;
  let ctx = t.ctx in
  if not ctx.Context.running then
    if Assists.try_deliver_irq t.env ctx then begin
      Stats.incr t.c_irqs;
      Interrupted
    end
    else Idle
  else if Assists.try_deliver_irq t.env ctx then begin
    Stats.incr t.c_irqs;
    Interrupted
  end
  else begin
    let rip = ctx.Context.rip in
    let executed = ref 0 in
    (try
       let bb =
         Ptl_uop.Bbcache.lookup t.bbcache ~rip ~kernel:(Context.is_kernel ctx)
           ~fetch:(fetch_fn t ~at_rip:rip)
           ~mfn_of:(mfn_fn t ~at_rip:rip)
       in
       let rec loop i =
         if i < Array.length bb.Ptl_uop.Bbcache.uops then
           match exec_macro t bb.Ptl_uop.Bbcache.uops i with
           | `Fallthrough j ->
             incr executed;
             loop j
           | `Redirect _ -> incr executed
           | `Continue -> assert false
       in
       loop 0
     with
     | Fault.Guest_fault f ->
       Stats.incr t.c_faults;
       Assists.deliver_fault t.env ctx f
     | Ptl_uop.Exec.Divide_error ->
       (* the divide uop faults before its macro commits, so ctx.rip is
          still the faulting instruction (the OOO core does the same via
          its Faulted completion state) *)
       Stats.incr t.c_faults;
       Assists.deliver_fault t.env ctx
         { Fault.kind = Fault.Divide_error; at_rip = ctx.Context.rip });
    Executed !executed
  end

(** Run until [max_insns] instructions have committed or the VCPU goes
    idle with no interrupt pending. Returns the number committed. This is
    the native-mode execution loop: the caller advances simulated time at
    the calibrated native IPC rate. *)
let run t ~max_insns =
  let total = ref 0 in
  let stop = ref false in
  while (not !stop) && !total < max_insns do
    match step_block t with
    | Executed n -> if n = 0 then stop := true else total := !total + n
    | Interrupted -> ()
    | Idle -> stop := true
  done;
  !total

let insns t = Stats.value t.c_insns
let uops t = Stats.value t.c_uops
