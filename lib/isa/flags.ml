(** Processor condition-code flags and condition evaluation.

    Flags are kept as an int bitmask using the real x86 RFLAGS bit positions
    so that [pushf]/[popf] and interrupt stack frames look authentic. The
    modeled flags are CF, PF, ZF, SF, OF plus the IF interrupt-enable bit
    (AF is not modeled; see DESIGN.md "Key modelling decisions"). *)

type t = int

let cf_bit = 0
let pf_bit = 2
let zf_bit = 6
let sf_bit = 7
let if_bit = 9
let of_bit = 11

let cf_mask = 1 lsl cf_bit
let pf_mask = 1 lsl pf_bit
let zf_mask = 1 lsl zf_bit
let sf_mask = 1 lsl sf_bit
let if_mask = 1 lsl if_bit
let of_mask = 1 lsl of_bit

(** All condition-code flags (excluding IF). *)
let cc_mask = cf_mask lor pf_mask lor zf_mask lor sf_mask lor of_mask

let empty = 0

let cf f = f land cf_mask <> 0
let pf f = f land pf_mask <> 0
let zf f = f land zf_mask <> 0
let sf f = f land sf_mask <> 0
let iflag f = f land if_mask <> 0
let off f = f land of_mask <> 0

let set_bool mask b f = if b then f lor mask else f land lnot mask

let set_cf = set_bool cf_mask
let set_pf = set_bool pf_mask
let set_zf = set_bool zf_mask
let set_sf = set_bool sf_mask
let set_if = set_bool if_mask
let set_of = set_bool of_mask

(** The five modeled condition-code flags by name, in RFLAGS bit order.
    Spec-table hook: [lib/spec] iterates this to state a per-flag
    Written/Preserved/Undefined lattice, and the derived property tests
    iterate it to check every flag of every row. *)
let all_cc =
  [ ("CF", cf_mask); ("PF", pf_mask); ("ZF", zf_mask); ("SF", sf_mask);
    ("OF", of_mask) ]

(** Build the ZF/SF/PF portion from a result value of the given size,
    preserving the other bits of [f]. *)
let of_result size v f =
  let open Ptl_util in
  let f = set_zf (W64.is_zero size v) f in
  let f = set_sf (W64.sign_bit size v) f in
  set_pf (W64.parity v) f

(** The sixteen x86 condition codes, in encoding order 0..15. *)
type cond =
  | O | NO | B | AE | E | NE | BE | A | S | NS | P | NP | L | GE | LE | G

let cond_code = function
  | O -> 0 | NO -> 1 | B -> 2 | AE -> 3 | E -> 4 | NE -> 5 | BE -> 6 | A -> 7
  | S -> 8 | NS -> 9 | P -> 10 | NP -> 11 | L -> 12 | GE -> 13 | LE -> 14 | G -> 15

let cond_of_code = function
  | 0 -> O | 1 -> NO | 2 -> B | 3 -> AE | 4 -> E | 5 -> NE | 6 -> BE | 7 -> A
  | 8 -> S | 9 -> NS | 10 -> P | 11 -> NP | 12 -> L | 13 -> GE | 14 -> LE | 15 -> G
  | n -> invalid_arg (Printf.sprintf "Flags.cond_of_code: %d" n)

let cond_name = function
  | O -> "o" | NO -> "no" | B -> "b" | AE -> "ae" | E -> "e" | NE -> "ne"
  | BE -> "be" | A -> "a" | S -> "s" | NS -> "ns" | P -> "p" | NP -> "np"
  | L -> "l" | GE -> "ge" | LE -> "le" | G -> "g"

(** Evaluate a condition against a flags word, per the x86 definitions. *)
let eval cond f =
  match cond with
  | O -> off f
  | NO -> not (off f)
  | B -> cf f
  | AE -> not (cf f)
  | E -> zf f
  | NE -> not (zf f)
  | BE -> cf f || zf f
  | A -> not (cf f || zf f)
  | S -> sf f
  | NS -> not (sf f)
  | P -> pf f
  | NP -> not (pf f)
  | L -> sf f <> off f
  | GE -> sf f = off f
  | LE -> zf f || sf f <> off f
  | G -> not (zf f) && sf f = off f

(** The inverse condition (same encoding trick as x86: flip bit 0). *)
let negate cond = cond_of_code (cond_code cond lxor 1)

let to_string f =
  String.concat ""
    [ (if off f then "O" else "o");
      (if sf f then "S" else "s");
      (if zf f then "Z" else "z");
      (if pf f then "P" else "p");
      (if cf f then "C" else "c");
      (if iflag f then "I" else "i") ]
