(** Abstract syntax of the x86lite-64 guest instruction set.

    x86lite-64 is the repository's stand-in for real x86-64 (see DESIGN.md):
    a two-operand, variable-length CISC ISA with x86 semantics — memory
    destinations on ALU ops, condition-code flags, per-instruction operand
    sizes, LOCK and REP prefixes, x87-style stack FP and SSE-style scalar
    FP, privileged control-register moves, and the [ptlcall] breakout
    opcode 0x0f37 from the paper. Branch targets are stored as absolute
    virtual addresses; the encoder emits rip-relative displacements. *)

open Ptl_util

(** A memory operand: [base + index*scale + disp]. [scale] is 1, 2, 4 or 8. *)
type mem = {
  base : Regs.gpr option;
  index : Regs.gpr option;
  scale : int;
  disp : int64;
}

let mem ?base ?index ?(scale = 1) ?(disp = 0L) () =
  if not (List.mem scale [ 1; 2; 4; 8 ]) then invalid_arg "Insn.mem: scale";
  { base; index; scale; disp }

(** Absolute-address memory operand. *)
let mem_abs addr = mem ~disp:addr ()

(** [base + disp]. *)
let mem_bd base disp = mem ~base ~disp ()

(** Register-or-memory operand position. *)
type rm = Reg of Regs.gpr | Mem of mem

(** Generic source operand. *)
type src = RM of rm | Imm of int64

type alu = Add | Or | Adc | Sbb | And | Sub | Xor | Cmp
type unary = Not | Neg | Inc | Dec
type shift = Shl | Shr | Sar | Rol | Ror
type muldiv = Mul | Imul1 | Div | Idiv
type bittest = Bt | Bts | Btr | Btc
type fpop = Fadd | Fsub | Fmul | Fdiv
type sse2 = Addsd | Subsd | Mulsd | Divsd

(** Shift count: immediate or the CL register. *)
type count = ImmC of int | Cl

(** Bit-test source: register or immediate bit index. *)
type bitsrc = Breg of Regs.gpr | Bimm of int

type t =
  | Nop
  | Alu of alu * W64.size * rm * src
  | Test of W64.size * rm * src
  | Mov of W64.size * rm * src
  | Movabs of Regs.gpr * int64  (* 64-bit immediate load *)
  | Lea of Regs.gpr * mem
  | Movzx of W64.size * W64.size * Regs.gpr * rm  (* dst size, src size *)
  | Movsx of W64.size * W64.size * Regs.gpr * rm
  | Unary of unary * W64.size * rm
  | Shift of shift * W64.size * rm * count
  | Imul2 of W64.size * Regs.gpr * rm
  | Muldiv of muldiv * W64.size * rm  (* implicit rax/rdx, as on x86 *)
  | Push of src
  | Pop of rm
  | Call of int64  (* absolute target *)
  | CallInd of rm
  | Ret
  | Jmp of int64
  | JmpInd of rm
  | Jcc of Flags.cond * int64
  | Setcc of Flags.cond * rm
  | Cmovcc of Flags.cond * W64.size * Regs.gpr * rm
  | Xchg of W64.size * rm * Regs.gpr
  | Xadd of W64.size * rm * Regs.gpr
  | Cmpxchg of W64.size * rm * Regs.gpr  (* implicit rax comparand *)
  | Bittest of bittest * W64.size * rm * bitsrc
  | Movs of W64.size * bool  (* string copy; bool = REP *)
  | Stos of W64.size * bool
  | Lods of W64.size * bool
  | Hlt
  | Syscall
  | Sysret
  | Int of int
  | Iret
  | Pushf
  | Popf
  | Cli
  | Sti
  | Pause
  | Ptlcall  (* 0x0f37: PTLsim breakout opcode *)
  | Kcall  (* paravirtual kernel/hypervisor service call *)
  | Rdtsc
  | Rdpmc
  | Cpuid
  | MovToCr of int * Regs.gpr
  | MovFromCr of int * Regs.gpr
  | Invlpg of mem
  | Fld of mem  (* x87-lite: push [mem] as double *)
  | Fst of mem  (* pop st0 to [mem] *)
  | Fp of fpop * mem  (* st0 <- st0 op [mem] *)
  | SseLoad of Regs.xmm * mem
  | SseStore of mem * Regs.xmm
  | SseMov of Regs.xmm * Regs.xmm
  | Sse of sse2 * Regs.xmm * Regs.xmm
  | Cvtsi2sd of Regs.xmm * Regs.gpr
  | Cvtsd2si of Regs.gpr * Regs.xmm
  | Comisd of Regs.xmm * Regs.xmm
  | Locked of t  (* LOCK prefix; validity checked by [lockable] *)

(** Whether [insn] may legally carry a LOCK prefix: a read-modify-write
    with a memory destination, as on x86. *)
let lockable = function
  | Alu ((Add | Or | Adc | Sbb | And | Sub | Xor), _, Mem _, _)
  | Unary ((Not | Neg | Inc | Dec), _, Mem _)
  | Xchg (_, Mem _, _)
  | Xadd (_, Mem _, _)
  | Cmpxchg (_, Mem _, _)
  | Bittest ((Bts | Btr | Btc), _, Mem _, _) -> true
  | _ -> false

(** Whether the instruction is a control transfer terminating a basic
    block. *)
let is_branch = function
  | Call _ | CallInd _ | Ret | Jmp _ | JmpInd _ | Jcc _ | Syscall | Sysret
  | Int _ | Iret | Ptlcall | Hlt -> true
  | _ -> false

(** Privileged instructions (#GP from user mode). *)
let is_privileged = function
  | MovToCr _ | MovFromCr _ | Invlpg _ | Cli | Sti | Hlt | Iret | Sysret -> true
  | _ -> false

let alu_name = function
  | Add -> "add" | Or -> "or" | Adc -> "adc" | Sbb -> "sbb"
  | And -> "and" | Sub -> "sub" | Xor -> "xor" | Cmp -> "cmp"

(** Spec-table key for an instruction: the mnemonic with operand shapes
    erased (all [Alu] forms of [Add] are one "add" row; a LOCK prefix
    shares its inner instruction's row). Two deliberate splits: the
    two-operand [Imul2] is "imul2" (its flag lattice differs from the
    one-operand widening "imul"), and string ops keep their own keys.
    Used by [lib/spec] to index declarative rows and by the conformance
    coverage report. *)
let rec mnemonic = function
  | Nop -> "nop"
  | Alu (op, _, _, _) -> alu_name op
  | Test _ -> "test"
  | Mov _ -> "mov"
  | Movabs _ -> "movabs"
  | Lea _ -> "lea"
  | Movzx _ -> "movzx"
  | Movsx _ -> "movsx"
  | Unary (u, _, _) -> unary_name u
  | Shift (s, _, _, _) -> shift_name s
  | Imul2 _ -> "imul2"
  | Muldiv (m, _, _) -> muldiv_name m
  | Push _ -> "push"
  | Pop _ -> "pop"
  | Call _ | CallInd _ -> "call"
  | Ret -> "ret"
  | Jmp _ | JmpInd _ -> "jmp"
  | Jcc _ -> "jcc"
  | Setcc _ -> "setcc"
  | Cmovcc _ -> "cmovcc"
  | Xchg _ -> "xchg"
  | Xadd _ -> "xadd"
  | Cmpxchg _ -> "cmpxchg"
  | Bittest (b, _, _, _) -> bittest_name b
  | Movs _ -> "movs"
  | Stos _ -> "stos"
  | Lods _ -> "lods"
  | Hlt -> "hlt"
  | Syscall -> "syscall"
  | Sysret -> "sysret"
  | Int _ -> "int"
  | Iret -> "iret"
  | Pushf -> "pushf"
  | Popf -> "popf"
  | Cli -> "cli"
  | Sti -> "sti"
  | Pause -> "pause"
  | Ptlcall -> "ptlcall"
  | Kcall -> "kcall"
  | Rdtsc -> "rdtsc"
  | Rdpmc -> "rdpmc"
  | Cpuid -> "cpuid"
  | MovToCr _ -> "mov_to_cr"
  | MovFromCr _ -> "mov_from_cr"
  | Invlpg _ -> "invlpg"
  | Fld _ -> "fld"
  | Fst _ -> "fst"
  | Fp (f, _) -> fpop_name f
  | SseLoad _ -> "sseload"
  | SseStore _ -> "ssestore"
  | SseMov _ -> "ssemov"
  | Sse (s, _, _) -> sse2_name s
  | Cvtsi2sd _ -> "cvtsi2sd"
  | Cvtsd2si _ -> "cvtsd2si"
  | Comisd _ -> "comisd"
  | Locked i -> mnemonic i

and unary_name = function Not -> "not" | Neg -> "neg" | Inc -> "inc" | Dec -> "dec"

and shift_name = function
  | Shl -> "shl" | Shr -> "shr" | Sar -> "sar" | Rol -> "rol" | Ror -> "ror"

and muldiv_name = function
  | Mul -> "mul" | Imul1 -> "imul" | Div -> "div" | Idiv -> "idiv"

and bittest_name = function Bt -> "bt" | Bts -> "bts" | Btr -> "btr" | Btc -> "btc"

and fpop_name = function Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

and sse2_name = function
  | Addsd -> "addsd" | Subsd -> "subsd" | Mulsd -> "mulsd" | Divsd -> "divsd"
