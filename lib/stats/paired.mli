(** Paired-sample statistics for matched-pair configuration comparison
    (common random numbers).

    When two machine configurations replay the *same* captured interval
    set, the per-interval metric differences [d_i = candidate_i -
    baseline_i] share all workload variance: the confidence interval of
    the mean difference shrinks by the (often large) interval-to-interval
    correlation, so small real deltas resolve at budgets where
    independent runs drown in phase noise. This module is pure
    arithmetic over the paired metric arrays; {!Ptl_sweep.Sweep} feeds
    it per-interval CPIs. *)

(** Result of comparing [candidate] against [baseline] over [n] matched
    pairs. Deltas are [candidate - baseline]: negative means the
    candidate is better when the metric is a cost (CPI). *)
type t = {
  n : int;  (** matched pairs compared *)
  mean_baseline : float;
  mean_candidate : float;
  delta_mean : float;  (** mean of the per-pair differences *)
  delta_sd : float;  (** sample standard deviation of the differences *)
  delta_ci95 : float;
      (** 95% half-width of [delta_mean] under pairing:
          [1.96 * delta_sd / sqrt n] *)
  indep_ci95 : float;
      (** 95% half-width the same data would give WITHOUT pairing —
          two independent samples of size [n]:
          [1.96 * sqrt (var_baseline/n + var_candidate/n)]. The
          common-random-numbers payoff is [indep_ci95 / delta_ci95]. *)
}

(** Mean of an array; 0 on empty. *)
val mean : float array -> float

(** Unbiased sample standard deviation (n-1); 0 for n <= 1. *)
val sd : float array -> float

(** Compare matched pairs. Raises [Invalid_argument] if the arrays
    differ in length. *)
val compare : baseline:float array -> candidate:float array -> t

(** [Win] = the paired 95% CI lies strictly below zero (candidate's
    metric is smaller); [Loss] = strictly above; [Tie] = the CI spans
    zero, or fewer than 2 pairs. *)
type verdict = Win | Loss | Tie

val verdict : t -> verdict
val verdict_to_string : verdict -> string

(** Does the paired 95% CI exclude zero? (False for n < 2.) *)
val paired_excludes_zero : t -> bool

(** Would the unpaired CI on the same data exclude zero? *)
val indep_excludes_zero : t -> bool
