(** Periodic statistics snapshots and derived per-interval series.

    The paper takes a snapshot every 2.2 million cycles (1000 per simulated
    second at 2.2 GHz) and plots per-interval rates; this module implements
    that snapshot schedule and the series arithmetic used by the Figure 2
    (cycles per CPU mode) and Figure 3 (miss/mispredict rates) plots. *)

type t = {
  stats : Statstree.t;
  interval : int;  (* cycles between snapshots *)
  mutable next_cycle : int;
  mutable snaps : Statstree.snapshot list;  (* newest first *)
}

let create stats ~interval =
  if interval <= 0 then invalid_arg "Timelapse.create";
  { stats; interval; next_cycle = interval; snaps = [ Statstree.snapshot stats ~cycle:0 ] }

(** Call once per simulated cycle (or with the current cycle whenever
    convenient); takes snapshots on schedule. *)
let tick t ~cycle =
  if cycle >= t.next_cycle then begin
    t.snaps <- Statstree.snapshot t.stats ~cycle :: t.snaps;
    t.next_cycle <- t.next_cycle + t.interval
  end

(** Force a final snapshot at [cycle] (end of run). When the schedule
    already took a snapshot at exactly this cycle (the run ended on an
    interval boundary), no duplicate zero-length interval is appended. *)
let finish t ~cycle =
  match t.snaps with
  | s :: _ when s.Statstree.cycle = cycle -> ()
  | _ -> t.snaps <- Statstree.snapshot t.stats ~cycle :: t.snaps

let snapshots t = List.rev t.snaps

(** Per-interval increases of the counter at [path]: element [i] is the
    increase between snapshot [i] and snapshot [i+1]. *)
let series t path =
  let snaps = Array.of_list (snapshots t) in
  List.init
    (max 0 (Array.length snaps - 1))
    (fun i -> Statstree.delta snaps.(i) snaps.(i + 1) path)

(** Per-interval ratio of two counters, as a fraction in [0,1]:
    [ratio_series t num den] gives delta(num)/delta(den) per interval
    (0 where the denominator did not move). *)
let ratio_series t num den =
  let n = series t num and d = series t den in
  List.map2
    (fun n d -> if d = 0 then 0.0 else float_of_int n /. float_of_int d)
    n d

(** Number of completed intervals. *)
let intervals t = max 0 (List.length t.snaps - 1)

(** Render selected series as CSV: one row per interval, one column per
    path (plus the interval-end cycle). Used to export Figure 2/3 data
    for external plotting. *)
let to_csv t ~paths =
  let snaps = Array.of_list (snapshots t) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("cycle," ^ String.concat "," paths ^ "\n");
  for i = 0 to Array.length snaps - 2 do
    Buffer.add_string buf (string_of_int snaps.(i + 1).Statstree.cycle);
    List.iter
      (fun p ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int (Statstree.delta snaps.(i) snaps.(i + 1) p)))
      paths;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
