(* Paired-sample statistics: see paired.mli. Pure float arithmetic so
   the fixtures in test/test_sweep.ml can be hand-computed. The z value
   matches Sample.aggregate's normal 95% interval. *)

let z95 = 1.96

type t = {
  n : int;
  mean_baseline : float;
  mean_candidate : float;
  delta_mean : float;
  delta_sd : float;
  delta_ci95 : float;
  indep_ci95 : float;
}

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int n

(* unbiased sample variance (n-1 denominator); 0 for n <= 1 *)
let variance a =
  let n = Array.length a in
  if n <= 1 then 0.0
  else begin
    let m = mean a in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
    /. float_of_int (n - 1)
  end

let sd a = sqrt (variance a)

let compare ~baseline ~candidate =
  let n = Array.length baseline in
  if Array.length candidate <> n then
    invalid_arg "Paired.compare: arrays differ in length";
  let deltas = Array.init n (fun i -> candidate.(i) -. baseline.(i)) in
  let delta_sd = sd deltas in
  let fn = float_of_int (max 1 n) in
  let delta_ci95 = if n <= 1 then 0.0 else z95 *. delta_sd /. sqrt fn in
  let indep_ci95 =
    if n <= 1 then 0.0
    else z95 *. sqrt ((variance baseline /. fn) +. (variance candidate /. fn))
  in
  {
    n;
    mean_baseline = mean baseline;
    mean_candidate = mean candidate;
    delta_mean = mean deltas;
    delta_sd;
    delta_ci95;
    indep_ci95;
  }

type verdict = Win | Loss | Tie

let verdict t =
  if t.n < 2 then Tie
  else if t.delta_mean +. t.delta_ci95 < 0.0 then Win
  else if t.delta_mean -. t.delta_ci95 > 0.0 then Loss
  else Tie

let verdict_to_string = function Win -> "win" | Loss -> "loss" | Tie -> "tie"

let paired_excludes_zero t = verdict t <> Tie

let indep_excludes_zero t =
  t.n >= 2 && Float.abs t.delta_mean > t.indep_ci95
