(** Periodic statistics snapshots and derived per-interval series — the
    machinery behind the paper's Figures 2 and 3 (snapshots every 2.2M
    cycles, per-interval rates). *)

type t

(** [create stats ~interval] snapshots every [interval] cycles (> 0). *)
val create : Statstree.t -> interval:int -> t

(** Call with the current cycle; takes snapshots on schedule. *)
val tick : t -> cycle:int -> unit

(** Force a final snapshot (end of run / ptlcall -snapshot). Idempotent
    on an exact interval boundary: when a snapshot at this cycle already
    exists, no duplicate zero-length interval is appended. *)
val finish : t -> cycle:int -> unit

val snapshots : t -> Statstree.snapshot list

(** Per-interval increases of a counter path. *)
val series : t -> string -> int list

(** Per-interval delta(num)/delta(den), 0 where the denominator did not
    move. *)
val ratio_series : t -> string -> string -> float list

val intervals : t -> int

(** CSV export: one row per interval (cycle + one column per path). *)
val to_csv : t -> paths:string list -> string
