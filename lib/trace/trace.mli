(** Cycle-accurate pipeline event trace (the paper's §2.3 event-log ring
    buffer).

    Emit sites across the simulator record typed events into a bounded
    ring buffer that overwrites its oldest entries, so the most recent
    window of pipeline activity can always be reconstructed cycle by
    cycle. The module is a process-global: the disabled path at each emit
    site is exactly one branch on {!on}, with no allocation.

    Usage at an emit site:
    {[ if !Trace.on then Trace.emit ~core ~uuid ~rip Trace.Issue ]} *)

type kind =
  | Fetch
  | Rename
  | Dispatch
  | Issue
  | Forward
  | Writeback
  | Replay
  | Annul
  | Redirect
  | Flush
  | Mispredict
  | Commit      (** one committed x86 instruction *)
  | Commit_uop  (** one committed uop of that instruction *)
  | Cache_hit
  | Cache_miss
  | Prefetch
  | Tlb_hit
  | Tlb_miss
  | Bb_hit
  | Bb_miss
  | Bpred_predict
  | Bpred_update
  | Page_fault     (** demand-paging #PF resolved by the guest kernel *)
  | Tlb_shootdown  (** cross-core invalidation IPI *)
  | Pwc_hit        (** page-walk-cache hit (slot = depth) *)
  | Pwc_miss

val kind_name : kind -> string

(** Coarse event classes, the unit of [-trace-filter] selection:
    [Pipe] fetch..mispredict, [Retire] commit events, [Mem] caches,
    [Tlb], [Bb] basic-block cache, [Bpred] predictor, [Vm] virtual
    memory (page faults, shootdowns, page-walk caches). *)
type cls = Pipe | Retire | Mem | Tlb | Bb | Bpred | Vm

val class_of : kind -> cls
val class_name : cls -> string
val all_classes : cls list

(** Parse a comma-separated class list, e.g. ["pipe,commit,tlb"]. The
    empty string selects every class; unknown names raise
    [Invalid_argument]. *)
val parse_classes : string -> cls list

type event = {
  ev_cycle : int;
  ev_kind : kind;
  ev_core : int;
  ev_thread : int;
  ev_uuid : int;    (** fetch-order uop id; -1 when not uop-scoped *)
  ev_rip : int64;
  ev_slot : int;    (** ROB index / cluster / level; kind-specific *)
  ev_info : int64;  (** kind-specific payload (address, target, ...) *)
  ev_tag : string;  (** short detail: structure name, replay reason *)
}

(** When capture actually begins. *)
type trigger =
  | Immediate
  | At_cycle of int   (** begin logging at a given simulated cycle *)
  | On_mispredict     (** begin at the first mispredicted branch *)
  | On_sample
      (** begin at the first measured sampling interval (opened by the
          sampling supervisor calling {!sample_boundary}) *)

(** The one-branch gate: true iff tracing is configured. Emit sites MUST
    guard with [if !Trace.on] so the disabled path never allocates. *)
val on : bool ref

(** Arm the trace with a fresh ring of [capacity] events (default 2^20).
    [start_cycle] is sugar for [~trigger:(At_cycle n)] (an explicit
    [trigger] wins); [stop_cycle] closes the capture window; [rip]
    restricts capture to events carrying that exact RIP; [classes]
    restricts by event class. *)
val configure :
  ?capacity:int ->
  ?start_cycle:int ->
  ?stop_cycle:int ->
  ?rip:int64 ->
  ?classes:cls list ->
  ?trigger:trigger ->
  unit ->
  unit

(** Disarm tracing; also finalizes and detaches any streaming sink. *)
val disable : unit -> unit

(** Open the {!On_sample} trigger: the sampling supervisor calls this at
    the start of each measured interval; capture begins at the first one
    and latches open. A no-op under any other trigger. *)
val sample_boundary : unit -> unit

(** Drop captured events but keep the configuration armed (re-arms the
    trigger). *)
val clear : unit -> unit

(** Cores store the simulated cycle here once per step so leaf emitters
    (caches, TLBs, the predictor) need not thread it through. *)
val set_cycle : int -> unit

val now : unit -> int

(** Record one event; a no-op unless {!on} (but call sites should guard
    themselves for zero disabled-path cost). Defaults: [core=0]
    [thread=0] [uuid=-1] [rip=0L] [slot=-1] [info=0L] [tag=""]. *)
val emit :
  ?core:int ->
  ?thread:int ->
  ?uuid:int ->
  ?rip:int64 ->
  ?slot:int ->
  ?info:int64 ->
  ?tag:string ->
  kind ->
  unit

(** Oldest-to-youngest snapshot of the captured window. *)
val events : unit -> event list

(** Events accepted into the ring over the whole run (including ones
    since lost to wraparound). *)
val captured : unit -> int

(** Accepted events lost to ring wraparound. *)
val overwritten : unit -> int

(** Events currently in the window. *)
val length : unit -> int

val count : (event -> bool) -> int

(** Committed x86 instructions in the window, optionally restricted to
    one core model's commit [tag] (e.g. ["ooo"]). *)
val commits : ?tag:string -> unit -> int

(** One event as a single human-readable line (no trailing newline) — the
    line format of {!dump_text}, reused by divergence reports. *)
val event_to_string : event -> string

(** The most recent [n] events of the window, oldest first. *)
val recent : int -> event list

(** Human-readable event log, oldest first. *)
val dump_text : out_channel -> unit

(** CSV: one row per event. *)
val dump_csv : out_channel -> unit

(** Chrome trace-event JSON (Perfetto / chrome://tracing): one process
    per core, one track per (SMT thread, pipeline stage) pair — thread
    N's tracks occupy a contiguous tid band labeled "tN:stage", so an
    SMT core's threads group into contiguous bands — one 1-cycle
    complete event per trace event, with metadata naming the tracks,
    plus per-core counter tracks ("C" events) for page-fault and
    shootdown rates bucketed over the window. *)
val dump_chrome : out_channel -> unit

(** Output format of an incremental streaming sink. *)
type stream_format = Stream_text | Stream_csv | Stream_chrome

(** ["text"], ["csv"], ["chrome"] (also ["txt"], ["json"]). *)
val stream_format_of_name : string -> stream_format option

(** Attach an incremental sink: every accepted event (trigger and filters
    already applied) is also written to the channel immediately, in
    addition to the ring, so a crashed run still leaves a usable trace
    and a trace longer than the ring survives wraparound. Replaces any
    sink already installed (finalizing it first). Call {!stream_stop} (or
    {!disable}) before closing the channel — the Chrome writer emits its
    closing bracket there. The caller keeps ownership of the channel;
    [on_stop] runs exactly once after the format finalizer on whichever
    path tears the sink down (pass a closure closing the channel so
    abnormal exits cannot leave a truncated file). *)
val stream_to : ?on_stop:(unit -> unit) -> stream_format -> out_channel -> unit

(** Finalize and detach the streaming sink, if any. Idempotent. *)
val stream_stop : unit -> unit

(** Whether a streaming sink is currently attached. *)
val streaming : unit -> bool

(** Render per-uop timelines, one row per uop in fetch (uuid) order, one
    column per stage holding the cycle the uop reached it, with notes for
    mispredicts, annuls and replays. [rip] restricts to one instruction
    address; at most [limit] rows (default 1000) are printed. *)
val render_timeline : ?rip:int64 -> ?limit:int -> out_channel -> unit
