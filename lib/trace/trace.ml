(** The cycle-accurate pipeline event trace — the paper's §2.3 event-log
    ring buffer reproduced as a standalone subsystem.

    Every pipeline structure (fetch, rename, issue queues, LSQ, commit,
    caches, TLBs, the branch predictor, the basic block cache) records
    typed events here so a misspeculation or replay storm can be
    reconstructed cycle by cycle, long after the aggregate counters have
    smeared it away. Capture goes into a bounded ring buffer that
    overwrites its oldest entries, PTLsim-style, so tracing an arbitrarily
    long run keeps the most recent window.

    Design constraints (and why this module is a process-global):

    - The disabled path must cost exactly one branch at each emit site:
      every call is guarded by [if !Trace.on then ...], so when tracing is
      off no event record, no optional argument and no closure is ever
      allocated. A global [bool ref] is the cheapest gate OCaml offers
      without flambda cross-module inlining guarantees.
    - Emitters live at every layer of the stack, including leaves like
      {!Ptl_mem.Cache} that know neither the simulated cycle nor which
      core owns them. The trace therefore keeps its own current-cycle
      register, stored once per simulated cycle by whichever core model is
      stepping.

    Filters (cycle window, RIP, event class) and a PTLsim-style trigger
    ("start logging at cycle N" / "on the first mispredict") are applied
    at emit time, so a filtered run can cover far more simulated time in
    the same buffer. Three sinks — human-readable text, Chrome
    trace-event JSON (loadable in Perfetto / chrome://tracing) and CSV —
    plus a per-x86-instruction timeline renderer turn the captured window
    into something a human can read. *)

open Ptl_util

(* ---------------------------------------------------------------- *)
(* Event model                                                       *)
(* ---------------------------------------------------------------- *)

type kind =
  (* pipeline stages / control *)
  | Fetch
  | Rename
  | Dispatch
  | Issue
  | Forward
  | Writeback
  | Replay
  | Annul
  | Redirect
  | Flush
  | Mispredict
  (* retirement *)
  | Commit
  | Commit_uop
  (* memory hierarchy *)
  | Cache_hit
  | Cache_miss
  | Prefetch
  | Tlb_hit
  | Tlb_miss
  (* basic block cache *)
  | Bb_hit
  | Bb_miss
  (* branch predictor internals *)
  | Bpred_predict
  | Bpred_update
  (* virtual memory: demand paging, page-walk caches, shootdowns *)
  | Page_fault
  | Tlb_shootdown
  | Pwc_hit
  | Pwc_miss

let kind_name = function
  | Fetch -> "fetch"
  | Rename -> "rename"
  | Dispatch -> "dispatch"
  | Issue -> "issue"
  | Forward -> "forward"
  | Writeback -> "writeback"
  | Replay -> "replay"
  | Annul -> "annul"
  | Redirect -> "redirect"
  | Flush -> "flush"
  | Mispredict -> "mispredict"
  | Commit -> "commit"
  | Commit_uop -> "commit-uop"
  | Cache_hit -> "cache-hit"
  | Cache_miss -> "cache-miss"
  | Prefetch -> "prefetch"
  | Tlb_hit -> "tlb-hit"
  | Tlb_miss -> "tlb-miss"
  | Bb_hit -> "bb-hit"
  | Bb_miss -> "bb-miss"
  | Bpred_predict -> "bpred-predict"
  | Bpred_update -> "bpred-update"
  | Page_fault -> "page-fault"
  | Tlb_shootdown -> "tlb-shootdown"
  | Pwc_hit -> "pwc-hit"
  | Pwc_miss -> "pwc-miss"

(** Coarse event classes, the unit of [-trace-filter] selection. *)
type cls = Pipe | Retire | Mem | Tlb | Bb | Bpred | Vm

let class_of = function
  | Fetch | Rename | Dispatch | Issue | Forward | Writeback | Replay | Annul
  | Redirect | Flush | Mispredict -> Pipe
  | Commit | Commit_uop -> Retire
  | Cache_hit | Cache_miss | Prefetch -> Mem
  | Tlb_hit | Tlb_miss -> Tlb
  | Bb_hit | Bb_miss -> Bb
  | Bpred_predict | Bpred_update -> Bpred
  | Page_fault | Tlb_shootdown | Pwc_hit | Pwc_miss -> Vm

let class_name = function
  | Pipe -> "pipe"
  | Retire -> "commit"
  | Mem -> "cache"
  | Tlb -> "tlb"
  | Bb -> "bb"
  | Bpred -> "bpred"
  | Vm -> "vm"

let all_classes = [ Pipe; Retire; Mem; Tlb; Bb; Bpred; Vm ]

let class_of_name = function
  | "pipe" -> Some Pipe
  | "commit" | "retire" -> Some Retire
  | "cache" | "mem" -> Some Mem
  | "tlb" -> Some Tlb
  | "bb" | "bbcache" -> Some Bb
  | "bpred" -> Some Bpred
  | "vm" | "pagefault" -> Some Vm
  | _ -> None

(** Parse a comma-separated class list ("pipe,commit,tlb"); unknown names
    raise [Invalid_argument]. An empty string means all classes. *)
let parse_classes s =
  if String.trim s = "" then all_classes
  else
    String.split_on_char ',' s
    |> List.map (fun name ->
           match class_of_name (String.trim name) with
           | Some c -> c
           | None -> invalid_arg ("Trace.parse_classes: unknown class " ^ name))

let class_bit = function
  | Pipe -> 1
  | Retire -> 2
  | Mem -> 4
  | Tlb -> 8
  | Bb -> 16
  | Bpred -> 32
  | Vm -> 64

type event = {
  ev_cycle : int;
  ev_kind : kind;
  ev_core : int;
  ev_thread : int;
  ev_uuid : int;  (* fetch-order uop id, -1 when not uop-scoped *)
  ev_rip : int64;
  ev_slot : int;  (* ROB index / cluster / cache level; kind-specific *)
  ev_info : int64;  (* kind-specific payload: address, target, latency *)
  ev_tag : string;  (* short detail: structure name, replay reason, ... *)
}

(** When capture actually begins. *)
type trigger =
  | Immediate
  | At_cycle of int  (* PTLsim -startlog: begin at a given cycle *)
  | On_mispredict  (* begin at the first mispredicted branch *)
  | On_sample  (* begin at the first measured sampling interval *)

(* ---------------------------------------------------------------- *)
(* Global state                                                      *)
(* ---------------------------------------------------------------- *)

type state = {
  mutable ring : event Ring.t;
  mutable stop_cycle : int;
  mutable rip_filter : int64 option;
  mutable class_mask : int;
  mutable trigger : trigger;
  mutable triggered : bool;
  mutable cycle : int;
  mutable captured : int;  (* events accepted into the ring, ever *)
  mutable overwritten : int;  (* accepted events later lost to wraparound *)
  (* incremental sink: called on every accepted event, in addition to the
     ring push (None = dump-at-exit only) *)
  mutable stream : (event -> unit) option;
  mutable stream_close : (unit -> unit) option;
}

let default_capacity = 1 lsl 20

let st =
  {
    ring = Ring.create 1;
    stop_cycle = max_int;
    rip_filter = None;
    class_mask = 127;
    trigger = Immediate;
    triggered = true;
    cycle = 0;
    captured = 0;
    overwritten = 0;
    stream = None;
    stream_close = None;
  }

(** The one-branch gate every emit site checks. True iff tracing is
    configured (even if the trigger has not fired yet — the trigger is
    observed by [emit] itself). *)
let on = ref false

(** Arm the trace. [start_cycle] is sugar for [~trigger:(At_cycle n)];
    an explicit [trigger] wins. *)
let configure ?(capacity = default_capacity) ?start_cycle
    ?(stop_cycle = max_int) ?rip ?(classes = all_classes) ?trigger () =
  let trigger =
    match (trigger, start_cycle) with
    | Some t, _ -> t
    | None, Some n -> At_cycle n
    | None, None -> Immediate
  in
  st.ring <- Ring.create (max 1 capacity);
  st.stop_cycle <- stop_cycle;
  st.rip_filter <- rip;
  st.class_mask <- List.fold_left (fun m c -> m lor class_bit c) 0 classes;
  st.trigger <- trigger;
  st.triggered <- (match trigger with Immediate -> true | _ -> false);
  st.captured <- 0;
  st.overwritten <- 0;
  on := true

(** Open the [On_sample] trigger: the sampling supervisor calls this at
    the start of each measured interval; capture begins at the first one
    and stays open (the usual trigger latching). A no-op for any other
    trigger. *)
let sample_boundary () =
  match st.trigger with On_sample -> st.triggered <- true | _ -> ()

(* finalize and detach any incremental sink *)
let close_stream () =
  (match st.stream_close with Some f -> f () | None -> ());
  st.stream <- None;
  st.stream_close <- None

let disable () =
  close_stream ();
  on := false

(** Drop every captured event but keep the configuration armed. *)
let clear () =
  Ring.clear st.ring;
  st.captured <- 0;
  st.overwritten <- 0;
  st.triggered <- (match st.trigger with Immediate -> true | _ -> false)

(** Cores store the simulated cycle here once per step so leaf emitters
    (caches, TLBs, the predictor) need not thread it through. *)
let set_cycle c = st.cycle <- c
let now () = st.cycle

let captured () = st.captured
let overwritten () = st.overwritten
let length () = Ring.length st.ring

(** Record one event. Callers MUST guard with [if !Trace.on] — that guard
    is the entire disabled-path cost; everything else (trigger, filters,
    the ring push) happens only when tracing is armed. *)
let emit ?(core = 0) ?(thread = 0) ?(uuid = -1) ?(rip = 0L) ?(slot = -1)
    ?(info = 0L) ?(tag = "") kind =
  if !on then begin
    (* trigger: checked before any filter so a class-filtered mispredict
       still opens the capture window *)
    if not st.triggered then begin
      match st.trigger with
      | At_cycle n -> if st.cycle >= n then st.triggered <- true
      | On_mispredict -> if kind = Mispredict then st.triggered <- true
      | On_sample -> ()  (* opened only by [sample_boundary] *)
      | Immediate -> st.triggered <- true
    end;
    if
      st.triggered
      && st.cycle <= st.stop_cycle
      && st.class_mask land class_bit (class_of kind) <> 0
      && (match st.rip_filter with None -> true | Some r -> rip = r)
    then begin
      let ev =
        {
          ev_cycle = st.cycle;
          ev_kind = kind;
          ev_core = core;
          ev_thread = thread;
          ev_uuid = uuid;
          ev_rip = rip;
          ev_slot = slot;
          ev_info = info;
          ev_tag = tag;
        }
      in
      if Ring.push_overwrite st.ring ev then
        st.overwritten <- st.overwritten + 1;
      st.captured <- st.captured + 1;
      match st.stream with Some f -> f ev | None -> ()
    end
  end

(** Oldest-to-youngest snapshot of the captured window. *)
let events () = Ring.to_list st.ring

let count pred = Ring.fold st.ring 0 (fun acc ev -> if pred ev then acc + 1 else acc)

(** Number of committed x86 instructions in the window, optionally
    restricted to one core model's [tag] (e.g. "ooo"). *)
let commits ?tag () =
  count (fun ev ->
      ev.ev_kind = Commit
      && match tag with None -> true | Some t -> ev.ev_tag = t)

(* ---------------------------------------------------------------- *)
(* Sinks                                                             *)
(* ---------------------------------------------------------------- *)

let pp_event buf ev =
  Buffer.add_string buf
    (Printf.sprintf "%10d  %-13s c%d t%d" ev.ev_cycle (kind_name ev.ev_kind)
       ev.ev_core ev.ev_thread);
  if ev.ev_uuid >= 0 then Buffer.add_string buf (Printf.sprintf " uuid=%d" ev.ev_uuid);
  if ev.ev_rip <> 0L then Buffer.add_string buf (Printf.sprintf " rip=%#Lx" ev.ev_rip);
  if ev.ev_slot >= 0 then Buffer.add_string buf (Printf.sprintf " slot=%d" ev.ev_slot);
  if ev.ev_info <> 0L then Buffer.add_string buf (Printf.sprintf " info=%#Lx" ev.ev_info);
  if ev.ev_tag <> "" then Buffer.add_string buf (" [" ^ ev.ev_tag ^ "]");
  Buffer.add_char buf '\n'

(** One event as a single human-readable line (no trailing newline) — the
    line format of {!dump_text}, reused by co-simulation divergence
    reports. *)
let event_to_string ev =
  let buf = Buffer.create 64 in
  pp_event buf ev;
  Buffer.sub buf 0 (Buffer.length buf - 1)

(** The most recent [n] events of the captured window, oldest first. *)
let recent n =
  let evs = Ring.to_list st.ring in
  let drop = List.length evs - n in
  if drop <= 0 then evs
  else
    List.filteri (fun i _ -> i >= drop) evs

(** Human-readable event log, oldest first. *)
let dump_text oc =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "# trace: %d events in window, %d captured, %d overwritten\n"
       (Ring.length st.ring) st.captured st.overwritten);
  Ring.iter st.ring (fun ev -> pp_event buf ev);
  Buffer.output_buffer oc buf

let csv_header = "cycle,kind,core,thread,uuid,rip,slot,info,tag\n"

let csv_row ev =
  Printf.sprintf "%d,%s,%d,%d,%d,0x%Lx,%d,0x%Lx,%s\n" ev.ev_cycle
    (kind_name ev.ev_kind) ev.ev_core ev.ev_thread ev.ev_uuid ev.ev_rip
    ev.ev_slot ev.ev_info ev.ev_tag

(** CSV sink: one row per event, stable column order. *)
let dump_csv oc =
  output_string oc csv_header;
  let buf = Buffer.create 4096 in
  Ring.iter st.ring (fun ev ->
      Buffer.add_string buf (csv_row ev);
      if Buffer.length buf > 1 lsl 16 then begin
        Buffer.output_buffer oc buf;
        Buffer.clear buf
      end);
  Buffer.output_buffer oc buf

(* Chrome trace-event JSON (the "JSON Array Format" with a traceEvents
   wrapper), loadable in Perfetto or chrome://tracing. One process (pid)
   per core, one track (tid) per (SMT thread, pipeline stage) pair, one
   complete event ("ph":"X", 1-cycle duration) per trace event, with the
   payload in "args". Timestamps are simulated cycles interpreted as
   microseconds. Hardware thread N's tracks occupy a contiguous band of
   tids, so an SMT core's threads group into labeled bands ("t1:fetch",
   "t1:commit", ...); a single-threaded run keeps the plain stage ids. *)

let chrome_tid kind =
  match kind with
  | Fetch -> 0
  | Rename -> 1
  | Dispatch -> 2
  | Issue -> 3
  | Forward -> 4
  | Writeback -> 5
  | Replay -> 6
  | Annul -> 7
  | Redirect -> 8
  | Flush -> 9
  | Mispredict -> 10
  | Commit | Commit_uop -> 11
  | Cache_hit | Cache_miss | Prefetch -> 12
  | Tlb_hit | Tlb_miss -> 13
  | Bb_hit | Bb_miss -> 14
  | Bpred_predict | Bpred_update -> 15
  | Page_fault -> 16
  | Tlb_shootdown -> 17
  | Pwc_hit | Pwc_miss -> 18

let chrome_track_name tid =
  match tid with
  | 0 -> "fetch"
  | 1 -> "rename"
  | 2 -> "dispatch"
  | 3 -> "issue"
  | 4 -> "forward"
  | 5 -> "writeback"
  | 6 -> "replay"
  | 7 -> "annul"
  | 8 -> "redirect"
  | 9 -> "flush"
  | 10 -> "mispredict"
  | 11 -> "commit"
  | 12 -> "cache"
  | 13 -> "tlb"
  | 14 -> "bbcache"
  | 15 -> "bpred"
  | 16 -> "pagefault"
  | 17 -> "shootdown"
  | _ -> "pwc"

(* Perfetto track id: hardware thread N owns a band of [band] tids, so
   SMT threads render as contiguous labeled bands. Thread 0 keeps the
   plain stage ids. *)
let chrome_band = 32

let chrome_tid_of ev = (ev.ev_thread * chrome_band) + chrome_tid ev.ev_kind

let chrome_track_label tid =
  let stage = chrome_track_name (tid mod chrome_band) in
  if tid < chrome_band then stage
  else Printf.sprintf "t%d:%s" (tid / chrome_band) stage

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chrome_process_meta core =
  Printf.sprintf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"core %d\"}}"
    core core

let chrome_thread_meta core tid =
  Printf.sprintf
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
    core tid
    (json_escape (chrome_track_label tid))

let chrome_sort_meta core tid =
  Printf.sprintf
    "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"sort_index\":%d}}"
    core tid tid

let chrome_event_json ev =
  let name =
    if ev.ev_tag = "" then kind_name ev.ev_kind
    else kind_name ev.ev_kind ^ ":" ^ ev.ev_tag
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":1,\"pid\":%d,\"tid\":%d,\"args\":{\"uuid\":%d,\"thread\":%d,\"rip\":\"0x%Lx\",\"slot\":%d,\"info\":\"0x%Lx\"}}"
    (json_escape name)
    (class_name (class_of ev.ev_kind))
    ev.ev_cycle ev.ev_core (chrome_tid_of ev) ev.ev_uuid ev.ev_thread
    ev.ev_rip ev.ev_slot ev.ev_info

(* Counter tracks ("ph":"C"): per-core page-fault and shootdown rates,
   bucketed over the captured window so Perfetto renders them as rate
   curves above the event bands. *)
let chrome_counter_events () =
  let lo = ref max_int and hi = ref min_int in
  Ring.iter st.ring (fun ev ->
      if ev.ev_cycle < !lo then lo := ev.ev_cycle;
      if ev.ev_cycle > !hi then hi := ev.ev_cycle);
  if !hi < !lo then []
  else begin
    let bucket = max 1 ((!hi - !lo + 1) / 100) in
    (* (core, name, bucket index) -> count *)
    let counts = Hashtbl.create 64 in
    let bump core name ev_cycle =
      let key = (core, name, (ev_cycle - !lo) / bucket) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
    in
    Ring.iter st.ring (fun ev ->
        match ev.ev_kind with
        | Page_fault -> bump ev.ev_core "vm:faults" ev.ev_cycle
        | Tlb_shootdown -> bump ev.ev_core "vm:shootdowns" ev.ev_cycle
        | _ -> ());
    Hashtbl.fold
      (fun (core, name, b) n acc ->
        ((!lo + (b * bucket)),
         Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%d,\"pid\":%d,\"args\":{\"rate\":%d}}"
           name
           (!lo + (b * bucket))
           core n)
        :: acc)
      counts []
    |> List.sort compare |> List.map snd
  end

let dump_chrome oc =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n "
  in
  (* metadata: name the per-core processes and the per-(SMT thread, stage)
     tracks that actually appear in the window *)
  let tracks = Hashtbl.create 64 in
  Ring.iter st.ring (fun ev ->
      Hashtbl.replace tracks (ev.ev_core, chrome_tid_of ev) ());
  let cores = Hashtbl.create 8 in
  Hashtbl.iter (fun (core, _) () -> Hashtbl.replace cores core ()) tracks;
  Hashtbl.iter
    (fun core () ->
      sep ();
      Buffer.add_string buf (chrome_process_meta core))
    cores;
  Hashtbl.iter
    (fun (core, tid) () ->
      sep ();
      Buffer.add_string buf (chrome_thread_meta core tid);
      sep ();
      Buffer.add_string buf (chrome_sort_meta core tid))
    tracks;
  List.iter
    (fun json ->
      sep ();
      Buffer.add_string buf json)
    (chrome_counter_events ());
  Ring.iter st.ring (fun ev ->
      sep ();
      Buffer.add_string buf (chrome_event_json ev);
      if Buffer.length buf > 1 lsl 16 then begin
        Buffer.output_buffer oc buf;
        Buffer.clear buf
      end);
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.output_buffer oc buf

(* ---------------------------------------------------------------- *)
(* Incremental streaming sinks                                       *)
(* ---------------------------------------------------------------- *)

(** Output format of a streaming sink (satellite of the ring sinks above:
    same text / CSV / Chrome encodings, written event-by-event). *)
type stream_format = Stream_text | Stream_csv | Stream_chrome

let stream_format_of_name = function
  | "text" | "txt" -> Some Stream_text
  | "csv" -> Some Stream_csv
  | "chrome" | "json" -> Some Stream_chrome
  | _ -> None

(** Attach an incremental sink: every event accepted from now on (trigger
    and filters already applied) is also written to [oc] immediately, so
    a run that dies mid-flight still leaves a usable trace and a trace
    larger than the ring survives wraparound. Replaces any sink already
    installed (finalizing it first). The Chrome writer emits process /
    track metadata lazily, the first time each (core, track) appears.
    [stream_stop] (or [disable]) finalizes the sink — for Chrome that
    writes the closing bracket, so the file is valid JSON only after it
    runs. The caller keeps ownership of [oc]; [on_stop] runs exactly
    once, after the format finalizer, whichever path tears the sink
    down — pass a closure that closes [oc] so abnormal exits
    ({!Ptl_util.Failure.Sim_failure} unwinds) cannot leave a truncated
    file behind. *)
let stream_to ?on_stop fmt oc =
  close_stream ();
  (match fmt with
  | Stream_text ->
    st.stream <-
      Some
        (fun ev ->
          output_string oc (event_to_string ev);
          output_char oc '\n');
    st.stream_close <- Some (fun () -> flush oc)
  | Stream_csv ->
    output_string oc csv_header;
    st.stream <- Some (fun ev -> output_string oc (csv_row ev));
    st.stream_close <- Some (fun () -> flush oc)
  | Stream_chrome ->
    output_string oc "{\"traceEvents\":[";
    let first = ref true in
    let named = Hashtbl.create 64 in
    let put s =
      if !first then first := false else output_char oc ',';
      output_string oc "\n ";
      output_string oc s
    in
    st.stream <-
      Some
        (fun ev ->
          let core = ev.ev_core and tid = chrome_tid_of ev in
          if not (Hashtbl.mem named (core, -1)) then begin
            Hashtbl.add named (core, -1) ();
            put (chrome_process_meta core)
          end;
          if not (Hashtbl.mem named (core, tid)) then begin
            Hashtbl.add named (core, tid) ();
            put (chrome_thread_meta core tid);
            put (chrome_sort_meta core tid)
          end;
          put (chrome_event_json ev));
    st.stream_close <-
      Some
        (fun () ->
          output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n";
          flush oc));
  match on_stop with
  | None -> ()
  | Some f ->
    let fin = st.stream_close in
    st.stream_close <-
      Some
        (fun () ->
          (match fin with Some g -> g () | None -> ());
          f ())

(** Finalize and detach the streaming sink, if any. Idempotent. *)
let stream_stop () = close_stream ()

let streaming () = st.stream <> None

(* ---------------------------------------------------------------- *)
(* Per-instruction timelines                                         *)
(* ---------------------------------------------------------------- *)

(* A uop's journey, reassembled from its uuid-scoped events. *)
type lane = {
  l_uuid : int;
  mutable l_rip : int64;
  mutable l_thread : int;
  mutable l_fetch : int;
  mutable l_rename : int;
  mutable l_dispatch : int;
  mutable l_issue : int;  (* last issue attempt *)
  mutable l_forward : int;
  mutable l_writeback : int;
  mutable l_commit : int;
  mutable l_annul : int;
  mutable l_replays : int;
  mutable l_mispredict : bool;
  mutable l_tags : string list;
}

let timelines ?rip () =
  let lanes : (int, lane) Hashtbl.t = Hashtbl.create 256 in
  let lane ev =
    match Hashtbl.find_opt lanes ev.ev_uuid with
    | Some l -> l
    | None ->
      let l =
        {
          l_uuid = ev.ev_uuid;
          l_rip = ev.ev_rip;
          l_thread = ev.ev_thread;
          l_fetch = -1;
          l_rename = -1;
          l_dispatch = -1;
          l_issue = -1;
          l_forward = -1;
          l_writeback = -1;
          l_commit = -1;
          l_annul = -1;
          l_replays = 0;
          l_mispredict = false;
          l_tags = [];
        }
      in
      Hashtbl.add lanes ev.ev_uuid l;
      l
  in
  Ring.iter st.ring (fun ev ->
      if ev.ev_uuid >= 0 then begin
        let keep = match rip with None -> true | Some r -> ev.ev_rip = r in
        if keep then begin
          let l = lane ev in
          if l.l_rip = 0L then l.l_rip <- ev.ev_rip;
          (match ev.ev_kind with
          | Fetch -> l.l_fetch <- ev.ev_cycle
          | Rename -> l.l_rename <- ev.ev_cycle
          | Dispatch -> l.l_dispatch <- ev.ev_cycle
          | Issue -> l.l_issue <- ev.ev_cycle
          | Forward -> l.l_forward <- ev.ev_cycle
          | Writeback -> l.l_writeback <- ev.ev_cycle
          | Commit | Commit_uop ->
            if l.l_commit < 0 then l.l_commit <- ev.ev_cycle
          | Annul -> l.l_annul <- ev.ev_cycle
          | Replay ->
            l.l_replays <- l.l_replays + 1;
            if ev.ev_tag <> "" && not (List.mem ev.ev_tag l.l_tags) then
              l.l_tags <- ev.ev_tag :: l.l_tags
          | Mispredict -> l.l_mispredict <- true
          | _ -> ())
        end
      end);
  Hashtbl.fold (fun _ l acc -> l :: acc) lanes []
  |> List.sort (fun a b -> compare a.l_uuid b.l_uuid)

(** Render per-uop timelines: one row per uop in fetch order, one column
    per pipeline stage holding the cycle the uop reached it. Rows of the
    same x86 instruction share a RIP; a mispredicted branch shows its
    [mispredict] note and the wrong-path uops after it show [annul@N]
    followed by fresh fetches at the redirect target. *)
let render_timeline ?rip ?(limit = 1000) oc =
  let lanes = timelines ?rip () in
  let total = List.length lanes in
  let cell c = if c < 0 then "     ." else Printf.sprintf "%6d" c in
  output_string oc
    "  uuid th       rip        fetch rename   disp  issue    fwd     wb commit  notes\n";
  let shown = ref 0 in
  List.iter
    (fun l ->
      if !shown < limit then begin
        incr shown;
        let notes = ref [] in
        if l.l_mispredict then notes := "mispredict" :: !notes;
        if l.l_annul >= 0 then
          notes := Printf.sprintf "annul@%d" l.l_annul :: !notes;
        if l.l_replays > 0 then
          notes :=
            Printf.sprintf "replay x%d%s" l.l_replays
              (match l.l_tags with
              | [] -> ""
              | tags -> " (" ^ String.concat "," tags ^ ")")
            :: !notes;
        output_string oc
          (Printf.sprintf "%6d %2d %#12Lx %s %s %s %s %s %s %s  %s\n" l.l_uuid
             l.l_thread l.l_rip (cell l.l_fetch) (cell l.l_rename)
             (cell l.l_dispatch) (cell l.l_issue) (cell l.l_forward)
             (cell l.l_writeback) (cell l.l_commit)
             (String.concat "; " (List.rev !notes)))
      end)
    lanes;
  if total > limit then
    output_string oc
      (Printf.sprintf "... %d more uops (raise the limit or filter by rip)\n"
         (total - limit))
