(** Branch prediction (paper §2.2): configurable direction predictors
    (bimodal, gshare, hybrid, saturating counters), a branch target
    buffer, and a checkpointable return address stack. Direction history
    trains at commit; the RAS updates speculatively at fetch and repairs
    from checkpoints on misprediction. *)

type direction_config =
  | Always_taken
  | Saturating of int  (* table bits *)
  | Bimodal of int
  | Gshare of { table_bits : int; history_bits : int }
  | Hybrid of { table_bits : int; history_bits : int; chooser_bits : int }

type config = {
  direction : direction_config;
  btb_entries : int;
  btb_ways : int;
  ras_entries : int;
}

(** The paper's PTLsim-as-K8 predictor: 16K-entry gshare. *)
val k8_ptlsim : config

(** The reference-silicon variant (see EXPERIMENTS.md on the mispredict
    row). *)
val k8_silicon : config

type t

val create : ?prefix:string -> Ptl_stats.Statstree.t -> config -> t

(** Predict the direction of the conditional branch at [rip]. *)
val predict_cond : t -> rip:int64 -> bool

(** Train at commit; [mispredicted] feeds the misprediction counter. *)
val update_cond : t -> rip:int64 -> taken:bool -> mispredicted:bool -> unit

(** Functional warming (sampled simulation): the architectural state
    changes of a predict/update round — direction tables, global history,
    BTB entry and recency, RAS depth — with no statistics and no trace
    events. *)
val warm_cond : t -> rip:int64 -> taken:bool -> unit

val warm_target : t -> rip:int64 -> target:int64 -> unit
val warm_ras : t -> call:bool -> ret:bool -> next_rip:int64 -> unit

(** BTB: predicted target of the branch at [rip], if cached. *)
val predict_target : t -> rip:int64 -> int64 option

val update_target : t -> rip:int64 -> target:int64 -> unit

(** Return address stack, speculative with checkpoint/undo. *)
type ras_checkpoint

val ras_push : t -> int64 -> unit
val ras_pop : t -> int64 option
val ras_checkpoint : t -> ras_checkpoint
val ras_restore : t -> ras_checkpoint -> unit

val predicts : t -> int
val mispredicts : t -> int

(** Checkpoint of every table: direction counters, chooser, bimodal,
    global history, BTB (tags/targets/recency/tick) and the RAS with its
    cursor. Restores are in place; [diff] lists every mismatch between
    the live state and a snapshot (empty = exact). *)
type snapshot

val snapshot : t -> snapshot

(** Whether a snapshot came from a predictor of this configuration
    (every table the same size): the precondition of {!restore}. *)
val fits : t -> snapshot -> bool

val restore : t -> snapshot:snapshot -> unit
val diff : t -> snapshot -> string list
