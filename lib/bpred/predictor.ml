(** Branch prediction: the paper's configurable predictor suite (§2.2) —
    "various models including a hybrid gshare based predictor, bimodal
    predictors, saturating counters" — plus a branch target buffer and a
    checkpointable return address stack.

    Direction history is updated at commit (deterministic, standard
    simplification); the RAS is speculatively updated at fetch and repaired
    from checkpoints on misprediction, since call/return imbalance is the
    error mode that actually matters there. *)

open Ptl_util
module Stats = Ptl_stats.Statstree

type direction_config =
  | Always_taken
  | Saturating of int  (* table_bits: per-RIP 2-bit counters, no history *)
  | Bimodal of int  (* identical structure; kept distinct for configs *)
  | Gshare of { table_bits : int; history_bits : int }
  | Hybrid of { table_bits : int; history_bits : int; chooser_bits : int }

type config = {
  direction : direction_config;
  btb_entries : int;
  btb_ways : int;
  ras_entries : int;
}

(** The paper's PTLsim-as-K8 configuration: a 16K-entry gshare-like global
    history predictor (§5). *)
let k8_ptlsim =
  {
    direction = Gshare { table_bits = 14; history_bits = 12 };
    btb_entries = 2048;
    btb_ways = 4;
    ras_entries = 24;
  }

(** The reference-silicon variant: a structurally different global-history
    predictor (smaller table, shorter history). On the paper's workload the
    real chip mispredicted ~5.8% more than PTLsim's model; on our synthetic
    branch mix the two configurations land within ~1.5% of each other —
    both at the paper's ~4%% absolute rate — because the mix lacks the
    history-hungry control flow where the structures separate (noted in
    EXPERIMENTS.md). *)
let k8_silicon =
  { k8_ptlsim with direction = Gshare { table_bits = 13; history_bits = 10 } }

type t = {
  config : config;
  counters : int array;  (* 2-bit saturating counters *)
  chooser : int array;  (* hybrid only: picks gshare vs bimodal *)
  bimodal_tbl : int array;  (* hybrid's second component *)
  mutable history : int;
  history_mask : int;
  table_mask : int;
  (* BTB *)
  btb_tags : int64 array;
  btb_targets : int64 array;
  btb_lru : int array;
  mutable btb_tick : int;
  (* RAS *)
  ras : int64 array;
  mutable ras_top : int;  (* index of next free slot *)
  (* stats *)
  s_predicts : Stats.counter;
  s_mispredicts : Stats.counter;
  s_btb_hits : Stats.counter;
  s_btb_misses : Stats.counter;
  s_ras_pops : Stats.counter;
}

let table_bits_of = function
  | Always_taken -> 1
  | Saturating n | Bimodal n -> n
  | Gshare { table_bits; _ } | Hybrid { table_bits; _ } -> table_bits

let history_bits_of = function
  | Always_taken | Saturating _ | Bimodal _ -> 0
  | Gshare { history_bits; _ } | Hybrid { history_bits; _ } -> history_bits

let create ?(prefix = "bpred") stats config =
  let tb = table_bits_of config.direction in
  let hb = history_bits_of config.direction in
  let c suffix = Stats.counter stats (prefix ^ "." ^ suffix) in
  let btb_sets = config.btb_entries / config.btb_ways in
  if btb_sets * config.btb_ways <> config.btb_entries then
    invalid_arg "Predictor: btb geometry";
  {
    config;
    counters = Array.make (1 lsl tb) 1 (* weakly not-taken *);
    chooser =
      (match config.direction with
      | Hybrid { chooser_bits; _ } -> Array.make (1 lsl chooser_bits) 2
      | _ -> [||]);
    bimodal_tbl =
      (match config.direction with
      | Hybrid { table_bits; _ } -> Array.make (1 lsl table_bits) 1
      | _ -> [||]);
    history = 0;
    history_mask = (1 lsl hb) - 1;
    table_mask = (1 lsl tb) - 1;
    btb_tags = Array.make config.btb_entries (-1L);
    btb_targets = Array.make config.btb_entries 0L;
    btb_lru = Array.make config.btb_entries 0;
    btb_tick = 0;
    ras = Array.make config.ras_entries 0L;
    ras_top = 0;
    s_predicts = c "predicts";
    s_mispredicts = c "mispredicts";
    s_btb_hits = c "btb_hits";
    s_btb_misses = c "btb_misses";
    s_ras_pops = c "ras_pops";
  }

let rip_index t rip = Bitops.fold64 (Int64.shift_right_logical rip 1) 16 land t.table_mask

let gshare_index t rip =
  rip_index t rip lxor (t.history land t.history_mask land t.table_mask)

let counter_taken c = c >= 2

let bump arr i taken =
  arr.(i) <- (if taken then min 3 (arr.(i) + 1) else max 0 (arr.(i) - 1))

(** Predict the direction of the conditional branch at [rip]. *)
let predict_cond t ~rip =
  Stats.incr t.s_predicts;
  let taken =
    match t.config.direction with
    | Always_taken -> true
    | Saturating _ | Bimodal _ -> counter_taken t.counters.(rip_index t rip)
    | Gshare _ -> counter_taken t.counters.(gshare_index t rip)
    | Hybrid { chooser_bits; _ } ->
      let ci = rip_index t rip land ((1 lsl chooser_bits) - 1) in
      if counter_taken t.chooser.(ci) then
        counter_taken t.counters.(gshare_index t rip)
      else counter_taken t.bimodal_tbl.(rip_index t rip)
  in
  if !Ptl_trace.Trace.on then
    Ptl_trace.Trace.emit ~rip
      ~tag:(if taken then "taken" else "nt")
      Ptl_trace.Trace.Bpred_predict;
  taken

(** Train at commit. [mispredicted] is accounted by the caller's pipeline;
    here it only feeds the misprediction counter. *)
let update_cond t ~rip ~taken ~mispredicted =
  if mispredicted then Stats.incr t.s_mispredicts;
  if !Ptl_trace.Trace.on then
    Ptl_trace.Trace.emit ~rip
      ~tag:(if mispredicted then "misp" else "ok")
      Ptl_trace.Trace.Bpred_update;
  (match t.config.direction with
  | Always_taken -> ()
  | Saturating _ | Bimodal _ -> bump t.counters (rip_index t rip) taken
  | Gshare _ -> bump t.counters (gshare_index t rip) taken
  | Hybrid { chooser_bits; _ } ->
    let gi = gshare_index t rip and bi = rip_index t rip in
    let g_correct = counter_taken t.counters.(gi) = taken in
    let b_correct = counter_taken t.bimodal_tbl.(bi) = taken in
    let ci = bi land ((1 lsl chooser_bits) - 1) in
    if g_correct <> b_correct then bump t.chooser ci g_correct;
    bump t.counters gi taken;
    bump t.bimodal_tbl bi taken);
  t.history <- ((t.history lsl 1) lor if taken then 1 else 0) land t.history_mask

(* --- functional warming (sampled simulation) --- *)

(** Train the direction tables and global history as [update_cond] would,
    with no prediction made, no statistics and no trace events. The
    hybrid chooser trains against what each component would have
    predicted, exactly as in the timed path. *)
let warm_cond t ~rip ~taken =
  (match t.config.direction with
  | Always_taken -> ()
  | Saturating _ | Bimodal _ -> bump t.counters (rip_index t rip) taken
  | Gshare _ -> bump t.counters (gshare_index t rip) taken
  | Hybrid { chooser_bits; _ } ->
    let gi = gshare_index t rip and bi = rip_index t rip in
    let g_correct = counter_taken t.counters.(gi) = taken in
    let b_correct = counter_taken t.bimodal_tbl.(bi) = taken in
    let ci = bi land ((1 lsl chooser_bits) - 1) in
    if g_correct <> b_correct then bump t.chooser ci g_correct;
    bump t.counters gi taken;
    bump t.bimodal_tbl bi taken);
  t.history <- ((t.history lsl 1) lor if taken then 1 else 0) land t.history_mask

(* --- BTB --- *)

let btb_set t rip =
  let sets = Array.length t.btb_tags / t.config.btb_ways in
  (* xor-mix two shifts so short-strided branch addresses spread over all
     sets instead of aliasing into a few *)
  let h =
    Int64.to_int
      (Int64.logand
         (Int64.logxor
            (Int64.shift_right_logical rip 1)
            (Int64.shift_right_logical rip 6))
         0x3FFFFFFFL)
  in
  h land (sets - 1)

(** Predicted target of the (indirect or direct) branch at [rip]. *)
let predict_target t ~rip =
  let s = btb_set t rip * t.config.btb_ways in
  let rec go w =
    if w >= t.config.btb_ways then begin
      Stats.incr t.s_btb_misses;
      None
    end
    else if t.btb_tags.(s + w) = rip then begin
      Stats.incr t.s_btb_hits;
      t.btb_tick <- t.btb_tick + 1;
      t.btb_lru.(s + w) <- t.btb_tick;
      Some t.btb_targets.(s + w)
    end
    else go (w + 1)
  in
  go 0

let update_target t ~rip ~target =
  let s = btb_set t rip * t.config.btb_ways in
  let victim = ref 0 and best = ref max_int in
  (try
     for w = 0 to t.config.btb_ways - 1 do
       if t.btb_tags.(s + w) = rip then begin
         victim := w;
         raise Exit
       end;
       if t.btb_lru.(s + w) < !best then begin
         best := t.btb_lru.(s + w);
         victim := w
       end
     done
   with Exit -> ());
  t.btb_tick <- t.btb_tick + 1;
  t.btb_tags.(s + !victim) <- rip;
  t.btb_targets.(s + !victim) <- target;
  t.btb_lru.(s + !victim) <- t.btb_tick

(** Warm the BTB: refresh recency when an entry for [rip] exists
    (correcting a stale target in place), otherwise install one — the
    state changes of a predict/update round with no statistics or trace
    events. *)
let warm_target t ~rip ~target =
  let s = btb_set t rip * t.config.btb_ways in
  let rec go w =
    if w >= t.config.btb_ways then update_target t ~rip ~target
    else if t.btb_tags.(s + w) = rip then begin
      t.btb_tick <- t.btb_tick + 1;
      t.btb_lru.(s + w) <- t.btb_tick;
      t.btb_targets.(s + w) <- target
    end
    else go (w + 1)
  in
  go 0

(* --- RAS --- *)

type ras_checkpoint = { ck_top : int; ck_value : int64 }

(** Speculatively push a return address at fetch (calls). *)
let ras_push t addr =
  t.ras.(t.ras_top mod Array.length t.ras) <- addr;
  t.ras_top <- t.ras_top + 1

(** Speculatively pop a predicted return address (rets). *)
let ras_pop t =
  Stats.incr t.s_ras_pops;
  if t.ras_top = 0 then None
  else begin
    t.ras_top <- t.ras_top - 1;
    Some t.ras.(t.ras_top mod Array.length t.ras)
  end

(** Warm the RAS: push the return address on calls, drop the top on
    returns, with no pop statistics. Keeps call/return depth aligned with
    the architectural stack across fast-forward phases. *)
let warm_ras t ~call ~ret ~next_rip =
  if call then ras_push t next_rip
  else if ret && t.ras_top > 0 then t.ras_top <- t.ras_top - 1

(** Capture enough state to undo speculative RAS updates. *)
let ras_checkpoint t =
  { ck_top = t.ras_top; ck_value = t.ras.(t.ras_top mod Array.length t.ras) }

let ras_restore t ck =
  t.ras_top <- ck.ck_top;
  t.ras.(ck.ck_top mod Array.length t.ras) <- ck.ck_value

(* ---- checkpointing (sampled-simulation parallel workers) ---- *)

(** Deep copy of every predictor table: direction counters, hybrid
    chooser and bimodal component, global history, the whole BTB
    (tags/targets/recency/tick) and the RAS with its cursor. Statistics
    stay with the owning tree. *)
type snapshot = {
  sn_counters : int array;
  sn_chooser : int array;
  sn_bimodal : int array;
  sn_history : int;
  sn_btb_tags : int64 array;
  sn_btb_targets : int64 array;
  sn_btb_lru : int array;
  sn_btb_tick : int;
  sn_ras : int64 array;
  sn_ras_top : int;
}

let snapshot t =
  {
    sn_counters = Array.copy t.counters;
    sn_chooser = Array.copy t.chooser;
    sn_bimodal = Array.copy t.bimodal_tbl;
    sn_history = t.history;
    sn_btb_tags = Array.copy t.btb_tags;
    sn_btb_targets = Array.copy t.btb_targets;
    sn_btb_lru = Array.copy t.btb_lru;
    sn_btb_tick = t.btb_tick;
    sn_ras = Array.copy t.ras;
    sn_ras_top = t.ras_top;
  }

(** Whether [snapshot] came from a predictor of this configuration
    (every table the same size) — the precondition of {!restore}. *)
let fits t snapshot =
  Array.length snapshot.sn_counters = Array.length t.counters
  && Array.length snapshot.sn_chooser = Array.length t.chooser
  && Array.length snapshot.sn_bimodal = Array.length t.bimodal_tbl
  && Array.length snapshot.sn_btb_tags = Array.length t.btb_tags
  && Array.length snapshot.sn_btb_targets = Array.length t.btb_targets
  && Array.length snapshot.sn_btb_lru = Array.length t.btb_lru
  && Array.length snapshot.sn_ras = Array.length t.ras

let restore t ~snapshot =
  if Array.length snapshot.sn_counters <> Array.length t.counters then
    invalid_arg "Predictor.restore: geometry mismatch";
  Array.blit snapshot.sn_counters 0 t.counters 0 (Array.length t.counters);
  Array.blit snapshot.sn_chooser 0 t.chooser 0 (Array.length t.chooser);
  Array.blit snapshot.sn_bimodal 0 t.bimodal_tbl 0 (Array.length t.bimodal_tbl);
  t.history <- snapshot.sn_history;
  Array.blit snapshot.sn_btb_tags 0 t.btb_tags 0 (Array.length t.btb_tags);
  Array.blit snapshot.sn_btb_targets 0 t.btb_targets 0
    (Array.length t.btb_targets);
  Array.blit snapshot.sn_btb_lru 0 t.btb_lru 0 (Array.length t.btb_lru);
  t.btb_tick <- snapshot.sn_btb_tick;
  Array.blit snapshot.sn_ras 0 t.ras 0 (Array.length t.ras);
  t.ras_top <- snapshot.sn_ras_top

let diff_array note name live snap to_str =
  if Array.length live <> Array.length snap then
    note (Printf.sprintf "%s: length %d vs %d" name (Array.length live)
            (Array.length snap))
  else
    Array.iteri
      (fun i v ->
        if v <> snap.(i) then
          note
            (Printf.sprintf "%s[%d]: %s vs %s" name i (to_str v)
               (to_str snap.(i))))
      live

(** Compare the live predictor state against a snapshot; returns one line
    per mismatch (empty = exact). *)
let diff t snapshot =
  let out = ref [] in
  let note s = out := s :: !out in
  let istr = string_of_int and lstr = Printf.sprintf "%#Lx" in
  diff_array note "bpred.counters" t.counters snapshot.sn_counters istr;
  diff_array note "bpred.chooser" t.chooser snapshot.sn_chooser istr;
  diff_array note "bpred.bimodal" t.bimodal_tbl snapshot.sn_bimodal istr;
  if t.history <> snapshot.sn_history then
    note
      (Printf.sprintf "bpred.history: %#x vs %#x" t.history
         snapshot.sn_history);
  diff_array note "bpred.btb_tags" t.btb_tags snapshot.sn_btb_tags lstr;
  diff_array note "bpred.btb_targets" t.btb_targets snapshot.sn_btb_targets
    lstr;
  diff_array note "bpred.btb_lru" t.btb_lru snapshot.sn_btb_lru istr;
  if t.btb_tick <> snapshot.sn_btb_tick then
    note
      (Printf.sprintf "bpred.btb_tick: %d vs %d" t.btb_tick
         snapshot.sn_btb_tick);
  diff_array note "bpred.ras" t.ras snapshot.sn_ras lstr;
  if t.ras_top <> snapshot.sn_ras_top then
    note
      (Printf.sprintf "bpred.ras_top: %d vs %d" t.ras_top snapshot.sn_ras_top);
  List.rev !out

(* accessors for reports *)
let predicts t = Stats.value t.s_predicts
let mispredicts t = Stats.value t.s_mispredicts
