(** The distributed sampling fleet: [optlsim serve] exposes a durable
    interval store ({!Ptl_store.Store}) over a Unix-domain-socket work
    queue; any number of [optlsim work] processes lease intervals,
    replay them from the shared base + delta checkpoints, and stream
    results back. The server merges by capture index, so the merged
    report is byte-identical to a serial [--sample] run for any worker
    count and any completion order — the paper's cluster-distributed
    PTLsim/X workflow (capture once, replay anywhere, deterministically).

    Fault model: a worker that dies or wedges mid-lease loses nothing —
    its leases re-queue (on disconnect, or after [lease_timeout]) and
    another worker replays them. Replay is a pure function of
    (checkpoint, schedule, config), so a straggler's duplicate result is
    bit-identical and the first completion simply wins. Results are also
    written to the store's (checkpoint, config-digest) cache, making
    repeated runs of the same store + config free. *)

module Sample = Ptl_sample.Sample
module Store = Ptl_store.Store
module Config = Ptl_ooo.Config

(* ---------------------------------------------------------------- *)
(* Wire protocol                                                     *)
(* ---------------------------------------------------------------- *)

(** Strict one-request-one-reply protocol, client speaks first. Frames
    are a 4-byte big-endian payload length + a [Marshal] payload (plain
    data only — {!Config.t}, {!Sample.interval} and friends carry no
    closures). *)
type request =
  | Hello of { worker : string }
  | Lease
  | Done of { index : int; interval : Sample.interval option }

type reply =
  | Welcome of {
      dir : string;  (** store directory; the worker opens it itself *)
      core : string;
      config : Config.t;
      schedule : Sample.schedule;
      count : int;
    }
  | Work of { index : int }
  | Drain  (** nothing to hand out now, leases outstanding — retry *)
  | Finished
  | Ack

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

let rec read_all fd b pos len =
  if len > 0 then begin
    let n = Unix.read fd b pos len in
    if n = 0 then raise End_of_file;
    read_all fd b (pos + n) (len - n)
  end

let send fd v =
  let payload = Marshal.to_bytes v [] in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Bytes.length payload));
  write_all fd hdr 0 4;
  write_all fd payload 0 (Bytes.length payload)

let recv fd =
  let hdr = Bytes.create 4 in
  read_all fd hdr 0 4;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  let payload = Bytes.create len in
  read_all fd payload 0 len;
  Marshal.from_bytes payload 0

(* a peer vanishing mid-exchange is a routine fleet event, not a crash *)
let ignore_sigpipe () =
  if Sys.os_type = "Unix" then
    ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)

(* ---------------------------------------------------------------- *)
(* Flag validation (CLI front line, mirrors Sample.check_flags)       *)
(* ---------------------------------------------------------------- *)

(* conservative sun_path budget; real limits are 104-108 bytes *)
let max_socket_path = 100

let check_socket_path ~flag path =
  if path = "" then
    Error (Printf.sprintf "%s is required: the fleet meets at a unix socket" flag)
  else if String.length path > max_socket_path then
    Error
      (Printf.sprintf
         "%s path is %d bytes; unix socket paths are limited to %d \
          (use a shorter path, e.g. under /tmp)"
         flag (String.length path) max_socket_path)
  else Ok ()

let check_capture ~store ~jobs () =
  if store = "" then
    Error "--store is required: capture writes the durable interval store there"
  else if jobs <> None then
    Error
      "--sample-jobs cannot be combined with capture: capture is the \
       master pass only — attach workers afterwards with serve/work, or \
       use replay --jobs for in-process parallelism"
  else Ok ()

let check_serve ~store ~socket ~lease_timeout () =
  if store = "" then
    Error "--store is required: serve hands out intervals from an existing store (run capture first)"
  else
    match check_socket_path ~flag:"--socket" socket with
    | Error _ as e -> e
    | Ok () ->
      if lease_timeout <= 0.0 then
        Error
          "--lease-timeout must be positive: it bounds how long a dead \
           worker can sit on an interval before it is re-queued"
      else Ok ()

let check_work ~connect () = check_socket_path ~flag:"--connect" connect

let check_replay ~store ~jobs () =
  if store = "" then
    Error "--store is required: replay consumes an existing store (run capture first)"
  else if jobs < 0 then
    Error "--jobs must be at least 1 (or 0 to auto-detect host cores)"
  else Ok ()

(* ---------------------------------------------------------------- *)
(* Server                                                            *)
(* ---------------------------------------------------------------- *)

type served = {
  sv_result : Sample.result;  (** merged by capture index *)
  sv_cached : int;  (** intervals answered from the result cache *)
  sv_replayed : int;  (** intervals replayed by workers this run *)
  sv_requeued : int;  (** leases re-queued (worker death or timeout) *)
  sv_workers : int;  (** distinct workers that said Hello *)
}

let merge (m : Store.manifest) results =
  let intervals = Array.to_list results |> List.filter_map Fun.id in
  Sample.aggregate ~total_insns:m.Store.m_total_insns
    ~total_cycles:m.Store.m_total_cycles intervals

(** Serve [store] at unix socket [socket] until every interval is
    decided; returns the merged result. Single-threaded select loop:
    the server only shuffles indices and (small, already-replayed)
    interval records, the workers do the simulation. [config] overrides
    the manifest's machine configuration (a sweep leg replayed over the
    same checkpoints); results then cache under that config's digest. *)
let serve ?(lease_timeout = 30.) ?(log = fun _ -> ()) ?config ~socket store =
  ignore_sigpipe ();
  let m = Store.manifest store in
  let config = Option.value config ~default:m.Store.m_config in
  let digest = Store.config_digest config in
  let count = m.Store.m_count in
  let results = Array.make count None in
  let cached = Store.cached_results store ~config_digest:digest in
  List.iter (fun (i, iv) -> results.(i) <- iv) cached;
  let q = Lease_queue.create ~count ~cached:(List.map fst cached) in
  if cached <> [] then
    log
      (Printf.sprintf "serve: %d/%d interval(s) already in the result cache"
         (List.length cached) count);
  let requeued = ref 0 and replayed = ref 0 in
  let workers = Hashtbl.create 8 in
  if Sys.file_exists socket then Sys.remove socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 16;
  let clients : (Unix.file_descr, string) Hashtbl.t = Hashtbl.create 8 in
  let drop fd =
    let lost = Lease_queue.drop_owner q fd in
    if lost <> [] then begin
      requeued := !requeued + List.length lost;
      log
        (Printf.sprintf "serve: worker %s gone, re-queued interval(s) %s"
           (try Hashtbl.find clients fd with Not_found -> "?")
           (String.concat "," (List.map string_of_int lost)))
    end;
    Hashtbl.remove clients fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let reply fd r = try send fd r with Unix.Unix_error _ | Sys_error _ -> drop fd in
  let handle fd =
    match recv fd with
    | exception (End_of_file | Unix.Unix_error _ | Failure _) -> drop fd
    | Hello { worker } ->
      Hashtbl.replace clients fd worker;
      Hashtbl.replace workers worker ();
      log (Printf.sprintf "serve: worker %s joined" worker);
      reply fd
        (Welcome
           {
             dir = Store.dir store;
             core = m.Store.m_core;
             config;
             schedule = Store.schedule m;
             count;
           })
    | Lease ->
      (match
         Lease_queue.lease q ~owner:fd ~now:(Unix.gettimeofday ())
           ~timeout:lease_timeout
       with
      | Some i -> reply fd (Work { index = i })
      | None -> reply fd (if Lease_queue.finished q then Finished else Drain))
    | Done { index; interval } ->
      if Lease_queue.complete q index then begin
        results.(index) <- interval;
        incr replayed;
        (match Store.put_result store ~config_digest:digest ~index interval with
        | Ok () -> ()
        | Error e ->
          log (Printf.sprintf "serve: result cache write failed: %s"
                 (Store.error_to_string e)));
        log
          (Printf.sprintf "serve: interval %d done by %s (%d/%d)" index
             (try Hashtbl.find clients fd with Not_found -> "?")
             (Lease_queue.decided_count q) count)
      end;
      reply fd Ack
  in
  while not (Lease_queue.finished q) do
    let stale = Lease_queue.expire q ~now:(Unix.gettimeofday ()) in
    if stale <> [] then begin
      requeued := !requeued + List.length stale;
      log
        (Printf.sprintf "serve: lease timeout, re-queued interval(s) %s"
           (String.concat "," (List.map string_of_int stale)))
    end;
    let fds =
      listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
    in
    let readable, _, _ =
      Unix.select fds [] [] (min 0.25 (lease_timeout /. 4.))
    in
    List.iter
      (fun fd ->
        if fd = listen_fd then begin
          let c, _ = Unix.accept listen_fd in
          Hashtbl.replace clients c "?"
        end
        else if Hashtbl.mem clients fd then handle fd)
      readable
  done;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) clients;
  Unix.close listen_fd;
  (try Sys.remove socket with Sys_error _ -> ());
  {
    sv_result = merge m results;
    sv_cached = List.length cached;
    sv_replayed = !replayed;
    sv_requeued = !requeued;
    sv_workers = Hashtbl.length workers;
  }

(* ---------------------------------------------------------------- *)
(* Worker                                                            *)
(* ---------------------------------------------------------------- *)

let store_err r =
  match r with Ok v -> Ok v | Error e -> Error (Store.error_to_string e)

let rec connect_retry path tries =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if tries <= 1 then
      Error
        (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))
    else begin
      Unix.sleepf 0.2;
      connect_retry path (tries - 1)
    end

(** One worker process: connect to a server at [connect], lease
    intervals, replay each from the store's base + delta checkpoints,
    stream results back until the server says Finished (or vanishes —
    the run is complete from the worker's point of view either way).
    Returns the number of intervals this worker replayed. *)
let work ?(retries = 50) ?(log = fun _ -> ()) ~connect () :
    (int, string) result =
  ignore_sigpipe ();
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let* fd = connect_retry connect retries in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let me = Printf.sprintf "pid-%d" (Unix.getpid ()) in
      send fd (Hello { worker = me });
      match recv fd with
      | Work _ | Drain | Finished | Ack ->
        Error "unexpected greeting from server (protocol mismatch?)"
      | Welcome { dir; core; config; schedule; count = _ } ->
        let* store = store_err (Store.open_store ~dir) in
        let* base = store_err (Store.load_base store) in
        log (Printf.sprintf "work: %s attached to %s" me dir);
        let replayed = ref 0 in
        let rec loop () =
          send fd Lease;
          match recv fd with
          | Work { index } ->
            let* d = store_err (Store.load_interval store index) in
            let interval =
              Sample.replay_delta ~core_name:core ~config ~schedule ~index
                ~base d
            in
            send fd (Done { index; interval });
            (match recv fd with
            | Ack ->
              incr replayed;
              log (Printf.sprintf "work: %s replayed interval %d" me index);
              loop ()
            | Finished | Welcome _ | Work _ | Drain -> Ok !replayed)
          | Drain ->
            Unix.sleepf 0.05;
            loop ()
          | Finished -> Ok !replayed
          | Welcome _ | Ack -> Ok !replayed
        in
        (* the server closing on us means the run finished elsewhere —
           a normal shutdown for a straggler, not an error *)
        (match loop () with
        | exception (End_of_file | Unix.Unix_error _) -> Ok !replayed
        | r -> r))

(* ---------------------------------------------------------------- *)
(* Local replay (optlsim replay: consume a store without a fleet)     *)
(* ---------------------------------------------------------------- *)

type replayed = {
  rp_result : Sample.result;
  rp_cached : int;  (** intervals answered from the result cache *)
  rp_replayed : int;  (** intervals replayed this run *)
}

(** Replay every interval of [store] in this process ([jobs] worker
    {!Stdlib.Domain}s; 1 = inline), using and refilling the result
    cache. Byte-identical to {!serve} + workers and to the original
    serial [--sample] run. [config] overrides the manifest's machine
    configuration — the sweep engine's per-leg entry point: every leg
    replays the same checkpoints, cached under its own config digest. *)
let replay ?(jobs = 1) ?(log = fun _ -> ()) ?config store :
    (replayed, Store.error) result =
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let m = Store.manifest store in
  let config = Option.value config ~default:m.Store.m_config in
  let digest = Store.config_digest config in
  let count = m.Store.m_count in
  let schedule = Store.schedule m in
  let results = Array.make count None in
  let cached = Store.cached_results store ~config_digest:digest in
  List.iter (fun (i, iv) -> results.(i) <- iv) cached;
  let hit = Array.make count false in
  List.iter (fun (i, _) -> hit.(i) <- true) cached;
  let miss =
    Array.of_list
      (List.filter (fun i -> not hit.(i)) (List.init count Fun.id))
  in
  let* () =
    if Array.length miss = 0 then Ok ()
    else begin
      let* base = Store.load_base store in
      log
        (Printf.sprintf "replay: %d cached, %d to replay on %d job(s)"
           (List.length cached) (Array.length miss)
           (max 1 (min jobs (Array.length miss))));
      let out = Array.make (Array.length miss) (Ok None) in
      let cursor = Atomic.make 0 in
      let worker () =
        let rec go () =
          let k = Atomic.fetch_and_add cursor 1 in
          if k < Array.length miss then begin
            let index = miss.(k) in
            (out.(k) <-
               (match Store.load_interval store index with
               | Error _ as e -> e
               | Ok d ->
                 Ok
                   (Sample.replay_delta ~core_name:m.Store.m_core ~config
                      ~schedule ~index ~base d)));
            go ()
          end
        in
        go ()
      in
      let jobs = max 1 (min jobs (Array.length miss)) in
      let doms =
        Array.init (jobs - 1) (fun _ -> Stdlib.Domain.spawn worker)
      in
      worker ();
      Array.iter Stdlib.Domain.join doms;
      let first_err = ref None in
      Array.iteri
        (fun k r ->
          match r with
          | Ok iv ->
            results.(miss.(k)) <- iv;
            (match
               Store.put_result store ~config_digest:digest ~index:miss.(k) iv
             with
            | Ok () -> ()
            | Error e ->
              log (Printf.sprintf "replay: result cache write failed: %s"
                     (Store.error_to_string e)))
          | Error e -> if !first_err = None then first_err := Some e)
        out;
      match !first_err with Some e -> Error e | None -> Ok ()
    end
  in
  Ok
    {
      rp_result = merge m results;
      rp_cached = List.length cached;
      rp_replayed = Array.length miss;
    }
