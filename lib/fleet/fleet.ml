(** The distributed sampling fleet: [optlsim serve] exposes a durable
    interval store ({!Ptl_store.Store}) over a Unix-domain-socket work
    queue; any number of [optlsim work] processes lease intervals,
    replay them from the shared base + delta checkpoints, and stream
    results back. The server merges by capture index, so the merged
    report is byte-identical to a serial [--sample] run for any worker
    count and any completion order — the paper's cluster-distributed
    PTLsim/X workflow (capture once, replay anywhere, deterministically).

    Fault model: a worker that dies or wedges mid-lease loses nothing —
    its leases re-queue (on disconnect, or after [lease_timeout]) and
    another worker replays them. Replay is a pure function of
    (checkpoint, schedule, config), so a straggler's duplicate result is
    bit-identical and the first completion simply wins. Results are also
    written to the store's (checkpoint, config-digest) cache, making
    repeated runs of the same store + config free.

    Failures are data, not deaths. A worker that hits a replay
    exception — a {!Ptl_ooo.Sim_failure}, a corrupt interval record, a
    guard-detected invariant breach — streams a typed [Failed] outcome
    to the server and keeps serving; the server retries the interval up
    to [max_failures] times and then {e quarantines} it, so one poison
    interval degrades the run's coverage instead of livelocking the
    fleet. Slow-but-alive workers renew their lease with heartbeats
    (interval advertised in [Welcome]), so [lease_timeout] can be tuned
    down to reap dead workers in seconds without stealing work from
    live ones. The instrumented chaos points ({!Ptl_chaos.Chaos}) let
    tests kill/drop/delay/truncate any protocol step deterministically. *)

module Sample = Ptl_sample.Sample
module Store = Ptl_store.Store
module Config = Ptl_ooo.Config
module Chaos = Ptl_chaos.Chaos
module Rng = Ptl_util.Rng
module Sim_failure = Ptl_ooo.Sim_failure

(* ---------------------------------------------------------------- *)
(* Wire protocol                                                     *)
(* ---------------------------------------------------------------- *)

(** What a worker's lease came to: a replayed interval (possibly [None]
    if the guest halted before a measured instruction — still a valid,
    cacheable answer), or a typed failure with its diagnostic. *)
type outcome =
  | Replayed of Sample.interval option
  | Failed of { diag : string }

(** Strict one-request-one-reply protocol, client speaks first. Frames
    are a 4-byte big-endian payload length + a [Marshal] payload (plain
    data only — {!Config.t}, {!Sample.interval} and friends carry no
    closures). [Heartbeat] renews a lease mid-replay; the server always
    answers it with [Ack]. *)
type request =
  | Hello of { worker : string }
  | Lease
  | Heartbeat of { index : int }
  | Done of { index : int; outcome : outcome }

type reply =
  | Welcome of {
      dir : string;  (** store directory; the worker opens it itself *)
      core : string;
      config : Config.t;
      schedule : Sample.schedule;
      count : int;
      heartbeat : float;  (** renew leases this often while replaying *)
    }
  | Work of { index : int }
  | Drain  (** nothing to hand out now, leases outstanding — retry *)
  | Finished
  | Ack

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

let rec read_all fd b pos len =
  if len > 0 then begin
    let n = Unix.read fd b pos len in
    if n = 0 then raise End_of_file;
    read_all fd b (pos + n) (len - n)
  end

let send fd v =
  let payload = Marshal.to_bytes v [] in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Bytes.length payload));
  write_all fd hdr 0 4;
  write_all fd payload 0 (Bytes.length payload)

let recv fd =
  let hdr = Bytes.create 4 in
  read_all fd hdr 0 4;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  let payload = Bytes.create len in
  read_all fd payload 0 len;
  Marshal.from_bytes payload 0

(** A reply did not arrive within the worker's patience — the server
    (or the message) is gone; treated exactly like a disconnect. *)
exception Recv_timeout

(* recv with a patience bound on the first byte: a lost message (chaos
   Drop, dead server) must surface as Recv_timeout, never a hang. *)
let recv_within fd timeout =
  let readable, _, _ = Unix.select [ fd ] [] [] timeout in
  if readable = [] then raise Recv_timeout else recv fd

(* Chaos-instrumented request send (worker side). Drop consumes the
   message — the missing reply then surfaces as Recv_timeout and the
   session ends like a disconnect. Truncate writes a torn frame (full
   length header, half the payload) before dying, so the server
   exercises its mid-frame EOF path. *)
let chaos_send fd point v =
  match Chaos.fire point with
  | None | Some (Chaos.Flip_bit _) | Some Chaos.Fail -> send fd v
  | Some Chaos.Kill -> raise (Chaos.Killed point)
  | Some Chaos.Drop -> ()
  | Some (Chaos.Delay s) ->
    Unix.sleepf s;
    send fd v
  | Some Chaos.Truncate ->
    let payload = Marshal.to_bytes v [] in
    let hdr = Bytes.create 4 in
    Bytes.set_int32_be hdr 0 (Int32.of_int (Bytes.length payload));
    write_all fd hdr 0 4;
    write_all fd payload 0 (Bytes.length payload / 2);
    raise (Chaos.Killed (point ^ " (torn)"))

(* a peer vanishing mid-exchange is a routine fleet event, not a crash *)
let ignore_sigpipe () =
  if Sys.os_type = "Unix" then
    ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)

(* ---------------------------------------------------------------- *)
(* Flag validation (CLI front line, mirrors Sample.check_flags)       *)
(* ---------------------------------------------------------------- *)

(* conservative sun_path budget; real limits are 104-108 bytes *)
let max_socket_path = 100

let check_socket_path ~flag path =
  if path = "" then
    Error (Printf.sprintf "%s is required: the fleet meets at a unix socket" flag)
  else if String.length path > max_socket_path then
    Error
      (Printf.sprintf
         "%s path is %d bytes; unix socket paths are limited to %d \
          (use a shorter path, e.g. under /tmp)"
         flag (String.length path) max_socket_path)
  else Ok ()

let check_capture ~store ~jobs () =
  if store = "" then
    Error "--store is required: capture writes the durable interval store there"
  else if jobs <> None then
    Error
      "--sample-jobs cannot be combined with capture: capture is the \
       master pass only — attach workers afterwards with serve/work, or \
       use replay --jobs for in-process parallelism"
  else Ok ()

let check_serve ~store ~socket ~lease_timeout ~max_failures () =
  if store = "" then
    Error "--store is required: serve hands out intervals from an existing store (run capture first)"
  else
    match check_socket_path ~flag:"--socket" socket with
    | Error _ as e -> e
    | Ok () ->
      if lease_timeout <= 0.0 then
        Error
          "--lease-timeout must be positive: it bounds how long a dead \
           worker can sit on an interval before it is re-queued"
      else if max_failures < 1 then
        Error
          "--max-failures must be at least 1: it is the retry budget \
           before a failing interval is quarantined"
      else Ok ()

let check_work ~connect () = check_socket_path ~flag:"--connect" connect

let check_replay ~store ~jobs () =
  if store = "" then
    Error "--store is required: replay consumes an existing store (run capture first)"
  else if jobs < 0 then
    Error "--jobs must be at least 1 (or 0 to auto-detect host cores)"
  else Ok ()

(* ---------------------------------------------------------------- *)
(* Server                                                            *)
(* ---------------------------------------------------------------- *)

type served = {
  sv_result : Sample.result;  (** merged by capture index *)
  sv_cached : int;  (** intervals answered from the result cache *)
  sv_replayed : int;  (** intervals replayed by workers this run *)
  sv_requeued : int;  (** leases re-queued (worker death or timeout) *)
  sv_workers : int;  (** distinct workers that said Hello *)
  sv_quarantined : (int * string list) list;
      (** intervals given up on after [max_failures] typed failures,
          sorted by index, each with its diagnostics (newest first) *)
}

let merge (m : Store.manifest) results =
  let intervals = Array.to_list results |> List.filter_map Fun.id in
  Sample.aggregate ~total_insns:m.Store.m_total_insns
    ~total_cycles:m.Store.m_total_cycles intervals

(** Serve [store] at unix socket [socket] until every interval is
    decided; returns the merged result. Single-threaded select loop:
    the server only shuffles indices and (small, already-replayed)
    interval records, the workers do the simulation. [config] overrides
    the manifest's machine configuration (a sweep leg replayed over the
    same checkpoints); results then cache under that config's digest.

    A [Failed] outcome re-queues the interval until it has accumulated
    [max_failures] diagnostics, then quarantines it: the interval
    counts as decided-without-result, the run finishes (bounded retries
    — a deterministic poison interval cannot livelock the fleet), and
    the caller renders the quarantine list as an explicitly degraded
    report. Failures are never written to the result cache. *)
let serve ?(lease_timeout = 30.) ?(max_failures = 3) ?(log = fun _ -> ())
    ?config ~socket store =
  ignore_sigpipe ();
  let m = Store.manifest store in
  let config = Option.value config ~default:m.Store.m_config in
  let digest = Store.config_digest config in
  let count = m.Store.m_count in
  let results = Array.make count None in
  let cached = Store.cached_results store ~config_digest:digest in
  List.iter (fun (i, iv) -> results.(i) <- iv) cached;
  let q = Lease_queue.create ~count ~cached:(List.map fst cached) in
  if cached <> [] then
    log
      (Printf.sprintf "serve: %d/%d interval(s) already in the result cache"
         (List.length cached) count);
  let requeued = ref 0 and replayed = ref 0 in
  let failures : (int, string list) Hashtbl.t = Hashtbl.create 4 in
  let quarantined = ref [] in
  let workers = Hashtbl.create 8 in
  if Sys.file_exists socket then Sys.remove socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 16;
  let clients : (Unix.file_descr, string) Hashtbl.t = Hashtbl.create 8 in
  let drop fd =
    let lost = Lease_queue.drop_owner q fd in
    if lost <> [] then begin
      requeued := !requeued + List.length lost;
      log
        (Printf.sprintf "serve: worker %s gone, re-queued interval(s) %s"
           (try Hashtbl.find clients fd with Not_found -> "?")
           (String.concat "," (List.map string_of_int lost)))
    end;
    Hashtbl.remove clients fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let reply fd r = try send fd r with Unix.Unix_error _ | Sys_error _ -> drop fd in
  let handle fd =
    match recv fd with
    | exception (End_of_file | Unix.Unix_error _ | Failure _) -> drop fd
    | Hello { worker } ->
      Hashtbl.replace clients fd worker;
      Hashtbl.replace workers worker ();
      log (Printf.sprintf "serve: worker %s joined" worker);
      reply fd
        (Welcome
           {
             dir = Store.dir store;
             core = m.Store.m_core;
             config;
             schedule = Store.schedule m;
             count;
             heartbeat = lease_timeout /. 4.;
           })
    | Lease ->
      (match
         Lease_queue.lease q ~owner:fd ~now:(Unix.gettimeofday ())
           ~timeout:lease_timeout
       with
      | Some i -> reply fd (Work { index = i })
      | None -> reply fd (if Lease_queue.finished q then Finished else Drain))
    | Heartbeat { index } ->
      ignore
        (Lease_queue.touch q index ~owner:fd ~now:(Unix.gettimeofday ())
           ~timeout:lease_timeout
          : bool);
      reply fd Ack
    | Done { index; outcome = Replayed interval } ->
      if Lease_queue.complete q index then begin
        results.(index) <- interval;
        incr replayed;
        (match Store.put_result store ~config_digest:digest ~index interval with
        | Ok () -> ()
        | Error e ->
          log (Printf.sprintf "serve: result cache write failed: %s"
                 (Store.error_to_string e)));
        log
          (Printf.sprintf "serve: interval %d done by %s (%d/%d)" index
             (try Hashtbl.find clients fd with Not_found -> "?")
             (Lease_queue.decided_count q) count)
      end;
      reply fd Ack
    | Done { index; outcome = Failed { diag } } ->
      (* a straggler failing an interval someone else already decided
         is noise, not evidence against the interval *)
      if not (Lease_queue.is_decided q index) then begin
        let diags =
          diag :: (try Hashtbl.find failures index with Not_found -> [])
        in
        Hashtbl.replace failures index diags;
        let attempts = List.length diags in
        if attempts >= max_failures then begin
          ignore (Lease_queue.complete q index : bool);
          quarantined := (index, diags) :: !quarantined;
          log
            (Printf.sprintf
               "serve: interval %d QUARANTINED after %d failure(s); last: %s"
               index attempts
               (match String.index_opt diag '\n' with
               | Some j -> String.sub diag 0 j
               | None -> diag))
        end
        else begin
          ignore (Lease_queue.release q index ~owner:fd : bool);
          log
            (Printf.sprintf
               "serve: interval %d failed (attempt %d/%d) on %s, re-queued"
               index attempts max_failures
               (try Hashtbl.find clients fd with Not_found -> "?"))
        end
      end;
      reply fd Ack
  in
  while not (Lease_queue.finished q) do
    let stale = Lease_queue.expire q ~now:(Unix.gettimeofday ()) in
    if stale <> [] then begin
      requeued := !requeued + List.length stale;
      log
        (Printf.sprintf "serve: lease timeout, re-queued interval(s) %s"
           (String.concat "," (List.map string_of_int stale)))
    end;
    let fds =
      listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
    in
    let readable, _, _ =
      Unix.select fds [] [] (min 0.25 (lease_timeout /. 4.))
    in
    List.iter
      (fun fd ->
        if fd = listen_fd then begin
          let c, _ = Unix.accept listen_fd in
          Hashtbl.replace clients c "?"
        end
        else if Hashtbl.mem clients fd then handle fd)
      readable
  done;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) clients;
  Unix.close listen_fd;
  (try Sys.remove socket with Sys_error _ -> ());
  {
    sv_result = merge m results;
    sv_cached = List.length cached;
    sv_replayed = !replayed;
    sv_requeued = !requeued;
    sv_workers = Hashtbl.length workers;
    sv_quarantined =
      List.sort (fun (a, _) (b, _) -> compare a b) !quarantined;
  }

(* ---------------------------------------------------------------- *)
(* Worker                                                            *)
(* ---------------------------------------------------------------- *)

let store_err r =
  match r with Ok v -> Ok v | Error e -> Error (Store.error_to_string e)

(** Connect with exponential backoff + jitter: attempt [n] waits
    [min 2.0 (0.05 * 2^(n-1))] seconds scaled by a deterministic
    per-process jitter factor in [1.0, 1.25), so a churned fleet's
    reconnect herd spreads out instead of stampeding the socket. *)
let connect_retry path tries =
  let rng = Rng.create ((Unix.getpid () * 7919) + 17) in
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempt >= tries then
        Error
          (Printf.sprintf "cannot connect to %s: %s" path
             (Unix.error_message e))
      else begin
        let backoff = min 2.0 (0.05 *. (2.0 ** float_of_int (attempt - 1))) in
        Unix.sleepf (backoff *. (1.0 +. (0.25 *. Rng.float rng)));
        go (attempt + 1)
      end
  in
  go 1

(* Replay one leased interval, catching every per-interval failure as a
   typed outcome. [progress] heartbeats the lease every [heartbeat]
   seconds of wall time while the pipeline steps — request-reply, so
   the strict protocol alternation is preserved; heartbeat trouble is
   swallowed (the lease machinery already covers a lost renewal).
   Chaos.Killed is the one exception deliberately NOT converted: it
   stands in for the process dying at this point. *)
let replay_outcome ~store ~base ~core ~config ~schedule ~heartbeat
    ~recv_timeout ?wrap fd index =
  (match Chaos.fire "work.replay" with
  | Some Chaos.Kill -> raise (Chaos.Killed "work.replay")
  | Some (Chaos.Delay s) -> Unix.sleepf s
  | _ -> ());
  let last_beat = ref (Unix.gettimeofday ()) in
  let progress () =
    let now = Unix.gettimeofday () in
    if heartbeat > 0.0 && now -. !last_beat >= heartbeat then begin
      last_beat := now;
      try
        chaos_send fd "work.heartbeat" (Heartbeat { index });
        match recv_within fd recv_timeout with _ -> ()
      with
      | Chaos.Killed _ as e -> raise e
      | Recv_timeout | End_of_file | Unix.Unix_error _ | Failure _ -> ()
    end
  in
  match store_err (Store.load_interval store index) with
  | Error diag -> Failed { diag }
  | Ok d -> (
    try
      Replayed
        (Sample.replay_delta ~progress ?wrap ~core_name:core ~config ~schedule
           ~index ~base d)
    with
    | Chaos.Killed _ as e -> raise e
    | Sim_failure.Sim_failure f ->
      Failed { diag = Sim_failure.summary f ^ "\n" ^ Sim_failure.render f }
    | e -> Failed { diag = Printexc.to_string e })

(** One worker process: connect to a server at [connect], lease
    intervals, replay each from the store's base + delta checkpoints,
    stream results (or typed failures) back until the server says
    Finished. A server that vanishes {e after} this worker delivered
    results is a normal straggler shutdown; one that vanishes while the
    worker has delivered nothing is treated as a mid-run restart and
    the worker reconnects (up to [reconnects] times, through
    {!connect_retry}'s backoff). Replies not arriving within
    [recv_timeout] seconds count as the server vanishing. [wrap]
    interposes on each replay's core instance (e.g. a guard
    supervisor). Returns the number of intervals this worker replayed. *)
let work ?(retries = 50) ?(reconnects = 2) ?(recv_timeout = 30.)
    ?(log = fun _ -> ()) ?wrap ~connect () : (int, string) result =
  ignore_sigpipe ();
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let me = Printf.sprintf "pid-%d" (Unix.getpid ()) in
  let replayed = ref 0 in
  (* one connected session; Ok true = server said Finished *)
  let session fd =
    chaos_send fd "work.hello" (Hello { worker = me });
    match recv_within fd recv_timeout with
    | Work _ | Drain | Finished | Ack ->
      Error "unexpected greeting from server (protocol mismatch?)"
    | Welcome { dir; core; config; schedule; count = _; heartbeat } ->
      let* store = store_err (Store.open_store ~dir) in
      let* base = store_err (Store.load_base store) in
      log (Printf.sprintf "work: %s attached to %s" me dir);
      let rec loop () =
        chaos_send fd "work.lease" Lease;
        match recv_within fd recv_timeout with
        | Work { index } -> (
          let outcome =
            replay_outcome ~store ~base ~core ~config ~schedule ~heartbeat
              ~recv_timeout ?wrap fd index
          in
          chaos_send fd "work.done" (Done { index; outcome });
          match recv_within fd recv_timeout with
          | Ack ->
            (match outcome with
            | Replayed _ ->
              incr replayed;
              log (Printf.sprintf "work: %s replayed interval %d" me index)
            | Failed { diag } ->
              log
                (Printf.sprintf "work: %s failed interval %d: %s" me index
                   (match String.index_opt diag '\n' with
                   | Some j -> String.sub diag 0 j
                   | None -> diag)));
            loop ()
          | Finished -> Ok true
          | Welcome _ | Work _ | Drain -> Ok false)
        | Drain ->
          Unix.sleepf 0.05;
          loop ()
        | Finished -> Ok true
        | Welcome _ | Ack -> Ok false
      in
      loop ()
  in
  let rec attempt n =
    match connect_retry connect retries with
    | Error e -> if !replayed > 0 then Ok !replayed else Error e
    | Ok fd -> (
      let r =
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            try session fd
            with Recv_timeout | End_of_file | Unix.Unix_error _ | Failure _ ->
              Ok false)
      in
      match r with
      | Error _ as e -> e
      | Ok true -> Ok !replayed
      | Ok false ->
        (* the server closing on a worker that already delivered results
           means the run finished elsewhere — normal straggler shutdown.
           Closing on a worker with nothing delivered looks like a
           mid-run server restart: reconnect and try again. *)
        if !replayed = 0 && n < reconnects then begin
          log
            (Printf.sprintf
               "work: %s lost the server before delivering anything, \
                reconnecting (%d/%d)"
               me (n + 1) reconnects);
          attempt (n + 1)
        end
        else Ok !replayed)
  in
  attempt 0

(* ---------------------------------------------------------------- *)
(* Local replay (optlsim replay: consume a store without a fleet)     *)
(* ---------------------------------------------------------------- *)

type replayed = {
  rp_result : Sample.result;
  rp_cached : int;  (** intervals answered from the result cache *)
  rp_replayed : int;  (** intervals successfully replayed this run *)
  rp_quarantined : (int * string list) list;
      (** intervals whose replay (or record load) failed, sorted by
          index — in-process replay is deterministic, so one attempt is
          the whole retry budget *)
}

(** Replay every interval of [store] in this process ([jobs] worker
    {!Stdlib.Domain}s; 1 = inline), using and refilling the result
    cache. Byte-identical to {!serve} + workers and to the original
    serial [--sample] run. [config] overrides the manifest's machine
    configuration — the sweep engine's per-leg entry point: every leg
    replays the same checkpoints, cached under its own config digest.
    A corrupt interval record or a replay exception quarantines that
    interval ([rp_quarantined]) instead of aborting the run; only a
    missing/corrupt base image (nothing can replay) is a hard error. *)
let replay ?(jobs = 1) ?(log = fun _ -> ()) ?config ?wrap store :
    (replayed, Store.error) result =
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let m = Store.manifest store in
  let config = Option.value config ~default:m.Store.m_config in
  let digest = Store.config_digest config in
  let count = m.Store.m_count in
  let schedule = Store.schedule m in
  let results = Array.make count None in
  let cached = Store.cached_results store ~config_digest:digest in
  List.iter (fun (i, iv) -> results.(i) <- iv) cached;
  let hit = Array.make count false in
  List.iter (fun (i, _) -> hit.(i) <- true) cached;
  let miss =
    Array.of_list
      (List.filter (fun i -> not hit.(i)) (List.init count Fun.id))
  in
  let quarantined = ref [] and replayed = ref 0 in
  let* () =
    if Array.length miss = 0 then Ok ()
    else begin
      let* base = Store.load_base store in
      log
        (Printf.sprintf "replay: %d cached, %d to replay on %d job(s)"
           (List.length cached) (Array.length miss)
           (max 1 (min jobs (Array.length miss))));
      let out = Array.make (Array.length miss) (Ok None) in
      let cursor = Atomic.make 0 in
      let worker () =
        let rec go () =
          let k = Atomic.fetch_and_add cursor 1 in
          if k < Array.length miss then begin
            let index = miss.(k) in
            (out.(k) <-
               (match Store.load_interval store index with
               | Error e -> Error (Store.error_to_string e)
               | Ok d -> (
                 try
                   Ok
                     (Sample.replay_delta ?wrap ~core_name:m.Store.m_core
                        ~config ~schedule ~index ~base d)
                 with
                 | Chaos.Killed _ as e -> raise e
                 | Sim_failure.Sim_failure f ->
                   Error
                     (Sim_failure.summary f ^ "\n" ^ Sim_failure.render f)
                 | e -> Error (Printexc.to_string e))));
            go ()
          end
        in
        go ()
      in
      let jobs = max 1 (min jobs (Array.length miss)) in
      let doms =
        Array.init (jobs - 1) (fun _ -> Stdlib.Domain.spawn worker)
      in
      worker ();
      Array.iter Stdlib.Domain.join doms;
      Array.iteri
        (fun k r ->
          match r with
          | Ok iv ->
            results.(miss.(k)) <- iv;
            incr replayed;
            (match
               Store.put_result store ~config_digest:digest ~index:miss.(k) iv
             with
            | Ok () -> ()
            | Error e ->
              log (Printf.sprintf "replay: result cache write failed: %s"
                     (Store.error_to_string e)))
          | Error diag ->
            quarantined := (miss.(k), [ diag ]) :: !quarantined;
            log
              (Printf.sprintf "replay: interval %d quarantined: %s" miss.(k)
                 (match String.index_opt diag '\n' with
                 | Some j -> String.sub diag 0 j
                 | None -> diag)))
        out;
      Ok ()
    end
  in
  Ok
    {
      rp_result = merge m results;
      rp_cached = List.length cached;
      rp_replayed = !replayed;
      rp_quarantined =
        List.sort (fun (a, _) (b, _) -> compare a b) !quarantined;
    }
