(** The job server's lease bookkeeping: which interval indices still
    need a replay, which are leased out to a worker, and which are
    decided. Pure data — time is an explicit argument — so worker-death
    and timeout behaviour is unit-testable without sockets.

    Lifecycle of an index: [pending] -> leased (to one owner, with a
    deadline) -> decided. A lease that times out, or whose owner
    disconnects, re-queues the index; if the original worker later
    finishes anyway, the first {!complete} wins and the straggler's
    duplicate is ignored (replay is deterministic, so either copy of
    the result is the same bytes). *)

type 'o t = {
  pending : int Queue.t;
  leases : (int, 'o * float) Hashtbl.t;  (* index -> owner, deadline *)
  decided : bool array;
  mutable decided_count : int;
}

(** [create ~count ~cached] — [cached] indices are already decided
    (result-cache hits) and are never handed out. *)
let create ~count ~cached =
  let t =
    {
      pending = Queue.create ();
      leases = Hashtbl.create 16;
      decided = Array.make count false;
      decided_count = 0;
    }
  in
  List.iter
    (fun i ->
      if i >= 0 && i < count && not t.decided.(i) then begin
        t.decided.(i) <- true;
        t.decided_count <- t.decided_count + 1
      end)
    cached;
  for i = 0 to count - 1 do
    if not t.decided.(i) then Queue.add i t.pending
  done;
  t

let total t = Array.length t.decided

(** Has [index] already been decided? (Out-of-range indices are not.) *)
let is_decided t index =
  index >= 0 && index < Array.length t.decided && t.decided.(index)
let decided_count t = t.decided_count
let remaining t = total t - t.decided_count
let leased t = Hashtbl.length t.leases
let pending t = Queue.length t.pending
let finished t = t.decided_count = total t

(** Hand the next undecided index to [owner], with a deadline of
    [now +. timeout]. [None] = nothing to hand out right now (drained,
    or everything left is leased elsewhere). *)
let rec lease t ~owner ~now ~timeout =
  match Queue.take_opt t.pending with
  | None -> None
  | Some i ->
    (* an index can sit in the queue after a straggler already decided
       it (requeue raced with a late completion): skip, don't re-issue *)
    if t.decided.(i) then lease t ~owner ~now ~timeout
    else begin
      Hashtbl.replace t.leases i (owner, now +. timeout);
      Some i
    end

(** Record a result for [index]. [true] = newly decided (the caller
    should keep this result); [false] = a duplicate from a straggler
    whose lease was already re-queued and completed elsewhere. *)
let complete t index =
  if index < 0 || index >= total t || t.decided.(index) then false
  else begin
    t.decided.(index) <- true;
    t.decided_count <- t.decided_count + 1;
    Hashtbl.remove t.leases index;
    true
  end

(** Return [owner]'s lease on [index] undecided (the worker reported a
    typed failure and the index should be retried — by anyone). [true]
    if a lease by [owner] was actually returned; a stale release (lease
    already expired, stolen or decided) is ignored. *)
let release t index ~owner =
  match Hashtbl.find_opt t.leases index with
  | Some (o, _) when o = owner && not t.decided.(index) ->
    Hashtbl.remove t.leases index;
    Queue.add index t.pending;
    true
  | _ -> false

(** Renew the deadline on [owner]'s lease of [index] (a heartbeat: the
    worker is slow but alive). [false] = no such lease held by [owner]
    — it expired or was re-queued; the worker's eventual completion
    still lands via the first-completion-wins rule. *)
let touch t index ~owner ~now ~timeout =
  match Hashtbl.find_opt t.leases index with
  | Some (o, _) when o = owner ->
    Hashtbl.replace t.leases index (owner, now +. timeout);
    true
  | _ -> false

(** Re-queue every lease past its deadline; returns the indices. *)
let expire t ~now =
  let stale =
    Hashtbl.fold
      (fun i (_, deadline) acc -> if deadline < now then i :: acc else acc)
      t.leases []
  in
  let stale = List.sort compare stale in
  List.iter
    (fun i ->
      Hashtbl.remove t.leases i;
      Queue.add i t.pending)
    stale;
  stale

(** Re-queue every lease held by [owner] (worker died / disconnected);
    returns the indices. *)
let drop_owner t owner =
  let held =
    Hashtbl.fold
      (fun i (o, _) acc -> if o = owner then i :: acc else acc)
      t.leases []
  in
  let held = List.sort compare held in
  List.iter
    (fun i ->
      Hashtbl.remove t.leases i;
      Queue.add i t.pending)
    held;
  held
