(** Mixed-mode sampled simulation: SMARTS-style periodic sampling —
    repeating fast-forward (native, functionally warmed) -> warm-up
    (timed, unmeasured) -> measure (timed, measured) — on top of the
    paper's seamless native/simulation mode switching (§4.1).

    Fast-forward runs the sequential functional core at native speed
    while warming the long-lived microarchitectural state (cache tags
    and recency, TLBs, branch direction tables, BTB, RAS) through the
    silent [warm_*] entry points: no statistics move, no trace events
    fire. Measured intervals bracket {!Ptl_stats.Statstree} snapshot
    pairs; the aggregate CPI is sum(cycles)/sum(insns) with a 95%
    normal confidence interval over the per-interval CPIs. *)

(** Instructions per phase of one sampling period. *)
type schedule = {
  ff_insns : int;  (** fast-forwarded natively, warming *)
  warmup_insns : int;  (** timed but excluded from measurement *)
  measure_insns : int;  (** timed and measured *)
}

val default_period : int
val default_warmup : int
val default_measure : int

(** Total instructions in one period. *)
val period : schedule -> int

(** Validate the sampling flag combination and derive the schedule.
    [ff]/[period] are the raw [--sample-ff] / [--sample-period] options
    (mutually exclusive; a period converts to a fast-forward length by
    subtracting warm-up and measure). Rejects the sequential core (no
    timed pipeline), unknown cores, the fuzz subcommand and
    [--guard-degrade]. *)
val check_flags :
  core:string ->
  ff:int option ->
  period:int option ->
  warmup:int ->
  measure:int ->
  guard_degrade:bool ->
  fuzz:bool ->
  unit ->
  (schedule, string) result

(** Where each period's warm-up + measure window sits within the period:
    [Fixed] closes every period with the window (the legacy schedule,
    prone to phase aliasing), [Rand_offset seed] draws a uniform offset
    per period from a dedicated deterministic RNG, [Stratified] sweeps
    the window across [strata] evenly spaced positions. The offset is
    the number of fast-forwarded instructions before the window; the
    remaining [ff_insns - offset] follow it. *)
type placement = Fixed | Rand_offset of int | Stratified

(** Strata a [Stratified] schedule rotates through. *)
val strata : int

val placement_to_string : placement -> string

(** Parse a [--sample-offset] spec: ["fixed"] (or [""]), ["rand:SEED"]
    or ["stratified"]. *)
val parse_placement : string -> (placement, string) result

(** Offset generator: period index -> offset in [\[0, ff_insns\]].
    [Rand_offset] placers are stateful — call once per period in
    increasing order. *)
val make_placer : placement -> schedule -> int -> int

(** First [n] offsets a placement yields, in period order
    (deterministic per seed). *)
val offsets : placement -> schedule -> int -> int array

(** One measured interval: its snapshot pair and the instruction /
    cycle deltas between them. *)
type interval = {
  iv_index : int;
  iv_insns : int;
  iv_cycles : int;
  iv_cpi : float;
  iv_before : Ptl_stats.Statstree.snapshot;
  iv_after : Ptl_stats.Statstree.snapshot;
}

type result = {
  intervals : interval list;  (** in measurement order *)
  total_insns : int;  (** all instructions committed during the run *)
  total_cycles : int;  (** virtual cycles elapsed during the run *)
  measured_insns : int;
  measured_cycles : int;
  cpi : float;  (** aggregate: measured cycles / measured insns *)
  cpi_mean : float;  (** mean of the per-interval CPIs *)
  cpi_ci95 : float;  (** 95% confidence half-width of [cpi_mean] *)
  est_cycles : float;  (** [total_insns] x aggregate CPI *)
}

(** Fold measured intervals into the whole-run estimate (pure). *)
val aggregate :
  total_insns:int -> total_cycles:int -> interval list -> result

(** Increase of a {!Ptl_stats.Statstree} counter path across one
    measured interval (delta of its snapshot pair) — e.g.
    ["ooo.mem.L1D.misses"] for per-interval MPKI. *)
val interval_stat : interval -> string -> int

(** Sum of {!interval_stat} over every measured interval of a result —
    whole-run counter deltas attributable to measured execution. *)
val result_stat : result -> string -> int

(** Hook the domain's native core so fast-forwarded instructions warm
    the shared {!Ptl_ooo.Uarch} (exposed for tests; {!run} installs it
    itself). Returns a function resetting the warmer's line memos —
    {!run_capture} calls it at every window-capture point so a resumed
    pass, whose freshly installed hooks start with cold memos, warms
    exactly as the uninterrupted pass did. *)
val install_warming : Ptl_hyper.Domain.t -> Ptl_ooo.Uarch.t -> unit -> unit

val remove_warming : Ptl_hyper.Domain.t -> unit

(** Drive the domain to completion (guest shutdown / halt / [-kill] /
    budget) under [schedule]. Installs a shared {!Ptl_ooo.Uarch} via
    {!Ptl_hyper.Domain.set_uarch} if the domain has none, so warmed
    state survives core rebuilds. With [~roi:true], scheduling only
    advances while the guest's [-startsample] region is open
    (fast-forward and warming continue outside it). Calls
    {!Ptl_trace.Trace.sample_boundary} at the start of every measured
    interval. *)
val run :
  ?roi:bool ->
  ?placement:placement ->
  ?max_insns:int ->
  ?max_cycles:int ->
  schedule:schedule ->
  Ptl_hyper.Domain.t ->
  result

(** Validate a [--sample-jobs] request ([kernel]: domain hosts a minios
    instance; [tracing]: an event trace is armed). Parallel sampling
    needs bare-machine workloads (host-side kernel state is not
    checkpointable) and jobs > 1 cannot share the process-global trace
    ring. *)
val check_jobs :
  jobs:int ->
  kernel:bool ->
  tracing:bool ->
  unit ->
  (unit, string) Stdlib.result

(** Replay one measured interval from a full checkpoint on completely
    private state (fresh memory, context, {!Ptl_ooo.Uarch} and stats
    tree) — safe to run on any {!Stdlib.Domain}; a pure function of the
    checkpoint and schedule. [None] if the guest halts before committing
    a measured instruction. Exposed for tests; {!run_parallel} is the
    driver.

    [progress] (both replay builders) is invoked every ~2k pipeline
    steps — a liveness hook fleet workers heartbeat from; it must not
    touch simulator state. [wrap] interposes on the freshly built core
    instance before it drives (e.g. a {!Ptl_guard} supervisor), turning
    mid-replay invariant breaches into typed failures. *)
val replay_interval :
  ?progress:(unit -> unit) ->
  ?wrap:
    (env:Ptl_arch.Env.t ->
    ctx:Ptl_arch.Context.t ->
    Ptl_ooo.Registry.instance ->
    Ptl_ooo.Registry.instance) ->
  core_name:string ->
  config:Ptl_ooo.Config.t ->
  schedule:schedule ->
  index:int ->
  Ptl_hyper.Checkpoint.full ->
  interval option

(** Replay one measured interval from a delta checkpoint: private
    memory is a copy-on-write clone of the shared base image overlaid
    with the interval's dirty pages, the private {!Ptl_ooo.Uarch}
    restores from base + changed components. Restored state — and so
    the interval record — is identical to a full-checkpoint replay of
    the same moment. *)
val replay_delta :
  ?progress:(unit -> unit) ->
  ?wrap:
    (env:Ptl_arch.Env.t ->
    ctx:Ptl_arch.Context.t ->
    Ptl_ooo.Registry.instance ->
    Ptl_ooo.Registry.instance) ->
  core_name:string ->
  config:Ptl_ooo.Config.t ->
  schedule:schedule ->
  index:int ->
  base:Ptl_hyper.Checkpoint.base ->
  Ptl_hyper.Checkpoint.delta ->
  interval option

(** One master capture pass: shared base image, one delta checkpoint
    per measured window (by capture index), whole-run totals, and the
    capture-cost accounting (delta vs full page payloads). *)
type capture_run = {
  cr_base : Ptl_hyper.Checkpoint.base;
  cr_deltas : Ptl_hyper.Checkpoint.delta array;
  cr_insns : int;
  cr_cycles : int;
  cr_delta_bytes : int;
  cr_full_bytes : int;
}

(** One captured window, streamed to [run_capture]'s [?on_window] as it
    lands — the journaling hook resumable capture is built on. *)
type window = {
  w_index : int;
  w_delta : Ptl_hyper.Checkpoint.delta;
  w_delta_bytes : int;
  w_full_bytes : int;
}

(** Where an interrupted capture left off: base image, last journaled
    delta (the resumed pass restarts from its capture moment), windows
    already safe on disk ([rs_count >= 1]) and their byte accounting. *)
type resume_point = {
  rs_base : Ptl_hyper.Checkpoint.base;
  rs_last : Ptl_hyper.Checkpoint.delta;
  rs_count : int;
  rs_delta_bytes : int;
  rs_full_bytes : int;
}

(** The master pass of checkpoint-parallel sampling: native execution
    with functional warming, a {!Ptl_hyper.Checkpoint.base} captured up
    front and a cheap delta at the start of every warm-up+measure
    window (the windows advance natively; workers replay them timed).
    Raises [Invalid_argument] on kernel-hosted domains.

    [on_base]/[on_window] stream the base and each delta as captured
    (journaling). [resume] restarts an interrupted pass from its last
    journaled window; the domain must be rebuilt exactly as for the
    original pass (same workload, machine, schedule, placement). Every
    resumed delta is then byte-identical to the uninterrupted run's;
    [cr_deltas] holds only this process's windows while the
    insn/cycle/byte totals cover the whole pass. *)
val run_capture :
  ?roi:bool ->
  ?placement:placement ->
  ?max_insns:int ->
  ?max_cycles:int ->
  ?on_base:(Ptl_hyper.Checkpoint.base -> unit) ->
  ?on_window:(window -> unit) ->
  ?resume:resume_point ->
  schedule:schedule ->
  Ptl_hyper.Domain.t ->
  capture_run

(** Replay every captured interval on [jobs] worker {!Stdlib.Domain}s
    (default 1 = inline), returning results by capture index —
    bit-identical for any [jobs] and completion order. *)
val replay_capture :
  core_name:string ->
  config:Ptl_ooo.Config.t ->
  schedule:schedule ->
  ?jobs:int ->
  capture_run ->
  interval option array

(** Checkpoint-parallel sampled run: one native master pass (functional
    warming throughout) captures a {!Ptl_hyper.Checkpoint.full} at the
    start of every warm-up+measure window; [jobs] worker
    {!Stdlib.Domain}s then replay the intervals on private state and the
    results merge by capture index. The merged report is bit-identical
    for any [jobs] value and any completion order ([jobs = 1] runs the
    same replay path inline). Raises [Invalid_argument] on
    kernel-hosted domains — see {!check_jobs}. *)
val run_parallel :
  ?roi:bool ->
  ?placement:placement ->
  ?max_insns:int ->
  ?max_cycles:int ->
  ?jobs:int ->
  schedule:schedule ->
  Ptl_hyper.Domain.t ->
  result

(** Per-interval table plus the aggregate estimate (the [--sample]
    end-of-run report). *)
val report : out_channel -> result -> unit

(** {!report}, then — only when [quarantined] is non-empty — an explicit
    DEGRADED section: coverage over the [count] captured intervals and
    each quarantined index with its retry count and last diagnostic
    (pairs are [(index, diagnostics)], diagnostics newest first). With
    nothing quarantined the output is byte-identical to {!report}. *)
val report_degraded :
  out_channel ->
  count:int ->
  quarantined:(int * string list) list ->
  result ->
  unit
