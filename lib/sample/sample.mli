(** Mixed-mode sampled simulation: SMARTS-style periodic sampling —
    repeating fast-forward (native, functionally warmed) -> warm-up
    (timed, unmeasured) -> measure (timed, measured) — on top of the
    paper's seamless native/simulation mode switching (§4.1).

    Fast-forward runs the sequential functional core at native speed
    while warming the long-lived microarchitectural state (cache tags
    and recency, TLBs, branch direction tables, BTB, RAS) through the
    silent [warm_*] entry points: no statistics move, no trace events
    fire. Measured intervals bracket {!Ptl_stats.Statstree} snapshot
    pairs; the aggregate CPI is sum(cycles)/sum(insns) with a 95%
    normal confidence interval over the per-interval CPIs. *)

(** Instructions per phase of one sampling period. *)
type schedule = {
  ff_insns : int;  (** fast-forwarded natively, warming *)
  warmup_insns : int;  (** timed but excluded from measurement *)
  measure_insns : int;  (** timed and measured *)
}

val default_period : int
val default_warmup : int
val default_measure : int

(** Total instructions in one period. *)
val period : schedule -> int

(** Validate the sampling flag combination and derive the schedule.
    [ff]/[period] are the raw [--sample-ff] / [--sample-period] options
    (mutually exclusive; a period converts to a fast-forward length by
    subtracting warm-up and measure). Rejects the sequential core (no
    timed pipeline), unknown cores, the fuzz subcommand and
    [--guard-degrade]. *)
val check_flags :
  core:string ->
  ff:int option ->
  period:int option ->
  warmup:int ->
  measure:int ->
  guard_degrade:bool ->
  fuzz:bool ->
  unit ->
  (schedule, string) result

(** One measured interval: its snapshot pair and the instruction /
    cycle deltas between them. *)
type interval = {
  iv_index : int;
  iv_insns : int;
  iv_cycles : int;
  iv_cpi : float;
  iv_before : Ptl_stats.Statstree.snapshot;
  iv_after : Ptl_stats.Statstree.snapshot;
}

type result = {
  intervals : interval list;  (** in measurement order *)
  total_insns : int;  (** all instructions committed during the run *)
  total_cycles : int;  (** virtual cycles elapsed during the run *)
  measured_insns : int;
  measured_cycles : int;
  cpi : float;  (** aggregate: measured cycles / measured insns *)
  cpi_mean : float;  (** mean of the per-interval CPIs *)
  cpi_ci95 : float;  (** 95% confidence half-width of [cpi_mean] *)
  est_cycles : float;  (** [total_insns] x aggregate CPI *)
}

(** Fold measured intervals into the whole-run estimate (pure). *)
val aggregate :
  total_insns:int -> total_cycles:int -> interval list -> result

(** Hook the domain's native core so fast-forwarded instructions warm
    the shared {!Ptl_ooo.Uarch} (exposed for tests; {!run} installs it
    itself). *)
val install_warming : Ptl_hyper.Domain.t -> Ptl_ooo.Uarch.t -> unit

val remove_warming : Ptl_hyper.Domain.t -> unit

(** Drive the domain to completion (guest shutdown / halt / [-kill] /
    budget) under [schedule]. Installs a shared {!Ptl_ooo.Uarch} via
    {!Ptl_hyper.Domain.set_uarch} if the domain has none, so warmed
    state survives core rebuilds. With [~roi:true], scheduling only
    advances while the guest's [-startsample] region is open
    (fast-forward and warming continue outside it). Calls
    {!Ptl_trace.Trace.sample_boundary} at the start of every measured
    interval. *)
val run :
  ?roi:bool ->
  ?max_insns:int ->
  ?max_cycles:int ->
  schedule:schedule ->
  Ptl_hyper.Domain.t ->
  result

(** Per-interval table plus the aggregate estimate (the [--sample]
    end-of-run report). *)
val report : out_channel -> result -> unit
